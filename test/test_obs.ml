(* Tests for the observability layer (lib/obs): counter / histogram /
   span semantics, JSON export, and end-to-end population of the
   registry by a full pipeline + simulator run. *)

module Obs = Clara_obs
module J = Clara_util.Json
module W = Clara_workload
module L = Clara_lnic

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)

let test_counter_semantics () =
  let r = Obs.Registry.create () in
  let c = Obs.Registry.counter r "c" in
  check_int "starts at 0" 0 (Obs.Metrics.value c);
  Obs.Metrics.incr c;
  Obs.Metrics.add c 41;
  check_int "incr + add" 42 (Obs.Metrics.value c);
  (* Find-or-create returns the same instrument. *)
  Obs.Metrics.incr (Obs.Registry.counter r "c");
  check_int "aliased" 43 (Obs.Metrics.value c);
  check "monotonic: negative add rejected" true
    (try Obs.Metrics.add c (-1); false with Invalid_argument _ -> true);
  check "kind clash rejected" true
    (try ignore (Obs.Registry.histogram r "c"); false with Invalid_argument _ -> true);
  Obs.Metrics.reset_counter c;
  check_int "reset" 0 (Obs.Metrics.value c);
  check_int "absent counter reads 0" 0 (Obs.Registry.counter_value r "nope")

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_histogram_semantics () =
  let r = Obs.Registry.create () in
  let h = Obs.Registry.histogram r "h" in
  check_int "empty count" 0 (Obs.Metrics.hist_count h);
  check_int "empty quantile" 0 (Obs.Metrics.quantile h 0.5);
  List.iter (Obs.Metrics.observe h) [ 1; 2; 3; 4; 100 ];
  check_int "count" 5 (Obs.Metrics.hist_count h);
  check_int "sum" 110 (Obs.Metrics.hist_sum h);
  check_int "min" 1 (Obs.Metrics.hist_min h);
  check_int "max" 100 (Obs.Metrics.hist_max h);
  (* Nearest-rank through log2 buckets: p50 is the 3rd smallest (3),
     resolved to its bucket's upper bound (4). *)
  check_int "p50 bucket upper bound" 4 (Obs.Metrics.quantile h 0.5);
  check_int "p100 tightened by true max" 100 (Obs.Metrics.quantile h 1.0);
  (* Bucket layout: 1 -> bucket 0 (<=1); 2 -> (1,2]; 3,4 -> (2,4];
     100 -> (64,128]. *)
  check "buckets" true
    (Obs.Metrics.nonzero_buckets h = [ (1, 1); (2, 1); (4, 2); (128, 1) ]);
  (* Negative observations clamp to zero rather than corrupting. *)
  Obs.Metrics.observe h (-5);
  check_int "negative clamps" 0 (Obs.Metrics.hist_min h);
  Obs.Metrics.reset_histogram h;
  check_int "reset count" 0 (Obs.Metrics.hist_count h);
  check_int "reset max" 0 (Obs.Metrics.hist_max h)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

let test_span_nesting () =
  let r = Obs.Registry.create () in
  check "no active path" true (Obs.Registry.current_path r = None);
  let v =
    Obs.Registry.span r "outer" (fun () ->
        check "outer active" true (Obs.Registry.current_path r = Some "outer");
        Obs.Registry.span r "inner" (fun () ->
            check "nested path" true (Obs.Registry.current_path r = Some "outer/inner");
            7))
  in
  check_int "span returns the body's value" 7 v;
  check "outer recorded" true (Obs.Registry.mem r "outer");
  check "outer/inner recorded" true (Obs.Registry.mem r "outer/inner");
  (match Obs.Registry.find r "outer/inner" with
  | Some (Obs.Registry.Span s) ->
      check_int "inner count" 1 (Obs.Span.count s);
      check "non-negative duration" true (Obs.Span.total_ns s >= 0);
      check "min <= max" true (Obs.Span.min_ns s <= Obs.Span.max_ns s)
  | _ -> Alcotest.fail "expected a span metric");
  (* Exception safety: the stack pops even when the body raises. *)
  (try Obs.Registry.span r "boom" (fun () -> failwith "x") with Failure _ -> ());
  check "stack popped after raise" true (Obs.Registry.current_path r = None);
  (match Obs.Registry.find r "boom" with
  | Some (Obs.Registry.Span s) -> check_int "raising span still recorded" 1 (Obs.Span.count s)
  | _ -> Alcotest.fail "expected boom span");
  (* Re-entering accumulates under the same path. *)
  Obs.Registry.span r "outer" (fun () -> ());
  (match Obs.Registry.find r "outer" with
  | Some (Obs.Registry.Span s) -> check_int "outer count accumulates" 2 (Obs.Span.count s)
  | _ -> Alcotest.fail "expected outer span")

(* ------------------------------------------------------------------ *)
(* Export                                                              *)

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail ("missing field " ^ name))
  | _ -> Alcotest.fail "expected a JSON object"

let test_json_export () =
  let r = Obs.Registry.create () in
  Obs.Metrics.add (Obs.Registry.counter r "cnt") 5;
  Obs.Metrics.observe (Obs.Registry.histogram r "hist") 3;
  Obs.Registry.span r "sp" (fun () -> ());
  let j = Obs.Export.to_json r in
  (match field "counters" j with
  | J.Obj [ ("cnt", J.Int 5) ] -> ()
  | _ -> Alcotest.fail "counters shape");
  (match field "histograms" j with
  | J.Obj [ ("hist", h) ] ->
      check "hist count" true (field "count" h = J.Int 1);
      check "hist sum" true (field "sum" h = J.Int 3);
      (match field "buckets" h with
      | J.List [ J.Obj [ ("lo", J.Int 2); ("hi", J.Int 4); ("count", J.Int 1) ] ] -> ()
      | _ -> Alcotest.fail "buckets shape")
  | _ -> Alcotest.fail "histograms shape");
  (match field "spans" j with
  | J.Obj [ ("sp", s) ] ->
      check "span count" true (field "count" s = J.Int 1);
      check "span total" true
        (match field "total_ns" s with J.Int n -> n >= 0 | _ -> false)
  | _ -> Alcotest.fail "spans shape");
  (* Serialized form round-trips through the writer without raising and
     mentions every section. *)
  let s = J.to_string j in
  let mentions sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  check "mentions counters" true (mentions "\"counters\"");
  check "mentions histograms" true (mentions "\"histograms\"");
  check "mentions spans" true (mentions "\"spans\"");
  (* write_json produces a readable file with the same content. *)
  let path = Filename.temp_file "clara_obs" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Export.write_json path r;
      let ic = open_in path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      check "file content matches to_json" true
        (String.trim contents = String.trim (J.to_string (Obs.Export.to_json r))))

(* ------------------------------------------------------------------ *)
(* End-to-end: a pipeline + simulator run populates the registry       *)

let test_pipeline_populates_registry () =
  let reg = Obs.Registry.default in
  Obs.Registry.reset reg;
  let lnic = L.Netronome.default in
  let prof =
    W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:500 ~flow_count:100
      ~rate_pps:60_000. ~tcp_fraction:0.8 ()
  in
  (match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Nat.source ()) ~profile:prof with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let trace = W.Trace.synthesize ~seed:3L prof in
      ignore (Clara.predict a trace);
      ignore
        (Clara_nicsim.Engine.run lnic (Clara_nfs.Nat.ported ~checksum_engine:true ()) trace));
  List.iter
    (fun name ->
      match Obs.Registry.find reg name with
      | Some (Obs.Registry.Span s) ->
          check (name ^ " ran") true (Obs.Span.count s > 0);
          check (name ^ " non-negative") true (Obs.Span.total_ns s >= 0)
      | _ -> Alcotest.fail ("missing span " ^ name))
    [ "pipeline"; "pipeline/lower"; "pipeline/coarsen"; "pipeline/dataflow";
      "pipeline/mapping"; "pipeline/mapping/solve"; "predict"; "nicsim" ];
  check "simplex solves" true (Obs.Registry.counter_value reg "ilp.simplex.solves" > 0);
  check "simplex pivots" true (Obs.Registry.counter_value reg "ilp.simplex.pivots" > 0);
  check "bb nodes" true (Obs.Registry.counter_value reg "ilp.bb.nodes" > 0);
  check "mapping vars" true (Obs.Registry.counter_value reg "mapping.ilp.vars" > 0);
  check "mapping constraints" true
    (Obs.Registry.counter_value reg "mapping.ilp.constraints" > 0);
  check "nicsim packets" true (Obs.Registry.counter_value reg "nicsim.packets" > 0);
  (match Obs.Registry.find reg "nicsim.queue_depth" with
  | Some (Obs.Registry.Histogram h) ->
      check "queue depth observed per packet" true (Obs.Metrics.hist_count h >= 500)
  | _ -> Alcotest.fail "missing nicsim.queue_depth histogram");
  (* The JSON dump of a populated registry has all three sections
     non-empty. *)
  let j = Obs.Export.to_json reg in
  (match field "spans" j with
  | J.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "expected non-empty spans");
  match field "counters" j with
  | J.Obj (_ :: _) -> ()
  | _ -> Alcotest.fail "expected non-empty counters"

let suite =
  [ Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "histogram semantics" `Quick test_histogram_semantics;
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "JSON export" `Quick test_json_export;
    Alcotest.test_case "pipeline populates registry" `Quick
      test_pipeline_populates_registry ]
