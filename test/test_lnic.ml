(* Tests for the logical SmartNIC model: cost functions, graph accessors,
   the Netronome/SoC instances, slicing and validation. *)

module Cf = Clara_lnic.Cost_fn
module U = Clara_lnic.Unit_
module Mem = Clara_lnic.Memory
module G = Clara_lnic.Graph
module P = Clara_lnic.Params
module N = Clara_lnic.Netronome
module Soc = Clara_lnic.Soc_nic
module V = Clara_lnic.Validate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_cost_fn () =
  let f = Cf.linear ~base:50. ~per_unit:0.25 in
  check_int "checksum @1000B = 300" 300 (Cf.eval_int f 1000);
  check_int "const" 7 (Cf.eval_int (Cf.const 7.) 12345);
  check_int "negative size clamps" 5 (Cf.eval_int (Cf.const 5.) (-3));
  let g = Cf.logarithmic ~base:0. ~log2_coeff:10. in
  check_int "log2(1+1023) = 10 -> 100" 100 (Cf.eval_int g 1023);
  let s = Cf.add f g in
  check "add combines" true
    (Cf.eval s 1023. = Cf.eval f 1023. +. Cf.eval g 1023.);
  check "scale" true (Cf.eval (Cf.scale 2. f) 100. = 2. *. Cf.eval f 100.)

let test_netronome_shape () =
  let g = N.default in
  check "valid" true (V.is_valid g);
  check_int "60 NPUs" 60 (List.length (G.general_cores g));
  check_int "4 accelerators" 4 (List.length (G.accelerators g));
  check "has parse accel" true (G.find_accelerator g U.Parse <> None);
  check "has lookup accel" true (G.find_accelerator g U.Lookup <> None);
  check "has checksum accel" true (G.find_accelerator g U.Checksum <> None);
  check "has crypto accel" true (G.find_accelerator g U.Crypto <> None);
  check_int "480 threads" 480 (G.total_threads g);
  (* Paper's memory parameters. *)
  let imem = N.imem g and emem = N.emem g in
  check_int "IMEM 4MB" (4 * 1024 * 1024) imem.Mem.size_bytes;
  check_int "IMEM 250cyc" 250 imem.Mem.read_cycles;
  check_int "EMEM 500cyc" 500 emem.Mem.read_cycles;
  check "EMEM has 3MB cache" true
    (match emem.Mem.cache with
    | Some c -> c.Mem.cache_bytes = 3 * 1024 * 1024
    | None -> false);
  let ctm = N.ctm_of_island g 0 in
  check_int "CTM 256KB" (256 * 1024) ctm.Mem.size_bytes;
  check_int "CTM 50cyc" 50 ctm.Mem.read_cycles

let test_netronome_numa () =
  let g = N.default in
  let npu0 = List.hd (G.general_cores g) in
  let ctm0 = N.ctm_of_island g 0 and ctm1 = N.ctm_of_island g 1 in
  let own = G.access_cycles g ~unit_id:npu0.U.id ~mem_id:ctm0.Mem.id `Read in
  let remote = G.access_cycles g ~unit_id:npu0.U.id ~mem_id:ctm1.Mem.id `Read in
  check "own CTM 50" true (own = Some 50);
  check "remote CTM slower" true
    (match (own, remote) with Some a, Some b -> b > a | _ -> false);
  (* Fastest reachable memory from an NPU is its local memory. *)
  match G.reachable_memories g ~unit_id:npu0.U.id with
  | (m, _) :: _ -> check "local first" true (m.Mem.level = Mem.Local)
  | [] -> Alcotest.fail "NPU reaches no memory"

let test_accel_capabilities () =
  let p = N.default.G.params in
  check "lookup accel serves lpm" true
    (P.accel_vcall_cost p U.Lookup P.V_lpm_lookup <> None);
  check "checksum accel serves checksum" true
    (P.accel_vcall_cost p U.Checksum P.V_checksum <> None);
  check "checksum accel does not scan payloads" true
    (P.accel_vcall_cost p U.Checksum P.V_payload_scan = None);
  (* The §2.1 contrast: accelerator checksum @1000B ~300 cycles, software
     pays ~1700 more. *)
  let accel = Option.get (P.accel_vcall_cost p U.Checksum P.V_checksum) in
  let core = Option.get (P.core_vcall_cost p P.V_checksum) in
  check_int "accel 300 @1000B" 300 (Cf.eval_int accel 1000);
  check "core ~1700 extra" true
    (Cf.eval_int core 1000 - Cf.eval_int accel 1000 >= 1500);
  (* LPM software walk grows linearly; flow cache is constant. *)
  let sw = Option.get (P.core_vcall_cost p P.V_lpm_lookup) in
  let fc = Option.get (P.accel_vcall_cost p U.Lookup P.V_lpm_lookup) in
  check "software LPM grows" true (Cf.eval sw 30000. > 10. *. Cf.eval sw 1000.);
  check "flow cache flat" true (Cf.eval fc 30000. = Cf.eval fc 1000.);
  check "orders of magnitude apart @30k" true (Cf.eval sw 30000. > 100. *. Cf.eval fc 30000.)

let test_op_costs () =
  let p = N.default.G.params in
  check "metadata ops 2-5 cycles" true
    (let c = P.op_cost p P.Move ~has_fpu:false in
     c >= 2. && c <= 5.);
  check "fp emulated is much slower" true
    (P.op_cost p P.Fp ~has_fpu:false > 10. *. P.op_cost p P.Fp ~has_fpu:true)

let test_soc () =
  let g = Soc.default in
  check "valid" true (V.is_valid g);
  check_int "8 cores" 8 (List.length (G.general_cores g));
  check "no lookup accel" true (G.find_accelerator g U.Lookup = None);
  check "no parse accel" true (G.find_accelerator g U.Parse = None);
  check "cores have fpu" true
    (List.for_all
       (fun u -> match u.U.kind with U.General_core { has_fpu; _ } -> has_fpu | _ -> false)
       (G.general_cores g))

let test_placement_classes () =
  let g = N.default in
  let classes = G.placement_classes g in
  (* 5 islands of identical NPUs + 4 distinct accelerators = 9 classes. *)
  check_int "9 classes" 9 (List.length classes);
  let sizes = List.map (fun c -> List.length c.G.members) classes in
  check "island classes have 12 members" true (List.mem 12 sizes);
  (* Every unit appears exactly once across all classes. *)
  let all = List.concat_map (fun c -> c.G.members) classes in
  check_int "covers all units" (Array.length g.G.units) (List.length all);
  check "no duplicates" true
    (List.length (List.sort_uniq compare all) = List.length all)

let test_slice () =
  let g = N.default in
  let half = G.slice g ~keep_num:1 ~keep_den:2 in
  check "sliced still valid" true (V.is_valid half);
  check_int "30 cores kept" 30 (List.length (G.general_cores half));
  check_int "accelerators kept" 4 (List.length (G.accelerators half));
  let imem_full = N.imem g and imem_half = N.imem half in
  check_int "IMEM halved" (imem_full.Mem.size_bytes / 2) imem_half.Mem.size_bytes;
  (* Local (per-core) memories are not scaled. *)
  let local_full = (G.memory g 0).Mem.size_bytes in
  let local_half = (G.memory half 0).Mem.size_bytes in
  check_int "local memory unscaled" local_full local_half;
  check "bad fraction rejected" true
    (try ignore (G.slice g ~keep_num:3 ~keep_den:2); false
     with Invalid_argument _ -> true)

let test_pipeline_ok () =
  let g = N.default in
  let parse = Option.get (G.find_accelerator g U.Parse) in
  let csum = Option.get (G.find_accelerator g U.Checksum) in
  let npu = List.hd (G.general_cores g) in
  check "parse -> npu ok" true (G.pipeline_ok g parse.U.id npu.U.id);
  check "npu -> csum ok" true (G.pipeline_ok g npu.U.id csum.U.id);
  check "csum -> parse not ok" false (G.pipeline_ok g csum.U.id parse.U.id);
  check "same unit ok" true (G.pipeline_ok g npu.U.id npu.U.id)

let test_validate_catches () =
  let g = N.default in
  (* Dangling link. *)
  let bad =
    { g with G.links = { Clara_lnic.Link.kind = Clara_lnic.Link.Access (999, 0); weight_cycles = 0 } :: g.G.links }
  in
  check "dangling link caught" false (V.is_valid bad);
  (* Backwards pipeline edge. *)
  let csum = Option.get (G.find_accelerator g U.Checksum) in
  let parse = Option.get (G.find_accelerator g U.Parse) in
  let bad2 =
    { g with
      G.links =
        { Clara_lnic.Link.kind = Clara_lnic.Link.Pipeline (csum.U.id, parse.U.id);
          weight_cycles = 0 }
        :: g.G.links }
  in
  check "stage violation caught" false (V.is_valid bad2)

let test_bluefield_shape () =
  let g = Clara_lnic.Bluefield.default in
  check "valid" true (V.is_valid g);
  check "off-path" true (g.G.arch = G.Off_path);
  check "has eswitch" true (G.find_accelerator g U.Eswitch <> None);
  check_int "8 arm cores" 8 (List.length (G.general_cores g));
  check "eswitch holds flow-cache SRAM" true
    (P.accel_sram g.G.params U.Eswitch = 2 * 1024 * 1024);
  (* Upcall price: only off-path graphs pay it. *)
  check_int "bluefield upcall 1000" 1000 (G.upcall_cycles g);
  check_int "netronome upcall 0" 0 (G.upcall_cycles N.default);
  check_int "host upcall 0" 0 (G.upcall_cycles Clara_lnic.Host.default);
  (* The eSwitch prices match-action work but refuses table updates —
     the capability gap behind the CLARA105 slow-path demotion. *)
  check "eswitch serves lpm" true
    (P.accel_vcall_cost g.G.params U.Eswitch P.V_lpm_lookup <> None);
  check "eswitch refuses table_update" true
    (P.accel_vcall_cost g.G.params U.Eswitch P.V_table_update = None)

let test_validate_offpath_shapes () =
  let bf = Clara_lnic.Bluefield.default in
  let has what g =
    List.exists (fun (e : V.error) -> e.V.what = what) (V.errors g)
  in
  (* Disconnected eSwitch: drop every link touching it. *)
  let esw = Option.get (G.find_accelerator bf U.Eswitch) in
  let touches l =
    Clara_lnic.Link.src l = Clara_lnic.Link.U esw.U.id
    || Clara_lnic.Link.dst l = Clara_lnic.Link.U esw.U.id
  in
  let cut =
    { bf with G.links = List.filter (fun l -> not (touches l)) bf.G.links }
  in
  check "disconnected eSwitch caught" true (has "eswitch-disconnected" cut);
  check "intact bluefield has no such error" false
    (has "eswitch-disconnected" bf);
  (* Zero-capacity flow cache. *)
  let no_sram =
    { bf with G.params = { bf.G.params with P.accel_sram_bytes = [] } }
  in
  check "zero flow cache caught" true (has "eswitch-no-flow-cache" no_sram);
  (* Off-path NIC whose hub array lost its PCIe DMA hub. *)
  let no_pcie =
    { bf with
      G.hubs = Array.sub bf.G.hubs 0 3;
      G.links =
        List.filter
          (fun l -> Clara_lnic.Link.src l <> Clara_lnic.Link.H 3)
          bf.G.links }
  in
  check "missing PCIe DMA hub caught" true (has "offpath-no-pcie" no_pcie);
  (* An on-path NIC without a Host_dma hub is fine. *)
  check "on-path needs no PCIe hub" false (has "offpath-no-pcie" N.default)

let test_warnings () =
  (* The shipped targets are warning-free... *)
  List.iter
    (fun g -> check (g.G.name ^ " warning-free") true (V.warnings g = []))
    [ N.default; Soc.default ];
  (* ...the ASIC intentionally warns: payload_scan/crypto have no
     executor there. *)
  let asic_warns = V.warnings Clara_lnic.Asic_nic.default in
  check "asic warns about payload_scan" true
    (List.exists
       (fun w ->
         String.length w >= 25
         && String.sub w 0 25 = "virtual call payload_scan")
       asic_warns);
  (* A broken parameter set is flagged. *)
  let broken =
    { N.default with
      G.params = { N.default.G.params with P.core_vcalls = []; accel_vcalls = [] } }
  in
  check "gutted params warn a lot" true (List.length (V.warnings broken) > 5)

let prop_slice_monotonic =
  QCheck.Test.make ~name:"slice keeps at least 1 core, at most all" ~count:50
    (QCheck.pair (QCheck.int_range 1 8) (QCheck.int_range 1 8))
    (fun (a, b) ->
      QCheck.assume (a >= 1 && b >= 1);
      let num = min a b and den = max a b in
      let g = N.default in
      let s = G.slice g ~keep_num:num ~keep_den:den in
      let n = List.length (G.general_cores s) in
      n >= 1
      && n <= List.length (G.general_cores g)
      && Clara_lnic.Validate.is_valid s)

let suite =
  [ Alcotest.test_case "cost functions" `Quick test_cost_fn;
    Alcotest.test_case "netronome shape & paper parameters" `Quick test_netronome_shape;
    Alcotest.test_case "netronome NUMA weights" `Quick test_netronome_numa;
    Alcotest.test_case "accelerator capabilities (§2.1 contrasts)" `Quick test_accel_capabilities;
    Alcotest.test_case "op costs" `Quick test_op_costs;
    Alcotest.test_case "soc instance" `Quick test_soc;
    Alcotest.test_case "placement classes" `Quick test_placement_classes;
    Alcotest.test_case "slice for interference" `Quick test_slice;
    Alcotest.test_case "pipeline stage order" `Quick test_pipeline_ok;
    Alcotest.test_case "validate catches corruption" `Quick test_validate_catches;
    Alcotest.test_case "bluefield off-path shape" `Quick test_bluefield_shape;
    Alcotest.test_case "validate off-path shapes" `Quick test_validate_offpath_shapes;
    Alcotest.test_case "validate warnings" `Quick test_warnings ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_slice_monotonic ]
