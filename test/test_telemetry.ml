(* Tests for the time-series telemetry layer: lib/obs/timeseries
   windowing and merge, and the nicsim Telemetry collector's two
   contracts — metrics off is byte-identical to the seed behavior, and
   sharded collection is deterministic. *)

module Ts = Clara_obs.Timeseries
module Tel = Clara_nicsim.Telemetry
module Eng = Clara_nicsim.Engine
module J = Clara_util.Json
module L = Clara_lnic
module W = Clara_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let lnic = L.Netronome.default

let profile ?(packets = 2_000) () =
  W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets ~flow_count:500
    ~rate_pps:60_000. ~tcp_fraction:0.8 ()

(* ------------------------------------------------------------------ *)
(* Timeseries                                                          *)

let test_ts_windowing () =
  let s = Ts.create ~max_windows:8 ~name:"g" ~kind:Ts.Gauge ~cadence:10 () in
  Ts.observe s ~now:0 2.;
  Ts.observe s ~now:5 4.;
  Ts.observe s ~now:25 6.;
  check_int "count" 3 (Ts.count s);
  check "total" true (Ts.total s = 12.);
  (match Ts.windows s with
  | [ w0; w2 ] ->
      check_int "w0 start" 0 w0.Ts.w_start;
      check "w0 gauge mean" true (Ts.value Ts.Gauge w0 = 3.);
      check_int "w2 start" 20 w2.Ts.w_start;
      check_int "w2 count" 1 w2.Ts.w_count
  | ws -> Alcotest.failf "expected 2 windows, got %d" (List.length ws));
  (* Rate value is the sum, not the mean. *)
  let r = Ts.create ~max_windows:8 ~name:"r" ~kind:Ts.Rate ~cadence:10 () in
  Ts.observe r ~now:3 5.;
  Ts.observe r ~now:7 5.;
  match Ts.windows r with
  | [ w ] -> check "rate sum" true (Ts.value Ts.Rate w = 10.)
  | _ -> Alcotest.fail "expected one window"

let test_ts_downsample_exact () =
  let s = Ts.create ~max_windows:8 ~name:"d" ~kind:Ts.Rate ~cadence:1 () in
  (* 100 observations force several cadence doublings (8 windows of
     cadence 1 hold only now < 8); sums and counts must survive
     exactly. *)
  for now = 0 to 99 do
    Ts.observe s ~now (float_of_int now)
  done;
  check_int "count exact" 100 (Ts.count s);
  check "total exact" true (Ts.total s = float_of_int (99 * 100 / 2));
  check "cadence grew" true (Ts.cadence s > 1);
  check "base cadence kept" true (Ts.base_cadence s = 1);
  let wsum = List.fold_left (fun a w -> a +. w.Ts.w_sum) 0. (Ts.windows s) in
  let wcount = List.fold_left (fun a w -> a + w.Ts.w_count) 0 (Ts.windows s) in
  check "window sums tile total" true (wsum = Ts.total s);
  check_int "window counts tile count" 100 wcount

let test_ts_observe_agg_equiv () =
  let a = Ts.create ~max_windows:8 ~name:"x" ~kind:Ts.Gauge ~cadence:10 () in
  let b = Ts.create ~max_windows:8 ~name:"x" ~kind:Ts.Gauge ~cadence:10 () in
  List.iter (fun v -> Ts.observe a ~now:12 v) [ 1.; 2.; 3. ];
  Ts.observe_agg b ~now:12 ~sum:6. ~count:3;
  check_str "agg == per-event observes" (J.to_string (Ts.to_json a))
    (J.to_string (Ts.to_json b));
  (* count=0 is a no-op, even with a time jump that would downsample. *)
  Ts.observe_agg b ~now:1_000_000 ~sum:0. ~count:0;
  check_str "count=0 no-op" (J.to_string (Ts.to_json a)) (J.to_string (Ts.to_json b))

let test_ts_merge_partition_independent () =
  (* One integral event stream split across 1, 2 and 4 series: the
     merge must not depend on the partitioning.  This is the property
     that makes sharded-run telemetry deterministic. *)
  let events = List.init 200 (fun i -> ((i * 37) mod 500, float_of_int (1 + (i mod 7)))) in
  let split n =
    let parts =
      Array.init n (fun _ -> Ts.create ~max_windows:16 ~name:"m" ~kind:Ts.Rate ~cadence:4 ())
    in
    List.iteri (fun i (now, v) -> Ts.observe parts.(i mod n) ~now v) events;
    Ts.merge (Array.to_list parts)
  in
  let j1 = J.to_string (Ts.to_json (split 1)) in
  let j2 = J.to_string (Ts.to_json (split 2)) in
  let j4 = J.to_string (Ts.to_json (split 4)) in
  check_str "1-way == 2-way" j1 j2;
  check_str "2-way == 4-way" j2 j4

let test_ts_merge_validates () =
  let a = Ts.create ~name:"a" ~kind:Ts.Rate ~cadence:4 () in
  let b = Ts.create ~name:"b" ~kind:Ts.Rate ~cadence:4 () in
  check "empty merge raises" true
    (try ignore (Ts.merge []); false with Invalid_argument _ -> true);
  check "name mismatch raises" true
    (try ignore (Ts.merge [ a; b ]); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Telemetry collector: byte-identity and determinism                  *)

let result_json r = J.to_string (Eng.result_to_json r)

let test_metrics_off_identity_run () =
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let trace = W.Trace.synthesize ~seed:31L (profile ()) in
  let r_off = Eng.run lnic prog trace in
  let tel = Tel.create () in
  let r_on = Eng.run lnic prog ~metrics:tel trace in
  check_str "run: metrics on == off" (result_json r_off) (result_json r_on);
  check "collector saw packets" true
    (List.exists (fun s -> Ts.count s > 0) (Tel.series tel))

let test_metrics_off_identity_tenants () =
  let progs =
    [| Clara_nfs.Nat.ported ~checksum_engine:true (); Clara_nfs.Dpi.ported () |]
  in
  let traces =
    [| W.Trace.synthesize ~seed:31L (profile ());
       W.Trace.synthesize ~seed:57L (profile ()) |]
  in
  let r_off = Eng.run_tenants lnic progs traces in
  let tel = Tel.create () in
  let r_on = Eng.run_tenants lnic progs ~metrics:tel traces in
  Array.iteri
    (fun i r ->
      check_str (Printf.sprintf "tenant %d identical" i) (result_json r)
        (result_json r_on.(i)))
    r_off;
  check_int "collector tracks both tenants" 2 (Array.length (Tel.tenant_names tel))

let test_metrics_off_identity_sharded () =
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let trace = W.Trace.synthesize ~seed:31L (profile ()) in
  let r_off = Eng.run_sharded ~domains:2 ~shards:4 lnic prog trace in
  let tel = Tel.create () in
  let r_on = Eng.run_sharded ~domains:2 ~shards:4 lnic prog ~metrics:tel trace in
  check_str "sharded: metrics on == off" (result_json r_off) (result_json r_on)

let metrics_json tel = J.to_string (Tel.to_json tel)

let test_sharded_metrics_domain_determinism () =
  (* Same shard count, different domain counts: the merged metrics must
     be byte-identical — worker collectors are per shard, not per
     domain, and absorb merges in shard order. *)
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let trace = W.Trace.synthesize ~seed:31L (profile ()) in
  let t1 = Tel.create () in
  ignore (Eng.run_sharded ~domains:1 ~shards:4 lnic prog ~metrics:t1 trace);
  let t3 = Tel.create () in
  ignore (Eng.run_sharded ~domains:3 ~shards:4 lnic prog ~metrics:t3 trace);
  check_str "1-domain == 3-domain metrics" (metrics_json t1) (metrics_json t3)

let test_sharded_metrics_shard_count_totals () =
  (* Sharding repartitions the stream into independent per-shard sims,
     so latencies legitimately differ between shard counts — but the
     merged series must stay consistent with the engine's own summary,
     and at a non-saturating rate every packet is admitted regardless of
     the shard count. *)
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let trace = W.Trace.synthesize ~seed:31L (profile ()) in
  let find tel n =
    List.find (fun s -> Ts.name s = n) (Tel.series tel)
  in
  let run shards =
    let tel = Tel.create () in
    let r = Eng.run_sharded ~domains:2 ~shards lnic prog ~metrics:tel trace in
    (tel, r)
  in
  let tel4, r4 = run 4 in
  let s = r4.Eng.summary in
  let goodput = find tel4 "tenant0.goodput" in
  let latency = find tel4 "tenant0.latency" in
  check_int "goodput total == admitted packets" s.Clara_nicsim.Stats.packets
    (int_of_float (Ts.total goodput));
  check_int "latency samples == admitted packets" s.Clara_nicsim.Stats.packets
    (Ts.count latency);
  check "latency mean matches summary" true
    (Float.abs
       ((Ts.total latency /. float_of_int (Ts.count latency))
       -. s.Clara_nicsim.Stats.mean_cycles)
    < 1.);
  let tel2, r2 = run 2 in
  check_int "admitted packets stable across shard counts"
    r2.Eng.summary.Clara_nicsim.Stats.packets s.Clara_nicsim.Stats.packets;
  check "goodput series agrees across shard counts" true
    (Ts.total (find tel2 "tenant0.goodput") = Ts.total goodput)

let test_telemetry_csv_shape () =
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let trace = W.Trace.synthesize ~seed:31L (profile ~packets:400 ()) in
  let tel = Tel.create () in
  ignore (Eng.run lnic prog ~metrics:tel trace);
  (match Tel.to_csv tel |> String.split_on_char '\n' with
  | header :: (_ :: _ as rows) ->
      check_str "csv header" Ts.csv_header header;
      check "csv has data rows" true
        (List.exists (fun r -> String.length r > 0) rows)
  | _ -> Alcotest.fail "empty csv");
  match Tel.to_json tel with
  | J.Obj kvs ->
      check "json has schema" true (List.mem_assoc "schema" kvs);
      check "json has series" true (List.mem_assoc "series" kvs)
  | _ -> Alcotest.fail "metrics json is not an object"

let suite =
  [ Alcotest.test_case "timeseries windowing" `Quick test_ts_windowing;
    Alcotest.test_case "timeseries downsample exactness" `Quick
      test_ts_downsample_exact;
    Alcotest.test_case "timeseries observe_agg equivalence" `Quick
      test_ts_observe_agg_equiv;
    Alcotest.test_case "timeseries merge partition independence" `Quick
      test_ts_merge_partition_independent;
    Alcotest.test_case "timeseries merge validation" `Quick test_ts_merge_validates;
    Alcotest.test_case "metrics off byte-identity: run" `Quick
      test_metrics_off_identity_run;
    Alcotest.test_case "metrics off byte-identity: run_tenants" `Quick
      test_metrics_off_identity_tenants;
    Alcotest.test_case "metrics off byte-identity: run_sharded" `Quick
      test_metrics_off_identity_sharded;
    Alcotest.test_case "sharded metrics domain determinism" `Quick
      test_sharded_metrics_domain_determinism;
    Alcotest.test_case "sharded metrics shard-count totals" `Quick
      test_sharded_metrics_shard_count_totals;
    Alcotest.test_case "telemetry csv + json shape" `Quick test_telemetry_csv_shape ]
