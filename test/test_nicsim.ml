(* Tests for the SmartNIC simulator: LRU, memory model, device ops,
   engine dynamics. *)

module Lru = Clara_util.Lru
module Heap = Clara_util.Heap
module Mem = Clara_nicsim.Mem_model
module Dev = Clara_nicsim.Device
module Eng = Clara_nicsim.Engine
module Stats = Clara_nicsim.Stats
module L = Clara_lnic
module W = Clara_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lnic = L.Netronome.default

(* ------------------------------------------------------------------ *)
(* LRU                                                                 *)

let test_lru_basics () =
  let l = Lru.create ~capacity:2 in
  check "miss on empty" false (Lru.touch l 1);
  check "hit" true (Lru.touch l 1);
  check "miss 2" false (Lru.touch l 2);
  check_int "size 2" 2 (Lru.size l);
  (* Insert 3: evicts 1 (2 was more recent... no, 1 was touched last
     before 2; order: 2 most recent, then 1). Evicts 1. *)
  check "miss 3 evicts lru" false (Lru.touch l 3);
  check "1 evicted" false (Lru.mem l 1);
  check "2 kept" true (Lru.mem l 2);
  check "3 kept" true (Lru.mem l 3)

let test_lru_recency () =
  let l = Lru.create ~capacity:2 in
  ignore (Lru.touch l 1);
  ignore (Lru.touch l 2);
  ignore (Lru.touch l 1); (* refresh 1: now 2 is LRU *)
  ignore (Lru.touch l 3);
  check "2 evicted" false (Lru.mem l 2);
  check "1 kept" true (Lru.mem l 1)

let prop_lru_capacity =
  QCheck.Test.make ~name:"lru never exceeds capacity" ~count:100
    (QCheck.pair (QCheck.int_range 1 16) (QCheck.list_of_size (QCheck.Gen.return 200) (QCheck.int_range 0 50)))
    (fun (cap, keys) ->
      let l = Lru.create ~capacity:cap in
      List.iter (fun k -> ignore (Lru.touch l k)) keys;
      Lru.size l <= cap)

(* ------------------------------------------------------------------ *)
(* Min-heap                                                            *)

let test_heap_basics () =
  let h = Heap.create () in
  check "empty" true (Heap.is_empty h);
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3 ];
  check_int "size" 5 (Heap.length h);
  check_int "min" 1 (Heap.min_elt h);
  check_int "pop 1" 1 (Heap.pop h);
  check_int "pop duplicate 1" 1 (Heap.pop h);
  check_int "pop 3" 3 (Heap.pop h);
  Heap.push h 0;
  check_int "new min after push" 0 (Heap.min_elt h);
  Heap.clear h;
  check "cleared" true (Heap.is_empty h);
  check "min_elt on empty raises" true
    (try
       ignore (Heap.min_elt h);
       false
     with Invalid_argument _ -> true)

let prop_heap_drains_sorted =
  QCheck.Test.make ~name:"heap drains in nondecreasing order" ~count:200
    (QCheck.list (QCheck.int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~capacity:1 () in
      List.iter (Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Heap.pop h) in
      Heap.is_empty h && out = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Memory model                                                        *)

let test_mem_latencies () =
  let m = Mem.create lnic in
  check_int "local read" 2 (Mem.access m Mem.Local ~mode:`Read ~addr:0);
  check_int "ctm read" 50 (Mem.access m Mem.Ctm ~mode:`Read ~addr:0);
  check_int "imem read" 250 (Mem.access m Mem.Imem ~mode:`Read ~addr:0);
  (* EMEM: first touch misses (500), second hits the cache (150). *)
  check_int "emem cold miss" 500 (Mem.access m Mem.Emem ~mode:`Read ~addr:4096);
  check_int "emem warm hit" 150 (Mem.access m Mem.Emem ~mode:`Read ~addr:4096);
  check_int "same line hit" 150 (Mem.access m Mem.Emem ~mode:`Read ~addr:4097);
  check_int "hits counted" 2 (Mem.emem_hits m);
  check_int "misses counted" 1 (Mem.emem_misses m)

let test_mem_cache_eviction () =
  let m = Mem.create lnic in
  (* Touch more lines than the 3MB cache holds, then the first line
     must miss again. *)
  let lines = (3 * 1024 * 1024 / 64) + 100 in
  for i = 0 to lines do
    ignore (Mem.access m Mem.Emem ~mode:`Read ~addr:(i * 64))
  done;
  check_int "first line evicted" 500 (Mem.access m Mem.Emem ~mode:`Read ~addr:0)

(* ------------------------------------------------------------------ *)
(* Device                                                              *)

let pkt ?(proto = W.Packet.Tcp) ?(payload = 300) ?(flags = 0) () =
  { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 9; dst_port = 80; proto; flags;
    payload_bytes = payload; arrival_ns = 0L }

let fresh_ctx ?(tables = []) ?p () =
  let prog = { Dev.name = "t"; tables; handler = (fun _ _ -> Dev.Drop) } in
  let sim = Dev.create_sim lnic prog in
  Dev.make_ctx sim ~now:0 (Option.value ~default:(pkt ()) p)

let test_device_parse_costs () =
  let ctx = fresh_ctx () in
  Dev.parse_header ctx ~engine:false;
  check_int "software parse 150" 150 (Dev.now ctx);
  let ctx2 = fresh_ctx () in
  Dev.parse_header ctx2 ~engine:true;
  check "engine parse cheaper" true (Dev.now ctx2 < 150)

let test_device_checksum_contrast () =
  let p = pkt ~payload:946 () in (* total = 1000B *)
  let ctx = fresh_ctx ~p () in
  Dev.checksum ctx ~engine:true ~bytes:1000;
  check_int "engine checksum 300 @1000B" 300 (Dev.now ctx);
  let ctx2 = fresh_ctx ~p () in
  Dev.checksum ctx2 ~engine:false ~bytes:1000;
  check "software ~1700 more (§2.1)" true (Dev.now ctx2 - Dev.now ctx >= 1500)

let test_device_table_statefulness () =
  let tables =
    [ { Dev.t_name = "t"; t_entries = 1024; t_entry_bytes = 16; t_placement = Dev.P_ctm } ]
  in
  let prog = { Dev.name = "t"; tables; handler = (fun _ _ -> Dev.Drop) } in
  let sim = Dev.create_sim lnic prog in
  let ctx = Dev.make_ctx sim ~now:0 (pkt ()) in
  check "first lookup misses" false (Dev.table_lookup ctx "t" ~key:42);
  Dev.table_insert ctx "t" ~key:42;
  check "hit after insert" true (Dev.table_lookup ctx "t" ~key:42);
  check "other key still misses" false (Dev.table_lookup ctx "t" ~key:43)

let test_device_flow_cache_dynamics () =
  let tables =
    [ { Dev.t_name = "r"; t_entries = 10000; t_entry_bytes = 16;
        t_placement = Dev.P_flow_cache } ]
  in
  let prog = { Dev.name = "t"; tables; handler = (fun _ _ -> Dev.Drop) } in
  let sim = Dev.create_sim lnic prog in
  let ctx = Dev.make_ctx sim ~now:0 (pkt ()) in
  ignore (Dev.lpm_lookup ctx "r" ~key:7);
  let cold = Dev.now ctx in
  let ctx2 = Dev.make_ctx sim ~now:0 (pkt ()) in
  ignore (Dev.lpm_lookup ctx2 "r" ~key:7);
  let warm = Dev.now ctx2 in
  (* Cold miss walks the rules; warm hit is orders cheaper (§2.1). *)
  check "cold >> warm" true (cold > 50 * warm);
  check_int "one miss" 1 (Dev.flow_cache_misses sim);
  check_int "one hit" 1 (Dev.flow_cache_hits sim)

let test_device_lpm_placement_matters () =
  let walk placement =
    let tables =
      [ { Dev.t_name = "r"; t_entries = 8000; t_entry_bytes = 16; t_placement = placement } ]
    in
    let prog = { Dev.name = "t"; tables; handler = (fun _ _ -> Dev.Drop) } in
    let sim = Dev.create_sim lnic prog in
    let ctx = Dev.make_ctx sim ~now:0 (pkt ()) in
    ignore (Dev.lpm_lookup ctx "r" ~key:1);
    Dev.now ctx
  in
  check "ctm walk < imem walk" true (walk Dev.P_ctm < walk Dev.P_imem)

let test_device_accel_serialization () =
  (* Two back-to-back engine checksums from different contexts at the
     same start time: the second waits (head-of-line blocking). *)
  let prog = { Dev.name = "t"; tables = []; handler = (fun _ _ -> Dev.Drop) } in
  let sim = Dev.create_sim lnic prog in
  let a = Dev.make_ctx sim ~now:0 (pkt ~payload:946 ()) in
  Dev.checksum a ~engine:true ~bytes:1000;
  let b = Dev.make_ctx sim ~now:0 (pkt ~payload:946 ()) in
  Dev.checksum b ~engine:true ~bytes:1000;
  check_int "a finishes at 300" 300 (Dev.now a);
  check_int "b queued behind a" 600 (Dev.now b)

let test_device_errors () =
  check "unknown table" true
    (try
       let ctx = fresh_ctx () in
       ignore (Dev.table_lookup ctx "nope" ~key:1);
       false
     with Invalid_argument _ -> true);
  check "flow cache table requires lookup accel" true
    (let soc = L.Soc_nic.default in
     try
       ignore
         (Dev.create_sim soc
            { Dev.name = "t";
              tables =
                [ { Dev.t_name = "r"; t_entries = 8; t_entry_bytes = 16;
                    t_placement = Dev.P_flow_cache } ];
              handler = (fun _ _ -> Dev.Drop) });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)

let simple_prog ?(cost_ops = 10) () =
  { Dev.name = "noop";
    tables = [];
    handler =
      (fun ctx _ ->
        Dev.alu ctx cost_ops;
        Dev.Emit) }

let trace ?(tcp = 0.8) ~packets ~rate () =
  W.Trace.synthesize ~seed:5L
    (W.Profile.make ~packets ~rate_pps:rate ~flow_count:100 ~tcp_fraction:tcp
       ~payload:(W.Dist.Fixed 300) ())

let test_engine_accounting () =
  let tr = trace ~packets:1000 ~rate:60_000. () in
  let r = Eng.run lnic (simple_prog ()) tr in
  check_int "all packets accounted" 1000
    (r.Eng.summary.Stats.packets + r.Eng.summary.Stats.drops);
  check "no drops at low load" true (r.Eng.summary.Stats.drops = 0);
  check "latency positive" true (r.Eng.summary.Stats.mean_cycles > 0.);
  check "p99 >= p50" true (r.Eng.summary.Stats.p99_cycles >= r.Eng.summary.Stats.p50_cycles)

let test_engine_latency_composition () =
  (* At negligible load, latency = wire rx + hub + ops + wire tx + hub. *)
  let tr = trace ~tcp:1.0 ~packets:50 ~rate:1_000. () in
  let r = Eng.run lnic (simple_prog ~cost_ops:0 ()) tr in
  (* 354B packet: rx = 900 + 2*354 + 20; tx same. *)
  let expect = 2. *. (900. +. (2. *. 354.) +. 20.) in
  check "uncontended latency = wire costs" true
    (abs_float (r.Eng.summary.Stats.mean_cycles -. expect) < 2.)

let test_engine_saturation () =
  (* A handler costing ~1M cycles at 60kpps on 480 threads saturates:
     latency inflates and/or drops appear. *)
  let slow =
    { Dev.name = "slow";
      tables = [];
      handler =
        (fun ctx _ ->
          Dev.alu ctx 2_000_000;
          Dev.Emit) }
  in
  let tr = trace ~packets:5_000 ~rate:400_000. () in
  let r = Eng.run lnic slow tr in
  let tr_slow = trace ~packets:5_000 ~rate:1_000. () in
  let r_easy = Eng.run lnic slow tr_slow in
  check "overload inflates latency or drops" true
    (r.Eng.summary.Stats.drops > 0
    || r.Eng.summary.Stats.mean_cycles > 2. *. r_easy.Eng.summary.Stats.mean_cycles)

let test_engine_deterministic () =
  let tr = trace ~packets:500 ~rate:60_000. () in
  let r1 = Eng.run lnic (Clara_nfs.Nat.ported ~checksum_engine:true ()) tr in
  let r2 = Eng.run lnic (Clara_nfs.Nat.ported ~checksum_engine:true ()) tr in
  check "same trace, same result" true
    (r1.Eng.summary.Stats.mean_cycles = r2.Eng.summary.Stats.mean_cycles)

(* ------------------------------------------------------------------ *)
(* NF corpus sanity                                                    *)

let test_nfs_run () =
  let tr = trace ~packets:2000 ~rate:60_000. () in
  let progs =
    [ Clara_nfs.Nat.ported ~checksum_engine:true ();
      Clara_nfs.Nat.ported ~checksum_engine:false ();
      Clara_nfs.Lpm.ported ~entries:5000 ~use_flow_cache:true ();
      Clara_nfs.Lpm.ported ~entries:5000 ~use_flow_cache:false ();
      Clara_nfs.Firewall.ported ~placement:Dev.P_ctm ();
      Clara_nfs.Firewall.ported ~placement:Dev.P_emem ();
      Clara_nfs.Dpi.ported ();
      Clara_nfs.Heavy_hitter.ported ();
      Clara_nfs.Vnf_chain.ported () ]
  in
  List.iter
    (fun prog ->
      let r = Eng.run lnic prog tr in
      check (prog.Dev.name ^ " processes packets") true
        (r.Eng.summary.Stats.packets > 0);
      check (prog.Dev.name ^ " positive latency") true
        (r.Eng.summary.Stats.mean_cycles > 0.))
    progs

let test_nat_variant_contrast () =
  (* Figure 1: the software-checksum NAT variant is measurably slower. *)
  let tr = trace ~packets:3000 ~rate:60_000. () in
  let fast = Eng.run lnic (Clara_nfs.Nat.ported ~checksum_engine:true ()) tr in
  let slow = Eng.run lnic (Clara_nfs.Nat.ported ~checksum_engine:false ()) tr in
  check "sw checksum slower" true
    (slow.Eng.summary.Stats.mean_cycles > fast.Eng.summary.Stats.mean_cycles +. 500.)

let test_lpm_variant_contrast () =
  (* Figure 1 / §2.1: flow-cache hits are orders of magnitude cheaper than
     the software walk (the per-hit contrast is in the device tests); at
     the workload level the mean ratio is diluted by cold misses, which
     pay the full walk before populating the cache. *)
  let tr = trace ~packets:8000 ~rate:60_000. () in
  let fc = Eng.run lnic (Clara_nfs.Lpm.ported ~entries:20000 ~use_flow_cache:true ()) tr in
  let sw = Eng.run lnic (Clara_nfs.Lpm.ported ~entries:20000 ~use_flow_cache:false ()) tr in
  check "flow cache >5x faster on average" true
    (sw.Eng.summary.Stats.mean_cycles > 5. *. fc.Eng.summary.Stats.mean_cycles);
  check "flow cache hit rate high" true (fc.Eng.flow_cache_hit_rate > 0.9)

let test_engine_thread_parameter () =
  (* One thread at a meaningful rate: queueing (and possibly drops) must
     appear relative to the full thread pool. *)
  let tr = trace ~packets:2000 ~rate:200_000. () in
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let wide = Eng.run lnic prog tr in
  let narrow = Eng.run ~threads:1 lnic prog tr in
  check "narrow pool slower or dropping" true
    (narrow.Eng.summary.Stats.mean_cycles > wide.Eng.summary.Stats.mean_cycles
    || narrow.Eng.summary.Stats.drops > wide.Eng.summary.Stats.drops)

let test_run_pair_coresidency () =
  let prog_a = Clara_nfs.Firewall.ported ~entries:1_000_000 ~placement:Dev.P_emem () in
  let prog_b = Clara_nfs.Kv_store.ported ~placement:Dev.P_emem () in
  let prof rate seed =
    W.Trace.synthesize ~seed
      (W.Profile.make ~packets:4000 ~rate_pps:rate ~flow_count:2000
         ~payload:(W.Dist.Fixed 300) ())
  in
  let tr_a = prof 400_000. 31L and tr_b = prof 400_000. 57L in
  let solo_a = Eng.run lnic prog_a tr_a in
  let co_a, co_b = Eng.run_pair lnic prog_a prog_b tr_a tr_b in
  check "both sides processed" true
    (co_a.Eng.summary.Stats.packets > 0 && co_b.Eng.summary.Stats.packets > 0);
  (* Sharing the EMEM cache and DMA lanes can only hurt. *)
  check "co-residency does not speed things up" true
    (co_a.Eng.summary.Stats.mean_cycles >= solo_a.Eng.summary.Stats.mean_cycles -. 50.);
  (* Table name clash rejected. *)
  check "table clash rejected" true
    (try
       ignore (Dev.create_sim_shared lnic [ prog_a; prog_a ]);
       false
     with Invalid_argument _ -> true)

let test_engine_out_of_order_retirement () =
  (* Regression: the in-flight window used to retire in FIFO order, so
     every packet that finished early stayed "queued" behind one slow
     packet and the engine fired spurious drops.  One pathological
     packet on one of three threads must not drop anything at a rate
     the other two threads absorb easily. *)
  let first = ref true in
  let prog =
    { Dev.name = "one-slow";
      tables = [];
      handler =
        (fun ctx _ ->
          if !first then begin
            first := false;
            Dev.alu ctx 200_000_000
          end
          else Dev.alu ctx 10;
          Dev.Emit) }
  in
  let tr = trace ~packets:2000 ~rate:100_000. () in
  let r = Eng.run ~threads:3 lnic prog tr in
  check "no spurious drops behind one slow packet" true
    (r.Eng.summary.Stats.drops = 0);
  check_int "everything processed" 2000 r.Eng.summary.Stats.packets

let test_run_pair_capacity_clamp () =
  (* Regression: run_pair halves the ingress queue; a capacity-1 hub
     used to round down to zero and drop any packet that found the
     thread busy. *)
  let hubs =
    Array.map
      (fun (h : L.Hub.t) ->
        if h.L.Hub.kind = `Ingress then { h with L.Hub.queue_capacity = 1 } else h)
      lnic.L.Graph.hubs
  in
  let tiny = { lnic with L.Graph.hubs = hubs } in
  let mk arrival_ns =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 1; dst_port = 2;
      proto = W.Packet.Udp; flags = 0; payload_bytes = 64; arrival_ns }
  in
  let tr_a = W.Trace.of_packets [| mk 0L; mk 10L |] in
  let tr_b = W.Trace.of_packets [||] in
  let prog_b = { (simple_prog ()) with Dev.name = "noop-b" } in
  let ra, _rb = Eng.run_pair ~threads:2 tiny (simple_prog ()) prog_b tr_a tr_b in
  check_int "both packets accepted" 2 ra.Eng.summary.Stats.packets;
  check "no drops with clamped half-queue" true (ra.Eng.summary.Stats.drops = 0)

let test_firewall_placement_contrast () =
  let tr = trace ~packets:3000 ~rate:60_000. () in
  let ctm = Eng.run lnic (Clara_nfs.Firewall.ported ~entries:4096 ~placement:Dev.P_ctm ()) tr in
  let emem = Eng.run lnic (Clara_nfs.Firewall.ported ~entries:4096 ~placement:Dev.P_emem ()) tr in
  check "CTM state faster than EMEM" true
    (ctm.Eng.summary.Stats.mean_cycles < emem.Eng.summary.Stats.mean_cycles)

(* ------------------------------------------------------------------ *)
(* Steady-state fast path + domain-parallel sharding                   *)

(* Full structural equality of everything a result reports except the
   fast-path counters themselves. *)
let same_result (a : Eng.result) (b : Eng.result) =
  compare a.Eng.summary b.Eng.summary = 0
  && compare a.Eng.emem_hit_rate b.Eng.emem_hit_rate = 0
  && compare a.Eng.flow_cache_hit_rate b.Eng.flow_cache_hit_rate = 0
  && a.Eng.freq_mhz = b.Eng.freq_mhz

(* A stateless-but-nontrivial handler: accelerators, DMA, flat memory,
   packet-dependent branching — everything the recorder must capture —
   and no mutable simulator state. *)
let stateless_prog () =
  { Dev.name = "stateless";
    tables = [];
    handler =
      (fun ctx pkt ->
        Dev.parse_header ctx ~engine:true;
        Dev.alu ctx 40;
        Dev.checksum ctx ~engine:true ~bytes:(W.Packet.total_bytes pkt);
        Dev.local_read ctx 2;
        Dev.branch ctx;
        if W.Packet.is_syn pkt then Dev.alu ctx 25;
        Dev.Emit) }

let test_fastpath_stateless_identity () =
  (* Byte-identity: the fast path must reproduce the event path exactly
     on a stateless NF, at a rate high enough for queueing/contention to
     matter. *)
  let tr = trace ~packets:4000 ~rate:400_000. () in
  let slow = Eng.run lnic (stateless_prog ()) tr in
  let fast = Eng.run ~fast:(Eng.Auto { warmup = 100 }) lnic (stateless_prog ()) tr in
  check "summaries byte-identical" true (same_result slow fast);
  check "fast path actually replayed" true (fast.Eng.fast.Clara_nicsim.Fastpath.replayed > 0);
  check "event path never replays" true (slow.Eng.fast.Clara_nicsim.Fastpath.replayed = 0);
  (* The DPI port is the corpus's stateless NF; same identity must hold. *)
  let slow_d = Eng.run lnic (Clara_nfs.Dpi.ported ()) tr in
  let fast_d = Eng.run ~fast:(Eng.Auto { warmup = 100 }) lnic (Clara_nfs.Dpi.ported ()) tr in
  check "dpi byte-identical" true (same_result slow_d fast_d);
  check "dpi replayed" true (fast_d.Eng.fast.Clara_nicsim.Fastpath.replayed > 0)

let test_fastpath_stateful_fallback () =
  (* Stateful NFs (tables, flow cache, EMEM) must poison every key and
     never replay — and still produce identical results. *)
  let tr = trace ~packets:3000 ~rate:60_000. () in
  List.iter
    (fun prog ->
      let slow = Eng.run lnic prog tr in
      let fast = Eng.run ~fast:(Eng.Auto { warmup = 10 }) lnic prog tr in
      check (prog.Dev.name ^ " stateful: nothing replayed") true
        (fast.Eng.fast.Clara_nicsim.Fastpath.replayed = 0);
      check (prog.Dev.name ^ " stateful: results unchanged") true
        (same_result slow fast))
    [ Clara_nfs.Nat.ported ~checksum_engine:true ();
      Clara_nfs.Firewall.ported ~placement:Dev.P_emem () ]

let test_fastpath_closure_state_poisoned () =
  (* Handler statefulness the Device layer cannot see: an OCaml closure
     over a ref whose cost alternates per call.  With a single repeated
     packet, the key's first two sightings disagree, so two-sighting
     confirmation must poison it — nothing replays and results stay
     identical to the event path.  (A closure that behaves consistently
     twice and diverges later is undetectable dynamically; that is why
     [Auto] is opt-in and the CLI gates it on the static sharing
     verdict.) *)
  let mk () =
    let n = ref 0 in
    { Dev.name = "closure";
      tables = [];
      handler =
        (fun ctx _ ->
          incr n;
          Dev.alu ctx (if !n mod 2 = 0 then 40 else 20);
          Dev.Emit) }
  in
  let one = pkt ~proto:W.Packet.Udp ~payload:64 () in
  let tr =
    W.Trace.of_packets
      (Array.init 200 (fun i ->
           { one with W.Packet.arrival_ns = Int64.of_int (i * 100_000) }))
  in
  let slow = Eng.run lnic (mk ()) tr in
  let fast = Eng.run ~fast:(Eng.Auto { warmup = 0 }) lnic (mk ()) tr in
  check "closure key poisoned, nothing replayed" true
    (fast.Eng.fast.Clara_nicsim.Fastpath.replayed = 0);
  check "closure-stateful results unchanged" true (same_result slow fast)

let test_fastpath_warmup_boundary () =
  (* Replay is gated on seq >= warmup.  warmup = n must behave exactly
     like the event path (no packet ever reaches the gate); warmup = 0
     replays as soon as a key is confirmed (from the 3rd sighting on). *)
  let one = pkt ~proto:W.Packet.Udp ~payload:64 () in
  let packets = Array.init 10 (fun i -> { one with W.Packet.arrival_ns = Int64.of_int (i * 1_000_000) }) in
  let tr = W.Trace.of_packets packets in
  let r_all = Eng.run ~fast:(Eng.Auto { warmup = 10 }) lnic (stateless_prog ()) tr in
  check "warmup = n never replays" true
    (r_all.Eng.fast.Clara_nicsim.Fastpath.replayed = 0);
  let r_zero = Eng.run ~fast:(Eng.Auto { warmup = 0 }) lnic (stateless_prog ()) tr in
  (* 10 identical packets: sightings 1-2 record+confirm, 3-10 replay. *)
  check_int "warmup = 0 replays after confirmation" 8
    r_zero.Eng.fast.Clara_nicsim.Fastpath.replayed;
  let r_three = Eng.run ~fast:(Eng.Auto { warmup = 3 }) lnic (stateless_prog ()) tr in
  (* seq 0,1 confirm; seq 2 is confirmed but below the gate; 3-9 replay. *)
  check_int "warmup = 3 gates exactly seqs 0-2" 7
    r_three.Eng.fast.Clara_nicsim.Fastpath.replayed;
  check "warmup boundary results identical" true
    (same_result r_all r_zero && same_result r_all r_three)

let test_run_pair_tie_determinism () =
  (* Regression: the co-run merge sorted on arrival alone with an
     unstable sort, so packets from A and B with colliding timestamps
     interleaved unpredictably.  With many equal-time packets, repeated
     runs must agree exactly, and A must sort before B at equal time
     (observable via the shared-accelerator contention they generate). *)
  let mk side i =
    { W.Packet.src_ip = Int32.of_int (side * 1000 + i); dst_ip = 2l;
      src_port = 1; dst_port = 2; proto = W.Packet.Udp; flags = 0;
      payload_bytes = 64 + (7 * i mod 100);
      arrival_ns = Int64.of_int (i / 4 * 1000) (* 4-way timestamp collisions *) }
  in
  let tr_a = W.Trace.of_packets (Array.init 400 (mk 1)) in
  let tr_b = W.Trace.of_packets (Array.init 400 (mk 2)) in
  let busy name =
    { Dev.name;
      tables = [];
      handler =
        (fun ctx pkt ->
          Dev.checksum ctx ~engine:true ~bytes:(W.Packet.total_bytes pkt);
          Dev.Emit) }
  in
  let run1 = Eng.run_pair lnic (busy "a") (busy "b") tr_a tr_b in
  let run2 = Eng.run_pair lnic (busy "a") (busy "b") tr_a tr_b in
  check "pair run deterministic (side a)" true (same_result (fst run1) (fst run2));
  check "pair run deterministic (side b)" true (same_result (snd run1) (snd run2))

let test_run_pair_per_side_hit_rates () =
  (* Regression: both sides used to report the shared sim's combined
     emem/flow-cache ratios, so A and B were always identical.  Give A a
     cache-friendly one-flow EMEM workload and B a cache-hostile scan;
     their reported rates must now differ, and each side's rate must
     come from its own counters. *)
  let mk_a i =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 1; dst_port = 2;
      proto = W.Packet.Udp; flags = 0; payload_bytes = 64;
      arrival_ns = Int64.of_int (i * 100_000) }
  in
  let mk_b i =
    { W.Packet.src_ip = Int32.of_int (100_000 + (i * 7919)); dst_ip = 3l;
      src_port = 5; dst_port = 6; proto = W.Packet.Udp; flags = 0;
      payload_bytes = 64; arrival_ns = Int64.of_int (50_000 + (i * 100_000)) }
  in
  let table name =
    [ { Dev.t_name = name; t_entries = 1 lsl 16; t_entry_bytes = 64;
        t_placement = Dev.P_emem } ]
  in
  (* A hammers one key (EMEM hits after the first touch); B strides its
     unique flow key across the table (mostly misses). *)
  let prog_a =
    { Dev.name = "hot";
      tables = table "ta";
      handler = (fun ctx _ -> ignore (Dev.table_lookup ctx "ta" ~key:1); Dev.Emit) }
  in
  let prog_b =
    { Dev.name = "cold";
      tables = table "tb";
      handler =
        (fun ctx pkt ->
          ignore (Dev.table_lookup ctx "tb" ~key:(W.Packet.flow_key pkt));
          Dev.Emit) }
  in
  let tr_a = W.Trace.of_packets (Array.init 400 mk_a) in
  let tr_b = W.Trace.of_packets (Array.init 400 mk_b) in
  let ra, rb = Eng.run_pair lnic prog_a prog_b tr_a tr_b in
  check "side A hit rate high" true (ra.Eng.emem_hit_rate > 0.9);
  check "side B hit rate lower" true (rb.Eng.emem_hit_rate < ra.Eng.emem_hit_rate -. 0.2)

let test_run_sharded_domain_determinism () =
  (* Pool determinism: for a fixed shard count the merged result must be
     byte-identical whether the shards run on 1 domain or several. *)
  let tr = trace ~packets:3000 ~rate:200_000. () in
  let prog () = Clara_nfs.Dpi.ported () in
  let r1 = Eng.run_sharded ~domains:1 ~shards:4 lnic (prog ()) tr in
  let r4 = Eng.run_sharded ~domains:4 ~shards:4 lnic (prog ()) tr in
  check "1 vs N domains byte-identical" true (same_result r1 r4);
  check_int "all packets accounted" 3000
    (r1.Eng.summary.Stats.packets + r1.Eng.summary.Stats.drops);
  (* Repeatable too. *)
  let r4' = Eng.run_sharded ~domains:4 ~shards:4 lnic (prog ()) tr in
  check "repeated sharded run identical" true (same_result r4 r4');
  (* Fast path composes with sharding. *)
  let rf = Eng.run_sharded ~domains:4 ~shards:4 ~fast:(Eng.Auto { warmup = 50 }) lnic (prog ()) tr in
  check "sharded fast path identical" true (same_result r1 rf)

(* ------------------------------------------------------------------ *)
(* N-tenant WRR scheduling                                             *)

module Sch = Clara_nicsim.Scheduler

let test_scheduler_split_conserves () =
  (* Regression: run_pair/run_sharded used floor division, losing up to
     shards-1 threads (480/7 dropped 4). *)
  let seven = Sch.split ~total:480 ~weights:(Array.make 7 1) in
  check_int "480/7 sums to 480" 480 (Array.fold_left ( + ) 0 seven);
  check "remainder to lower indices" true
    (seven = [| 69; 69; 69; 69; 68; 68; 68 |]);
  (* Weighted: floors 8,1 of 10*5/6,10*1/6; remainder unit to index 0. *)
  check "weighted split" true (Sch.split ~total:10 ~weights:[| 5; 1 |] = [| 9; 1 |]);
  (* Pool too small to conserve: clamp every tenant to 1. *)
  check "min-1 clamp" true (Sch.split ~total:1 ~weights:[| 1; 1 |] = [| 1; 1 |]);
  check "clamp under heavy skew" true
    (Array.for_all (fun p -> p >= 1) (Sch.split ~total:12 ~weights:[| 100; 1; 1 |]));
  check_int "skewed split still conserves" 12
    (Array.fold_left ( + ) 0 (Sch.split ~total:12 ~weights:[| 100; 1; 1 |]))

let test_scheduler_wrr_order () =
  (* Two-stage WRR, weights 2:1 — the granted tenant drains up to its
     credit, then the grant rotates; credits replenish only when every
     backlogged tenant is spent. *)
  let s = Sch.create ~weights:[| 2; 1 |] in
  List.iter (fun x -> Sch.enqueue s ~tenant:0 x) [ "a1"; "a2"; "a3"; "a4" ];
  List.iter (fun x -> Sch.enqueue s ~tenant:1 x) [ "b1"; "b2" ];
  let order = ref [] in
  Sch.drain s (fun t x -> order := (t, x) :: !order);
  check "wrr order" true
    (List.rev !order
    = [ (0, "a1"); (0, "a2"); (1, "b1"); (0, "a3"); (0, "a4"); (1, "b2") ]);
  check "empty after drain" true (Sch.is_empty s)

let test_run_tenants_matches_run_pair () =
  (* run_pair is now the N = 2, equal-weights case; the two entry points
     must agree exactly. *)
  let tr_a = trace ~packets:1500 ~rate:300_000. () in
  let tr_b =
    W.Trace.synthesize ~seed:9L
      (W.Profile.make ~packets:1500 ~rate_pps:300_000. ~flow_count:50
         ~tcp_fraction:0.5 ~payload:(W.Dist.Fixed 200) ())
  in
  let mk_a () = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let mk_b () = Clara_nfs.Dpi.ported () in
  let pa, pb = Eng.run_pair lnic (mk_a ()) (mk_b ()) tr_a tr_b in
  let rs = Eng.run_tenants lnic [| mk_a (); mk_b () |] [| tr_a; tr_b |] in
  check_int "two results" 2 (Array.length rs);
  check "tenant 0 == pair side a" true (same_result pa rs.(0));
  check "tenant 1 == pair side b" true (same_result pb rs.(1))

let test_run_tenants_deterministic () =
  (* WRR scheduling must be reproducible even with 4-way timestamp
     collisions across three tenants. *)
  let mk_tr side =
    W.Trace.of_packets
      (Array.init 300 (fun i ->
           { W.Packet.src_ip = Int32.of_int ((side * 1000) + i); dst_ip = 2l;
             src_port = 1; dst_port = 2; proto = W.Packet.Udp; flags = 0;
             payload_bytes = 64 + (7 * i mod 100);
             arrival_ns = Int64.of_int (i / 4 * 1000) }))
  in
  let busy name =
    { Dev.name;
      tables = [];
      handler =
        (fun ctx pkt ->
          Dev.checksum ctx ~engine:true ~bytes:(W.Packet.total_bytes pkt);
          Dev.Emit) }
  in
  let progs () = [| busy "a"; busy "b"; busy "c" |] in
  let traces = [| mk_tr 1; mk_tr 2; mk_tr 3 |] in
  let weights = [| 3; 2; 1 |] in
  let r1 = Eng.run_tenants ~weights lnic (progs ()) traces in
  let r2 = Eng.run_tenants ~weights lnic (progs ()) traces in
  Array.iteri
    (fun i r -> check (Printf.sprintf "tenant %d deterministic" i) true
        (same_result r r2.(i)))
    r1;
  check_int "all packets accounted" 900
    (Array.fold_left
       (fun a (r : Eng.result) ->
         a + r.Eng.summary.Stats.packets + r.Eng.summary.Stats.drops)
       0 r1)

let test_run_tenants_starved_tenant () =
  (* Fairness: three copies of an expensive NF at a rate only the
     weight-8 slice can sustain; the starved weight-1 tenants must see
     worse tail latency or drops, never the reverse. *)
  let heavy = simple_prog ~cost_ops:150_000 in
  let tr i =
    W.Trace.synthesize ~seed:(Int64.of_int (11 + i))
      (W.Profile.make ~packets:1200 ~rate_pps:400_000. ~flow_count:100
         ~tcp_fraction:0.8 ~payload:(W.Dist.Fixed 300) ())
  in
  let rs =
    Eng.run_tenants ~weights:[| 8; 1; 1 |] lnic
      [| heavy (); heavy (); heavy () |]
      [| tr 0; tr 1; tr 2 |]
  in
  (* Latency percentiles are computed over admitted packets only, so a
     starved tenant shedding its worst-wait packets can report a
     deceptively low p99 — goodput and drops are the honest fairness
     metrics. *)
  let admitted i = rs.(i).Eng.summary.Stats.packets in
  let drops i = rs.(i).Eng.summary.Stats.drops in
  check "heavy tenant drops no more" true (drops 0 <= drops 1 && drops 0 <= drops 2);
  check "heavy tenant goodput no worse" true
    (admitted 0 >= admitted 1 && admitted 0 >= admitted 2);
  check "starved tenants actually shed load" true (drops 1 > drops 0 && drops 2 > drops 0)

let test_run_tenants_thread_conservation () =
  (* Odd pools must neither crash the conservation assertion nor starve
     a tenant: 7 threads across 2 tenants -> 4 + 3. *)
  let tr () = trace ~packets:400 ~rate:100_000. () in
  let rs =
    Eng.run_tenants ~threads:7 lnic
      [| simple_prog (); Clara_nfs.Dpi.ported () |]
      [| tr (); tr () |]
  in
  check_int "both tenants report" 2 (Array.length rs);
  Array.iter
    (fun (r : Eng.result) ->
      check_int "tenant packets accounted" 400
        (r.Eng.summary.Stats.packets + r.Eng.summary.Stats.drops))
    rs

let test_run_queue_capacity_exposed () =
  (* ?queue_capacity on Engine.run: a burst of same-tick packets against
     capacity 1 + one thread admits exactly capacity + threads packets. *)
  let burst =
    W.Trace.of_packets
      (Array.init 100 (fun i ->
           { W.Packet.src_ip = Int32.of_int i; dst_ip = 2l; src_port = 1;
             dst_port = 2; proto = W.Packet.Udp; flags = 0; payload_bytes = 64;
             arrival_ns = 0L }))
  in
  let tight = Eng.run ~threads:1 ~queue_capacity:1 lnic (simple_prog ()) burst in
  check_int "capacity 1 + 1 thread admits 2" 2 tight.Eng.summary.Stats.packets;
  check_int "rest dropped" 98 tight.Eng.summary.Stats.drops;
  let roomy = Eng.run ~threads:1 ~queue_capacity:200 lnic (simple_prog ()) burst in
  check_int "large capacity admits all" 100 roomy.Eng.summary.Stats.packets

let test_run_sharded_odd_shards () =
  (* Regression: 480 threads / 7 shards used to drop 4 threads on the
     floor.  The split now conserves the pool, and sharded runs stay
     deterministic at odd shard counts. *)
  let tr = trace ~packets:2100 ~rate:200_000. () in
  let prog () = Clara_nfs.Dpi.ported () in
  let r1 = Eng.run_sharded ~domains:1 ~shards:7 lnic (prog ()) tr in
  let r3 = Eng.run_sharded ~domains:3 ~shards:7 lnic (prog ()) tr in
  check "odd shards: 1 vs 3 domains byte-identical" true (same_result r1 r3);
  check_int "odd shards: all packets accounted" 2100
    (r1.Eng.summary.Stats.packets + r1.Eng.summary.Stats.drops)

let test_stats_merge () =
  let mk latencies =
    let s = Stats.create () in
    List.iter
      (fun c -> Stats.record s ~proto:W.Packet.Udp ~syn:false ~latency_cycles:c)
      latencies;
    s
  in
  let a = mk [ 10; 30 ] and b = mk [ 20; 40 ] in
  Stats.record_drop b;
  let m = Stats.summarize (Stats.merge [ a; b ]) in
  check_int "merged count" 4 m.Stats.packets;
  check_int "merged drops" 1 m.Stats.drops;
  check_int "merged p50" 20 m.Stats.p50_cycles;
  check_int "merged max" 40 m.Stats.max_cycles;
  check "merged mean" true (abs_float (m.Stats.mean_cycles -. 25.) < 1e-9)

let test_stats_nearest_rank_percentile () =
  (* Regression: [Stats.summarize] used to index round(p*n), reporting
     p50 of [1;2;3;4] as 3.  Nearest-rank is ceil(p*n)-th smallest. *)
  let s = Stats.create () in
  List.iter
    (fun c -> Stats.record s ~proto:W.Packet.Udp ~syn:false ~latency_cycles:c)
    [ 4; 1; 3; 2 ];
  let sum = Stats.summarize s in
  check_int "p50 of [1;2;3;4]" 2 sum.Stats.p50_cycles;
  check_int "p99 of [1;2;3;4]" 4 sum.Stats.p99_cycles;
  check_int "max of [1;2;3;4]" 4 sum.Stats.max_cycles;
  let s2 = Stats.create () in
  for i = 1 to 100 do
    Stats.record s2 ~proto:W.Packet.Tcp ~syn:false ~latency_cycles:i
  done;
  let sum2 = Stats.summarize s2 in
  check_int "p50 of 1..100" 50 sum2.Stats.p50_cycles;
  check_int "p99 of 1..100" 99 sum2.Stats.p99_cycles;
  (* Single sample: every percentile is that sample. *)
  let s3 = Stats.create () in
  Stats.record s3 ~proto:W.Packet.Udp ~syn:false ~latency_cycles:7;
  let sum3 = Stats.summarize s3 in
  check_int "p50 of singleton" 7 sum3.Stats.p50_cycles;
  check_int "p99 of singleton" 7 sum3.Stats.p99_cycles

let suite =
  [ Alcotest.test_case "lru basics" `Quick test_lru_basics;
    Alcotest.test_case "lru recency" `Quick test_lru_recency;
    Alcotest.test_case "heap basics" `Quick test_heap_basics;
    Alcotest.test_case "memory latencies (§3.2 numbers)" `Quick test_mem_latencies;
    Alcotest.test_case "emem cache eviction" `Quick test_mem_cache_eviction;
    Alcotest.test_case "device parse costs" `Quick test_device_parse_costs;
    Alcotest.test_case "device checksum contrast (§2.1)" `Quick test_device_checksum_contrast;
    Alcotest.test_case "device table statefulness" `Quick test_device_table_statefulness;
    Alcotest.test_case "flow cache dynamics" `Quick test_device_flow_cache_dynamics;
    Alcotest.test_case "lpm placement matters" `Quick test_device_lpm_placement_matters;
    Alcotest.test_case "accelerator serialization" `Quick test_device_accel_serialization;
    Alcotest.test_case "device errors" `Quick test_device_errors;
    Alcotest.test_case "engine accounting" `Quick test_engine_accounting;
    Alcotest.test_case "engine latency composition" `Quick test_engine_latency_composition;
    Alcotest.test_case "engine saturation" `Quick test_engine_saturation;
    Alcotest.test_case "engine determinism" `Quick test_engine_deterministic;
    Alcotest.test_case "all NFs run" `Quick test_nfs_run;
    Alcotest.test_case "NAT variants (Fig 1)" `Quick test_nat_variant_contrast;
    Alcotest.test_case "LPM variants (Fig 1)" `Quick test_lpm_variant_contrast;
    Alcotest.test_case "FW placement (Fig 1)" `Quick test_firewall_placement_contrast;
    Alcotest.test_case "engine thread parameter" `Quick test_engine_thread_parameter;
    Alcotest.test_case "out-of-order retirement" `Quick test_engine_out_of_order_retirement;
    Alcotest.test_case "co-resident run_pair" `Quick test_run_pair_coresidency;
    Alcotest.test_case "run_pair capacity clamp" `Quick test_run_pair_capacity_clamp;
    Alcotest.test_case "stats nearest-rank percentiles" `Quick
      test_stats_nearest_rank_percentile;
    Alcotest.test_case "fast path: stateless byte-identity" `Quick
      test_fastpath_stateless_identity;
    Alcotest.test_case "fast path: stateful fallback" `Quick
      test_fastpath_stateful_fallback;
    Alcotest.test_case "fast path: closure state poisoned" `Quick
      test_fastpath_closure_state_poisoned;
    Alcotest.test_case "fast path: warm-up boundary" `Quick test_fastpath_warmup_boundary;
    Alcotest.test_case "run_pair tie-break determinism" `Quick
      test_run_pair_tie_determinism;
    Alcotest.test_case "run_pair per-side hit rates" `Quick
      test_run_pair_per_side_hit_rates;
    Alcotest.test_case "scheduler split conserves pools" `Quick
      test_scheduler_split_conserves;
    Alcotest.test_case "scheduler WRR order" `Quick test_scheduler_wrr_order;
    Alcotest.test_case "run_tenants == run_pair at N=2" `Quick
      test_run_tenants_matches_run_pair;
    Alcotest.test_case "run_tenants determinism" `Quick test_run_tenants_deterministic;
    Alcotest.test_case "run_tenants starved tenant" `Quick
      test_run_tenants_starved_tenant;
    Alcotest.test_case "run_tenants thread conservation" `Quick
      test_run_tenants_thread_conservation;
    Alcotest.test_case "run queue capacity exposed" `Quick
      test_run_queue_capacity_exposed;
    Alcotest.test_case "run_sharded odd shard count" `Quick test_run_sharded_odd_shards;
    Alcotest.test_case "run_sharded domain determinism" `Quick
      test_run_sharded_domain_determinism;
    Alcotest.test_case "stats merge" `Quick test_stats_merge ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_lru_capacity; prop_heap_drains_sorted ]
