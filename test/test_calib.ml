(* Tests for lib/calib: component alignment, the JSONL ledger, and the
   report's drift detection. *)

module Calib = Clara_calib.Calib
module J = Clara_util.Json

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let close ?(eps = 1e-6) a b = Float.abs (a -. b) <= eps

let small_case ~nf ~nic =
  { (Calib.default_case ~nf ~nic) with Calib.case_packets = 600; case_flows = 200 }

let run_ok c =
  match Calib.run_case c with
  | Ok r -> r
  | Error e -> Alcotest.failf "run_case: %s" e

(* ------------------------------------------------------------------ *)
(* run_case: component alignment                                       *)

let test_components_tile () =
  let r = run_ok (small_case ~nf:"nat" ~nic:"netronome") in
  check "pred components tile pred mean" true
    (close (Calib.csum r.Calib.pred_comp) r.Calib.pred_mean);
  check "sim components tile sim mean" true
    (close (Calib.csum r.Calib.sim_comp) r.Calib.sim_mean);
  check "errors sum to the mean gap" true
    (close (Calib.csum r.Calib.err_comp) (r.Calib.pred_mean -. r.Calib.sim_mean));
  (* The static model has no queueing or contention. *)
  check "pred queue is zero" true (r.Calib.pred_comp.Calib.c_queue = 0.);
  check "pred accel-wait is zero" true (r.Calib.pred_comp.Calib.c_accel_wait = 0.);
  check "packets attributed" true (r.Calib.packets > 0)

let test_path_argument_resolves () =
  let r = run_ok (small_case ~nf:"examples/nf_sources/syn_proxy.clara" ~nic:"netronome") in
  check_str "path reduces to corpus name" "syn-proxy" r.Calib.nf

let test_unknown_cases_error () =
  (match Calib.run_case (small_case ~nf:"no-such-nf" ~nic:"netronome") with
  | Error e -> check "unknown nf named" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "expected unknown-NF error");
  match Calib.run_case (small_case ~nf:"nat" ~nic:"no-such-nic") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected unknown-NIC error"

(* ------------------------------------------------------------------ *)
(* Ledger                                                              *)

let with_temp_ledger f =
  let path = Filename.temp_file "clara-test-ledger" ".jsonl" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () ->
      Sys.remove path;
      f path)

let mk_record ?(nf = "nat") ?(nic = "netronome") ?(gap = 5.) ?(gap_p50 = 2.) () =
  let sim_mean = 1000. in
  let pred_mean = sim_mean *. (1. +. (gap /. 100.)) in
  {
    Calib.nf;
    nic;
    workload = "p300,n600,f200,r60000,tcp0.80";
    seed = 42;
    packets = 600;
    pred_mean;
    pred_p50 = 990.;
    pred_p99 = 1400.;
    sim_mean;
    sim_p50 = 980.;
    sim_p99 = 1390.;
    gap_mean_pct = gap;
    gap_p50_pct = gap_p50;
    gap_p99_pct = 0.7;
    pred_comp = { Calib.zero_components with Calib.c_compute = pred_mean };
    sim_comp =
      { Calib.zero_components with Calib.c_compute = 900.; c_mem = 100. };
    err_comp =
      { Calib.c_queue = 0.; c_compute = pred_mean -. 900.; c_accel_wait = 0.;
        c_mem = -100.; c_wire = 0. };
    prov = Calib.current_provenance ~options_hash:"testhash";
  }

let test_record_json_roundtrip () =
  let r = mk_record () in
  (match Calib.record_of_json (Calib.record_to_json r) with
  | Ok r' -> check "roundtrip preserves the record" true (r = r')
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  match Calib.record_of_json (J.Obj [ ("nf", J.String "x") ]) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error on truncated record"

let test_ledger_append_load () =
  with_temp_ledger (fun path ->
      (match Calib.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "missing ledger should be an error");
      let r1 = mk_record ~gap:5. () in
      let r2 = mk_record ~gap:7. () in
      Calib.append ~path r1;
      Calib.append ~path r2;
      match Calib.load ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok rs ->
          check_int "two records" 2 (List.length rs);
          check "append order preserved" true (rs = [ r1; r2 ]))

let test_ledger_malformed_line () =
  with_temp_ledger (fun path ->
      Calib.append ~path (mk_record ());
      let oc = open_out_gen [ Open_append; Open_wronly ] 0o644 path in
      output_string oc "{not json\n";
      close_out oc;
      match Calib.load ~path with
      | Error e -> check "error names the line" true (String.length e > 0)
      | Ok _ -> Alcotest.fail "expected malformed-line error")

(* ------------------------------------------------------------------ *)
(* Report + drift                                                      *)

let test_report_groups_and_worst () =
  let recs =
    [ mk_record ~nf:"nat" ~gap:5. (); mk_record ~nf:"lpm" ~gap:(-30.) ();
      mk_record ~nf:"nat" ~gap:6. () ]
  in
  let rep = Calib.build_report recs in
  check_int "two groups" 2 (List.length rep.Calib.groups);
  let nat =
    List.find (fun g -> g.Calib.g_nf = "nat") rep.Calib.groups
  in
  check_int "nat has two entries" 2 nat.Calib.g_entries;
  check "latest entry wins" true (nat.Calib.g_latest.Calib.gap_mean_pct = 6.);
  check_str "worst component is compute" "compute" nat.Calib.g_worst;
  match Calib.report_to_json rep with
  | J.Obj kvs ->
      check "json has groups" true (List.mem_assoc "groups" kvs);
      check "json has drifts" true (List.mem_assoc "drifts" kvs)
  | _ -> Alcotest.fail "report json is not an object"

let test_drift_detection () =
  (* A perturbed latest entry must be flagged; growth below the
     threshold must not. *)
  let stable = [ mk_record ~gap:5. (); mk_record ~gap:8. () ] in
  let rep = Calib.build_report ~drift_threshold:5. stable in
  check "3pp growth under a 5pp threshold" true (rep.Calib.drifts = []);
  let drifted = [ mk_record ~gap:5. (); mk_record ~gap:25. () ] in
  let rep = Calib.build_report ~drift_threshold:5. drifted in
  (match rep.Calib.drifts with
  | [ d ] ->
      check_str "drifting metric" "mean" d.Calib.dr_metric;
      check "prev gap recorded" true (d.Calib.dr_prev_pct = 5.);
      check "latest gap recorded" true (d.Calib.dr_latest_pct = 25.)
  | ds -> Alcotest.failf "expected 1 drift, got %d" (List.length ds));
  (* Shrinking error is not drift — the gate is one-sided. *)
  let improved = [ mk_record ~gap:(-25.) (); mk_record ~gap:(-3.) () ] in
  check "improvement is not drift" true
    ((Calib.build_report ~drift_threshold:5. improved).Calib.drifts = []);
  (* p50 drifts independently of the mean. *)
  let p50_drift =
    [ mk_record ~gap:5. ~gap_p50:1. (); mk_record ~gap:5. ~gap_p50:20. () ]
  in
  match (Calib.build_report ~drift_threshold:5. p50_drift).Calib.drifts with
  | [ d ] -> check_str "p50 metric flagged" "p50" d.Calib.dr_metric
  | ds -> Alcotest.failf "expected 1 p50 drift, got %d" (List.length ds)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_pp_report_renders () =
  let rep =
    Calib.build_report ~drift_threshold:5.
      [ mk_record ~gap:5. (); mk_record ~gap:25. () ]
  in
  let text = Format.asprintf "%a" Calib.pp_report rep in
  check "report names the nf" true (contains text "nat");
  check "report shouts about drift" true (contains text "DRIFT")

let suite =
  [ Alcotest.test_case "components tile the totals" `Quick test_components_tile;
    Alcotest.test_case "path argument resolves to corpus NF" `Quick
      test_path_argument_resolves;
    Alcotest.test_case "unknown nf/nic are errors" `Quick test_unknown_cases_error;
    Alcotest.test_case "record json roundtrip" `Quick test_record_json_roundtrip;
    Alcotest.test_case "ledger append + load" `Quick test_ledger_append_load;
    Alcotest.test_case "ledger malformed line" `Quick test_ledger_malformed_line;
    Alcotest.test_case "report groups + worst component" `Quick
      test_report_groups_and_worst;
    Alcotest.test_case "drift detection on perturbed ledger" `Quick
      test_drift_detection;
    Alcotest.test_case "report rendering" `Quick test_pp_report_renders ]
