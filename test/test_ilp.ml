(* Tests for the exact ILP substrate: bignums, rationals, simplex, B&B. *)

module B = Clara_ilp.Bigint
module R = Clara_ilp.Rat
module LE = Clara_ilp.Lin_expr
module M = Clara_ilp.Model
module Sx = Clara_ilp.Simplex
module Lp = Clara_ilp.Lp
module Bb = Clara_ilp.Branch_bound

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)

let test_bigint_basics () =
  check_str "zero" "0" (B.to_string B.zero);
  check_str "small" "42" (B.to_string (B.of_int 42));
  check_str "negative" "-7" (B.to_string (B.of_int (-7)));
  check_str "max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  check_str "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int));
  check_int "roundtrip max" max_int (B.to_int_exn (B.of_int max_int));
  check_int "roundtrip min" min_int (B.to_int_exn (B.of_int min_int))

let test_bigint_string () =
  let s = "123456789012345678901234567890" in
  check_str "of/to_string" s (B.to_string (B.of_string s));
  check_str "neg of/to_string" ("-" ^ s) (B.to_string (B.of_string ("-" ^ s)));
  check "to_int_opt overflow" true (B.to_int_opt (B.of_string s) = None)

let test_bigint_arith_large () =
  let a = B.of_string "99999999999999999999999999" in
  let b = B.of_string "12345678901234567890123456" in
  check_str "add" "112345678901234567890123455" B.(to_string (add a b));
  check_str "sub" "87654321098765432109876543" B.(to_string (sub a b));
  check_str "mul"
    "1234567890123456789012345587654321098765432109876544"
    B.(to_string (mul a b));
  let q, r = B.divmod a b in
  check_str "div" "8" (B.to_string q);
  check_str "rem" "1234568790123456879012351" (B.to_string r);
  check "a = q*b + r" true B.(equal a (add (mul q b) r))

let test_bigint_division_signs () =
  (* Truncated division: remainder carries the dividend's sign. *)
  let dm a b =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    (B.to_int_exn q, B.to_int_exn r)
  in
  Alcotest.(check (pair int int)) "7/2" (3, 1) (dm 7 2);
  Alcotest.(check (pair int int)) "-7/2" (-3, -1) (dm (-7) 2);
  Alcotest.(check (pair int int)) "7/-2" (-3, 1) (dm 7 (-2));
  Alcotest.(check (pair int int)) "-7/-2" (3, -1) (dm (-7) (-2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_gcd () =
  let g a b = B.to_int_exn (B.gcd (B.of_int a) (B.of_int b)) in
  check_int "gcd 12 18" 6 (g 12 18);
  check_int "gcd -12 18" 6 (g (-12) 18);
  check_int "gcd 0 5" 5 (g 0 5);
  check_int "gcd 0 0" 0 (g 0 0);
  check_int "gcd coprime" 1 (g 17 31)

(* QCheck: bigint arithmetic agrees with native int on values where both
   are exact. *)
let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_bigint_ring =
  QCheck.Test.make ~name:"bigint add/mul agree with int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      B.to_int_exn (B.add (B.of_int x) (B.of_int y)) = x + y
      && B.to_int_exn (B.mul (B.of_int x) (B.of_int y)) = x * y
      && B.to_int_exn (B.sub (B.of_int x) (B.of_int y)) = x - y)

let prop_bigint_divmod =
  QCheck.Test.make ~name:"bigint divmod agrees with int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let q, r = B.divmod (B.of_int x) (B.of_int y) in
      B.to_int_exn q = x / y && B.to_int_exn r = x mod y)

let prop_bigint_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      (* Strip leading zeros for canonical comparison. *)
      let canonical =
        let s' = ref 0 in
        let n = String.length s in
        while !s' < n - 1 && s.[!s'] = '0' do incr s' done;
        String.sub s !s' (n - !s')
      in
      B.to_string (B.of_string s) = canonical)

let prop_bigint_mul_assoc =
  QCheck.Test.make ~name:"bigint mul associative/commutative (large)" ~count:200
    (QCheck.triple small_int small_int small_int)
    (fun (x, y, z) ->
      let bx = B.of_int x and by = B.of_int y and bz = B.of_int z in
      (* Blow the values up so multi-digit paths are exercised. *)
      let big = B.of_string "1000000000000000000000" in
      let bx = B.mul bx big and by = B.mul by big in
      B.equal (B.mul (B.mul bx by) bz) (B.mul bx (B.mul by bz))
      && B.equal (B.mul bx by) (B.mul by bx))

let prop_bigint_divmod_large =
  QCheck.Test.make ~name:"bigint divmod identity (large operands)" ~count:200
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let big = B.of_string "123456789123456789123456789" in
      let a = B.mul (B.of_int x) big in
      let b = B.mul (B.of_int y) (B.of_string "987654321987") in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)

let test_rat_normalization () =
  check "2/4 = 1/2" true R.(equal (of_ints 2 4) (of_ints 1 2));
  check "-1/-2 = 1/2" true R.(equal (of_ints (-1) (-2)) (of_ints 1 2));
  check "den positive" true (B.sign (R.den (R.of_ints 1 (-2))) > 0);
  check_str "print" "-1/2" (R.to_string (R.of_ints 1 (-2)));
  check_str "int print" "3" (R.to_string (R.of_int 3))

let test_rat_floor_ceil () =
  let f n d = B.to_int_exn (R.floor (R.of_ints n d)) in
  let c n d = B.to_int_exn (R.ceil (R.of_ints n d)) in
  check_int "floor 7/2" 3 (f 7 2);
  check_int "floor -7/2" (-4) (f (-7) 2);
  check_int "ceil 7/2" 4 (c 7 2);
  check_int "ceil -7/2" (-3) (c (-7) 2);
  check_int "floor 4/2" 2 (f 4 2);
  check_int "ceil 4/2" 2 (c 4 2)

let test_rat_of_float () =
  check "0.5 exact" true R.(equal (of_float 0.5) (of_ints 1 2));
  check "0.25 exact" true R.(equal (of_float 0.25) (of_ints 1 4));
  check "3.0 exact" true R.(equal (of_float 3.0) (of_int 3));
  check "roundtrip 0.1" true (R.to_float (R.of_float 0.1) = 0.1)

let rat_gen =
  QCheck.map
    (fun (n, d) -> R.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-10_000) 10_000) (QCheck.int_range (-100) 100))

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:500 (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      R.(equal (add a b) (add b a))
      && R.(equal (mul a b) (mul b a))
      && R.(equal (add (add a b) c) (add a (add b c)))
      && R.(equal (mul (mul a b) c) (mul a (mul b c)))
      && R.(equal (mul a (add b c)) (add (mul a b) (mul a c)))
      && R.(equal (sub (add a b) b) a)
      && (R.is_zero a || R.(equal (mul a (inv a)) one)))

let prop_rat_order =
  QCheck.Test.make ~name:"rat order consistent with float" ~count:500
    (QCheck.pair rat_gen rat_gen)
    (fun (a, b) ->
      let cf = Stdlib.compare (R.to_float a) (R.to_float b) in
      let cr = R.compare a b in
      (* Floats of our small rats are exact enough for strict orderings;
         equal floats can only come from equal rats at these magnitudes. *)
      (cf < 0 && cr < 0) || (cf > 0 && cr > 0) || (cf = 0 && cr = 0))

let prop_rat_floor_frac =
  QCheck.Test.make ~name:"rat x = floor x + frac x, frac in [0,1)" ~count:500 rat_gen
    (fun a ->
      let fl = R.of_bigint (R.floor a) in
      R.(equal a (add fl (frac a)))
      && R.(frac a >= zero)
      && R.(frac a < one))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)

let r = R.of_int
let ri = R.of_ints

(* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  => x=4,y=0, obj 12
   (as min of negation) *)
let test_simplex_basic () =
  let rows =
    [ { Sx.coeffs = [| r 1; r 1 |]; sense = M.Le; rhs = r 4 };
      { Sx.coeffs = [| r 1; r 3 |]; sense = M.Le; rhs = r 6 } ]
  in
  let res = Sx.solve ~c:[| r (-3); r (-2) |] ~rows in
  check "optimal" true (res.Sx.status = Sx.Optimal);
  check "obj = -12" true R.(equal res.Sx.objective (r (-12)));
  check "x = 4" true R.(equal res.Sx.solution.(0) (r 4));
  check "y = 0" true R.(equal res.Sx.solution.(1) (r 0))

let test_simplex_equality () =
  (* min x + y st x + 2y = 4, x - y = 1  => x=2, y=1, obj 3 *)
  let rows =
    [ { Sx.coeffs = [| r 1; r 2 |]; sense = M.Eq; rhs = r 4 };
      { Sx.coeffs = [| r 1; r (-1) |]; sense = M.Eq; rhs = r 1 } ]
  in
  let res = Sx.solve ~c:[| r 1; r 1 |] ~rows in
  check "optimal" true (res.Sx.status = Sx.Optimal);
  check "obj 3" true R.(equal res.Sx.objective (r 3));
  check "x 2" true R.(equal res.Sx.solution.(0) (r 2));
  check "y 1" true R.(equal res.Sx.solution.(1) (r 1))

let test_simplex_infeasible () =
  (* x <= 1 and x >= 2 *)
  let rows =
    [ { Sx.coeffs = [| r 1 |]; sense = M.Le; rhs = r 1 };
      { Sx.coeffs = [| r 1 |]; sense = M.Ge; rhs = r 2 } ]
  in
  let res = Sx.solve ~c:[| r 1 |] ~rows in
  check "infeasible" true (res.Sx.status = Sx.Infeasible)

let test_simplex_unbounded () =
  (* min -x st x >= 1 : x can grow forever *)
  let rows = [ { Sx.coeffs = [| r 1 |]; sense = M.Ge; rhs = r 1 } ] in
  let res = Sx.solve ~c:[| r (-1) |] ~rows in
  check "unbounded" true (res.Sx.status = Sx.Unbounded)

let test_simplex_degenerate () =
  (* A classically degenerate LP; Bland's rule must terminate.
     min -0.75x4 + 150x5 - 0.02x6 + 6x7 (Beale's cycling example). *)
  let rows =
    [ { Sx.coeffs = [| ri 1 4; r (-60); ri (-1) 25; r 9 |]; sense = M.Le; rhs = r 0 };
      { Sx.coeffs = [| ri 1 2; r (-90); ri (-1) 50; r 3 |]; sense = M.Le; rhs = r 0 };
      { Sx.coeffs = [| r 0; r 0; r 1; r 0 |]; sense = M.Le; rhs = r 1 } ]
  in
  let res = Sx.solve ~c:[| ri (-3) 4; r 150; ri (-1) 50; r 6 |] ~rows in
  check "optimal (no cycling)" true (res.Sx.status = Sx.Optimal);
  check "obj -1/20" true R.(equal res.Sx.objective (ri (-1) 20))

let test_simplex_rational_exact () =
  (* min x st 3x >= 1  => x = 1/3 exactly *)
  let rows = [ { Sx.coeffs = [| r 3 |]; sense = M.Ge; rhs = r 1 } ] in
  let res = Sx.solve ~c:[| r 1 |] ~rows in
  check "x = 1/3" true R.(equal res.Sx.solution.(0) (ri 1 3))

(* Random LPs: feasibility of the returned point. We construct rows with
   non-negative rhs and Le sense so the origin is always feasible; optimal
   solutions must satisfy every row. *)
let prop_simplex_feasible =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nvars = int_range 1 4 in
        let* nrows = int_range 1 5 in
        let* rows =
          list_repeat nrows
            (let* coeffs = list_repeat nvars (int_range (-5) 5) in
             let* rhs = int_range 0 20 in
             return (coeffs, rhs))
        in
        let* c = list_repeat nvars (int_range (-5) 5) in
        return (nvars, rows, c))
  in
  QCheck.Test.make ~name:"simplex: returned point satisfies all rows" ~count:300 gen
    (fun (_nvars, rows, c) ->
      let rows' =
        List.map
          (fun (coeffs, rhs) ->
            { Sx.coeffs = Array.of_list (List.map r coeffs);
              sense = M.Le;
              rhs = r rhs })
          rows
      in
      let res = Sx.solve ~c:(Array.of_list (List.map r c)) ~rows:rows' in
      match res.Sx.status with
      | Sx.Infeasible -> false (* origin is feasible: cannot happen *)
      | Sx.Unbounded -> true
      | Sx.Optimal ->
          List.for_all
            (fun { Sx.coeffs; rhs; _ } ->
              let lhs = ref R.zero in
              Array.iteri
                (fun i ci -> lhs := R.add !lhs (R.mul ci res.Sx.solution.(i)))
                coeffs;
              R.( <= ) !lhs rhs)
            rows'
          && Array.for_all (fun x -> R.( >= ) x R.zero) res.Sx.solution
          (* objective at the optimum is <= objective at origin (= 0) *)
          && R.( <= ) res.Sx.objective R.zero)

(* ------------------------------------------------------------------ *)
(* Lp + Branch & bound                                                 *)

let test_lp_bounds () =
  (* max x + y with 1 <= x <= 3, 0 <= y <= 2, x + y <= 4 => obj 4 hit at
     e.g. x in [2,3]. *)
  let m = M.create () in
  let x = M.add_var m ~lb:(r 1) ~ub:(r 3) M.Continuous in
  let y = M.add_var m ~ub:(r 2) M.Continuous in
  M.add_constraint m LE.(add (var x) (var y)) M.Le (r 4);
  M.set_objective m M.Maximize LE.(add (var x) (var y));
  let res = Lp.solve m in
  check "optimal" true (res.Lp.status = Lp.Optimal);
  check "obj 4" true R.(equal res.Lp.objective (r 4));
  check "x within bounds" true R.(res.Lp.values.(x) >= r 1 && res.Lp.values.(x) <= r 3)

let test_lp_negative_lb () =
  (* min x with x >= -5 (via bound), x >= -2 (via row) => -2. *)
  let m = M.create () in
  let x = M.add_var m ~lb:(r (-5)) M.Continuous in
  M.add_constraint m (LE.var x) M.Ge (r (-2));
  M.set_objective m M.Minimize (LE.var x);
  let res = Lp.solve m in
  check "optimal" true (res.Lp.status = Lp.Optimal);
  check "obj -2" true R.(equal res.Lp.objective (r (-2)))

let test_lp_infeasible_box () =
  let m = M.create () in
  let _x = M.add_var m ~lb:(r 3) ~ub:(r 1) M.Continuous in
  M.set_objective m M.Minimize LE.zero;
  check "empty box infeasible" true ((Lp.solve m).Lp.status = Lp.Infeasible)

let test_bb_knapsack () =
  (* Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50.
     Optimum 220 (items 2,3). *)
  let m = M.create () in
  let xs = List.init 3 (fun i -> M.add_var m ~name:(Printf.sprintf "item%d" i) M.Binary) in
  let weights = [ 10; 20; 30 ] and values = [ 60; 100; 120 ] in
  let wexpr =
    LE.sum (List.map2 (fun x w -> LE.var ~coeff:(r w) x) xs weights)
  in
  M.add_constraint m wexpr M.Le (r 50);
  M.set_objective m M.Maximize
    (LE.sum (List.map2 (fun x v -> LE.var ~coeff:(r v) x) xs values));
  let res = Bb.solve m in
  check "optimal" true (res.Bb.status = Bb.Optimal);
  check "obj 220" true R.(equal res.Bb.objective (r 220));
  (match xs with
  | [ a; b; c ] ->
      check "item0 out" true R.(equal res.Bb.values.(a) R.zero);
      check "item1 in" true R.(equal res.Bb.values.(b) R.one);
      check "item2 in" true R.(equal res.Bb.values.(c) R.one)
  | _ -> assert false)

let test_bb_integer_rounding () =
  (* max y st 2y <= 7, y integer => y = 3 (relaxation 3.5). *)
  let m = M.create () in
  let y = M.add_var m M.Integer in
  M.add_constraint m (LE.var ~coeff:(r 2) y) M.Le (r 7);
  M.set_objective m M.Maximize (LE.var y);
  let res = Bb.solve m in
  check "obj 3" true R.(equal res.Bb.objective (r 3))

let test_bb_initial_bound () =
  (* The knapsack again, seeded with a priori bounds of varying honesty
     (for a maximization, [initial_bound] is a floor the optimum is
     promised to reach). *)
  let build () =
    let m = M.create () in
    let xs = List.init 3 (fun i -> M.add_var m ~name:(Printf.sprintf "item%d" i) M.Binary) in
    let weights = [ 10; 20; 30 ] and values = [ 60; 100; 120 ] in
    M.add_constraint m
      (LE.sum (List.map2 (fun x w -> LE.var ~coeff:(r w) x) xs weights))
      M.Le (r 50);
    M.set_objective m M.Maximize
      (LE.sum (List.map2 (fun x v -> LE.var ~coeff:(r v) x) xs values));
    m
  in
  let free = Bb.solve (build ()) in
  (* A loose bound changes nothing. *)
  let loose = Bb.solve ~initial_bound:(r 100) (build ()) in
  check "loose: optimal" true (loose.Bb.status = Bb.Optimal);
  check "loose: obj 220" true R.(equal loose.Bb.objective (r 220));
  (* The bound is inclusive: promising exactly the optimum must not cut
     the optimal point, and can only shrink the tree. *)
  let exact = Bb.solve ~initial_bound:(r 220) (build ()) in
  check "exact: optimal" true (exact.Bb.status = Bb.Optimal);
  check "exact: obj 220" true R.(equal exact.Bb.objective (r 220));
  check "exact: tree no larger" true (exact.Bb.nodes <= free.Bb.nodes);
  (* An unsound bound -- promising better than any feasible point --
     empties the search; soundness is the caller's contract. *)
  check "unsound bound reports infeasible" true
    ((Bb.solve ~initial_bound:(r 221) (build ())).Bb.status = Bb.Infeasible)

let test_bb_infeasible () =
  (* x binary, x >= 1, x <= 0 contradiction via rows *)
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constraint m (LE.var x) M.Ge (ri 1 2);
  M.add_constraint m (LE.var x) M.Le (ri 3 4);
  M.set_objective m M.Minimize (LE.var x);
  check "no integer point in [1/2,3/4]" true ((Bb.solve m).Bb.status = Bb.Infeasible)

(* Assignment problem vs brute force. *)
let brute_force_assignment cost =
  let n = Array.length cost in
  let rec perms acc rest =
    match rest with
    | [] -> [ List.rev acc ]
    | _ ->
        List.concat_map
          (fun x -> perms (x :: acc) (List.filter (fun y -> y <> x) rest))
          rest
  in
  let all = perms [] (List.init n Fun.id) in
  List.fold_left
    (fun best p ->
      let c = List.fold_left ( + ) 0 (List.mapi (fun i j -> cost.(i).(j)) p) in
      min best c)
    max_int all

let prop_bb_assignment =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 4 in
        let* flat = list_repeat (n * n) (int_range 1 20) in
        return (n, flat))
  in
  QCheck.Test.make ~name:"B&B solves assignment = brute force" ~count:50 gen
    (fun (n, flat) ->
      let cost = Array.init n (fun i -> Array.init n (fun j -> List.nth flat ((i * n) + j))) in
      let m = M.create () in
      let x = Array.init n (fun _ -> Array.init n (fun _ -> M.add_var m M.Binary)) in
      for i = 0 to n - 1 do
        M.add_constraint m
          (LE.sum (List.init n (fun j -> LE.var x.(i).(j))))
          M.Eq R.one;
        M.add_constraint m
          (LE.sum (List.init n (fun j -> LE.var x.(j).(i))))
          M.Eq R.one
      done;
      let obj =
        LE.sum
          (List.concat
             (List.init n (fun i ->
                  List.init n (fun j -> LE.var ~coeff:(r cost.(i).(j)) x.(i).(j)))))
      in
      M.set_objective m M.Minimize obj;
      let res = Bb.solve m in
      res.Bb.status = Bb.Optimal
      && R.equal res.Bb.objective (r (brute_force_assignment cost)))

(* ------------------------------------------------------------------ *)
(* Bounded-variable simplex                                            *)

let test_simplex_bounds_only () =
  (* No rows at all (m = 0): the optimum sits on the bounds. *)
  let t =
    Sx.create ~c:[| r 1; r (-1) |] ~rows:[]
      ~bounds:[| (r (-2), Some (r 3)); (r 0, Some (r 5)) |]
  in
  check "optimal" true (Sx.solve_primal t = Sx.Optimal);
  check "obj -7" true R.(equal (Sx.objective_value t) (r (-7)));
  check "x at lower" true R.(equal (Sx.solution t).(0) (r (-2)));
  check "y at upper" true R.(equal (Sx.solution t).(1) (r 5));
  (* A missing upper bound under a negative cost is unbounded. *)
  let u = Sx.create ~c:[| r (-1) |] ~rows:[] ~bounds:[| (r 0, None) |] in
  check "unbounded" true (Sx.solve_primal u = Sx.Unbounded)

let test_simplex_bound_flip () =
  (* min -(x+y) st x + y <= 3 with x,y in [0,2]: the optimum needs one
     variable flipped to its upper bound without ever entering the
     basis. *)
  let t =
    Sx.create ~c:[| r (-1); r (-1) |]
      ~rows:[ { Sx.coeffs = [| r 1; r 1 |]; sense = M.Le; rhs = r 3 } ]
      ~bounds:[| (r 0, Some (r 2)); (r 0, Some (r 2)) |]
  in
  check "optimal" true (Sx.solve_primal t = Sx.Optimal);
  check "obj -3" true R.(equal (Sx.objective_value t) (r (-3)))

let test_simplex_empty_interval () =
  let t = Sx.create ~c:[| r 1 |] ~rows:[] ~bounds:[| (r 2, Some (r 1)) |] in
  check "lo > ub infeasible" true (Sx.solve_primal t = Sx.Infeasible)

(* Differential: native bounds vs the old formulation that spelled the
   box out as explicit Ge/Le unit rows over x >= 0.  Same costs, same
   rows; both solvers must agree on status and on the exact optimal
   objective (the optimal points may legitimately differ). *)
let prop_bounds_native_vs_rows =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nvars = int_range 1 4 in
        let* nrows = int_range 0 4 in
        let* boxes = list_repeat nvars (pair (int_range 0 3) (int_range 0 4)) in
        let* rows =
          list_repeat nrows
            (let* coeffs = list_repeat nvars (int_range (-4) 4) in
             let* sense = oneofl [ M.Le; M.Ge; M.Eq ] in
             let* rhs = int_range (-6) 12 in
             return (coeffs, sense, rhs))
        in
        let* c = list_repeat nvars (int_range (-5) 5) in
        return (boxes, rows, c))
  in
  QCheck.Test.make ~name:"bounded simplex = bounds-as-rows formulation" ~count:300 gen
    (fun (boxes, rows, c) ->
      let nvars = List.length c in
      let shared_rows =
        List.map
          (fun (coeffs, sense, rhs) ->
            { Sx.coeffs = Array.of_list (List.map r coeffs); sense; rhs = r rhs })
          rows
      in
      let bounds =
        Array.of_list (List.map (fun (lo, w) -> (r lo, Some (r (lo + w)))) boxes)
      in
      let t = Sx.create ~c:(Array.of_list (List.map r c)) ~rows:shared_rows ~bounds in
      let st = Sx.solve_primal t in
      let unit_row j v sense =
        { Sx.coeffs = Array.init nvars (fun k -> if k = j then R.one else R.zero);
          sense;
          rhs = v }
      in
      let box_rows =
        List.concat
          (List.mapi
             (fun j (lo, w) -> [ unit_row j (r lo) M.Ge; unit_row j (r (lo + w)) M.Le ])
             boxes)
      in
      let res =
        Sx.solve ~c:(Array.of_list (List.map r c)) ~rows:(shared_rows @ box_rows)
      in
      match (st, res.Sx.status) with
      | Sx.Optimal, Sx.Optimal -> R.equal (Sx.objective_value t) res.Sx.objective
      | Sx.Infeasible, Sx.Infeasible -> true
      | _ -> false (* a finite box can never be unbounded *))

(* B&B over general integer boxes (negative lower bounds included) vs
   exhaustive enumeration of every lattice point. *)
let prop_bb_box_bruteforce =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 3 in
        let* boxes = list_repeat n (pair (int_range (-2) 2) (int_range 0 3)) in
        let* m = int_range 1 3 in
        let* a = list_repeat (m * n) (int_range (-4) 4) in
        let* b = list_repeat m (int_range (-4) 10) in
        let* c = list_repeat n (int_range (-5) 5) in
        return (n, boxes, m, a, b, c))
  in
  QCheck.Test.make ~name:"B&B on integer boxes = brute force" ~count:150 gen
    (fun (n, boxes, m, a, b, c) ->
      let aij i j = List.nth a ((i * n) + j) in
      let model = M.create () in
      let xs =
        List.map
          (fun (lo, w) -> M.add_var model ~lb:(r lo) ~ub:(r (lo + w)) M.Integer)
          boxes
      in
      for i = 0 to m - 1 do
        M.add_constraint model
          (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (aij i j)) x) xs))
          M.Le
          (r (List.nth b i))
      done;
      M.set_objective model M.Minimize
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth c j)) x) xs));
      let best = ref None in
      let rec go j acc =
        if j = n then begin
          let x = List.rev acc in
          let feasible =
            List.init m (fun i ->
                List.fold_left ( + ) 0 (List.mapi (fun k xk -> aij i k * xk) x)
                <= List.nth b i)
            |> List.for_all Fun.id
          in
          if feasible then begin
            let v =
              List.fold_left ( + ) 0 (List.mapi (fun k xk -> List.nth c k * xk) x)
            in
            match !best with
            | None -> best := Some v
            | Some bv -> if v < bv then best := Some v
          end
        end
        else
          let lo, w = List.nth boxes j in
          for v = lo to lo + w do
            go (j + 1) (v :: acc)
          done
      in
      go 0 [];
      match (Bb.solve model, !best) with
      | { Bb.status = Bb.Optimal; objective; values; _ }, Some bv ->
          R.equal objective (r bv) && M.check model values
      | { Bb.status = Bb.Infeasible; _ }, None -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Warm starts and node limits                                         *)

let test_lp_rebound_matches_cold () =
  (* Re-optimizing a copied tableau after tightening one bound must
     agree exactly with a cold solve under the same bounds, and the
     warm-start counter must record that the cheap path ran. *)
  let m = M.create () in
  let x = M.add_var m ~ub:(r 4) M.Continuous in
  let y = M.add_var m ~ub:(r 4) M.Continuous in
  M.add_constraint m LE.(add (var x) (var ~coeff:(r 2) y)) M.Le (r 9);
  M.set_objective m M.Maximize LE.(add (var ~coeff:(r 3) x) (var ~coeff:(r 2) y));
  let root, r0 = Lp.root m in
  check "root optimal" true (r0.Lp.status = Lp.Optimal);
  let bounds = Array.copy (Lp.node_bounds root) in
  bounds.(x) <- (R.zero, Some (r 2));
  let warm0 =
    Clara_obs.Registry.counter_value Clara_obs.Registry.default "ilp.simplex.warm_starts"
  in
  let _, rw = Lp.rebound root ~bounds in
  let warm1 =
    Clara_obs.Registry.counter_value Clara_obs.Registry.default "ilp.simplex.warm_starts"
  in
  let rc = Lp.solve ~bounds m in
  check "warm = cold status" true (rw.Lp.status = rc.Lp.status);
  check "warm = cold objective" true R.(equal rw.Lp.objective rc.Lp.objective);
  check "warm-start counter bumped" true (warm1 > warm0)

let test_bb_node_limit () =
  (* Sum 2x_j <= 13 over 14 binaries, maximize Sum x_j: the relaxation
     is fractional at every node, so proving optimality takes many
     nodes, but a depth-first dive reaches an integer incumbent almost
     immediately.  Regression: exceeding the budget used to raise and
     throw the incumbent away. *)
  let mk () =
    let m = M.create () in
    let xs = List.init 14 (fun _ -> M.add_var m M.Binary) in
    M.add_constraint m
      (LE.sum (List.map (fun x -> LE.var ~coeff:(r 2) x) xs))
      M.Le (r 13);
    M.set_objective m M.Maximize (LE.sum (List.map LE.var xs));
    m
  in
  let full = Bb.solve (mk ()) in
  check "full solve optimal" true (full.Bb.status = Bb.Optimal);
  check "full obj 6" true R.(equal full.Bb.objective (r 6));
  let m = mk () in
  let lim = Bb.solve ~node_limit:10 m in
  check "node-limited" true (lim.Bb.status = Bb.Node_limit);
  check "incumbent found" true lim.Bb.incumbent;
  check "incumbent is feasible" true (M.check m lim.Bb.values);
  check "node budget respected" true (lim.Bb.nodes <= 10);
  (match lim.Bb.gap with
  | None -> Alcotest.fail "node-limited incumbent must carry a gap"
  | Some g ->
      check "gap nonnegative" true R.(g >= zero);
      check "true optimum within gap" true
        (R.( <= ) full.Bb.objective (R.add lim.Bb.objective g)));
  (* A budget too small to finish even one dive yields no incumbent —
     and says so rather than inventing one. *)
  let none = Bb.solve ~node_limit:1 (mk ()) in
  check "no incumbent" true (none.Bb.status = Bb.Node_limit && not none.Bb.incumbent);
  check "no gap without incumbent" true (none.Bb.gap = None)

let test_model_check () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m ~ub:(r 5) M.Integer in
  M.add_constraint m LE.(add (var x) (var y)) M.Le (r 4);
  M.set_objective m M.Maximize LE.(add (var x) (var y));
  check "feasible point" true (M.check m [| R.one; r 3 |]);
  check "violates row" false (M.check m [| R.one; r 4 |]);
  check "violates integrality" false (M.check m [| R.one; ri 1 2 |]);
  check "violates binary ub" false (M.check m [| r 2; r 1 |])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [ Alcotest.test_case "bigint basics" `Quick test_bigint_basics;
    Alcotest.test_case "bigint strings" `Quick test_bigint_string;
    Alcotest.test_case "bigint large arithmetic" `Quick test_bigint_arith_large;
    Alcotest.test_case "bigint division signs" `Quick test_bigint_division_signs;
    Alcotest.test_case "bigint gcd" `Quick test_bigint_gcd;
    Alcotest.test_case "rat normalization" `Quick test_rat_normalization;
    Alcotest.test_case "rat floor/ceil" `Quick test_rat_floor_ceil;
    Alcotest.test_case "rat of_float" `Quick test_rat_of_float;
    Alcotest.test_case "simplex basic max" `Quick test_simplex_basic;
    Alcotest.test_case "simplex equalities" `Quick test_simplex_equality;
    Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex degenerate (Beale)" `Quick test_simplex_degenerate;
    Alcotest.test_case "simplex exact rationals" `Quick test_simplex_rational_exact;
    Alcotest.test_case "lp bounds" `Quick test_lp_bounds;
    Alcotest.test_case "lp negative lower bound" `Quick test_lp_negative_lb;
    Alcotest.test_case "lp empty box" `Quick test_lp_infeasible_box;
    Alcotest.test_case "b&b knapsack" `Quick test_bb_knapsack;
    Alcotest.test_case "b&b integer rounding" `Quick test_bb_integer_rounding;
    Alcotest.test_case "b&b infeasible" `Quick test_bb_infeasible;
    Alcotest.test_case "b&b initial bound cutoff" `Quick test_bb_initial_bound;
    Alcotest.test_case "simplex bounds only (m = 0)" `Quick test_simplex_bounds_only;
    Alcotest.test_case "simplex bound flip" `Quick test_simplex_bound_flip;
    Alcotest.test_case "simplex empty interval" `Quick test_simplex_empty_interval;
    Alcotest.test_case "lp warm restart = cold solve" `Quick test_lp_rebound_matches_cold;
    Alcotest.test_case "b&b node limit keeps incumbent" `Quick test_bb_node_limit;
    Alcotest.test_case "model check" `Quick test_model_check ]
  @ qsuite
      [ prop_bigint_ring;
        prop_bigint_divmod;
        prop_bigint_string_roundtrip;
        prop_bigint_mul_assoc;
        prop_bigint_divmod_large;
        prop_rat_field;
        prop_rat_order;
        prop_rat_floor_frac;
        prop_simplex_feasible;
        prop_bounds_native_vs_rows;
        prop_bb_box_bruteforce;
        prop_bb_assignment ]
