(* Tests for the additional targets (pipeline ASIC, x86 host) and the
   service-chain combinator. *)

module W = Clara_workload
module L = Clara_lnic
module Lat = Clara_predict.Latency

let check = Alcotest.(check bool)

let profile = W.Profile.make ~packets:2_000 ~flow_count:500 ()

let test_asic_valid () =
  let g = L.Asic_nic.default in
  check "valid" true (L.Validate.is_valid g);
  (* Strict pipeline: stages are strictly ordered. *)
  let stages =
    L.Graph.general_cores g |> List.map (fun u -> u.L.Unit_.stage) |> List.sort_uniq compare
  in
  check "four distinct stages" true (List.length stages = 4)

let test_asic_feasibility_answers () =
  let asic = L.Asic_nic.default in
  let feasible src =
    match Clara.analyze_for_profile asic ~source:src ~profile with
    | Ok _ -> true
    | Error _ -> false
  in
  (* Header-level NFs map; payload/crypto NFs do not (§2.1 ASIC
     capability gap — the useful "don't port this" answer). *)
  check "lpm maps" true (feasible (Clara_nfs.Lpm.source ~entries:30_000));
  check "nat maps" true (feasible (Clara_nfs.Nat.source ()));
  check "firewall maps" true (feasible (Clara_nfs.Firewall.source ()));
  check "dpi infeasible" false (feasible Clara_nfs.Dpi.source);
  check "ipsec infeasible" false (feasible (Clara_nfs.Ipsec_gw.source ()))

let test_asic_beats_npu_on_lpm () =
  (* The TCAM pipeline crushes the NPU software path on table workloads. *)
  let wall target src =
    match Clara.analyze_for_profile target ~source:src ~profile with
    | Ok a ->
        let p = Clara.predict_profile a profile in
        let freq =
          match L.Graph.general_cores target with
          | u :: _ -> float_of_int u.L.Unit_.freq_mhz
          | [] -> 1.
        in
        p.Lat.mean_cycles /. freq
    | Error e -> Alcotest.fail e
  in
  let src = Clara_nfs.Lpm.source ~entries:30_000 in
  check "asic faster than netronome on LPM" true
    (wall L.Asic_nic.default src < wall L.Netronome.default src)

(* ------------------------------------------------------------------ *)
(* Off-path DPU (bluefield)                                            *)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_targets_registry () =
  (* bluefield resolves and the registry's arch tags tell the families
     apart. *)
  (match L.Targets.of_name "bluefield" with
  | Ok g -> check "bluefield off-path" true (g.L.Graph.arch = L.Graph.Off_path)
  | Error e -> Alcotest.fail e);
  check "netronome on-path" true
    (L.Targets.arch_of "netronome" = Some L.Graph.On_path);
  check "host tagged host-only" true
    (L.Targets.arch_of "host" = Some L.Graph.Host_only);
  (* Misspellings within edit distance 2 earn a did-you-mean hint while
     the error still lists every valid name. *)
  (match L.Targets.of_name "bluefeld" with
  | Ok _ -> Alcotest.fail "misspelling resolved"
  | Error e ->
      check "hint names bluefield" true (contains e "did you mean \"bluefield\"");
      check "all names still listed" true
        (contains e "netronome" && contains e "soc" && contains e "asic"
        && contains e "host"));
  (* A distant name gets the plain error, no guessing. *)
  match L.Targets.of_name "pensando" with
  | Ok _ -> Alcotest.fail "unknown name resolved"
  | Error e -> check "no hint for distant name" false (contains e "did you mean")

let test_offpath_two_regimes () =
  (* Pinned hit ratio selects the regime: all-hit stays on the eSwitch
     price; all-miss pays the upcall plus a software replay per stateful
     node, so the gap must cover at least the upcall itself. *)
  let bf = L.Bluefield.default in
  let src = Clara_nfs.Lpm.source ~entries:8_192 in
  match Clara.analyze_for_profile bf ~source:src ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let trace = W.Trace.synthesize ~seed:31L profile in
      let at h =
        let config =
          { Lat.default_config with Lat.flow_cache_hit_ratio = Some h }
        in
        (Clara.predict ~config a trace).Lat.mean_cycles
      in
      let hit = at 1.0 and miss = at 0.0 in
      check "all-hit cheaper than all-miss" true (hit < miss);
      check "gap covers the upcall" true
        (miss -. hit >= float_of_int (L.Graph.upcall_cycles bf));
      (* Default config (no pin): the LRU lands between the regimes. *)
      let lru = (Clara.predict a trace).Lat.mean_cycles in
      check "LRU between regimes" true (hit <= lru && lru <= miss)

let test_cross_arch_verdicts () =
  (* The §2 selection question: lookup-heavy work wins on the eSwitch
     fast path, payload-heavy work on the on-path NPU complex — the two
     architectures must disagree for the sweep to be worth running. *)
  (* Enough packets that cold flow-cache misses amortize: the verdict
     should reflect steady state, not the warm-up transient. *)
  let steady = W.Profile.make ~packets:10_000 ~flow_count:500 () in
  let wall target src =
    match Clara.analyze_for_profile target ~source:src ~profile:steady with
    | Ok a ->
        let p = Clara.predict_profile a steady in
        let freq =
          match L.Graph.general_cores target with
          | u :: _ -> float_of_int u.L.Unit_.freq_mhz
          | [] -> 1.
        in
        p.Lat.mean_cycles /. freq
    | Error e -> Alcotest.fail e
  in
  let lpm = Clara_nfs.Lpm.source ~entries:8_192 in
  let dpi = Clara_nfs.Dpi.source in
  check "bluefield wins lookup-heavy lpm" true
    (wall L.Bluefield.default lpm < wall L.Netronome.default lpm);
  check "netronome wins payload-heavy dpi" true
    (wall L.Netronome.default dpi < wall L.Bluefield.default dpi)

(* ------------------------------------------------------------------ *)
(* Chains                                                              *)

let lnic = L.Netronome.default

let chain_sources =
  [ Clara_nfs.Firewall.source (); Clara_nfs.Nat.source () ]

let test_chain_analyze () =
  match Clara.Chain.analyze lnic ~sources:chain_sources ~profile with
  | Error e -> Alcotest.fail e
  | Ok c ->
      check "two stages" true (List.length c.Clara.Chain.stages = 2);
      check "stage names" true (Clara.Chain.stage_names c = [ "firewall"; "nat" ])

let test_chain_errors () =
  (match Clara.Chain.analyze lnic ~sources:[] ~profile with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty chain accepted");
  match
    Clara.Chain.analyze lnic
      ~sources:[ Clara_nfs.Nat.source (); "nf broken {" ]
      ~profile
  with
  | Error e ->
      check "error names the stage" true
        (String.length e > 7 && String.sub e 0 7 = "stage 1")
  | Ok _ -> Alcotest.fail "broken stage accepted"

let test_chain_latency_composition () =
  (* Chain latency exceeds each single stage (with wire) but is below the
     naive sum of standalone predictions (wire charged once, not twice). *)
  let trace = W.Trace.synthesize ~seed:23L profile in
  let standalone src =
    match Clara.analyze_for_profile lnic ~source:src ~profile with
    | Ok a -> (Clara.predict a trace).Lat.mean_cycles
    | Error e -> Alcotest.fail e
  in
  let fw = standalone (List.nth chain_sources 0) in
  let nat = standalone (List.nth chain_sources 1) in
  match Clara.Chain.analyze lnic ~sources:chain_sources ~profile with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let p = Clara.Chain.predict c trace in
      (* Packets the firewall drops never reach NAT, so the chain mean can
         undercut NAT's standalone mean; it can never undercut the first
         stage (survivors only gain work downstream). *)
      check "chain >= first stage" true (p.Lat.mean_cycles >= fw -. 1.);
      check "chain < sum of standalones" true (p.Lat.mean_cycles < fw +. nat)

let test_chain_drop_short_circuits () =
  (* A chain headed by a drop-everything NF costs at most slightly more
     than that NF alone: later stages never execute. *)
  let drop_all =
    "nf drop_all { handler h(p) { var hdr = parse_header(p); drop(p); } }"
  in
  let trace = W.Trace.synthesize ~seed:23L profile in
  let alone =
    match Clara.analyze_for_profile lnic ~source:drop_all ~profile with
    | Ok a -> (Clara.predict a trace).Lat.mean_cycles
    | Error e -> Alcotest.fail e
  in
  match
    Clara.Chain.analyze lnic ~sources:[ drop_all; Clara_nfs.Vnf_chain.source () ] ~profile
  with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let p = Clara.Chain.predict c trace in
      check "everything dropped" true (p.Lat.emitted_fraction = 0.);
      check "tail stage skipped" true (p.Lat.mean_cycles < alone +. 10.)

let test_chain_on_asic () =
  (* A pure header chain runs on the pipeline ASIC too. *)
  match
    Clara.Chain.analyze L.Asic_nic.default
      ~sources:[ Clara_nfs.Firewall.source (); Clara_nfs.Lpm.source ~entries:1000 ]
      ~profile
  with
  | Error e -> Alcotest.fail e
  | Ok c ->
      let p = Clara.Chain.predict c (W.Trace.synthesize ~seed:3L profile) in
      check "asic chain predicts" true (p.Lat.mean_cycles > 0.)

let suite =
  [ Alcotest.test_case "asic graph valid" `Quick test_asic_valid;
    Alcotest.test_case "asic feasibility answers" `Quick test_asic_feasibility_answers;
    Alcotest.test_case "asic wins on table workloads" `Quick test_asic_beats_npu_on_lpm;
    Alcotest.test_case "targets registry & did-you-mean" `Quick test_targets_registry;
    Alcotest.test_case "off-path two-regime latency" `Quick test_offpath_two_regimes;
    Alcotest.test_case "cross-architecture verdicts" `Quick test_cross_arch_verdicts;
    Alcotest.test_case "chain analyze" `Quick test_chain_analyze;
    Alcotest.test_case "chain error reporting" `Quick test_chain_errors;
    Alcotest.test_case "chain latency composition" `Quick test_chain_latency_composition;
    Alcotest.test_case "chain drop short-circuits" `Quick test_chain_drop_short_circuits;
    Alcotest.test_case "chain on the ASIC" `Quick test_chain_on_asic ]
