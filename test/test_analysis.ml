(* Tests for the static-analysis suite (lib/analysis): the dataflow
   framework, the four lint passes, sharing-verdict consumption by the
   mapping encoder, and the Unknown_state regression. *)

module Ir = Clara_cir.Ir
module Low = Clara_cir.Lower
module Pat = Clara_cir.Patterns
module A = Clara_analysis
module D = Clara_dataflow
module L = Clara_lnic
module Enc = Clara_mapping.Encode
module Gr = Clara_mapping.Greedy
module Map_ = Clara_mapping.Mapping
module Obs = Clara_obs.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains hay needle =
  let h = String.length hay and n = String.length needle in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let lower src = fst (Pat.run (Low.lower_source src))
let lint ?lnic src = A.Suite.run ?lnic (lower src)
let codes r = List.map (fun d -> d.A.Diag.code) r.A.Suite.diagnostics
let has_code c r = List.mem c (codes r)
let verdict r s = List.assoc_opt s r.A.Suite.sharing

(* ------------------------------------------------------------------ *)
(* Sample sources                                                      *)

let racy_src =
  {|
nf racy {
  state counter pkt_count[1] entry 8;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var v = state_read(pkt_count, 0);
    state_write(pkt_count, 0, v + 1);
    emit(pkt);
  }
}
|}

let atomic_src =
  {|
nf fixed {
  state counter pkt_count[1] entry 8;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    state_add(pkt_count, 0, 1);
    emit(pkt);
  }
}
|}

let blind_src =
  {|
nf blind {
  state counter pkt_count[1] entry 8;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    state_write(pkt_count, 0, 7);
    emit(pkt);
  }
}
|}

let readonly_src =
  {|
nf ro {
  state counter pkt_count[1] entry 8;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var v = state_read(pkt_count, 0);
    if (v > 100) { drop(pkt); } else { emit(pkt); }
  }
}
|}

let contradiction_src =
  {|
nf contra {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6) {
      if (hdr.proto == 17) {
        drop(pkt);
      } else {
        emit(pkt);
      }
    } else {
      emit(pkt);
    }
  }
}
|}

let implied_src =
  {|
nf implied {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6) {
      if (hdr.proto == 6) {
        emit(pkt);
      } else {
        drop(pkt);
      }
    } else {
      drop(pkt);
    }
  }
}
|}

let oversized_src =
  {|
nf oversized {
  state map big[1000000000] entry 64;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var e = lookup(big, hdr.src_ip);
    emit(pkt);
  }
}
|}

let while_src =
  {|
nf spin {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var i = 0;
    while (i < hdr.ttl) {
      i = i + 1;
    }
    emit(pkt);
  }
}
|}

(* ------------------------------------------------------------------ *)
(* Hand-built CIR helpers                                              *)

let mk bid instrs term = { Ir.bid; instrs; term }

let mk_prog ?(states = []) blocks =
  { Ir.prog_name = "hand"; entry = 0; blocks = Array.of_list blocks; states }

(* ------------------------------------------------------------------ *)
(* Dfa framework                                                       *)

module BoolL = struct
  type t = bool

  let bottom = false
  let equal = Bool.equal
  let join = ( || )
end

module BoolD = A.Dfa.Make (BoolL)

let diamond_with_orphan =
  mk_prog
    [
      mk 0 [] (Ir.Cond { guard = Ir.G_proto 6; then_ = 1; else_ = 2 });
      mk 1 [] (Ir.Jump 3);
      mk 2 [] (Ir.Jump 3);
      mk 3 [] Ir.Ret;
      mk 4 [] Ir.Ret;
    ]

let test_dfa_forward () =
  let r =
    BoolD.solve_exn ~init:true ~transfer:(fun _ f -> f) diamond_with_orphan
  in
  check "entry reached" true r.BoolD.input.(0);
  check "join block reached" true r.BoolD.output.(3);
  check "orphan stays bottom" false r.BoolD.output.(4);
  check "did some work" true (r.BoolD.iterations >= 4)

let test_dfa_backward () =
  let r =
    BoolD.solve_exn ~direction:A.Dfa.Backward ~init:true
      ~transfer:(fun _ f -> f)
      diamond_with_orphan
  in
  (* Facts flow from the Ret block back to the entry. *)
  check "entry live" true r.BoolD.output.(0);
  check "both arms live" true (r.BoolD.output.(1) && r.BoolD.output.(2))

module IntL = struct
  type t = int

  let bottom = 0
  let equal = Int.equal
  let join = max
end

module IntD = A.Dfa.Make (IntL)

let looped =
  mk_prog
    [
      mk 0 [] (Ir.Loop { body = 1; exit = 2; trip = Ir.S_const 4 });
      mk 1 [] (Ir.Jump 0);
      mk 2 [] Ir.Ret;
    ]

let test_dfa_budget () =
  (* A non-monotone transfer on a cyclic CFG must hit the iteration
     budget and report it as a typed outcome rather than spin. *)
  (match IntD.solve ~init:1 ~transfer:(fun _ x -> x + 1) looped with
  | IntD.Fixpoint _ -> check "budget exhausted" true false
  | IntD.Budget_exhausted { budget; prog; partial } ->
      check "budget positive" true (budget > 0);
      Alcotest.(check string) "prog name carried" "hand" prog;
      check "partial facts usable" true (partial.IntD.input.(0) >= 1));
  (* solve_exn keeps the old crash-loudly contract. *)
  let raised =
    try
      ignore (IntD.solve_exn ~init:1 ~transfer:(fun _ x -> x + 1) looped);
      false
    with Failure _ -> true
  in
  check "solve_exn raises" true raised

module IvD = A.Dfa.Make (A.Interval)

let test_dfa_widening () =
  (* The same cyclic CFG with an incrementing interval transfer has an
     infinite ascending chain; the widening hook must still converge to
     a sound (infinite-ceiling) fixpoint within the budget. *)
  let module I = A.Interval in
  match
    IvD.solve ~widen:I.widen ~init:(I.const 0.)
      ~transfer:(fun _ x -> I.add x (I.const 1.))
      looped
  with
  | IvD.Budget_exhausted _ -> check "widening converges" true false
  | IvD.Fixpoint r ->
      check "loop head widened to +inf" true
        (I.hi r.IvD.input.(0) = Float.infinity);
      check "lower bound stays finite" true
        (I.lo r.IvD.input.(0) >= 0.)

let test_dfa_edge () =
  (* The edge transfer distinguishes the two arms of a Cond. *)
  let r =
    BoolD.solve_exn ~init:true
      ~edge:(fun ~src ~dst f ->
        match src.Ir.term with
        | Ir.Cond { else_; _ } when dst = else_ -> false
        | _ -> f)
      ~transfer:(fun _ f -> f)
      diamond_with_orphan
  in
  check "then edge keeps fact" true r.BoolD.input.(1);
  check "else edge kills fact" false r.BoolD.input.(2);
  (* Join of true (via b1) and false (via b2) is true. *)
  check "join block" true r.BoolD.input.(3)

(* ------------------------------------------------------------------ *)
(* simplify_guard                                                      *)

let test_simplify_guard () =
  let g6 = Ir.G_proto 6 in
  check "double negation" true
    (Ir.simplify_guard (Ir.G_not (Ir.G_not g6)) = g6);
  check "triple negation" true
    (Ir.simplify_guard (Ir.G_not (Ir.G_not (Ir.G_not g6))) = Ir.G_not g6);
  check "or with equal arms" true (Ir.simplify_guard (Ir.G_or (g6, g6)) = g6);
  check "not opaque folds" true
    (Ir.simplify_guard (Ir.G_not Ir.G_opaque) = Ir.G_opaque);
  check "atom untouched" true (Ir.simplify_guard g6 = g6);
  let pp g = Format.asprintf "%a" Ir.pp_guard g in
  check "pp_guard prints simplified form" true
    (pp (Ir.G_not (Ir.G_not g6)) = pp g6)

(* ------------------------------------------------------------------ *)
(* Sharing pass                                                        *)

let test_sharing_racy () =
  let r = lint racy_src in
  check "racy verdict" true (verdict r "pkt_count" = Some A.Sharing.Racy);
  check "CLARA001 reported" true (has_code "CLARA001" r);
  check "lint has errors" true (A.Suite.has_errors r);
  let d =
    List.find (fun d -> d.A.Diag.code = "CLARA001") r.A.Suite.diagnostics
  in
  check "error severity" true (d.A.Diag.severity = A.Diag.Error);
  check "names the state object" true (contains d.A.Diag.message "pkt_count");
  check "names the load block" true (contains d.A.Diag.message "load in b");
  check "anchored to a block" true (d.A.Diag.block <> None)

let test_sharing_atomic () =
  let r = lint atomic_src in
  check "atomic verdict" true (verdict r "pkt_count" = Some A.Sharing.Atomic);
  check "no errors" false (A.Suite.has_errors r);
  check "no race diagnostic" false (has_code "CLARA001" r);
  check "atomics info" true (has_code "CLARA003" r)

let test_sharing_blind_store () =
  let r = lint blind_src in
  check "blind store is racy" true
    (verdict r "pkt_count" = Some A.Sharing.Racy);
  check "CLARA002 reported" true (has_code "CLARA002" r)

let test_sharing_read_only_and_vcall () =
  let r = lint readonly_src in
  check "read-only verdict" true
    (verdict r "pkt_count" = Some A.Sharing.Read_only);
  check "no sharing diagnostics" false
    (has_code "CLARA001" r || has_code "CLARA002" r);
  match Clara_nfs.Corpus.find "nat" with
  | None -> Alcotest.fail "nat missing from corpus"
  | Some e ->
      let r = lint e.Clara_nfs.Corpus.source in
      check "table mutated via vcalls" true
        (verdict r "flow_table" = Some A.Sharing.Sync_vcall)

(* ------------------------------------------------------------------ *)
(* Feasibility pass                                                    *)

let test_feasibility_unsupported_vcall () =
  let dpi = Clara_nfs.Dpi.source in
  let on_asic = lint ~lnic:L.Asic_nic.default dpi in
  check "asic lacks payload scan" true (has_code "CLARA101" on_asic);
  check "unsupported vcall is an error" true (A.Suite.has_errors on_asic);
  let on_nfp = lint ~lnic:L.Netronome.default dpi in
  check "netronome supports it" false (has_code "CLARA101" on_nfp)

let test_feasibility_oversized_state () =
  let r = lint ~lnic:L.Netronome.default oversized_src in
  check "64GB table fits nowhere" true (has_code "CLARA102" r);
  check "oversized state is an error" true (A.Suite.has_errors r)

let test_feasibility_opaque_trip () =
  let r = lint ~lnic:L.Netronome.default while_src in
  check "un-coarsened while is flagged" true (has_code "CLARA103" r);
  (* Since the bounds pass, an opaque trip is also CLARA401: its
     worst-case latency is statically unbounded, which is an error. *)
  check "unbounded loop is an error" true (has_code "CLARA401" r);
  check "CLARA103 itself stays a warning" true
    (List.for_all
       (fun d -> d.A.Diag.code <> "CLARA103" || d.A.Diag.severity <> A.Diag.Error)
       r.A.Suite.diagnostics)

let test_feasibility_eswitch_demotion () =
  (* NAT's flow table needs table_update, which the eSwitch refuses:
     CLARA105 explains the slow-path demotion and names the vcall. *)
  let nat = Clara_nfs.Nat.source () in
  let r = lint ~lnic:L.Bluefield.default nat in
  check "CLARA105 on nat@bluefield" true (has_code "CLARA105" r);
  check "demotion is only a warning" false (A.Suite.has_errors r);
  let d =
    List.find (fun d -> d.A.Diag.code = "CLARA105") r.A.Suite.diagnostics
  in
  check "message names the missing vcall" true
    (contains d.A.Diag.message "table_update");
  (* No eSwitch on the target: the pass stays silent. *)
  let on_nfp = lint ~lnic:L.Netronome.default nat in
  check "no CLARA105 on netronome" false (has_code "CLARA105" on_nfp);
  (* A pure-lookup NF rides the fast path without demotion. *)
  let lpm = lint ~lnic:L.Bluefield.default (Clara_nfs.Lpm.source ~entries:1024) in
  check "lpm rides the fast path" false (has_code "CLARA105" lpm)

let test_feasibility_skipped_without_target () =
  let r = lint (Clara_nfs.Dpi.source) in
  check "no target recorded" true (r.A.Suite.target = None);
  check "no feasibility diagnostics" false (has_code "CLARA101" r)

(* ------------------------------------------------------------------ *)
(* Path analysis                                                       *)

let test_paths_contradiction () =
  let r = lint contradiction_src in
  check "nested proto 17 under proto 6" true (has_code "CLARA201" r);
  check "contradiction is a warning" false (A.Suite.has_errors r)

let test_paths_unreachable_block () =
  (* b1 is CFG-reachable but only via an edge whose facts contradict:
     proto==6 and then proto!=6 on the same path. *)
  let p =
    mk_prog
      [
        mk 0 [] (Ir.Cond { guard = Ir.G_proto 6; then_ = 3; else_ = 2 });
        mk 1 [] (Ir.Jump 4);
        mk 2 [] (Ir.Cond { guard = Ir.G_proto 6; then_ = 1; else_ = 4 });
        mk 3 [] (Ir.Jump 4);
        mk 4 [] Ir.Ret;
      ]
  in
  let ds = A.Paths.analyze p in
  check "guard-unreachable block flagged" true
    (List.exists (fun d -> d.A.Diag.code = "CLARA202") ds)

let test_paths_implied_guard () =
  let r = lint implied_src in
  check "repeated guard implies else dead" true (has_code "CLARA203" r);
  check "implication is info-level" false (A.Suite.has_errors r)

let test_paths_clean_diamond () =
  (* Plain branching must not produce path diagnostics. *)
  let ds = A.Paths.analyze diamond_with_orphan in
  let path_codes =
    List.filter
      (fun d -> d.A.Diag.code >= "CLARA201" && d.A.Diag.code <= "CLARA203")
      ds
  in
  (* The orphan b4 is CFG-unreachable, so CLARA202 (which only covers
     CFG-reachable blocks) must not fire for it. *)
  check "no false positives" true (path_codes = [])

(* ------------------------------------------------------------------ *)
(* Cost-sanity pass                                                    *)

let test_cost_quadratic_loop () =
  let p =
    mk_prog
      [
        mk 0 [] (Ir.Loop { body = 1; exit = 2; trip = Ir.S_payload });
        mk 1 [ Ir.Store Ir.L_packet ] (Ir.Jump 0);
        mk 2 [] Ir.Ret;
      ]
  in
  let ds = A.Cost_sanity.analyze p in
  check "packet store in payload loop" true
    (List.exists (fun d -> d.A.Diag.code = "CLARA301") ds);
  (* The same loop writing only local registers is fine. *)
  let clean =
    mk_prog
      [
        mk 0 [] (Ir.Loop { body = 1; exit = 2; trip = Ir.S_payload });
        mk 1 [ Ir.Store Ir.L_local ] (Ir.Jump 0);
        mk 2 [] Ir.Ret;
      ]
  in
  check "local store not flagged" false
    (List.exists
       (fun d -> d.A.Diag.code = "CLARA301")
       (A.Cost_sanity.analyze clean))

let dangling_prog =
  mk_prog [ mk 0 [ Ir.Load (Ir.L_state "ghost") ] Ir.Ret ]

let test_cost_dangling_state () =
  let ds = A.Cost_sanity.analyze dangling_prog in
  let d =
    match List.find_opt (fun d -> d.A.Diag.code = "CLARA302") ds with
    | Some d -> d
    | None -> Alcotest.fail "CLARA302 not reported"
  in
  check "dangling state is an error" true (d.A.Diag.severity = A.Diag.Error);
  check "names the state" true (contains d.A.Diag.message "ghost");
  let r = A.Suite.run dangling_prog in
  check "suite surfaces it" true (A.Suite.has_errors r)

(* ------------------------------------------------------------------ *)
(* Unknown_state regression                                            *)

let test_unknown_state_typed () =
  let raised =
    try
      ignore (Ir.state_obj dangling_prog "ghost");
      false
    with Ir.Unknown_state s -> s = "ghost"
  in
  check "state_obj raises typed exception" true raised;
  check "state_obj_opt returns None" true
    (Ir.state_obj_opt dangling_prog "ghost" = None)

let sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let prob = D.Flow.default_probability

let test_unknown_state_mapping_error () =
  (* A dangling state must surface as a mapping Error, not an escaped
     exception, from both the ILP and greedy paths. *)
  let df = D.Build.of_ir dangling_prog in
  let lnic = L.Netronome.default in
  (match Enc.map_nf lnic df ~sizes ~prob with
  | Ok _ -> Alcotest.fail "ILP mapping accepted a dangling state"
  | Error e -> check "ilp error names the state" true (contains e "ghost"));
  match Gr.map_nf lnic df ~sizes ~prob with
  | Ok _ -> Alcotest.fail "greedy mapping accepted a dangling state"
  | Error e -> check "greedy error names the state" true (contains e "ghost")

(* ------------------------------------------------------------------ *)
(* Mapping consumes sharing verdicts                                   *)

let test_mapping_hardens_racy_state () =
  let df = D.Build.of_ir (lower racy_src) in
  let lnic = L.Netronome.default in
  let counter name = Obs.counter_value Obs.default name in
  let base_racy = counter "mapping.sharing.racy_states" in
  let base_hard = counter "mapping.sharing.hardened_instrs" in
  (match Enc.map_nf lnic df ~sizes ~prob with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check_int "no hardening without verdicts"
    base_hard
    (counter "mapping.sharing.hardened_instrs");
  let options =
    { Map_.default_options with sharing = [ ("pkt_count", A.Sharing.Racy) ] }
  in
  (match Enc.map_nf ~options lnic df ~sizes ~prob with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  check "racy state counted" true
    (counter "mapping.sharing.racy_states" > base_racy);
  (* The RMW pair (one Load + one Store) is re-priced as atomics. *)
  check "both instrs hardened" true
    (counter "mapping.sharing.hardened_instrs" >= base_hard + 2)

let test_pipeline_injects_lint_verdicts () =
  let lnic = L.Netronome.default in
  match Clara.analyze lnic ~source:racy_src with
  | Error e -> Alcotest.fail e
  | Ok a ->
      check "lint report attached" true
        (List.exists (fun d -> d.A.Diag.code = "CLARA001")
           a.Clara.lint.A.Suite.diagnostics);
      check "verdicts injected into mapping options" true
        (List.assoc_opt "pkt_count" a.Clara.options.Map_.sharing
        = Some A.Sharing.Racy)

(* ------------------------------------------------------------------ *)
(* Dead-block elimination                                              *)

let test_eliminate_dead_blocks () =
  let p, removed = Pat.eliminate_dead_blocks diamond_with_orphan in
  check_int "one orphan removed" 1 removed;
  check_int "blocks compacted" 4 (Array.length p.Ir.blocks);
  check "still ends in Ret" true
    (Array.exists (fun b -> b.Ir.term = Ir.Ret) p.Ir.blocks);
  let q, removed' = Pat.eliminate_dead_blocks p in
  check_int "idempotent" 0 removed';
  check_int "no further removal" (Array.length p.Ir.blocks)
    (Array.length q.Ir.blocks)

(* ------------------------------------------------------------------ *)
(* Whole-corpus lint                                                   *)

let test_corpus_lints_clean () =
  let lnic = L.Netronome.default in
  List.iter
    (fun e ->
      let r = lint ~lnic e.Clara_nfs.Corpus.source in
      (match A.Suite.errors r with
      | [] -> ()
      | d :: _ ->
          Alcotest.fail
            (Printf.sprintf "%s: %s %s" e.Clara_nfs.Corpus.name d.A.Diag.code
               d.A.Diag.message));
      check (e.Clara_nfs.Corpus.name ^ " has verdicts for all states") true
        (List.length r.A.Suite.sharing
        = List.length (lower e.Clara_nfs.Corpus.source).Ir.states))
    Clara_nfs.Corpus.all

(* ------------------------------------------------------------------ *)
(* Paths lattice: set semantics + fact decomposition                   *)

let test_paths_lattice_canonical () =
  let f6 = (Ir.G_proto 6, true) and f17 = (Ir.G_proto 17, false) in
  let fl2 = (Ir.G_flag 2, true) in
  (* Order and duplicates must not distinguish equal fact sets... *)
  check "equal ignores order" true
    (A.Paths.L.equal (A.Paths.L.Facts [ f6; f17 ]) (A.Paths.L.Facts [ f17; f6 ]));
  check "equal ignores duplicates" true
    (A.Paths.L.equal
       (A.Paths.L.Facts [ f6; f17; f6 ])
       (A.Paths.L.Facts [ f17; f6 ]));
  check "different sets differ" false
    (A.Paths.L.equal (A.Paths.L.Facts [ f6 ]) (A.Paths.L.Facts [ f17 ]));
  (* ...and join must intersect as sets, canonically. *)
  (match
     A.Paths.L.join
       (A.Paths.L.Facts [ fl2; f6; f17 ])
       (A.Paths.L.Facts [ f17; f6 ])
   with
  | A.Paths.L.Facts fs ->
      check "join intersects" true (List.sort compare fs = List.sort compare [ f6; f17 ])
  | A.Paths.L.Unreached -> Alcotest.fail "join of reached states unreached");
  (* Regression: differently-ordered equal inputs must join to something
     [equal] to both, or the fixpoint oscillates and burns the budget. *)
  let a = A.Paths.L.Facts [ f6; f17; fl2 ] and b = A.Paths.L.Facts [ fl2; f17; f6 ] in
  check "join of reorderings is equal to both" true
    (A.Paths.L.equal (A.Paths.L.join a b) a && A.Paths.L.equal (A.Paths.L.join a b) b)

let test_facts_de_morgan () =
  let g6 = Ir.G_proto 6 and g17 = Ir.G_proto 17 in
  let sorted l = List.sort compare l in
  (* not (p6 || p17) = !p6 && !p17 *)
  check "negated disjunction splits" true
    (sorted (A.Paths.facts_of_guard (Ir.G_not (Ir.G_or (g6, g17))) true)
    = sorted [ (g6, false); (g17, false) ]);
  (* (p6 || p17) false — same thing reached through the polarity. *)
  check "false disjunction splits" true
    (sorted (A.Paths.facts_of_guard (Ir.G_or (g6, g17)) false)
    = sorted [ (g6, false); (g17, false) ]);
  (* not (not (p6 || p17)): double negation back to a true disjunction,
     which pins down neither arm. *)
  check "nested negation yields nothing" true
    (A.Paths.facts_of_guard (Ir.G_not (Ir.G_not (Ir.G_or (g6, g17)))) true = []);
  (* not ((not p6) || (not p17)) = p6 && p17. *)
  check "negation of negated arms asserts both" true
    (sorted (A.Paths.facts_of_guard (Ir.G_not (Ir.G_or (Ir.G_not g6, Ir.G_not g17))) true)
    = sorted [ (g6, true); (g17, true) ]);
  (* Mutually exclusive protocols conflict when both asserted... *)
  check "p6 and p17 conflict" true
    (A.Paths.conflicts (g6, true) (g17, true));
  (* ...but not when either is negative. *)
  check "p6 with not-p17 is consistent" false
    (A.Paths.conflicts (g6, true) (g17, false));
  check "same atom opposite polarity conflicts" true
    (A.Paths.conflicts (g6, true) (g6, false));
  (* assuming: a consistent extension keeps the set, a contradictory one
     kills the branch. *)
  check "assuming consistent" true
    (A.Paths.assuming [ (g6, true) ] g17 false <> None);
  check "assuming contradiction" true
    (A.Paths.assuming [ (g6, true) ] g17 true = None)

(* ------------------------------------------------------------------ *)
(* Interval domain + bounds analysis                                   *)

let test_interval_ops () =
  let module I = A.Interval in
  check "make inverted is bottom" true (I.is_bottom (I.make 2. 1.));
  check "join hull" true (I.equal (I.join (I.const 1.) (I.const 5.)) (I.make 1. 5.));
  check "meet overlap" true
    (I.equal (I.meet (I.make 0. 3.) (I.make 2. 9.)) (I.make 2. 3.));
  check "meet disjoint is bottom" true
    (I.is_bottom (I.meet (I.make 0. 1.) (I.make 2. 3.)));
  (* 0 * inf = 0: a never-executed block of unbounded cost is free. *)
  check "zero times top" true
    (I.equal (I.mul (I.const 0.) (I.make 1. Float.infinity)) (I.const 0.));
  check "mul ranges" true
    (I.equal (I.mul (I.make 0. 2.) (I.make 3. 4.)) (I.make 0. 8.));
  (* Widening jumps grown endpoints to infinity; narrowing refines only
     infinite ones back. *)
  let w = I.widen (I.make 0. 4.) (I.make 0. 5.) in
  check "widen hi to inf" true (I.hi w = Float.infinity && I.lo w = 0.);
  check "widen stable when contained" true
    (I.equal (I.widen (I.make 0. 4.) (I.make 1. 4.)) (I.make 0. 4.));
  check "narrow refines inf endpoint" true
    (I.equal (I.narrow w (I.make 0. 7.)) (I.make 0. 7.));
  check "narrow keeps finite endpoint" true
    (I.equal (I.narrow (I.make 0. 7.) (I.make 2. 5.)) (I.make 0. 7.))

let nat_ir () =
  fst (Pat.run (Low.lower_source (Clara_nfs.Nat.source ())))

let test_bounds_finite_example () =
  let module B = A.Bounds in
  let module I = A.Interval in
  let b = B.analyze ~lnic:L.Netronome.default (nat_ir ()) in
  check "no unbounded loops" true (b.B.bt_unbounded_loops = []);
  check "budget not exhausted" false b.B.bt_exhausted;
  check_int "five type rows" 5 (List.length b.B.bt_per_type);
  List.iter
    (fun (row : B.type_bounds) ->
      check ("finite total for " ^ row.B.tb_type) true (I.is_finite row.B.tb_total);
      check ("positive lower for " ^ row.B.tb_type) true (I.lo row.B.tb_total > 0.);
      check ("ordered endpoints for " ^ row.B.tb_type) true
        (I.lo row.B.tb_total <= I.hi row.B.tb_total);
      (* Axis means tile the service interval. *)
      check ("service within total for " ^ row.B.tb_type) true
        (I.lo row.B.tb_service >= I.lo row.B.tb_total -. 1e-9
        && I.hi row.B.tb_service <= I.hi row.B.tb_total +. 1e-9))
    b.B.bt_per_type;
  (* A fixed-protocol class can never be looser than the union class. *)
  let all = Option.get (B.find b "all") and udp = Option.get (B.find b "udp") in
  check "udp upper <= all upper" true
    (I.hi udp.B.tb_total <= I.hi all.B.tb_total +. 1e-9);
  check "no CLARA401 on nat" true
    (List.for_all
       (fun d -> d.A.Diag.code <> "CLARA401")
       (B.lint ~lnic:L.Netronome.default (nat_ir ())))

let test_bounds_unbounded_loop () =
  let module B = A.Bounds in
  let module I = A.Interval in
  let ir = fst (Pat.run (Low.lower_source while_src)) in
  check "loop reported" true (B.unbounded_loops ir <> []);
  let diags = B.lint ~lnic:L.Netronome.default ir in
  check "CLARA401 fires" true
    (List.exists
       (fun d -> d.A.Diag.code = "CLARA401" && d.A.Diag.severity = A.Diag.Error)
       diags);
  let b = B.analyze ~lnic:L.Netronome.default ir in
  let all = Option.get (B.find b "all") in
  check "upper bound infinite" true (I.hi all.B.tb_total = Float.infinity);
  check "lower bound finite and positive" true
    (Float.is_finite (I.lo all.B.tb_total) && I.lo all.B.tb_total > 0.)

let test_bounds_verdict () =
  let module B = A.Bounds in
  let module I = A.Interval in
  let b = B.analyze ~lnic:L.Netronome.default (nat_ir ()) in
  let all = Option.get (B.find b "all") in
  let lo_us = B.us_of b (I.lo all.B.tb_total)
  and hi_us = B.us_of b (I.hi all.B.tb_total) in
  check "meets above upper" true
    (B.verdict b ~slo_p99_us:(hi_us +. 1.) = B.Provably_meets);
  check "violates below lower" true
    (B.verdict b ~slo_p99_us:(lo_us /. 2.) = B.Provably_violates);
  check "unclear inside the interval" true
    (B.verdict b ~slo_p99_us:((lo_us +. hi_us) /. 2.) = B.Unclear);
  (* CLARA403 tracks the provable violation only. *)
  let has403 slo =
    List.exists
      (fun d -> d.A.Diag.code = "CLARA403")
      (B.lint ~lnic:L.Netronome.default ~slo_p99_us:slo (nat_ir ()))
  in
  check "CLARA403 on violation" true (has403 (lo_us /. 2.));
  check "no CLARA403 when unclear" false (has403 ((lo_us +. hi_us) /. 2.))

let test_report_json_shape () =
  let r = lint ~lnic:L.Netronome.default racy_src in
  match A.Suite.to_json r with
  | Clara_util.Json.Obj fields ->
      let mem k = List.mem_assoc k fields in
      check "has program" true (mem "program");
      check "has summary" true (mem "summary");
      check "has sharing" true (mem "sharing");
      check "has diagnostics" true (mem "diagnostics")
  | _ -> Alcotest.fail "report JSON is not an object"

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "dfa forward reachability" `Quick test_dfa_forward;
    Alcotest.test_case "dfa backward" `Quick test_dfa_backward;
    Alcotest.test_case "dfa iteration budget" `Quick test_dfa_budget;
    Alcotest.test_case "dfa interval widening" `Quick test_dfa_widening;
    Alcotest.test_case "dfa edge transfer" `Quick test_dfa_edge;
    Alcotest.test_case "simplify_guard" `Quick test_simplify_guard;
    Alcotest.test_case "sharing: racy RMW" `Quick test_sharing_racy;
    Alcotest.test_case "sharing: atomic fix" `Quick test_sharing_atomic;
    Alcotest.test_case "sharing: blind store" `Quick test_sharing_blind_store;
    Alcotest.test_case "sharing: read-only and vcall" `Quick
      test_sharing_read_only_and_vcall;
    Alcotest.test_case "feasibility: unsupported vcall" `Quick
      test_feasibility_unsupported_vcall;
    Alcotest.test_case "feasibility: oversized state" `Quick
      test_feasibility_oversized_state;
    Alcotest.test_case "feasibility: opaque trip" `Quick
      test_feasibility_opaque_trip;
    Alcotest.test_case "feasibility: eswitch demotion" `Quick
      test_feasibility_eswitch_demotion;
    Alcotest.test_case "feasibility: skipped without target" `Quick
      test_feasibility_skipped_without_target;
    Alcotest.test_case "paths: contradiction" `Quick test_paths_contradiction;
    Alcotest.test_case "paths: guard-unreachable block" `Quick
      test_paths_unreachable_block;
    Alcotest.test_case "paths: implied guard" `Quick test_paths_implied_guard;
    Alcotest.test_case "paths: clean diamond" `Quick test_paths_clean_diamond;
    Alcotest.test_case "cost: quadratic payload loop" `Quick
      test_cost_quadratic_loop;
    Alcotest.test_case "cost: dangling state" `Quick test_cost_dangling_state;
    Alcotest.test_case "unknown state: typed exception" `Quick
      test_unknown_state_typed;
    Alcotest.test_case "unknown state: mapping error" `Quick
      test_unknown_state_mapping_error;
    Alcotest.test_case "mapping hardens racy state" `Quick
      test_mapping_hardens_racy_state;
    Alcotest.test_case "pipeline injects lint verdicts" `Quick
      test_pipeline_injects_lint_verdicts;
    Alcotest.test_case "eliminate_dead_blocks" `Quick
      test_eliminate_dead_blocks;
    Alcotest.test_case "corpus lints clean" `Quick test_corpus_lints_clean;
    Alcotest.test_case "paths lattice canonical sets" `Quick
      test_paths_lattice_canonical;
    Alcotest.test_case "guard facts De Morgan + conflicts" `Quick
      test_facts_de_morgan;
    Alcotest.test_case "interval domain ops" `Quick test_interval_ops;
    Alcotest.test_case "bounds: finite on example NF" `Quick
      test_bounds_finite_example;
    Alcotest.test_case "bounds: unbounded loop" `Quick
      test_bounds_unbounded_loop;
    Alcotest.test_case "bounds: SLO verdict three-way" `Quick
      test_bounds_verdict;
    Alcotest.test_case "report json shape" `Quick test_report_json_shape;
  ]
