(* Tests for lib/explore: spec parsing, cache keys, the on-disk result
   cache, the Domain executor, Pareto frontiers, and whole-sweep
   determinism (1 domain vs N domains, cold vs warm cache). *)

module E = Clara_explore
module J = Clara_util.Json
module W = Clara_workload
module L = Clara_lnic
module M = Clara_mapping.Mapping

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ---- scratch directories ------------------------------------------- *)

let rec rm_rf path =
  match Sys.is_directory path with
  | true ->
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
  | false -> Sys.remove path
  | exception Sys_error _ -> ()

let fresh_dir =
  let n = ref 0 in
  fun label ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "clara-test-%d-%s-%d" (Unix.getpid ()) label !n)
    in
    rm_rf d;
    d

let with_dir label f =
  let d = fresh_dir label in
  Fun.protect ~finally:(fun () -> rm_rf d) (fun () -> f d)

(* ---- JSON parser ---------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("a", J.Int 42); ("b", J.Float 1.5); ("c", J.String "x\"y\n");
        ("d", J.List [ J.Bool true; J.Null; J.Int (-7) ]);
        ("e", J.Obj [ ("nested", J.List []) ]) ]
  in
  check "roundtrip" true (J.parse_exn (J.to_string v) = v);
  check "compact roundtrip" true (J.parse_exn (J.to_string ~pretty:false v) = v)

let test_json_numbers () =
  check "int stays int" true (J.parse_exn "42" = J.Int 42);
  check "negative" true (J.parse_exn "-3" = J.Int (-3));
  check "float" true (J.parse_exn "1.25" = J.Float 1.25);
  check "exponent is float" true (J.parse_exn "1e3" = J.Float 1000.);
  (* Floats must round-trip losslessly: a cached metric re-read from
     disk has to equal the freshly computed one byte-for-byte. *)
  List.iter
    (fun f ->
      let s = J.to_string (J.Float f) in
      check ("lossless " ^ s) true (J.parse_exn s = J.Float f))
    [ 1996008.3333333333; 0.1; 1. /. 3.; 123456789012345.7; 6.02e23 ]

let test_json_errors () =
  let bad s = match J.parse s with Error _ -> true | Ok _ -> false in
  check "empty" true (bad "");
  check "trailing garbage" true (bad "{} x");
  check "unterminated string" true (bad "\"abc");
  check "bare word" true (bad "nope");
  check "unclosed obj" true (bad "{\"a\": 1")

let test_json_accessors () =
  let j = J.parse_exn "{\"i\": 3, \"f\": 2.5, \"s\": \"hi\", \"l\": [1]}" in
  check "member" true (J.member "i" j = Some (J.Int 3));
  check "member missing" true (J.member "zzz" j = None);
  check "int via float" true (J.to_int_opt (J.Float 4.0) = Some 4);
  check "int not from 4.5" true (J.to_int_opt (J.Float 4.5) = None);
  check "float widens int" true (J.to_float_opt (J.Int 2) = Some 2.);
  check "list" true
    (match Option.bind (J.member "l" j) J.to_list_opt with
    | Some [ J.Int 1 ] -> true
    | _ -> false)

(* ---- Targets -------------------------------------------------------- *)

let test_targets () =
  check_int "five targets" 5 (List.length L.Targets.all);
  check "host excluded from nics" true
    (not (List.mem_assoc "host" L.Targets.nics));
  List.iter
    (fun name ->
      match L.Targets.of_name name with
      | Ok g -> check ("valid " ^ name) true (L.Validate.is_valid g)
      | Error e -> Alcotest.fail e)
    L.Targets.names;
  match L.Targets.of_name "pensando" with
  | Ok _ -> Alcotest.fail "unknown NIC accepted"
  | Error e ->
      (* the error message names every valid target *)
      check "error lists choices" true
        (List.for_all (fun n -> contains ~needle:n e) L.Targets.names)

(* ---- Spec parsing --------------------------------------------------- *)

let spec_json =
  {|{ "name": "t", "seed": 7,
      "nfs": ["nat", "lpm"],
      "nics": ["netronome", "soc"],
      "options": ["default", "no-accels"],
      "workload": { "rate": [30000, 60000], "packets": 500 } }|}

let test_spec_parse () =
  match E.Spec.of_string spec_json with
  | Error e -> Alcotest.fail e
  | Ok s ->
      check_str "name" "t" s.E.Spec.name;
      check_int "2 nf x 2 nic x 2 opt x 2 rate" 16 (List.length s.E.Spec.cells);
      let ids = List.map (fun c -> c.E.Spec.id) s.E.Spec.cells in
      check "ids are 0..15 in order" true (ids = List.init 16 Fun.id);
      let c0 = List.hd s.E.Spec.cells in
      check_str "outermost axis is the NF" "nat" c0.E.Spec.nf_name;
      check_str "then the NIC" "netronome" c0.E.Spec.nic_name;
      check_int "seed propagates" 7 c0.E.Spec.seed;
      check_int "packets propagate" 500 c0.E.Spec.profile.W.Profile.packets

let test_spec_zip () =
  let j =
    {|{ "nfs": ["nat"], "nics": ["soc"],
        "workload": { "combine": "zip", "rate": [10000, 20000, 30000],
                      "payload": [100, 200, 300], "packets": 500 } }|}
  in
  (match E.Spec.of_string j with
  | Error e -> Alcotest.fail e
  | Ok s -> check_int "zip pairs pointwise" 3 (List.length s.E.Spec.cells));
  let mismatched =
    {|{ "nfs": ["nat"], "nics": ["soc"],
        "workload": { "combine": "zip", "rate": [1, 2], "payload": [1, 2, 3] } }|}
  in
  match E.Spec.of_string mismatched with
  | Ok _ -> Alcotest.fail "mismatched zip accepted"
  | Error e -> check "zip error names lengths" true (String.length e > 0)

let test_spec_rejects () =
  let bad j = match E.Spec.of_string j with Error _ -> true | Ok _ -> false in
  check "unknown NF" true (bad {|{ "nfs": ["nonesuch"], "nics": ["soc"] }|});
  check "unknown NIC" true (bad {|{ "nfs": ["nat"], "nics": ["pensando"] }|});
  check "unknown options" true
    (bad {|{ "nfs": ["nat"], "nics": ["soc"], "options": ["turbo"] }|});
  check "empty nfs" true (bad {|{ "nfs": [], "nics": ["soc"] }|});
  check "missing nics" true (bad {|{ "nfs": ["nat"] }|});
  check "malformed JSON" true (bad {|{ "nfs": ["nat", }|})

let test_spec_inline_source () =
  let j =
    {|{ "nfs": [{ "name": "mini", "source": "nf mini { handler h(p) { var hdr = parse_header(p); emit(p); } }" }],
        "nics": ["asic"], "workload": { "packets": 500 } }|}
  in
  match E.Spec.of_string j with
  | Error e -> Alcotest.fail e
  | Ok s ->
      let c = List.hd s.E.Spec.cells in
      check_str "inline name" "mini" c.E.Spec.nf_name;
      check "inline source kept" true
        (String.length c.E.Spec.nf_source > 20)

(* ---- Cache keys ----------------------------------------------------- *)

let mk_cell ?(id = 0) ?(nf_name = "nat") ?(source = "nf x {}")
    ?(nic = "netronome") ?(options = M.default_options) ?(seed = 42) () =
  { E.Spec.id; nf_name; nf_source = source; nic_name = nic;
    opt_name = "default"; options; wl_label = "wl";
    profile = W.Profile.make ~packets:500 ~flow_count:200 (); seed }

let test_key_stability () =
  let c = mk_cell () in
  let k = E.Key.of_cell ~salt:"" c in
  check_str "same cell, same key" k (E.Key.of_cell ~salt:"" c);
  check_int "hex md5" 32 (String.length k);
  (* The key is content-addressed: renaming the NF or moving the cell
     to another spec position must not invalidate it... *)
  check_str "rename keeps key" k
    (E.Key.of_cell ~salt:"" (mk_cell ~id:9 ~nf_name:"other" ()));
  (* ...but anything the numbers depend on must. *)
  let differs label c' = check label true (E.Key.of_cell ~salt:"" c' <> k) in
  differs "source edit changes key" (mk_cell ~source:"nf x {} " ());
  differs "nic changes key" (mk_cell ~nic:"soc" ());
  differs "seed changes key" (mk_cell ~seed:43 ());
  differs "options change key"
    (mk_cell
       ~options:
         { M.default_options with
           M.disallowed_accels = [ L.Unit_.Lookup ] }
       ());
  check "salt changes key" true (E.Key.of_cell ~salt:"v2" c <> k)

(* ---- Cache ---------------------------------------------------------- *)

let test_cache_roundtrip () =
  with_dir "cache" @@ fun dir ->
  let c = E.Cache.create ~dir in
  let key = E.Key.of_cell ~salt:"" (mk_cell ()) in
  check "empty cache misses" true (E.Cache.lookup c ~key = None);
  let payload = J.Obj [ ("mean_us", J.Float 1.25) ] in
  E.Cache.store c ~key payload;
  check "hit after store" true (E.Cache.lookup c ~key = Some payload);
  check_int "one entry on disk" 1 (E.Cache.entries c);
  (* A second cache handle over the same directory sees the entry. *)
  let c2 = E.Cache.create ~dir in
  check "persistent across handles" true (E.Cache.lookup c2 ~key = Some payload)

let test_cache_corruption () =
  with_dir "corrupt" @@ fun dir ->
  let c = E.Cache.create ~dir in
  let key = E.Key.of_cell ~salt:"" (mk_cell ()) in
  E.Cache.store c ~key (J.Int 1);
  let path = Filename.concat dir (key ^ ".json") in
  (* Truncated file: parse error must degrade to a miss, not raise. *)
  let oc = open_out path in
  output_string oc "{\"key\": \"";
  close_out oc;
  check "corrupt entry is a miss" true (E.Cache.lookup c ~key = None);
  (* Key/content mismatch (entry copied to the wrong name): miss. *)
  let other = String.map (function 'a' -> 'b' | ch -> ch) key in
  E.Cache.store c ~key:other (J.Int 2);
  Sys.rename (Filename.concat dir (other ^ ".json")) path;
  check "mismatched entry is a miss" true (E.Cache.lookup c ~key = None);
  (* Malformed keys never touch the filesystem. *)
  check "traversal key is a miss" true
    (E.Cache.lookup c ~key:"../../etc/passwd" = None)

(* ---- Executor ------------------------------------------------------- *)

let test_executor_ordering () =
  let n = 40 in
  let results, stats = E.Executor.map ~domains:4 (fun i -> i * i) n in
  check_int "all jobs ran" n stats.E.Executor.jobs;
  Array.iteri
    (fun i r ->
      match r with
      | E.Executor.Done v -> check_int "slot order" (i * i) v
      | E.Executor.Failed e -> Alcotest.fail e)
    results

let test_executor_isolation () =
  let results, _ =
    E.Executor.map ~domains:3
      (fun i -> if i mod 5 = 2 then failwith (Printf.sprintf "boom %d" i) else i)
      15
  in
  Array.iteri
    (fun i r ->
      match (r, i mod 5 = 2) with
      | E.Executor.Failed e, true ->
          check_str "failure message" (Printf.sprintf "boom %d" i) e
      | E.Executor.Done v, false -> check_int "survivor" i v
      | E.Executor.Done _, true -> Alcotest.fail "exception swallowed"
      | E.Executor.Failed e, false -> Alcotest.fail ("collateral failure: " ^ e))
    results

let test_executor_timeout () =
  let results, _ =
    E.Executor.map ~domains:2 ~timeout_ms:50
      (fun i ->
        if i = 0 then Unix.sleepf 0.25;
        i)
      3
  in
  (match results.(0) with
  | E.Executor.Failed e ->
      check "timeout reported" true
        (String.length e >= 7 && String.sub e 0 7 = "timeout")
  | E.Executor.Done _ -> Alcotest.fail "overdue job not timed out");
  (match results.(1) with
  | E.Executor.Done 1 -> ()
  | _ -> Alcotest.fail "fast job affected by sibling timeout")

(* ---- Frontier ------------------------------------------------------- *)

let pt p99 pps nj = { E.Frontier.p99_us = p99; max_pps = pps; nj_per_packet = nj }

let test_frontier () =
  let a = pt 1. 100. 5. and b = pt 2. 50. 9. and c = pt 0.5 80. 9. in
  check "a dominates b" true (E.Frontier.dominates a b);
  check "b not a" false (E.Frontier.dominates b a);
  check "no self-domination" false (E.Frontier.dominates a a);
  check "a/c incomparable" false
    (E.Frontier.dominates a c || E.Frontier.dominates c a);
  let front = E.Frontier.pareto [ (0, a); (1, b); (2, c) ] in
  check "b filtered, order kept" true (List.map fst front = [ 0; 2 ]);
  check "best_by ties to first" true
    (E.Frontier.best_by
       (fun (_, x) (_, y) -> compare x.E.Frontier.p99_us y.E.Frontier.p99_us)
       [ (5, pt 1. 0. 0.); (6, pt 1. 0. 0.) ]
    |> Option.map fst = Some 5)

(* ---- Whole-sweep behavior ------------------------------------------- *)

let small_spec ?salt () =
  let nf n = (n, (Option.get (Clara_nfs.Corpus.find n)).Clara_nfs.Corpus.source) in
  let profile =
    W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:400 ~flow_count:200
      ~rate_pps:40_000. ()
  in
  E.Spec.make ?salt ~name:"unit" ~seed:11 ~nfs:[ nf "nat"; nf "firewall" ]
    ~nics:[ "netronome"; "asic" ]
    ~opts:[ ("default", M.default_options) ]
    ~workloads:[ ("w", profile) ] ()

let report_string r = J.to_string (E.Sweep.to_json r)

let test_sweep_determinism () =
  let spec = small_spec () in
  let r1 = E.Sweep.run ~domains:1 spec in
  let r3 = E.Sweep.run ~domains:3 spec in
  check_int "no failures" 0 r1.E.Sweep.stats.E.Sweep.failed;
  check "1-domain and 3-domain reports byte-identical" true
    (String.equal (report_string r1) (report_string r3))

let test_sweep_cache_cycle () =
  with_dir "sweep" @@ fun dir ->
  let spec = small_spec () in
  let cache = E.Cache.create ~dir in
  let cold = E.Sweep.run ~domains:2 ~cache spec in
  check_int "cold: all misses" 4 cold.E.Sweep.stats.E.Sweep.cache_misses;
  check_int "cold: no hits" 0 cold.E.Sweep.stats.E.Sweep.cache_hits;
  let warm = E.Sweep.run ~domains:1 ~cache spec in
  check_int "warm: all hits" 4 warm.E.Sweep.stats.E.Sweep.cache_hits;
  check_int "warm: no misses" 0 warm.E.Sweep.stats.E.Sweep.cache_misses;
  check "cold and warm reports byte-identical" true
    (String.equal (report_string cold) (report_string warm));
  (* Salting the spec invalidates every entry (same cells, new keys). *)
  let resalted = E.Sweep.run ~domains:1 ~cache (small_spec ~salt:"v2" ()) in
  check_int "salt change: all misses" 4
    resalted.E.Sweep.stats.E.Sweep.cache_misses

let test_sweep_failure_isolation () =
  with_dir "fail" @@ fun dir ->
  let profile = W.Profile.make ~packets:400 ~flow_count:200 () in
  let spec =
    E.Spec.make ~name:"fail" ~seed:11
      ~nfs:
        [ ("ok", (Option.get (Clara_nfs.Corpus.find "nat")).Clara_nfs.Corpus.source);
          ("broken", "nf broken {") ]
      ~nics:[ "netronome" ]
      ~opts:[ ("default", M.default_options) ]
      ~workloads:[ ("w", profile) ] ()
  in
  let cache = E.Cache.create ~dir in
  let r = E.Sweep.run ~domains:2 ~cache spec in
  check_int "one failed cell" 1 r.E.Sweep.stats.E.Sweep.failed;
  (match r.E.Sweep.outcomes.(0).E.Sweep.status with
  | E.Sweep.Computed _ -> ()
  | E.Sweep.Failed e -> Alcotest.fail ("healthy cell failed: " ^ e)
  | E.Sweep.Pruned _ -> Alcotest.fail "healthy cell pruned without an SLO");
  (match r.E.Sweep.outcomes.(1).E.Sweep.status with
  | E.Sweep.Failed _ -> ()
  | E.Sweep.Computed _ -> Alcotest.fail "broken NF produced metrics"
  | E.Sweep.Pruned _ -> Alcotest.fail "broken NF pruned without an SLO");
  (* Failures are never cached: only the healthy cell is on disk, and a
     rerun recomputes (not hits) the broken one. *)
  check_int "only successes cached" 1 (E.Cache.entries cache);
  let r2 = E.Sweep.run ~domains:1 ~cache spec in
  check_int "rerun: one hit" 1 r2.E.Sweep.stats.E.Sweep.cache_hits;
  check_int "rerun: broken cell recomputed" 1
    r2.E.Sweep.stats.E.Sweep.cache_misses;
  (* The report still ranks the healthy cell. *)
  check "frontier nonempty" true (r2.E.Sweep.frontier <> [])

let test_sweep_slo_pruning () =
  with_dir "prune" @@ fun dir ->
  let spec = small_spec () in
  let cache = E.Cache.create ~dir in
  (* An absurdly tight SLO: every static lower bound exceeds it, so the
     whole grid is pruned before simulation. *)
  let r = E.Sweep.run ~domains:2 ~cache ~slo_p99_us:0.001 spec in
  check_int "all cells pruned" 4 r.E.Sweep.stats.E.Sweep.pruned;
  check_int "nothing computed" 0 r.E.Sweep.stats.E.Sweep.cache_misses;
  Array.iter
    (fun o ->
      match o.E.Sweep.status with
      | E.Sweep.Pruned reason ->
          check "prune reason names the SLO" true
            (contains ~needle:"SLO" reason)
      | E.Sweep.Computed _ | E.Sweep.Failed _ ->
          Alcotest.fail "cell escaped an impossible SLO")
    r.E.Sweep.outcomes;
  (* Pruned cells are never cached... *)
  check_int "prunes leave no cache entries" 0 (E.Cache.entries cache);
  (* ...so relaxing the SLO recomputes the full grid. *)
  let relaxed = E.Sweep.run ~domains:1 ~cache ~slo_p99_us:1e9 spec in
  check_int "relaxed: nothing pruned" 0 relaxed.E.Sweep.stats.E.Sweep.pruned;
  check_int "relaxed: all computed" 4 relaxed.E.Sweep.stats.E.Sweep.cache_misses;
  (* A pruning sweep is deterministic like any other. *)
  let r2 = E.Sweep.run ~domains:1 ~slo_p99_us:0.001 spec in
  check "pruned reports byte-identical across domain counts" true
    (String.equal (report_string r) (report_string r2))

let test_sweep_csv_and_render () =
  let spec = small_spec () in
  let r = E.Sweep.run ~domains:1 spec in
  let csv = E.Sweep.to_csv r in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check_int "csv: header + one row per cell" 5 (List.length lines);
  check "csv header" true (List.hd lines = E.Sweep.csv_header);
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  E.Sweep.render fmt r;
  Format.pp_print_flush fmt ();
  check "render mentions frontier" true
    (contains ~needle:"pareto frontier" (Buffer.contents buf))

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json numbers lossless" `Quick test_json_numbers;
    Alcotest.test_case "json parse errors" `Quick test_json_errors;
    Alcotest.test_case "json accessors" `Quick test_json_accessors;
    Alcotest.test_case "targets registry" `Quick test_targets;
    Alcotest.test_case "spec parse + expansion order" `Quick test_spec_parse;
    Alcotest.test_case "spec zip axes" `Quick test_spec_zip;
    Alcotest.test_case "spec rejects bad input" `Quick test_spec_rejects;
    Alcotest.test_case "spec inline NF source" `Quick test_spec_inline_source;
    Alcotest.test_case "cache key stability" `Quick test_key_stability;
    Alcotest.test_case "cache roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache corruption = miss" `Quick test_cache_corruption;
    Alcotest.test_case "executor result ordering" `Quick test_executor_ordering;
    Alcotest.test_case "executor failure isolation" `Quick test_executor_isolation;
    Alcotest.test_case "executor cooperative timeout" `Quick test_executor_timeout;
    Alcotest.test_case "pareto frontier" `Quick test_frontier;
    Alcotest.test_case "sweep domain-count determinism" `Quick test_sweep_determinism;
    Alcotest.test_case "sweep cache cold/warm/salt" `Quick test_sweep_cache_cycle;
    Alcotest.test_case "sweep failure isolation" `Quick test_sweep_failure_isolation;
    Alcotest.test_case "sweep SLO pruning" `Quick test_sweep_slo_pruning;
    Alcotest.test_case "sweep csv + text render" `Quick test_sweep_csv_and_render ]
