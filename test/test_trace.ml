(* Tests for the per-packet tracing layer: ring-buffer sink semantics,
   the tiling invariant attribution relies on, tracing's zero effect on
   simulation results, run_pair event tagging, Perfetto export, and the
   predictor-side attribution. *)

module Trace = Clara_nicsim.Trace
module Attr = Clara_nicsim.Attribution
module Export = Clara_nicsim.Trace_export
module Dev = Clara_nicsim.Device
module Eng = Clara_nicsim.Engine
module Stats = Clara_nicsim.Stats
module Lat = Clara_predict.Latency
module J = Clara_util.Json
module L = Clara_lnic
module W = Clara_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let lnic = L.Netronome.default

let workload ?(tcp = 0.8) ?(rate = 60_000.) ~packets () =
  W.Trace.synthesize ~seed:5L
    (W.Profile.make ~packets ~rate_pps:rate ~flow_count:100 ~tcp_fraction:tcp
       ~payload:(W.Dist.Fixed 300) ())

let nat = Clara_nfs.Nat.ported ~checksum_engine:true

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)

let test_ring_semantics () =
  let t = Trace.create ~limit:10 () in
  check_int "empty" 0 (Array.length (Trace.events t));
  for i = 0 to 24 do
    Trace.record t ~seq:i ~prog:0 ~thread:0 ~kind:Trace.Compute ~label:"x"
      ~t0:i ~t1:(i + 1) ~arg:0
  done;
  let evs = Trace.events t in
  check_int "bounded by limit" 10 (Array.length evs);
  check_int "total counts everything" 25 (Trace.total t);
  check_int "dropped = total - retained" 15 (Trace.dropped t);
  check_int "oldest surviving event" 15 evs.(0).Trace.seq;
  check "oldest-first order" true
    (Array.for_all (fun i -> evs.(i).Trace.seq < evs.(i + 1).Trace.seq)
       (Array.init 9 Fun.id));
  Trace.clear t;
  check_int "clear forgets events" 0 (Array.length (Trace.events t));
  check_int "clear resets total" 0 (Trace.total t);
  check "limit < 1 rejected" true
    (try ignore (Trace.create ~limit:0 ()); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tracing must not change simulation results                          *)

let test_sink_off_identical () =
  let tr = workload ~packets:2_000 () in
  let r_off = Eng.run lnic (nat ()) tr in
  let sink = Trace.create () in
  let r_on = Eng.run lnic (nat ()) ~sink tr in
  (* [compare], not [=]: NaN hit rates must compare equal. *)
  check "summary byte-identical" true
    (compare r_off.Eng.summary r_on.Eng.summary = 0);
  check "emem hit rate identical" true
    (compare r_off.Eng.emem_hit_rate r_on.Eng.emem_hit_rate = 0);
  check "flow cache hit rate identical" true
    (compare r_off.Eng.flow_cache_hit_rate r_on.Eng.flow_cache_hit_rate = 0);
  check "events recorded" true (Trace.total sink > 0)

(* ------------------------------------------------------------------ *)
(* Tiling invariant: spans sum to latency, per packet                  *)

let test_tiling_invariant () =
  let tr = workload ~packets:2_000 ~rate:1_500_000. () in
  let sink = Trace.create () in
  let r = Eng.run lnic (nat ()) ~sink tr in
  let report = Attr.analyze sink in
  check_int "no ring truncation at this size" 0 report.Attr.incomplete;
  check_int "every retired packet attributed" r.Eng.summary.Stats.packets
    (Array.length report.Attr.packets);
  Array.iter
    (fun p ->
      check_int
        (Printf.sprintf "packet %d components tile latency" p.Attr.p_seq)
        (p.Attr.p_retire - p.Attr.p_arrival)
        (Attr.ctotal p.Attr.p_comp))
    report.Attr.packets;
  (* Row means carry the same invariant, and the "all" row's mean
     matches the engine's own summary. *)
  List.iter
    (fun row ->
      let sum =
        row.Attr.r_queue +. row.Attr.r_compute +. row.Attr.r_accel_wait
        +. row.Attr.r_mem +. row.Attr.r_wire
      in
      check (row.Attr.r_type ^ " row sums to total") true
        (Float.abs (sum -. row.Attr.r_total) < 1e-6))
    report.Attr.rows;
  let all = List.find (fun r -> r.Attr.r_type = "all") report.Attr.rows in
  check "all-row mean = engine mean" true
    (Float.abs (all.Attr.r_total -. r.Eng.summary.Stats.mean_cycles) < 0.5);
  check_int "all-row count = packets" r.Eng.summary.Stats.packets all.Attr.r_count

let test_ring_truncation_counted () =
  let tr = workload ~packets:2_000 () in
  let sink = Trace.create ~limit:5_000 () in
  ignore (Eng.run lnic (nat ()) ~sink tr);
  check "ring wrapped" true (Trace.dropped sink > 0);
  let report = Attr.analyze sink in
  (* Truncated heads are skipped, never misattributed; the surviving
     tail still analyzes cleanly. *)
  check "incomplete counted" true (report.Attr.incomplete > 0);
  Array.iter
    (fun p ->
      check_int "surviving packets still tile"
        (p.Attr.p_retire - p.Attr.p_arrival)
        (Attr.ctotal p.Attr.p_comp))
    report.Attr.packets

(* ------------------------------------------------------------------ *)
(* run_pair: merged arrivals, per-program tagging, half-queue clamp    *)

let test_run_pair_tracing () =
  let prog_a = nat () in
  let prog_b = Clara_nfs.Firewall.ported ~entries:8192 ~placement:Dev.P_imem () in
  let tr_a = workload ~packets:1_000 ~rate:400_000. () in
  let tr_b =
    W.Trace.synthesize ~seed:7L
      (W.Profile.make ~packets:1_000 ~rate_pps:400_000. ~flow_count:100
         ~payload:(W.Dist.Fixed 300) ())
  in
  let sink = Trace.create () in
  let ra, rb = Eng.run_pair lnic prog_a prog_b ~sink tr_a tr_b in
  check "progs named" true
    (Trace.progs sink = [| prog_a.Dev.name; prog_b.Dev.name |]);
  let evs = Trace.events sink in
  let count p k =
    Array.fold_left
      (fun n e -> if e.Trace.prog = p && e.Trace.kind = k then n + 1 else n)
      0 evs
  in
  check_int "prog 0 arrivals tagged" 1_000 (count 0 Trace.Arrival);
  check_int "prog 1 arrivals tagged" 1_000 (count 1 Trace.Arrival);
  check_int "prog 0 retires" ra.Eng.summary.Stats.packets (count 0 Trace.Retire);
  check_int "prog 1 retires" rb.Eng.summary.Stats.packets (count 1 Trace.Retire);
  (* The engine consumes the two streams as one merged arrival-ordered
     stream: Arrival events must appear in nondecreasing time order. *)
  let arrivals = Array.to_list evs |> List.filter (fun e -> e.Trace.kind = Trace.Arrival) in
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Trace.t0 <= b.Trace.t0 && sorted rest
    | _ -> true
  in
  check "merged arrival ordering" true (sorted arrivals);
  check "global seq unique across programs" true
    (let seen = Hashtbl.create 2048 in
     List.for_all
       (fun e ->
         if Hashtbl.mem seen e.Trace.seq then false
         else (Hashtbl.add seen e.Trace.seq (); true))
       arrivals);
  (* Attribution splits rows by program. *)
  let report = Attr.analyze sink in
  check "rows for both programs" true
    (List.exists (fun r -> r.Attr.r_prog = 0) report.Attr.rows
    && List.exists (fun r -> r.Attr.r_prog = 1) report.Attr.rows)

let test_run_pair_clamp_traced () =
  (* The half-queue clamp regression, now with a sink attached: a
     capacity-1 ingress hub must still clamp to >= 1 and the trace must
     show no Dropped events. *)
  let hubs =
    Array.map
      (fun (h : L.Hub.t) ->
        if h.L.Hub.kind = `Ingress then { h with L.Hub.queue_capacity = 1 } else h)
      lnic.L.Graph.hubs
  in
  let tiny = { lnic with L.Graph.hubs = hubs } in
  let mk arrival_ns =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 1; dst_port = 2;
      proto = W.Packet.Udp; flags = 0; payload_bytes = 64; arrival_ns }
  in
  let noop name =
    { Dev.name; tables = []; handler = (fun ctx _ -> Dev.alu ctx 10; Dev.Emit) }
  in
  let sink = Trace.create () in
  let ra, _rb =
    Eng.run_pair ~threads:2 tiny (noop "a") (noop "b") ~sink
      (W.Trace.of_packets [| mk 0L; mk 10L |])
      (W.Trace.of_packets [||])
  in
  check_int "both packets accepted" 2 ra.Eng.summary.Stats.packets;
  check "no Dropped events in trace" true
    (Array.for_all (fun e -> e.Trace.kind <> Trace.Dropped) (Trace.events sink))

(* ------------------------------------------------------------------ *)
(* Perfetto export                                                     *)

let field name = function
  | J.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.fail ("missing field " ^ name))
  | _ -> Alcotest.fail "expected a JSON object"

let test_perfetto_export () =
  let tr = workload ~packets:300 () in
  let sink = Trace.create () in
  let r = Eng.run lnic (nat ()) ~sink tr in
  let j = Export.perfetto sink ~freq_mhz:r.Eng.freq_mhz in
  (* Round-trips through our own writer and parser (integral floats may
     come back as Ints, so compare shape, not structure). *)
  let j' = J.parse_exn (J.to_string j) in
  (match (field "traceEvents" j, field "traceEvents" j') with
  | J.List a, J.List b ->
      check "round-trip preserves event count" true
        (List.length a = List.length b)
  | _ -> Alcotest.fail "traceEvents shape after round-trip");
  (match field "traceEvents" j with
  | J.List evs ->
      check "events present" true (List.length evs > 0);
      List.iter
        (fun e ->
          match field "ph" e with
          | J.String ("X" | "i" | "M" | "C") -> ()
          | _ -> Alcotest.fail "unexpected phase")
        evs;
      (* Complete events must carry non-negative µs durations. *)
      List.iter
        (fun e ->
          match (field "ph" e, e) with
          | J.String "X", _ -> (
              match field "dur" e with
              | J.Float d -> check "dur >= 0" true (d >= 0.)
              | J.Int d -> check "dur >= 0" true (d >= 0)
              | _ -> Alcotest.fail "dur type")
          | _ -> ())
        evs
  | _ -> Alcotest.fail "traceEvents shape");
  match field "otherData" j with
  | J.Obj _ -> ()
  | _ -> Alcotest.fail "otherData shape"

(* ------------------------------------------------------------------ *)
(* Predictor-side attribution                                          *)

let predictor () =
  let prof =
    W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:1_000 ~flow_count:100
      ~rate_pps:60_000. ~tcp_fraction:0.8 ()
  in
  match
    Clara.analyze_for_profile lnic ~source:(Clara_nfs.Nat.source ()) ~profile:prof
  with
  | Error e -> Alcotest.fail e
  | Ok a -> (Lat.create lnic a.Clara.df a.Clara.mapping, W.Trace.synthesize ~seed:3L prof)

let test_predict_attribution () =
  let t, tr = predictor () in
  let p = Lat.predict_trace t tr in
  let att = Lat.attribute_trace t tr in
  check "attribution mean = prediction mean" true
    (att.Lat.att_mean = p.Lat.mean_cycles);
  check "has per-type rows and all row" true
    (List.exists (fun r -> r.Lat.at_type = "all") att.Lat.att_rows
    && List.length att.Lat.att_rows >= 2);
  List.iter
    (fun r ->
      let sum = r.Lat.at_compute +. r.Lat.at_mem +. r.Lat.at_accel +. r.Lat.at_wire in
      check (r.Lat.at_type ^ " components sum") true
        (Float.abs (sum -. r.Lat.at_total) < 1e-6))
    att.Lat.att_rows;
  let all = List.find (fun r -> r.Lat.at_type = "all") att.Lat.att_rows in
  check "all-row total = mean" true
    (Float.abs (all.Lat.at_total -. att.Lat.att_mean) < 1e-6)

let test_predict_packet_components () =
  let t, tr = predictor () in
  let pkts =
    Array.of_list (List.rev (W.Trace.fold (fun acc p -> p :: acc) [] tr))
  in
  Lat.reset_state t;
  let comps = Array.map (Lat.packet_components t) pkts in
  Lat.reset_state t;
  let lats = Array.map (Lat.packet_latency t) pkts in
  Array.iteri
    (fun i c ->
      check "pc_total bit-identical to packet_latency" true
        (c.Lat.pc_total = lats.(i).Lat.cycles);
      check "components sum exactly" true
        (Float.abs
           (c.Lat.pc_compute +. c.Lat.pc_mem +. c.Lat.pc_accel +. c.Lat.pc_wire
          -. c.Lat.pc_total)
        < 1e-9))
    comps

let test_predict_timeline_json () =
  let t, tr = predictor () in
  let j = Lat.perfetto_timeline t tr in
  let j' = J.parse_exn (J.to_string j) in
  match (field "traceEvents" j, field "traceEvents" j') with
  | J.List evs, J.List evs' ->
      check "timeline has events" true (List.length evs > 0);
      check "timeline round-trips" true (List.length evs = List.length evs')
  | _ -> Alcotest.fail "traceEvents shape"

let suite =
  [ Alcotest.test_case "ring buffer semantics" `Quick test_ring_semantics;
    Alcotest.test_case "sink off = byte-identical results" `Quick test_sink_off_identical;
    Alcotest.test_case "tiling invariant (spans sum to latency)" `Quick
      test_tiling_invariant;
    Alcotest.test_case "ring truncation counted, never misattributed" `Quick
      test_ring_truncation_counted;
    Alcotest.test_case "run_pair tracing: merge order + tagging" `Quick
      test_run_pair_tracing;
    Alcotest.test_case "run_pair half-queue clamp with sink" `Quick
      test_run_pair_clamp_traced;
    Alcotest.test_case "perfetto export parses" `Quick test_perfetto_export;
    Alcotest.test_case "predict attribution sums + matches mean" `Quick
      test_predict_attribution;
    Alcotest.test_case "predict per-packet components exact" `Quick
      test_predict_packet_components;
    Alcotest.test_case "predicted timeline JSON" `Quick test_predict_timeline_json ]
