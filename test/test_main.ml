(* Aggregates per-library suites into one alcotest binary. *)

let () =
  Alcotest.run "clara"
    [ ("ilp", Test_ilp.suite); ("lnic", Test_lnic.suite); ("cir", Test_cir.suite); ("analysis", Test_analysis.suite); ("dataflow", Test_dataflow.suite); ("mapping", Test_mapping.suite); ("workload", Test_workload.suite); ("nicsim", Test_nicsim.suite); ("trace", Test_trace.suite); ("predict", Test_predict.suite); ("core", Test_core.suite); ("nfs", Test_nfs.suite); ("targets", Test_targets.suite); ("ilp-deep", Test_ilp_deep.suite); ("fuzz", Test_fuzz.suite); ("obs", Test_obs.suite); ("explore", Test_explore.suite); ("telemetry", Test_telemetry.suite); ("calib", Test_calib.suite) ]
