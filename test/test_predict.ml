(* Tests for the prediction stage: per-packet latency, symbolic paths,
   throughput, interference — and predicted-vs-actual validation against
   the simulator (the Figure 3 methodology). *)

module W = Clara_workload
module L = Clara_lnic
module D = Clara_dataflow
module Lat = Clara_predict.Latency
module Sym = Clara_predict.Symexec
module Tp = Clara_predict.Throughput
module Inter = Clara_predict.Interference
module Eng = Clara_nicsim.Engine
module SStats = Clara_nicsim.Stats
module Dev = Clara_nicsim.Device

let check = Alcotest.(check bool)
let lnic = L.Netronome.default

let profile ?(payload = W.Dist.Fixed 300) ?(packets = 5000) ?(tcp = 0.8) () =
  W.Profile.make ~payload ~packets ~flow_count:1000 ~tcp_fraction:tcp
    ~rate_pps:60_000. ()

let analyze ?options src prof =
  match Clara.analyze_for_profile ?options lnic ~source:src ~profile:prof with
  | Ok a -> a
  | Error e -> Alcotest.fail e

let test_prediction_positive_and_monotone () =
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let p300 = Clara.predict_profile a (profile ~payload:(W.Dist.Fixed 300) ()) in
  let p1200 = Clara.predict_profile a (profile ~payload:(W.Dist.Fixed 1200) ()) in
  check "positive" true (p300.Lat.mean_cycles > 0.);
  check "bigger packets cost more" true (p1200.Lat.mean_cycles > p300.Lat.mean_cycles)

let test_prediction_tcp_udp_differ () =
  (* §3.5 example: TCP and UDP incur different cycles (NAT drops others,
     TCP/UDP take the translation path; SYN packets update the table). *)
  let prof = profile ~tcp:0.5 () in
  let a = analyze (Clara_nfs.Firewall.source ()) prof in
  let p = Clara.predict_profile a prof in
  check "tcp and udp predictions distinct" true
    (Float.abs (p.Lat.tcp_mean -. p.Lat.udp_mean) > 1.);
  check "syn mean exists" true (not (Float.is_nan p.Lat.syn_mean))

let test_prediction_first_packet_miss () =
  (* A single-flow trace: first packet misses the table (update path),
     the rest hit.  Check via two-packet micro-trace. *)
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let pkt i =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 10; dst_port = 80;
      proto = W.Packet.Tcp; flags = 0; payload_bytes = 300;
      arrival_ns = Int64.of_int (i * 1_000_000) }
  in
  let pred = Lat.create lnic a.Clara.df a.Clara.mapping in
  Lat.reset_state pred;
  let first = Lat.packet_latency pred (pkt 0) in
  let second = Lat.packet_latency pred (pkt 1) in
  check "first packet (miss+insert) costs more" true (first.Lat.cycles > second.Lat.cycles)

let test_symexec_nat_paths () =
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let paths = Sym.enumerate lnic a.Clara.df a.Clara.mapping in
  check "several packet types" true (List.length paths >= 3);
  (* Sorted by decreasing cost. *)
  let costs = List.map (fun p -> p.Sym.cost_cycles) paths in
  check "sorted" true (costs = List.sort (fun a b -> compare b a) costs);
  (* Some path drops (non-TCP/UDP) and some emits. *)
  check "a drop path exists" true (List.exists (fun p -> not p.Sym.emits) paths);
  check "an emit path exists" true (List.exists (fun p -> p.Sym.emits) paths);
  (* Table-miss path costs more than the hit path (both emitting). *)
  let miss =
    List.find_opt
      (fun p ->
        p.Sym.emits
        && List.exists
             (fun d -> (not d.Sym.taken) && d.Sym.guard = Clara_cir.Ir.G_table_hit "flow_table")
             p.Sym.decisions)
      paths
  in
  let hit =
    List.find_opt
      (fun p ->
        p.Sym.emits
        && List.exists
             (fun d -> d.Sym.taken && d.Sym.guard = Clara_cir.Ir.G_table_hit "flow_table")
             p.Sym.decisions)
      paths
  in
  match (miss, hit) with
  | Some m, Some h -> check "miss path > hit path (§3.5)" true (m.Sym.cost_cycles > h.Sym.cost_cycles)
  | _ -> Alcotest.fail "expected both hit and miss paths"

let test_symexec_no_infeasible_protocols () =
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let paths = Sym.enumerate lnic a.Clara.df a.Clara.mapping in
  List.iter
    (fun p ->
      let protos_true =
        List.filter
          (fun d -> d.Sym.taken && match d.Sym.guard with Clara_cir.Ir.G_proto _ -> true | _ -> false)
          p.Sym.decisions
      in
      check "at most one protocol per path" true (List.length protos_true <= 1))
    paths

let test_throughput_bottleneck () =
  let prof = profile () in
  (* Disallow the flow cache so the walk cost actually scales. *)
  let options =
    { Clara_mapping.Mapping.default_options with
      Clara_mapping.Mapping.disallowed_accels = [ L.Unit_.Lookup ] }
  in
  let a = analyze ~options (Clara_nfs.Lpm.source ~entries:30000) prof
  and a_small = analyze ~options (Clara_nfs.Lpm.source ~entries:1000) prof in
  let tp = Tp.estimate lnic a.Clara.df a.Clara.mapping in
  let tp_small = Tp.estimate lnic a_small.Clara.df a_small.Clara.mapping in
  check "finite" true (Float.is_finite tp.Tp.max_pps);
  check "positive" true (tp.Tp.max_pps > 0.);
  check "smaller table -> higher throughput" true (tp_small.Tp.max_pps > tp.Tp.max_pps);
  check "resources sorted" true
    (let pps = List.map (fun (r : Tp.bottleneck) -> r.Tp.max_pps) tp.Tp.resources in
     pps = List.sort compare pps)

let test_symexec_flow_weight_consistency () =
  (* Two independent expectations of the same random walk must agree:
     (a) Symexec enumerates full paths; weight each by the product of its
         guard probabilities and average the costs;
     (b) Flow.node_weights propagates the same probabilities through the
         DAG; the expected cost is the weight-cost dot product plus wire.
     They coincide when each guard is independent and appears once per
     path — true for the firewall (flag + table-hit guards only). *)
  let prof = profile () in
  let a = analyze (Clara_nfs.Firewall.source ()) prof in
  let prob = Clara.prob_of_profile prof in
  let sizes = Clara.sizes_of_profile prof in
  let paths = Sym.enumerate ~sizes lnic a.Clara.df a.Clara.mapping in
  let rec guard_p g =
    match g with
    | Clara_cir.Ir.G_not g' -> 1. -. guard_p g'
    | Clara_cir.Ir.G_or (x, y) -> Float.min 1. (guard_p x +. guard_p y)
    | g -> prob g
  in
  let path_p (p : Sym.path) =
    List.fold_left
      (fun acc (d : Sym.decision) ->
        let pg = guard_p d.Sym.guard in
        acc *. (if d.Sym.taken then pg else 1. -. pg))
      1. p.Sym.decisions
  in
  let total_p = List.fold_left (fun acc p -> acc +. path_p p) 0. paths in
  check "path probabilities sum to 1" true (Float.abs (total_p -. 1.) < 1e-9);
  let expected_via_paths =
    List.fold_left (fun acc p -> acc +. (path_p p *. p.Sym.cost_cycles)) 0. paths
  in
  (* (b): weights × costs + expected wire. *)
  let weights = D.Flow.node_weights a.Clara.df ~prob in
  let states = D.Graph.states a.Clara.df in
  let sizes_resolved =
    { sizes with
      Clara_dataflow.Cost.state_entries =
        (fun s ->
          match List.find_opt (fun o -> o.Clara_cir.Ir.st_name = s) states with
          | Some o -> float_of_int o.Clara_cir.Ir.st_entries
          | None -> 0.) }
  in
  let node_cost (n : Clara_dataflow.Node.t) =
    let unit_ =
      Clara_lnic.Graph.unit_ lnic a.Clara.mapping.Clara_mapping.Mapping.node_unit.(n.Clara_dataflow.Node.id)
    in
    let ctx =
      { Clara_dataflow.Cost.lnic;
        exec_unit = unit_;
        state_region =
          (fun s ->
            match Clara_mapping.Mapping.placement_of_state a.Clara.mapping s with
            | Some (Clara_mapping.Mapping.In_memory m) -> m
            | _ -> (Clara_lnic.Netronome.emem lnic).Clara_lnic.Memory.id);
        state_footprint =
          (fun s ->
            match List.find_opt (fun o -> o.Clara_cir.Ir.st_name = s) states with
            | Some o -> Clara_cir.Ir.state_bytes o
            | None -> 0);
        packet_region =
          Clara_mapping.Encode.packet_region_for lnic unit_
            ~packet_bytes:sizes_resolved.Clara_dataflow.Cost.packet_bytes;
        sizes = sizes_resolved }
    in
    Option.value ~default:0. (Clara_dataflow.Cost.node_cycles ctx n)
  in
  let compute_expectation =
    Array.fold_left
      (fun acc (n : Clara_dataflow.Node.t) ->
        acc +. (weights.(n.Clara_dataflow.Node.id) *. node_cost n))
      0. a.Clara.df.D.Graph.nodes
  in
  (* Expected wire: every packet pays rx; emitting paths pay tx too. *)
  let pkt_bytes = sizes_resolved.Clara_dataflow.Cost.packet_bytes in
  let dummy payload =
    { W.Packet.src_ip = 0l; dst_ip = 0l; src_port = 0; dst_port = 0;
      proto = W.Packet.Tcp; flags = 0;
      payload_bytes = payload; arrival_ns = 0L }
  in
  let payload = int_of_float pkt_bytes - 54 in
  let rx_tx = Lat.wire_cycles lnic (dummy payload) ~emitted:true in
  let rx_only = Lat.wire_cycles lnic (dummy payload) ~emitted:false in
  let p_emit = List.fold_left (fun acc p -> acc +. if p.Sym.emits then path_p p else 0.) 0. paths in
  let expected_via_weights =
    compute_expectation +. (p_emit *. rx_tx) +. ((1. -. p_emit) *. rx_only)
  in
  check "path expectation ~= flow-weight expectation" true
    (Float.abs (expected_via_paths -. expected_via_weights)
    /. expected_via_weights
    < 0.02)

let test_latency_at_rate () =
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let base = 4000. in
  let at rate =
    Tp.latency_at_rate ~base_cycles:base ~rate_pps:rate lnic a.Clara.df a.Clara.mapping
  in
  (match (at 10_000., at 1_000_000., at 1_900_000.) with
  | Some lo, Some mid, Some hi ->
      check "latency >= base" true (lo >= base);
      check "monotone in rate" true (lo <= mid && mid <= hi);
      check "knee visible" true (hi > 1.5 *. lo)
  | _ -> Alcotest.fail "stable rates must predict");
  check "unstable past capacity" true (at 5_000_000. = None)

let test_interference_slowdown () =
  let prof = profile ~packets:2000 () in
  match
    Inter.analyze_pair lnic
      ~source_a:(Clara_nfs.Nat.source ())
      ~source_b:(Clara_nfs.Firewall.source ())
      ~profile:prof
  with
  | Error e -> Alcotest.fail e
  | Ok (ra, rb) ->
      check "A slowdown >= 1" true (ra.Inter.slowdown >= 0.99);
      check "B slowdown >= 1" true (rb.Inter.slowdown >= 0.99);
      check "contended >= sliced" true
        (ra.Inter.contended_cycles >= ra.Inter.sliced_cycles -. 1.
        && rb.Inter.contended_cycles >= rb.Inter.sliced_cycles -. 1.)

(* The exact pipeline Interference runs per tenant (lower -> coarsen ->
   dataflow -> map), reproduced so tests can pin its intermediate
   values. *)
let inter_sizes prof =
  { D.Cost.payload_bytes = W.Profile.mean_payload prof;
    packet_bytes = W.Profile.mean_packet_bytes prof;
    header_bytes = 50.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1. }

let inter_pipeline ?options nic src ~sizes ~prob =
  let ir = Clara_cir.Lower.lower_source src in
  let ir, _ = Clara_cir.Patterns.run ir in
  let df = D.Build.of_ir ir in
  match Clara_mapping.Encode.map_nf ?options nic df ~sizes ~prob with
  | Ok m -> (df, m)
  | Error e -> Alcotest.fail e

let test_interference_slice_utilization () =
  (* Regression: utilization was computed against the full NIC but the
     head-of-line inflation applied on the slice.  The reported
     utilization must now match an independent computation on the slice
     the NF actually runs on. *)
  let prof = profile ~packets:2000 () in
  let src = Clara_nfs.Nat.source () in
  match
    Inter.analyze_pair lnic ~source_a:src
      ~source_b:(Clara_nfs.Firewall.source ())
      ~profile:prof
  with
  | Error e -> Alcotest.fail e
  | Ok (ra, _) ->
      check "nat drives the accelerators" true (ra.Inter.accel_utilization > 0.);
      check "below saturation at 60 kpps" false ra.Inter.saturated;
      let half = L.Graph.slice lnic ~keep_num:1 ~keep_den:2 in
      let sizes = inter_sizes prof in
      let prob = D.Flow.default_probability in
      let df, m = inter_pipeline half src ~sizes ~prob in
      let cyc = Inter.accel_cycles_per_packet half df m ~sizes ~prob in
      let freq =
        float_of_int (List.hd (L.Graph.general_cores half)).L.Unit_.freq_mhz *. 1e6
      in
      let expected = prof.W.Profile.rate_pps *. cyc /. freq in
      check "utilization computed on the slice" true
        (abs_float (ra.Inter.accel_utilization -. expected) < 1e-9)

let test_interference_saturation_flag () =
  (* Regression: aggregate utilization >= 1 was silently capped at 0.9;
     it must now surface as [saturated] while the prediction stays
     finite. *)
  let prof_at rate =
    W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:500 ~flow_count:1000
      ~tcp_fraction:0.8 ~rate_pps:rate ()
  in
  let run rate =
    match
      Inter.analyze_pair lnic
        ~source_a:(Clara_nfs.Nat.source ())
        ~source_b:(Clara_nfs.Nat.source ())
        ~profile:(prof_at rate)
    with
    | Error e -> Alcotest.fail e
    | Ok (ra, _) -> ra
  in
  let calm = run 1_000. in
  check "low rate not saturated" false calm.Inter.saturated;
  let hot = run 1e9 in
  check "absurd rate saturated" true hot.Inter.saturated;
  check "contended stays finite under saturation" true
    (Float.is_finite hot.Inter.contended_cycles);
  check "saturated still inflates" true
    (hot.Inter.contended_cycles >= hot.Inter.sliced_cycles -. 1.)

let one_thread_nic () =
  let g = L.Netronome.create ~islands:1 ~npus_per_island:1 () in
  let units =
    Array.map
      (fun (u : L.Unit_.t) ->
        match u.L.Unit_.kind with
        | L.Unit_.General_core { has_fpu; _ } ->
            { u with L.Unit_.kind = L.Unit_.General_core { threads = 1; has_fpu } }
        | _ -> u)
      g.L.Graph.units
  in
  { g with L.Graph.units }

let test_accel_class_filter () =
  (* Regression: any bottleneck row with parallelism = 1 (other than
     wire-dma) was classified as accelerator time.  A single-threaded
     general core also has parallelism = 1; its compute must not count
     as accelerator contention. *)
  let nic = one_thread_nic () in
  Alcotest.(check int) "nic really has one thread" 1 (L.Graph.total_threads nic);
  let prof = profile ~packets:500 () in
  let sizes = inter_sizes prof in
  let prob = D.Flow.default_probability in
  let no_accels =
    { Clara_mapping.Mapping.default_options with
      Clara_mapping.Mapping.disallowed_accels =
        [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto ] }
  in
  let df, m = inter_pipeline ~options:no_accels nic Clara_nfs.Dpi.source ~sizes ~prob in
  check "single general thread is not accelerator time" true
    (Inter.accel_cycles_per_packet nic df m ~sizes ~prob = 0.)

let test_analyze_n_three () =
  let prof = profile ~packets:1000 () in
  let sources =
    [| Clara_nfs.Nat.source (); Clara_nfs.Firewall.source (); Clara_nfs.Dpi.source |]
  in
  (match
     Inter.analyze_n lnic ~weights:[| 2; 1; 1 |] ~sources
       ~profiles:(Array.make 3 prof)
   with
  | Error e -> Alcotest.fail e
  | Ok rs ->
      Alcotest.(check int) "three reports" 3 (Array.length rs);
      Array.iteri
        (fun i r ->
          check (Printf.sprintf "tenant %d slowdown >= 1" i) true
            (r.Inter.slowdown >= 0.99);
          check (Printf.sprintf "tenant %d contended >= sliced" i) true
            (r.Inter.contended_cycles >= r.Inter.sliced_cycles -. 1.))
        rs);
  (* analyze_pair must be exactly the N = 2 equal-weights case. *)
  let src_a = Clara_nfs.Nat.source () and src_b = Clara_nfs.Firewall.source () in
  match
    ( Inter.analyze_pair lnic ~source_a:src_a ~source_b:src_b ~profile:prof,
      Inter.analyze_n lnic ~sources:[| src_a; src_b |] ~profiles:[| prof; prof |] )
  with
  | Ok (ra, rb), Ok rs ->
      check "pair == analyze_n tenant 0" true (compare ra rs.(0) = 0);
      check "pair == analyze_n tenant 1" true (compare rb rs.(1) = 0)
  | Error e, _ | _, Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Predicted vs actual (the Figure 3 methodology, spot checks)         *)

let predicted_vs_actual src prog prof ?placement_of ?options () =
  let a = analyze ?options src prof in
  let prog =
    match placement_of with
    | None -> prog
    | Some f -> f a
  in
  let trace = W.Trace.synthesize ~seed:21L prof in
  let pred = (Clara.predict a trace).Lat.mean_cycles in
  let act = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
  (pred, act)

let err p a = Float.abs (p -. a) /. a

let test_accuracy_nat () =
  let prof = profile ~packets:4000 () in
  let pred, act =
    predicted_vs_actual (Clara_nfs.Nat.source ())
      (Clara_nfs.Nat.ported ~checksum_engine:true ())
      prof ()
  in
  check "NAT within 20%" true (err pred act < 0.20)

let test_accuracy_vnf () =
  let prof = profile ~packets:4000 ~payload:(W.Dist.Fixed 600) () in
  let pred, act =
    predicted_vs_actual (Clara_nfs.Vnf_chain.source ()) (Clara_nfs.Vnf_chain.ported ()) prof ()
  in
  check "VNF within 10%" true (err pred act < 0.10)

let test_accuracy_lpm () =
  let prof = profile ~packets:4000 () in
  let options =
    { Clara_mapping.Mapping.default_options with
      Clara_mapping.Mapping.disallowed_accels = [ L.Unit_.Lookup ] }
  in
  let pred, act =
    predicted_vs_actual (Clara_nfs.Lpm.source ~entries:10000)
      (Clara_nfs.Lpm.ported ~entries:10000 ~use_flow_cache:false ())
      prof ~options
      ~placement_of:(fun a ->
        let placement =
          Option.value ~default:Dev.P_emem (Clara.device_placement_of_state a "routes")
        in
        Clara_nfs.Lpm.ported ~entries:10000 ~use_flow_cache:false ~placement ())
      ()
  in
  check "LPM within 15%" true (err pred act < 0.15)

let test_accuracy_monotone_in_entries () =
  (* The Figure 3a shape: predictions grow with table entries. *)
  let prof = profile ~packets:1000 () in
  let options =
    { Clara_mapping.Mapping.default_options with
      Clara_mapping.Mapping.disallowed_accels = [ L.Unit_.Lookup ] }
  in
  let pred entries =
    let a = analyze ~options (Clara_nfs.Lpm.source ~entries) prof in
    (Clara.predict_profile a prof).Lat.mean_cycles
  in
  let p5 = pred 5000 and p15 = pred 15000 and p30 = pred 30000 in
  check "5k < 15k" true (p5 < p15);
  check "15k < 30k" true (p15 < p30);
  (* Roughly linear: the 30k/5k ratio should be in the vicinity of 6. *)
  check "roughly linear" true (p30 /. p5 > 3. && p30 /. p5 < 12.)

let test_throughput_wire_cost_convention () =
  (* Regression: the wire-dma resource used [Float.max 1. cycles],
     silently rounding sub-cycle DMA costs up to a full cycle and
     treating a zero cost as one cycle instead of "no bound" — unlike
     every compute resource.  Both paths now share one convention. *)
  let prof = profile () in
  let a = analyze (Clara_nfs.Nat.source ()) prof in
  let base = lnic.L.Graph.params in
  let with_wire c =
    { lnic with
      L.Graph.params =
        { base with L.Params.wire_ingress = L.Cost_fn.const c;
          L.Params.wire_egress = L.Cost_fn.const c } }
  in
  let wire_of t =
    List.find (fun (r : Tp.bottleneck) -> r.Tp.resource = "wire-dma") t.Tp.resources
  in
  let freq =
    match L.Graph.general_cores lnic with
    | u :: _ -> float_of_int u.L.Unit_.freq_mhz *. 1e6
    | [] -> 1e9
  in
  (* 0.125 cycles each way = 0.25 cycles/packet over 8 lanes: pre-fix
     this clamped to 1 cycle (max 8*freq pps); honored, it is 32*freq. *)
  let sub = wire_of (Tp.estimate (with_wire 0.125) a.Clara.df a.Clara.mapping) in
  check "sub-cycle wire cost honored" true (sub.Tp.max_pps > 12. *. freq);
  (* Zero cost means the wire imposes no throughput bound at all. *)
  let free = wire_of (Tp.estimate (with_wire 0.) a.Clara.df a.Clara.mapping) in
  check "zero wire cost is unbounded" true (free.Tp.max_pps = Float.infinity);
  let t0 = Tp.estimate (with_wire 0.) a.Clara.df a.Clara.mapping in
  check "free wire is never the bottleneck" true
    (t0.Tp.bottleneck.Tp.resource <> "wire-dma")

let suite =
  [ Alcotest.test_case "prediction positive & size-monotone" `Quick
      test_prediction_positive_and_monotone;
    Alcotest.test_case "per-proto predictions differ (§3.5)" `Quick
      test_prediction_tcp_udp_differ;
    Alcotest.test_case "first packet of flow costs more" `Quick
      test_prediction_first_packet_miss;
    Alcotest.test_case "symexec NAT paths" `Quick test_symexec_nat_paths;
    Alcotest.test_case "symexec feasibility" `Quick test_symexec_no_infeasible_protocols;
    Alcotest.test_case "throughput bottleneck" `Quick test_throughput_bottleneck;
    Alcotest.test_case "latency at rate (M/M/k)" `Quick test_latency_at_rate;
    Alcotest.test_case "symexec = flow-weight expectation" `Quick
      test_symexec_flow_weight_consistency;
    Alcotest.test_case "interference slowdown" `Quick test_interference_slowdown;
    Alcotest.test_case "interference slice utilization" `Quick
      test_interference_slice_utilization;
    Alcotest.test_case "interference saturation flag" `Quick
      test_interference_saturation_flag;
    Alcotest.test_case "accelerator class filter" `Quick test_accel_class_filter;
    Alcotest.test_case "analyze_n three tenants" `Quick test_analyze_n_three;
    Alcotest.test_case "accuracy: NAT" `Quick test_accuracy_nat;
    Alcotest.test_case "accuracy: VNF" `Quick test_accuracy_vnf;
    Alcotest.test_case "accuracy: LPM" `Quick test_accuracy_lpm;
    Alcotest.test_case "Fig 3a shape: linear in entries" `Quick
      test_accuracy_monotone_in_entries;
    Alcotest.test_case "throughput wire-cost convention" `Quick
      test_throughput_wire_cost_convention ]
