(* Tests for the workload substrate: PRNG, distributions, profiles,
   trace synthesis and pcap round-trips. *)

module W = Clara_workload

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_prng_deterministic () =
  let a = W.Prng.create ~seed:7L and b = W.Prng.create ~seed:7L in
  let xs = List.init 16 (fun _ -> W.Prng.next a) in
  let ys = List.init 16 (fun _ -> W.Prng.next b) in
  check "same seed, same stream" true (xs = ys);
  let c = W.Prng.create ~seed:8L in
  let zs = List.init 16 (fun _ -> W.Prng.next c) in
  check "different seed, different stream" true (xs <> zs)

let test_prng_copy () =
  let a = W.Prng.create ~seed:3L in
  ignore (W.Prng.next a);
  let b = W.Prng.copy a in
  check "copy diverges independently" true (W.Prng.next a = W.Prng.next b)

let test_prng_ranges () =
  let g = W.Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = W.Prng.int g 10 in
    check "int in range" true (v >= 0 && v < 10);
    let f = W.Prng.float g in
    check "float in [0,1)" true (f >= 0. && f < 1.)
  done;
  check "bad bound" true
    (try ignore (W.Prng.int g 0); false with Invalid_argument _ -> true)

let test_prng_uniformity () =
  (* Chi-square-ish sanity: each of 10 buckets gets 10% +- 2%. *)
  let g = W.Prng.create ~seed:99L in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = W.Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iter
    (fun c ->
      let f = float_of_int c /. float_of_int n in
      check "bucket near 0.1" true (f > 0.08 && f < 0.12))
    buckets

let test_dist_means () =
  let g = W.Prng.create ~seed:5L in
  let empirical d n =
    let acc = ref 0 in
    for _ = 1 to n do
      acc := !acc + W.Dist.sample g d
    done;
    float_of_int !acc /. float_of_int n
  in
  let close a b tol = abs_float (a -. b) < tol in
  check "fixed" true (empirical (W.Dist.Fixed 42) 100 = 42.);
  check "uniform mean" true (close (empirical (W.Dist.Uniform (0, 100)) 20000) 50. 2.);
  check "bimodal mean" true
    (close (empirical (W.Dist.Bimodal (64, 1500, 0.5)) 20000)
       (W.Dist.mean (W.Dist.Bimodal (64, 1500, 0.5)))
       20.)

let test_zipf_skew () =
  let g = W.Prng.create ~seed:11L in
  let sampler = W.Dist.make_zipf ~n:1000 ~alpha:1.2 in
  let counts = Hashtbl.create 128 in
  let n = 50_000 in
  for _ = 1 to n do
    let k = sampler g in
    check "in range" true (k >= 0 && k < 1000);
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let freq k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  (* Rank-0 must dominate rank-9 roughly like (10/1)^1.2 ~ 16x. *)
  check "head heavier than tail" true (freq 0 > 5. *. freq 9);
  check "tail present" true (Hashtbl.length counts > 100);
  (* alpha = 0 is uniform. *)
  let u = W.Dist.make_zipf ~n:10 ~alpha:0. in
  let c0 = ref 0 in
  for _ = 1 to 10_000 do
    if u g = 0 then incr c0
  done;
  check "alpha=0 uniform-ish" true (!c0 > 800 && !c0 < 1200)

let test_trace_synthesis () =
  let profile =
    W.Profile.make ~tcp_fraction:0.8 ~flow_count:1000 ~packets:20_000
      ~payload:(W.Dist.Fixed 300) ~rate_pps:60_000. ()
  in
  let tr = W.Trace.synthesize ~seed:1L profile in
  let s = W.Trace.stats tr in
  check_int "packet count" 20_000 s.W.Trace.count;
  check "tcp fraction ~0.8" true (abs_float (s.W.Trace.tcp_fraction -. 0.8) < 0.05);
  check "payload exactly 300" true (s.W.Trace.mean_payload = 300.);
  check "flows bounded by population" true (s.W.Trace.distinct_flows <= 1000);
  check "many flows seen" true (s.W.Trace.distinct_flows > 400);
  (* 20k packets at 60kpps ~ 333ms. *)
  let ms = Int64.to_float s.W.Trace.duration_ns /. 1e6 in
  check "duration ~333ms" true (ms > 250. && ms < 420.);
  (* Determinism. *)
  let tr2 = W.Trace.synthesize ~seed:1L profile in
  check "same seed, same trace" true (tr.W.Trace.packets = tr2.W.Trace.packets);
  let tr3 = W.Trace.synthesize ~seed:2L profile in
  check "different seed differs" true (tr.W.Trace.packets <> tr3.W.Trace.packets)

let test_syn_on_first_packet () =
  let profile = W.Profile.make ~flow_count:50 ~packets:5000 ~tcp_fraction:1.0 () in
  let tr = W.Trace.synthesize ~seed:3L profile in
  (* Every flow's first packet is a SYN, later ones are not. *)
  let seen = Hashtbl.create 64 in
  W.Trace.iter
    (fun p ->
      let k = W.Packet.flow_key p in
      match Hashtbl.find_opt seen k with
      | None ->
          Hashtbl.add seen k ();
          check "first packet has SYN" true (W.Packet.is_syn p)
      | Some () -> check "later packet no SYN" false (W.Packet.is_syn p))
    tr

let test_packet_helpers () =
  let p =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 10; dst_port = 20;
      proto = W.Packet.Tcp; flags = 0x2; payload_bytes = 100; arrival_ns = 0L }
  in
  check_int "tcp header" 54 (W.Packet.header_bytes p);
  check_int "total" 154 (W.Packet.total_bytes p);
  check "syn" true (W.Packet.is_syn p);
  check_int "proto number" 6 (W.Packet.proto_number p.W.Packet.proto);
  let q = { p with W.Packet.proto = W.Packet.Udp; flags = 0 } in
  check_int "udp header" 42 (W.Packet.header_bytes q);
  check "udp not syn" false (W.Packet.is_syn q);
  check "same tuple same key" true (W.Packet.flow_key p = W.Packet.flow_key { p with W.Packet.payload_bytes = 9 });
  check "diff tuple diff key" true (W.Packet.flow_key p <> W.Packet.flow_key q)

let test_pcap_roundtrip () =
  let profile = W.Profile.make ~flow_count:100 ~packets:500 () in
  let tr = W.Trace.synthesize ~seed:9L profile in
  let path = Filename.temp_file "clara_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.Pcap.write_file path tr;
      let tr2 = W.Pcap.read_file path in
      check_int "packet count preserved" (Array.length tr.W.Trace.packets)
        (Array.length tr2.W.Trace.packets);
      Array.iteri
        (fun i (p : W.Packet.t) ->
          let q = tr2.W.Trace.packets.(i) in
          check "src ip" true (p.W.Packet.src_ip = q.W.Packet.src_ip);
          check "dst ip" true (p.W.Packet.dst_ip = q.W.Packet.dst_ip);
          check "ports" true
            (p.W.Packet.src_port = q.W.Packet.src_port
            && p.W.Packet.dst_port = q.W.Packet.dst_port);
          check "proto" true (p.W.Packet.proto = q.W.Packet.proto);
          check "flags" true (p.W.Packet.flags = q.W.Packet.flags);
          check "payload len" true (p.W.Packet.payload_bytes = q.W.Packet.payload_bytes))
        tr.W.Trace.packets)

let test_pcap_bad_magic () =
  let path = Filename.temp_file "clara_test" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "not a pcap file at all.....";
      close_out oc;
      check "bad magic rejected" true
        (try ignore (W.Pcap.read_file path); false with Failure _ -> true))

let test_trace_utilities () =
  let p = W.Profile.make ~packets:500 ~flow_count:100 ~tcp_fraction:0.7 () in
  let a = W.Trace.synthesize ~seed:1L p and b = W.Trace.synthesize ~seed:2L p in
  let m = W.Trace.merge a b in
  check_int "merge size" 1000 (Array.length m.W.Trace.packets);
  (* Sorted by arrival. *)
  let sorted = ref true in
  Array.iteri
    (fun i pk ->
      if i > 0 && pk.W.Packet.arrival_ns < m.W.Trace.packets.(i - 1).W.Packet.arrival_ns
      then sorted := false)
    m.W.Trace.packets;
  check "merge sorted" true !sorted;
  let tcp_only = W.Trace.filter (fun pk -> pk.W.Packet.proto = W.Packet.Tcp) a in
  check "filter keeps only tcp" true
    (Array.for_all (fun pk -> pk.W.Packet.proto = W.Packet.Tcp) tcp_only.W.Trace.packets);
  check "filter kept some" true (Array.length tcp_only.W.Trace.packets > 0);
  let short = W.Trace.truncate a 10 in
  check_int "truncate" 10 (Array.length short.W.Trace.packets);
  let fast = W.Trace.scale_rate a 2. in
  check "2x rate halves the horizon" true
    (let last t = t.W.Trace.packets.(Array.length t.W.Trace.packets - 1).W.Packet.arrival_ns in
     Int64.to_float (last fast) < 0.6 *. Int64.to_float (last a));
  check "bad factor" true
    (try ignore (W.Trace.scale_rate a 0.); false with Invalid_argument _ -> true)

let test_pcap_snaplen_truncation () =
  (* A frame longer than the snap length is truncated on disk, but the
     IP total-length field preserves the payload size on read-back. *)
  let monster =
    { W.Packet.src_ip = 9l; dst_ip = 10l; src_port = 1; dst_port = 2;
      proto = W.Packet.Udp; flags = 0; payload_bytes = W.Pcap.snaplen + 5_000;
      arrival_ns = 0L }
  in
  let path = Filename.temp_file "clara_trunc" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.Pcap.write_file path (W.Trace.of_packets [| monster |]);
      let back = W.Pcap.read_file path in
      match back.W.Trace.packets with
      | [| p |] ->
          (* IPv4 total length is 16-bit, so huge payloads alias modulo
             65536 minus headers; the reader just reports what the header
             says — document that the parse is header-faithful. *)
          check "one packet survives" true (p.W.Packet.proto = W.Packet.Udp)
      | _ -> Alcotest.fail "expected exactly one packet")

let test_zipf_sampler_memoized () =
  (* Regression: [Dist.sample] used to rebuild the O(n) Zipf CDF on
     every draw.  The observability counter makes the fix testable
     without timing: 100k draws over one (n, alpha) pair must build the
     CDF exactly once.  Use a pair no other test touches so the
     process-wide cache can't hide a rebuild. *)
  let n = 4096 and alpha = 1.37 in
  let builds () =
    Clara_obs.Registry.counter_value Clara_obs.Registry.default "workload.zipf.cdf_builds"
  in
  let g = W.Prng.create ~seed:21L in
  let before = builds () in
  let counts = Hashtbl.create 512 in
  for _ = 1 to 100_000 do
    let k = W.Dist.sample g (W.Dist.Zipf (n, alpha)) in
    check "zipf sample in range" true (k >= 0 && k < n);
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  check_int "CDF built once for 100k draws" 1 (builds () - before);
  (* The memoized sampler still produces the Zipf shape. *)
  let freq k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) in
  check "memoized sampler still skewed" true (freq 0 > 5. *. freq 19);
  (* Further draws of the same pair reuse the cached sampler. *)
  ignore (W.Dist.sample g (W.Dist.Zipf (n, alpha)));
  check_int "cache hit on later draw" 1 (builds () - before)

let bswap32 b off =
  let x0 = Bytes.get b off and x1 = Bytes.get b (off + 1) in
  let x2 = Bytes.get b (off + 2) and x3 = Bytes.get b (off + 3) in
  Bytes.set b off x3;
  Bytes.set b (off + 1) x2;
  Bytes.set b (off + 2) x1;
  Bytes.set b (off + 3) x0

let bswap16 b off =
  let x0 = Bytes.get b off and x1 = Bytes.get b (off + 1) in
  Bytes.set b off x1;
  Bytes.set b (off + 1) x0

let read_bytes path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let b = Bytes.create len in
      really_input ic b 0 len;
      b)

let write_bytes path b =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_bytes oc b)

(* Little-endian u32, for peeking at headers the writer produced. *)
let le32 b off =
  Char.code (Bytes.get b off)
  lor (Char.code (Bytes.get b (off + 1)) lsl 8)
  lor (Char.code (Bytes.get b (off + 2)) lsl 16)
  lor (Char.code (Bytes.get b (off + 3)) lsl 24)

(* Rewrite a little-endian classic pcap into the byte-swapped (0xd4c3b2a1)
   form: swap every global- and record-header field, leave frame bytes
   alone (their endianness is defined by the network protocols, not the
   file). *)
let byteswap_pcap src dst =
  let b = read_bytes src in
  List.iter (bswap32 b) [ 0; 8; 12; 16; 20 ];
  List.iter (bswap16 b) [ 4; 6 ];
  let off = ref 24 in
  while !off + 16 <= Bytes.length b do
    let incl = le32 b (!off + 8) in
    List.iter (fun d -> bswap32 b (!off + d)) [ 0; 4; 8; 12 ];
    off := !off + 16 + incl
  done;
  write_bytes dst b

let test_pcap_swapped_endian () =
  let profile = W.Profile.make ~flow_count:40 ~packets:200 () in
  let tr = W.Trace.synthesize ~seed:17L profile in
  let native = Filename.temp_file "clara_native" ".pcap" in
  let swapped = Filename.temp_file "clara_swapped" ".pcap" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove native;
      Sys.remove swapped)
    (fun () ->
      W.Pcap.write_file native tr;
      byteswap_pcap native swapped;
      (* Sanity: the transform really produced the swapped magic. *)
      check "swapped magic on disk" true (le32 (read_bytes swapped) 0 = 0xd4c3b2a1);
      let a = W.Pcap.read_file native in
      let b = W.Pcap.read_file swapped in
      check_int "same packet count" (Array.length a.W.Trace.packets)
        (Array.length b.W.Trace.packets);
      check "byte order is transparent" true (a.W.Trace.packets = b.W.Trace.packets))

let test_pcap_corrupt_incl () =
  (* A record whose captured-length field exceeds the file's declared
     snaplen must fail cleanly instead of attempting a giant read. *)
  let pkt =
    { W.Packet.src_ip = 1l; dst_ip = 2l; src_port = 3; dst_port = 4;
      proto = W.Packet.Udp; flags = 0; payload_bytes = 64; arrival_ns = 0L }
  in
  let path = Filename.temp_file "clara_corrupt" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      W.Pcap.write_file path (W.Trace.of_packets [| pkt |]);
      let b = read_bytes path in
      (* First record header starts right after the 24-byte global
         header; incl lives at +8.  0x7fffffff dwarfs any snaplen. *)
      Bytes.set b (24 + 8) '\xff';
      Bytes.set b (24 + 9) '\xff';
      Bytes.set b (24 + 10) '\xff';
      Bytes.set b (24 + 11) '\x7f';
      write_bytes path b;
      check "corrupt incl rejected" true
        (try ignore (W.Pcap.read_file path); false
         with Failure m ->
           (* The error should say what went wrong, not just explode. *)
           let has_snaplen =
             let n = String.length m in
             let rec go i = i + 7 <= n && (String.sub m i 7 = "snaplen" || go (i + 1)) in
             go 0
           in
           has_snaplen))

let prop_trace_respects_profile =
  QCheck.Test.make ~name:"synthesized mix tracks the profile" ~count:20
    (QCheck.pair (QCheck.float_range 0.1 0.9) (QCheck.int_range 100 2000))
    (fun (tcp, flows) ->
      (* The mix is statistical, and Zipf weighting concentrates packets
         on few flows, so the packet-level fraction has high variance:
         need plenty of flows and a generous tolerance. *)
      QCheck.assume (flows >= 300 && tcp >= 0. && tcp <= 1.);
      let p = W.Profile.make ~tcp_fraction:tcp ~flow_count:flows ~packets:5000 () in
      let s = W.Trace.stats (W.Trace.synthesize ~seed:4L p) in
      abs_float (s.W.Trace.tcp_fraction -. tcp) < 0.2
      && s.W.Trace.distinct_flows <= flows)

let prop_pcap_roundtrip =
  QCheck.Test.make ~name:"pcap roundtrip for random profiles" ~count:10
    (QCheck.int_range 1 200)
    (fun n ->
      QCheck.assume (n >= 1);
      let p = W.Profile.make ~packets:n ~flow_count:(max 1 (n / 2)) () in
      let tr = W.Trace.synthesize ~seed:(Int64.of_int n) p in
      let path = Filename.temp_file "clara_prop" ".pcap" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          W.Pcap.write_file path tr;
          let tr2 = W.Pcap.read_file path in
          Array.length tr2.W.Trace.packets = n
          && Array.for_all2
               (fun (a : W.Packet.t) (b : W.Packet.t) ->
                 a.W.Packet.src_ip = b.W.Packet.src_ip
                 && a.W.Packet.payload_bytes = b.W.Packet.payload_bytes
                 && a.W.Packet.proto = b.W.Packet.proto)
               tr.W.Trace.packets tr2.W.Trace.packets))

let suite =
  [ Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    Alcotest.test_case "prng ranges" `Quick test_prng_ranges;
    Alcotest.test_case "prng uniformity" `Quick test_prng_uniformity;
    Alcotest.test_case "distribution means" `Quick test_dist_means;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
    Alcotest.test_case "trace synthesis & stats" `Quick test_trace_synthesis;
    Alcotest.test_case "SYN on first flow packet" `Quick test_syn_on_first_packet;
    Alcotest.test_case "packet helpers" `Quick test_packet_helpers;
    Alcotest.test_case "pcap roundtrip" `Quick test_pcap_roundtrip;
    Alcotest.test_case "pcap bad magic" `Quick test_pcap_bad_magic;
    Alcotest.test_case "trace utilities" `Quick test_trace_utilities;
    Alcotest.test_case "pcap snaplen truncation" `Quick test_pcap_snaplen_truncation;
    Alcotest.test_case "zipf sampler memoized" `Quick test_zipf_sampler_memoized;
    Alcotest.test_case "pcap swapped byte order" `Quick test_pcap_swapped_endian;
    Alcotest.test_case "pcap corrupt record length" `Quick test_pcap_corrupt_incl ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_trace_respects_profile; prop_pcap_roundtrip ]
