(* Integration tests: the Clara facade, reports, and the microbenchmark
   calibration loop (§3.2 parameters recovered from the simulator). *)

module W = Clara_workload
module L = Clara_lnic
module Mb = Clara.Microbench

let check = Alcotest.(check bool)
let lnic = L.Netronome.default

let profile = W.Profile.make ~packets:3_000 ~flow_count:1_000 ()

let test_analyze_ok () =
  List.iter
    (fun (name, src) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile with
      | Ok a ->
          check (name ^ " has nodes") true (Array.length a.Clara.df.Clara_dataflow.Graph.nodes > 0)
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [ ("nat", Clara_nfs.Nat.source ());
      ("lpm", Clara_nfs.Lpm.source ~entries:4096);
      ("firewall", Clara_nfs.Firewall.source ());
      ("dpi", Clara_nfs.Dpi.source);
      ("dpi-raw", Clara_nfs.Dpi.source_raw_loop);
      ("heavy-hitter", Clara_nfs.Heavy_hitter.source ());
      ("vnf", Clara_nfs.Vnf_chain.source ()) ]

let test_analyze_errors () =
  let bad_syntax = "nf x { handler h(p) { var = ; } }" in
  let bad_types = "nf x { handler h(p) { emit(q); } }" in
  (match Clara.analyze lnic ~source:bad_syntax with
  | Error e -> check "syntax error reported" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "syntax error not caught");
  match Clara.analyze lnic ~source:bad_types with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "type error not caught"

let test_report_contents () =
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Nat.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let trace = W.Trace.synthesize ~seed:2L profile in
      let r = Clara.Report.build ~trace a in
      let s = Clara.Report.to_string r in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      check "mentions the NF" true (contains "nat");
      check "mentions the NIC" true (contains "netronome");
      check "has mapping section" true (contains "mapping");
      check "has packet-type paths" true (contains "per-packet-type");
      check "has throughput" true (contains "throughput");
      check "mentions state placement" true (contains "flow_table");
      check "prediction present" true (r.Clara.Report.prediction <> None);
      check "paths non-empty" true (r.Clara.Report.paths <> [])

let test_fit_linear () =
  (* Perfect line recovered exactly. *)
  let samples = List.map (fun x -> (float_of_int x, 50. +. (0.25 *. float_of_int x))) [ 10; 100; 500; 1000 ] in
  let f = Mb.fit_linear samples in
  check "base" true (Float.abs (f.Mb.base -. 50.) < 1e-6);
  check "slope" true (Float.abs (f.Mb.per_unit -. 0.25) < 1e-9);
  check "degenerate input rejected" true
    (try ignore (Mb.fit_linear [ (1., 1.) ]); false with Invalid_argument _ -> true)

let test_calibration_recovers_params () =
  (* Running the §3.2 microbenchmarks against the simulator must recover
     the parameters the simulator was configured with. *)
  let c = Mb.calibrate lnic in
  (* Engine checksum: 50 + 0.25/B. *)
  check "checksum engine base ~50" true (Float.abs (c.Mb.checksum_engine.Mb.base -. 50.) < 10.);
  check "checksum engine slope ~0.25" true
    (Float.abs (c.Mb.checksum_engine.Mb.per_unit -. 0.25) < 0.05);
  (* Software checksum ~1700 cycles above the engine at 1000 B. *)
  let at f n = f.Mb.base +. (f.Mb.per_unit *. n) in
  check "software - engine ~1700 @1000B" true
    (at c.Mb.checksum_software 1000. -. at c.Mb.checksum_engine 1000. > 1200.);
  (* Parse engine ~40 cycles. *)
  check "parse engine ~40" true (Float.abs (c.Mb.parse_engine_cycles -. 40.) < 15.);
  (* Metadata move 2-5 cycles (§3.2). *)
  check "move 2-5 cyc" true (c.Mb.move_cycles >= 2. && c.Mb.move_cycles <= 5.);
  (* LPM walk slope: ~40 cyc compute + amortized memory per entry. *)
  check "lpm slope in range" true
    (c.Mb.lpm_emem.Mb.per_unit > 40. && c.Mb.lpm_emem.Mb.per_unit < 120.);
  (* EMEM cache knee between 3 MB (the cache) and 8 MB. *)
  match c.Mb.emem_cache_knee_bytes with
  | Some b ->
      check "knee past the 3MB cache" true (b >= 3 * 1024 * 1024);
      check "knee below 8MB" true (b <= 8 * 1024 * 1024)
  | None -> Alcotest.fail "no knee detected"

let test_memory_curve_shape () =
  let curve =
    Mb.measure_memory_curve lnic
      ~working_sets:[ 1024 * 1024; 2 * 1024 * 1024; 8 * 1024 * 1024; 16 * 1024 * 1024 ]
  in
  match curve with
  | [ (_, small); _; _; (_, big) ] ->
      check "latency rises past the cache" true (big > small +. 100.)
  | _ -> Alcotest.fail "unexpected curve arity"

let test_soc_calibration_differs () =
  let netro = Mb.calibrate lnic in
  let soc = Mb.calibrate L.Soc_nic.default in
  (* The SoC's software checksum is far cheaper per byte (faster cores,
     conventional caches). *)
  check "targets produce different parameter tables" true
    (Float.abs (netro.Mb.checksum_software.Mb.base -. soc.Mb.checksum_software.Mb.base) > 100.)

let test_device_placement_of_state () =
  let options =
    { Clara_mapping.Mapping.default_options with
      Clara_mapping.Mapping.disallowed_accels = [ L.Unit_.Lookup ] }
  in
  match
    Clara.analyze_for_profile ~options lnic ~source:(Clara_nfs.Lpm.source ~entries:4096)
      ~profile
  with
  | Error e -> Alcotest.fail e
  | Ok a -> (
      match Clara.device_placement_of_state a "routes" with
      | Some (Clara_nicsim.Device.P_ctm | Clara_nicsim.Device.P_imem | Clara_nicsim.Device.P_emem) -> ()
      | Some Clara_nicsim.Device.P_flow_cache -> Alcotest.fail "flow cache was disallowed"
      | None -> Alcotest.fail "state unplaced")

let test_json_emitter () =
  let open Clara_util.Json in
  Alcotest.(check string) "escaping" {|"a\"b\\c\nd"|}
    (to_string ~pretty:false (String "a\"b\\c\nd"));
  Alcotest.(check string) "nan -> null" "null" (to_string (Float Float.nan));
  Alcotest.(check string) "compact object" {|{"a":1,"b":[true,null]}|}
    (to_string ~pretty:false (Obj [ ("a", Int 1); ("b", List [ Bool true; Null ]) ]));
  Alcotest.(check string) "empty containers" {|[{},[]]|}
    (to_string ~pretty:false (List [ Obj []; List [] ]))

let test_report_json () =
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Nat.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let trace = W.Trace.synthesize ~seed:2L profile in
      let j = Clara.Report.to_json (Clara.Report.build ~trace a) in
      let s = Clara_util.Json.to_string ~pretty:false j in
      let contains needle =
        let nl = String.length needle and sl = String.length s in
        let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
        go 0
      in
      check "nf field" true (contains {|"nf":"nat"|});
      check "mapping array" true (contains {|"mapping":[|});
      check "packet types" true (contains {|"packet_types":|});
      check "prediction" true (contains {|"mean_cycles":|});
      check "bottleneck" true (contains {|"bottleneck":|})

let test_predict_profile_deterministic () =
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Nat.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let p1 = Clara.predict_profile ~seed:5L a profile in
      let p2 = Clara.predict_profile ~seed:5L a profile in
      check "same seed, same prediction" true
        (p1.Clara_predict.Latency.mean_cycles = p2.Clara_predict.Latency.mean_cycles)

let suite =
  [ Alcotest.test_case "analyze accepts the NF corpus" `Quick test_analyze_ok;
    Alcotest.test_case "analyze reports errors" `Quick test_analyze_errors;
    Alcotest.test_case "report contents" `Quick test_report_contents;
    Alcotest.test_case "linear fitting" `Quick test_fit_linear;
    Alcotest.test_case "calibration recovers §3.2 parameters" `Quick
      test_calibration_recovers_params;
    Alcotest.test_case "memory latency curve shape" `Quick test_memory_curve_shape;
    Alcotest.test_case "per-NIC calibration differs" `Quick test_soc_calibration_differs;
    Alcotest.test_case "placement translation" `Quick test_device_placement_of_state;
    Alcotest.test_case "json emitter" `Quick test_json_emitter;
    Alcotest.test_case "report as json" `Quick test_report_json;
    Alcotest.test_case "predict_profile determinism" `Quick test_predict_profile_deterministic ]
