(* End-to-end fuzzing: random structured NF programs pushed through the
   whole pipeline (parse → typecheck → lower → coarsen → dataflow → map →
   predict) must never crash, and the invariants must hold at every
   stage. *)

module W = Clara_workload
module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir

let lnic = L.Netronome.default

(* ------------------------------------------------------------------ *)
(* Structured program generator                                         *)

(* Generates programs over a fixed set of declared names so they always
   typecheck: one map table "t", one lpm table "rt", one counter "cnt",
   int locals v0..v3 initialized up front. *)
let gen_program : string QCheck.Gen.t =
  let open QCheck.Gen in
  let int_expr depth =
    let rec go d =
      if d = 0 then
        oneof
          [ map string_of_int (int_range 0 100);
            oneofl [ "v0"; "v1"; "v2"; "v3"; "hdr.src_ip"; "hdr.dst_port"; "hdr.ttl" ] ]
      else
        let* a = go (d - 1) and* b = go (d - 1) in
        let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
        return (Printf.sprintf "(%s %s %s)" a op b)
    in
    go depth
  in
  let cond_expr =
    oneof
      [ (let* k = oneofl [ 6; 17; 1 ] in
         return (Printf.sprintf "hdr.proto == %d" k));
        return "(hdr.flags & 2) != 0";
        (let* e = int_expr 1 in
         let* k = int_range 0 50 in
         return (Printf.sprintf "%s > %d" e k)) ]
  in
  let stmt_leaf =
    oneof
      [ (let* e = int_expr 1 in
         let* v = oneofl [ "v0"; "v1"; "v2"; "v3" ] in
         return (Printf.sprintf "%s = %s;" v e));
        (let* e = int_expr 1 in
         return (Printf.sprintf "hdr.ttl = %s;" e));
        (let* k = int_expr 0 in
         return (Printf.sprintf "update(t, %s, 1);" k));
        return "v0 = entry_value(lookup(t, v1));";
        return "v2 = entry_value(lpm_match(rt, hdr.dst_ip));";
        return "v3 = count(cnt, v0);";
        return "meter(hdr.src_ip);";
        return "checksum_update(hdr);";
        return "v1 = hash(hdr.src_ip, hdr.dst_ip);" ]
  in
  let rec block depth budget =
    if budget <= 0 then return ""
    else
      let* n = int_range 1 (min 3 budget) in
      let* stmts =
        list_repeat n
          (if depth = 0 then stmt_leaf
           else
             frequency
               [ (4, stmt_leaf);
                 (1,
                  let* c = cond_expr in
                  let* t = block (depth - 1) (budget / 2) in
                  let* e = block (depth - 1) (budget / 2) in
                  return (Printf.sprintf "if (%s) { %s } else { %s }" c t e));
                 (1,
                  let* bound = int_range 1 8 in
                  let* body = block 0 1 in
                  return
                    (Printf.sprintf "for (i%d = 0; i%d < %d; i%d = i%d + 1) { %s }"
                       depth depth bound depth depth
                       (if body = "" then "v0 = v0 + 1;" else body))) ])
      in
      return (String.concat " " stmts)
  in
  let* body = block 2 6 in
  let* verdict = oneofl [ "emit(pkt);"; "drop(pkt);"; "if (v0 > 10) { emit(pkt); } else { drop(pkt); }" ] in
  return
    (Printf.sprintf
       {|nf fuzz {
  state map t[1024] entry 16;
  state lpm rt[512] entry 16;
  state counter cnt[256] entry 8;
  handler h(pkt) {
    var hdr = parse_header(pkt);
    var v0 = 0;
    var v1 = 1;
    var v2 = 2;
    var v3 = 3;
    %s
    %s
  }
}|}
       body verdict)

let profile = W.Profile.make ~packets:200 ~flow_count:50 ()

let prop_pipeline_never_crashes =
  QCheck.Test.make ~name:"random NFs run the whole pipeline" ~count:120
    (QCheck.make gen_program)
    (fun src ->
      match Clara.analyze_for_profile lnic ~source:src ~profile with
      | Error _ ->
          (* Structural mapping errors are acceptable outcomes; crashes
             are not (they escape as exceptions and fail the test). *)
          true
      | Ok a ->
          let p = Clara.predict_profile a profile in
          Float.is_finite p.Clara_predict.Latency.mean_cycles
          && p.Clara_predict.Latency.mean_cycles >= 0.)

let prop_lowered_cfg_well_formed =
  QCheck.Test.make ~name:"lowered CFGs are well-formed" ~count:120
    (QCheck.make gen_program)
    (fun src ->
      let ir = Clara_cir.Lower.lower_source src in
      let n = Array.length ir.Ir.blocks in
      let ids_ok =
        Array.for_all
          (fun (b : Ir.block) ->
            List.for_all (fun s -> s >= 0 && s < n) (Ir.successors b.Ir.term))
          ir.Ir.blocks
      in
      let entry_ok = ir.Ir.entry >= 0 && ir.Ir.entry < n in
      ids_ok && entry_ok)

let prop_coarsened_dataflow_is_dag =
  QCheck.Test.make ~name:"dataflow graphs are DAGs with consistent nodes" ~count:120
    (QCheck.make gen_program)
    (fun src ->
      let df = D.Build.of_source src in
      let order = D.Graph.topo_order df in
      List.length order = Array.length df.D.Graph.nodes
      && Array.for_all
           (fun (node : D.Node.t) ->
             node.D.Node.block >= 0
             && node.D.Node.block < Array.length df.D.Graph.cir.Ir.blocks)
           df.D.Graph.nodes)

let prop_print_reparse_equivalent =
  QCheck.Test.make ~name:"pp_program then reparse lowers identically" ~count:60
    (QCheck.make gen_program)
    (fun src ->
      let ast = Clara_cir.Parser.parse src in
      let printed = Format.asprintf "%a" Clara_cir.Ast.pp_program ast in
      let ast2 = Clara_cir.Parser.parse printed in
      let key a =
        let ir = Clara_cir.Lower.lower ast in
        ignore a;
        ( Array.length ir.Ir.blocks,
          Ir.instr_count ir,
          List.map (fun v -> v.Ir.vc) (Ir.vcalls_of ir) )
      in
      key ast = key ast2)

let prop_symexec_paths_finite =
  QCheck.Test.make ~name:"symbolic paths are bounded and sorted" ~count:60
    (QCheck.make gen_program)
    (fun src ->
      match Clara.analyze_for_profile lnic ~source:src ~profile with
      | Error _ -> true
      | Ok a ->
          let paths =
            Clara_predict.Symexec.enumerate ~max_paths:32 lnic a.Clara.df a.Clara.mapping
          in
          List.length paths <= 32
          && (let costs = List.map (fun p -> p.Clara_predict.Symexec.cost_cycles) paths in
              costs = List.sort (fun x y -> compare y x) costs))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pipeline_never_crashes;
      prop_lowered_cfg_well_formed;
      prop_coarsened_dataflow_is_dag;
      prop_print_reparse_equivalent;
      prop_symexec_paths_finite ]
