test/test_nfs.ml: Alcotest Clara Clara_cir Clara_dataflow Clara_lnic Clara_nfs Clara_nicsim Clara_predict Clara_workload Float Lazy List Printf
