test/test_main.ml: Alcotest Test_cir Test_core Test_dataflow Test_fuzz Test_ilp Test_ilp_deep Test_lnic Test_mapping Test_nfs Test_nicsim Test_predict Test_targets Test_workload
