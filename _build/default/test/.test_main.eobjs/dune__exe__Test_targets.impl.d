test/test_targets.ml: Alcotest Clara Clara_lnic Clara_nfs Clara_predict Clara_workload List String
