test/test_ilp.ml: Alcotest Array Clara_ilp Fun List Printf QCheck QCheck_alcotest Stdlib String
