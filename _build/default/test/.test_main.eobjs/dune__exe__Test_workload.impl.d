test/test_workload.ml: Alcotest Array Clara_workload Filename Fun Hashtbl Int64 List Option QCheck QCheck_alcotest Sys
