test/test_cir.ml: Alcotest Array Clara_cir Clara_lnic Format List Printf QCheck QCheck_alcotest
