test/test_mapping.ml: Alcotest Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping List Printf String
