test/test_core.ml: Alcotest Array Clara Clara_dataflow Clara_lnic Clara_mapping Clara_nfs Clara_nicsim Clara_predict Clara_util Clara_workload Float List String
