test/test_predict.ml: Alcotest Array Clara Clara_cir Clara_dataflow Clara_lnic Clara_mapping Clara_nfs Clara_nicsim Clara_predict Clara_workload Float Int64 List Option
