test/test_dataflow.ml: Alcotest Array Clara_cir Clara_dataflow Clara_lnic Hashtbl List Option Printf QCheck QCheck_alcotest
