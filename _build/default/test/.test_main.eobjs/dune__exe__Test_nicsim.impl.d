test/test_nicsim.ml: Alcotest Clara_lnic Clara_nfs Clara_nicsim Clara_util Clara_workload List Option QCheck QCheck_alcotest
