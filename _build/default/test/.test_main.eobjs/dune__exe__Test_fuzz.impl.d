test/test_fuzz.ml: Array Clara Clara_cir Clara_dataflow Clara_lnic Clara_predict Clara_workload Float Format List Printf QCheck QCheck_alcotest String
