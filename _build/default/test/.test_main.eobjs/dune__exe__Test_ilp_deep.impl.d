test/test_ilp_deep.ml: Alcotest Array Clara_ilp Filename Fun List QCheck QCheck_alcotest String Sys
