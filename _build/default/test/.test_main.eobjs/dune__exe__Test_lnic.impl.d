test/test_lnic.ml: Alcotest Array Clara_lnic List Option QCheck QCheck_alcotest String
