(* Tests for dataflow graph construction, flow weights, and the cost
   model. *)

module D = Clara_dataflow
module Ir = Clara_cir.Ir
module L = Clara_lnic
module P = Clara_lnic.Params

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let nat_src =
  {|
nf nat {
  state map flow_table[65536] entry 32;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6 || hdr.proto == 17) {
      var key = hash(hdr.src_ip, hdr.src_port);
      var ent = lookup(flow_table, key);
      if (!found(ent)) {
        update(flow_table, key, hdr.src_ip);
      }
      hdr.src_ip = entry_value(ent);
      checksum(pkt);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}

let dpi_src =
  {|
nf dpi {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var m = scan_payload(pkt, 64);
    if (m) { drop(pkt); } else { emit(pkt); }
  }
}
|}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 65536.);
    opaque_trip = 1.;
  }

let test_build_splits_vcalls () =
  let df = D.Build.of_source nat_src in
  (* Every vcall sits alone in its node. *)
  List.iter
    (fun n ->
      match n.D.Node.kind with
      | D.Node.N_vcall _ -> ()
      | D.Node.N_compute is ->
          check "no vcall inside compute node" true
            (List.for_all (function Ir.Vcall _ -> false | _ -> true) is))
    (Array.to_list df.D.Graph.nodes);
  check "has vcall nodes" true (D.Graph.vcall_nodes df <> [])

let test_dag_topo () =
  let df = D.Build.of_source nat_src in
  let order = D.Graph.topo_order df in
  check_int "order covers all nodes" (Array.length df.D.Graph.nodes) (List.length order);
  (* Every edge goes forward in the order. *)
  let pos = Hashtbl.create 32 in
  List.iteri (fun i n -> Hashtbl.add pos n i) order;
  List.iter
    (fun (s, d) ->
      check "edge forward in topo order" true (Hashtbl.find pos s < Hashtbl.find pos d))
    df.D.Graph.edges;
  check_int "entry first" df.D.Graph.entry (List.hd order)

let test_loops_are_removed () =
  let src =
    "nf t { handler h(p) { var hdr = parse_header(p); var s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i * i; } emit(p); } }"
  in
  (* Use the raw lowering (no coarsening via of_ir) to keep the loop. *)
  let ir = Clara_cir.Lower.lower_source src in
  let df = D.Build.of_ir ir in
  (* topo_order must not raise: back edge dropped. *)
  ignore (D.Graph.topo_order df);
  (* Loop body node carries the trip count. *)
  let trips =
    Array.to_list df.D.Graph.nodes |> List.filter_map (fun n -> n.D.Node.loop_trip)
  in
  check "some node in loop" true (List.mem (Ir.S_const 100) trips)

let test_flow_weights_nat () =
  let df = D.Build.of_source nat_src in
  let w = D.Flow.node_weights df ~prob:D.Flow.default_probability in
  check "entry weight 1" true (w.(df.D.Graph.entry) = 1.);
  (* The emit node should carry ~the tcp+udp fraction (=1.0 here since
     both protocols proceed); the drop node the remainder (~0). *)
  let weight_of vc =
    Array.to_list df.D.Graph.nodes
    |> List.filter_map (fun n ->
           match n.D.Node.kind with
           | D.Node.N_vcall v when v.Ir.vc = vc -> Some w.(n.D.Node.id)
           | _ -> None)
    |> List.fold_left ( +. ) 0.
  in
  check "emit weight == proto mass" true (abs_float (weight_of P.V_emit -. 1.0) < 1e-6);
  check "drop weight ~0" true (weight_of P.V_drop < 1e-6);
  (* Update runs only on table misses (10% under default prob). *)
  check "update weight ~0.1" true (abs_float (weight_of P.V_table_update -. 0.1) < 1e-6)

let test_flow_weights_dpi () =
  let df = D.Build.of_source dpi_src in
  let w = D.Flow.node_weights df ~prob:D.Flow.default_probability in
  let weight_of vc =
    Array.to_list df.D.Graph.nodes
    |> List.filter_map (fun n ->
           match n.D.Node.kind with
           | D.Node.N_vcall v when v.Ir.vc = vc -> Some w.(n.D.Node.id)
           | _ -> None)
    |> List.fold_left ( +. ) 0.
  in
  (* 10% scan matches drop; 90% emit. *)
  check "drop 0.1" true (abs_float (weight_of P.V_drop -. 0.1) < 1e-6);
  check "emit 0.9" true (abs_float (weight_of P.V_emit -. 0.9) < 1e-6)

let test_cost_core_vs_accel () =
  let lnic = L.Netronome.default in
  let npu = List.hd (L.Graph.general_cores lnic) in
  let csum = Option.get (L.Graph.find_accelerator lnic L.Unit_.Checksum) in
  let ctx u =
    {
      D.Cost.lnic;
      exec_unit = u;
      state_region = (fun _ -> 4);
      state_footprint = (fun _ -> 2 * 1024 * 1024);
      packet_region = 2;
      sizes = { default_sizes with D.Cost.packet_bytes = 1000. };
    }
  in
  let vc = { Ir.vc = P.V_checksum; size = Ir.S_packet; state = None;
             state_reads = Ir.S_const 0; state_writes = Ir.S_const 0 } in
  let node = { D.Node.id = 0; kind = D.Node.N_vcall vc; block = 0; loop_trip = None } in
  let core_cost = Option.get (D.Cost.node_cycles (ctx npu) node) in
  let accel_cost = Option.get (D.Cost.node_cycles (ctx csum) node) in
  check "accel checksum ~300 @1000B" true (abs_float (accel_cost -. 300.) < 5.);
  check "core much slower" true (core_cost > accel_cost +. 1500.);
  (* Accel cannot run general compute. *)
  let comp = { D.Node.id = 1; kind = D.Node.N_compute [ Ir.Op P.Alu ]; block = 0; loop_trip = None } in
  check "accel refuses compute" true (D.Cost.node_cycles (ctx csum) comp = None);
  check "core accepts compute" true (D.Cost.node_cycles (ctx npu) comp <> None)

let test_cost_memory_placement_matters () =
  let lnic = L.Netronome.default in
  let npu = List.hd (L.Graph.general_cores lnic) in
  let ctm = (L.Netronome.ctm_of_island lnic 0).L.Memory.id in
  let emem = (L.Netronome.emem lnic).L.Memory.id in
  let mk_ctx region footprint =
    {
      D.Cost.lnic;
      exec_unit = npu;
      state_region = (fun _ -> region);
      state_footprint = (fun _ -> footprint);
      packet_region = ctm;
      sizes = default_sizes;
    }
  in
  let vc = { Ir.vc = P.V_table_lookup; size = Ir.S_state_entries "t"; state = Some "t";
             state_reads = Ir.S_const 2; state_writes = Ir.S_const 0 } in
  let node = { D.Node.id = 0; kind = D.Node.N_vcall vc; block = 0; loop_trip = None } in
  let small = 64 * 1024 in
  let in_ctm = Option.get (D.Cost.node_cycles (mk_ctx ctm small) node) in
  let in_emem = Option.get (D.Cost.node_cycles (mk_ctx emem small) node) in
  check "CTM-resident state is faster" true (in_ctm < in_emem);
  (* A small footprint benefits from the EMEM cache vs a huge one. *)
  let small_emem = Option.get (D.Cost.node_cycles (mk_ctx emem small) node) in
  let big_emem =
    Option.get (D.Cost.node_cycles (mk_ctx emem (64 * 1024 * 1024)) node)
  in
  check "cache-fit footprint faster in EMEM" true (small_emem < big_emem)

let test_cost_fpu_emulation () =
  let netro = L.Netronome.default in
  let soc = L.Soc_nic.default in
  let node =
    { D.Node.id = 0; kind = D.Node.N_compute [ Ir.Op P.Fp; Ir.Op P.Fp ]; block = 0;
      loop_trip = None }
  in
  let cost lnic =
    let u = List.hd (L.Graph.general_cores lnic) in
    Option.get
      (D.Cost.node_cycles
         { D.Cost.lnic; exec_unit = u; state_region = (fun _ -> 0);
           state_footprint = (fun _ -> 0); packet_region = 2; sizes = default_sizes }
         node)
  in
  check "fp on NPU (no fpu) >> fp on ARM" true (cost netro > 10. *. cost soc)

let test_eval_size () =
  let sizes = default_sizes in
  check "const" true (D.Cost.eval_size sizes (Ir.S_const 7) = 7.);
  check "payload" true (D.Cost.eval_size sizes Ir.S_payload = 300.);
  check "scaled" true (D.Cost.eval_size sizes (Ir.S_scaled (Ir.S_payload, 0.5)) = 150.);
  check "plus" true (D.Cost.eval_size sizes (Ir.S_plus (Ir.S_payload, -100)) = 200.);
  check "plus clamps" true (D.Cost.eval_size sizes (Ir.S_plus (Ir.S_const 2, -10)) = 0.);
  check "state entries" true
    (D.Cost.eval_size sizes (Ir.S_state_entries "t") = 65536.)

let prop_weights_bounded =
  QCheck.Test.make ~name:"node weights lie in [0, 1] for branch-only NFs" ~count:30
    (QCheck.make
       QCheck.Gen.(
         let* depth = int_range 0 3 in
         return depth))
    (fun depth ->
      (* Nested conditionals; no loops, so every weight is a probability. *)
      let rec body d =
        if d = 0 then "emit(p);"
        else
          Printf.sprintf "if (hdr.proto == 6) { %s } else { %s }" (body (d - 1))
            (body (d - 1))
      in
      let src =
        Printf.sprintf "nf t { handler h(p) { var hdr = parse_header(p); %s } }"
          (body depth)
      in
      let df = D.Build.of_source src in
      let w = D.Flow.node_weights df ~prob:D.Flow.default_probability in
      Array.for_all (fun x -> x >= -.1e-9 && x <= 1. +. 1e-9) w)

let suite =
  [ Alcotest.test_case "build splits vcalls" `Quick test_build_splits_vcalls;
    Alcotest.test_case "topological order" `Quick test_dag_topo;
    Alcotest.test_case "loops removed, trips recorded" `Quick test_loops_are_removed;
    Alcotest.test_case "flow weights (NAT)" `Quick test_flow_weights_nat;
    Alcotest.test_case "flow weights (DPI)" `Quick test_flow_weights_dpi;
    Alcotest.test_case "cost: core vs accelerator" `Quick test_cost_core_vs_accel;
    Alcotest.test_case "cost: memory placement" `Quick test_cost_memory_placement_matters;
    Alcotest.test_case "cost: FPU emulation" `Quick test_cost_fpu_emulation;
    Alcotest.test_case "size evaluation" `Quick test_eval_size ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_weights_bounded ]
