(* Tests for the NF DSL frontend and the CIR: lexing, parsing, type
   checking, lowering, and pattern coarsening. *)

module L = Clara_cir.Lexer
module T = Clara_cir.Token
module Pr = Clara_cir.Parser
module Ast = Clara_cir.Ast
module Tc = Clara_cir.Typecheck
module Ir = Clara_cir.Ir
module Low = Clara_cir.Lower
module Pat = Clara_cir.Patterns
module P = Clara_lnic.Params

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Sample sources                                                      *)

let nat_src =
  {|
// Network address translation with a per-flow table.
nf nat {
  state map flow_table[65536] entry 32;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6 || hdr.proto == 17) {
      var key = hash(hdr.src_ip, hdr.src_port);
      var ent = lookup(flow_table, key);
      if (!found(ent)) {
        update(flow_table, key, hdr.src_ip);
      }
      hdr.src_ip = entry_value(ent);
      hdr.src_port = entry_value(ent) & 0xffff;
      checksum(pkt);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}

let raw_checksum_src =
  {|
/* checksum written as a raw loop: pattern matching should coarsen it */
nf raw_csum {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var sum = 0;
    for (i = 0; i < payload_len(pkt); i = i + 2) {
      sum = sum + payload_byte(pkt, i);
    }
    hdr.flags = sum & 0xffff;
    emit(pkt);
  }
}
|}

let raw_scan_src =
  {|
nf raw_scan {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var bad = 0;
    for (i = 0; i < payload_len(pkt); i = i + 1) {
      if (payload_byte(pkt, i) == 42) {
        bad = bad + 1;
      }
    }
    if (bad > 0) {
      drop(pkt);
    } else {
      emit(pkt);
    }
  }
}
|}

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let test_lexer_basics () =
  let toks = L.tokenize "x = 42 + 0x10; // comment\n y" in
  let kinds = List.map (fun t -> t.T.kind) toks in
  check "kinds" true
    (kinds
    = [ T.IDENT "x"; T.ASSIGN; T.INT 42; T.OP "+"; T.INT 16; T.SEMI; T.IDENT "y"; T.EOF ])

let test_lexer_two_char_ops () =
  let kinds s = List.map (fun t -> t.T.kind) (L.tokenize s) in
  check "==" true (kinds "a == b" = [ T.IDENT "a"; T.OP "=="; T.IDENT "b"; T.EOF ]);
  check "<= <<" true (kinds "<= <<" = [ T.OP "<="; T.OP "<<"; T.EOF ]);
  check "sequence ==<=" true (kinds "==<=" = [ T.OP "=="; T.OP "<="; T.EOF ]);
  check "&& vs &" true (kinds "a && b & c" = [ T.IDENT "a"; T.OP "&&"; T.IDENT "b"; T.OP "&"; T.IDENT "c"; T.EOF ])

let test_lexer_positions () =
  let toks = L.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
      check_int "a line" 1 a.T.pos.Ast.line;
      check_int "b line" 2 b.T.pos.Ast.line;
      check_int "b col" 3 b.T.pos.Ast.col
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_errors () =
  check "bad char" true
    (try ignore (L.tokenize "a $ b"); false with L.Error _ -> true);
  check "unterminated comment" true
    (try ignore (L.tokenize "/* foo"); false with L.Error _ -> true);
  check "float" true
    (List.map (fun t -> t.T.kind) (L.tokenize "1.5") = [ T.FLOAT 1.5; T.EOF ])

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)

let test_parse_nat () =
  let p = Pr.parse nat_src in
  check "name" true (p.Ast.nf_name = "nat");
  check_int "one state" 1 (List.length p.Ast.states);
  let st = List.hd p.Ast.states in
  check "state name" true (st.Ast.s_name = "flow_table");
  check_int "entries" 65536 st.Ast.s_entries;
  check_int "entry bytes" 32 st.Ast.s_entry_bytes;
  check "handler" true (p.Ast.handler.Ast.h_packet = "pkt")

let test_parse_precedence () =
  let p = Pr.parse "nf t { handler h(pkt) { var x = 1 + 2 * 3; emit(pkt); } }" in
  match p.Ast.handler.Ast.h_body with
  | Ast.Var (_, Ast.Binop (Ast.Add, Ast.Int 1, Ast.Binop (Ast.Mul, Ast.Int 2, Ast.Int 3)), _) :: _ ->
      ()
  | _ -> Alcotest.fail "precedence: expected 1 + (2 * 3)"

let test_parse_else_if () =
  let src =
    "nf t { handler h(p) { var hdr = parse_header(p); \
     if (hdr.proto == 6) { emit(p); } \
     else if (hdr.proto == 17) { drop(p); } \
     else { emit(p); } } }"
  in
  let p = Pr.parse src in
  (* The chain nests: else branch holds a single If statement. *)
  let rec depth = function
    | Ast.If (_, _, Some [ (Ast.If _ as inner) ], _) -> 1 + depth inner
    | Ast.If (_, _, _, _) -> 1
    | _ -> 0
  in
  let top =
    List.find_map
      (function Ast.If _ as s -> Some s | _ -> None)
      p.Ast.handler.Ast.h_body
  in
  (match top with
  | Some s -> check_int "two-level chain" 2 (depth s)
  | None -> Alcotest.fail "no conditional parsed");
  (* And the whole thing lowers + predicts. *)
  ignore (Low.lower_source src)

let test_parse_errors () =
  let bad s = try ignore (Pr.parse s); false with Pr.Error _ -> true in
  check "no handler" true (bad "nf t { }");
  check "missing semi" true (bad "nf t { handler h(p) { var x = 1 } }");
  check "bad state kind" true (bad "nf t { state blob x; handler h(p) { } }");
  check "trailing junk" true (bad "nf t { handler h(p) { } } extra")

(* ------------------------------------------------------------------ *)
(* Typecheck                                                           *)

let errors_of src =
  match Tc.check (Pr.parse src) with Ok () -> [] | Error es -> es

let test_typecheck_ok () =
  check "nat ok" true (errors_of nat_src = []);
  check "raw checksum ok" true (errors_of raw_checksum_src = []);
  check "raw scan ok" true (errors_of raw_scan_src = [])

let test_typecheck_catches () =
  let has_err src = errors_of src <> [] in
  check "unknown var" true
    (has_err "nf t { handler h(p) { var x = y; emit(p); } }");
  check "unknown builtin" true
    (has_err "nf t { handler h(p) { frobnicate(p); } }");
  check "bad state kind for lpm_match" true
    (has_err "nf t { state map m[8]; handler h(p) { var e = lpm_match(m, 1); emit(p); } }");
  check "unknown header field" true
    (has_err "nf t { handler h(p) { var h2 = parse_header(p); var x = h2.bogus; } }");
  check "non-bool condition" true
    (has_err "nf t { handler h(p) { if (1) { emit(p); } } }");
  check "arity" true (has_err "nf t { handler h(p) { emit(p, p); } }");
  check "state as value" true
    (has_err "nf t { state map m[8]; handler h(p) { var x = m; } }");
  check "duplicate state" true
    (has_err "nf t { state map m[8]; state map m[8]; handler h(p) { emit(p); } }");
  check "field of int" true
    (has_err "nf t { handler h(p) { var x = 1; var y = x.src_ip; } }")

(* ------------------------------------------------------------------ *)
(* Lowering                                                            *)

let test_lower_nat () =
  let ir = Low.lower_source nat_src in
  check "entry block exists" true (Array.length ir.Ir.blocks > 0);
  check_int "one state" 1 (List.length ir.Ir.states);
  let vcs = List.map (fun v -> v.Ir.vc) (Ir.vcalls_of ir) in
  check "has parse" true (List.mem P.V_parse_header vcs);
  check "has lookup" true (List.mem P.V_table_lookup vcs);
  check "has update" true (List.mem P.V_table_update vcs);
  check "has checksum" true (List.mem P.V_checksum vcs);
  check "has emit" true (List.mem P.V_emit vcs);
  check "has drop" true (List.mem P.V_drop vcs);
  (* The lookup knows its state and access counts. *)
  let lk = List.find (fun v -> v.Ir.vc = P.V_table_lookup) (Ir.vcalls_of ir) in
  check "lookup state" true (lk.Ir.state = Some "flow_table");
  check "lookup reads" true (lk.Ir.state_reads = Ir.S_const 2);
  check "lookup size symbolic" true (lk.Ir.size = Ir.S_state_entries "flow_table")

let test_lower_guards () =
  let ir = Low.lower_source nat_src in
  (* First conditional tests the protocol. *)
  let guards =
    Array.to_list ir.Ir.blocks
    |> List.filter_map (fun b ->
           match b.Ir.term with Ir.Cond { guard; _ } -> Some guard | _ -> None)
  in
  let rec mentions_proto = function
    | Ir.G_proto 6 -> true
    | Ir.G_not g -> mentions_proto g
    | Ir.G_or (a, b) -> mentions_proto a || mentions_proto b
    | _ -> false
  in
  check "has proto guard" true (List.exists mentions_proto guards);
  check "has table-hit guard" true
    (List.exists
       (function
         | Ir.G_table_hit "flow_table" | Ir.G_not (Ir.G_table_hit "flow_table") -> true
         | _ -> false)
       guards)

let test_lower_loop_trip () =
  let ir = Low.lower_source raw_scan_src in
  let trips =
    Array.to_list ir.Ir.blocks
    |> List.filter_map (fun b ->
           match b.Ir.term with Ir.Loop { trip; _ } -> Some trip | _ -> None)
  in
  check_int "one loop" 1 (List.length trips);
  check "trip = payload" true (List.hd trips = Ir.S_payload)

let test_lower_return_paths () =
  let src =
    "nf t { handler h(p) { var h2 = parse_header(p); if (h2.proto == 6) { drop(p); return; } emit(p); } }"
  in
  let ir = Low.lower_source src in
  (* Both a Ret on the drop path and a Ret at the end must exist. *)
  let rets =
    Array.to_list ir.Ir.blocks
    |> List.filter (fun b -> b.Ir.term = Ir.Ret)
    |> List.length
  in
  check "at least 2 returns" true (rets >= 2)

let test_lower_fp_class () =
  let src = "nf t { handler h(p) { var x = 1.5; var y = x * 2.0; emit(p); } }" in
  let ir = Low.lower_source src in
  let has_fp =
    Array.exists
      (fun b -> List.exists (fun i -> i = Ir.Op P.Fp) b.Ir.instrs)
      ir.Ir.blocks
  in
  check "float mul lowers to Fp" true has_fp

(* ------------------------------------------------------------------ *)
(* Patterns                                                            *)

let test_coarsen_checksum_loop () =
  let ir = Low.lower_source raw_checksum_src in
  let ir', rep = Pat.run ir in
  check_int "one loop coarsened" 1 rep.Pat.loops_coarsened;
  let vcs = List.map (fun v -> v.Ir.vc) (Ir.vcalls_of ir') in
  check "checksum vcall appears" true (List.mem P.V_checksum vcs);
  (* No Loop terminator should remain. *)
  check "no loops left" true
    (Array.for_all
       (fun b -> match b.Ir.term with Ir.Loop _ -> false | _ -> true)
       ir'.Ir.blocks)

let test_coarsen_scan_loop () =
  let ir = Low.lower_source raw_scan_src in
  let ir', rep = Pat.run ir in
  check_int "one loop coarsened" 1 rep.Pat.loops_coarsened;
  let vcs = List.map (fun v -> v.Ir.vc) (Ir.vcalls_of ir') in
  check "scan vcall appears" true (List.mem P.V_payload_scan vcs)

let test_coarsen_preserves_api_version () =
  (* An NF already using scan_payload() should not change. *)
  let src =
    "nf t { handler h(p) { var hdr = parse_header(p); var m = scan_payload(p, 64); if (m) { drop(p); } else { emit(p); } } }"
  in
  let ir = Low.lower_source src in
  let ir', rep = Pat.run ir in
  check_int "nothing to coarsen" 0 rep.Pat.loops_coarsened;
  check_int "same vcall count" (List.length (Ir.vcalls_of ir)) (List.length (Ir.vcalls_of ir'))

let test_api_and_raw_equivalent () =
  (* §3.3's point: framework-API and hand-written NFs reach the same
     shape.  After coarsening, the raw scan NF has the same vcall kinds
     as the API version. *)
  let api =
    "nf t { handler h(p) { var hdr = parse_header(p); var m = scan_payload(p, 64); if (m) { drop(p); } else { emit(p); } } }"
  in
  let via_api = Low.lower_source api in
  let via_raw, _ = Pat.run (Low.lower_source raw_scan_src) in
  let kinds ir =
    Ir.vcalls_of ir |> List.map (fun v -> v.Ir.vc) |> List.sort_uniq compare
  in
  check "same vcall kinds" true (kinds via_api = kinds via_raw)

let test_state_loops_not_coarsened () =
  (* A loop touching state must never be folded into a payload vcall. *)
  let src =
    "nf t { state map m[64]; handler h(p) { var hdr = parse_header(p); for (i = 0; i < payload_len(p); i = i + 1) { update(m, i, i); } emit(p); } }"
  in
  let ir = Low.lower_source src in
  let _, rep = Pat.run ir in
  check_int "no coarsening" 0 rep.Pat.loops_coarsened

let test_dead_block_elimination () =
  let src =
    "nf t { handler h(p) { drop(p); return; emit(p); } }"
  in
  let ir = Low.lower_source src in
  let ir', removed = Pat.eliminate_dead_blocks ir in
  check "removed some" true (removed > 0);
  (* Renumbering leaves a consistent CFG. *)
  Array.iteri
    (fun i b ->
      check_int "bid dense" i b.Ir.bid;
      List.iter
        (fun s -> check "successor in range" true (s >= 0 && s < Array.length ir'.Ir.blocks))
        (Ir.successors b.Ir.term))
    ir'.Ir.blocks

(* QCheck: random arithmetic expressions always lower without exceptions
   and produce only register-level ops. *)
let expr_gen =
  let open QCheck.Gen in
  let rec gen n =
    if n = 0 then map (fun i -> Printf.sprintf "%d" (abs i)) small_int
    else
      frequency
        [ (2, map (fun i -> Printf.sprintf "%d" (abs i)) small_int);
          (1,
           map2 (fun a b -> Printf.sprintf "(%s + %s)" a b) (gen (n - 1)) (gen (n - 1)));
          (1,
           map2 (fun a b -> Printf.sprintf "(%s * %s)" a b) (gen (n - 1)) (gen (n - 1)));
          (1,
           map2 (fun a b -> Printf.sprintf "(%s / (1 + %s))" a b) (gen (n - 1)) (gen (n - 1))) ]
  in
  gen 3

let prop_lower_arith =
  QCheck.Test.make ~name:"random arithmetic lowers cleanly" ~count:200
    (QCheck.make expr_gen)
    (fun e ->
      let src = Printf.sprintf "nf t { handler h(p) { var x = %s; emit(p); } }" e in
      let ir = Low.lower_source src in
      Array.for_all
        (fun b ->
          List.for_all
            (function
              | Ir.Op _ -> true
              | Ir.Vcall v -> v.Ir.vc = P.V_emit
              | _ -> false)
            b.Ir.instrs)
        ir.Ir.blocks)

let prop_parse_print_roundtrip =
  (* Printing a parsed program and reparsing it yields the same vcall
     structure after lowering. *)
  QCheck.Test.make ~name:"pp then reparse stable" ~count:20
    (QCheck.make (QCheck.Gen.oneofl [ nat_src; raw_checksum_src; raw_scan_src ]))
    (fun src ->
      let p = Pr.parse src in
      let printed = Format.asprintf "%a" Ast.pp_program p in
      let p2 = Pr.parse printed in
      let k1 = Low.lower p |> Ir.vcalls_of |> List.map (fun v -> v.Ir.vc) in
      let k2 = Low.lower p2 |> Ir.vcalls_of |> List.map (fun v -> v.Ir.vc) in
      k1 = k2)

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer two-char ops" `Quick test_lexer_two_char_ops;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer errors & floats" `Quick test_lexer_errors;
    Alcotest.test_case "parse NAT" `Quick test_parse_nat;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "else-if chains" `Quick test_parse_else_if;
    Alcotest.test_case "typecheck accepts corpus" `Quick test_typecheck_ok;
    Alcotest.test_case "typecheck rejections" `Quick test_typecheck_catches;
    Alcotest.test_case "lower NAT vcalls" `Quick test_lower_nat;
    Alcotest.test_case "lower guards" `Quick test_lower_guards;
    Alcotest.test_case "lower loop trip counts" `Quick test_lower_loop_trip;
    Alcotest.test_case "lower return paths" `Quick test_lower_return_paths;
    Alcotest.test_case "lower float ops" `Quick test_lower_fp_class;
    Alcotest.test_case "coarsen checksum loop" `Quick test_coarsen_checksum_loop;
    Alcotest.test_case "coarsen scan loop" `Quick test_coarsen_scan_loop;
    Alcotest.test_case "API version untouched" `Quick test_coarsen_preserves_api_version;
    Alcotest.test_case "API == raw after coarsening (§3.3)" `Quick test_api_and_raw_equivalent;
    Alcotest.test_case "state loops not coarsened" `Quick test_state_loops_not_coarsened;
    Alcotest.test_case "dead block elimination" `Quick test_dead_block_elimination ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_lower_arith; prop_parse_print_roundtrip ]
