(* Deeper correctness checks for the ILP substrate:
   - strong duality on random LPs (only provable with exact arithmetic);
   - branch & bound vs exhaustive enumeration on random binary programs;
   - exactness stress (pivots produce gnarly rationals, results stay exact). *)

module R = Clara_ilp.Rat
module LE = Clara_ilp.Lin_expr
module M = Clara_ilp.Model
module Sx = Clara_ilp.Simplex
module Lp = Clara_ilp.Lp
module Bb = Clara_ilp.Branch_bound

let check = Alcotest.(check bool)
let r = R.of_int

(* ------------------------------------------------------------------ *)
(* Strong duality:  max { c.x : Ax <= b, x >= 0 } has the same optimum
   as  min { y.b : yA >= c, y >= 0 }.  With b >= 0 the primal is
   feasible (origin); if the primal is bounded, both optima exist and
   are equal — exactly, since everything is rational. *)

let prop_strong_duality =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 4 in
        let* m = int_range 1 4 in
        let* a = list_repeat (m * n) (int_range (-4) 6) in
        let* b = list_repeat m (int_range 0 15) in
        let* c = list_repeat n (int_range (-3) 6) in
        return (n, m, a, b, c))
  in
  QCheck.Test.make ~name:"strong duality on random LPs" ~count:200 gen
    (fun (n, m, a, b, c) ->
      let aij i j = List.nth a ((i * n) + j) in
      (* Primal: min -c.x st Ax <= b, x >= 0. *)
      let primal_rows =
        List.init m (fun i ->
            { Sx.coeffs = Array.init n (fun j -> r (aij i j));
              sense = M.Le;
              rhs = r (List.nth b i) })
      in
      let primal =
        Sx.solve ~c:(Array.of_list (List.map (fun v -> r (-v)) c)) ~rows:primal_rows
      in
      match primal.Sx.status with
      | Sx.Infeasible -> false (* origin is feasible: impossible *)
      | Sx.Unbounded -> true (* dual infeasible; nothing to compare *)
      | Sx.Optimal ->
          (* Dual: min y.b st (A^T)y >= c, y >= 0. *)
          let dual_rows =
            List.init n (fun j ->
                { Sx.coeffs = Array.init m (fun i -> r (aij i j));
                  sense = M.Ge;
                  rhs = r (List.nth c j) })
          in
          let dual = Sx.solve ~c:(Array.of_list (List.map r b)) ~rows:dual_rows in
          (match dual.Sx.status with
          | Sx.Optimal ->
              (* primal objective is -(max c.x); dual objective is min y.b *)
              R.equal (R.neg primal.Sx.objective) dual.Sx.objective
          | Sx.Infeasible | Sx.Unbounded ->
              (* Primal bounded+feasible implies dual optimal. *)
              false))

(* ------------------------------------------------------------------ *)
(* B&B vs brute force on random binary programs.                        *)

let prop_bb_equals_bruteforce =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 6 in
        let* m = int_range 1 4 in
        let* a = list_repeat (m * n) (int_range (-5) 5) in
        let* b = list_repeat m (int_range (-3) 12) in
        let* c = list_repeat n (int_range (-6) 6) in
        return (n, m, a, b, c))
  in
  QCheck.Test.make ~name:"B&B = brute force on binary programs" ~count:150 gen
    (fun (n, m, a, b, c) ->
      let aij i j = List.nth a ((i * n) + j) in
      let model = M.create () in
      let xs = List.init n (fun _ -> M.add_var model M.Binary) in
      for i = 0 to m - 1 do
        M.add_constraint model
          (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (aij i j)) x) xs))
          M.Le
          (r (List.nth b i))
      done;
      M.set_objective model M.Maximize
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth c j)) x) xs));
      (* Brute force over all 2^n assignments. *)
      let best = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let x = List.init n (fun j -> (mask lsr j) land 1) in
        let feasible =
          List.init m (fun i ->
              List.fold_left ( + ) 0 (List.mapi (fun j xj -> aij i j * xj) x)
              <= List.nth b i)
          |> List.for_all Fun.id
        in
        if feasible then begin
          let v = List.fold_left ( + ) 0 (List.mapi (fun j xj -> List.nth c j * xj) x) in
          match !best with
          | None -> best := Some v
          | Some bv -> if v > bv then best := Some v
        end
      done;
      match (Bb.solve model, !best) with
      | { Bb.status = Bb.Optimal; objective; values; _ }, Some bv ->
          (* Optimal value matches, and the returned point is genuinely
             feasible and integral. *)
          R.equal objective (r bv) && M.check model values
      | { Bb.status = Bb.Infeasible; _ }, None -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Mixed-integer: continuous relaxation bounds the integer optimum.     *)

let prop_relaxation_bounds =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 4 in
        let* cap = int_range 2 25 in
        let* w = list_repeat n (int_range 1 9) in
        let* c = list_repeat n (int_range 1 9) in
        return (n, cap, w, c))
  in
  QCheck.Test.make ~name:"LP relaxation >= ILP optimum (knapsack)" ~count:200 gen
    (fun (n, cap, w, c) ->
      let model = M.create () in
      let xs = List.init n (fun _ -> M.add_var model M.Binary) in
      M.add_constraint model
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth w j)) x) xs))
        M.Le (r cap);
      M.set_objective model M.Maximize
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth c j)) x) xs));
      let relax = Lp.solve model in
      let exact = Bb.solve model in
      match (relax.Lp.status, exact.Bb.status) with
      | Lp.Optimal, Bb.Optimal -> R.( >= ) relax.Lp.objective exact.Bb.objective
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Exactness stress: Hilbert-like coefficients force huge intermediate
   rationals; the solution must still satisfy the equalities exactly.   *)

let test_exactness_stress () =
  (* Hilbert coefficients with rhs derived from x* = (1,...,1), so the
     system is feasible with x >= 0 by construction. *)
  let n = 5 in
  let rhs_of i =
    List.init n (fun j -> R.of_ints 1 (i + j + 1)) |> List.fold_left R.add R.zero
  in
  let rows =
    List.init n (fun i ->
        { Sx.coeffs = Array.init n (fun j -> R.of_ints 1 (i + j + 1));
          sense = M.Eq;
          rhs = rhs_of i })
  in
  let res = Sx.solve ~c:(Array.make n R.one) ~rows in
  check "optimal" true (res.Sx.status = Sx.Optimal);
  List.iteri
    (fun _ { Sx.coeffs; rhs; _ } ->
      let lhs = ref R.zero in
      Array.iteri (fun j cj -> lhs := R.add !lhs (R.mul cj res.Sx.solution.(j))) coeffs;
      check "row satisfied exactly" true (R.equal !lhs rhs))
    rows

let test_bigint_stress () =
  (* 2^300 computed two ways. *)
  let module B = Clara_ilp.Bigint in
  let rec pow b k = if k = 0 then B.one else B.mul b (pow b (k - 1)) in
  let a = pow (B.of_int 2) 300 in
  let b = pow (B.of_int 1024) 30 in
  check "2^300 = 1024^30" true (B.equal a b);
  let q, r0 = B.divmod a (B.of_string "1000000007") in
  check "divmod identity at scale" true B.(equal a (add (mul q (of_string "1000000007")) r0))

let test_lp_format () =
  let m = M.create () in
  let x = M.add_var m ~name:"ship" M.Binary in
  let y = M.add_var m ~name:"1bad name" ~lb:(r 1) ~ub:(r 5) M.Integer in
  let z = M.add_var m ~name:"load" ~ub:(R.of_ints 7 2) M.Continuous in
  M.add_constraint m ~name:"cap" LE.(add (var ~coeff:(r 3) x) (var y)) M.Le (r 7);
  M.add_constraint m ~name:"link" LE.(sub (var z) (var ~coeff:(R.of_ints 1 2) y)) M.Ge (r 0);
  M.set_objective m M.Maximize LE.(add (var ~coeff:(r 4) x) (var z));
  let s = Clara_ilp.Lp_format.to_string m in
  let contains needle =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  check "maximize header" true (contains "Maximize");
  check "objective" true (contains "4 ship");
  check "constraint by name" true (contains "cap: 3 ship");
  check "ge constraint" true (contains ">= 0");
  check "bad name sanitized" true (contains "x1") ;
  check "binary section" true (contains "Binary\n ship");
  check "general section" true (contains "General\n x1");
  check "bounds" true (contains "0 <= load <= 3.5");
  check "end marker" true (contains "End\n")

(* ------------------------------------------------------------------ *)
(* Presolve                                                             *)

module Pre = Clara_ilp.Presolve

let test_presolve_singleton_rows () =
  (* 2x <= 7 with x integer: presolve must conclude x <= 3. *)
  let m = M.create () in
  let x = M.add_var m M.Integer in
  M.add_constraint m (LE.var ~coeff:(r 2) x) M.Le (r 7);
  (match Pre.run m with
  | Pre.Tightened b ->
      check "ub rounded to 3" true (snd b.(x) = Some (r 3));
      check "lb stays 0" true (R.equal (fst b.(x)) R.zero)
  | Pre.Proven_infeasible -> Alcotest.fail "feasible model");
  (* x >= 5/2 integer: lb becomes 3. *)
  let m2 = M.create () in
  let y = M.add_var m2 M.Integer in
  M.add_constraint m2 (LE.var ~coeff:(r 2) y) M.Ge (r 5);
  match Pre.run m2 with
  | Pre.Tightened b -> check "lb rounded to 3" true (R.equal (fst b.(y)) (r 3))
  | Pre.Proven_infeasible -> Alcotest.fail "feasible model"

let test_presolve_propagation () =
  (* x + y = 10, x <= 3  =>  y >= 7 by propagation. *)
  let m = M.create () in
  let x = M.add_var m ~ub:(r 3) M.Continuous in
  let y = M.add_var m ~ub:(r 100) M.Continuous in
  M.add_constraint m LE.(add (var x) (var y)) M.Eq (r 10);
  match Pre.run m with
  | Pre.Tightened b ->
      check "y lower bound 7" true (R.( >= ) (fst b.(y)) (r 7));
      ignore x
  | Pre.Proven_infeasible -> Alcotest.fail "feasible model"

let test_presolve_detects_infeasible () =
  (* x + y >= 10 with x, y binary: impossible. *)
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m M.Binary in
  M.add_constraint m LE.(add (var x) (var y)) M.Ge (r 10);
  check "proven infeasible" true (Pre.run m = Pre.Proven_infeasible);
  (* And branch & bound agrees without exploring. *)
  M.set_objective m M.Maximize LE.(add (var x) (var y));
  let res = Bb.solve m in
  check "bb infeasible" true (res.Bb.status = Bb.Infeasible);
  check "no nodes explored" true (res.Bb.nodes = 0)

let prop_presolve_preserves_optimum =
  (* Presolve must never cut off the integer optimum: B&B with presolve
     (the default path) still matches brute force. *)
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 1 5 in
        let* a = list_repeat n (int_range (-4) 6) in
        let* b = int_range (-2) 14 in
        let* c = list_repeat n (int_range (-5) 5) in
        return (n, a, b, c))
  in
  QCheck.Test.make ~name:"presolve preserves the optimum" ~count:200 gen
    (fun (n, a, b, c) ->
      let m = M.create () in
      let xs = List.init n (fun _ -> M.add_var m M.Binary) in
      M.add_constraint m
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth a j)) x) xs))
        M.Le (r b);
      M.set_objective m M.Maximize
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(r (List.nth c j)) x) xs));
      let best = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let x = List.init n (fun j -> (mask lsr j) land 1) in
        if List.fold_left ( + ) 0 (List.mapi (fun j xj -> List.nth a j * xj) x) <= b
        then begin
          let v = List.fold_left ( + ) 0 (List.mapi (fun j xj -> List.nth c j * xj) x) in
          match !best with None -> best := Some v | Some bv -> if v > bv then best := Some v
        end
      done;
      match (Bb.solve m, !best) with
      | { Bb.status = Bb.Optimal; objective; _ }, Some bv -> R.equal objective (r bv)
      | { Bb.status = Bb.Infeasible; _ }, None -> true
      | _ -> false)

let test_lp_format_file () =
  let m = M.create () in
  let x = M.add_var m ~name:"x" M.Binary in
  M.add_constraint m (LE.var x) M.Le R.one;
  M.set_objective m M.Maximize (LE.var x);
  let path = Filename.temp_file "clara_lp" ".lp" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Clara_ilp.Lp_format.write_file path m;
      let ic = open_in path in
      let contents =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check "file round-trips to_string" true
        (contents = Clara_ilp.Lp_format.to_string m))

let suite =
  [ Alcotest.test_case "lp-format export" `Quick test_lp_format;
    Alcotest.test_case "lp-format file writing" `Quick test_lp_format_file;
    Alcotest.test_case "presolve singleton rows" `Quick test_presolve_singleton_rows;
    Alcotest.test_case "presolve propagation" `Quick test_presolve_propagation;
    Alcotest.test_case "presolve proves infeasibility" `Quick test_presolve_detects_infeasible;
    Alcotest.test_case "exactness stress (Hilbert rows)" `Quick test_exactness_stress;
    Alcotest.test_case "bigint stress 2^300" `Quick test_bigint_stress ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_strong_duality; prop_bb_equals_bruteforce; prop_relaxation_bounds;
        prop_presolve_preserves_optimum ]
