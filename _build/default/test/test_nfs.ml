(* Tests over the extended NF corpus: every source analyzes, every port
   runs, and the cross-NF stories (FPU emulation, crypto engine,
   offloadability) hold. *)

module W = Clara_workload
module L = Clara_lnic
module Dev = Clara_nicsim.Device
module Eng = Clara_nicsim.Engine
module SStats = Clara_nicsim.Stats

let check = Alcotest.(check bool)
let lnic = L.Netronome.default

let profile = W.Profile.make ~packets:3_000 ~flow_count:800 ~rate_pps:60_000. ()
let trace = lazy (W.Trace.synthesize ~seed:13L profile)

let corpus =
  [ ("nat", Clara_nfs.Nat.source (), Clara_nfs.Nat.ported ~checksum_engine:true ());
    ("lpm", Clara_nfs.Lpm.source ~entries:4096,
     Clara_nfs.Lpm.ported ~entries:4096 ~use_flow_cache:true ());
    ("firewall", Clara_nfs.Firewall.source (), Clara_nfs.Firewall.ported ~placement:Dev.P_imem ());
    ("dpi", Clara_nfs.Dpi.source, Clara_nfs.Dpi.ported ());
    ("heavy-hitter", Clara_nfs.Heavy_hitter.source (), Clara_nfs.Heavy_hitter.ported ());
    ("vnf-chain", Clara_nfs.Vnf_chain.source (), Clara_nfs.Vnf_chain.ported ());
    ("kv-store", Clara_nfs.Kv_store.source (), Clara_nfs.Kv_store.ported ());
    ("load-balancer", Clara_nfs.Load_balancer.source (), Clara_nfs.Load_balancer.ported ());
    ("syn-proxy", Clara_nfs.Syn_proxy.source (), Clara_nfs.Syn_proxy.ported ());
    ("ipsec-gw", Clara_nfs.Ipsec_gw.source (), Clara_nfs.Ipsec_gw.ported ());
    ("telemetry", Clara_nfs.Telemetry.source (), Clara_nfs.Telemetry.ported ());
    ("tunnel-gw", Clara_nfs.Tunnel_gw.source (), Clara_nfs.Tunnel_gw.ported ()) ]

let test_all_sources_analyze () =
  List.iter
    (fun (name, src, _) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile with
      | Ok a ->
          let p = Clara.predict_profile a profile in
          check (name ^ " predicts > 0") true (p.Clara_predict.Latency.mean_cycles > 0.)
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    corpus

let test_all_ports_run () =
  List.iter
    (fun (name, _, prog) ->
      let r = Eng.run lnic prog (Lazy.force trace) in
      check (name ^ " processes packets") true (r.Eng.summary.SStats.packets > 0);
      check (name ^ " latency sane") true
        (r.Eng.summary.SStats.mean_cycles > 1000.
        && r.Eng.summary.SStats.mean_cycles < 1e9))
    corpus

let test_all_sources_analyze_on_soc_and_host () =
  (* Every source must map on every target (no accel dependencies). *)
  List.iter
    (fun (name, src, _) ->
      List.iter
        (fun (tname, target) ->
          match Clara.analyze_for_profile target ~source:src ~profile with
          | Ok _ -> ()
          | Error e -> Alcotest.fail (Printf.sprintf "%s on %s: %s" name tname e))
        [ ("soc", L.Soc_nic.default); ("host", L.Host.default) ])
    corpus

let test_telemetry_fpu_story () =
  (* Float EWMA: emulated on NPUs, native on ARM/x86 — predicted compute
     gap must be large (§3.4 emulation accounting). *)
  let src = Clara_nfs.Telemetry.source () in
  let predict target =
    match Clara.analyze_for_profile target ~source:src ~profile with
    | Ok a ->
        let p = Clara.predict_profile a profile in
        (* Compare cycle counts normalized by clock: wall time. *)
        let freq =
          match L.Graph.general_cores target with
          | u :: _ -> float_of_int u.L.Unit_.freq_mhz
          | [] -> 1.
        in
        p.Clara_predict.Latency.mean_cycles /. freq
    | Error e -> Alcotest.fail e
  in
  let npu_us = predict lnic and soc_us = predict L.Soc_nic.default in
  check "telemetry slower on FPU-less NPUs" true (npu_us > soc_us)

let test_ipsec_crypto_engine_story () =
  let tr = Lazy.force trace in
  let eng = Eng.run lnic (Clara_nfs.Ipsec_gw.ported ~crypto_engine:true ()) tr in
  let sw = Eng.run lnic (Clara_nfs.Ipsec_gw.ported ~crypto_engine:false ()) tr in
  check "crypto engine much faster" true
    (sw.Eng.summary.SStats.mean_cycles > 1.5 *. eng.Eng.summary.SStats.mean_cycles)

let test_kv_store_get_set_paths () =
  (* Symbolic paths must distinguish GET-hit / GET-miss / SET. *)
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Kv_store.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let paths = Clara_predict.Symexec.enumerate lnic a.Clara.df a.Clara.mapping in
      check "at least 4 packet types" true (List.length paths >= 4);
      check "value-table hit distinguished" true
        (List.exists
           (fun p ->
             List.exists
               (fun d -> d.Clara_predict.Symexec.guard = Clara_cir.Ir.G_table_hit "values")
               p.Clara_predict.Symexec.decisions)
           paths)

let test_syn_proxy_syn_path_cheaper_than_miss () =
  (* SYNs are answered statelessly; unverified non-SYNs pay a lookup and
     a cookie check. *)
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Syn_proxy.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let p = Clara.predict_profile a profile in
      check "per-type means differ" true
        (Float.abs
           (p.Clara_predict.Latency.syn_mean -. p.Clara_predict.Latency.tcp_mean)
        > 1.)

let test_partial_offload_decisions () =
  (* NAT should fully offload; DPI should stay on the host. *)
  let best src =
    match Clara.analyze_for_profile lnic ~source:src ~profile with
    | Error e -> Alcotest.fail e
    | Ok a ->
        let s = Clara_predict.Partial.best_split lnic a.Clara.df a.Clara.mapping in
        let n = List.length s.Clara_predict.Partial.assignment in
        if s.Clara_predict.Partial.cut = n then `Nic
        else if s.Clara_predict.Partial.cut = 0 then `Host
        else `Split
  in
  check "NAT fully offloads" true (best (Clara_nfs.Nat.source ()) = `Nic);
  check "DPI stays on host" true (best Clara_nfs.Dpi.source = `Host)

let test_partial_split_invariants () =
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Vnf_chain.source ()) ~profile with
  | Error e -> Alcotest.fail e
  | Ok a ->
      let splits = Clara_predict.Partial.enumerate_splits lnic a.Clara.df a.Clara.mapping in
      check "at least the two trivial splits" true (List.length splits >= 2);
      let sorted = List.map (fun s -> s.Clara_predict.Partial.total_ns) splits in
      check "cheapest first" true (sorted = List.sort compare sorted);
      List.iter
        (fun s ->
          check "totals add up" true
            (Float.abs
               (s.Clara_predict.Partial.total_ns
               -. (s.Clara_predict.Partial.nic_ns +. s.Clara_predict.Partial.host_ns
                  +. s.Clara_predict.Partial.pcie_ns))
            < 1e-6);
          (* A state object never appears on both sides. *)
          let state_of nid =
            match (Clara_dataflow.Graph.node a.Clara.df nid).Clara_dataflow.Node.kind with
            | Clara_dataflow.Node.N_vcall v -> v.Clara_cir.Ir.state
            | _ -> None
          in
          let nic_states, host_states =
            List.fold_left
              (fun (ns, hs) (nid, side) ->
                match state_of nid with
                | None -> (ns, hs)
                | Some st -> (
                    match side with
                    | Clara_predict.Partial.On_nic -> (st :: ns, hs)
                    | Clara_predict.Partial.On_host -> (ns, st :: hs)))
              ([], []) s.Clara_predict.Partial.assignment
          in
          check "no state split across PCIe" true
            (List.for_all (fun st -> not (List.mem st host_states)) nic_states))
        splits

let test_energy_estimates () =
  let energy target src =
    match Clara.analyze_for_profile target ~source:src ~profile with
    | Error e -> Alcotest.fail e
    | Ok a ->
        Clara_predict.Energy.estimate ~rate_pps:60_000. target a.Clara.df a.Clara.mapping
  in
  let nat_npu = energy lnic (Clara_nfs.Nat.source ()) in
  check "positive energy" true (nat_npu.Clara_predict.Energy.nj_per_packet > 0.);
  check "watts include idle" true (nat_npu.Clara_predict.Energy.watts_at_rate > 10.);
  check "breakdown non-empty" true (nat_npu.Clara_predict.Energy.breakdown <> []);
  (* The E3 story: per-packet dynamic energy on the NIC is below the
     Xeon host for the same NF. *)
  let nat_host = energy L.Host.default (Clara_nfs.Nat.source ()) in
  check "NIC more energy-efficient than host" true
    (nat_npu.Clara_predict.Energy.nj_per_packet
    < nat_host.Clara_predict.Energy.nj_per_packet);
  (* DPI burns more than NAT on the same target. *)
  let dpi_npu = energy lnic Clara_nfs.Dpi.source in
  check "dpi > nat energy" true
    (dpi_npu.Clara_predict.Energy.nj_per_packet > nat_npu.Clara_predict.Energy.nj_per_packet)

let test_corpus_registry () =
  let names = Clara_nfs.Corpus.names in
  check "twelve NFs" true (List.length names = 12);
  check "names unique" true (List.length (List.sort_uniq compare names) = List.length names);
  check "find works" true (Clara_nfs.Corpus.find "nat" <> None);
  check "find rejects" true (Clara_nfs.Corpus.find "bogus" = None);
  (* Every corpus source analyzes and every port matches its source name
     family. *)
  List.iter
    (fun (e : Clara_nfs.Corpus.entry) ->
      match Clara.analyze_for_profile lnic ~source:e.Clara_nfs.Corpus.source ~profile with
      | Ok _ -> ()
      | Error err -> Alcotest.fail (e.Clara_nfs.Corpus.name ^ ": " ^ err))
    Clara_nfs.Corpus.all

let test_host_model_valid () =
  check "host graph valid" true (L.Validate.is_valid L.Host.default);
  check "host has no accelerators" true (L.Graph.accelerators L.Host.default = []);
  check "host cores have fpu" true
    (List.for_all
       (fun u ->
         match u.L.Unit_.kind with
         | L.Unit_.General_core { has_fpu; _ } -> has_fpu
         | _ -> false)
       (L.Graph.general_cores L.Host.default))

let suite =
  [ Alcotest.test_case "all sources analyze (netronome)" `Quick test_all_sources_analyze;
    Alcotest.test_case "all ports run" `Quick test_all_ports_run;
    Alcotest.test_case "all sources analyze (soc, host)" `Quick
      test_all_sources_analyze_on_soc_and_host;
    Alcotest.test_case "telemetry FPU emulation story" `Quick test_telemetry_fpu_story;
    Alcotest.test_case "ipsec crypto engine story" `Quick test_ipsec_crypto_engine_story;
    Alcotest.test_case "kv-store packet types" `Quick test_kv_store_get_set_paths;
    Alcotest.test_case "syn-proxy per-type latency" `Quick
      test_syn_proxy_syn_path_cheaper_than_miss;
    Alcotest.test_case "partial offload decisions" `Quick test_partial_offload_decisions;
    Alcotest.test_case "partial split invariants" `Quick test_partial_split_invariants;
    Alcotest.test_case "energy estimates" `Quick test_energy_estimates;
    Alcotest.test_case "corpus registry" `Quick test_corpus_registry;
    Alcotest.test_case "host model" `Quick test_host_model_valid ]
