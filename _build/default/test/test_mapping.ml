(* Tests for the mapping ILP (§3.4) and the greedy baseline. *)

module D = Clara_dataflow
module L = Clara_lnic
module Map_ = Clara_mapping.Mapping
module Enc = Clara_mapping.Encode
module Gr = Clara_mapping.Greedy
module Ir = Clara_cir.Ir
module P = Clara_lnic.Params

let check = Alcotest.(check bool)

let nat_src =
  {|
nf nat {
  state map flow_table[65536] entry 32;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6 || hdr.proto == 17) {
      var key = hash(hdr.src_ip, hdr.src_port);
      var ent = lookup(flow_table, key);
      if (!found(ent)) {
        update(flow_table, key, hdr.src_ip);
      }
      hdr.src_ip = entry_value(ent);
      checksum(pkt);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}

let lpm_src entries =
  Printf.sprintf
    {|
nf lpm {
  state lpm routes[%d] entry 16;
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var route = lpm_match(routes, hdr.dst_ip);
    if (found(route)) {
      hdr.ttl = hdr.ttl - 1;
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}
    entries

let sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let prob = D.Flow.default_probability

let solve ?options src =
  let df = D.Build.of_source src in
  (df, Enc.map_nf ?options (L.Netronome.default) df ~sizes ~prob)

let unit_name lnic id = (L.Graph.unit_ lnic id).L.Unit_.name

let vcall_unit lnic df m vc =
  Array.to_list df.D.Graph.nodes
  |> List.find_map (fun n ->
         match n.D.Node.kind with
         | D.Node.N_vcall v when v.Ir.vc = vc ->
             Some (unit_name lnic m.Map_.node_unit.(n.D.Node.id))
         | _ -> None)

(* The paper's §3.4 example: parsing on the match/action engine, checksum
   on the accelerator, a <3MB flow table in the IMEM. *)
let test_nat_paper_example () =
  let lnic = L.Netronome.default in
  match solve nat_src with
  | _, Error e -> Alcotest.fail e
  | df, Ok m ->
      check "parse -> ma_engine" true (vcall_unit lnic df m P.V_parse_header = Some "ma_engine");
      check "checksum -> csum_engine" true
        (vcall_unit lnic df m P.V_checksum = Some "csum_engine");
      (match Map_.placement_of_state m "flow_table" with
      | Some (Map_.In_memory mem) ->
          check "flow table (2MB) in IMEM" true
            ((L.Graph.memory lnic mem).L.Memory.name = "imem")
      | Some (Map_.In_accel _) ->
          (* 2MB exactly fills the flow cache; either is defensible, but
             the lookup+update pair keeps it off the accel in practice. *)
          ()
      | None -> Alcotest.fail "flow_table unplaced")

let test_mapping_is_feasible () =
  let lnic = L.Netronome.default in
  match solve nat_src with
  | _, Error e -> Alcotest.fail e
  | df, Ok m ->
      (* Every node assigned a real unit; pipeline stages never decrease
         along edges. *)
      Array.iter
        (fun u -> check "unit id valid" true (u >= 0 && u < Array.length lnic.L.Graph.units))
        m.Map_.node_unit;
      List.iter
        (fun (s, d) ->
          let su = L.Graph.unit_ lnic m.Map_.node_unit.(s) in
          let du = L.Graph.unit_ lnic m.Map_.node_unit.(d) in
          check "stage monotone" true (su.L.Unit_.stage <= du.L.Unit_.stage))
        df.D.Graph.edges

let test_flow_cache_choice () =
  let lnic = L.Netronome.default in
  (* Small LPM table: the ILP should use the flow-cache accelerator. *)
  let df = D.Build.of_source (lpm_src 8192) in
  (match Enc.map_nf lnic df ~sizes ~prob with
  | Error e -> Alcotest.fail e
  | Ok m -> (
      check "lpm -> flow_cache" true (vcall_unit lnic df m P.V_lpm_lookup = Some "flow_cache");
      match Map_.placement_of_state m "routes" with
      | Some (Map_.In_accel _) -> ()
      | _ -> Alcotest.fail "routes should live in accel SRAM"));
  (* Forbidding the accelerator forces the software walk (the Figure 3a
     variant). *)
  let options = { Map_.default_options with Map_.disallowed_accels = [ L.Unit_.Lookup ] } in
  match Enc.map_nf ~options lnic df ~sizes ~prob with
  | Error e -> Alcotest.fail e
  | Ok m -> (
      check "lpm on an NPU" true
        (match vcall_unit lnic df m P.V_lpm_lookup with
        | Some name -> String.length name >= 3 && String.sub name 0 3 = "npu"
        | None -> false);
      match Map_.placement_of_state m "routes" with
      | Some (Map_.In_memory _) -> ()
      | _ -> Alcotest.fail "routes must be in a memory region")

let test_accel_ablation_increases_cost () =
  let lnic = L.Netronome.default in
  let df = D.Build.of_source nat_src in
  let base =
    match Enc.map_nf lnic df ~sizes ~prob with Ok m -> m | Error e -> Alcotest.fail e
  in
  let no_accels =
    let options =
      { Map_.default_options with
        Map_.disallowed_accels = [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto ] }
    in
    match Enc.map_nf ~options lnic df ~sizes ~prob with
    | Ok m -> m
    | Error e -> Alcotest.fail e
  in
  check "accelerators reduce predicted cost" true
    (base.Map_.objective_cycles < no_accels.Map_.objective_cycles)

let test_greedy_never_beats_ilp () =
  let lnic = L.Netronome.default in
  List.iter
    (fun src ->
      let df = D.Build.of_source src in
      match (Enc.map_nf lnic df ~sizes ~prob, Gr.map_nf lnic df ~sizes ~prob) with
      | Ok ilp, Ok greedy ->
          check "ILP <= greedy (it optimizes the same objective)" true
            (ilp.Map_.objective_cycles <= greedy.Map_.objective_cycles +. 1.)
      | Error e, _ | _, Error e -> Alcotest.fail e)
    [ nat_src; lpm_src 8192; lpm_src 30000 ]

let test_state_too_big () =
  (* A state object larger than every region must be rejected. *)
  let src =
    "nf t { state map huge[1073741824] entry 64; handler h(p) { var hdr = parse_header(p); var e = lookup(huge, 1); emit(p); } }"
  in
  let lnic = L.Netronome.default in
  let df = D.Build.of_source src in
  match Enc.map_nf lnic df ~sizes ~prob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "64GB state should not fit anywhere"

let test_soc_has_no_ma_engine () =
  (* On the SoC NIC, parsing must run on a core (no Parse accel). *)
  let lnic = L.Soc_nic.default in
  let df = D.Build.of_source nat_src in
  match Enc.map_nf lnic df ~sizes ~prob with
  | Error e -> Alcotest.fail e
  | Ok m ->
      check "parse on an ARM core" true
        (match vcall_unit lnic df m P.V_parse_header with
        | Some name -> String.length name >= 3 && String.sub name 0 3 = "arm"
        | None -> false)

let suite =
  [ Alcotest.test_case "NAT mapping = paper's §3.4 example" `Quick test_nat_paper_example;
    Alcotest.test_case "mapping feasibility invariants" `Quick test_mapping_is_feasible;
    Alcotest.test_case "flow cache on/off (porting strategies)" `Quick test_flow_cache_choice;
    Alcotest.test_case "ablation: no accels costs more" `Quick test_accel_ablation_increases_cost;
    Alcotest.test_case "greedy never beats ILP" `Quick test_greedy_never_beats_ilp;
    Alcotest.test_case "oversized state rejected" `Quick test_state_too_big;
    Alcotest.test_case "SoC target: parse on cores" `Quick test_soc_has_no_ma_engine ]
