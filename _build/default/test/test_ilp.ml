(* Tests for the exact ILP substrate: bignums, rationals, simplex, B&B. *)

module B = Clara_ilp.Bigint
module R = Clara_ilp.Rat
module LE = Clara_ilp.Lin_expr
module M = Clara_ilp.Model
module Sx = Clara_ilp.Simplex
module Lp = Clara_ilp.Lp
module Bb = Clara_ilp.Branch_bound

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)

let test_bigint_basics () =
  check_str "zero" "0" (B.to_string B.zero);
  check_str "small" "42" (B.to_string (B.of_int 42));
  check_str "negative" "-7" (B.to_string (B.of_int (-7)));
  check_str "max_int" (string_of_int max_int) (B.to_string (B.of_int max_int));
  check_str "min_int" (string_of_int min_int) (B.to_string (B.of_int min_int));
  check_int "roundtrip max" max_int (B.to_int_exn (B.of_int max_int));
  check_int "roundtrip min" min_int (B.to_int_exn (B.of_int min_int))

let test_bigint_string () =
  let s = "123456789012345678901234567890" in
  check_str "of/to_string" s (B.to_string (B.of_string s));
  check_str "neg of/to_string" ("-" ^ s) (B.to_string (B.of_string ("-" ^ s)));
  check "to_int_opt overflow" true (B.to_int_opt (B.of_string s) = None)

let test_bigint_arith_large () =
  let a = B.of_string "99999999999999999999999999" in
  let b = B.of_string "12345678901234567890123456" in
  check_str "add" "112345678901234567890123455" B.(to_string (add a b));
  check_str "sub" "87654321098765432109876543" B.(to_string (sub a b));
  check_str "mul"
    "1234567890123456789012345587654321098765432109876544"
    B.(to_string (mul a b));
  let q, r = B.divmod a b in
  check_str "div" "8" (B.to_string q);
  check_str "rem" "1234568790123456879012351" (B.to_string r);
  check "a = q*b + r" true B.(equal a (add (mul q b) r))

let test_bigint_division_signs () =
  (* Truncated division: remainder carries the dividend's sign. *)
  let dm a b =
    let q, r = B.divmod (B.of_int a) (B.of_int b) in
    (B.to_int_exn q, B.to_int_exn r)
  in
  Alcotest.(check (pair int int)) "7/2" (3, 1) (dm 7 2);
  Alcotest.(check (pair int int)) "-7/2" (-3, -1) (dm (-7) 2);
  Alcotest.(check (pair int int)) "7/-2" (-3, 1) (dm 7 (-2));
  Alcotest.(check (pair int int)) "-7/-2" (3, -1) (dm (-7) (-2));
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let test_bigint_gcd () =
  let g a b = B.to_int_exn (B.gcd (B.of_int a) (B.of_int b)) in
  check_int "gcd 12 18" 6 (g 12 18);
  check_int "gcd -12 18" 6 (g (-12) 18);
  check_int "gcd 0 5" 5 (g 0 5);
  check_int "gcd 0 0" 0 (g 0 0);
  check_int "gcd coprime" 1 (g 17 31)

(* QCheck: bigint arithmetic agrees with native int on values where both
   are exact. *)
let small_int = QCheck.int_range (-1_000_000) 1_000_000

let prop_bigint_ring =
  QCheck.Test.make ~name:"bigint add/mul agree with int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      B.to_int_exn (B.add (B.of_int x) (B.of_int y)) = x + y
      && B.to_int_exn (B.mul (B.of_int x) (B.of_int y)) = x * y
      && B.to_int_exn (B.sub (B.of_int x) (B.of_int y)) = x - y)

let prop_bigint_divmod =
  QCheck.Test.make ~name:"bigint divmod agrees with int" ~count:500
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let q, r = B.divmod (B.of_int x) (B.of_int y) in
      B.to_int_exn q = x / y && B.to_int_exn r = x mod y)

let prop_bigint_string_roundtrip =
  QCheck.Test.make ~name:"bigint decimal roundtrip" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 40) (QCheck.int_range 0 9))
    (fun digits ->
      let s = String.concat "" (List.map string_of_int digits) in
      (* Strip leading zeros for canonical comparison. *)
      let canonical =
        let s' = ref 0 in
        let n = String.length s in
        while !s' < n - 1 && s.[!s'] = '0' do incr s' done;
        String.sub s !s' (n - !s')
      in
      B.to_string (B.of_string s) = canonical)

let prop_bigint_mul_assoc =
  QCheck.Test.make ~name:"bigint mul associative/commutative (large)" ~count:200
    (QCheck.triple small_int small_int small_int)
    (fun (x, y, z) ->
      let bx = B.of_int x and by = B.of_int y and bz = B.of_int z in
      (* Blow the values up so multi-digit paths are exercised. *)
      let big = B.of_string "1000000000000000000000" in
      let bx = B.mul bx big and by = B.mul by big in
      B.equal (B.mul (B.mul bx by) bz) (B.mul bx (B.mul by bz))
      && B.equal (B.mul bx by) (B.mul by bx))

let prop_bigint_divmod_large =
  QCheck.Test.make ~name:"bigint divmod identity (large operands)" ~count:200
    (QCheck.pair small_int small_int)
    (fun (x, y) ->
      QCheck.assume (y <> 0);
      let big = B.of_string "123456789123456789123456789" in
      let a = B.mul (B.of_int x) big in
      let b = B.mul (B.of_int y) (B.of_string "987654321987") in
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul q b) r)
      && B.compare (B.abs r) (B.abs b) < 0
      && (B.is_zero r || B.sign r = B.sign a))

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)

let test_rat_normalization () =
  check "2/4 = 1/2" true R.(equal (of_ints 2 4) (of_ints 1 2));
  check "-1/-2 = 1/2" true R.(equal (of_ints (-1) (-2)) (of_ints 1 2));
  check "den positive" true (B.sign (R.den (R.of_ints 1 (-2))) > 0);
  check_str "print" "-1/2" (R.to_string (R.of_ints 1 (-2)));
  check_str "int print" "3" (R.to_string (R.of_int 3))

let test_rat_floor_ceil () =
  let f n d = B.to_int_exn (R.floor (R.of_ints n d)) in
  let c n d = B.to_int_exn (R.ceil (R.of_ints n d)) in
  check_int "floor 7/2" 3 (f 7 2);
  check_int "floor -7/2" (-4) (f (-7) 2);
  check_int "ceil 7/2" 4 (c 7 2);
  check_int "ceil -7/2" (-3) (c (-7) 2);
  check_int "floor 4/2" 2 (f 4 2);
  check_int "ceil 4/2" 2 (c 4 2)

let test_rat_of_float () =
  check "0.5 exact" true R.(equal (of_float 0.5) (of_ints 1 2));
  check "0.25 exact" true R.(equal (of_float 0.25) (of_ints 1 4));
  check "3.0 exact" true R.(equal (of_float 3.0) (of_int 3));
  check "roundtrip 0.1" true (R.to_float (R.of_float 0.1) = 0.1)

let rat_gen =
  QCheck.map
    (fun (n, d) -> R.of_ints n (if d = 0 then 1 else d))
    (QCheck.pair (QCheck.int_range (-10_000) 10_000) (QCheck.int_range (-100) 100))

let prop_rat_field =
  QCheck.Test.make ~name:"rat field laws" ~count:500 (QCheck.triple rat_gen rat_gen rat_gen)
    (fun (a, b, c) ->
      R.(equal (add a b) (add b a))
      && R.(equal (mul a b) (mul b a))
      && R.(equal (add (add a b) c) (add a (add b c)))
      && R.(equal (mul (mul a b) c) (mul a (mul b c)))
      && R.(equal (mul a (add b c)) (add (mul a b) (mul a c)))
      && R.(equal (sub (add a b) b) a)
      && (R.is_zero a || R.(equal (mul a (inv a)) one)))

let prop_rat_order =
  QCheck.Test.make ~name:"rat order consistent with float" ~count:500
    (QCheck.pair rat_gen rat_gen)
    (fun (a, b) ->
      let cf = Stdlib.compare (R.to_float a) (R.to_float b) in
      let cr = R.compare a b in
      (* Floats of our small rats are exact enough for strict orderings;
         equal floats can only come from equal rats at these magnitudes. *)
      (cf < 0 && cr < 0) || (cf > 0 && cr > 0) || (cf = 0 && cr = 0))

let prop_rat_floor_frac =
  QCheck.Test.make ~name:"rat x = floor x + frac x, frac in [0,1)" ~count:500 rat_gen
    (fun a ->
      let fl = R.of_bigint (R.floor a) in
      R.(equal a (add fl (frac a)))
      && R.(frac a >= zero)
      && R.(frac a < one))

(* ------------------------------------------------------------------ *)
(* Simplex                                                             *)

let r = R.of_int
let ri = R.of_ints

(* max 3x + 2y st x + y <= 4, x + 3y <= 6, x,y >= 0  => x=4,y=0, obj 12
   (as min of negation) *)
let test_simplex_basic () =
  let rows =
    [ { Sx.coeffs = [| r 1; r 1 |]; sense = M.Le; rhs = r 4 };
      { Sx.coeffs = [| r 1; r 3 |]; sense = M.Le; rhs = r 6 } ]
  in
  let res = Sx.solve ~c:[| r (-3); r (-2) |] ~rows in
  check "optimal" true (res.Sx.status = Sx.Optimal);
  check "obj = -12" true R.(equal res.Sx.objective (r (-12)));
  check "x = 4" true R.(equal res.Sx.solution.(0) (r 4));
  check "y = 0" true R.(equal res.Sx.solution.(1) (r 0))

let test_simplex_equality () =
  (* min x + y st x + 2y = 4, x - y = 1  => x=2, y=1, obj 3 *)
  let rows =
    [ { Sx.coeffs = [| r 1; r 2 |]; sense = M.Eq; rhs = r 4 };
      { Sx.coeffs = [| r 1; r (-1) |]; sense = M.Eq; rhs = r 1 } ]
  in
  let res = Sx.solve ~c:[| r 1; r 1 |] ~rows in
  check "optimal" true (res.Sx.status = Sx.Optimal);
  check "obj 3" true R.(equal res.Sx.objective (r 3));
  check "x 2" true R.(equal res.Sx.solution.(0) (r 2));
  check "y 1" true R.(equal res.Sx.solution.(1) (r 1))

let test_simplex_infeasible () =
  (* x <= 1 and x >= 2 *)
  let rows =
    [ { Sx.coeffs = [| r 1 |]; sense = M.Le; rhs = r 1 };
      { Sx.coeffs = [| r 1 |]; sense = M.Ge; rhs = r 2 } ]
  in
  let res = Sx.solve ~c:[| r 1 |] ~rows in
  check "infeasible" true (res.Sx.status = Sx.Infeasible)

let test_simplex_unbounded () =
  (* min -x st x >= 1 : x can grow forever *)
  let rows = [ { Sx.coeffs = [| r 1 |]; sense = M.Ge; rhs = r 1 } ] in
  let res = Sx.solve ~c:[| r (-1) |] ~rows in
  check "unbounded" true (res.Sx.status = Sx.Unbounded)

let test_simplex_degenerate () =
  (* A classically degenerate LP; Bland's rule must terminate.
     min -0.75x4 + 150x5 - 0.02x6 + 6x7 (Beale's cycling example). *)
  let rows =
    [ { Sx.coeffs = [| ri 1 4; r (-60); ri (-1) 25; r 9 |]; sense = M.Le; rhs = r 0 };
      { Sx.coeffs = [| ri 1 2; r (-90); ri (-1) 50; r 3 |]; sense = M.Le; rhs = r 0 };
      { Sx.coeffs = [| r 0; r 0; r 1; r 0 |]; sense = M.Le; rhs = r 1 } ]
  in
  let res = Sx.solve ~c:[| ri (-3) 4; r 150; ri (-1) 50; r 6 |] ~rows in
  check "optimal (no cycling)" true (res.Sx.status = Sx.Optimal);
  check "obj -1/20" true R.(equal res.Sx.objective (ri (-1) 20))

let test_simplex_rational_exact () =
  (* min x st 3x >= 1  => x = 1/3 exactly *)
  let rows = [ { Sx.coeffs = [| r 3 |]; sense = M.Ge; rhs = r 1 } ] in
  let res = Sx.solve ~c:[| r 1 |] ~rows in
  check "x = 1/3" true R.(equal res.Sx.solution.(0) (ri 1 3))

(* Random LPs: feasibility of the returned point. We construct rows with
   non-negative rhs and Le sense so the origin is always feasible; optimal
   solutions must satisfy every row. *)
let prop_simplex_feasible =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* nvars = int_range 1 4 in
        let* nrows = int_range 1 5 in
        let* rows =
          list_repeat nrows
            (let* coeffs = list_repeat nvars (int_range (-5) 5) in
             let* rhs = int_range 0 20 in
             return (coeffs, rhs))
        in
        let* c = list_repeat nvars (int_range (-5) 5) in
        return (nvars, rows, c))
  in
  QCheck.Test.make ~name:"simplex: returned point satisfies all rows" ~count:300 gen
    (fun (_nvars, rows, c) ->
      let rows' =
        List.map
          (fun (coeffs, rhs) ->
            { Sx.coeffs = Array.of_list (List.map r coeffs);
              sense = M.Le;
              rhs = r rhs })
          rows
      in
      let res = Sx.solve ~c:(Array.of_list (List.map r c)) ~rows:rows' in
      match res.Sx.status with
      | Sx.Infeasible -> false (* origin is feasible: cannot happen *)
      | Sx.Unbounded -> true
      | Sx.Optimal ->
          List.for_all
            (fun { Sx.coeffs; rhs; _ } ->
              let lhs = ref R.zero in
              Array.iteri
                (fun i ci -> lhs := R.add !lhs (R.mul ci res.Sx.solution.(i)))
                coeffs;
              R.( <= ) !lhs rhs)
            rows'
          && Array.for_all (fun x -> R.( >= ) x R.zero) res.Sx.solution
          (* objective at the optimum is <= objective at origin (= 0) *)
          && R.( <= ) res.Sx.objective R.zero)

(* ------------------------------------------------------------------ *)
(* Lp + Branch & bound                                                 *)

let test_lp_bounds () =
  (* max x + y with 1 <= x <= 3, 0 <= y <= 2, x + y <= 4 => obj 4 hit at
     e.g. x in [2,3]. *)
  let m = M.create () in
  let x = M.add_var m ~lb:(r 1) ~ub:(r 3) M.Continuous in
  let y = M.add_var m ~ub:(r 2) M.Continuous in
  M.add_constraint m LE.(add (var x) (var y)) M.Le (r 4);
  M.set_objective m M.Maximize LE.(add (var x) (var y));
  let res = Lp.solve m in
  check "optimal" true (res.Lp.status = Lp.Optimal);
  check "obj 4" true R.(equal res.Lp.objective (r 4));
  check "x within bounds" true R.(res.Lp.values.(x) >= r 1 && res.Lp.values.(x) <= r 3)

let test_lp_negative_lb () =
  (* min x with x >= -5 (via bound), x >= -2 (via row) => -2. *)
  let m = M.create () in
  let x = M.add_var m ~lb:(r (-5)) M.Continuous in
  M.add_constraint m (LE.var x) M.Ge (r (-2));
  M.set_objective m M.Minimize (LE.var x);
  let res = Lp.solve m in
  check "optimal" true (res.Lp.status = Lp.Optimal);
  check "obj -2" true R.(equal res.Lp.objective (r (-2)))

let test_lp_infeasible_box () =
  let m = M.create () in
  let _x = M.add_var m ~lb:(r 3) ~ub:(r 1) M.Continuous in
  M.set_objective m M.Minimize LE.zero;
  check "empty box infeasible" true ((Lp.solve m).Lp.status = Lp.Infeasible)

let test_bb_knapsack () =
  (* Classic 0/1 knapsack: values 60,100,120; weights 10,20,30; cap 50.
     Optimum 220 (items 2,3). *)
  let m = M.create () in
  let xs = List.init 3 (fun i -> M.add_var m ~name:(Printf.sprintf "item%d" i) M.Binary) in
  let weights = [ 10; 20; 30 ] and values = [ 60; 100; 120 ] in
  let wexpr =
    LE.sum (List.map2 (fun x w -> LE.var ~coeff:(r w) x) xs weights)
  in
  M.add_constraint m wexpr M.Le (r 50);
  M.set_objective m M.Maximize
    (LE.sum (List.map2 (fun x v -> LE.var ~coeff:(r v) x) xs values));
  let res = Bb.solve m in
  check "optimal" true (res.Bb.status = Bb.Optimal);
  check "obj 220" true R.(equal res.Bb.objective (r 220));
  (match xs with
  | [ a; b; c ] ->
      check "item0 out" true R.(equal res.Bb.values.(a) R.zero);
      check "item1 in" true R.(equal res.Bb.values.(b) R.one);
      check "item2 in" true R.(equal res.Bb.values.(c) R.one)
  | _ -> assert false)

let test_bb_integer_rounding () =
  (* max y st 2y <= 7, y integer => y = 3 (relaxation 3.5). *)
  let m = M.create () in
  let y = M.add_var m M.Integer in
  M.add_constraint m (LE.var ~coeff:(r 2) y) M.Le (r 7);
  M.set_objective m M.Maximize (LE.var y);
  let res = Bb.solve m in
  check "obj 3" true R.(equal res.Bb.objective (r 3))

let test_bb_infeasible () =
  (* x binary, x >= 1, x <= 0 contradiction via rows *)
  let m = M.create () in
  let x = M.add_var m M.Binary in
  M.add_constraint m (LE.var x) M.Ge (ri 1 2);
  M.add_constraint m (LE.var x) M.Le (ri 3 4);
  M.set_objective m M.Minimize (LE.var x);
  check "no integer point in [1/2,3/4]" true ((Bb.solve m).Bb.status = Bb.Infeasible)

(* Assignment problem vs brute force. *)
let brute_force_assignment cost =
  let n = Array.length cost in
  let rec perms acc rest =
    match rest with
    | [] -> [ List.rev acc ]
    | _ ->
        List.concat_map
          (fun x -> perms (x :: acc) (List.filter (fun y -> y <> x) rest))
          rest
  in
  let all = perms [] (List.init n Fun.id) in
  List.fold_left
    (fun best p ->
      let c = List.fold_left ( + ) 0 (List.mapi (fun i j -> cost.(i).(j)) p) in
      min best c)
    max_int all

let prop_bb_assignment =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 4 in
        let* flat = list_repeat (n * n) (int_range 1 20) in
        return (n, flat))
  in
  QCheck.Test.make ~name:"B&B solves assignment = brute force" ~count:50 gen
    (fun (n, flat) ->
      let cost = Array.init n (fun i -> Array.init n (fun j -> List.nth flat ((i * n) + j))) in
      let m = M.create () in
      let x = Array.init n (fun _ -> Array.init n (fun _ -> M.add_var m M.Binary)) in
      for i = 0 to n - 1 do
        M.add_constraint m
          (LE.sum (List.init n (fun j -> LE.var x.(i).(j))))
          M.Eq R.one;
        M.add_constraint m
          (LE.sum (List.init n (fun j -> LE.var x.(j).(i))))
          M.Eq R.one
      done;
      let obj =
        LE.sum
          (List.concat
             (List.init n (fun i ->
                  List.init n (fun j -> LE.var ~coeff:(r cost.(i).(j)) x.(i).(j)))))
      in
      M.set_objective m M.Minimize obj;
      let res = Bb.solve m in
      res.Bb.status = Bb.Optimal
      && R.equal res.Bb.objective (r (brute_force_assignment cost)))

let test_model_check () =
  let m = M.create () in
  let x = M.add_var m M.Binary in
  let y = M.add_var m ~ub:(r 5) M.Integer in
  M.add_constraint m LE.(add (var x) (var y)) M.Le (r 4);
  M.set_objective m M.Maximize LE.(add (var x) (var y));
  check "feasible point" true (M.check m [| R.one; r 3 |]);
  check "violates row" false (M.check m [| R.one; r 4 |]);
  check "violates integrality" false (M.check m [| R.one; ri 1 2 |]);
  check "violates binary ub" false (M.check m [| r 2; r 1 |])

let qsuite tests = List.map QCheck_alcotest.to_alcotest tests

let suite =
  [ Alcotest.test_case "bigint basics" `Quick test_bigint_basics;
    Alcotest.test_case "bigint strings" `Quick test_bigint_string;
    Alcotest.test_case "bigint large arithmetic" `Quick test_bigint_arith_large;
    Alcotest.test_case "bigint division signs" `Quick test_bigint_division_signs;
    Alcotest.test_case "bigint gcd" `Quick test_bigint_gcd;
    Alcotest.test_case "rat normalization" `Quick test_rat_normalization;
    Alcotest.test_case "rat floor/ceil" `Quick test_rat_floor_ceil;
    Alcotest.test_case "rat of_float" `Quick test_rat_of_float;
    Alcotest.test_case "simplex basic max" `Quick test_simplex_basic;
    Alcotest.test_case "simplex equalities" `Quick test_simplex_equality;
    Alcotest.test_case "simplex infeasible" `Quick test_simplex_infeasible;
    Alcotest.test_case "simplex unbounded" `Quick test_simplex_unbounded;
    Alcotest.test_case "simplex degenerate (Beale)" `Quick test_simplex_degenerate;
    Alcotest.test_case "simplex exact rationals" `Quick test_simplex_rational_exact;
    Alcotest.test_case "lp bounds" `Quick test_lp_bounds;
    Alcotest.test_case "lp negative lower bound" `Quick test_lp_negative_lb;
    Alcotest.test_case "lp empty box" `Quick test_lp_infeasible_box;
    Alcotest.test_case "b&b knapsack" `Quick test_bb_knapsack;
    Alcotest.test_case "b&b integer rounding" `Quick test_bb_integer_rounding;
    Alcotest.test_case "b&b infeasible" `Quick test_bb_infeasible;
    Alcotest.test_case "model check" `Quick test_model_check ]
  @ qsuite
      [ prop_bigint_ring;
        prop_bigint_divmod;
        prop_bigint_string_roundtrip;
        prop_bigint_mul_assoc;
        prop_bigint_divmod_large;
        prop_rat_field;
        prop_rat_order;
        prop_rat_floor_frac;
        prop_simplex_feasible;
        prop_bb_assignment ]
