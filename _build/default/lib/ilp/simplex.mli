(** Exact two-phase primal simplex on dense rational tableaus.

    Solves: minimize [c . x] subject to the given rows and [x >= 0].
    Bland's rule guarantees termination; exact {!Rat} arithmetic makes
    optimality and feasibility verdicts certain, which
    {!Branch_bound} relies on when testing integrality. *)

type row = { coeffs : Rat.t array; sense : Model.sense; rhs : Rat.t }

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : Rat.t;      (** Meaningful only when [status = Optimal]. *)
  solution : Rat.t array; (** Length = number of structural variables. *)
}

val solve : c:Rat.t array -> rows:row list -> result
(** All [coeffs] arrays must have the same length as [c].
    @raise Invalid_argument on dimension mismatch. *)
