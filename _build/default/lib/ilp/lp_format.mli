(** CPLEX-LP-format export of {!Model} instances.

    Lets a mapping problem be dumped to a `.lp` file and cross-checked
    with any external solver (cplex, gurobi, glpsol, scip all read this
    format), or simply eyeballed when debugging an unexpected mapping. *)

val to_string : Model.t -> string
(** The model as LP-format text: objective, constraints, bounds, and the
    binary/general-integer sections.  Rational coefficients are emitted
    as decimals with enough digits to round-trip the models Clara
    produces (integer-valued costs and small fractions). *)

val write_file : string -> Model.t -> unit
(** @raise Sys_error on IO failure. *)
