lib/ilp/lp.mli: Model Rat
