lib/ilp/model.ml: Array Format Lin_expr List Printf Rat
