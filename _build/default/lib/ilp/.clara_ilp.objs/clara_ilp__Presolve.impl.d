lib/ilp/presolve.ml: Array Lin_expr List Model Option Rat
