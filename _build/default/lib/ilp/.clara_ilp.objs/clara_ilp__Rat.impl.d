lib/ilp/rat.ml: Bigint Float Format Int64 Stdlib
