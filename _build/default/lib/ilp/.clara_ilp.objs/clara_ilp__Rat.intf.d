lib/ilp/rat.mli: Bigint Format
