lib/ilp/simplex.ml: Array List Model Rat
