lib/ilp/lp_format.ml: Bigint Buffer Fun Lin_expr List Model Printf Rat String
