lib/ilp/branch_bound.ml: Array Fun List Lp Model Presolve Rat
