lib/ilp/lin_expr.ml: Format Int List Map Option Rat
