lib/ilp/simplex.mli: Model Rat
