lib/ilp/model.mli: Format Lin_expr Rat
