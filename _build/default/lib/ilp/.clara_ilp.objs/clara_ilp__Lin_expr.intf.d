lib/ilp/lin_expr.mli: Format Rat
