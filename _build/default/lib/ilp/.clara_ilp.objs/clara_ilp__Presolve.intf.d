lib/ilp/presolve.mli: Model Rat
