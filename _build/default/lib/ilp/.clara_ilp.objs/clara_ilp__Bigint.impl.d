lib/ilp/bigint.ml: Array Buffer Char Format List Stdlib String
