lib/ilp/bigint.mli: Format
