lib/ilp/lp.ml: Array Lin_expr List Model Rat Simplex
