(** Exact rational numbers over {!Bigint}.

    Values are kept normalized: the denominator is strictly positive and
    numerator/denominator are coprime.  Exactness is what lets the simplex
    pivot without accumulating floating-point error, so the branch-and-bound
    integrality tests are decisive. *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den].  @raise Division_by_zero when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den].  @raise Division_by_zero when [den] is zero. *)

val of_bigint : Bigint.t -> t
val num : t -> Bigint.t
val den : t -> Bigint.t

val of_float : float -> t
(** Exact conversion of a finite float (binary expansion).
    @raise Invalid_argument on nan/infinity. *)

val to_float : t -> float

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer [<=] the value. *)

val ceil : t -> Bigint.t
(** Smallest integer [>=] the value. *)

val frac : t -> t
(** [frac x = x - floor x]; always in [[0, 1)]. *)

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val to_string : t -> string
val pp : Format.formatter -> t -> unit
