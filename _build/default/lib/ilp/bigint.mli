(** Arbitrary-precision signed integers.

    The exact rational arithmetic underlying the ILP solver needs integers
    that cannot overflow; OCaml's native [int] is not enough once simplex
    pivots start multiplying coefficients.  This module is a small,
    dependency-free bignum: little-endian magnitude in base 2^30 plus a
    sign. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t

val to_int_opt : t -> int option
(** [to_int_opt x] is [Some n] when [x] fits in a native [int]. *)

val to_int_exn : t -> int
(** @raise Failure when the value does not fit in a native [int]. *)

val of_string : string -> t
(** Accepts an optional leading ['-'] followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

val to_string : t -> string

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], [0 <= |r| < |b|] and
    [r] carrying the sign of [a] (truncated division, like [Int.div]).
    @raise Division_by_zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor; always non-negative, [gcd zero zero = zero]. *)

val mul_int : t -> int -> t
val pp : Format.formatter -> t -> unit
