module IntMap = Map.Make (Int)

type t = { coeffs : Rat.t IntMap.t; constant : Rat.t }

let zero = { coeffs = IntMap.empty; constant = Rat.zero }
let const c = { coeffs = IntMap.empty; constant = c }

let put v c m = if Rat.is_zero c then IntMap.remove v m else IntMap.add v c m

let var ?(coeff = Rat.one) v = { coeffs = put v coeff IntMap.empty; constant = Rat.zero }

let add_term e v c =
  let cur = Option.value ~default:Rat.zero (IntMap.find_opt v e.coeffs) in
  { e with coeffs = put v (Rat.add cur c) e.coeffs }

let add a b =
  let coeffs =
    IntMap.union (fun _ ca cb ->
        let s = Rat.add ca cb in
        if Rat.is_zero s then None else Some s)
      a.coeffs b.coeffs
  in
  { coeffs; constant = Rat.add a.constant b.constant }

let scale k e =
  if Rat.is_zero k then zero
  else
    { coeffs = IntMap.map (Rat.mul k) e.coeffs;
      constant = Rat.mul k e.constant }

let sub a b = add a (scale Rat.minus_one b)

let coeff e v = Option.value ~default:Rat.zero (IntMap.find_opt v e.coeffs)
let constant e = e.constant
let fold f e acc = IntMap.fold f e.coeffs acc
let terms e = IntMap.bindings e.coeffs

let eval assign e =
  IntMap.fold (fun v c acc -> Rat.add acc (Rat.mul c (assign v))) e.coeffs e.constant

let sum es = List.fold_left add zero es

let of_terms ?(constant = Rat.zero) ts =
  List.fold_left (fun e (v, c) -> add_term e v c) (const constant) ts

let pp fmt e =
  let first = ref true in
  IntMap.iter
    (fun v c ->
      if not !first then Format.fprintf fmt " + ";
      first := false;
      Format.fprintf fmt "%a*x%d" Rat.pp c v)
    e.coeffs;
  if not (Rat.is_zero e.constant) || !first then begin
    if not !first then Format.fprintf fmt " + ";
    Rat.pp fmt e.constant
  end
