(** LP relaxation of a {!Model}: variable bounds and the objective
    direction are compiled away to the non-negative standard form
    {!Simplex} expects, and solutions are translated back. *)

type status = Optimal | Infeasible | Unbounded

type result = {
  status : status;
  objective : Rat.t;     (** In the model's own direction. *)
  values : Rat.t array;  (** One value per model variable. *)
}

val solve : ?bounds:(Rat.t * Rat.t option) array -> Model.t -> result
(** [solve ?bounds m] solves the continuous relaxation (integrality is
    ignored).  [bounds] overrides the per-variable bounds — this is how
    {!Branch_bound} expresses branching decisions without copying the
    model. *)
