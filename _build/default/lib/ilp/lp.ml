type status = Optimal | Infeasible | Unbounded

type result = { status : status; objective : Rat.t; values : Rat.t array }

let solve ?bounds model =
  let nv = Model.num_vars model in
  let bounds =
    match bounds with
    | Some b ->
        if Array.length b <> nv then invalid_arg "Lp.solve: bounds arity";
        b
    | None -> Array.init nv (fun v -> Model.var_bounds model v)
  in
  (* Empty bound intervals mean immediate infeasibility. *)
  let empty =
    Array.exists
      (fun (lb, ub) -> match ub with Some u -> Rat.( < ) u lb | None -> false)
      bounds
  in
  if empty then { status = Infeasible; objective = Rat.zero; values = Array.make nv Rat.zero }
  else begin
    (* Shift: x_v = y_v + lb_v with y_v >= 0. *)
    let lbs = Array.map fst bounds in
    let shift_expr e =
      (* a.x = a.y + a.lb : returns coefficient array over y and the
         constant a.lb. *)
      let coeffs = Array.make nv Rat.zero in
      let const = ref (Lin_expr.constant e) in
      Lin_expr.fold
        (fun v c () ->
          coeffs.(v) <- c;
          const := Rat.add !const (Rat.mul c lbs.(v)))
        e ();
      (coeffs, !const)
    in
    let rows = ref [] in
    Model.iter_constraints model (fun ~name:_ e sense rhs ->
        let coeffs, const = shift_expr e in
        rows := { Simplex.coeffs; sense; rhs = Rat.sub rhs const } :: !rows);
    (* Upper bounds become explicit rows on y. *)
    Array.iteri
      (fun v (lb, ub) ->
        match ub with
        | None -> ()
        | Some u ->
            let coeffs = Array.make nv Rat.zero in
            coeffs.(v) <- Rat.one;
            rows := { Simplex.coeffs; sense = Model.Le; rhs = Rat.sub u lb } :: !rows)
      bounds;
    let dir, obj_expr = Model.objective model in
    let c, obj_shift = shift_expr obj_expr in
    let c = match dir with Model.Minimize -> c | Model.Maximize -> Array.map Rat.neg c in
    let r = Simplex.solve ~c ~rows:(List.rev !rows) in
    let values = Array.mapi (fun v y -> Rat.add y lbs.(v)) r.solution in
    match r.status with
    | Simplex.Infeasible ->
        { status = Infeasible; objective = Rat.zero; values }
    | Simplex.Unbounded -> { status = Unbounded; objective = Rat.zero; values }
    | Simplex.Optimal ->
        let value =
          match dir with
          | Model.Minimize -> Rat.add r.objective obj_shift
          | Model.Maximize -> Rat.add (Rat.neg r.objective) obj_shift
        in
        { status = Optimal; objective = value; values }
  end
