(* LP-format writer.  Variable names come from the model; names that the
   format would reject (empty, starting with a digit, containing spaces)
   are replaced by x<i>. *)

let safe_name m v =
  let n = Model.var_name m v in
  let ok =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true | _ -> false)
         n
  in
  if ok then n else Printf.sprintf "x%d" v

let rat_to_decimal r =
  (* Exact when the denominator divides a power of 10 we can afford;
     otherwise 12 significant digits (plenty for Clara's cost models). *)
  if Rat.is_integer r then Bigint.to_string (Rat.num r)
  else Printf.sprintf "%.12g" (Rat.to_float r)

let emit_expr m buf e =
  let first = ref true in
  Lin_expr.fold
    (fun v c () ->
      let s = Rat.sign c in
      if s <> 0 then begin
        if !first then begin
          if s < 0 then Buffer.add_string buf "- "
        end
        else Buffer.add_string buf (if s < 0 then " - " else " + ");
        first := false;
        let mag = Rat.abs c in
        if not (Rat.equal mag Rat.one) then begin
          Buffer.add_string buf (rat_to_decimal mag);
          Buffer.add_char buf ' '
        end;
        Buffer.add_string buf (safe_name m v)
      end)
    e ();
  if !first then Buffer.add_string buf "0"

let to_string m =
  let buf = Buffer.create 1024 in
  let dir, obj = Model.objective m in
  Buffer.add_string buf
    (match dir with Model.Minimize -> "Minimize\n" | Model.Maximize -> "Maximize\n");
  Buffer.add_string buf " obj: ";
  emit_expr m buf obj;
  Buffer.add_string buf "\nSubject To\n";
  Model.iter_constraints m (fun ~name e sense rhs ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      emit_expr m buf e;
      Buffer.add_string buf
        (match sense with Model.Le -> " <= " | Model.Ge -> " >= " | Model.Eq -> " = ");
      Buffer.add_string buf (rat_to_decimal rhs);
      Buffer.add_char buf '\n');
  Buffer.add_string buf "Bounds\n";
  let binaries = ref [] and integers = ref [] in
  for v = 0 to Model.num_vars m - 1 do
    (match Model.var_type m v with
    | Model.Binary -> binaries := v :: !binaries
    | Model.Integer -> integers := v :: !integers
    | Model.Continuous -> ());
    if Model.var_type m v <> Model.Binary then begin
      let lb, ub = Model.var_bounds m v in
      Buffer.add_char buf ' ';
      Buffer.add_string buf (rat_to_decimal lb);
      Buffer.add_string buf " <= ";
      Buffer.add_string buf (safe_name m v);
      (match ub with
      | Some u ->
          Buffer.add_string buf " <= ";
          Buffer.add_string buf (rat_to_decimal u)
      | None -> ());
      Buffer.add_char buf '\n'
    end
  done;
  let emit_section header vars =
    match List.rev vars with
    | [] -> ()
    | vs ->
        Buffer.add_string buf header;
        List.iter
          (fun v ->
            Buffer.add_char buf ' ';
            Buffer.add_string buf (safe_name m v))
          vs;
        Buffer.add_char buf '\n'
  in
  emit_section "Binary\n" !binaries;
  emit_section "General\n" !integers;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write_file path m =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string m))
