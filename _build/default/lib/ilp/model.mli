(** Declarative (mixed) integer linear programs.

    A model collects variables with bounds and types, linear constraints
    and an objective.  It is solved either as an LP relaxation ({!Lp}) or
    exactly ({!Branch_bound}).  Variable lower bounds must be finite
    (default 0); this covers every model Clara emits, where variables are
    0/1 placements, non-negative latencies or queue depths. *)

type t

type vtype = Continuous | Integer | Binary
type sense = Le | Ge | Eq
type direction = Minimize | Maximize

type var = int
(** Variable ids are dense, starting at 0, usable in {!Lin_expr}. *)

val create : unit -> t

val add_var :
  ?name:string -> ?lb:Rat.t -> ?ub:Rat.t -> t -> vtype -> var
(** [lb] defaults to 0 (and to 0/1 for [Binary], whose bounds are fixed).
    No [ub] means unbounded above. *)

val add_constraint : ?name:string -> t -> Lin_expr.t -> sense -> Rat.t -> unit
(** [add_constraint m e sense rhs] adds [e (sense) rhs]; the constant term
    of [e] is moved to the right-hand side. *)

val set_objective : t -> direction -> Lin_expr.t -> unit

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string
val var_type : t -> var -> vtype
val var_bounds : t -> var -> Rat.t * Rat.t option
val objective : t -> direction * Lin_expr.t

val iter_constraints :
  t -> (name:string -> Lin_expr.t -> sense -> Rat.t -> unit) -> unit

val check : t -> Rat.t array -> bool
(** [check m x] tells whether assignment [x] satisfies every constraint,
    bound, and integrality requirement of [m]. *)

val pp : Format.formatter -> t -> unit
