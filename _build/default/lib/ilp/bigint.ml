(* Arbitrary-precision integers: sign + little-endian magnitude, base 2^30.
   Base 2^30 keeps digit products within the 63-bit native range
   (2^30 * 2^30 = 2^60, leaving headroom for carry accumulation). *)

let base_bits = 30
let base = 1 lsl base_bits
let base_mask = base - 1

type t = {
  sign : int; (* -1, 0, 1; sign = 0 iff mag = [||] *)
  mag : int array; (* little-endian digits in [0, base), no leading zeros *)
}

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  (* Strip leading (most significant) zero digits; canonicalize zero. *)
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* -2^62 on 64-bit platforms: 2^62 = (1 lsl 2) in digit 2's position
       plus zeros, since 62 = 2*30 + 2. *)
    { sign = -1; mag = [| 0; 0; 4 |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let n = Stdlib.abs n in
    let rec digits acc n =
      if n = 0 then List.rev acc
      else digits ((n land base_mask) :: acc) (n lsr base_bits)
    in
    normalize sign (Array.of_list (digits [] n))
  end

let one = of_int 1
let minus_one = of_int (-1)
let sign t = t.sign
let is_zero t = t.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Stdlib.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Stdlib.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let compare a b =
  if a.sign <> b.sign then Stdlib.compare a.sign b.sign
  else if a.sign >= 0 then compare_mag a.mag b.mag
  else compare_mag b.mag a.mag

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc d -> (acc * 31 + d) land max_int) (t.sign + 1) t.mag

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  assert (!carry = 0);
  r

(* requires |a| >= |b| *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  r

let neg t = if t.sign = 0 then t else { t with sign = -t.sign }
let abs t = if t.sign < 0 then neg t else t

let rec add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then normalize a.sign (add_mag a.mag b.mag)
  else begin
    let c = compare_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then normalize a.sign (sub_mag a.mag b.mag)
    else normalize b.sign (sub_mag b.mag a.mag)
  end

and sub a b = add a (neg b)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then [||]
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let s = r.(i + j) + (ai * b.(j)) + !carry in
        r.(i + j) <- s land base_mask;
        carry := s lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let s = r.(!k) + !carry in
        r.(!k) <- s land base_mask;
        carry := s lsr base_bits;
        incr k
      done
    done;
    r
  end

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero
  else normalize (a.sign * b.sign) (mul_mag a.mag b.mag)

let mul_int a n = mul a (of_int n)

(* Divide magnitude by a single digit (0 < d < base); returns quotient
   magnitude and remainder int. *)
let divmod_mag_digit a d =
  let la = Array.length a in
  let q = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    q.(i) <- cur / d;
    rem := cur mod d
  done;
  (q, !rem)

(* Long division on magnitudes, schoolbook with digit estimation.
   Works on base-2^30 digits; simple shift-and-subtract would be O(bits^2)
   with large constants, so we use per-digit trial division after
   normalizing the divisor's top digit. *)
let divmod_mag a b =
  let lb = Array.length b in
  if lb = 0 then raise Division_by_zero;
  if compare_mag a b < 0 then ([||], Array.copy a)
  else if lb = 1 then begin
    let q, r = divmod_mag_digit a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  end else begin
    (* Knuth algorithm D, simplified: normalize so top divisor digit
       >= base/2, then estimate each quotient digit from the top two
       dividend digits. *)
    let shift =
      let rec f s top = if top >= base / 2 then s else f (s + 1) (top * 2) in
      f 0 b.(lb - 1)
    in
    let shl_mag m s =
      if s = 0 then Array.copy m
      else begin
        let lm = Array.length m in
        let r = Array.make (lm + 1) 0 in
        let carry = ref 0 in
        for i = 0 to lm - 1 do
          let v = (m.(i) lsl s) lor !carry in
          r.(i) <- v land base_mask;
          carry := v lsr base_bits
        done;
        r.(lm) <- !carry;
        r
      end
    in
    let shr_mag m s =
      if s = 0 then Array.copy m
      else begin
        let lm = Array.length m in
        let r = Array.make lm 0 in
        let carry = ref 0 in
        for i = lm - 1 downto 0 do
          let v = m.(i) in
          r.(i) <- (v lsr s) lor (!carry lsl (base_bits - s));
          carry := v land ((1 lsl s) - 1)
        done;
        r
      end
    in
    let u = shl_mag a shift in
    let v = shl_mag b shift in
    (* trim v's possible leading zero *)
    let lv =
      let n = ref (Array.length v) in
      while !n > 0 && v.(!n - 1) = 0 do decr n done;
      !n
    in
    let v = Array.sub v 0 lv in
    let lu = Array.length u in
    let n = lv and m = lu - lv in
    let q = Array.make (m + 1) 0 in
    (* u has an extra slot for the running remainder window *)
    let u = Array.append u [| 0 |] in
    let vtop = v.(n - 1) in
    let vsec = if n >= 2 then v.(n - 2) else 0 in
    for j = m downto 0 do
      (* estimate qhat from top two digits of the current window *)
      let top2 = (u.(j + n) lsl base_bits) lor u.(j + n - 1) in
      let qhat = ref (top2 / vtop) in
      let rhat = ref (top2 mod vtop) in
      if !qhat >= base then begin
        qhat := base - 1;
        rhat := top2 - !qhat * vtop
      end;
      let continue_adjust = ref true in
      while !continue_adjust do
        if !rhat < base
           && !qhat * vsec > (!rhat lsl base_bits) lor (if j + n - 2 >= 0 then u.(j + n - 2) else 0)
        then begin
          decr qhat;
          rhat := !rhat + vtop;
          if !rhat >= base then continue_adjust := false
        end
        else continue_adjust := false
      done;
      (* multiply-subtract qhat * v from u[j .. j+n] *)
      let borrow = ref 0 and carry = ref 0 in
      for i = 0 to n - 1 do
        let p = !qhat * v.(i) + !carry in
        carry := p lsr base_bits;
        let d = u.(i + j) - (p land base_mask) - !borrow in
        if d < 0 then begin
          u.(i + j) <- d + base;
          borrow := 1
        end else begin
          u.(i + j) <- d;
          borrow := 0
        end
      done;
      let d = u.(j + n) - !carry - !borrow in
      if d < 0 then begin
        (* qhat was one too large: add back *)
        u.(j + n) <- d + base;
        decr qhat;
        let carry2 = ref 0 in
        for i = 0 to n - 1 do
          let s = u.(i + j) + v.(i) + !carry2 in
          u.(i + j) <- s land base_mask;
          carry2 := s lsr base_bits
        done;
        u.(j + n) <- (u.(j + n) + !carry2) land base_mask
      end
      else u.(j + n) <- d;
      q.(j) <- !qhat
    done;
    let r = shr_mag (Array.sub u 0 n) shift in
    (q, r)
  end

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  if a.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag a.mag b.mag in
    let q = normalize (a.sign * b.sign) qm in
    let r = normalize a.sign rm in
    (q, r)
  end

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)

let rec gcd a b =
  let a = abs a and b = abs b in
  if is_zero b then a else gcd b (rem a b)

let max_int_big = of_int max_int
let min_int_big = of_int min_int

let to_int_opt t =
  if compare t min_int_big >= 0 && compare t max_int_big <= 0 then begin
    let v = Array.fold_right (fun d acc -> (acc lsl base_bits) lor d) t.mag 0 in
    Some (if t.sign < 0 then -v else v)
  end
  else None

let to_int_exn t =
  match to_int_opt t with
  | Some n -> n
  | None -> failwith "Bigint.to_int_exn: value does not fit in int"

let ten = of_int 10

let to_string t =
  if t.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go x =
      if is_zero x then ()
      else begin
        let q, r = divmod x ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
      end
    in
    go (abs t);
    (if t.sign < 0 then "-" else "") ^ Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let neg_sign, start = if s.[0] = '-' then (true, 1) else (false, 0) in
  if start >= len then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  for i = start to len - 1 do
    let c = s.[i] in
    if c < '0' || c > '9' then invalid_arg "Bigint.of_string: non-digit";
    acc := add (mul !acc ten) (of_int (Char.code c - Char.code '0'))
  done;
  if neg_sign then neg !acc else !acc

let pp fmt t = Format.pp_print_string fmt (to_string t)
