(** Exact branch-and-bound over the {!Lp} relaxation.

    Because the relaxation is solved in exact rational arithmetic, the
    integrality test ([Rat.is_integer]) is never confused by round-off,
    and the returned solution is a true optimum of the mixed-integer
    model. *)

type status = Optimal | Infeasible | Unbounded

type outcome = {
  status : status;
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;          (** Number of branch-and-bound nodes explored. *)
}

exception Node_limit_exceeded

val solve : ?node_limit:int -> Model.t -> outcome
(** Runs {!Presolve} first (tightened bounds shrink the tree; proven
    infeasibility skips the search entirely), then depth-first branch and
    bound on the LP relaxation.  [node_limit] defaults to 200_000.
    @raise Node_limit_exceeded when the search exceeds it. *)
