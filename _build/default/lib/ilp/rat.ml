(* Normalized rationals: den > 0, gcd (|num|, den) = 1. *)

module B = Bigint

type t = { n : B.t; d : B.t }

let normalize n d =
  if B.is_zero d then raise Division_by_zero;
  if B.is_zero n then { n = B.zero; d = B.one }
  else begin
    let n, d = if B.sign d < 0 then (B.neg n, B.neg d) else (n, d) in
    let g = B.gcd n d in
    if B.equal g B.one then { n; d } else { n = B.div n g; d = B.div d g }
  end

let make n d = normalize n d
let zero = { n = B.zero; d = B.one }
let of_bigint n = { n; d = B.one }
let of_int i = of_bigint (B.of_int i)
let of_ints n d = normalize (B.of_int n) (B.of_int d)
let one = of_int 1
let minus_one = of_int (-1)
let num t = t.n
let den t = t.d
let sign t = B.sign t.n
let is_zero t = B.is_zero t.n
let is_integer t = B.equal t.d B.one

let equal a b = B.equal a.n b.n && B.equal a.d b.d

let compare a b =
  (* a.n/a.d ? b.n/b.d  <=>  a.n*b.d ? b.n*a.d  (denominators positive) *)
  B.compare (B.mul a.n b.d) (B.mul b.n a.d)

let neg t = { t with n = B.neg t.n }
let abs t = { t with n = B.abs t.n }

let inv t =
  if is_zero t then raise Division_by_zero;
  normalize t.d t.n

let add a b = normalize (B.add (B.mul a.n b.d) (B.mul b.n a.d)) (B.mul a.d b.d)
let sub a b = add a (neg b)
let mul a b = normalize (B.mul a.n b.n) (B.mul a.d b.d)
let div a b = mul a (inv b)
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

let floor t =
  let q, r = B.divmod t.n t.d in
  if B.sign r < 0 then B.sub q B.one else q

let ceil t =
  let q, r = B.divmod t.n t.d in
  if B.sign r > 0 then B.add q B.one else q

let frac t = sub t (of_bigint (floor t))

let to_float t =
  (* Good enough for reporting: divide as floats of the decimal strings.
     Large values lose precision but ordering decisions never use this. *)
  float_of_string (B.to_string t.n) /. float_of_string (B.to_string t.d)

let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite";
  if Float.is_integer f && Float.abs f < 1e15 then of_int (int_of_float f)
  else begin
    let m, e = Float.frexp f in
    (* f = m * 2^e with 0.5 <= |m| < 1; scale mantissa to an integer. *)
    let mi = Int64.to_int (Int64.of_float (m *. 9007199254740992.0)) in
    (* 2^53 *)
    let e = e - 53 in
    let two = B.of_int 2 in
    let rec pow b k = if k = 0 then B.one else B.mul b (pow b (k - 1)) in
    if e >= 0 then of_bigint (B.mul (B.of_int mi) (pow two e))
    else make (B.of_int mi) (pow two (-e))
  end

let to_string t =
  if is_integer t then B.to_string t.n
  else B.to_string t.n ^ "/" ^ B.to_string t.d

let pp fmt t = Format.pp_print_string fmt (to_string t)

let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( = ) = equal
let ( < ) a b = Stdlib.( < ) (compare a b) 0
let ( <= ) a b = Stdlib.( <= ) (compare a b) 0
let ( > ) a b = Stdlib.( > ) (compare a b) 0
let ( >= ) a b = Stdlib.( >= ) (compare a b) 0
