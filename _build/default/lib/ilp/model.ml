type vtype = Continuous | Integer | Binary
type sense = Le | Ge | Eq
type direction = Minimize | Maximize
type var = int

type vinfo = { vname : string; lb : Rat.t; ub : Rat.t option; vtype : vtype }
type cons = { cname : string; expr : Lin_expr.t; csense : sense; rhs : Rat.t }

type t = {
  mutable vars : vinfo list; (* reversed *)
  mutable nvars : int;
  mutable conss : cons list; (* reversed *)
  mutable nconss : int;
  mutable obj : direction * Lin_expr.t;
}

let create () =
  { vars = []; nvars = 0; conss = []; nconss = 0; obj = (Minimize, Lin_expr.zero) }

let add_var ?name ?(lb = Rat.zero) ?ub m vtype =
  let id = m.nvars in
  let vname = match name with Some n -> n | None -> Printf.sprintf "x%d" id in
  let lb, ub =
    match vtype with Binary -> (Rat.zero, Some Rat.one) | Continuous | Integer -> (lb, ub)
  in
  m.vars <- { vname; lb; ub; vtype } :: m.vars;
  m.nvars <- id + 1;
  id

let add_constraint ?name m expr csense rhs =
  let cname =
    match name with Some n -> n | None -> Printf.sprintf "c%d" m.nconss
  in
  (* Move the expression's constant to the rhs so rows are pure linear
     forms. *)
  let k = Lin_expr.constant expr in
  let expr = Lin_expr.sub expr (Lin_expr.const k) in
  let rhs = Rat.sub rhs k in
  m.conss <- { cname; expr; csense; rhs } :: m.conss;
  m.nconss <- m.nconss + 1

let set_objective m dir e = m.obj <- (dir, e)
let num_vars m = m.nvars
let num_constraints m = m.nconss

let var_array m = Array.of_list (List.rev m.vars)

let nth_var m v =
  if v < 0 || v >= m.nvars then invalid_arg "Model: bad variable id";
  List.nth (List.rev m.vars) v

let var_name m v = (nth_var m v).vname
let var_type m v = (nth_var m v).vtype
let var_bounds m v =
  let i = nth_var m v in
  (i.lb, i.ub)

let objective m = m.obj

let iter_constraints m f =
  List.iter (fun c -> f ~name:c.cname c.expr c.csense c.rhs) (List.rev m.conss)

let check m x =
  if Array.length x <> m.nvars then false
  else begin
    let vars = var_array m in
    let bounds_ok =
      Array.for_all2
        (fun info v ->
          Rat.( >= ) v info.lb
          && (match info.ub with None -> true | Some u -> Rat.( <= ) v u)
          && (match info.vtype with
             | Continuous -> true
             | Integer | Binary -> Rat.is_integer v))
        vars x
    in
    let cons_ok =
      List.for_all
        (fun c ->
          let lhs = Lin_expr.eval (fun v -> x.(v)) c.expr in
          match c.csense with
          | Le -> Rat.( <= ) lhs c.rhs
          | Ge -> Rat.( >= ) lhs c.rhs
          | Eq -> Rat.( = ) lhs c.rhs)
        m.conss
    in
    bounds_ok && cons_ok
  end

let pp_sense fmt = function
  | Le -> Format.pp_print_string fmt "<="
  | Ge -> Format.pp_print_string fmt ">="
  | Eq -> Format.pp_print_string fmt "="

let pp fmt m =
  let dir, obj = m.obj in
  Format.fprintf fmt "%s %a@."
    (match dir with Minimize -> "minimize" | Maximize -> "maximize")
    Lin_expr.pp obj;
  iter_constraints m (fun ~name e s rhs ->
      Format.fprintf fmt "  %s: %a %a %a@." name Lin_expr.pp e pp_sense s Rat.pp rhs);
  Array.iteri
    (fun i info ->
      Format.fprintf fmt "  %s (x%d): %a <= . %s, %s@." info.vname i Rat.pp info.lb
        (match info.ub with None -> "<= +inf" | Some u -> "<= " ^ Rat.to_string u)
        (match info.vtype with
        | Continuous -> "cont"
        | Integer -> "int"
        | Binary -> "bin"))
    (var_array m)
