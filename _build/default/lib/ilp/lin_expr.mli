(** Sparse linear expressions over integer-indexed variables.

    An expression is a finite map from variable ids to rational
    coefficients plus a constant term.  Variable ids are allocated by
    {!Model.add_var}. *)

type t

val zero : t
val const : Rat.t -> t
val var : ?coeff:Rat.t -> int -> t
(** [var ~coeff v] is [coeff * x_v]; [coeff] defaults to 1. *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val add_term : t -> int -> Rat.t -> t
(** [add_term e v c] is [e + c * x_v]. *)

val coeff : t -> int -> Rat.t
(** Coefficient of a variable (zero when absent). *)

val constant : t -> Rat.t
val fold : (int -> Rat.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over non-zero terms in increasing variable order. *)

val terms : t -> (int * Rat.t) list
val eval : (int -> Rat.t) -> t -> Rat.t
(** Evaluate under an assignment of variables to values. *)

val sum : t list -> t
val of_terms : ?constant:Rat.t -> (int * Rat.t) list -> t
val pp : Format.formatter -> t -> unit
