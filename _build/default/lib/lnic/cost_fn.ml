type t = { base : float; per_unit : float; log2_coeff : float }

let const base = { base; per_unit = 0.; log2_coeff = 0. }
let linear ~base ~per_unit = { base; per_unit; log2_coeff = 0. }
let logarithmic ~base ~log2_coeff = { base; per_unit = 0.; log2_coeff }

let eval f n =
  let n = if n < 0. then 0. else n in
  f.base +. (f.per_unit *. n) +. (f.log2_coeff *. (Float.log2 (1. +. n)))

let eval_int f n =
  let v = eval f (float_of_int n) in
  if v <= 0. then 0 else int_of_float (Float.round v)

let add a b =
  { base = a.base +. b.base;
    per_unit = a.per_unit +. b.per_unit;
    log2_coeff = a.log2_coeff +. b.log2_coeff }

let scale k f =
  { base = k *. f.base; per_unit = k *. f.per_unit; log2_coeff = k *. f.log2_coeff }

let pp fmt f =
  Format.fprintf fmt "%.1f + %.3f*n + %.1f*log2(1+n)" f.base f.per_unit f.log2_coeff
