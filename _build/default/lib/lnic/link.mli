(** Edges of the LNIC graph (§3.1).

    - [Access (c, m)]: memory bus from compute unit [c] to region [m];
      the weight captures NUMA effects (crossing islands costs extra).
    - [Hierarchy (m1, m2)]: eviction/fetch direction in the memory
      hierarchy.
    - [Pipeline (c1, c2)]: unidirectional staged execution between compute
      units.
    - [Hub_edge (h, e)]: hub attachment, optionally carrying a queue. *)

type endpoint = U of int | M of int | H of int
(** Typed ids into {!Graph.t}'s unit/memory/hub tables. *)

type kind =
  | Access of int * int     (** unit id, memory id *)
  | Hierarchy of int * int  (** memory id, memory id (closer, farther) *)
  | Pipeline of int * int   (** unit id, unit id *)
  | Hub_edge of int * endpoint (** hub id, attached endpoint *)

type t = {
  kind : kind;
  weight_cycles : int;
      (** Extra cycles on top of the endpoint's base cost (NUMA penalty,
          fabric hop). *)
}

val src : t -> endpoint
val dst : t -> endpoint
val pp : Format.formatter -> t -> unit
