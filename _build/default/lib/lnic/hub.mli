(** Switching hubs: embedded NIC switches and traffic managers (§3.1).

    Hubs move packets between the wire, compute units and the host.  Edges
    touching a hub may carry packet queues; the Θ constraints (§3.4) come
    from their capacities and disciplines. *)

type discipline =
  | Fifo
  | Priority of int  (** Number of priority classes. *)

type t = {
  id : int;
  name : string;
  kind : [ `Ingress | `Egress | `Fabric | `Host_dma ];
  queue_capacity : int;   (** Packets queueable before drop/backpressure. *)
  discipline : discipline;
  per_packet_cycles : int; (** Switching cost per packet. *)
}

val pp : Format.formatter -> t -> unit
