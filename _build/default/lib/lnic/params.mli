(** Performance parameters annotating an LNIC (§3.2).

    Two kinds of annotations: architectural (sizes, parallelism, queue
    capacities — stored on the graph nodes themselves) and performance
    (instruction cycle costs, accelerator cost functions — stored here).
    In the paper these come from vendor databooks plus one-time hardware
    microbenchmarks; in this reproduction they are calibrated against
    {!Clara_nicsim} by [Clara.Microbench], and the defaults encode the
    values the paper reports for Netronome Agilio. *)

(** Instruction classes a CIR instruction lowers to.  Memory latency is
    *not* folded into [Load]/[Store]: the issue cost lives here and the
    region-dependent latency is added by the mapping/prediction layers,
    which know the placement. *)
type op_class =
  | Alu      (** add/sub/logic/compare *)
  | Mul
  | Div
  | Fp       (** floating point; emulated on cores without FPUs (§3.4) *)
  | Move     (** register/metadata moves (2–5 cycles on NPUs, §3.2) *)
  | Branch
  | Hash     (** hash of a small key, e.g. for flow tables *)
  | Load
  | Store
  | Atomic
  | Call     (** intra-program call/return overhead *)

(** Virtual calls: framework API calls recognized in the CIR and bound to
    NIC components late (§3.3).  The size argument fed to the cost
    function is noted per constructor. *)
type vcall =
  | V_parse_header   (** size = header bytes *)
  | V_modify_header  (** size = fields modified *)
  | V_checksum       (** size = bytes covered *)
  | V_crypto         (** size = bytes *)
  | V_table_lookup   (** hash/exact-match table; size = table entries *)
  | V_lpm_lookup     (** longest-prefix match; size = table entries *)
  | V_table_update   (** size = table entries *)
  | V_payload_scan   (** size = payload bytes (DPI) *)
  | V_meter          (** size = 1 *)
  | V_flow_stats     (** size = 1 *)
  | V_emit           (** size = packet bytes *)
  | V_drop

type t = {
  pname : string;
  core_op_cycles : (op_class * float) list;
      (** Cycle cost of each op class on a general core. *)
  fpu_emulation_factor : float;
      (** Multiplier applied to [Fp] on cores lacking an FPU. *)
  core_vcalls : (vcall * Cost_fn.t) list;
      (** Software implementations on a general core (memory-hierarchy
          costs not included; added per placement). *)
  accel_vcalls : (Unit_.accel_kind * (vcall * Cost_fn.t) list) list;
      (** What each accelerator kind can execute, and for how much. *)
  accel_sram_bytes : (Unit_.accel_kind * int) list;
      (** Dedicated SRAM capacity of stateful accelerators (e.g. the
          flow-cache table); states beyond this cannot live on the
          accelerator. *)
  packet_ctm_threshold : int;
      (** Packets up to this many bytes reside entirely in cluster memory;
          larger tails spill to external memory (§3.2: 1 kB). *)
  wire_ingress : Cost_fn.t;
      (** Wire->NIC receive cost as a function of packet bytes
          (store-and-forward DMA into cluster memory). *)
  wire_egress : Cost_fn.t;
}

val op_cost : t -> op_class -> has_fpu:bool -> float
(** @raise Not_found if the op class is missing from the table
    (a malformed parameter set). *)

val core_vcall_cost : t -> vcall -> Cost_fn.t option
val accel_vcall_cost : t -> Unit_.accel_kind -> vcall -> Cost_fn.t option
val accel_sram : t -> Unit_.accel_kind -> int
(** 0 when the accelerator holds no state. *)

val vcall_name : vcall -> string
val op_name : op_class -> string
val all_op_classes : op_class list
val all_vcalls : vcall list
