(** An x86 server modeled in the LNIC vocabulary.

    Not a NIC — but the graph abstraction (cores, memory hierarchy,
    parameter tables) describes a host just as well, which is exactly
    what partial-offloading analysis needs (§6: one component resident
    on the SmartNIC and another in server CPUs).  High-clock cores with
    FPUs and deep caches; no packet accelerators; "wire" costs model the
    kernel-bypass driver path. *)

val create : ?cores:int -> unit -> Graph.t
(** Default: 6 cores at 3.4 GHz, 2 SMT threads each (the paper's testbed
    uses Xeon E5-2643 quad-cores at 3.40 GHz). *)

val default : Graph.t

val pcie_roundtrip_ns : float
(** NIC→host→NIC PCIe crossing latency added per packet that continues
    processing on the host (~1.8 us: DMA, doorbell and completion each way). *)
