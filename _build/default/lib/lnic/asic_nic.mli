(** A programmable-ASIC, pipeline-style SmartNIC (§2.1's third design
    point: "programmable ASICs", and §6's "some SmartNICs only support
    run-to-completion packet processing, whereas others can additionally
    support pipelined processing").

    The datapath is a fixed pipeline: parser → four match/action stages →
    deparser.  Stage processors execute simple header arithmetic at line
    rate but have no payload access, no division, no floats, and no
    software fallbacks: NFs that need payload scans, crypto or software
    checksums are simply *unmappable* — Clara reports the port as
    infeasible rather than predicting a number, which is itself the
    useful answer (§1: decide whether to offload). *)

val create : unit -> Graph.t
val default : Graph.t
