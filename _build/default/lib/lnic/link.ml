type endpoint = U of int | M of int | H of int

type kind =
  | Access of int * int
  | Hierarchy of int * int
  | Pipeline of int * int
  | Hub_edge of int * endpoint

type t = { kind : kind; weight_cycles : int }

let src t =
  match t.kind with
  | Access (u, _) -> U u
  | Hierarchy (m, _) -> M m
  | Pipeline (u, _) -> U u
  | Hub_edge (h, _) -> H h

let dst t =
  match t.kind with
  | Access (_, m) -> M m
  | Hierarchy (_, m) -> M m
  | Pipeline (_, u) -> U u
  | Hub_edge (_, e) -> e

let pp_endpoint fmt = function
  | U i -> Format.fprintf fmt "u%d" i
  | M i -> Format.fprintf fmt "m%d" i
  | H i -> Format.fprintf fmt "h%d" i

let pp fmt t =
  let arrow =
    match t.kind with
    | Access _ -> "<->"
    | Hierarchy _ -> "~>"
    | Pipeline _ -> "->"
    | Hub_edge _ -> "--"
  in
  Format.fprintf fmt "%a %s %a (+%dcyc)" pp_endpoint (src t) arrow pp_endpoint (dst t)
    t.weight_cycles
