(** An ARM-SoC SmartNIC instance (BlueField/LiquidIO-like).

    The contrast with {!Netronome} exercises Clara's "which NIC suits my
    workload" use case (§1, §6): fewer but faster general cores with FPUs
    and a conventional cache hierarchy, crypto/checksum offloads, but no
    hardware match/action or flow-cache engine — so table-heavy NFs that
    shine on the Netronome-like target pay full software cost here, while
    compute-heavy NFs benefit from the higher clock. *)

val create : ?cores:int -> unit -> Graph.t
(** Default: 8 ARM cores at 2 GHz, 2 threads each. *)

val default : Graph.t
