(** A Netronome Agilio-CX-40G-like LNIC instance.

    Topology and parameters follow the paper's §3.1–3.2 description:
    NPU islands sharing Cluster Target Memory, IMEM/EMEM behind a switch
    fabric, ingress match/action + checksum engines, a crypto accelerator
    and a flow-cache lookup engine.  Cycle numbers are the ones the paper
    reports (local 4 kB @1–3 cyc, CTM 256 kB @50 cyc, IMEM 4 MB @250 cyc,
    EMEM 8 GB @500 cyc with a 3 MB cache; header parse ≈150 cyc; metadata
    ops 2–5 cyc; ingress checksum ≈300 cyc @1000 B vs ≈+1700 cyc in
    software). *)

val create : ?islands:int -> ?npus_per_island:int -> unit -> Graph.t
(** Defaults: 5 islands × 12 NPUs (8 threads each, 800 MHz, no FPU) —
    60 microengines, in the NFP-4000's range. *)

val default : Graph.t
(** [create ()] memoized. *)

(** Well-known unit ids within {!default} (also valid for any [create]
    result): accelerators come after the NPUs in id order; use
    {!Graph.find_accelerator} rather than hard-coding ids. *)

val ctm_of_island : Graph.t -> int -> Memory.t
(** The CTM region of an island.  @raise Not_found if absent. *)

val imem : Graph.t -> Memory.t
val emem : Graph.t -> Memory.t
