type op_class =
  | Alu
  | Mul
  | Div
  | Fp
  | Move
  | Branch
  | Hash
  | Load
  | Store
  | Atomic
  | Call

type vcall =
  | V_parse_header
  | V_modify_header
  | V_checksum
  | V_crypto
  | V_table_lookup
  | V_lpm_lookup
  | V_table_update
  | V_payload_scan
  | V_meter
  | V_flow_stats
  | V_emit
  | V_drop

type t = {
  pname : string;
  core_op_cycles : (op_class * float) list;
  fpu_emulation_factor : float;
  core_vcalls : (vcall * Cost_fn.t) list;
  accel_vcalls : (Unit_.accel_kind * (vcall * Cost_fn.t) list) list;
  accel_sram_bytes : (Unit_.accel_kind * int) list;
  packet_ctm_threshold : int;
  wire_ingress : Cost_fn.t;
  wire_egress : Cost_fn.t;
}

let op_cost t op ~has_fpu =
  let c = List.assoc op t.core_op_cycles in
  match op with Fp when not has_fpu -> c *. t.fpu_emulation_factor | _ -> c

let core_vcall_cost t v = List.assoc_opt v t.core_vcalls

let accel_vcall_cost t kind v =
  match List.assoc_opt kind t.accel_vcalls with
  | None -> None
  | Some table -> List.assoc_opt v table

let accel_sram t kind =
  Option.value ~default:0 (List.assoc_opt kind t.accel_sram_bytes)

let vcall_name = function
  | V_parse_header -> "parse_header"
  | V_modify_header -> "modify_header"
  | V_checksum -> "checksum"
  | V_crypto -> "crypto"
  | V_table_lookup -> "table_lookup"
  | V_lpm_lookup -> "lpm_lookup"
  | V_table_update -> "table_update"
  | V_payload_scan -> "payload_scan"
  | V_meter -> "meter"
  | V_flow_stats -> "flow_stats"
  | V_emit -> "emit"
  | V_drop -> "drop"

let op_name = function
  | Alu -> "alu"
  | Mul -> "mul"
  | Div -> "div"
  | Fp -> "fp"
  | Move -> "move"
  | Branch -> "branch"
  | Hash -> "hash"
  | Load -> "load"
  | Store -> "store"
  | Atomic -> "atomic"
  | Call -> "call"

let all_op_classes = [ Alu; Mul; Div; Fp; Move; Branch; Hash; Load; Store; Atomic; Call ]

let all_vcalls =
  [ V_parse_header; V_modify_header; V_checksum; V_crypto; V_table_lookup; V_lpm_lookup;
    V_table_update; V_payload_scan; V_meter; V_flow_stats; V_emit; V_drop ]
