(** Memory regions of the logical NIC (§3.1–3.2).

    Regions differ in size and access latency; latency additionally varies
    with where the access is issued from (NUMA weights live on
    {!Link.t}).  A region may front a small cache (the Netronome EMEM has
    a 3 MB cache before its 8 GB DRAM). *)

type level =
  | Local     (** Per-core registers / local memory. *)
  | Cluster   (** Island-shared (Netronome CTM). *)
  | Internal  (** On-chip SRAM (IMEM). *)
  | External  (** Off-chip DRAM (EMEM). *)

type cache = {
  cache_bytes : int;
  hit_cycles : int;  (** Access latency on hit, replacing the miss cost. *)
}

type t = {
  id : int;
  name : string;
  level : level;
  size_bytes : int;
  read_cycles : int;   (** Baseline access latency from an attached unit. *)
  write_cycles : int;
  atomic_cycles : int; (** Atomic read-modify-write latency. *)
  cache : cache option;
  island : int option; (** Populated for [Cluster]-level regions. *)
}

val level_rank : level -> int
(** 0 = fastest/closest.  Used for spill ordering. *)

val level_name : level -> string
val pp : Format.formatter -> t -> unit
