lib/lnic/netronome.ml: Array Cost_fn Graph Hub Link List Memory Option Params Printf Unit_
