lib/lnic/link.ml: Format
