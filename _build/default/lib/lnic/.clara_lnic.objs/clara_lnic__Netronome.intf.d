lib/lnic/netronome.mli: Graph Memory
