lib/lnic/cost_fn.ml: Float Format
