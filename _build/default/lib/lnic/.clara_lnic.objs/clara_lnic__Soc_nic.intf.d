lib/lnic/soc_nic.mli: Graph
