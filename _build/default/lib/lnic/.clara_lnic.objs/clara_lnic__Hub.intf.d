lib/lnic/hub.mli: Format
