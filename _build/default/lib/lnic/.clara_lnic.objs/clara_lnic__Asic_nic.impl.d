lib/lnic/asic_nic.ml: Array Cost_fn Graph Hub Link List Memory Params Printf Unit_
