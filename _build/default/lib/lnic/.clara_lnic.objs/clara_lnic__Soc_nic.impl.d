lib/lnic/soc_nic.ml: Array Cost_fn Graph Hub Link List Memory Params Printf Unit_
