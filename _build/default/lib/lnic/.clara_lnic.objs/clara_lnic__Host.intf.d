lib/lnic/host.mli: Graph
