lib/lnic/memory.mli: Format
