lib/lnic/cost_fn.mli: Format
