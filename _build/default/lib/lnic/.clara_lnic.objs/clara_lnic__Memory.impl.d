lib/lnic/memory.ml: Format Printf
