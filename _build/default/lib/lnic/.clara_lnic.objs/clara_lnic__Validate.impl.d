lib/lnic/validate.ml: Array Format Graph Hub Link List Memory Params Printf Unit_
