lib/lnic/params.mli: Cost_fn Unit_
