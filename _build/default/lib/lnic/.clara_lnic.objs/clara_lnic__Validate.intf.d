lib/lnic/validate.mli: Format Graph
