lib/lnic/unit_.ml: Format
