lib/lnic/hub.ml: Format Printf
