lib/lnic/params.ml: Cost_fn List Option Unit_
