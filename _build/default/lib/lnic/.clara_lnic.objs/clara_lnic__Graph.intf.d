lib/lnic/graph.mli: Format Hub Link Memory Params Unit_
