lib/lnic/unit_.mli: Format
