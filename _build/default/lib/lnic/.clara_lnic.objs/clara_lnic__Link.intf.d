lib/lnic/link.mli: Format
