lib/lnic/asic_nic.mli: Graph
