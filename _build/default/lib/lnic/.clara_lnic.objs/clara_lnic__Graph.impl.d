lib/lnic/graph.ml: Array Format Hashtbl Hub Link List Memory Option Params Printf Unit_
