type level = Local | Cluster | Internal | External

type cache = { cache_bytes : int; hit_cycles : int }

type t = {
  id : int;
  name : string;
  level : level;
  size_bytes : int;
  read_cycles : int;
  write_cycles : int;
  atomic_cycles : int;
  cache : cache option;
  island : int option;
}

let level_rank = function Local -> 0 | Cluster -> 1 | Internal -> 2 | External -> 3

let level_name = function
  | Local -> "local"
  | Cluster -> "cluster"
  | Internal -> "internal"
  | External -> "external"

let pp fmt t =
  Format.fprintf fmt "%s#%d(%s,%dB,r=%dcyc%s)" t.name t.id (level_name t.level)
    t.size_bytes t.read_cycles
    (match t.cache with
    | None -> ""
    | Some c -> Printf.sprintf ",cache=%dB@%dcyc" c.cache_bytes c.hit_cycles)
