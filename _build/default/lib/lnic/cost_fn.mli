(** Cost functions: cycle counts as functions of a size argument.

    The paper (§3.2, §4) observes that SmartNIC component costs are often
    functions of data size or type — e.g. checksum cost grows with payload
    bytes, LPM match/action cost grows with the number of table entries.
    A cost function is an affine-plus-logarithmic form
    [base + per_unit * n + log2_coeff * log2 (1 + n)], which covers every
    component Clara models (constant, linear scans, trie walks). *)

type t = { base : float; per_unit : float; log2_coeff : float }

val const : float -> t
val linear : base:float -> per_unit:float -> t
val logarithmic : base:float -> log2_coeff:float -> t

val eval : t -> float -> float
(** [eval f n] — cycles at size [n]; clamps negative sizes to 0. *)

val eval_int : t -> int -> int
(** Rounded to the nearest cycle, never below 0. *)

val add : t -> t -> t
val scale : float -> t -> t
val pp : Format.formatter -> t -> unit
