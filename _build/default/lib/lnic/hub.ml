type discipline = Fifo | Priority of int

type t = {
  id : int;
  name : string;
  kind : [ `Ingress | `Egress | `Fabric | `Host_dma ];
  queue_capacity : int;
  discipline : discipline;
  per_packet_cycles : int;
}

let kind_name = function
  | `Ingress -> "ingress"
  | `Egress -> "egress"
  | `Fabric -> "fabric"
  | `Host_dma -> "host-dma"

let pp fmt t =
  Format.fprintf fmt "%s#%d(%s,q=%d,%s,%dcyc/pkt)" t.name t.id (kind_name t.kind)
    t.queue_capacity
    (match t.discipline with Fifo -> "fifo" | Priority n -> Printf.sprintf "prio%d" n)
    t.per_packet_cycles
