(** ILP encoding of the mapping problem (§3.4).

    Variables:
    - x{_n,c} ∈ {0,1}: dataflow node n runs on placement class c (Π);
    - y{_s,m} ∈ {0,1}: state object s lives in memory region m, or in a
      stateful accelerator's SRAM (Γ);
    - z{_n,c,m} = x{_n,c} ∧ y{_s,m} for state-touching nodes, linearized,
      so node costs can depend on the placement of the state they touch.

    Constraints: each node mapped exactly once; each state placed exactly
    once; pipeline edges never decrease the hardware stage
    (Π[k] ≥ Π[t] along dataflow edges); region and accelerator-SRAM
    capacities (Θ's capacity side; queue latencies are constants the
    predictor adds).

    Objective: minimize expected per-packet cycles — node costs priced by
    {!Clara_dataflow.Cost} and weighted by guard-derived execution
    frequencies ({!Clara_dataflow.Flow}), emulating what a good hand port
    would choose. *)

val packet_region_for :
  Clara_lnic.Graph.t -> Clara_lnic.Unit_.t -> packet_bytes:float -> int
(** Memory region holding packet data as seen from a unit: cluster memory
    while the packet fits the CTM threshold, external memory once it
    spills (§3.2). *)

val map_nf :
  ?options:Mapping.options ->
  ?dump_lp:string ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  sizes:Clara_dataflow.Cost.sizes ->
  prob:(Clara_cir.Ir.guard -> float) ->
  (Mapping.t, string) result
(** [Error] explains infeasibility (a node no unit can run, a state no
    region can hold, or contradictory pipeline requirements).  [dump_lp]
    writes the encoded model in CPLEX LP format before solving, for
    inspection or cross-checking with an external solver. *)
