(** Greedy first-fit mapper: the ablation baseline for the ILP.

    Emulates a naive port: place each state in the fastest region that
    still fits (first-fit by latency), then walk the dataflow graph in
    topological order assigning every node to its cheapest unit among
    those whose stage does not violate the pipeline order already
    committed to.  No backtracking — exactly the kind of local decision a
    first-attempt port makes, which the paper argues leaves performance on
    the table until rounds of hand-tuning. *)

val map_nf :
  ?options:Mapping.options ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  sizes:Clara_dataflow.Cost.sizes ->
  prob:(Clara_cir.Ir.guard -> float) ->
  (Mapping.t, string) result
