lib/mapping/greedy.ml: Array Clara_cir Clara_dataflow Clara_lnic Encode Hashtbl List Mapping Option Printf
