lib/mapping/encode.mli: Clara_cir Clara_dataflow Clara_lnic Mapping
