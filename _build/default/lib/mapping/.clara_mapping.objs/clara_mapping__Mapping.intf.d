lib/mapping/mapping.mli: Clara_lnic Format
