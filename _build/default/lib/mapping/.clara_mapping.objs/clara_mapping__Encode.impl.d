lib/mapping/encode.ml: Array Clara_cir Clara_dataflow Clara_ilp Clara_lnic Float Hashtbl List Mapping Option Printf
