lib/mapping/greedy.mli: Clara_cir Clara_dataflow Clara_lnic Mapping
