lib/mapping/mapping.ml: Array Clara_lnic Format List
