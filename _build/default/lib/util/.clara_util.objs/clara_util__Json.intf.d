lib/util/json.mli:
