lib/util/lru.mli:
