(** Minimal JSON emitter (no parser — Clara only writes JSON, for
    machine-readable reports and tooling integration). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float     (** NaN/infinities are emitted as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Valid JSON; strings are escaped per RFC 8259.  [pretty] (default
    true) indents with two spaces. *)

val to_channel : ?pretty:bool -> out_channel -> t -> unit
