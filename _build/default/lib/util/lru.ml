(* Doubly-linked recency list with a hash index.  Nodes are reused; the
   list head is most-recent. *)

type node = {
  key : int;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  capacity : int;
  table : (int, node) Hashtbl.t;
  mutable head : node option;
  mutable tail : node option;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Lru.create: capacity must be positive";
  { capacity; table = Hashtbl.create (min capacity 4096); head = None; tail = None }

let mem t k = Hashtbl.mem t.table k
let size t = Hashtbl.length t.table
let capacity t = t.capacity

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let touch t k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
      unlink t n;
      push_front t n;
      true
  | None ->
      if Hashtbl.length t.table >= t.capacity then begin
        match t.tail with
        | Some victim ->
            unlink t victim;
            Hashtbl.remove t.table victim.key
        | None -> ()
      end;
      let n = { key = k; prev = None; next = None } in
      Hashtbl.add t.table k n;
      push_front t n;
      false

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None
