(** Bounded LRU set over integer keys.

    Backs the simulator's EMEM cache (keys = 64-byte line addresses) and
    the flow-cache SRAM (keys = flow hashes).  O(1) hit/insert/evict via
    a hash table + doubly-linked recency list. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity <= 0]. *)

val mem : t -> int -> bool
(** Pure membership test; does not touch recency. *)

val touch : t -> int -> bool
(** [touch t k]: true (and refreshed) when [k] was present; false (and
    inserted, evicting the least-recent entry if full) otherwise. *)

val size : t -> int
val capacity : t -> int
val clear : t -> unit
