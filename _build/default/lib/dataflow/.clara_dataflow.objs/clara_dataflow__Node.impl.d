lib/dataflow/node.ml: Clara_cir Clara_lnic Format List
