lib/dataflow/graph.mli: Clara_cir Format Node
