lib/dataflow/node.mli: Clara_cir Format
