lib/dataflow/cost.mli: Clara_cir Clara_lnic Node
