lib/dataflow/flow.mli: Clara_cir Graph
