lib/dataflow/flow.ml: Array Clara_cir Float Graph List Node
