lib/dataflow/cost.ml: Clara_cir Clara_lnic Float List Node Option
