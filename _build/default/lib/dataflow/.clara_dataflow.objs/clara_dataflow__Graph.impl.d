lib/dataflow/graph.ml: Array Clara_cir Format Fun List Node Printf
