lib/dataflow/build.ml: Array Clara_cir Graph List Node
