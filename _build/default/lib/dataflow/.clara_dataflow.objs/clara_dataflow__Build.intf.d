lib/dataflow/build.mli: Clara_cir Graph
