(** Construction of dataflow graphs from CIR (§3.3).

    Each CIR block is split so every virtual call becomes its own node
    (the unit an accelerator can absorb); the surrounding straightline
    instructions form compute nodes.  Loop back edges are dropped and the
    loop trip count is recorded on each body node instead, keeping the
    graph a DAG for the mapping ILP. *)

val of_ir : Clara_cir.Ir.program -> Graph.t

val of_source : string -> Graph.t
(** Parse, typecheck, lower, coarsen ({!Clara_cir.Patterns.run}), build. *)
