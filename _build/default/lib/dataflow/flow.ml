module Ir = Clara_cir.Ir

let rec guard_probability ~tcp_fraction ~syn_fraction ~hit_fraction ~match_fraction
    ~exceed_fraction (g : Ir.guard) =
  let p =
    match g with
    | Ir.G_proto 6 -> tcp_fraction
    | Ir.G_proto 17 -> Float.max 0. (1. -. tcp_fraction)
    | Ir.G_proto _ -> Float.max 0. (1. -. tcp_fraction) *. 0.1
    | Ir.G_flag 2 -> syn_fraction
    | Ir.G_flag _ -> 0.5
    | Ir.G_table_hit _ -> hit_fraction
    | Ir.G_scan_match -> match_fraction
    | Ir.G_count_exceeds -> exceed_fraction
    | Ir.G_opaque -> 0.5
    | Ir.G_not g' ->
        1.
        -. guard_probability ~tcp_fraction ~syn_fraction ~hit_fraction ~match_fraction
             ~exceed_fraction g'
    | Ir.G_or (a, b) ->
        let pa =
          guard_probability ~tcp_fraction ~syn_fraction ~hit_fraction ~match_fraction
            ~exceed_fraction a
        and pb =
          guard_probability ~tcp_fraction ~syn_fraction ~hit_fraction ~match_fraction
            ~exceed_fraction b
        in
        (* Guards in one disjunction are mutually exclusive in practice
           (proto == 6 || proto == 17); cap at 1. *)
        Float.min 1. (pa +. pb)
  in
  Float.max 0. (Float.min 1. p)

let default_probability g =
  guard_probability ~tcp_fraction:0.8 ~syn_fraction:0.1 ~hit_fraction:0.9
    ~match_fraction:0.1 ~exceed_fraction:0.05 g

let node_weights (g : Graph.t) ~prob =
  let n = Array.length g.Graph.nodes in
  let w = Array.make n 0. in
  w.(g.Graph.entry) <- 1.;
  (* Propagate in topological order.  Edge probabilities come from the
     source node's block terminator: a Cond splits its mass, everything
     else forwards it whole. *)
  let order = Graph.topo_order g in
  List.iter
    (fun src ->
      let node = Graph.node g src in
      let succs = Graph.successors g src in
      match succs with
      | [] -> ()
      | _ ->
          let cir_block = Clara_cir.Ir.block g.Graph.cir node.Node.block in
          (* An intra-block edge (to the next segment of the same block)
             forwards the whole mass; only the last segment of a block
             owns the block's terminator. *)
          let intra_block =
            match succs with
            | [ d ] -> d = src + 1 && (Graph.node g d).Node.block = node.Node.block
            | _ -> false
          in
          (match (cir_block.Ir.term, not intra_block) with
          | Ir.Cond { guard; then_; else_ }, true ->
              let p = prob guard in
              List.iter
                (fun d ->
                  let db = (Graph.node g d).Node.block in
                  if db = then_ && db = else_ then w.(d) <- w.(d) +. w.(src)
                  else if db = then_ then w.(d) <- w.(d) +. (p *. w.(src))
                  else if db = else_ then w.(d) <- w.(d) +. ((1. -. p) *. w.(src))
                  else w.(d) <- w.(d) +. w.(src))
                succs
          | _ ->
              (* Loop headers forward full mass to both body and exit: body
                 nodes already carry the trip multiplier, and every packet
                 eventually reaches the exit. *)
              List.iter (fun d -> w.(d) <- w.(d) +. w.(src)) succs))
    order;
  w
