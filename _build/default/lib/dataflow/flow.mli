(** Execution-frequency weights for dataflow nodes.

    A packet does not execute every node: conditionals split traffic
    according to their guards (§3.5: different packets exercise different
    parts of the NF).  Given a probability for each guard — typically
    derived from a workload profile's protocol mix and flow behaviour —
    this propagates flow from the entry through the DAG, yielding the
    expected executions per packet for every node.  The mapping objective
    weighs node costs by these frequencies. *)

val guard_probability :
  tcp_fraction:float ->
  syn_fraction:float ->
  hit_fraction:float ->
  match_fraction:float ->
  exceed_fraction:float ->
  Clara_cir.Ir.guard ->
  float
(** Interpret a guard under a simple workload mix.  [G_proto 6] is TCP,
    [G_proto 17] is UDP (the remainder of the TCP fraction); other
    protocol numbers get the leftover mass. *)

val default_probability : Clara_cir.Ir.guard -> float
(** 80% TCP / 20% UDP, 10% SYN, 90% table hits, 10% scan matches — the
    kind of abstract profile the paper gives as an example (§3.5). *)

val node_weights : Graph.t -> prob:(Clara_cir.Ir.guard -> float) -> float array
(** Expected executions per packet, indexed by node id. *)
