type kind =
  | N_compute of Clara_cir.Ir.instr list
  | N_vcall of Clara_cir.Ir.vcall_info

type t = {
  id : int;
  kind : kind;
  block : int;
  loop_trip : Clara_cir.Ir.size_expr option;
}

let is_vcall t = match t.kind with N_vcall _ -> true | N_compute _ -> false
let vcall t = match t.kind with N_vcall v -> Some v | N_compute _ -> None

let instr_count t =
  match t.kind with N_vcall _ -> 1 | N_compute is -> List.length is

let pp fmt t =
  match t.kind with
  | N_vcall v ->
      Format.fprintf fmt "n%d[%s]" t.id (Clara_lnic.Params.vcall_name v.Clara_cir.Ir.vc)
  | N_compute is -> Format.fprintf fmt "n%d[compute:%d]" t.id (List.length is)
