type t = {
  nodes : Node.t array;
  edges : (int * int) list;
  entry : int;
  cir : Clara_cir.Ir.program;
}

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Dataflow.Graph.node: bad id %d" i)
  else t.nodes.(i)

let successors t i = List.filter_map (fun (s, d) -> if s = i then Some d else None) t.edges
let predecessors t i = List.filter_map (fun (s, d) -> if d = i then Some s else None) t.edges

let topo_order t =
  let n = Array.length t.nodes in
  let indegree = Array.make n 0 in
  List.iter (fun (_, d) -> indegree.(d) <- indegree.(d) + 1) t.edges;
  (* Kahn's algorithm, preferring smaller ids for determinism. *)
  let ready = ref (List.filter (fun i -> indegree.(i) = 0) (List.init n Fun.id)) in
  let out = ref [] in
  let count = ref 0 in
  while !ready <> [] do
    let i = List.hd (List.sort compare !ready) in
    ready := List.filter (( <> ) i) !ready;
    out := i :: !out;
    incr count;
    List.iter
      (fun s ->
        indegree.(s) <- indegree.(s) - 1;
        if indegree.(s) = 0 then ready := s :: !ready)
      (successors t i)
  done;
  if !count <> n then failwith "Dataflow.Graph.topo_order: graph has a cycle";
  List.rev !out

let vcall_nodes t = Array.to_list t.nodes |> List.filter Node.is_vcall
let compute_nodes t = Array.to_list t.nodes |> List.filter (fun n -> not (Node.is_vcall n))

let states t = t.cir.Clara_cir.Ir.states

let pp fmt t =
  Format.fprintf fmt "dataflow %s: %d nodes, %d edges, entry n%d@."
    t.cir.Clara_cir.Ir.prog_name (Array.length t.nodes) (List.length t.edges) t.entry;
  Array.iter (fun n -> Format.fprintf fmt "  %a@." Node.pp n) t.nodes;
  List.iter (fun (s, d) -> Format.fprintf fmt "  n%d -> n%d@." s d) t.edges
