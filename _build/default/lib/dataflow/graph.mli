(** The dataflow graph: nodes + traffic-direction edges (§3.3).

    Built from a CIR program by {!Build.of_ir}.  Edges follow control
    flow; loop back edges are excluded so the graph is a DAG, which the
    mapping ILP's pipeline-ordering constraints (§3.4) require.  Loop
    repetition is instead recorded on each node's [loop_trip]. *)

type t = {
  nodes : Node.t array;
  edges : (int * int) list;  (** (src, dst) node ids; forward edges only. *)
  entry : int;
  cir : Clara_cir.Ir.program; (** The program the graph was built from. *)
}

val node : t -> int -> Node.t
(** @raise Invalid_argument on a bad id. *)

val successors : t -> int -> int list
val predecessors : t -> int -> int list

val topo_order : t -> int list
(** Topological order over the forward edges; entry first.
    @raise Failure if the graph is not a DAG (a Build bug). *)

val vcall_nodes : t -> Node.t list
val compute_nodes : t -> Node.t list

val states : t -> Clara_cir.Ir.state_obj list
(** State objects of the underlying program, for Γ placement. *)

val pp : Format.formatter -> t -> unit
