(** Dataflow-graph nodes (§3.3).

    After coarsening, an NF is a graph whose nodes are either straightline
    compute segments or single virtual calls.  Virtual calls get their own
    nodes because they are the units that may map onto accelerators as a
    whole; compute segments can only run on general cores. *)

type kind =
  | N_compute of Clara_cir.Ir.instr list  (** Straightline instructions. *)
  | N_vcall of Clara_cir.Ir.vcall_info

type t = {
  id : int;
  kind : kind;
  block : int;       (** CIR block this segment came from. *)
  loop_trip : Clara_cir.Ir.size_expr option;
      (** When inside a counted loop body: per-packet repetitions. *)
}

val is_vcall : t -> bool
val vcall : t -> Clara_cir.Ir.vcall_info option
val instr_count : t -> int
val pp : Format.formatter -> t -> unit
