module Ir = Clara_cir.Ir

(* Blocks inside a structured loop body: reachable from [body] without
   passing through the header or the exit. *)
let body_blocks (p : Ir.program) ~header ~body ~exit =
  let seen = ref [] in
  let rec go bid =
    if bid <> header && bid <> exit && not (List.mem bid !seen) then begin
      seen := bid :: !seen;
      List.iter go (Ir.successors (Ir.block p bid).Ir.term)
    end
  in
  go body;
  !seen

let of_ir (p : Ir.program) : Graph.t =
  let nblocks = Array.length p.Ir.blocks in
  (* Loop structure: trip count per block, and back edges to drop. *)
  let block_trip = Array.make nblocks None in
  let back_edges = ref [] in
  Array.iter
    (fun (b : Ir.block) ->
      match b.Ir.term with
      | Ir.Loop { body; exit; trip } ->
          let members = body_blocks p ~header:b.Ir.bid ~body ~exit in
          List.iter
            (fun m ->
              block_trip.(m) <- Some trip;
              match (Ir.block p m).Ir.term with
              | Ir.Jump d when d = b.Ir.bid -> back_edges := (m, b.Ir.bid) :: !back_edges
              | _ -> ())
            members
      | _ -> ())
    p.Ir.blocks;
  (* Split blocks into segments; record first/last node per block. *)
  let nodes = ref [] in
  let next_id = ref 0 in
  let first_node = Array.make nblocks (-1) in
  let last_node = Array.make nblocks (-1) in
  let intra_edges = ref [] in
  let add_node block kind =
    let id = !next_id in
    incr next_id;
    nodes := { Node.id; kind; block; loop_trip = block_trip.(block) } :: !nodes;
    id
  in
  Array.iter
    (fun (b : Ir.block) ->
      let segments =
        (* Group instrs: runs of non-vcalls, single vcalls.  A compute run
           is additionally split when it would touch a second state object
           — the mapping ILP prices each node against a single placement
           decision. *)
        let instr_state = function
          | Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s) | Ir.Atomic_op (Ir.L_state s) ->
              Some s
          | _ -> None
        in
        let rec split acc cur cur_state = function
          | [] -> List.rev (if cur = [] then acc else Node.N_compute (List.rev cur) :: acc)
          | (Ir.Vcall v) :: rest ->
              let acc = if cur = [] then acc else Node.N_compute (List.rev cur) :: acc in
              split (Node.N_vcall v :: acc) [] None rest
          | i :: rest -> (
              match (instr_state i, cur_state) with
              | Some s', Some s when s' <> s ->
                  split (Node.N_compute (List.rev cur) :: acc) [ i ] (Some s') rest
              | Some s', _ -> split acc (i :: cur) (Some s') rest
              | None, _ -> split acc (i :: cur) cur_state rest)
        in
        match split [] [] None b.Ir.instrs with
        | [] -> [ Node.N_compute [] ] (* empty block still anchors edges *)
        | segs -> segs
      in
      let ids = List.map (add_node b.Ir.bid) segments in
      first_node.(b.Ir.bid) <- List.hd ids;
      last_node.(b.Ir.bid) <- List.nth ids (List.length ids - 1);
      let rec chain = function
        | a :: (b2 :: _ as rest) ->
            intra_edges := (a, b2) :: !intra_edges;
            chain rest
        | _ -> ()
      in
      chain ids)
    p.Ir.blocks;
  (* Inter-block edges following terminators, minus back edges. *)
  let inter_edges = ref [] in
  Array.iter
    (fun (b : Ir.block) ->
      let add d =
        if not (List.mem (b.Ir.bid, d) !back_edges) then
          inter_edges := (last_node.(b.Ir.bid), first_node.(d)) :: !inter_edges
      in
      List.iter add (Ir.successors b.Ir.term))
    p.Ir.blocks;
  {
    Graph.nodes = Array.of_list (List.rev !nodes);
    edges = List.rev !intra_edges @ List.rev !inter_edges;
    entry = first_node.(p.Ir.entry);
    cir = p;
  }

let of_source src =
  let ir = Clara_cir.Lower.lower_source src in
  let ir, _report = Clara_cir.Patterns.run ir in
  of_ir ir
