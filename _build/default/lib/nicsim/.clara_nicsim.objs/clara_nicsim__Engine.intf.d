lib/nicsim/engine.mli: Clara_lnic Clara_workload Device Format Stats
