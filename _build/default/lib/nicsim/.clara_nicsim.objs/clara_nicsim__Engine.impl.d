lib/nicsim/engine.ml: Array Clara_lnic Clara_workload Device Float Format Int64 List Mem_model Queue Stats
