lib/nicsim/mem_model.ml: Array Clara_lnic Clara_util List Option
