lib/nicsim/device.mli: Clara_lnic Clara_workload Mem_model
