lib/nicsim/stats.ml: Array Clara_workload Float Format
