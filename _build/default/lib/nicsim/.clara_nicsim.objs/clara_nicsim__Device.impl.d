lib/nicsim/device.ml: Array Clara_lnic Clara_util Clara_workload Float Hashtbl List Mem_model Printf
