lib/nicsim/stats.mli: Clara_workload Format
