lib/nicsim/mem_model.mli: Clara_lnic
