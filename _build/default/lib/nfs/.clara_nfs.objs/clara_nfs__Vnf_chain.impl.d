lib/nfs/vnf_chain.ml: Clara_nicsim Clara_workload Printf
