lib/nfs/tunnel_gw.ml: Clara_nicsim Clara_workload Printf
