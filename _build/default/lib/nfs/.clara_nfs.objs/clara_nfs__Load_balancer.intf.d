lib/nfs/load_balancer.mli: Clara_nicsim
