lib/nfs/kv_store.mli: Clara_nicsim
