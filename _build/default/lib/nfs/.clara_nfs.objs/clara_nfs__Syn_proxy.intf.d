lib/nfs/syn_proxy.mli: Clara_nicsim
