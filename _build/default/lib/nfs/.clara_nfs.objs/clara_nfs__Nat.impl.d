lib/nfs/nat.ml: Clara_nicsim Clara_workload Printf
