lib/nfs/ipsec_gw.ml: Clara_nicsim Clara_workload Printf
