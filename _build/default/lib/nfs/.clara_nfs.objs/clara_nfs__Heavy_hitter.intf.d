lib/nfs/heavy_hitter.mli: Clara_nicsim
