lib/nfs/kv_store.ml: Clara_nicsim Clara_workload Printf
