lib/nfs/telemetry.mli: Clara_nicsim
