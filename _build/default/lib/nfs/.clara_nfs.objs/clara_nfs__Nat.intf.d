lib/nfs/nat.mli: Clara_nicsim
