lib/nfs/dpi.ml: Clara_nicsim Clara_workload
