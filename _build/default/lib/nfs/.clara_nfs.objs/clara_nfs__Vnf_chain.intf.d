lib/nfs/vnf_chain.mli: Clara_nicsim
