lib/nfs/ipsec_gw.mli: Clara_nicsim
