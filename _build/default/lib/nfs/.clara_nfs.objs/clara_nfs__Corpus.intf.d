lib/nfs/corpus.mli: Clara_nicsim
