lib/nfs/lpm.ml: Clara_nicsim Clara_workload Int32 Printf
