lib/nfs/corpus.ml: Clara_nicsim Dpi Firewall Heavy_hitter Ipsec_gw Kv_store List Load_balancer Lpm Nat Syn_proxy Telemetry Tunnel_gw Vnf_chain
