lib/nfs/heavy_hitter.ml: Clara_nicsim Clara_workload Hashtbl Option Printf
