lib/nfs/firewall.mli: Clara_nicsim
