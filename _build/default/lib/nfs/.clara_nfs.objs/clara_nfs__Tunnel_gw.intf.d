lib/nfs/tunnel_gw.mli: Clara_nicsim
