lib/nfs/load_balancer.ml: Clara_nicsim Clara_workload Printf
