lib/nfs/telemetry.ml: Clara_nicsim Clara_workload Printf
