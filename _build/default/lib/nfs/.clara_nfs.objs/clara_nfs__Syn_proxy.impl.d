lib/nfs/syn_proxy.ml: Clara_nicsim Clara_workload Printf
