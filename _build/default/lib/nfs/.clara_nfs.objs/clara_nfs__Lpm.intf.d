lib/nfs/lpm.mli: Clara_nicsim
