lib/nfs/dpi.mli: Clara_nicsim
