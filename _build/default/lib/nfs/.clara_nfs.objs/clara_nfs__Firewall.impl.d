lib/nfs/firewall.ml: Clara_nicsim Clara_workload Printf
