type entry = {
  name : string;
  description : string;
  source : string;
  ported : Clara_nicsim.Device.prog;
}

let all =
  [ { name = "nat";
      description = "network address translation: per-flow table + header rewrite";
      source = Nat.source ();
      ported = Nat.ported ~checksum_engine:true () };
    { name = "lpm";
      description = "longest-prefix-match forwarding (8k rules)";
      source = Lpm.source ~entries:8192;
      ported = Lpm.ported ~entries:8192 ~use_flow_cache:true () };
    { name = "firewall";
      description = "stateful firewall: SYN-established connection table";
      source = Firewall.source ();
      ported = Firewall.ported ~placement:Clara_nicsim.Device.P_imem () };
    { name = "dpi";
      description = "deep packet inspection: payload pattern scan";
      source = Dpi.source;
      ported = Dpi.ported () };
    { name = "heavy-hitter";
      description = "heavy-hitter detection: counting sketch + threshold";
      source = Heavy_hitter.source ();
      ported = Heavy_hitter.ported () };
    { name = "vnf-chain";
      description = "fused chain: DPI + metering + header mod + flow stats";
      source = Vnf_chain.source ();
      ported = Vnf_chain.ported () };
    { name = "kv-store";
      description = "NIC-side key/value cache (GET/SET over UDP)";
      source = Kv_store.source ();
      ported = Kv_store.ported () };
    { name = "load-balancer";
      description = "L4 load balancer: connection affinity + consistent hash";
      source = Load_balancer.source ();
      ported = Load_balancer.ported () };
    { name = "syn-proxy";
      description = "SYN-cookie proxy with verified-connection whitelist";
      source = Syn_proxy.source ();
      ported = Syn_proxy.ported () };
    { name = "ipsec-gw";
      description = "IPsec ESP gateway: SA lookup + bulk crypto + encap";
      source = Ipsec_gw.source ();
      ported = Ipsec_gw.ported () };
    { name = "telemetry";
      description = "per-flow telemetry with floating-point EWMA (FPU story)";
      source = Telemetry.source ();
      ported = Telemetry.ported () };
    { name = "tunnel-gw";
      description = "VXLAN-style tunnel gateway: VNI lookup + encap";
      source = Tunnel_gw.source ();
      ported = Tunnel_gw.ported () } ]

let find name = List.find_opt (fun e -> e.name = name) all
let names = List.map (fun e -> e.name) all
