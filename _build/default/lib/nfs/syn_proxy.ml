module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(entries = 262144) () =
  Printf.sprintf
    {|
nf syn_proxy {
  state map verified[%d] entry 16;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto != 6) {
      emit(pkt);
      return;
    }
    var key = hash(hdr.src_ip, hdr.src_port, hdr.dst_ip, hdr.dst_port);
    if ((hdr.flags & 2) != 0) {
      // SYN: answer with a cookie instead of forwarding.
      var cookie = hash(key, hdr.seq);
      hdr.ack = cookie;
      hdr.flags = 18;
      checksum_update(hdr);
      emit(pkt);
    } else {
      var ent = lookup(verified, key);
      if (found(ent)) {
        emit(pkt);
      } else {
        // ACK completing a cookie handshake verifies the peer.
        var expect = hash(key, hdr.ack);
        if (expect == hdr.seq) {
          update(verified, key, 1);
          emit(pkt);
        } else {
          drop(pkt);
        }
      }
    }
  }
}
|}
    entries

let ported ?(entries = 262144) ?(placement = Dev.P_imem) () =
  let table = "verified" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.branch ctx;
    match pkt.W.Packet.proto with
    | W.Packet.Udp | W.Packet.Other _ -> Dev.Emit
    | W.Packet.Tcp ->
        Dev.hash_op ctx;
        let key = W.Packet.flow_key pkt in
        Dev.branch ctx;
        if W.Packet.is_syn pkt then begin
          Dev.hash_op ctx;
          Dev.move ctx 2;
          Dev.checksum ctx ~engine:true ~bytes:(W.Packet.header_bytes pkt);
          Dev.Emit
        end
        else begin
          let hit = Dev.table_lookup ctx table ~key in
          Dev.branch ctx;
          if hit then Dev.Emit
          else begin
            Dev.hash_op ctx;
            Dev.alu ctx 1;
            Dev.branch ctx;
            (* Deterministic stand-in for the cookie check: most unverified
               non-SYN packets fail it. *)
            if key mod 4 = 0 then begin
              Dev.table_insert ctx table ~key;
              Dev.Emit
            end
            else Dev.Drop
          end
        end
  in
  {
    Dev.name = "syn_proxy";
    tables =
      [ { Dev.t_name = table; t_entries = entries; t_entry_bytes = 16;
          t_placement = placement } ];
    handler;
  }
