(** VXLAN-style tunnel gateway: VNI lookup per destination, outer header
    encapsulation (header writes, length update, fresh outer checksum).
    Mostly metadata work plus one checksum — cheap and very offloadable. *)

val source : ?vni_entries:int -> unit -> string

val ported :
  ?vni_entries:int ->
  unit ->
  Clara_nicsim.Device.prog
