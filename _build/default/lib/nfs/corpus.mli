(** The bundled NF corpus as a single registry: name, description, DSL
    source, and the hand-ported simulator variant.  Used by the CLI's
    [corpus] subcommand, the benchmark zoo, and the test suite. *)

type entry = {
  name : string;
  description : string;
  source : string;
  ported : Clara_nicsim.Device.prog;
}

val all : entry list
(** Twelve NFs: the paper's five (plus its VNF chain) and six extensions. *)

val find : string -> entry option
val names : string list
