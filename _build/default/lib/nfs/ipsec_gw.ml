module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(sa_entries = 4096) () =
  Printf.sprintf
    {|
nf ipsec_gw {
  state map sa_table[%d] entry 64;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var key = hash(hdr.src_ip, hdr.dst_ip);
    var sa = lookup(sa_table, key);
    if (!found(sa)) {
      // First use of a provisioned SA: install it.
      update(sa_table, key, 1);
    }
    crypto(pkt);
    // Outer ESP/IP header and trailer.
    hdr.src_ip = entry_value(sa);
    hdr.dst_ip = entry_value(sa);
    hdr.len = hdr.len + 36;
    checksum(pkt);
    emit(pkt);
  }
}
|}
    sa_entries

let ported ?(sa_entries = 4096) ?(crypto_engine = true) () =
  let table = "sa_table" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.hash_op ctx;
    let key = W.Packet.flow_key pkt land 0xfff in
    let hit = Dev.table_lookup ctx table ~key in
    Dev.branch ctx;
    (* SAs are provisioned: treat the first packet of a flow as installing
       one, mirroring the miss path cost. *)
    if not hit then Dev.table_insert ctx table ~key;
    Dev.crypto ctx ~engine:crypto_engine ~bytes:pkt.W.Packet.payload_bytes;
    Dev.move ctx 3;
    Dev.alu ctx 1;
    Dev.checksum ctx ~engine:true ~bytes:(W.Packet.total_bytes pkt + 36);
    Dev.Emit
  in
  {
    Dev.name = (if crypto_engine then "ipsec/crypto-engine" else "ipsec/crypto-sw");
    tables =
      [ { Dev.t_name = table; t_entries = sa_entries; t_entry_bytes = 64;
          t_placement = Dev.P_imem } ];
    handler;
  }
