(** Telemetry / monitoring NF with floating-point EWMA rate estimation.

    The float arithmetic is deliberate: NPUs have no FPUs, so Clara's
    §3.4 emulation accounting makes this NF dramatically more expensive
    on the Netronome-like target than on ARM or x86 — a crisp example of
    an NF whose best home is not obvious without prediction. *)

val source : ?buckets:int -> unit -> string

val ported :
  ?buckets:int ->
  unit ->
  Clara_nicsim.Device.prog
