(** The VNF function chain from the paper's evaluation (§4): DPI,
    metering, header modifications and flow statistics.  Figure 3b sweeps
    its latency over payload size (the DPI stage dominates and scales
    with bytes scanned). *)

val source : ?stats_entries:int -> unit -> string

val ported :
  ?stats_entries:int ->
  ?stats_placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
