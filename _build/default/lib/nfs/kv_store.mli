(** NIC-accelerated key/value cache (the KV-Direct / Floem use case the
    paper cites §1).  GET requests hit a value table; SETs update it;
    misses and non-KV traffic go up to the host application (emitted). *)

val source : ?entries:int -> ?value_bytes:int -> unit -> string

val ported :
  ?entries:int ->
  ?value_bytes:int ->
  ?placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
