(** Network address translation.

    Maintains a per-flow table and performs a table lookup plus header
    translation for each packet (§4).  Two porting variants differ in
    whether the checksum recomputation uses the hardware engine — the
    Figure 1 NAT contrast. *)

val source : ?table_entries:int -> unit -> string
(** NF DSL source; default 65536 flow entries of 32 bytes (2 MB). *)

val ported :
  ?table_entries:int ->
  ?table_placement:Clara_nicsim.Device.placement ->
  checksum_engine:bool ->
  unit ->
  Clara_nicsim.Device.prog
