module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(entries = 131072) ?(value_bytes = 64) () =
  Printf.sprintf
    {|
// UDP key/value cache on the NIC: GETs served from the value table,
// SETs update it, everything else is passed through to the host app.
nf kv_store {
  state map values[%d] entry %d;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 17) {
      var key = hash(hdr.dst_port, hdr.src_ip);
      if (hdr.flags == 0) {
        // GET
        var ent = lookup(values, key);
        if (found(ent)) {
          hdr.dst_ip = entry_value(ent);
          checksum_update(hdr);
          emit(pkt);
        } else {
          emit(pkt); // miss: forward to the host application
        }
      } else {
        // SET
        update(values, key, hdr.src_ip);
        emit(pkt);
      }
    } else {
      emit(pkt);
    }
  }
}
|}
    entries value_bytes

let ported ?(entries = 131072) ?(value_bytes = 64) ?(placement = Dev.P_emem) () =
  let table = "values" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.branch ctx;
    match pkt.W.Packet.proto with
    | W.Packet.Udp ->
        Dev.hash_op ctx;
        let key = W.Packet.flow_key pkt in
        Dev.branch ctx;
        if pkt.W.Packet.flags = 0 then begin
          let hit = Dev.table_lookup ctx table ~key in
          Dev.branch ctx;
          if hit then begin
            Dev.move ctx 1;
            Dev.checksum ctx ~engine:true ~bytes:(W.Packet.header_bytes pkt)
          end;
          Dev.Emit
        end
        else begin
          Dev.table_insert ctx table ~key;
          Dev.Emit
        end
    | W.Packet.Tcp | W.Packet.Other _ -> Dev.Emit
  in
  {
    Dev.name = "kv_store";
    tables =
      [ { Dev.t_name = table; t_entries = entries; t_entry_bytes = value_bytes;
          t_placement = placement } ];
    handler;
  }
