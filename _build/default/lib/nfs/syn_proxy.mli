(** SYN proxy / DDoS front line: SYNs are answered with computed
    cookies (hash work, no state) until the handshake completes; packets
    of verified connections pass through the whitelist table. *)

val source : ?entries:int -> unit -> string

val ported :
  ?entries:int ->
  ?placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
