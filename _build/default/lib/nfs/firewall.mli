(** Stateful firewall.

    Admits packets of established connections; TCP SYNs establish state;
    everything else is dropped.  Figure 1's FW variants store the
    connection table in different memory locations and see different
    flow distributions (working-set size drives cache behaviour). *)

val source : ?entries:int -> unit -> string

val ported :
  ?entries:int ->
  placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
