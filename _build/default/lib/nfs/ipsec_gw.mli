(** IPsec gateway (ESP tunnel mode): SA lookup per flow, bulk encryption
    of the payload, new outer header + checksum.  The crypto stage is
    where the hardware crypto engine pays off — and where an FPGA-less,
    crypto-less target falls off a cliff. *)

val source : ?sa_entries:int -> unit -> string

val ported :
  ?sa_entries:int ->
  ?crypto_engine:bool ->
  unit ->
  Clara_nicsim.Device.prog
