(** Heavy-hitter detection.

    A counting sketch updated per packet; flows whose counters cross the
    threshold are policed.  Figure 1's HH variants vary the packet rate —
    at high rates the atomic counter updates and ingress queueing
    dominate. *)

val source : ?buckets:int -> ?threshold:int -> unit -> string

val ported :
  ?buckets:int ->
  ?threshold:int ->
  ?placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
