module Dev = Clara_nicsim.Device

let source =
  {|
nf dpi {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var bad = scan_payload(pkt, 64);
    if (bad) {
      drop(pkt);
    } else {
      emit(pkt);
    }
  }
}
|}

let source_raw_loop =
  {|
nf dpi_raw {
  handler process(pkt) {
    var hdr = parse_header(pkt);
    var bad = 0;
    for (i = 0; i < payload_len(pkt); i = i + 1) {
      if (payload_byte(pkt, i) == 126) {
        bad = bad + 1;
      }
    }
    if (bad > 0) {
      drop(pkt);
    } else {
      emit(pkt);
    }
  }
}
|}

let ported () =
  let handler ctx (pkt : Clara_workload.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    let matched = Dev.scan_payload ctx ~bytes:pkt.Clara_workload.Packet.payload_bytes in
    Dev.branch ctx;
    if matched then Dev.Drop else Dev.Emit
  in
  { Dev.name = "dpi"; tables = []; handler }
