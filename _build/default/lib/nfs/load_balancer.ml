module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(backends = 64) ?(conn_entries = 131072) () =
  Printf.sprintf
    {|
nf load_balancer {
  const POOL = %d;
  state map conn_table[%d] entry 24;
  state array backends[%d] entry 8;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6) {
      var key = hash(hdr.src_ip, hdr.src_port, hdr.dst_ip, hdr.dst_port);
      var ent = lookup(conn_table, key);
      if (found(ent)) {
        hdr.dst_ip = entry_value(ent);
      } else {
        var pick = hash(key) %% POOL;
        var backend = lookup(backends, pick);
        hdr.dst_ip = entry_value(backend);
        update(conn_table, key, pick);
      }
      checksum_update(hdr);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}
    backends conn_entries backends

let ported ?(backends = 64) ?(conn_entries = 131072) ?(placement = Dev.P_imem) () =
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.branch ctx;
    match pkt.W.Packet.proto with
    | W.Packet.Tcp ->
        Dev.hash_op ctx;
        let key = W.Packet.flow_key pkt in
        let hit = Dev.table_lookup ctx "conn_table" ~key in
        Dev.branch ctx;
        if hit then Dev.move ctx 1
        else begin
          Dev.hash_op ctx;
          Dev.alu ctx 1;
          ignore (Dev.table_lookup ctx "backends" ~key:(key mod backends));
          Dev.move ctx 1;
          Dev.table_insert ctx "conn_table" ~key
        end;
        Dev.checksum ctx ~engine:true ~bytes:(W.Packet.header_bytes pkt);
        Dev.Emit
    | W.Packet.Udp | W.Packet.Other _ -> Dev.Drop
  in
  {
    Dev.name = "load_balancer";
    tables =
      [ { Dev.t_name = "conn_table"; t_entries = conn_entries; t_entry_bytes = 24;
          t_placement = placement };
        { Dev.t_name = "backends"; t_entries = backends; t_entry_bytes = 8;
          t_placement = Dev.P_ctm } ];
    handler;
  }
