module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(entries = 65536) () =
  Printf.sprintf
    {|
nf firewall {
  state map conn_table[%d] entry 16;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var key = hash(hdr.src_ip, hdr.dst_ip, hdr.src_port, hdr.dst_port);
    var ent = lookup(conn_table, key);
    if (found(ent)) {
      emit(pkt);
    } else {
      if ((hdr.flags & 2) != 0) {
        update(conn_table, key, 1);
        emit(pkt);
      } else {
        drop(pkt);
      }
    }
  }
}
|}
    entries

let ported ?(entries = 65536) ~placement () =
  let table = "conn_table" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.hash_op ctx;
    let key = W.Packet.flow_key pkt in
    let hit = Dev.table_lookup ctx table ~key in
    Dev.branch ctx;
    if hit then Dev.Emit
    else begin
      Dev.branch ctx;
      if W.Packet.is_syn pkt then begin
        Dev.table_insert ctx table ~key;
        Dev.Emit
      end
      else Dev.Drop
    end
  in
  let pname =
    match placement with
    | Dev.P_ctm -> "ctm"
    | Dev.P_imem -> "imem"
    | Dev.P_emem -> "emem"
    | Dev.P_flow_cache -> "fc"
  in
  {
    Dev.name = Printf.sprintf "firewall/%s" pname;
    tables =
      [ { Dev.t_name = table; t_entries = entries; t_entry_bytes = 16;
          t_placement = placement } ];
    handler;
  }
