module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(table_entries = 65536) () =
  Printf.sprintf
    {|
nf nat {
  state map flow_table[%d] entry 32;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6 || hdr.proto == 17) {
      var key = hash(hdr.src_ip, hdr.src_port);
      var ent = lookup(flow_table, key);
      if (!found(ent)) {
        update(flow_table, key, hdr.src_ip);
      }
      hdr.src_ip = entry_value(ent);
      hdr.src_port = entry_value(ent) & 0xffff;
      checksum(pkt);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}
    table_entries

let ported ?(table_entries = 65536) ?(table_placement = Dev.P_imem) ~checksum_engine () =
  let table = "flow_table" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.branch ctx;
    match pkt.W.Packet.proto with
    | W.Packet.Tcp | W.Packet.Udp ->
        let key = W.Packet.flow_key pkt in
        Dev.hash_op ctx;
        let hit = Dev.table_lookup ctx table ~key in
        Dev.branch ctx;
        if not hit then Dev.table_insert ctx table ~key;
        (* Rewrite source ip/port: metadata moves. *)
        Dev.move ctx 4;
        Dev.alu ctx 1;
        Dev.checksum ctx ~engine:checksum_engine ~bytes:(W.Packet.total_bytes pkt);
        Dev.Emit
    | W.Packet.Other _ -> Dev.Drop
  in
  {
    Dev.name = (if checksum_engine then "nat/csum-engine" else "nat/csum-sw");
    tables =
      [ { Dev.t_name = table; t_entries = table_entries; t_entry_bytes = 32;
          t_placement = table_placement } ];
    handler;
  }
