(** L4 load balancer: consistent hashing over a backend pool with
    per-connection affinity (existing connections stick to their
    backend via the connection table; new ones hash into the pool). *)

val source : ?backends:int -> ?conn_entries:int -> unit -> string

val ported :
  ?backends:int ->
  ?conn_entries:int ->
  ?placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
