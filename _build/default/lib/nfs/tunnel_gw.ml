module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(vni_entries = 16384) () =
  Printf.sprintf
    {|
nf tunnel_gw {
  state map vni_table[%d] entry 24;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var key = hash(hdr.dst_ip);
    var vni = lookup(vni_table, key);
    if (!found(vni)) {
      // First use of a provisioned VNI mapping: install it.
      update(vni_table, key, 1);
    }
    // Encapsulate: outer Ethernet/IP/UDP/VXLAN headers.
    hdr.src_ip = entry_value(vni);
    hdr.dst_ip = entry_value(vni);
    hdr.src_port = 49152 + (key & 1023);
    hdr.dst_port = 4789;
    hdr.len = hdr.len + 50;
    checksum_update(hdr);
    emit(pkt);
  }
}
|}
    vni_entries

let ported ?(vni_entries = 16384) () =
  let table = "vni_table" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.hash_op ctx;
    let key = W.Packet.flow_key pkt in
    let hit = Dev.table_lookup ctx table ~key in
    Dev.branch ctx;
    if not hit then Dev.table_insert ctx table ~key; (* provisioned VNIs *)
    Dev.move ctx 5;
    Dev.alu ctx 2;
    Dev.checksum ctx ~engine:true ~bytes:(W.Packet.header_bytes pkt + 50);
    Dev.Emit
  in
  {
    Dev.name = "tunnel_gw";
    tables =
      [ { Dev.t_name = table; t_entries = vni_entries; t_entry_bytes = 24;
          t_placement = Dev.P_ctm } ];
    handler;
  }
