module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ~entries =
  Printf.sprintf
    {|
nf lpm {
  state lpm routes[%d] entry 16;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var route = lpm_match(routes, hdr.dst_ip);
    if (found(route)) {
      hdr.ttl = hdr.ttl - 1;
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}
    entries

let ported ~entries ~use_flow_cache ?(placement = Dev.P_emem) () =
  let table = "routes" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    let hit = Dev.lpm_lookup ctx table ~key:(Int32.to_int pkt.W.Packet.dst_ip) in
    Dev.branch ctx;
    if hit then begin
      (* TTL decrement. *)
      Dev.move ctx 1;
      Dev.alu ctx 1;
      Dev.Emit
    end
    else Dev.Drop
  in
  {
    Dev.name =
      Printf.sprintf "lpm/%d%s" entries (if use_flow_cache then "/fc" else "/sw");
    tables =
      [ { Dev.t_name = table; t_entries = entries; t_entry_bytes = 16;
          t_placement = (if use_flow_cache then Dev.P_flow_cache else placement) } ];
    handler;
  }
