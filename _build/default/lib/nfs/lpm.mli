(** Longest-prefix match forwarding.

    Latency depends strongly on the rule count and on whether the port
    uses the hardware flow cache (§2.1: orders of magnitude apart) — the
    Figure 1 LPM contrast and the whole of Figure 3a (software
    match/action walk, swept over table entries). *)

val source : entries:int -> string

val ported :
  entries:int ->
  use_flow_cache:bool ->
  ?placement:Clara_nicsim.Device.placement ->
  unit ->
  Clara_nicsim.Device.prog
(** [placement] (default EMEM) is where the rule set lives when
    [use_flow_cache] is false. *)
