module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(buckets = 4096) ?(threshold = 1000) () =
  Printf.sprintf
    {|
nf heavy_hitter {
  state counter sketch[%d] entry 8;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var key = hash(hdr.src_ip, hdr.dst_ip);
    var c = count(sketch, key);
    if (c > %d) {
      drop(pkt);
    } else {
      emit(pkt);
    }
  }
}
|}
    buckets threshold

let ported ?(buckets = 4096) ?(threshold = 1000) ?(placement = Dev.P_ctm) () =
  let table = "sketch" in
  let counters = Hashtbl.create 1024 in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.hash_op ctx;
    let key = W.Packet.flow_key pkt mod buckets in
    Dev.count ctx table ~key;
    let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counters key) in
    Hashtbl.replace counters key c;
    Dev.branch ctx;
    if c > threshold then Dev.Drop else Dev.Emit
  in
  {
    Dev.name = "heavy_hitter";
    tables =
      [ { Dev.t_name = table; t_entries = buckets; t_entry_bytes = 8;
          t_placement = placement } ];
    handler;
  }
