(** Deep packet inspection.

    Scans every payload byte against a pattern set; cost is dominated by
    payload size — the Figure 1 DPI variants are the same program under
    different packet-size workloads.  Two source forms are provided: the
    framework-API version and a hand-written byte loop, which Clara's
    pattern matching coarsens to the same shape (§3.3). *)

val source : string
(** Uses the [scan_payload] framework call. *)

val source_raw_loop : string
(** Hand-written per-byte scan loop; exercises {!Clara_cir.Patterns}. *)

val ported : unit -> Clara_nicsim.Device.prog
