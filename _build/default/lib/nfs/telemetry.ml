module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(buckets = 8192) () =
  Printf.sprintf
    {|
nf telemetry {
  state map rates[%d] entry 16;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var key = hash(hdr.src_ip, hdr.dst_ip);
    var c = count(rates, key);
    // EWMA rate estimate in floating point: alpha-blend the new sample.
    var alpha = 0.125;
    var sample = 1.0;
    var est = alpha * sample + (1.0 - alpha) * 0.9;
    var scaled = est * 1000.0;
    if (scaled > 900.0) {
      meter(hdr.src_ip);
    }
    emit(pkt);
  }
}
|}
    buckets

let ported ?(buckets = 8192) () =
  let table = "rates" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    Dev.hash_op ctx;
    Dev.count ctx table ~key:(W.Packet.flow_key pkt mod buckets);
    (* EWMA: 5 float ops (mul, mul, sub, add, mul) + compare. *)
    Dev.fp_op ctx 6;
    Dev.branch ctx;
    if W.Packet.flow_key pkt mod 20 = 0 then Dev.meter ctx;
    Dev.Emit
  in
  {
    Dev.name = "telemetry";
    tables =
      [ { Dev.t_name = table; t_entries = buckets; t_entry_bytes = 16;
          t_placement = Dev.P_ctm } ];
    handler;
  }
