module Dev = Clara_nicsim.Device
module W = Clara_workload

let source ?(stats_entries = 8192) () =
  Printf.sprintf
    {|
nf vnf_chain {
  state map stats[%d] entry 32;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    var bad = scan_payload(pkt, 64);
    if (bad) {
      drop(pkt);
      return;
    }
    meter(hdr.src_ip);
    hdr.ttl = hdr.ttl - 1;
    var key = hash(hdr.src_ip, hdr.dst_ip);
    count(stats, key);
    emit(pkt);
  }
}
|}
    stats_entries

let ported ?(stats_entries = 8192) ?(stats_placement = Dev.P_ctm) () =
  let table = "stats" in
  let handler ctx (pkt : W.Packet.t) =
    Dev.parse_header ctx ~engine:true;
    let bad = Dev.scan_payload ctx ~bytes:pkt.W.Packet.payload_bytes in
    Dev.branch ctx;
    if bad then Dev.Drop
    else begin
      Dev.meter ctx;
      (* TTL decrement. *)
      Dev.move ctx 1;
      Dev.alu ctx 1;
      Dev.hash_op ctx;
      Dev.count ctx table ~key:(W.Packet.flow_key pkt);
      Dev.Emit
    end
  in
  {
    Dev.name = "vnf_chain";
    tables =
      [ { Dev.t_name = table; t_entries = stats_entries; t_entry_bytes = 32;
          t_placement = stats_placement } ];
    handler;
  }
