lib/core/chain.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_predict Clara_workload Float List Pipeline Printf
