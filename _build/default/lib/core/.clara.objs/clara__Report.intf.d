lib/core/report.mli: Clara_predict Clara_util Clara_workload Format Pipeline
