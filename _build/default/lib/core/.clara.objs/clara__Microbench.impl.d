lib/core/microbench.ml: Clara_lnic Clara_nicsim Clara_workload Float Format List Option
