lib/core/chain.mli: Clara_lnic Clara_mapping Clara_predict Clara_workload Pipeline
