lib/core/report.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Clara_predict Clara_util Format List Option Pipeline Printf
