lib/core/microbench.mli: Clara_lnic Clara_nicsim Format
