lib/core/clara.ml: Chain Microbench Pipeline Report
