lib/core/pipeline.mli: Clara_cir Clara_dataflow Clara_lnic Clara_mapping Clara_nicsim Clara_predict Clara_workload
