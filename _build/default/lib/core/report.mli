(** Human-readable performance profiles — Clara's output artifact
    (Figure 2d, §3.5's example: "TCP SYN packets experience higher
    latency, but the following packets hit the flow cache"). *)

type t = {
  nf_name : string;
  nic_name : string;
  mapping_lines : (string * string) list;
      (** Dataflow node / state object → hardware resource. *)
  paths : Clara_predict.Symexec.path list;
      (** Per-packet-type latency profiles, most expensive first. *)
  prediction : Clara_predict.Latency.prediction option;
      (** Workload-level numbers when a trace was supplied. *)
  throughput : Clara_predict.Throughput.t;
  energy : Clara_predict.Energy.t option;
      (** Populated when a rate was supplied. *)
  best_split : Clara_predict.Partial.split option;
      (** Best partial-offloading cut ([None] on the host target). *)
}

val build :
  ?trace:Clara_workload.Trace.t ->
  ?rate_pps:float ->
  Pipeline.analysis ->
  t

val render : Format.formatter -> t -> unit
(** Multi-section textual report. *)

val to_string : t -> string

val to_json : t -> Clara_util.Json.t
(** Machine-readable form of the same report, for tooling
    ([clara analyze --json]). *)
