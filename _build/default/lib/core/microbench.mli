(** Parameter extraction via microbenchmarks (§3.2, §4).

    The paper obtains each NIC's performance parameters from a one-time
    set of NF-independent "unit-test" benchmark programs: memory latency
    curves with knee detection (Patel's half-latency rule), accelerator
    cost functions fitted over sizes, instruction costs.  Here the
    "hardware" is {!Clara_nicsim}; running these programs against it and
    recovering the parameters the simulator was built from validates the
    whole calibration loop. *)

type fitted = { base : float; per_unit : float }

val fit_linear : (float * float) list -> fitted
(** Least-squares fit of (size, cycles) samples. *)

val measure_checksum :
  Clara_lnic.Graph.t -> engine:bool -> fitted
(** Checksum cost over payload sizes 64..1400 B. *)

val measure_parse : Clara_lnic.Graph.t -> engine:bool -> float
(** Mean header-parse cycles. *)

val measure_lpm_walk :
  Clara_lnic.Graph.t -> placement:Clara_nicsim.Device.placement -> fitted
(** Software match/action walk cost over rule counts (per-entry slope —
    the Figure 3a regime). *)

val measure_memory_curve :
  Clara_lnic.Graph.t -> working_sets:int list -> (int * float) list
(** Mean EMEM access latency per working-set size (bytes): flat while the
    set fits the cache, rising past it. *)

val knee_of_curve : (int * float) list -> int option
(** Half-latency rule: smallest size whose latency exceeds
    (min + max) / 2.  [None] for flat curves. *)

type calibration = {
  parse_engine_cycles : float;
  checksum_engine : fitted;
  checksum_software : fitted;
  lpm_emem : fitted;
  emem_cache_knee_bytes : int option;
  move_cycles : float;
}

val calibrate : Clara_lnic.Graph.t -> calibration
(** The full §3.2 parameter table, measured. *)

val pp_calibration : Format.formatter -> calibration -> unit
