(** Service chains: several NFs composed on one NIC (the Metron-style
    deployments the paper cites; the VNF of §4 is one such chain fused
    into a single program — this module predicts chains kept as separate
    NFs).

    A packet enters once, traverses the NFs in order (a drop by any stage
    ends its path), and leaves once; each stage is mapped independently by
    the ILP, and an inter-stage hop through the NIC fabric is charged
    between consecutive stages. *)

type t = {
  stages : Pipeline.analysis list;
  lnic : Clara_lnic.Graph.t;
}

val analyze :
  ?options:Clara_mapping.Mapping.options ->
  Clara_lnic.Graph.t ->
  sources:string list ->
  profile:Clara_workload.Profile.t ->
  (t, string) result
(** Errors name the failing stage. *)

val predict :
  ?config:Clara_predict.Latency.config ->
  t ->
  Clara_workload.Trace.t ->
  Clara_predict.Latency.prediction

val stage_names : t -> string list
