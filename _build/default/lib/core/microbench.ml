module Dev = Clara_nicsim.Device
module Mem = Clara_nicsim.Mem_model
module W = Clara_workload
module L = Clara_lnic

type fitted = { base : float; per_unit : float }

let fit_linear samples =
  let n = float_of_int (List.length samples) in
  if n < 2. then invalid_arg "Microbench.fit_linear: need at least 2 samples";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. samples in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. samples in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. samples in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. samples in
  let denom = (n *. sxx) -. (sx *. sx) in
  if denom = 0. then { base = sy /. n; per_unit = 0. }
  else
    let per_unit = ((n *. sxy) -. (sx *. sy)) /. denom in
    { base = (sy -. (per_unit *. sx)) /. n; per_unit }

let dummy_packet ~payload =
  {
    W.Packet.src_ip = 0x0a000001l;
    dst_ip = 0xc0a80001l;
    src_port = 1234;
    dst_port = 80;
    proto = W.Packet.Tcp;
    flags = 0;
    payload_bytes = payload;
    arrival_ns = 0L;
  }

(* Run one operation on a fresh simulator and report its cycle cost. *)
let measure_op lnic ?(tables = []) ~payload f =
  let prog = { Dev.name = "microbench"; tables; handler = (fun _ _ -> Dev.Drop) } in
  let sim = Dev.create_sim lnic prog in
  let ctx = Dev.make_ctx sim ~now:0 (dummy_packet ~payload) in
  f ctx;
  float_of_int (Dev.now ctx)

let measure_checksum lnic ~engine =
  let sizes = [ 64; 200; 400; 600; 800; 1000; 1200; 1400 ] in
  let samples =
    List.map
      (fun s ->
        ( float_of_int s,
          measure_op lnic ~payload:s (fun ctx -> Dev.checksum ctx ~engine ~bytes:s) ))
      sizes
  in
  fit_linear samples

let measure_parse lnic ~engine =
  measure_op lnic ~payload:300 (fun ctx -> Dev.parse_header ctx ~engine)

let measure_lpm_walk lnic ~placement =
  let entry_counts = [ 1000; 5000; 10000; 20000; 30000 ] in
  let samples =
    List.map
      (fun entries ->
        let tables =
          [ { Dev.t_name = "rules"; t_entries = entries; t_entry_bytes = 16;
              t_placement = placement } ]
        in
        let prog = { Dev.name = "microbench"; tables; handler = (fun _ _ -> Dev.Drop) } in
        let sim = Dev.create_sim lnic prog in
        (* Warm the cache, then measure. *)
        let warm = Dev.make_ctx sim ~now:0 (dummy_packet ~payload:300) in
        ignore (Dev.lpm_lookup warm "rules" ~key:1);
        let ctx = Dev.make_ctx sim ~now:0 (dummy_packet ~payload:300) in
        ignore (Dev.lpm_lookup ctx "rules" ~key:1);
        (float_of_int entries, float_of_int (Dev.now ctx)))
      entry_counts
  in
  fit_linear samples

let measure_memory_curve lnic ~working_sets =
  (* Classic cyclic sweep: one warm pass touching every line of the
     working set, then a measured pass over the same lines.  Sets that
     fit the cache read at hit latency; larger sets cycle through the
     LRU and miss every time — a sharp knee at the cache size. *)
  List.map
    (fun ws ->
      let memm = Mem.create lnic in
      let lines = max 1 (ws / 64) in
      for i = 0 to lines - 1 do
        ignore (Mem.access memm Mem.Emem ~mode:`Read ~addr:(i * 64))
      done;
      Mem.reset_stats memm;
      let total = ref 0 in
      for i = 0 to lines - 1 do
        total := !total + Mem.access memm Mem.Emem ~mode:`Read ~addr:(i * 64)
      done;
      (ws, float_of_int !total /. float_of_int lines))
    working_sets

let knee_of_curve curve =
  match curve with
  | [] | [ _ ] -> None
  | _ ->
      let lats = List.map snd curve in
      let lo = List.fold_left Float.min Float.infinity lats in
      let hi = List.fold_left Float.max Float.neg_infinity lats in
      if hi -. lo < 1. then None
      else
        let half = (lo +. hi) /. 2. in
        List.find_opt (fun (_, l) -> l > half) curve |> Option.map fst

type calibration = {
  parse_engine_cycles : float;
  checksum_engine : fitted;
  checksum_software : fitted;
  lpm_emem : fitted;
  emem_cache_knee_bytes : int option;
  move_cycles : float;
}

let calibrate lnic =
  let has_parse = L.Graph.find_accelerator lnic L.Unit_.Parse <> None in
  let has_csum = L.Graph.find_accelerator lnic L.Unit_.Checksum <> None in
  let working_sets =
    [ 256 * 1024; 1024 * 1024; 2 * 1024 * 1024; 3 * 1024 * 1024; 4 * 1024 * 1024;
      6 * 1024 * 1024; 8 * 1024 * 1024; 16 * 1024 * 1024 ]
  in
  {
    parse_engine_cycles = measure_parse lnic ~engine:has_parse;
    checksum_engine =
      (if has_csum then measure_checksum lnic ~engine:true
       else measure_checksum lnic ~engine:false);
    checksum_software = measure_checksum lnic ~engine:false;
    lpm_emem = measure_lpm_walk lnic ~placement:Dev.P_emem;
    emem_cache_knee_bytes = knee_of_curve (measure_memory_curve lnic ~working_sets);
    move_cycles = measure_op lnic ~payload:300 (fun ctx -> Dev.move ctx 1);
  }

let pp_calibration fmt c =
  Format.fprintf fmt "parse (engine): %.0f cyc@." c.parse_engine_cycles;
  Format.fprintf fmt "checksum engine: %.0f + %.2f/B@." c.checksum_engine.base
    c.checksum_engine.per_unit;
  Format.fprintf fmt "checksum software: %.0f + %.2f/B@." c.checksum_software.base
    c.checksum_software.per_unit;
  Format.fprintf fmt "lpm walk (EMEM): %.0f + %.1f/entry@." c.lpm_emem.base
    c.lpm_emem.per_unit;
  (match c.emem_cache_knee_bytes with
  | Some b -> Format.fprintf fmt "EMEM cache knee: ~%d KB@." (b / 1024)
  | None -> Format.fprintf fmt "EMEM cache knee: none detected@.");
  Format.fprintf fmt "metadata move: %.0f cyc@." c.move_cycles
