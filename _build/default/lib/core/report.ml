module D = Clara_dataflow
module L = Clara_lnic
module M = Clara_mapping.Mapping
module Ir = Clara_cir.Ir

type t = {
  nf_name : string;
  nic_name : string;
  mapping_lines : (string * string) list;
  paths : Clara_predict.Symexec.path list;
  prediction : Clara_predict.Latency.prediction option;
  throughput : Clara_predict.Throughput.t;
  energy : Clara_predict.Energy.t option;
  best_split : Clara_predict.Partial.split option;
}

let node_label (n : D.Node.t) =
  match n.D.Node.kind with
  | D.Node.N_vcall v ->
      Printf.sprintf "n%d %s" n.D.Node.id (Clara_lnic.Params.vcall_name v.Ir.vc)
  | D.Node.N_compute is -> Printf.sprintf "n%d compute[%d]" n.D.Node.id (List.length is)

let build ?trace ?rate_pps (a : Pipeline.analysis) =
  let mapping_lines =
    (Array.to_list a.Pipeline.df.D.Graph.nodes
    |> List.map (fun n ->
           ( node_label n,
             (L.Graph.unit_ a.Pipeline.lnic a.Pipeline.mapping.M.node_unit.(n.D.Node.id))
               .L.Unit_.name )))
    @ (D.Graph.states a.Pipeline.df
      |> List.map (fun (s : Ir.state_obj) ->
             let where =
               match M.placement_of_state a.Pipeline.mapping s.Ir.st_name with
               | Some (M.In_memory m) ->
                   (L.Graph.memory a.Pipeline.lnic m).L.Memory.name
               | Some (M.In_accel u) ->
                   (L.Graph.unit_ a.Pipeline.lnic u).L.Unit_.name ^ " (SRAM)"
               | None -> "?"
             in
             (Printf.sprintf "state %s (%d x %dB)" s.Ir.st_name s.Ir.st_entries
                s.Ir.st_entry_bytes, where)))
  in
  let paths =
    Clara_predict.Symexec.enumerate a.Pipeline.lnic a.Pipeline.df a.Pipeline.mapping
  in
  let prediction = Option.map (Pipeline.predict a) trace in
  let throughput =
    Clara_predict.Throughput.estimate a.Pipeline.lnic a.Pipeline.df a.Pipeline.mapping
  in
  let energy =
    Option.map
      (fun rate ->
        Clara_predict.Energy.estimate ~rate_pps:rate a.Pipeline.lnic a.Pipeline.df
          a.Pipeline.mapping)
      rate_pps
  in
  let best_split =
    (* Meaningless when analyzing the host itself. *)
    if a.Pipeline.lnic.L.Graph.name = "x86-host" then None
    else
      Some
        (Clara_predict.Partial.best_split a.Pipeline.lnic a.Pipeline.df
           a.Pipeline.mapping)
  in
  {
    nf_name = a.Pipeline.df.D.Graph.cir.Ir.prog_name;
    nic_name = a.Pipeline.lnic.L.Graph.name;
    mapping_lines;
    paths;
    prediction;
    throughput;
    energy;
    best_split;
  }

let render fmt t =
  Format.fprintf fmt "=== Clara performance profile: %s on %s ===@." t.nf_name t.nic_name;
  Format.fprintf fmt "@.-- mapping (compute Π / memory Γ) --@.";
  List.iter
    (fun (what, where) -> Format.fprintf fmt "  %-32s -> %s@." what where)
    t.mapping_lines;
  Format.fprintf fmt "@.-- per-packet-type latency (symbolic paths) --@.";
  List.iter
    (fun p -> Format.fprintf fmt "  %a@." Clara_predict.Symexec.pp_path p)
    t.paths;
  (match t.prediction with
  | None -> ()
  | Some p ->
      Format.fprintf fmt "@.-- workload prediction --@.  %a@."
        Clara_predict.Latency.pp_prediction p);
  Format.fprintf fmt "@.-- idealized throughput --@.  %a@." Clara_predict.Throughput.pp
    t.throughput;
  (match t.energy with
  | None -> ()
  | Some e ->
      Format.fprintf fmt "@.-- energy --@.  %a@." Clara_predict.Energy.pp e);
  match t.best_split with
  | None -> ()
  | Some s ->
      Format.fprintf fmt "@.-- partial offloading --@.  %a@." Clara_predict.Partial.pp s

let to_string t = Format.asprintf "%a" render t

let to_json t =
  let open Clara_util.Json in
  let prediction_json (p : Clara_predict.Latency.prediction) =
    Obj
      [ ("mean_cycles", Float p.Clara_predict.Latency.mean_cycles);
        ("p50_cycles", Float p.Clara_predict.Latency.p50_cycles);
        ("p99_cycles", Float p.Clara_predict.Latency.p99_cycles);
        ("tcp_mean", Float p.Clara_predict.Latency.tcp_mean);
        ("udp_mean", Float p.Clara_predict.Latency.udp_mean);
        ("syn_mean", Float p.Clara_predict.Latency.syn_mean);
        ("emitted_fraction", Float p.Clara_predict.Latency.emitted_fraction) ]
  in
  Obj
    [ ("nf", String t.nf_name);
      ("nic", String t.nic_name);
      ( "mapping",
        List
          (List.map
             (fun (what, where) -> Obj [ ("what", String what); ("where", String where) ])
             t.mapping_lines) );
      ( "packet_types",
        List
          (List.map
             (fun (p : Clara_predict.Symexec.path) ->
               Obj
                 [ ("description", String p.Clara_predict.Symexec.description);
                   ("cycles", Float p.Clara_predict.Symexec.cost_cycles);
                   ("verdict", String (if p.Clara_predict.Symexec.emits then "emit" else "drop")) ])
             t.paths) );
      ( "prediction",
        match t.prediction with None -> Null | Some p -> prediction_json p );
      ( "throughput",
        Obj
          [ ("max_pps", Float t.throughput.Clara_predict.Throughput.max_pps);
            ("gbps", Float t.throughput.Clara_predict.Throughput.gbps_at_mean_packet);
            ( "bottleneck",
              String
                t.throughput.Clara_predict.Throughput.bottleneck
                  .Clara_predict.Throughput.resource ) ] );
      ( "energy",
        match t.energy with
        | None -> Null
        | Some e ->
            Obj
              [ ("nj_per_packet", Float e.Clara_predict.Energy.nj_per_packet);
                ("watts_at_rate", Float e.Clara_predict.Energy.watts_at_rate) ] );
      ( "partial_offload",
        match t.best_split with
        | None -> Null
        | Some s ->
            Obj
              [ ("cut", Int s.Clara_predict.Partial.cut);
                ("total_ns", Float s.Clara_predict.Partial.total_ns);
                ("pcie_ns", Float s.Clara_predict.Partial.pcie_ns) ] ) ]
