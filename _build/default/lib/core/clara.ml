(* Library root: re-export the pipeline plus the report and
   microbenchmark facilities as submodules. *)

include Pipeline
module Report = Report
module Microbench = Microbench
module Chain = Chain
