module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module M = Clara_mapping.Mapping
module P = Clara_lnic.Params

type decision = { guard : Clara_cir.Ir.guard; taken : bool }

type path = {
  decisions : decision list;
  cost_cycles : float;
  emits : bool;
  description : string;
}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let describe decisions =
  let part { guard; taken } =
    let yes s = if taken then s else "not(" ^ s ^ ")" in
    match guard with
    | Ir.G_proto 6 -> yes "tcp"
    | Ir.G_proto 17 -> yes "udp"
    | Ir.G_proto k -> yes (Printf.sprintf "proto=%d" k)
    | Ir.G_flag 2 -> yes "syn"
    | Ir.G_flag k -> yes (Printf.sprintf "flag=0x%x" k)
    | Ir.G_table_hit s -> yes (Printf.sprintf "%s-hit" s)
    | Ir.G_scan_match -> yes "scan-match"
    | Ir.G_count_exceeds -> yes "over-threshold"
    | Ir.G_opaque -> yes "cond"
    | Ir.G_not _ | Ir.G_or _ -> yes (Format.asprintf "%a" Ir.pp_guard guard)
  in
  match decisions with
  | [] -> "all packets"
  | ds -> String.concat " & " (List.map part ds)

(* Atomic guards underneath negation/disjunction, used for consistent
   resolution along a path. *)
let rec atoms = function
  | Ir.G_not g -> atoms g
  | Ir.G_or (a, b) -> atoms a @ atoms b
  | g -> [ g ]

(* Evaluate a guard under an assignment of atomic guards to booleans. *)
let rec eval_guard assign = function
  | Ir.G_not g -> not (eval_guard assign g)
  | Ir.G_or (a, b) -> eval_guard assign a || eval_guard assign b
  | g -> List.assoc g assign

let enumerate ?(max_paths = 64) ?(sizes = default_sizes) lnic (df : D.Graph.t) mapping =
  let cir = df.D.Graph.cir in
  let states = D.Graph.states df in
  let sizes =
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          match List.find_opt (fun o -> o.Ir.st_name = s) states with
          | Some o -> float_of_int o.Ir.st_entries
          | None -> 0.) }
  in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let state_region s =
    match M.placement_of_state mapping s with
    | Some (M.In_memory m) -> m
    | _ -> (
        match
          Array.to_list lnic.L.Graph.memories
          |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
        with
        | Some m -> m.L.Memory.id
        | None -> 0)
  in
  let nodes_by_block = Hashtbl.create 32 in
  Array.iter
    (fun (n : D.Node.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt nodes_by_block n.D.Node.block) in
      Hashtbl.replace nodes_by_block n.D.Node.block (cur @ [ n ]))
    df.D.Graph.nodes;
  let node_cost (n : D.Node.t) =
    let unit_ = L.Graph.unit_ lnic mapping.M.node_unit.(n.D.Node.id) in
    let ctx =
      {
        D.Cost.lnic;
        exec_unit = unit_;
        state_region;
        state_footprint = footprint;
        packet_region =
          Clara_mapping.Encode.packet_region_for lnic unit_
            ~packet_bytes:sizes.D.Cost.packet_bytes;
        sizes;
      }
    in
    Option.value ~default:0. (D.Cost.node_cycles ctx n)
  in
  let wire ~emits =
    let params = lnic.L.Graph.params in
    let hub kind =
      match
        List.find_opt (fun h -> h.L.Hub.kind = kind) (Array.to_list lnic.L.Graph.hubs)
      with
      | Some h -> float_of_int h.L.Hub.per_packet_cycles
      | None -> 0.
    in
    L.Cost_fn.eval params.P.wire_ingress sizes.D.Cost.packet_bytes
    +. hub `Ingress
    +.
    if emits then L.Cost_fn.eval params.P.wire_egress sizes.D.Cost.packet_bytes +. hub `Egress
    else 0.
  in
  let results = ref [] in
  let count = ref 0 in
  (* DFS over the structured CFG; [assign] fixes atomic guards already
     decided on this path.  [stop] is a stack of enclosing loop headers;
     jumping to the innermost one ends the current iteration walk. *)
  let rec walk bid ~stop ~assign ~decisions ~cost ~emits ~depth =
    if !count >= max_paths || depth > 4096 then ()
    else begin
      let cost, emits =
        List.fold_left
          (fun (c, e) (n : D.Node.t) ->
            ( c +. node_cost n,
              e
              ||
              match n.D.Node.kind with
              | D.Node.N_vcall v -> v.Ir.vc = P.V_emit
              | _ -> false ))
          (cost, emits)
          (Option.value ~default:[] (Hashtbl.find_opt nodes_by_block bid))
      in
      match (Ir.block cir bid).Ir.term with
      | Ir.Ret ->
          incr count;
          results :=
            { decisions = List.rev decisions;
              cost_cycles = cost +. wire ~emits;
              emits;
              description = describe (List.rev decisions) }
            :: !results
      | Ir.Jump d ->
          (match stop with
          | header :: outer when d = header ->
              (* Loop iteration boundary: resume at the loop's exit. *)
              (match (Ir.block cir header).Ir.term with
              | Ir.Loop { exit; _ } ->
                  walk exit ~stop:outer ~assign ~decisions ~cost ~emits
                    ~depth:(depth + 1)
              | _ -> ())
          | _ -> walk d ~stop ~assign ~decisions ~cost ~emits ~depth:(depth + 1))
      | Ir.Cond { guard; then_; else_ } ->
          let needed = atoms guard in
          let undecided = List.filter (fun a -> not (List.mem_assoc a assign)) needed in
          let rec assignments acc = function
            | [] -> [ acc ]
            | a :: rest ->
                assignments ((a, true) :: acc) rest @ assignments ((a, false) :: acc) rest
          in
          let feasible assign =
            (* Protocols are mutually exclusive: at most one G_proto atom
               may hold. *)
            let protos_true =
              List.filter
                (fun (g, v) -> v && match g with Ir.G_proto _ -> true | _ -> false)
                assign
            in
            List.length protos_true <= 1
          in
          List.iter
            (fun extra ->
              let assign = extra @ assign in
              if not (feasible assign) then ()
              else
              let v = eval_guard assign guard in
              let decisions =
                (* Record only newly-decided atoms to keep descriptions
                   short. *)
                List.rev_append
                  (List.map (fun (g, taken) -> { guard = g; taken }) extra)
                  decisions
              in
              walk (if v then then_ else else_) ~stop ~assign ~decisions ~cost ~emits
                ~depth:(depth + 1))
            (assignments [] undecided)
      | Ir.Loop { body; exit = _; trip = _ } ->
          (* Body nodes carry trips; walk body once, then exit. *)
          walk body ~stop:(bid :: stop) ~assign ~decisions ~cost ~emits
            ~depth:(depth + 1)
    end
  in
  walk cir.Ir.entry ~stop:[] ~assign:[] ~decisions:[] ~cost:0. ~emits:false ~depth:0;
  List.sort (fun a b -> compare b.cost_cycles a.cost_cycles) !results

let pp_path fmt p =
  Format.fprintf fmt "%-40s %10.0f cyc %s" p.description p.cost_cycles
    (if p.emits then "emit" else "drop")
