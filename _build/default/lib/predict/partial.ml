module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module M = Clara_mapping.Mapping

type side = On_nic | On_host

type split = {
  cut : int;
  assignment : (int * side) list;
  nic_ns : float;
  host_ns : float;
  pcie_ns : float;
  total_ns : float;
}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let node_state (n : D.Node.t) =
  match n.D.Node.kind with
  | D.Node.N_vcall v -> v.Ir.state
  | D.Node.N_compute is ->
      List.find_map
        (function
          | Ir.Load (Ir.L_state s) | Ir.Store (Ir.L_state s) | Ir.Atomic_op (Ir.L_state s) ->
              Some s
          | _ -> None)
        is

(* Cost of one node on a target graph, using the target's fastest core
   (host) or the mapping's unit (NIC). *)
let node_ns target unit_ ~sizes ~footprint ~state_region (n : D.Node.t) =
  let ctx =
    {
      D.Cost.lnic = target;
      exec_unit = unit_;
      state_region;
      state_footprint = footprint;
      packet_region =
        Clara_mapping.Encode.packet_region_for target unit_
          ~packet_bytes:sizes.D.Cost.packet_bytes;
      sizes;
    }
  in
  match D.Cost.node_cycles ctx n with
  | None -> None
  | Some cycles -> Some (cycles *. 1000. /. float_of_int unit_.L.Unit_.freq_mhz)

let enumerate_splits ?(sizes = default_sizes) ?(prob = D.Flow.default_probability) lnic
    (df : D.Graph.t) (mapping : M.t) =
  let host = L.Host.default in
  let states = D.Graph.states df in
  let sizes =
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          match List.find_opt (fun o -> o.Ir.st_name = s) states with
          | Some o -> float_of_int o.Ir.st_entries
          | None -> 0.) }
  in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let nic_state_region s =
    match M.placement_of_state mapping s with
    | Some (M.In_memory m) -> m
    | _ -> (
        match
          Array.to_list lnic.L.Graph.memories
          |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
        with
        | Some m -> m.L.Memory.id
        | None -> 0)
  in
  (* Host state always lives in host DRAM (LLC-cached). *)
  let host_dram =
    match
      Array.to_list host.L.Graph.memories
      |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
    with
    | Some m -> m.L.Memory.id
    | None -> 0
  in
  let host_core = List.hd (L.Graph.general_cores host) in
  let weights = D.Flow.node_weights df ~prob in
  let order = Array.of_list (D.Graph.topo_order df) in
  let n = Array.length order in
  (* Per-node expected ns on each side. *)
  let nic_cost = Array.make n 0. in
  let host_cost = Array.make n 0. in
  let feasible_nic = Array.make n true in
  Array.iteri
    (fun pos nid ->
      let node = D.Graph.node df nid in
      let w = weights.(nid) in
      (match
         node_ns lnic
           (L.Graph.unit_ lnic mapping.M.node_unit.(nid))
           ~sizes ~footprint ~state_region:nic_state_region node
       with
      | Some ns -> nic_cost.(pos) <- w *. ns
      | None -> feasible_nic.(pos) <- false);
      match
        node_ns host host_core ~sizes ~footprint
          ~state_region:(fun _ -> host_dram)
          node
      with
      | Some ns -> host_cost.(pos) <- w *. ns
      | None ->
          (* Host cores run everything in software. *)
          host_cost.(pos) <- w *. 1000.)
    order;
  (* A cut k puts order[0..k-1] on the NIC.  Feasibility: no state used
     on both sides. *)
  let state_sides k =
    let nic_states = Hashtbl.create 4 and host_states = Hashtbl.create 4 in
    Array.iteri
      (fun pos nid ->
        match node_state (D.Graph.node df nid) with
        | None -> ()
        | Some s ->
            if pos < k then Hashtbl.replace nic_states s ()
            else Hashtbl.replace host_states s ())
      order;
    Hashtbl.fold (fun s () acc -> acc && not (Hashtbl.mem host_states s)) nic_states true
  in
  let wire_ns target bytes which =
    let params = target.L.Graph.params in
    let f =
      match which with
      | `In -> params.Clara_lnic.Params.wire_ingress
      | `Out -> params.Clara_lnic.Params.wire_egress
    in
    let freq =
      match L.Graph.general_cores target with
      | u :: _ -> float_of_int u.L.Unit_.freq_mhz
      | [] -> 1000.
    in
    L.Cost_fn.eval f bytes *. 1000. /. freq
  in
  let bytes = sizes.D.Cost.packet_bytes in
  let splits = ref [] in
  for k = 0 to n do
    let nic_feasible = Array.for_all Fun.id (Array.init k (fun i -> feasible_nic.(i))) in
    if nic_feasible && state_sides k then begin
      let sum arr lo hi =
        let acc = ref 0. in
        for i = lo to hi - 1 do
          acc := !acc +. arr.(i)
        done;
        !acc
      in
      let nic_compute = sum nic_cost 0 k in
      let host_compute = sum host_cost k n in
      (* Wire: the NIC always receives the packet; whoever runs the tail
         transmits.  A non-trivial host part adds one PCIe round trip. *)
      let nic_ns = wire_ns lnic bytes `In +. nic_compute +. (if k = n then wire_ns lnic bytes `Out else 0.) in
      let host_ns = if k = n then 0. else host_compute +. wire_ns L.Host.default bytes `Out in
      let pcie_ns = if k = n then 0. else L.Host.pcie_roundtrip_ns in
      let assignment =
        Array.to_list (Array.mapi (fun pos nid -> (nid, if pos < k then On_nic else On_host)) order)
      in
      splits :=
        { cut = k;
          assignment;
          nic_ns;
          host_ns;
          pcie_ns;
          total_ns = nic_ns +. host_ns +. pcie_ns }
        :: !splits
    end
  done;
  List.sort (fun a b -> compare a.total_ns b.total_ns) !splits

let best_split ?sizes ?prob lnic df mapping =
  match enumerate_splits ?sizes ?prob lnic df mapping with
  | best :: _ -> best
  | [] -> failwith "Partial.best_split: no feasible split (not even all-host?)"

let describe (df : D.Graph.t) s =
  let n = List.length s.assignment in
  if s.cut = n then "fully offloaded to the NIC"
  else if s.cut = 0 then "fully on the host"
  else begin
    let nic_vcalls =
      List.filter_map
        (fun (nid, side) ->
          if side = On_nic then
            match (D.Graph.node df nid).D.Node.kind with
            | D.Node.N_vcall v -> Some (Clara_lnic.Params.vcall_name v.Ir.vc)
            | _ -> None
          else None)
        s.assignment
    in
    Printf.sprintf "NIC runs [%s]; rest on host" (String.concat ", " nic_vcalls)
  end

let pp fmt s =
  Format.fprintf fmt "cut@%d: nic %.0f ns + pcie %.0f ns + host %.0f ns = %.0f ns" s.cut
    s.nic_ns s.pcie_ns s.host_ns s.total_ns
