(** Energy prediction (§6 future work; motivated by E3's observation
    that NIC cores are more energy-efficient than server CPUs).

    A simple activity-based model: every compute unit has an active power
    draw; a packet's energy is Σ (cycles on unit / unit clock) × power,
    plus the NIC's idle power amortized over the offered rate.  Per-unit
    powers default to representative values (NPU ≈ 0.35 W, ARM core
    ≈ 1.8 W, Xeon core ≈ 9 W, accelerators ≈ 0.2–0.5 W) and can be
    overridden. *)

type power_table = {
  general_core_w : float;
  accel_w : Clara_lnic.Unit_.accel_kind -> float;
  idle_w : float;            (** Board idle draw. *)
  dma_w_per_gbps : float;    (** Wire DMA energy per Gbps moved. *)
}

val default_powers : Clara_lnic.Graph.t -> power_table
(** Heuristic per-target defaults keyed on core clock (NPU-class vs
    ARM-class vs Xeon-class). *)

type t = {
  nj_per_packet : float;        (** Dynamic energy per packet. *)
  watts_at_rate : float;        (** Idle + dynamic power at the profile rate. *)
  nj_per_packet_total : float;  (** Including the amortized idle share. *)
  breakdown : (string * float) list;  (** nJ per packet per resource. *)
}

val estimate :
  ?powers:power_table ->
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  rate_pps:float ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  t

val pp : Format.formatter -> t -> unit
