module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module W = Clara_workload

type report = {
  solo_cycles : float;
  sliced_cycles : float;
  contended_cycles : float;
  slowdown : float;
}

let shrink_emem_cache (g : L.Graph.t) ~by_bytes =
  let memories =
    Array.map
      (fun (m : L.Memory.t) ->
        match (m.L.Memory.level, m.L.Memory.cache) with
        | L.Memory.External, Some c ->
            let remaining = max (64 * 1024) (c.L.Memory.cache_bytes - by_bytes) in
            { m with L.Memory.cache = Some { c with L.Memory.cache_bytes = remaining } }
        | _ -> m)
      g.L.Graph.memories
  in
  { g with L.Graph.memories }

let pipeline ?options lnic ~source ~sizes ~prob =
  match Clara_cir.Lower.lower_source source with
  | exception Failure m -> Error m
  | exception Clara_cir.Parser.Error (m, _) -> Error m
  | exception Clara_cir.Lexer.Error (m, _) -> Error m
  | ir -> (
      let ir, _ = Clara_cir.Patterns.run ir in
      let df = D.Build.of_ir ir in
      match Clara_mapping.Encode.map_nf ?options lnic df ~sizes ~prob with
      | Error e -> Error e
      | Ok m -> Ok (df, m))

let state_footprint_of df =
  List.fold_left (fun acc s -> acc + Ir.state_bytes s) 0 (D.Graph.states df)

(* Cycles per packet spent on accelerators under a mapping. *)
let accel_cycles_per_packet lnic df mapping ~sizes ~prob =
  let tp = Throughput.estimate ~sizes ~prob lnic df mapping in
  List.fold_left
    (fun acc (r : Throughput.bottleneck) ->
      if r.Throughput.parallelism = 1 && r.Throughput.resource <> "wire-dma" then
        acc +. r.Throughput.cycles_per_packet
      else acc)
    0. tp.Throughput.resources

let analyze_pair ?options lnic ~source_a ~source_b ~profile =
  let sizes =
    {
      D.Cost.payload_bytes = W.Profile.mean_payload profile;
      packet_bytes = W.Profile.mean_packet_bytes profile;
      header_bytes = 50.;
      state_entries = (fun _ -> 0.);
      opaque_trip = 1.;
    }
  in
  let prob = D.Flow.default_probability in
  let trace = W.Trace.synthesize ~seed:17L profile in
  let predict lnic' df mapping =
    let p = Latency.create lnic' df mapping in
    (Latency.predict_trace p trace).Latency.mean_cycles
  in
  let half = L.Graph.slice lnic ~keep_num:1 ~keep_den:2 in
  let run source other_footprint other_accel_u =
    match pipeline ?options lnic ~source ~sizes ~prob with
    | Error e -> Error e
    | Ok (df_full, m_full) -> (
        let solo = predict lnic df_full m_full in
        match pipeline ?options half ~source ~sizes ~prob with
        | Error e -> Error e
        | Ok (df_half, m_half) -> (
            let sliced = predict half df_half m_half in
            let shrunk = shrink_emem_cache half ~by_bytes:other_footprint in
            match pipeline ?options shrunk ~source ~sizes ~prob with
            | Error e -> Error e
            | Ok (df_c, m_c) ->
                let base = predict shrunk df_c m_c in
                (* Head-of-line blocking on shared accelerators: inflate
                   this NF's accelerator time by the co-resident
                   utilization (M/M/1-style, capped). *)
                let own_accel = accel_cycles_per_packet shrunk df_c m_c ~sizes ~prob in
                let u = Float.min 0.9 other_accel_u in
                let contended = base +. (own_accel *. (u /. (1. -. u))) in
                Ok (solo, sliced, contended)))
  in
  (* First pass to get each side's footprint and accelerator utilization. *)
  let precompute source =
    match pipeline ?options lnic ~source ~sizes ~prob with
    | Error e -> Error e
    | Ok (df, m) ->
        let fp = state_footprint_of df in
        let accel_cyc = accel_cycles_per_packet lnic df m ~sizes ~prob in
        let freq =
          match L.Graph.general_cores lnic with
          | u :: _ -> float_of_int u.L.Unit_.freq_mhz *. 1e6
          | [] -> 1e9
        in
        Ok (fp, profile.W.Profile.rate_pps *. accel_cyc /. freq)
  in
  match (precompute source_a, precompute source_b) with
  | Error e, _ | _, Error e -> Error e
  | Ok (fp_a, u_a), Ok (fp_b, u_b) -> (
      match (run source_a fp_b u_b, run source_b fp_a u_a) with
      | Error e, _ | _, Error e -> Error e
      | Ok (solo_a, sliced_a, cont_a), Ok (solo_b, sliced_b, cont_b) ->
          let mk solo sliced contended =
            { solo_cycles = solo;
              sliced_cycles = sliced;
              contended_cycles = contended;
              slowdown = contended /. solo }
          in
          Ok (mk solo_a sliced_a cont_a, mk solo_b sliced_b cont_b))
