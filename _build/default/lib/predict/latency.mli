(** Per-packet latency prediction (§3.5).

    Given the mapped NF, Clara simulates how each workload packet
    traverses the parameterized LNIC: guards resolve against the packet
    (protocol, flags) and against tracked abstract state (a flow-table
    membership set, so the first packet of a flow really takes the miss
    path); node costs are priced by {!Clara_dataflow.Cost} with the
    packet's own sizes; wire/hub constants bracket the path.  Averaging
    over a trace yields the Figure 3 "Predicted" series. *)

type config = {
  scan_match_fraction : float;  (** DPI match probability. *)
  exceed_fraction : float;      (** Counter-threshold crossing probability. *)
  opaque_fraction : float;      (** Unrecognized guards. *)
  seed : int64;                 (** For probabilistic guard resolution. *)
  include_wire : bool;
      (** Charge wire DMA + hub constants per packet (on by default);
          chains turn this off per stage and charge the wire once. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  t

type per_packet = { cycles : float; emitted : bool }

val packet_latency : t -> Clara_workload.Packet.t -> per_packet
(** Stateful: table-hit guards depend on the packets seen so far. *)

val reset_state : t -> unit
(** Forget tracked flow state (fresh run). *)

type prediction = {
  mean_cycles : float;
  p50_cycles : float;
  p99_cycles : float;
  tcp_mean : float;
  udp_mean : float;
  syn_mean : float;
  emitted_fraction : float;
}

val predict_trace : t -> Clara_workload.Trace.t -> prediction
(** Resets state, then walks every packet. *)

val pp_prediction : Format.formatter -> prediction -> unit

val wire_cycles :
  Clara_lnic.Graph.t -> Clara_workload.Packet.t -> emitted:bool -> float
(** Wire DMA + hub constants for one packet on a target. *)
