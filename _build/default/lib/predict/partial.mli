(** Partial offloading (§6 future work).

    Split the NF into a SmartNIC-resident prefix and a host-resident
    suffix.  Candidate cuts are prefixes of the dataflow DAG's
    topological order (control must cross PCIe exactly once, forward);
    a cut is feasible only when no state object is touched on both sides
    (no cache coherence across PCIe, as §6 notes).  Each side is priced
    with its own target model — the NIC side by the existing mapping, the
    host side on {!Clara_lnic.Host} — plus the PCIe round-trip for any
    packet that continues to the host. *)

type side = On_nic | On_host

type split = {
  cut : int;                 (** Nodes before this topo position run on the NIC. *)
  assignment : (int * side) list;  (** Node id → side. *)
  nic_ns : float;
  host_ns : float;
  pcie_ns : float;           (** 0 for the all-NIC split. *)
  total_ns : float;
}

val enumerate_splits :
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  split list
(** All feasible splits including all-NIC (cut = #nodes) and all-host
    (cut = 0), cheapest total first. *)

val best_split :
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  split

val describe : Clara_dataflow.Graph.t -> split -> string
val pp : Format.formatter -> split -> unit
