(** Co-resident NF interference (§3.5).

    The paper's starting point: slice the LNIC so each NF sees "half" the
    NIC, then account for footprints the slices leave in each other's
    shared resources.  We model two cross-terms on top of the sliced
    prediction:
    - {e cache contention}: each NF's effective EMEM cache shrinks by the
      co-resident NF's state footprint (misses rise);
    - {e accelerator head-of-line blocking}: shared accelerators serve
      both NFs; each NF's accelerator operations are inflated by the
      utilization the other NF induces. *)

type report = {
  solo_cycles : float;     (** NF alone on the full NIC. *)
  sliced_cycles : float;   (** NF alone on its half-slice. *)
  contended_cycles : float;  (** Slice + cross-terms. *)
  slowdown : float;        (** contended / solo. *)
}

val analyze_pair :
  ?options:Clara_mapping.Mapping.options ->
  Clara_lnic.Graph.t ->
  source_a:string ->
  source_b:string ->
  profile:Clara_workload.Profile.t ->
  ((report * report), string) result
(** Reports for NF A and NF B when sharing the NIC half-and-half under
    the same traffic profile each. *)
