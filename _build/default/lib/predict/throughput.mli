(** Idealized throughput estimation (§3.5, §6).

    A bottleneck model over the mapped NF: each hardware resource
    (general-core pool per island class, each accelerator, the wire DMA
    engines) is charged its expected per-packet cycles; its capacity is
    its parallelism × clock.  Sustainable throughput is the minimum of
    capacity/demand over resources — "idealized" because queueing and
    batching effects are ignored, exactly the paper's framing. *)

type bottleneck = {
  resource : string;          (** Unit or pool name. *)
  cycles_per_packet : float;  (** Expected demand. *)
  parallelism : int;          (** Hardware threads (1 for accelerators). *)
  max_pps : float;            (** This resource's own ceiling. *)
}

type t = {
  max_pps : float;           (** min over resources. *)
  gbps_at_mean_packet : float;
  bottleneck : bottleneck;
  resources : bottleneck list;  (** All resources, ascending [max_pps]. *)
}

val estimate :
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  t

val pp : Format.formatter -> t -> unit

val latency_at_rate :
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  base_cycles:float ->
  rate_pps:float ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  float option
(** Predicted mean latency (cycles) at an offered load: the uncontended
    baseline plus per-resource queueing delay from an M/M/k approximation
    (Sakasegawa) over each resource's utilization — the §6 "queueing
    capacity and discipline" extension.  [None] when the rate exceeds the
    bottleneck capacity (the system is unstable; latency diverges). *)
