lib/predict/symexec.mli: Clara_cir Clara_dataflow Clara_lnic Clara_mapping Format
