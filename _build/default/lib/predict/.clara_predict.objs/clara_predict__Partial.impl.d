lib/predict/partial.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Format Fun Hashtbl List Printf String
