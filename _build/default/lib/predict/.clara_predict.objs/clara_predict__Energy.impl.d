lib/predict/energy.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Format Hashtbl List Option
