lib/predict/interference.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Clara_workload Float Latency List Throughput
