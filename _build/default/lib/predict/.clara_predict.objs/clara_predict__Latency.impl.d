lib/predict/latency.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Clara_util Clara_workload Float Format Hashtbl List Option Printf
