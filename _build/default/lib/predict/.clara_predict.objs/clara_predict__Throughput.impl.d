lib/predict/throughput.ml: Array Clara_cir Clara_dataflow Clara_lnic Clara_mapping Float Format Hashtbl List Option
