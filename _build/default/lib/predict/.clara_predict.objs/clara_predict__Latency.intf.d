lib/predict/latency.mli: Clara_dataflow Clara_lnic Clara_mapping Clara_workload Format
