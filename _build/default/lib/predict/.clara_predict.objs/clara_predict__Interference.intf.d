lib/predict/interference.mli: Clara_lnic Clara_mapping Clara_workload
