(** Symbolic path enumeration (§3.5's alternative to trace simulation).

    Instead of walking concrete packets, enumerate every feasible path
    through the NF's CFG, recording the guard decisions that select it.
    Each path becomes a {e packet-type profile}: "TCP SYN packets take
    this path and cost this much; established-flow packets hit the table
    and cost less" — exactly the § 3.5 example output. *)

type decision = { guard : Clara_cir.Ir.guard; taken : bool }

type path = {
  decisions : decision list;
  cost_cycles : float;       (** At the evaluation sizes, wire included. *)
  emits : bool;
  description : string;      (** Human-readable packet-type summary. *)
}

val enumerate :
  ?max_paths:int ->
  ?sizes:Clara_dataflow.Cost.sizes ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  path list
(** Paths in decreasing cost order.  [max_paths] (default 64) bounds the
    enumeration; guards encountered twice on one path resolve
    consistently.  [sizes] defaults to a 300-byte payload. *)

val pp_path : Format.formatter -> path -> unit
