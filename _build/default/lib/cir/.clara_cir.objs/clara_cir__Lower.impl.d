lib/cir/lower.ml: Array Ast Builtins Clara_lnic Ir List Option Parser Printf Typecheck
