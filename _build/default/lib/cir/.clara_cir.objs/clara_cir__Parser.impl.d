lib/cir/parser.ml: Ast Format Lexer List Token
