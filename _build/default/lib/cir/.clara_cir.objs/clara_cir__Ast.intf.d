lib/cir/ast.mli: Format
