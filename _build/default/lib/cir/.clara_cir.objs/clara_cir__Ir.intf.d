lib/cir/ir.mli: Ast Clara_lnic Format
