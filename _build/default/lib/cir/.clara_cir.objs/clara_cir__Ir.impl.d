lib/cir/ir.ml: Array Ast Clara_lnic Format List Printf
