lib/cir/ast.ml: Format List String
