lib/cir/lower.mli: Ast Ir
