lib/cir/lexer.mli: Ast Token
