lib/cir/typecheck.mli: Ast Format
