lib/cir/builtins.ml: Ast List
