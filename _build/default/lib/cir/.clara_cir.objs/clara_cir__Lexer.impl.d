lib/cir/lexer.ml: Ast List Printf String Token
