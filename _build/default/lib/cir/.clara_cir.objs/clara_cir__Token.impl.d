lib/cir/token.ml: Ast Format
