lib/cir/patterns.mli: Ir
