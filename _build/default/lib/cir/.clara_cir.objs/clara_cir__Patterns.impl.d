lib/cir/patterns.ml: Array Clara_lnic Ir List
