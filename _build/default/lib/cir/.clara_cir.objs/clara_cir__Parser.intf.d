lib/cir/parser.mli: Ast Token
