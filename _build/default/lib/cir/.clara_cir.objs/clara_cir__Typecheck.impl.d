lib/cir/typecheck.ml: Ast Builtins Format List Option Printf String
