lib/cir/builtins.mli: Ast
