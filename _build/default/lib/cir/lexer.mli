(** Hand-written lexer for the NF DSL.

    Supports [//] line comments and [/* ... */] block comments, decimal
    and hexadecimal integer literals, and float literals. *)

exception Error of string * Ast.pos

val tokenize : string -> Token.t list
(** @raise Error on an unrecognized character or malformed literal. *)
