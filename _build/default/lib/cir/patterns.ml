module P = Clara_lnic.Params

type report = {
  loops_coarsened : int;
  parses_recognized : int;
  blocks_removed : int;
}

(* ------------------------------------------------------------------ *)
(* Reachability + renumbering                                          *)

let reachable (p : Ir.program) =
  let seen = Array.make (Array.length p.blocks) false in
  let rec go bid =
    if not seen.(bid) then begin
      seen.(bid) <- true;
      List.iter go (Ir.successors (Ir.block p bid).Ir.term)
    end
  in
  go p.entry;
  seen

let eliminate_dead_blocks (p : Ir.program) =
  let seen = reachable p in
  let n = Array.length p.blocks in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if seen.(i) then begin
      remap.(i) <- !next;
      incr next
    end
  done;
  let removed = n - !next in
  if removed = 0 then (p, 0)
  else begin
    let retarget = function
      | Ir.Jump b -> Ir.Jump remap.(b)
      | Ir.Cond { guard; then_; else_ } ->
          Ir.Cond { guard; then_ = remap.(then_); else_ = remap.(else_) }
      | Ir.Loop { body; exit; trip } -> Ir.Loop { body = remap.(body); exit = remap.(exit); trip }
      | Ir.Ret -> Ir.Ret
    in
    let blocks =
      Array.of_list
        (List.filter_map
           (fun (b : Ir.block) ->
             if seen.(b.bid) then
               Some { b with Ir.bid = remap.(b.bid); term = retarget b.term }
             else None)
           (Array.to_list p.blocks))
    in
    ({ p with Ir.entry = remap.(p.entry); blocks }, removed)
  end

(* ------------------------------------------------------------------ *)
(* Loop-body collection                                                *)

(* Blocks of a structured loop body: reachable from [body] without
   passing through [header] or [exit]. *)
let body_blocks (p : Ir.program) ~header ~body ~exit =
  let seen = ref [] in
  let rec go bid =
    if bid <> header && bid <> exit && not (List.mem bid !seen) then begin
      seen := bid :: !seen;
      List.iter go (Ir.successors (Ir.block p bid).Ir.term)
    end
  in
  go body;
  !seen

(* ------------------------------------------------------------------ *)
(* Loop classification                                                 *)

type loop_shape = Sh_checksum | Sh_scan | Sh_unknown

let classify_loop (p : Ir.program) blocks =
  (* A coarsenable loop touches only the packet (no state, no vcalls) and
     does register-level arithmetic. Branching inside the body signals
     per-byte comparisons, i.e. scanning. *)
  let ok = ref true in
  let packet_loads = ref 0 in
  let branches = ref 0 in
  List.iter
    (fun bid ->
      let b = Ir.block p bid in
      List.iter
        (fun (i : Ir.instr) ->
          match i with
          | Ir.Load Ir.L_packet -> incr packet_loads
          | Ir.Load Ir.L_local | Ir.Store Ir.L_local -> ()
          (* Op Branch covers the loop's own step/condition bookkeeping;
             data-dependent branching shows up as Cond terminators. *)
          | Ir.Op (P.Alu | P.Move | P.Mul | P.Hash | P.Branch) -> ()
          | Ir.Op _ | Ir.Load _ | Ir.Store _ | Ir.Atomic_op _ | Ir.Vcall _ ->
              ok := false)
        b.Ir.instrs;
      match b.Ir.term with
      | Ir.Cond _ -> incr branches
      | Ir.Jump _ | Ir.Ret -> ()
      | Ir.Loop _ -> ok := false (* nested loops stay uncoarsened *))
    blocks;
  if (not !ok) || !packet_loads = 0 then Sh_unknown
  else if !branches > 0 then Sh_scan
  else Sh_checksum

let rec strip_size = function
  | Ir.S_scaled (e, _) | Ir.S_plus (e, _) -> strip_size e
  | e -> e

let payloadish = function
  | Ir.S_payload | Ir.S_packet | Ir.S_header -> true
  | Ir.S_const _ | Ir.S_state_entries _ | Ir.S_opaque -> false
  | Ir.S_scaled _ | Ir.S_plus _ -> false

(* ------------------------------------------------------------------ *)
(* Entry-parse recognition                                             *)

let has_parse_vcall (p : Ir.program) =
  List.exists (fun v -> v.Ir.vc = P.V_parse_header) (Ir.vcalls_of p)

(* A run of >= 4 packet loads (interleaved with moves/alu) before any
   vcall in the entry block is hand-written header parsing. *)
let recognize_entry_parse (p : Ir.program) =
  if has_parse_vcall p then (p, 0)
  else begin
    let entry = Ir.block p p.entry in
    let prefix, rest =
      let rec split acc = function
        | (Ir.Vcall _ :: _ | []) as rest -> (List.rev acc, rest)
        | i :: rest -> split (i :: acc) rest
      in
      split [] entry.Ir.instrs
    in
    let loads =
      List.length (List.filter (function Ir.Load Ir.L_packet -> true | _ -> false) prefix)
    in
    let pure =
      List.for_all
        (function
          | Ir.Load Ir.L_packet | Ir.Op (P.Alu | P.Move | P.Branch) -> true
          | _ -> false)
        prefix
    in
    if loads >= 4 && pure then begin
      let instrs = Ir.vcall P.V_parse_header Ir.S_header :: rest in
      let blocks =
        Array.map
          (fun (b : Ir.block) -> if b.Ir.bid = p.entry then { b with Ir.instrs } else b)
          p.blocks
      in
      ({ p with Ir.blocks }, 1)
    end
    else (p, 0)
  end

(* ------------------------------------------------------------------ *)
(* Main pass                                                           *)

let coarsen_loops (p : Ir.program) =
  let coarsened = ref 0 in
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        match b.Ir.term with
        | Ir.Loop { body; exit; trip } when payloadish (strip_size trip) -> (
            let bblocks = body_blocks p ~header:b.Ir.bid ~body ~exit in
            match classify_loop p bblocks with
            | Sh_unknown -> b
            | shape ->
                let vc, size =
                  match shape with
                  | Sh_checksum -> (P.V_checksum, strip_size trip)
                  | Sh_scan | Sh_unknown -> (P.V_payload_scan, strip_size trip)
                in
                incr coarsened;
                { b with
                  Ir.instrs = b.Ir.instrs @ [ Ir.vcall vc size ];
                  term = Ir.Jump exit })
        | _ -> b)
      p.blocks
  in
  ({ p with Ir.blocks }, !coarsened)

let run (p : Ir.program) =
  let p, loops_coarsened = coarsen_loops p in
  let p, parses_recognized = recognize_entry_parse p in
  let p, blocks_removed = eliminate_dead_blocks p in
  (p, { loops_coarsened; parses_recognized; blocks_removed })
