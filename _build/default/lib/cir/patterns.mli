(** Pattern matching over CIR: coarsening to semantic units (§3.3).

    LLVM basic blocks are sometimes too fine-grained — header parsing or a
    software checksum spans several blocks and should map to the NIC as a
    whole.  This pass recognizes such shapes and rewrites them into single
    virtual calls, the same way Clara substitutes framework calls:

    - a counted loop over payload bytes doing only arithmetic is a
      {e checksum-style} reduction → [V_checksum];
    - a counted loop over payload bytes containing per-byte comparisons /
      branching is a {e scan} (DPI-style) → [V_payload_scan];
    - a run of packet loads before any parsing at program entry is
      hand-written {e header parsing} → [V_parse_header].

    NFs written against framework APIs and NFs written with raw loops
    therefore reach the mapping stage in the same shape. *)

type report = {
  loops_coarsened : int;
  parses_recognized : int;
  blocks_removed : int;
}

val run : Ir.program -> Ir.program * report
(** Returns the rewritten program (dead blocks eliminated, blocks
    renumbered) and what was recognized. *)

val eliminate_dead_blocks : Ir.program -> Ir.program * int
(** Drop unreachable blocks and renumber; returns removed count. *)
