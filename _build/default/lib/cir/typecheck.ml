type error = { msg : string; pos : Ast.pos }

type env = {
  consts : (string * int) list;
  states : (string * Ast.state_decl) list;
  mutable vars : (string * Ast.typ) list; (* innermost first *)
  mutable errors : error list;
}

let err env pos fmt =
  Printf.ksprintf (fun msg -> env.errors <- { msg; pos } :: env.errors) fmt

let var_type env name = List.assoc_opt name env.vars

(* Expression typing; [pos] is the enclosing statement's position. *)
let rec type_expr env pos (e : Ast.expr) : Ast.typ =
  match e with
  | Ast.Int _ -> Ast.T_int
  | Ast.Float _ -> Ast.T_float
  | Ast.Bool _ -> Ast.T_bool
  | Ast.Ident name -> (
      match var_type env name with
      | Some t -> t
      | None ->
          if List.mem_assoc name env.consts then Ast.T_int
          else if List.mem_assoc name env.states then begin
            err env pos "state '%s' used as a value (pass it to a table builtin)" name;
            Ast.T_int
          end
          else begin
            err env pos "unknown identifier '%s'" name;
            Ast.T_int
          end)
  | Ast.Field (obj, field) -> (
      match var_type env obj with
      | Some Ast.T_header ->
          if not (Builtins.is_header_field field) then
            err env pos "unknown header field '%s'" field;
          Ast.T_int
      | Some Ast.T_entry ->
          (* Entry field reads are opaque ints. *)
          Ast.T_int
      | Some t ->
          err env pos "'%s' has type %s, which has no fields" obj (Ast.typ_name t);
          Ast.T_int
      | None ->
          err env pos "unknown identifier '%s'" obj;
          Ast.T_int)
  | Ast.Call (fn, args) -> type_call env pos fn args
  | Ast.Binop (op, a, b) -> (
      let ta = type_expr env pos a and tb = type_expr env pos b in
      match op with
      | Ast.And | Ast.Or ->
          if ta <> Ast.T_bool then err env pos "left of %s must be bool" (Ast.binop_name op);
          if tb <> Ast.T_bool then err env pos "right of %s must be bool" (Ast.binop_name op);
          Ast.T_bool
      | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
          if ta <> tb && not (is_numeric ta && is_numeric tb) then
            err env pos "comparison of %s and %s" (Ast.typ_name ta) (Ast.typ_name tb);
          Ast.T_bool
      | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div | Ast.Mod ->
          if not (is_numeric ta) then err env pos "left of %s must be numeric" (Ast.binop_name op);
          if not (is_numeric tb) then err env pos "right of %s must be numeric" (Ast.binop_name op);
          if ta = Ast.T_float || tb = Ast.T_float then Ast.T_float else Ast.T_int
      | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
          if ta <> Ast.T_int then err env pos "left of %s must be int" (Ast.binop_name op);
          if tb <> Ast.T_int then err env pos "right of %s must be int" (Ast.binop_name op);
          Ast.T_int)
  | Ast.Unop (Ast.Not, e) ->
      if type_expr env pos e <> Ast.T_bool then err env pos "'!' needs a bool";
      Ast.T_bool
  | Ast.Unop (Ast.Neg, e) ->
      let t = type_expr env pos e in
      if not (is_numeric t) then err env pos "'-' needs a number";
      t
  | Ast.Unop (Ast.Bnot, e) ->
      if type_expr env pos e <> Ast.T_int then err env pos "'~' needs an int";
      Ast.T_int

and is_numeric = function Ast.T_int | Ast.T_float -> true | _ -> false

and type_call env pos fn args =
  match Builtins.lookup fn with
  | None ->
      err env pos "unknown function '%s'" fn;
      List.iter (fun a -> ignore (type_expr env pos a)) args;
      Ast.T_int
  | Some sg ->
      let nfixed = List.length sg.Builtins.args in
      let nargs = List.length args in
      if nargs < nfixed then err env pos "'%s' expects at least %d argument(s), got %d" fn nfixed nargs
      else if nargs > nfixed && not sg.Builtins.variadic_int then
        err env pos "'%s' expects %d argument(s), got %d" fn nfixed nargs;
      List.iteri
        (fun i arg ->
          let expected =
            if i < nfixed then Some (List.nth sg.Builtins.args i)
            else if sg.Builtins.variadic_int then Some Builtins.A_int
            else None
          in
          match expected with
          | None -> ignore (type_expr env pos arg)
          | Some (Builtins.A_state kinds) -> (
              match arg with
              | Ast.Ident name -> (
                  match List.assoc_opt name env.states with
                  | None -> err env pos "'%s' argument %d: unknown state '%s'" fn (i + 1) name
                  | Some decl ->
                      if not (List.mem decl.Ast.s_kind kinds) then
                        err env pos "'%s' argument %d: state '%s' has the wrong kind" fn
                          (i + 1) name)
              | _ -> err env pos "'%s' argument %d must be a state name" fn (i + 1))
          | Some expected ->
              let t = type_expr env pos arg in
              let ok =
                match expected with
                | Builtins.A_packet -> t = Ast.T_packet
                | Builtins.A_header -> t = Ast.T_header
                | Builtins.A_entry -> t = Ast.T_entry
                | Builtins.A_int -> t = Ast.T_int || t = Ast.T_bool
                | Builtins.A_state _ -> true
              in
              if not ok then
                err env pos "'%s' argument %d: expected %s" fn (i + 1)
                  (match expected with
                  | Builtins.A_packet -> "a packet"
                  | Builtins.A_header -> "a header"
                  | Builtins.A_entry -> "a table entry"
                  | Builtins.A_int -> "an int"
                  | Builtins.A_state _ -> "a state name"))
        args;
      sg.Builtins.result

let rec check_block env (b : Ast.block) =
  let saved = env.vars in
  List.iter (check_stmt env) b;
  env.vars <- saved

and check_stmt env (s : Ast.stmt) =
  match s with
  | Ast.Var (name, e, pos) ->
      if List.exists (fun (n, _) -> n = name) env.vars then
        err env pos "variable '%s' shadows an existing binding" name;
      let t = type_expr env pos e in
      env.vars <- (name, t) :: env.vars
  | Ast.Assign (name, e, pos) -> (
      let t = type_expr env pos e in
      match var_type env name with
      | None -> err env pos "assignment to undeclared variable '%s'" name
      | Some t0 ->
          if t0 <> t && not (is_numeric t0 && is_numeric t) then
            err env pos "assigning %s to variable of type %s" (Ast.typ_name t)
              (Ast.typ_name t0))
  | Ast.Field_assign (obj, field, e, pos) -> (
      ignore (type_expr env pos e);
      match var_type env obj with
      | Some Ast.T_header ->
          if not (Builtins.is_header_field field) then
            err env pos "unknown header field '%s'" field
      | Some t -> err env pos "cannot assign field of %s" (Ast.typ_name t)
      | None -> err env pos "unknown identifier '%s'" obj)
  | Ast.If (cond, then_, else_, pos) ->
      if type_expr env pos cond <> Ast.T_bool then err env pos "if condition must be bool";
      check_block env then_;
      Option.iter (check_block env) else_
  | Ast.While (cond, body, pos) ->
      if type_expr env pos cond <> Ast.T_bool then err env pos "while condition must be bool";
      check_block env body
  | Ast.For (x, init, cond, step, body, pos) ->
      let t = type_expr env pos init in
      if t <> Ast.T_int then err env pos "for-loop variable must be int";
      let saved = env.vars in
      env.vars <- (x, Ast.T_int) :: env.vars;
      if type_expr env pos cond <> Ast.T_bool then err env pos "for condition must be bool";
      ignore (type_expr env pos step);
      check_block env body;
      env.vars <- saved
  | Ast.Expr (e, pos) -> ignore (type_expr env pos e)
  | Ast.Return _ -> ()

let check (p : Ast.program) =
  let env =
    { consts = p.consts;
      states = List.map (fun s -> (s.Ast.s_name, s)) p.states;
      vars = [ (p.handler.Ast.h_packet, Ast.T_packet) ];
      errors = [] }
  in
  (* Declaration sanity. *)
  List.iter
    (fun (s : Ast.state_decl) ->
      if s.s_entries <= 0 then err env s.s_pos "state '%s' has non-positive capacity" s.s_name;
      if s.s_entry_bytes <= 0 then
        err env s.s_pos "state '%s' has non-positive entry size" s.s_name)
    p.states;
  let names = List.map (fun (s : Ast.state_decl) -> s.s_name) p.states @ List.map fst p.consts in
  let dup =
    List.filter (fun n -> List.length (List.filter (( = ) n) names) > 1) names
    |> List.sort_uniq compare
  in
  List.iter (fun n -> err env p.handler.Ast.h_pos "duplicate declaration '%s'" n) dup;
  check_block env p.handler.Ast.h_body;
  match env.errors with [] -> Ok () | errs -> Error (List.rev errs)

let pp_error fmt e =
  Format.fprintf fmt "%d:%d: %s" e.pos.Ast.line e.pos.Ast.col e.msg

let check_exn p =
  match check p with
  | Ok () -> ()
  | Error errs ->
      let msg =
        String.concat "\n" (List.map (Format.asprintf "%a" pp_error) errs)
      in
      failwith ("NF DSL type errors:\n" ^ msg)
