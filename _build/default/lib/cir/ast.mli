(** Abstract syntax of the NF DSL.

    The DSL is the reproduction's stand-in for "C + framework APIs lowered
    via LLVM" (§3.3): a small C-like language whose builtin calls play the
    role of Click/eBPF framework calls.  Programs are lowered to the Clara
    IR by {!Lower}; Clara never interprets the AST directly. *)

type pos = { line : int; col : int }

type typ =
  | T_int
  | T_float
  | T_bool
  | T_packet   (** The packet handle bound by the handler. *)
  | T_header   (** Result of [parse_header]. *)
  | T_entry    (** Result of a table [lookup]. *)

type state_kind =
  | S_map      (** Exact-match (hash) table. *)
  | S_lpm      (** Longest-prefix-match table. *)
  | S_array
  | S_counter

type state_decl = {
  s_name : string;
  s_kind : state_kind;
  s_entries : int;      (** Capacity in entries. *)
  s_entry_bytes : int;  (** Bytes per entry. *)
  s_pos : pos;
}

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type unop = Not | Neg | Bnot

type expr =
  | Int of int
  | Float of float
  | Bool of bool
  | Ident of string
  | Field of string * string     (** [hdr.src_ip]-style field access. *)
  | Call of string * expr list   (** Builtin / framework call. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
(* Positions are tracked at the statement level; expression-level errors
   report the enclosing statement. *)

type stmt =
  | Var of string * expr * pos          (** [var x = e;] *)
  | Assign of string * expr * pos
  | Field_assign of string * string * expr * pos  (** [hdr.f = e;] *)
  | If of expr * block * block option * pos
  | While of expr * block * pos
  | For of string * expr * expr * expr * block * pos
      (** [for (i = e1; cond; i = e2) body] *)
  | Expr of expr * pos                  (** Call for effect. *)
  | Return of pos

and block = stmt list

type handler = {
  h_name : string;
  h_packet : string;  (** Name the packet parameter binds to. *)
  h_body : block;
  h_pos : pos;
}

type program = {
  nf_name : string;
  consts : (string * int) list;
  states : state_decl list;
  handler : handler;
}

val binop_name : binop -> string
val typ_name : typ -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_program : Format.formatter -> program -> unit
