(** Static checks on NF DSL programs before lowering.

    Verifies name resolution (variables, constants, state, builtins),
    builtin arities and argument kinds, header-field names, condition
    types, and structural rules (no redefinition, packet parameter usage,
    state capacities positive). *)

type error = { msg : string; pos : Ast.pos }

val check : Ast.program -> (unit, error list) result
val check_exn : Ast.program -> unit
(** @raise Failure with a rendered error list. *)

val pp_error : Format.formatter -> error -> unit
