(** Framework API surface of the NF DSL.

    These play the role of Click/eBPF framework calls in the paper (§3.3):
    the lowering recognizes them and substitutes virtual calls that are
    bound to NIC components during mapping. *)

type arg_type =
  | A_packet
  | A_header
  | A_entry
  | A_int
  | A_state of Ast.state_kind list  (** A state name of one of these kinds. *)

type signature = {
  args : arg_type list;
  variadic_int : bool;  (** Extra trailing int arguments allowed (hash). *)
  result : Ast.typ;
}

val lookup : string -> signature option
val names : string list

val header_fields : string list
(** Fields valid on a [T_header] value: src_ip, dst_ip, src_port,
    dst_port, proto, flags, len, ttl, seq, ack, payload_len. *)

val is_header_field : string -> bool
