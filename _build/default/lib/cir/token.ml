(* Tokens of the NF DSL, tagged with source positions for error reporting. *)

type kind =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string     (* nf, state, handler, var, if, else, while, for, return,
                        const, true, false, map, lpm, array, counter, entry *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | DOT
  | ASSIGN          (* = *)
  | OP of string    (* + - * / % == != < <= > >= && || ! & | ^ << >> ~ *)
  | EOF

type t = { kind : kind; pos : Ast.pos }

(* State kinds (map/lpm/array/counter) and "entry" are contextual: they
   are ordinary identifiers everywhere except inside a state declaration,
   so NFs may be named e.g. "lpm". *)
let keywords =
  [ "nf"; "state"; "handler"; "var"; "if"; "else"; "while"; "for"; "return";
    "const"; "true"; "false" ]

let pp_kind fmt = function
  | INT i -> Format.fprintf fmt "int(%d)" i
  | FLOAT f -> Format.fprintf fmt "float(%g)" f
  | IDENT s -> Format.fprintf fmt "ident(%s)" s
  | KW s -> Format.fprintf fmt "'%s'" s
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | LBRACE -> Format.pp_print_string fmt "'{'"
  | RBRACE -> Format.pp_print_string fmt "'}'"
  | LBRACKET -> Format.pp_print_string fmt "'['"
  | RBRACKET -> Format.pp_print_string fmt "']'"
  | SEMI -> Format.pp_print_string fmt "';'"
  | COMMA -> Format.pp_print_string fmt "','"
  | DOT -> Format.pp_print_string fmt "'.'"
  | ASSIGN -> Format.pp_print_string fmt "'='"
  | OP s -> Format.fprintf fmt "'%s'" s
  | EOF -> Format.pp_print_string fmt "<eof>"
