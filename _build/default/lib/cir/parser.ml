exception Error of string * Ast.pos

type stream = { mutable toks : Token.t list }

let cur s =
  match s.toks with
  | [] -> { Token.kind = Token.EOF; pos = { Ast.line = 0; col = 0 } }
  | t :: _ -> t

let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let fail s msg =
  let t = cur s in
  raise (Error (Format.asprintf "%s (found %a)" msg Token.pp_kind t.Token.kind, t.Token.pos))

let expect s kind msg =
  if (cur s).Token.kind = kind then advance s else fail s msg

let expect_ident s msg =
  match (cur s).Token.kind with
  | Token.IDENT name ->
      advance s;
      name
  | _ -> fail s msg

let expect_int s msg =
  match (cur s).Token.kind with
  | Token.INT v ->
      advance s;
      v
  | _ -> fail s msg

let accept s kind =
  if (cur s).Token.kind = kind then begin
    advance s;
    true
  end
  else false

(* Binary operator precedence, C-like; higher binds tighter. *)
let binop_of_op = function
  | "||" -> Some (Ast.Or, 1)
  | "&&" -> Some (Ast.And, 2)
  | "|" -> Some (Ast.Bor, 3)
  | "^" -> Some (Ast.Bxor, 4)
  | "&" -> Some (Ast.Band, 5)
  | "==" -> Some (Ast.Eq, 6)
  | "!=" -> Some (Ast.Ne, 6)
  | "<" -> Some (Ast.Lt, 7)
  | "<=" -> Some (Ast.Le, 7)
  | ">" -> Some (Ast.Gt, 7)
  | ">=" -> Some (Ast.Ge, 7)
  | "<<" -> Some (Ast.Shl, 8)
  | ">>" -> Some (Ast.Shr, 8)
  | "+" -> Some (Ast.Add, 9)
  | "-" -> Some (Ast.Sub, 9)
  | "*" -> Some (Ast.Mul, 10)
  | "/" -> Some (Ast.Div, 10)
  | "%" -> Some (Ast.Mod, 10)
  | _ -> None

let rec parse_expr s = parse_binop s 0

and parse_binop s min_prec =
  let lhs = parse_unary s in
  let rec loop lhs =
    match (cur s).Token.kind with
    | Token.OP op -> (
        match binop_of_op op with
        | Some (bop, prec) when prec >= min_prec ->
            advance s;
            let rhs = parse_binop s (prec + 1) in
            loop (Ast.Binop (bop, lhs, rhs))
        | _ -> lhs)
    | _ -> lhs
  in
  loop lhs

and parse_unary s =
  match (cur s).Token.kind with
  | Token.OP "!" ->
      advance s;
      Ast.Unop (Ast.Not, parse_unary s)
  | Token.OP "-" ->
      advance s;
      Ast.Unop (Ast.Neg, parse_unary s)
  | Token.OP "~" ->
      advance s;
      Ast.Unop (Ast.Bnot, parse_unary s)
  | _ -> parse_primary s

and parse_primary s =
  match (cur s).Token.kind with
  | Token.INT v ->
      advance s;
      Ast.Int v
  | Token.FLOAT v ->
      advance s;
      Ast.Float v
  | Token.KW "true" ->
      advance s;
      Ast.Bool true
  | Token.KW "false" ->
      advance s;
      Ast.Bool false
  | Token.LPAREN ->
      advance s;
      let e = parse_expr s in
      expect s Token.RPAREN "expected ')'";
      e
  | Token.IDENT name -> (
      advance s;
      match (cur s).Token.kind with
      | Token.LPAREN ->
          advance s;
          let args = parse_args s in
          Ast.Call (name, args)
      | Token.DOT ->
          advance s;
          let field = expect_ident s "expected field name after '.'" in
          Ast.Field (name, field)
      | _ -> Ast.Ident name)
  | _ -> fail s "expected expression"

and parse_args s =
  if accept s Token.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expr s in
      if accept s Token.COMMA then loop (e :: acc)
      else begin
        expect s Token.RPAREN "expected ')' or ',' in argument list";
        List.rev (e :: acc)
      end
    in
    loop []
  end

let rec parse_stmt s =
  let p = (cur s).Token.pos in
  match (cur s).Token.kind with
  | Token.KW "var" ->
      advance s;
      let name = expect_ident s "expected variable name" in
      expect s Token.ASSIGN "expected '=' in var declaration";
      let e = parse_expr s in
      expect s Token.SEMI "expected ';'";
      Ast.Var (name, e, p)
  | Token.KW "if" ->
      advance s;
      expect s Token.LPAREN "expected '(' after if";
      let cond = parse_expr s in
      expect s Token.RPAREN "expected ')'";
      let then_ = parse_block s in
      let else_ =
        if (cur s).Token.kind = Token.KW "else" then begin
          advance s;
          (* "else if" chains parse as a nested conditional. *)
          if (cur s).Token.kind = Token.KW "if" then Some [ parse_stmt s ]
          else Some (parse_block s)
        end
        else None
      in
      Ast.If (cond, then_, else_, p)
  | Token.KW "while" ->
      advance s;
      expect s Token.LPAREN "expected '(' after while";
      let cond = parse_expr s in
      expect s Token.RPAREN "expected ')'";
      let body = parse_block s in
      Ast.While (cond, body, p)
  | Token.KW "for" ->
      advance s;
      expect s Token.LPAREN "expected '(' after for";
      let x = expect_ident s "expected loop variable" in
      expect s Token.ASSIGN "expected '=' in for initializer";
      let init = parse_expr s in
      expect s Token.SEMI "expected ';'";
      let cond = parse_expr s in
      expect s Token.SEMI "expected ';'";
      let x2 = expect_ident s "expected loop variable in step" in
      if x2 <> x then fail s "for-loop step must update the loop variable";
      expect s Token.ASSIGN "expected '=' in for step";
      let step = parse_expr s in
      expect s Token.RPAREN "expected ')'";
      let body = parse_block s in
      Ast.For (x, init, cond, step, body, p)
  | Token.KW "return" ->
      advance s;
      expect s Token.SEMI "expected ';'";
      Ast.Return p
  | Token.IDENT name -> (
      advance s;
      match (cur s).Token.kind with
      | Token.ASSIGN ->
          advance s;
          let e = parse_expr s in
          expect s Token.SEMI "expected ';'";
          Ast.Assign (name, e, p)
      | Token.DOT -> (
          advance s;
          let field = expect_ident s "expected field name" in
          match (cur s).Token.kind with
          | Token.ASSIGN ->
              advance s;
              let e = parse_expr s in
              expect s Token.SEMI "expected ';'";
              Ast.Field_assign (name, field, e, p)
          | _ ->
              (* Field read in expression-statement position: re-parse the
                 rest of the expression with the field as lhs. *)
              let lhs = Ast.Field (name, field) in
              let e = finish_expr_stmt s lhs in
              Ast.Expr (e, p))
      | Token.LPAREN ->
          advance s;
          let args = parse_args s in
          let e = finish_expr_stmt s (Ast.Call (name, args)) in
          Ast.Expr (e, p)
      | _ -> fail s "expected '=', '.' or '(' after identifier")
  | _ -> fail s "expected statement"

and finish_expr_stmt s lhs =
  (* Allow a trailing binary expression for generality, then ';'. *)
  let rec loop lhs =
    match (cur s).Token.kind with
    | Token.OP op -> (
        match binop_of_op op with
        | Some (bop, _) ->
            advance s;
            let rhs = parse_expr s in
            loop (Ast.Binop (bop, lhs, rhs))
        | None -> lhs)
    | _ -> lhs
  in
  let e = loop lhs in
  expect s Token.SEMI "expected ';'";
  e

and parse_block s =
  expect s Token.LBRACE "expected '{'";
  let rec loop acc =
    if accept s Token.RBRACE then List.rev acc else loop (parse_stmt s :: acc)
  in
  loop []

let parse_state s =
  let p = (cur s).Token.pos in
  expect s (Token.KW "state") "expected 'state'";
  let kind =
    match (cur s).Token.kind with
    | Token.IDENT "map" -> Ast.S_map
    | Token.IDENT "lpm" -> Ast.S_lpm
    | Token.IDENT "array" -> Ast.S_array
    | Token.IDENT "counter" -> Ast.S_counter
    | _ -> fail s "expected state kind (map/lpm/array/counter)"
  in
  advance s;
  let name = expect_ident s "expected state name" in
  let entries =
    if accept s Token.LBRACKET then begin
      let v = expect_int s "expected entry count" in
      expect s Token.RBRACKET "expected ']'";
      v
    end
    else 1
  in
  let entry_bytes =
    if (cur s).Token.kind = Token.IDENT "entry" then begin
      advance s;
      expect_int s "expected entry size in bytes"
    end
    else 16
  in
  expect s Token.SEMI "expected ';'";
  { Ast.s_name = name; s_kind = kind; s_entries = entries; s_entry_bytes = entry_bytes; s_pos = p }

let parse_tokens toks =
  let s = { toks } in
  expect s (Token.KW "nf") "expected 'nf'";
  let nf_name = expect_ident s "expected NF name" in
  expect s Token.LBRACE "expected '{'";
  let consts = ref [] and states = ref [] and handler = ref None in
  let rec loop () =
    match (cur s).Token.kind with
    | Token.KW "const" ->
        advance s;
        let name = expect_ident s "expected const name" in
        expect s Token.ASSIGN "expected '='";
        let v = expect_int s "expected integer" in
        expect s Token.SEMI "expected ';'";
        consts := (name, v) :: !consts;
        loop ()
    | Token.KW "state" ->
        states := parse_state s :: !states;
        loop ()
    | Token.KW "handler" ->
        let p = (cur s).Token.pos in
        advance s;
        let h_name = expect_ident s "expected handler name" in
        expect s Token.LPAREN "expected '('";
        let h_packet = expect_ident s "expected packet parameter" in
        expect s Token.RPAREN "expected ')'";
        let h_body = parse_block s in
        (match !handler with
        | Some _ -> fail s "duplicate handler"
        | None -> handler := Some { Ast.h_name; h_packet; h_body; h_pos = p });
        loop ()
    | Token.RBRACE ->
        advance s;
        expect s Token.EOF "trailing input after program"
    | _ -> fail s "expected 'const', 'state', 'handler' or '}'"
  in
  loop ();
  match !handler with
  | None -> fail s "program has no handler"
  | Some handler ->
      { Ast.nf_name; consts = List.rev !consts; states = List.rev !states; handler }

let parse src = parse_tokens (Lexer.tokenize src)
