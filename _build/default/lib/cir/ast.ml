type pos = { line : int; col : int }

type typ = T_int | T_float | T_bool | T_packet | T_header | T_entry

type state_kind = S_map | S_lpm | S_array | S_counter

type state_decl = {
  s_name : string;
  s_kind : state_kind;
  s_entries : int;
  s_entry_bytes : int;
  s_pos : pos;
}

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Ne | Lt | Le | Gt | Ge
  | And | Or
  | Band | Bor | Bxor | Shl | Shr

type unop = Not | Neg | Bnot

type expr =
  | Int of int
  | Float of float
  | Bool of bool
  | Ident of string
  | Field of string * string
  | Call of string * expr list
  | Binop of binop * expr * expr
  | Unop of unop * expr

type stmt =
  | Var of string * expr * pos
  | Assign of string * expr * pos
  | Field_assign of string * string * expr * pos
  | If of expr * block * block option * pos
  | While of expr * block * pos
  | For of string * expr * expr * expr * block * pos
  | Expr of expr * pos
  | Return of pos

and block = stmt list

type handler = { h_name : string; h_packet : string; h_body : block; h_pos : pos }

type program = {
  nf_name : string;
  consts : (string * int) list;
  states : state_decl list;
  handler : handler;
}

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "&&" | Or -> "||"
  | Band -> "&" | Bor -> "|" | Bxor -> "^" | Shl -> "<<" | Shr -> ">>"

let typ_name = function
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "bool"
  | T_packet -> "packet"
  | T_header -> "header"
  | T_entry -> "entry"

let rec pp_expr fmt = function
  | Int i -> Format.pp_print_int fmt i
  | Float f -> Format.pp_print_float fmt f
  | Bool b -> Format.pp_print_bool fmt b
  | Ident s -> Format.pp_print_string fmt s
  | Field (o, f) -> Format.fprintf fmt "%s.%s" o f
  | Call (f, args) ->
      Format.fprintf fmt "%s(%a)" f
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_expr)
        args
  | Binop (op, a, b) -> Format.fprintf fmt "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Unop (Not, e) -> Format.fprintf fmt "!%a" pp_expr e
  | Unop (Neg, e) -> Format.fprintf fmt "-%a" pp_expr e
  | Unop (Bnot, e) -> Format.fprintf fmt "~%a" pp_expr e

let rec pp_stmt fmt ind stmt =
  let pad = String.make ind ' ' in
  match stmt with
  | Var (x, e, _) -> Format.fprintf fmt "%svar %s = %a;@." pad x pp_expr e
  | Assign (x, e, _) -> Format.fprintf fmt "%s%s = %a;@." pad x pp_expr e
  | Field_assign (o, f, e, _) -> Format.fprintf fmt "%s%s.%s = %a;@." pad o f pp_expr e
  | If (c, t, e, _) ->
      Format.fprintf fmt "%sif (%a) {@." pad pp_expr c;
      List.iter (fun s -> pp_stmt fmt (ind + 2) s) t;
      (match e with
      | None -> ()
      | Some e ->
          Format.fprintf fmt "%s} else {@." pad;
          List.iter (fun s -> pp_stmt fmt (ind + 2) s) e);
      Format.fprintf fmt "%s}@." pad
  | While (c, b, _) ->
      Format.fprintf fmt "%swhile (%a) {@." pad pp_expr c;
      List.iter (fun s -> pp_stmt fmt (ind + 2) s) b;
      Format.fprintf fmt "%s}@." pad
  | For (x, init, cond, step, b, _) ->
      Format.fprintf fmt "%sfor (%s = %a; %a; %s = %a) {@." pad x pp_expr init pp_expr
        cond x pp_expr step;
      List.iter (fun s -> pp_stmt fmt (ind + 2) s) b;
      Format.fprintf fmt "%s}@." pad
  | Expr (e, _) -> Format.fprintf fmt "%s%a;@." pad pp_expr e
  | Return _ -> Format.fprintf fmt "%sreturn;@." pad

let pp_program fmt p =
  Format.fprintf fmt "nf %s {@." p.nf_name;
  List.iter (fun (n, v) -> Format.fprintf fmt "  const %s = %d;@." n v) p.consts;
  List.iter
    (fun s ->
      let kind =
        match s.s_kind with
        | S_map -> "map"
        | S_lpm -> "lpm"
        | S_array -> "array"
        | S_counter -> "counter"
      in
      Format.fprintf fmt "  state %s %s[%d] entry %d;@." kind s.s_name s.s_entries
        s.s_entry_bytes)
    p.states;
  Format.fprintf fmt "  handler %s(%s) {@." p.handler.h_name p.handler.h_packet;
  List.iter (fun s -> pp_stmt fmt 4 s) p.handler.h_body;
  Format.fprintf fmt "  }@.}@."
