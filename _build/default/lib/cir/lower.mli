(** Lowering: NF DSL programs to CIR control-flow graphs (§3.3).

    Plays the role of LLVM in the paper's pipeline.  Framework builtins
    become virtual calls with symbolic sizes and state-access counts;
    arithmetic becomes typed op-class instructions (so FPU-less targets
    can price float emulation, §3.4); conditions are analyzed into guards;
    counted [for] loops get symbolic trip counts (e.g. a loop bounded by
    [payload_len(pkt)] gets trip [S_payload]). *)

val lower : Ast.program -> Ir.program
(** The program is assumed to typecheck ({!Typecheck.check}); lowering a
    broken program raises [Failure]. *)

val lower_source : string -> Ir.program
(** Parse + typecheck + lower.
    @raise Lexer.Error | Parser.Error on syntax problems
    @raise Failure on type errors. *)
