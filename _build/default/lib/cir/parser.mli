(** Recursive-descent parser for the NF DSL.

    Grammar sketch:
    {v
    program := "nf" IDENT "{" (const | state)* handler "}"
    const   := "const" IDENT "=" INT ";"
    state   := "state" ("map"|"lpm"|"array"|"counter") IDENT
               ("[" INT "]")? ("entry" INT)? ";"
    handler := "handler" IDENT "(" IDENT ")" block
    v}
    Statements and expressions follow C, with precedence climbing for
    binary operators. *)

exception Error of string * Ast.pos

val parse : string -> Ast.program
(** @raise Error on syntax errors (includes the position).
    @raise Lexer.Error on lexical errors. *)

val parse_tokens : Token.t list -> Ast.program
