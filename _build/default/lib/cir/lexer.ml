exception Error of string * Ast.pos

type cursor = { src : string; mutable off : int; mutable line : int; mutable col : int }

let peek c = if c.off < String.length c.src then Some c.src.[c.off] else None

let peek2 c =
  if c.off + 1 < String.length c.src then Some c.src.[c.off + 1] else None

let advance c =
  (match peek c with
  | Some '\n' ->
      c.line <- c.line + 1;
      c.col <- 1
  | Some _ -> c.col <- c.col + 1
  | None -> ());
  c.off <- c.off + 1

let pos c = { Ast.line = c.line; col = c.col }

let is_digit ch = ch >= '0' && ch <= '9'
let is_hex ch = is_digit ch || (ch >= 'a' && ch <= 'f') || (ch >= 'A' && ch <= 'F')

let is_ident_start ch =
  (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') || ch = '_'

let is_ident ch = is_ident_start ch || is_digit ch

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance c;
      skip_ws c
  | Some '/' when peek2 c = Some '/' ->
      while peek c <> None && peek c <> Some '\n' do
        advance c
      done;
      skip_ws c
  | Some '/' when peek2 c = Some '*' ->
      let start = pos c in
      advance c;
      advance c;
      let rec eat () =
        match (peek c, peek2 c) with
        | Some '*', Some '/' ->
            advance c;
            advance c
        | Some _, _ ->
            advance c;
            eat ()
        | None, _ -> raise (Error ("unterminated block comment", start))
      in
      eat ();
      skip_ws c
  | _ -> ()

let lex_number c =
  let p = pos c in
  let start = c.off in
  if peek c = Some '0' && (peek2 c = Some 'x' || peek2 c = Some 'X') then begin
    advance c;
    advance c;
    let hstart = c.off in
    while (match peek c with Some ch -> is_hex ch | None -> false) do
      advance c
    done;
    if c.off = hstart then raise (Error ("malformed hex literal", p));
    let s = String.sub c.src start (c.off - start) in
    { Token.kind = Token.INT (int_of_string s); pos = p }
  end
  else begin
    while (match peek c with Some ch -> is_digit ch | None -> false) do
      advance c
    done;
    let is_float =
      peek c = Some '.'
      && (match peek2 c with Some ch -> is_digit ch | None -> false)
    in
    if is_float then begin
      advance c;
      while (match peek c with Some ch -> is_digit ch | None -> false) do
        advance c
      done;
      let s = String.sub c.src start (c.off - start) in
      { Token.kind = Token.FLOAT (float_of_string s); pos = p }
    end
    else
      let s = String.sub c.src start (c.off - start) in
      { Token.kind = Token.INT (int_of_string s); pos = p }
  end

let lex_ident c =
  let p = pos c in
  let start = c.off in
  while (match peek c with Some ch -> is_ident ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.off - start) in
  if List.mem s Token.keywords then { Token.kind = Token.KW s; pos = p }
  else { Token.kind = Token.IDENT s; pos = p }

(* Two-character operators must be tried before their one-character
   prefixes. *)
let lex_op c =
  let p = pos c in
  let two a b tok =
    if peek c = Some a && peek2 c = Some b then begin
      advance c;
      advance c;
      Some { Token.kind = tok; pos = p }
    end
    else None
  in
  (* Thunked so that a successful match (which consumes input) stops the
     search before later candidates can also consume. *)
  let candidates =
    [ (fun () -> two '=' '=' (Token.OP "=="));
      (fun () -> two '!' '=' (Token.OP "!="));
      (fun () -> two '<' '=' (Token.OP "<="));
      (fun () -> two '>' '=' (Token.OP ">="));
      (fun () -> two '&' '&' (Token.OP "&&"));
      (fun () -> two '|' '|' (Token.OP "||"));
      (fun () -> two '<' '<' (Token.OP "<<"));
      (fun () -> two '>' '>' (Token.OP ">>")) ]
  in
  let rec first = function
    | [] -> None
    | f :: rest -> ( match f () with Some t -> Some t | None -> first rest)
  in
  match first candidates with
  | Some _ as t -> t
  | None -> (
      match peek c with
      | Some ch ->
          let kind =
            match ch with
            | '(' -> Some Token.LPAREN
            | ')' -> Some Token.RPAREN
            | '{' -> Some Token.LBRACE
            | '}' -> Some Token.RBRACE
            | '[' -> Some Token.LBRACKET
            | ']' -> Some Token.RBRACKET
            | ';' -> Some Token.SEMI
            | ',' -> Some Token.COMMA
            | '.' -> Some Token.DOT
            | '=' -> Some Token.ASSIGN
            | '+' | '-' | '*' | '/' | '%' | '<' | '>' | '!' | '&' | '|' | '^' | '~' ->
                Some (Token.OP (String.make 1 ch))
            | _ -> None
          in
          (match kind with
          | Some k ->
              advance c;
              Some { Token.kind = k; pos = p }
          | None -> None)
      | None -> None)

let tokenize src =
  let c = { src; off = 0; line = 1; col = 1 } in
  let rec go acc =
    skip_ws c;
    match peek c with
    | None -> List.rev ({ Token.kind = Token.EOF; pos = pos c } :: acc)
    | Some ch when is_digit ch -> go (lex_number c :: acc)
    | Some ch when is_ident_start ch -> go (lex_ident c :: acc)
    | Some ch -> (
        match lex_op c with
        | Some t -> go (t :: acc)
        | None ->
            raise (Error (Printf.sprintf "unexpected character %C" ch, pos c)))
  in
  go []
