type proto = Tcp | Udp | Other of int

type t = {
  src_ip : int32;
  dst_ip : int32;
  src_port : int;
  dst_port : int;
  proto : proto;
  flags : int;
  payload_bytes : int;
  arrival_ns : int64;
}

let proto_number = function Tcp -> 6 | Udp -> 17 | Other n -> n

let proto_of_number = function 6 -> Tcp | 17 -> Udp | n -> Other n

let header_bytes t =
  (* Ethernet 14 + IPv4 20 + (TCP 20 | UDP 8 | none). *)
  match t.proto with Tcp -> 54 | Udp -> 42 | Other _ -> 34

let total_bytes t = header_bytes t + t.payload_bytes

let is_syn t = t.proto = Tcp && t.flags land 0x2 <> 0

let flow_key t =
  let h = ref 0x811c9dc5 in
  let mix v = h := (!h lxor v) * 0x01000193 land max_int in
  mix (Int32.to_int t.src_ip land 0xffffffff);
  mix (Int32.to_int t.dst_ip land 0xffffffff);
  mix t.src_port;
  mix t.dst_port;
  mix (proto_number t.proto);
  !h

let pp fmt t =
  Format.fprintf fmt "%ld:%d -> %ld:%d %s%s %dB @%Ldns" t.src_ip t.src_port t.dst_ip
    t.dst_port
    (match t.proto with Tcp -> "tcp" | Udp -> "udp" | Other n -> Printf.sprintf "proto%d" n)
    (if is_syn t then "[syn]" else "")
    t.payload_bytes t.arrival_ns
