(** Abstract workload profiles (§3.5).

    The paper's example inputs — "80% TCP vs 20% UDP", "10 k concurrent
    TCP flows with 300-byte average packet size" — become values of this
    type; {!Trace.synthesize} turns one into a concrete packet trace, and
    the predictor can also consume the profile directly (per-packet-type
    analysis). *)

type t = {
  tcp_fraction : float;       (** Remainder is UDP. *)
  flow_count : int;           (** Concurrent flows. *)
  flow_skew : float;          (** Zipf alpha over flows; 0 = uniform. *)
  payload : Dist.t;           (** Payload size distribution (bytes). *)
  rate_pps : float;           (** Offered load, packets per second. *)
  packets : int;              (** Trace length. *)
  new_flow_syn : bool;        (** First TCP packet of a flow carries SYN. *)
}

val default : t
(** 80/20 TCP/UDP, 10 000 flows, Zipf 1.1, 300-byte average payload,
    60 kpps, 100 000 packets — the paper's running example numbers
    (§3.5 and §4's 60 k packets/s traffic rate). *)

val make :
  ?tcp_fraction:float ->
  ?flow_count:int ->
  ?flow_skew:float ->
  ?payload:Dist.t ->
  ?rate_pps:float ->
  ?packets:int ->
  ?new_flow_syn:bool ->
  unit ->
  t

val mean_payload : t -> float
val mean_packet_bytes : t -> float
(** Payload plus the protocol-mix-weighted header size. *)

val validate : t -> (unit, string) result
