(** Deterministic pseudo-random numbers (splitmix64 + xoshiro256starstar).

    All randomness in Clara's workload generation flows through explicit
    generator values seeded by the caller, so every trace, figure and
    benchmark is reproducible bit-for-bit.  No global state. *)

type t

val create : seed:int64 -> t
(** Seeds the xoshiro256 state via splitmix64, as its authors recommend. *)

val copy : t -> t
val next : t -> int64
(** Uniform over all 2^64 values. *)

val int : t -> int -> int
(** [int g bound] is uniform in [[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> float -> bool
(** [bool g p] is true with probability [p]. *)
