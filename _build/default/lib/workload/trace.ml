type t = { packets : Packet.t array; profile : Profile.t option }

let synthesize ?(seed = 42L) (p : Profile.t) =
  (match Profile.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg ("Trace.synthesize: " ^ e));
  let g = Prng.create ~seed in
  (* Flow population: stable 5-tuples; protocol chosen per flow so a flow
     never changes protocol. *)
  let flows =
    Array.init p.Profile.flow_count (fun _ ->
        let proto = if Prng.bool g p.Profile.tcp_fraction then Packet.Tcp else Packet.Udp in
        ( Int32.of_int (0x0a000000 lor Prng.int g 0xffffff),
          Int32.of_int (0xc0a80000 lor Prng.int g 0xffff),
          1024 + Prng.int g 60000,
          (if Prng.bool g 0.5 then 80 else 443),
          proto ))
  in
  let seen = Array.make p.Profile.flow_count false in
  let zipf = Dist.make_zipf ~n:p.Profile.flow_count ~alpha:p.Profile.flow_skew in
  let mean_gap_ns = 1e9 /. p.Profile.rate_pps in
  let now = ref 0. in
  let packets =
    Array.init p.Profile.packets (fun _ ->
        let fid = zipf g in
        let src_ip, dst_ip, src_port, dst_port, proto = flows.(fid) in
        let first = not seen.(fid) in
        seen.(fid) <- true;
        let flags =
          if proto = Packet.Tcp && first && p.Profile.new_flow_syn then 0x2 else 0
        in
        now := !now +. Dist.exponential g ~mean:mean_gap_ns;
        {
          Packet.src_ip;
          dst_ip;
          src_port;
          dst_port;
          proto;
          flags;
          payload_bytes = Dist.sample g p.Profile.payload;
          arrival_ns = Int64.of_float !now;
        })
  in
  { packets; profile = Some p }

let of_packets packets = { packets; profile = None }

type stats = {
  count : int;
  tcp_fraction : float;
  syn_fraction : float;
  mean_payload : float;
  mean_packet : float;
  distinct_flows : int;
  duration_ns : int64;
}

let stats t =
  let n = Array.length t.packets in
  if n = 0 then
    { count = 0; tcp_fraction = 0.; syn_fraction = 0.; mean_payload = 0.;
      mean_packet = 0.; distinct_flows = 0; duration_ns = 0L }
  else begin
    let tcp = ref 0 and syn = ref 0 and pay = ref 0 and tot = ref 0 in
    let flows = Hashtbl.create 1024 in
    Array.iter
      (fun (pk : Packet.t) ->
        if pk.Packet.proto = Packet.Tcp then incr tcp;
        if Packet.is_syn pk then incr syn;
        pay := !pay + pk.Packet.payload_bytes;
        tot := !tot + Packet.total_bytes pk;
        Hashtbl.replace flows (Packet.flow_key pk) ())
      t.packets;
    {
      count = n;
      tcp_fraction = float_of_int !tcp /. float_of_int n;
      syn_fraction = float_of_int !syn /. float_of_int n;
      mean_payload = float_of_int !pay /. float_of_int n;
      mean_packet = float_of_int !tot /. float_of_int n;
      distinct_flows = Hashtbl.length flows;
      duration_ns = t.packets.(n - 1).Packet.arrival_ns;
    }
  end

let iter f t = Array.iter f t.packets
let fold f init t = Array.fold_left f init t.packets

let pp_stats fmt s =
  Format.fprintf fmt
    "%d pkts, %.0f%% tcp, %.1f%% syn, payload %.0fB, pkt %.0fB, %d flows, %.1f ms"
    s.count (100. *. s.tcp_fraction) (100. *. s.syn_fraction) s.mean_payload
    s.mean_packet s.distinct_flows
    (Int64.to_float s.duration_ns /. 1e6)

let merge a b =
  let packets = Array.append a.packets b.packets in
  Array.sort (fun (p : Packet.t) (q : Packet.t) -> compare p.Packet.arrival_ns q.Packet.arrival_ns) packets;
  { packets; profile = None }

let filter f t = { packets = Array.of_seq (Seq.filter f (Array.to_seq t.packets)); profile = None }

let truncate t n =
  { t with packets = Array.sub t.packets 0 (min n (Array.length t.packets)) }

let scale_rate t factor =
  if factor <= 0. then invalid_arg "Trace.scale_rate: factor must be positive";
  { packets =
      Array.map
        (fun (p : Packet.t) ->
          { p with
            Packet.arrival_ns =
              Int64.of_float (Int64.to_float p.Packet.arrival_ns /. factor) })
        t.packets;
    profile = None }
