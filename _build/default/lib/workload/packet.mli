(** Packets as Clara's workload layer sees them: parsed 5-tuple plus the
    size and timing information the predictor and simulator need. *)

type proto = Tcp | Udp | Other of int

type t = {
  src_ip : int32;
  dst_ip : int32;
  src_port : int;
  dst_port : int;
  proto : proto;
  flags : int;         (** TCP flags; bit 0x2 = SYN. *)
  payload_bytes : int;
  arrival_ns : int64;  (** Arrival time since trace start. *)
}

val proto_number : proto -> int
(** IANA protocol numbers: TCP = 6, UDP = 17. *)

val proto_of_number : int -> proto

val header_bytes : t -> int
(** Ethernet + IPv4 + L4 header bytes (54 TCP / 42 UDP / 34 other). *)

val total_bytes : t -> int
(** Header + payload. *)

val is_syn : t -> bool

val flow_key : t -> int
(** Hash of the 5-tuple; equal for packets of the same flow. *)

val pp : Format.formatter -> t -> unit
