(* xoshiro256** 1.0, seeded via splitmix64.  Reference: Blackman &
   Vigna, "Scrambled linear pseudorandom number generators". *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let st = ref seed in
  let s0 = splitmix64 st in
  let s1 = splitmix64 st in
  let s2 = splitmix64 st in
  let s3 = splitmix64 st in
  (* All-zero state is invalid for xoshiro; splitmix64 of any seed cannot
     produce four zeros, but guard anyway. *)
  if Int64.logor (Int64.logor s0 s1) (Int64.logor s2 s3) = 0L then
    { s0 = 1L; s1 = 2L; s2 = 3L; s3 = 4L }
  else { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection-free for our purposes: mask to 62 bits (non-negative) and
     take the remainder; modulo bias is negligible for bounds << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let float t =
  (* 53 high bits -> [0, 1). *)
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v *. (1. /. 9007199254740992.)

let bool t p = float t < p
