type t = {
  tcp_fraction : float;
  flow_count : int;
  flow_skew : float;
  payload : Dist.t;
  rate_pps : float;
  packets : int;
  new_flow_syn : bool;
}

let default =
  {
    tcp_fraction = 0.8;
    flow_count = 10_000;
    flow_skew = 1.1;
    payload = Dist.Uniform (100, 500);
    rate_pps = 60_000.;
    packets = 100_000;
    new_flow_syn = true;
  }

let make ?(tcp_fraction = default.tcp_fraction) ?(flow_count = default.flow_count)
    ?(flow_skew = default.flow_skew) ?(payload = default.payload)
    ?(rate_pps = default.rate_pps) ?(packets = default.packets)
    ?(new_flow_syn = default.new_flow_syn) () =
  { tcp_fraction; flow_count; flow_skew; payload; rate_pps; packets; new_flow_syn }

let mean_payload t = Dist.mean t.payload

let mean_packet_bytes t =
  (* TCP 54 / UDP 42 header bytes, mix-weighted. *)
  mean_payload t +. (t.tcp_fraction *. 54.) +. ((1. -. t.tcp_fraction) *. 42.)

let validate t =
  if t.tcp_fraction < 0. || t.tcp_fraction > 1. then Error "tcp_fraction outside [0,1]"
  else if t.flow_count <= 0 then Error "flow_count must be positive"
  else if t.flow_skew < 0. then Error "flow_skew must be non-negative"
  else if t.rate_pps <= 0. then Error "rate_pps must be positive"
  else if t.packets <= 0 then Error "packets must be positive"
  else Ok ()
