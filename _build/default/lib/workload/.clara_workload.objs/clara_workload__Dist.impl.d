lib/workload/dist.ml: Array Float Prng
