lib/workload/prng.mli:
