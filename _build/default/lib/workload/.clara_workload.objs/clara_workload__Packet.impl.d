lib/workload/packet.ml: Format Int32 Printf
