lib/workload/trace.ml: Array Dist Format Hashtbl Int32 Int64 Packet Prng Profile Seq
