lib/workload/profile.ml: Dist
