lib/workload/pcap.mli: Trace
