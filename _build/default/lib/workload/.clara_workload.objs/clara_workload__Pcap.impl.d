lib/workload/pcap.ml: Array Buffer Bytes Char Fun Int32 Int64 List Packet String Trace
