lib/workload/packet.mli: Format
