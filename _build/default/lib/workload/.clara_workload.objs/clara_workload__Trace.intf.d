lib/workload/trace.mli: Format Packet Profile
