lib/workload/dist.mli: Prng
