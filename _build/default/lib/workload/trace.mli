(** Concrete packet traces: synthesis from a profile, iteration, and the
    summary statistics Clara feeds the mapping stage. *)

type t = {
  packets : Packet.t array;
  profile : Profile.t option;  (** The generating profile, if synthetic. *)
}

val synthesize : ?seed:int64 -> Profile.t -> t
(** Deterministic for a given (profile, seed):
    - per-flow 5-tuples drawn once, flow choice per packet is Zipf;
    - TCP flows emit SYN on their first packet when the profile says so;
    - Poisson arrivals at [rate_pps].
    @raise Invalid_argument when the profile fails {!Profile.validate}. *)

val of_packets : Packet.t array -> t

type stats = {
  count : int;
  tcp_fraction : float;
  syn_fraction : float;
  mean_payload : float;
  mean_packet : float;
  distinct_flows : int;
  duration_ns : int64;
}

val stats : t -> stats
val iter : (Packet.t -> unit) -> t -> unit
val fold : ('a -> Packet.t -> 'a) -> 'a -> t -> 'a
val pp_stats : Format.formatter -> stats -> unit

val merge : t -> t -> t
(** Interleave two traces by arrival time (co-residency experiments). *)

val filter : (Packet.t -> bool) -> t -> t
(** Keep matching packets (e.g. one protocol); timestamps untouched. *)

val truncate : t -> int -> t
(** First [n] packets. *)

val scale_rate : t -> float -> t
(** Multiply the arrival rate by a factor (divide inter-arrival gaps). *)
