(* Quickstart: analyze an unported NF, read the performance profile.

   Run:  dune exec examples/quickstart.exe *)

let nat_source =
  {|
nf nat {
  state map flow_table[65536] entry 32;

  handler process(pkt) {
    var hdr = parse_header(pkt);
    if (hdr.proto == 6 || hdr.proto == 17) {
      var key = hash(hdr.src_ip, hdr.src_port);
      var ent = lookup(flow_table, key);
      if (!found(ent)) {
        update(flow_table, key, hdr.src_ip);
      }
      hdr.src_ip = entry_value(ent);
      checksum(pkt);
      emit(pkt);
    } else {
      drop(pkt);
    }
  }
}
|}

let () =
  (* 1. Pick a SmartNIC target: a parameterized logical NIC. *)
  let lnic = Clara_lnic.Netronome.default in

  (* 2. Describe the expected traffic: the paper's "80% TCP, 10k flows,
        300-byte packets" style of profile. *)
  let profile =
    Clara_workload.Profile.make ~tcp_fraction:0.8 ~flow_count:10_000
      ~payload:(Clara_workload.Dist.Fixed 300) ~rate_pps:60_000. ~packets:20_000 ()
  in

  (* 3. Analyze the *unported* source: lower to CIR, coarsen, build the
        dataflow graph, solve the mapping ILP. *)
  let analysis =
    match Clara.analyze_for_profile lnic ~source:nat_source ~profile with
    | Ok a -> a
    | Error e -> failwith e
  in

  (* 4. Print the full performance profile: where each piece of the NF
        lands on the hardware, per-packet-type latencies, workload-level
        prediction, idealized throughput. *)
  let trace = Clara_workload.Trace.synthesize ~seed:1L profile in
  let report = Clara.Report.build ~trace analysis in
  Format.printf "%a" Clara.Report.render report
