(* Porting strategy exploration: "how should I port this NF?"

   The paper's second use case (§1): Clara lets the developer compare
   offloading strategies — use the flow cache or not, lean on
   accelerators or keep everything on cores — before porting, and then
   hands the chosen strategy to the port (§6: offloading hints).  We
   validate the recommendation against the simulator.

   Run:  dune exec examples/porting_strategy.exe *)

module W = Clara_workload
module L = Clara_lnic
module M = Clara_mapping.Mapping
module Dev = Clara_nicsim.Device
module Eng = Clara_nicsim.Engine
module SStats = Clara_nicsim.Stats

let () =
  let lnic = L.Netronome.default in
  let entries = 8_000 in
  let source = Clara_nfs.Lpm.source ~entries in
  let profile =
    W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:10_000 ~flow_count:2_000
      ~rate_pps:60_000. ()
  in
  let strategies =
    [ ("everything allowed", M.default_options);
      ( "no flow cache",
        { M.default_options with M.disallowed_accels = [ L.Unit_.Lookup ] } );
      ( "cores only",
        { M.default_options with
          M.disallowed_accels = [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto ] } ) ]
  in
  Printf.printf "LPM with %d rules, 60 kpps, 300-byte payloads\n\n" entries;
  Printf.printf "%-22s %16s %18s\n" "strategy" "predicted (cyc)" "state placement";
  let predictions =
    List.map
      (fun (name, options) ->
        match Clara.analyze_for_profile ~options lnic ~source ~profile with
        | Error e ->
            Printf.printf "%-22s error: %s\n" name e;
            (name, options, Float.infinity)
        | Ok a ->
            let p = Clara.predict_profile a profile in
            let placement =
              match M.placement_of_state a.Clara.mapping "routes" with
              | Some (M.In_accel u) ->
                  (L.Graph.unit_ lnic u).L.Unit_.name ^ " (SRAM)"
              | Some (M.In_memory m) -> (L.Graph.memory lnic m).L.Memory.name
              | None -> "?"
            in
            Printf.printf "%-22s %16.0f %18s\n" name
              p.Clara_predict.Latency.mean_cycles placement;
            (name, options, p.Clara_predict.Latency.mean_cycles))
      strategies
  in
  let best_name, _, _ =
    List.fold_left
      (fun ((_, _, bc) as best) ((_, _, c) as cand) -> if c < bc then cand else best)
      (List.hd predictions) (List.tl predictions)
  in
  Printf.printf "\nClara recommends: %s\n" best_name;

  (* Validate the two main candidates against the simulator. *)
  let trace = W.Trace.synthesize ~seed:7L profile in
  let simulate prog = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
  let with_fc = simulate (Clara_nfs.Lpm.ported ~entries ~use_flow_cache:true ()) in
  let without = simulate (Clara_nfs.Lpm.ported ~entries ~use_flow_cache:false ()) in
  Printf.printf "\nsimulator check: port with flow cache %.0f cyc, without %.0f cyc (%.1fx)\n"
    with_fc without (without /. with_fc);
  Printf.printf "=> the predicted ranking %s the measured one\n"
    (if (with_fc < without) = (best_name = "everything allowed") then "matches"
     else "contradicts")
