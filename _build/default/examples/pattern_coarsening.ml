(* Pattern coarsening (§3.3): the same DPI logic written two ways —
   against the framework API and as a hand-rolled byte loop — reaches
   the mapping stage in the same shape.  This example prints the CIR
   before and after the pattern matcher runs.

   Run:  dune exec examples/pattern_coarsening.exe *)

module Ir = Clara_cir.Ir

let api_version = Clara_nfs.Dpi.source
let raw_version = Clara_nfs.Dpi.source_raw_loop

let vcall_names ir =
  Ir.vcalls_of ir
  |> List.map (fun v -> Clara_lnic.Params.vcall_name v.Ir.vc)
  |> List.sort_uniq compare

let () =
  Printf.printf "=== DPI, framework-API version ===\n";
  let api_ir = Clara_cir.Lower.lower_source api_version in
  Format.printf "%a" Ir.pp_program api_ir;

  Printf.printf "\n=== DPI, hand-written loop: CIR before coarsening ===\n";
  let raw_ir = Clara_cir.Lower.lower_source raw_version in
  Format.printf "%a" Ir.pp_program raw_ir;

  let coarsened, report = Clara_cir.Patterns.run raw_ir in
  Printf.printf "\n=== after Patterns.run: %d loop(s) coarsened, %d block(s) removed ===\n"
    report.Clara_cir.Patterns.loops_coarsened report.Clara_cir.Patterns.blocks_removed;
  Format.printf "%a" Ir.pp_program coarsened;

  Printf.printf "\nvirtual calls, API version: %s\n"
    (String.concat ", " (vcall_names api_ir));
  Printf.printf "virtual calls, raw version after coarsening: %s\n"
    (String.concat ", " (vcall_names coarsened));
  Printf.printf "\n=> both forms present the same accelerable units to the mapper (§3.3).\n";

  (* And therefore the same prediction. *)
  let profile =
    Clara_workload.Profile.make ~payload:(Clara_workload.Dist.Fixed 600)
      ~packets:5_000 ~flow_count:1_000 ()
  in
  let lnic = Clara_lnic.Netronome.default in
  List.iter
    (fun (name, src) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile with
      | Ok a ->
          let p = Clara.predict_profile a profile in
          Printf.printf "%-22s predicted mean %10.0f cycles\n" name
            p.Clara_predict.Latency.mean_cycles
      | Error e -> Printf.printf "%-22s error: %s\n" name e)
    [ ("dpi (API)", api_version); ("dpi (raw loop)", raw_version) ]
