(* Offload decision: should this NF move to the SmartNIC at all?

   The paper's first use case (§1): "decide whether or not to offload a
   particular NF".  We compare Clara's predicted on-NIC latency and
   sustainable throughput against a simple x86 baseline model, across
   workloads, without writing a single line of SmartNIC code.

   Run:  dune exec examples/offload_decision.exe *)

module W = Clara_workload
module L = Clara_lnic

(* Crude x86 host model: a 3.4 GHz core runs the same NF logic with
   DPDK-style overheads — cheap compute, expensive PCIe round-trip. *)
let x86_latency_us ~payload ~table_heavy =
  let pcie_us = 1.1 (* NIC -> host -> NIC *) in
  let compute_us = (0.08 +. (float_of_int payload *. 0.0009)) *. if table_heavy then 1.6 else 1.0 in
  pcie_us +. compute_us

let () =
  let lnic = L.Netronome.default in
  let candidates =
    [ ("nat", Clara_nfs.Nat.source (), true);
      ("firewall", Clara_nfs.Firewall.source (), true);
      ("dpi", Clara_nfs.Dpi.source, false);
      ("vnf-chain", Clara_nfs.Vnf_chain.source (), false) ]
  in
  let payloads = [ 128; 512; 1200 ] in
  Printf.printf "%-10s %8s %14s %14s %10s\n" "nf" "payload" "NIC (us)" "x86 (us)" "offload?";
  List.iter
    (fun (name, source, table_heavy) ->
      List.iter
        (fun payload ->
          let profile =
            W.Profile.make ~payload:(W.Dist.Fixed payload) ~packets:5_000
              ~flow_count:5_000 ~rate_pps:60_000. ()
          in
          match Clara.analyze_for_profile lnic ~source ~profile with
          | Error e -> Printf.printf "%-10s error: %s\n" name e
          | Ok a ->
              let p = Clara.predict_profile a profile in
              let freq =
                match L.Graph.general_cores lnic with
                | u :: _ -> float_of_int u.L.Unit_.freq_mhz
                | [] -> 1.
              in
              let nic_us = p.Clara_predict.Latency.mean_cycles /. freq in
              let x86_us = x86_latency_us ~payload ~table_heavy in
              Printf.printf "%-10s %8d %14.2f %14.2f %10s\n" name payload nic_us x86_us
                (if nic_us < x86_us then "YES" else "no"))
        payloads)
    candidates;
  Printf.printf
    "\nReading: offloading wins where the NIC's lower per-packet overheads beat\n\
     the host's PCIe round-trip; compute-heavy NFs (DPI at large payloads) can\n\
     lose because the 800 MHz NPUs scan payloads slower than a 3.4 GHz core.\n"
