examples/quickstart.ml: Clara Clara_lnic Clara_workload Format
