examples/nic_selection.ml: Clara Clara_lnic Clara_nfs Clara_predict Clara_workload List Printf
