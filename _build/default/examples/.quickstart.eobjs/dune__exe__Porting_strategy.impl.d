examples/porting_strategy.ml: Clara Clara_lnic Clara_mapping Clara_nfs Clara_nicsim Clara_predict Clara_workload Float List Printf
