examples/pattern_coarsening.ml: Clara Clara_cir Clara_lnic Clara_nfs Clara_predict Clara_workload Format List Printf String
