examples/quickstart.mli:
