examples/nic_selection.mli:
