examples/offload_decision.mli:
