examples/pcap_workflow.mli:
