examples/porting_strategy.mli:
