examples/pattern_coarsening.mli:
