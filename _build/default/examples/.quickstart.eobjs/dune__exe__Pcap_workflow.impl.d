examples/pcap_workflow.ml: Clara Clara_lnic Clara_nfs Clara_predict Clara_workload Filename Format Fun Printf Sys
