(* Pcap workflow: predict against a real capture (§3.5: "the user may
   provide a workload profile — e.g. a pcap trace").

   We synthesize a pcap on disk (standing in for a capture from the
   operator's network), read it back, and drive the prediction from its
   packets rather than from an abstract profile.

   Run:  dune exec examples/pcap_workflow.exe *)

module W = Clara_workload

let () =
  let path = Filename.temp_file "clara_example" ".pcap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Pretend this came from tcpdump. *)
      let captured =
        W.Trace.synthesize ~seed:99L
          (W.Profile.make ~tcp_fraction:0.7
             ~payload:(W.Dist.Bimodal (80, 1200, 0.6))
             ~flow_count:3_000 ~packets:8_000 ~rate_pps:60_000. ())
      in
      W.Pcap.write_file path captured;
      Printf.printf "capture: %s\n" path;

      (* Operator side: read the capture and look at it. *)
      let trace = W.Pcap.read_file path in
      Format.printf "trace: %a@." W.Trace.pp_stats (W.Trace.stats trace);

      (* Predict the firewall's latency under exactly this traffic. *)
      let lnic = Clara_lnic.Netronome.default in
      let source = Clara_nfs.Firewall.source () in
      (* Derive an abstract profile from the trace for the mapping
         objective; prediction then walks the real packets. *)
      let s = W.Trace.stats trace in
      let profile =
        W.Profile.make ~tcp_fraction:s.W.Trace.tcp_fraction
          ~payload:(W.Dist.Fixed (int_of_float s.W.Trace.mean_payload))
          ~flow_count:(max 1 s.W.Trace.distinct_flows)
          ~packets:s.W.Trace.count ~rate_pps:60_000. ()
      in
      match Clara.analyze_for_profile lnic ~source ~profile with
      | Error e -> failwith e
      | Ok a ->
          let p = Clara.predict a trace in
          Format.printf "firewall on netronome-like NIC, captured traffic:@.  %a@."
            Clara_predict.Latency.pp_prediction p)
