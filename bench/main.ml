(* Benchmark harness: regenerates every table and figure in the paper's
   evaluation, plus the ablations DESIGN.md calls out, plus bechamel
   microbenchmarks of the tool itself.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: figure1 figure3a figure3b figure3c microbench mapping
             ablations ilp interference nics throughput chains energy
             partial zoo sweep trace nicsim offpath tenants lint bounds
             bechamel (default: all) *)

module W = Clara_workload
module L = Clara_lnic
module Dev = Clara_nicsim.Device
module Eng = Clara_nicsim.Engine
module SStats = Clara_nicsim.Stats
module Map_ = Clara_mapping.Mapping
module Lat = Clara_predict.Latency

let lnic = L.Netronome.default

let profile ?(payload = W.Dist.Fixed 300) ?(packets = 20_000) ?(flows = 5_000)
    ?(rate = 60_000.) ?(tcp = 0.8) () =
  W.Profile.make ~payload ~packets ~flow_count:flows ~rate_pps:rate ~tcp_fraction:tcp ()

let no_flow_cache =
  { Map_.default_options with Map_.disallowed_accels = [ L.Unit_.Lookup ] }

(* Figure 3a's software match/action variant keeps its rules in DRAM for
   every sweep point, as the paper's implementation does. *)
let fig3a_options =
  { no_flow_cache with Map_.pin_state = [ ("routes", Clara_lnic.Memory.External) ] }

let no_accels =
  { Map_.default_options with
    Map_.disallowed_accels =
      [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto;
        L.Unit_.Eswitch ] }

let analyze_exn ?options src prof =
  match Clara.analyze_for_profile ?options lnic ~source:src ~profile:prof with
  | Ok a -> a
  | Error e -> failwith ("analyze: " ^ e)

let simulate prog prof ~seed =
  let trace = W.Trace.synthesize ~seed prof in
  (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles

let predict_and_simulate ?options src prog prof ~seed =
  let a = analyze_exn ?options src prof in
  let trace = W.Trace.synthesize ~seed prof in
  let predicted = (Clara.predict a trace).Lat.mean_cycles in
  let actual = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
  (predicted, actual)

let header title =
  Printf.printf "\n================ %s ================\n%!" title

(* When CLARA_CSV_DIR is set, figure sections also write their series as
   CSV files for external plotting. *)
let csv_out name columns rows =
  match Sys.getenv_opt "CLARA_CSV_DIR" with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (String.concat "," columns ^ "\n");
          List.iter
            (fun row ->
              output_string oc (String.concat "," (List.map string_of_float row) ^ "\n"))
            rows);
      Printf.printf "[csv] wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* BENCH_nicsim.json snapshot plumbing.  Sections merge their own keys
   into the snapshot (CLARA_BENCH_JSON, default the committed baseline)
   so `bench nicsim` and `bench offpath` can each run alone without
   clobbering the other's entry.  Schema history: v1 carried only the
   nicsim numbers; v2 adds a provenance object (git commit, OCaml
   version, host, UTC timestamp) and the offpath entry.  Readers accept
   both. *)

let bench_baseline_path = "BENCH_nicsim.json"

let bench_out_path () =
  Option.value (Sys.getenv_opt "CLARA_BENCH_JSON") ~default:bench_baseline_path

let read_json_file path =
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    if String.trim s = "" then None
    else
      match Clara_util.Json.parse s with
      | Ok j -> Some j
      | Error e ->
          Printf.printf "[warn] %s unreadable: %s\n" path e;
          None
  end

let load_baseline () =
  match read_json_file bench_baseline_path with
  | None -> None
  | Some j -> (
      match
        Option.bind (Clara_util.Json.member "schema" j) Clara_util.Json.to_int_opt
      with
      | Some (1 | 2) -> Some j
      | Some v ->
          Printf.printf "[warn] %s: unsupported schema %d (expected 1 or 2)\n"
            bench_baseline_path v;
          None
      | None ->
          Printf.printf "[warn] %s: no schema field\n" bench_baseline_path;
          None)

(* Read-modify-write: replace [fields] in the snapshot, keep everything
   else, and restamp schema + provenance. *)
let update_snapshot fields =
  let path = bench_out_path () in
  let keep (k, _) =
    k <> "schema" && k <> "provenance" && not (List.mem_assoc k fields)
  in
  let old =
    match read_json_file path with
    | Some (Clara_util.Json.Obj kvs) -> List.filter keep kvs
    | _ -> []
  in
  let p = Clara_calib.Calib.current_provenance ~options_hash:"bench" in
  let prov =
    Clara_util.Json.Obj
      [ ("timestamp", Clara_util.Json.String p.Clara_calib.Calib.timestamp);
        ("git_commit", Clara_util.Json.String p.Clara_calib.Calib.git_commit);
        ("ocaml_version", Clara_util.Json.String p.Clara_calib.Calib.ocaml_version);
        ("host", Clara_util.Json.String p.Clara_calib.Calib.host) ]
  in
  let snapshot =
    Clara_util.Json.Obj
      (("schema", Clara_util.Json.Int 2)
      :: ("provenance", prov)
      :: (fields @ old))
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Clara_util.Json.to_channel oc snapshot);
  Printf.printf "[json] wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Figure 1: performance variability of five NFs                       *)

let figure1 () =
  header "Figure 1: NF performance variability (simulator, normalized latency)";
  Printf.printf
    "Five NFs, 2-4 variants each with the same core logic; latency normalized\n";
  Printf.printf "against the fastest variant of each NF (paper: up to 13.8x).\n\n";
  let base_prof = profile ~packets:10_000 () in
  let groups =
    [ ( "NAT",
        [ ("csum-engine", Clara_nfs.Nat.ported ~checksum_engine:true (), base_prof);
          ("csum-software", Clara_nfs.Nat.ported ~checksum_engine:false (), base_prof) ] );
      ( "DPI",
        [ ("256B packets", Clara_nfs.Dpi.ported (), profile ~packets:10_000 ~payload:(W.Dist.Fixed 256) ());
          ("512B packets", Clara_nfs.Dpi.ported (), profile ~packets:10_000 ~payload:(W.Dist.Fixed 512) ());
          ("1024B packets", Clara_nfs.Dpi.ported (), profile ~packets:10_000 ~payload:(W.Dist.Fixed 1024) ()) ] );
      ( "FW",
        [ ("state in CTM", Clara_nfs.Firewall.ported ~entries:8192 ~placement:Dev.P_ctm (), base_prof);
          ("state in IMEM", Clara_nfs.Firewall.ported ~entries:8192 ~placement:Dev.P_imem (), base_prof);
          ("state in EMEM / skewed flows", Clara_nfs.Firewall.ported ~entries:65536 ~placement:Dev.P_emem (), base_prof);
          ( "state in EMEM / huge table, uniform flows",
            Clara_nfs.Firewall.ported ~entries:2_000_000 ~placement:Dev.P_emem (),
            W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:10_000
              ~flow_count:60_000 ~flow_skew:0.0 ~rate_pps:60_000. () ) ] );
      ( "LPM",
        [ ("1k rules + flow cache", Clara_nfs.Lpm.ported ~entries:1000 ~use_flow_cache:true (), base_prof);
          ("1k rules, software", Clara_nfs.Lpm.ported ~entries:1000 ~use_flow_cache:false (), base_prof);
          ("4k rules + flow cache", Clara_nfs.Lpm.ported ~entries:4000 ~use_flow_cache:true (), base_prof);
          ("4k rules, software", Clara_nfs.Lpm.ported ~entries:4000 ~use_flow_cache:false (), base_prof) ] );
      ( "HH",
        [ ("100 kpps", Clara_nfs.Heavy_hitter.ported (), profile ~packets:10_000 ~rate:100_000. ());
          ("1 Mpps", Clara_nfs.Heavy_hitter.ported (), profile ~packets:20_000 ~rate:1_000_000. ());
          ("1.8 Mpps", Clara_nfs.Heavy_hitter.ported (), profile ~packets:20_000 ~rate:1_800_000. ()) ] ) ]
  in
  let spread_max = ref 1. in
  List.iter
    (fun (nf, variants) ->
      let lats =
        List.map (fun (name, prog, prof) -> (name, simulate prog prof ~seed:31L)) variants
      in
      let fastest = List.fold_left (fun a (_, l) -> Float.min a l) Float.infinity lats in
      Printf.printf "%-4s\n" nf;
      List.iter
        (fun (name, l) ->
          Printf.printf "    %-28s %12.0f cyc   %6.2fx\n" name l (l /. fastest))
        lats;
      let worst = List.fold_left (fun a (_, l) -> Float.max a l) 0. lats in
      spread_max := Float.max !spread_max (worst /. fastest))
    groups;
  Printf.printf "\nmax variability across NFs: %.1fx (paper reports up to 13.8x)\n" !spread_max

(* ------------------------------------------------------------------ *)
(* Figure 3: prediction accuracy sweeps                                *)

let pct_err p a = 100. *. (p -. a) /. a

let figure3a () =
  header "Figure 3a: LPM latency vs table entries (predicted vs actual)";
  Printf.printf "%-10s %14s %14s %8s\n" "entries" "predicted" "actual" "err";
  let prof = profile ~packets:10_000 () in
  let rows = ref [] in
  let errs =
    List.map
      (fun entries ->
        let src = Clara_nfs.Lpm.source ~entries in
        let a = analyze_exn ~options:fig3a_options src prof in
        let placement =
          Option.value ~default:Dev.P_emem (Clara.device_placement_of_state a "routes")
        in
        let prog = Clara_nfs.Lpm.ported ~entries ~use_flow_cache:false ~placement () in
        let trace = W.Trace.synthesize ~seed:31L prof in
        let predicted = (Clara.predict a trace).Lat.mean_cycles in
        let actual = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
        Printf.printf "%-10d %12.0f K %12.0f K %+7.1f%%\n" entries (predicted /. 1000.)
          (actual /. 1000.) (pct_err predicted actual);
        rows := [ float_of_int entries; predicted; actual ] :: !rows;
        Float.abs (pct_err predicted actual))
      [ 5_000; 10_000; 15_000; 20_000; 25_000; 30_000 ]
  in
  csv_out "figure3a" [ "entries"; "predicted_cycles"; "actual_cycles" ] (List.rev !rows);
  Printf.printf "mean |err| %.1f%% (paper: 12%%)\n"
    (List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs))

let payload_sweep = [ 200; 400; 600; 800; 1000; 1200; 1400 ]

let figure3b () =
  header "Figure 3b: VNF chain latency vs payload size (predicted vs actual)";
  Printf.printf "%-10s %14s %14s %8s\n" "payload" "predicted" "actual" "err";
  let rows = ref [] in
  let errs =
    List.map
      (fun pay ->
        let prof = profile ~packets:10_000 ~payload:(W.Dist.Fixed pay) () in
        let predicted, actual =
          predict_and_simulate (Clara_nfs.Vnf_chain.source ()) (Clara_nfs.Vnf_chain.ported ())
            prof ~seed:31L
        in
        Printf.printf "%-10d %12.0f K %12.0f K %+7.1f%%\n" pay (predicted /. 1000.)
          (actual /. 1000.) (pct_err predicted actual);
        rows := [ float_of_int pay; predicted; actual ] :: !rows;
        Float.abs (pct_err predicted actual))
      payload_sweep
  in
  csv_out "figure3b" [ "payload_bytes"; "predicted_cycles"; "actual_cycles" ]
    (List.rev !rows);
  Printf.printf "mean |err| %.1f%% (paper: 3%%)\n"
    (List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs))

let figure3c () =
  header "Figure 3c: NAT latency vs payload size (predicted vs actual)";
  Printf.printf "%-10s %14s %14s %8s\n" "payload" "predicted" "actual" "err";
  let rows = ref [] in
  let errs =
    List.map
      (fun pay ->
        let prof = profile ~packets:10_000 ~payload:(W.Dist.Fixed pay) () in
        let predicted, actual =
          predict_and_simulate (Clara_nfs.Nat.source ())
            (Clara_nfs.Nat.ported ~checksum_engine:true ())
            prof ~seed:31L
        in
        Printf.printf "%-10d %12.0f   %12.0f   %+7.1f%%\n" pay predicted actual
          (pct_err predicted actual);
        rows := [ float_of_int pay; predicted; actual ] :: !rows;
        Float.abs (pct_err predicted actual))
      payload_sweep
  in
  csv_out "figure3c" [ "payload_bytes"; "predicted_cycles"; "actual_cycles" ]
    (List.rev !rows);
  Printf.printf "mean |err| %.1f%% (paper: 7%%)\n"
    (List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs))

(* ------------------------------------------------------------------ *)
(* Per-packet-type validation (§3.5's example output)                  *)

let packet_types () =
  header "Per-packet-type latency (§3.5): predicted vs simulated, firewall";
  let prof = profile ~packets:12_000 ~tcp:0.7 () in
  let trace = W.Trace.synthesize ~seed:31L prof in
  match Clara.analyze_for_profile lnic ~source:(Clara_nfs.Firewall.source ()) ~profile:prof with
  | Error e -> Printf.printf "error: %s
" e
  | Ok a ->
      let p = Clara.predict a trace in
      let r = Eng.run lnic (Clara_nfs.Firewall.ported ~placement:Dev.P_imem ()) trace in
      let s = r.Eng.summary in
      let row name pred act =
        Printf.printf "%-18s %12.0f %12.0f %+7.1f%%
" name pred act (pct_err pred act)
      in
      Printf.printf "%-18s %12s %12s %8s
" "packet type" "predicted" "actual" "err";
      row "tcp (mean)" p.Lat.tcp_mean s.SStats.tcp_mean;
      row "udp (mean)" p.Lat.udp_mean s.SStats.udp_mean;
      row "tcp syn (mean)" p.Lat.syn_mean s.SStats.syn_mean;
      Printf.printf
        "\nThe §3.5 example, reproduced: SYNs (connection setup: miss + insert)\n\
         cost more than established-flow packets; UDP takes the drop path.\n"

(* ------------------------------------------------------------------ *)
(* §3.2: microbenchmark parameter extraction                           *)

let microbench () =
  header "Microbenchmarks: parameter extraction (paper §3.2/§4)";
  let c = Clara.Microbench.calibrate lnic in
  Format.printf "%a" Clara.Microbench.pp_calibration c;
  Printf.printf "\nreference values (§3.2): parse ~150 cyc software / ~40 engine,\n";
  Printf.printf "checksum engine 300 cyc @1000B, metadata 2-5 cyc,\n";
  Printf.printf "EMEM cache 3MB (knee expected between 3MB and 4MB)\n"

(* ------------------------------------------------------------------ *)
(* §3.4 worked example                                                 *)

let mapping_example () =
  header "Mapping example (paper §3.4): NAT on the Netronome-like LNIC";
  let prof = profile () in
  let a = analyze_exn (Clara_nfs.Nat.source ()) prof in
  let report = Clara.Report.build ~rate_pps:prof.W.Profile.rate_pps a in
  Format.printf "%a" Clara.Report.render report

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)

let ablations () =
  header "Ablation: ILP mapping vs greedy first-fit";
  let prof = profile () in
  let sizes = Clara.sizes_of_profile prof in
  let prob = Clara.prob_of_profile prof in
  List.iter
    (fun (name, src) ->
      let df = Clara_dataflow.Build.of_source src in
      let ilp = Clara_mapping.Encode.map_nf lnic df ~sizes ~prob in
      let greedy = Clara_mapping.Greedy.map_nf lnic df ~sizes ~prob in
      match (ilp, greedy) with
      | Ok i, Ok g ->
          Printf.printf "%-14s ILP %10.0f cyc   greedy %10.0f cyc   ILP saves %5.1f%%\n" name
            i.Map_.objective_cycles g.Map_.objective_cycles
            (100. *. (g.Map_.objective_cycles -. i.Map_.objective_cycles)
            /. g.Map_.objective_cycles)
      | Error e, _ | _, Error e -> Printf.printf "%-14s error: %s\n" name e)
    [ ("nat", Clara_nfs.Nat.source ());
      ("lpm-10k", Clara_nfs.Lpm.source ~entries:10_000);
      ("firewall", Clara_nfs.Firewall.source ());
      ("vnf-chain", Clara_nfs.Vnf_chain.source ());
      ("heavy-hitter", Clara_nfs.Heavy_hitter.source ()) ];

  header "Ablation: flow cache on/off (LPM, §2.1 'orders of magnitude')";
  let prof10k = profile ~packets:10_000 () in
  List.iter
    (fun entries ->
      let fc = simulate (Clara_nfs.Lpm.ported ~entries ~use_flow_cache:true ()) prof10k ~seed:31L in
      let sw = simulate (Clara_nfs.Lpm.ported ~entries ~use_flow_cache:false ()) prof10k ~seed:31L in
      Printf.printf "%-8d rules: flow cache %8.0f cyc   software %10.0f cyc   %6.1fx\n"
        entries fc sw (sw /. fc))
    [ 1_000; 10_000; 30_000 ];

  header "Ablation: checksum engine vs software (NAT, §2.1)";
  List.iter
    (fun pay ->
      let prof = profile ~packets:5_000 ~payload:(W.Dist.Fixed pay) () in
      let eng = simulate (Clara_nfs.Nat.ported ~checksum_engine:true ()) prof ~seed:31L in
      let sw = simulate (Clara_nfs.Nat.ported ~checksum_engine:false ()) prof ~seed:31L in
      Printf.printf "%5dB payload: engine %8.0f cyc   software %8.0f cyc   +%4.0f cyc\n" pay
        eng sw (sw -. eng))
    [ 200; 1000; 1400 ];

  header "Ablation: cache-locality sensitivity (the model's free parameter)";
  Printf.printf
    "Figure 3a error as the locality discount varies (default 0.85):\n";
  let saved = !Clara_dataflow.Cost.cache_locality in
  let fig3a_err () =
    let prof = profile ~packets:4_000 () in
    let entries = 20_000 in
    let src = Clara_nfs.Lpm.source ~entries in
    let a = analyze_exn ~options:fig3a_options src prof in
    let placement =
      Option.value ~default:Dev.P_emem (Clara.device_placement_of_state a "routes")
    in
    let prog = Clara_nfs.Lpm.ported ~entries ~use_flow_cache:false ~placement () in
    let trace = W.Trace.synthesize ~seed:31L prof in
    let predicted = (Clara.predict a trace).Lat.mean_cycles in
    let actual = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
    pct_err predicted actual
  in
  List.iter
    (fun loc ->
      Clara_dataflow.Cost.cache_locality := loc;
      Printf.printf "  locality %.2f -> LPM-20k error %+6.1f%%\n" loc (fig3a_err ()))
    [ 0.5; 0.7; 0.85; 0.95; 1.0 ];
  Clara_dataflow.Cost.cache_locality := saved;

  header "Ablation: predicted gain of accelerators (mapping objective)";
  let prof = profile () in
  List.iter
    (fun (name, src) ->
      let with_acc = analyze_exn src prof in
      let without = analyze_exn ~options:no_accels src prof in
      Printf.printf "%-14s with accels %10.0f cyc   without %10.0f cyc   %5.1fx\n" name
        with_acc.Clara.mapping.Map_.objective_cycles
        without.Clara.mapping.Map_.objective_cycles
        (without.Clara.mapping.Map_.objective_cycles
        /. with_acc.Clara.mapping.Map_.objective_cycles))
    [ ("nat", Clara_nfs.Nat.source ()); ("lpm-10k", Clara_nfs.Lpm.source ~entries:10_000) ]

(* ------------------------------------------------------------------ *)
(* ILP solver microbenchmarks                                          *)

let ilp_bench () =
  header "ILP solver: pivots / iterations / warm starts per model";
  let reg = Clara_obs.Registry.default in
  let keys =
    [ "ilp.simplex.pivots"; "ilp.simplex.iterations"; "ilp.simplex.warm_starts";
      "ilp.bb.nodes"; "ilp.bb.best_bound_prunes" ]
  in
  let snap () = List.map (fun k -> (k, Clara_obs.Registry.counter_value reg k)) keys in
  let run name f =
    let before = snap () in
    f ();
    let d = List.map2 (fun (k, b) (_, a) -> (k, a - b)) before (snap ()) in
    let get k = List.assoc k d in
    Printf.printf "%-16s pivots %5d  iters %5d  warm %4d  nodes %4d  bb-prunes %4d\n"
      name
      (get "ilp.simplex.pivots")
      (get "ilp.simplex.iterations")
      (get "ilp.simplex.warm_starts")
      (get "ilp.bb.nodes")
      (get "ilp.bb.best_bound_prunes")
  in
  let prof = profile () in
  let sizes = Clara.sizes_of_profile prof in
  let prob = Clara.prob_of_profile prof in
  List.iter
    (fun (name, src) ->
      run name (fun () ->
          ignore
            (Clara_mapping.Encode.map_nf lnic
               (Clara_dataflow.Build.of_source src)
               ~sizes ~prob)))
    [ ("nat", Clara_nfs.Nat.source ());
      ("lpm-10k", Clara_nfs.Lpm.source ~entries:10_000);
      ("firewall", Clara_nfs.Firewall.source ());
      ("vnf-chain", Clara_nfs.Vnf_chain.source ());
      ("heavy-hitter", Clara_nfs.Heavy_hitter.source ()) ];
  (* The mapping models above mostly solve at the root; a deliberately
     fractional covering model branches at every node, so the
     warm-started dual simplex and best-bound pruning do real work. *)
  run "branchy-cover" (fun () ->
      let module M = Clara_ilp.Model in
      let module LE = Clara_ilp.Lin_expr in
      let module R = Clara_ilp.Rat in
      let m = M.create () in
      let xs = List.init 14 (fun _ -> M.add_var m M.Binary) in
      M.add_constraint m
        (LE.sum (List.map (fun x -> LE.var ~coeff:(R.of_int 2) x) xs))
        M.Le (R.of_int 13);
      M.set_objective m M.Maximize (LE.sum (List.map LE.var xs));
      ignore (Clara_ilp.Branch_bound.solve m));
  (* A knapsack with spread-out profit densities: early dives find good
     incumbents whose objective closes later subtrees by best bound. *)
  run "knapsack-18" (fun () ->
      let module M = Clara_ilp.Model in
      let module LE = Clara_ilp.Lin_expr in
      let module R = Clara_ilp.Rat in
      let m = M.create () in
      let n = 18 in
      let value j = ((3 * j) mod 11) + 2 and weight j = ((5 * j) mod 7) + 3 in
      let xs = List.init n (fun _ -> M.add_var m M.Binary) in
      M.add_constraint m
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(R.of_int (weight j)) x) xs))
        M.Le
        (R.of_int (List.fold_left ( + ) 0 (List.init n weight) / 3));
      M.set_objective m M.Maximize
        (LE.sum (List.mapi (fun j x -> LE.var ~coeff:(R.of_int (value j)) x) xs));
      ignore (Clara_ilp.Branch_bound.solve m))

(* ------------------------------------------------------------------ *)
(* Interference (§3.5)                                                 *)

let interference () =
  header "Interference: co-resident NFs on sliced LNIC halves (§3.5)";
  (* Meaningful rate + large EMEM-resident state on both sides so the
     cache cross-term and accelerator head-of-line blocking bite, while
     the combined load stays below the NIC's DMA capacity (~2 Mpps) —
     beyond it the co-resident system simply saturates. *)
  let prof = profile ~packets:8_000 ~rate:500_000. () in
  (match
     Clara_predict.Interference.analyze_pair lnic
       ~source_a:(Clara_nfs.Firewall.source ~entries:1_000_000 ())
       ~source_b:(Clara_nfs.Kv_store.source ())
       ~profile:prof
   with
  | Error e -> Printf.printf "error: %s\n" e
  | Ok (a, b) ->
      let pr name (r : Clara_predict.Interference.report) =
        Printf.printf
          "%-10s solo %9.0f cyc   half-slice %9.0f cyc   contended %9.0f cyc   slowdown %.2fx\n"
          name r.Clara_predict.Interference.solo_cycles
          r.Clara_predict.Interference.sliced_cycles
          r.Clara_predict.Interference.contended_cycles
          r.Clara_predict.Interference.slowdown
      in
      pr "firewall" a;
      pr "kv-store" b);
  (* Validate against genuine co-resident simulation: both ports share
     one simulator (caches, flow cache, accelerators, DMA lanes). *)
  let prog_a = Clara_nfs.Firewall.ported ~entries:1_000_000 ~placement:Dev.P_emem () in
  let prog_b = Clara_nfs.Kv_store.ported ~placement:Dev.P_emem () in
  let tr_a = W.Trace.synthesize ~seed:31L prof in
  let tr_b = W.Trace.synthesize ~seed:57L prof in
  let solo_a = Eng.run lnic prog_a tr_a in
  let solo_b = Eng.run lnic prog_b tr_b in
  let co_a, co_b = Eng.run_pair lnic prog_a prog_b tr_a tr_b in
  let pr name (solo : Eng.result) (co : Eng.result) =
    Printf.printf
      "%-10s simulated solo %9.0f cyc   co-resident %9.0f cyc   slowdown %.2fx\n" name
      solo.Eng.summary.SStats.mean_cycles co.Eng.summary.SStats.mean_cycles
      (co.Eng.summary.SStats.mean_cycles /. solo.Eng.summary.SStats.mean_cycles)
  in
  Printf.printf "\n";
  pr "firewall" solo_a co_a;
  pr "kv-store" solo_b co_b

(* ------------------------------------------------------------------ *)
(* NIC selection (§1/§6 use case)                                      *)

let nic_selection () =
  header "NIC selection: same NF + workload, three SmartNIC targets";
  let prof = profile () in
  let targets =
    [ ("netronome-like", lnic); ("arm-soc-like", L.Soc_nic.default);
      ("asic-pipeline", L.Asic_nic.default) ]
  in
  List.iter
    (fun (name, src) ->
      Printf.printf "%s:\n" name;
      List.iter
        (fun (tname, target) ->
          match Clara.analyze_for_profile target ~source:src ~profile:prof with
          | Error e -> Printf.printf "  %-16s error: %s\n" tname e
          | Ok a ->
              let p = Clara.predict_profile a prof in
              let tp = Clara_predict.Throughput.estimate target a.Clara.df a.Clara.mapping in
              let freq =
                match L.Graph.general_cores target with
                | u :: _ -> u.L.Unit_.freq_mhz
                | [] -> 1
              in
              Printf.printf "  %-16s latency %8.0f cyc (%6.1f us)   tput %10.0f pps\n" tname
                p.Lat.mean_cycles
                (p.Lat.mean_cycles /. float_of_int freq)
                tp.Clara_predict.Throughput.max_pps)
        targets)
    [ ("lpm-20k (table-heavy)", Clara_nfs.Lpm.source ~entries:20_000);
      ("dpi (compute-heavy)", Clara_nfs.Dpi.source) ]

(* ------------------------------------------------------------------ *)
(* Throughput validation: predicted capacity vs simulator saturation    *)

let throughput_validation () =
  header "Throughput: predicted capacity vs simulated saturation point";
  Printf.printf
    "Predicted max pps is the bottleneck model (§3.5); measured is the lowest
     offered rate where the simulator drops >1%% or p50 latency doubles.

";
  let prof_at rate = profile ~packets:12_000 ~rate () in
  List.iter
    (fun (name, src, prog) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile:(prof_at 60_000.) with
      | Error e -> Printf.printf "%-12s error: %s
" name e
      | Ok a ->
          let tp = Clara_predict.Throughput.estimate lnic a.Clara.df a.Clara.mapping in
          let base =
            (Eng.run lnic prog (W.Trace.synthesize ~seed:31L (prof_at 30_000.)))
              .Eng.summary.SStats.p50_cycles
          in
          (* Geometric sweep for the saturation knee. *)
          let rec sweep rate =
            if rate > 6.4e6 then None
            else begin
              let r = Eng.run lnic prog (W.Trace.synthesize ~seed:31L (prof_at rate)) in
              let drops =
                float_of_int r.Eng.summary.SStats.drops
                /. float_of_int (max 1 (r.Eng.summary.SStats.packets + r.Eng.summary.SStats.drops))
              in
              if drops > 0.01 || r.Eng.summary.SStats.p50_cycles > 2 * base then Some rate
              else sweep (rate *. 1.4)
            end
          in
          (match sweep 100_000. with
          | Some measured ->
              Printf.printf "%-12s predicted %10.0f pps   measured knee ~%10.0f pps   ratio %.2f
"
                name tp.Clara_predict.Throughput.max_pps measured
                (tp.Clara_predict.Throughput.max_pps /. measured)
          | None ->
              Printf.printf "%-12s predicted %10.0f pps   no saturation below 6.4 Mpps
" name
                tp.Clara_predict.Throughput.max_pps))
    [ ("nat", Clara_nfs.Nat.source (), Clara_nfs.Nat.ported ~checksum_engine:true ());
      ("tunnel-gw", Clara_nfs.Tunnel_gw.source (), Clara_nfs.Tunnel_gw.ported ());
      ("dpi", Clara_nfs.Dpi.source, Clara_nfs.Dpi.ported ()) ]

(* ------------------------------------------------------------------ *)
(* Load-latency curve: M/M/k queueing prediction vs simulation          *)

let load_latency () =
  header "Load-latency curve (NAT): M/M/k prediction vs simulation (§6 queueing)";
  Printf.printf "%-12s %14s %14s
" "rate (pps)" "predicted" "simulated";
  let src = Clara_nfs.Nat.source () in
  let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
  let base_prof = profile ~packets:12_000 ~rate:30_000. () in
  match Clara.analyze_for_profile lnic ~source:src ~profile:base_prof with
  | Error e -> Printf.printf "error: %s
" e
  | Ok a ->
      let base =
        (Clara.predict a (W.Trace.synthesize ~seed:31L base_prof)).Lat.mean_cycles
      in
      List.iter
        (fun rate ->
          let predicted =
            Clara_predict.Throughput.latency_at_rate ~base_cycles:base ~rate_pps:rate
              lnic a.Clara.df a.Clara.mapping
          in
          let prof = profile ~packets:12_000 ~rate () in
          let sim =
            (Eng.run lnic prog (W.Trace.synthesize ~seed:31L prof))
              .Eng.summary.SStats.mean_cycles
          in
          match predicted with
          | Some p -> Printf.printf "%-12.0f %14.0f %14.0f
" rate p sim
          | None -> Printf.printf "%-12.0f %14s %14.0f
" rate "unstable" sim)
        [ 100_000.; 500_000.; 1_000_000.; 1_500_000.; 1_800_000.; 1_950_000.; 2_200_000. ]

(* ------------------------------------------------------------------ *)
(* Service chains                                                      *)

let chains () =
  header "Service chains: per-stage vs end-to-end prediction";
  let prof = profile ~packets:8_000 () in
  let trace = W.Trace.synthesize ~seed:31L prof in
  let sources =
    [ ("firewall", Clara_nfs.Firewall.source ());
      ("nat", Clara_nfs.Nat.source ());
      ("tunnel-gw", Clara_nfs.Tunnel_gw.source ()) ]
  in
  List.iter
    (fun (name, src) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile:prof with
      | Ok a ->
          Printf.printf "  %-12s standalone %8.0f cyc
" name
            (Clara.predict a trace).Lat.mean_cycles
      | Error e -> Printf.printf "  %-12s error: %s
" name e)
    sources;
  match Clara.Chain.analyze lnic ~sources:(List.map snd sources) ~profile:prof with
  | Error e -> Printf.printf "chain error: %s
" e
  | Ok c ->
      let p = Clara.Chain.predict c trace in
      Printf.printf "  %-12s end-to-end %8.0f cyc (emit %.0f%%, p99 %.0f)
" "chain"
        p.Lat.mean_cycles
        (100. *. p.Lat.emitted_fraction)
        p.Lat.p99_cycles

(* ------------------------------------------------------------------ *)
(* Energy (§6 future work)                                             *)

let energy () =
  header "Energy prediction (paper §6 / E3): per-packet energy by target";
  let prof = profile () in
  Printf.printf "%-14s %16s %16s %12s
" "nf" "netronome (nJ)" "x86 host (nJ)" "NIC wins?";
  List.iter
    (fun (name, src) ->
      let nj target =
        match Clara.analyze_for_profile target ~source:src ~profile:prof with
        | Error _ -> Float.nan
        | Ok a ->
            (Clara_predict.Energy.estimate ~rate_pps:prof.W.Profile.rate_pps target
               a.Clara.df a.Clara.mapping)
              .Clara_predict.Energy.nj_per_packet
      in
      let nic = nj lnic and host = nj L.Host.default in
      Printf.printf "%-14s %16.0f %16.0f %12s
" name nic host
        (if nic < host then "yes" else "no"))
    [ ("nat", Clara_nfs.Nat.source ());
      ("firewall", Clara_nfs.Firewall.source ());
      ("dpi", Clara_nfs.Dpi.source);
      ("telemetry", Clara_nfs.Telemetry.source ());
      ("ipsec-gw", Clara_nfs.Ipsec_gw.source ()) ]

(* ------------------------------------------------------------------ *)
(* Partial offloading (§6 future work)                                 *)

let partial () =
  header "Partial offloading (paper §6): best NIC/host split per NF";
  let prof = profile () in
  Printf.printf "%-14s %-46s %10s
" "nf" "best split" "total";
  List.iter
    (fun (name, src) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile:prof with
      | Error e -> Printf.printf "%-14s error: %s
" name e
      | Ok a ->
          let s = Clara_predict.Partial.best_split lnic a.Clara.df a.Clara.mapping in
          Printf.printf "%-14s %-46s %8.0f ns
" name
            (Clara_predict.Partial.describe a.Clara.df s)
            s.Clara_predict.Partial.total_ns)
    [ ("nat", Clara_nfs.Nat.source ());
      ("lpm-20k", Clara_nfs.Lpm.source ~entries:20_000);
      ("dpi", Clara_nfs.Dpi.source);
      ("vnf-chain", Clara_nfs.Vnf_chain.source ());
      ("kv-store", Clara_nfs.Kv_store.source ());
      ("syn-proxy", Clara_nfs.Syn_proxy.source ());
      ("telemetry", Clara_nfs.Telemetry.source ()) ]

(* ------------------------------------------------------------------ *)
(* NF zoo: predicted vs actual across the whole corpus                 *)

let zoo () =
  header "NF zoo: predicted vs simulated mean latency across the corpus";
  let prof = profile ~packets:8_000 () in
  Printf.printf "%-16s %12s %12s %8s
" "nf" "predicted" "actual" "err";
  let errs = ref [] in
  List.iter
    (fun (name, src, prog) ->
      match Clara.analyze_for_profile lnic ~source:src ~profile:prof with
      | Error e -> Printf.printf "%-16s error: %s
" name e
      | Ok a ->
          let trace = W.Trace.synthesize ~seed:31L prof in
          let predicted = (Clara.predict a trace).Lat.mean_cycles in
          let actual = (Eng.run lnic prog trace).Eng.summary.SStats.mean_cycles in
          errs := Float.abs (pct_err predicted actual) :: !errs;
          Printf.printf "%-16s %12.0f %12.0f %+7.1f%%
" name predicted actual
            (pct_err predicted actual))
    [ ("nat", Clara_nfs.Nat.source (), Clara_nfs.Nat.ported ~checksum_engine:true ());
      ("firewall", Clara_nfs.Firewall.source (), Clara_nfs.Firewall.ported ~placement:Dev.P_imem ());
      ("dpi", Clara_nfs.Dpi.source, Clara_nfs.Dpi.ported ());
      ("heavy-hitter", Clara_nfs.Heavy_hitter.source (), Clara_nfs.Heavy_hitter.ported ());
      ("vnf-chain", Clara_nfs.Vnf_chain.source (), Clara_nfs.Vnf_chain.ported ());
      ("kv-store", Clara_nfs.Kv_store.source (), Clara_nfs.Kv_store.ported ());
      ("load-balancer", Clara_nfs.Load_balancer.source (), Clara_nfs.Load_balancer.ported ());
      ("syn-proxy", Clara_nfs.Syn_proxy.source (), Clara_nfs.Syn_proxy.ported ());
      ("ipsec-gw", Clara_nfs.Ipsec_gw.source (), Clara_nfs.Ipsec_gw.ported ());
      ("telemetry", Clara_nfs.Telemetry.source (), Clara_nfs.Telemetry.ported ());
      ("tunnel-gw", Clara_nfs.Tunnel_gw.source (), Clara_nfs.Tunnel_gw.ported ()) ];
  let n = List.length !errs in
  if n > 0 then
    Printf.printf "mean |err| across the zoo: %.1f%%
"
      (List.fold_left ( +. ) 0. !errs /. float_of_int n)

(* ------------------------------------------------------------------ *)
(* Bechamel: cost of the tooling itself                                *)

let bechamel () =
  header "Bechamel: tool microbenchmarks";
  let open Bechamel in
  let prof = profile ~packets:500 ~flows:200 () in
  let nat_src = Clara_nfs.Nat.source () in
  let analysis = analyze_exn nat_src prof in
  let trace = W.Trace.synthesize ~seed:3L prof in
  let tests =
    [ Test.make ~name:"lower+coarsen nat" (Staged.stage (fun () ->
          ignore (Clara_dataflow.Build.of_source nat_src)));
      Test.make ~name:"ilp map nat" (Staged.stage (fun () ->
          ignore
            (Clara_mapping.Encode.map_nf lnic
               (Clara_dataflow.Build.of_source nat_src)
               ~sizes:(Clara.sizes_of_profile prof)
               ~prob:(Clara.prob_of_profile prof))));
      Test.make ~name:"predict 500 pkts" (Staged.stage (fun () ->
          ignore (Clara.predict analysis trace)));
      Test.make ~name:"simulate 500 pkts" (Staged.stage (fun () ->
          ignore (Eng.run lnic (Clara_nfs.Nat.ported ~checksum_engine:true ()) trace)));
      Test.make ~name:"synthesize 500-pkt trace" (Staged.stage (fun () ->
          ignore (W.Trace.synthesize ~seed:9L prof))) ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 10) () in
    let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
    let raw = Benchmark.all cfg instances test in
    let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
    Analyze.merge ols instances [ analyzed ]
  in
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"clara" [ test ]) in
      Hashtbl.iter
        (fun _ tbl ->
          Hashtbl.iter
            (fun name ols ->
              match Analyze.OLS.estimates ols with
              | Some [ est ] -> Printf.printf "%-28s %12.0f ns/run\n" name est
              | _ -> Printf.printf "%-28s (no estimate)\n" name)
            tbl)
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Sweep: parallel design-space exploration with the result cache      *)

let sweep_bench () =
  header "Sweep: lib/explore parallel exploration + result cache";
  let module E = Clara_explore in
  let nfs =
    List.filter_map
      (fun n ->
        Clara_nfs.Corpus.find n
        |> Option.map (fun e -> (n, e.Clara_nfs.Corpus.source)))
      [ "nat"; "lpm"; "firewall"; "heavy-hitter" ]
  in
  let workloads =
    List.map
      (fun rate ->
        ( Printf.sprintf "r%g" rate,
          W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:2_000
            ~flow_count:5_000 ~rate_pps:rate () ))
      [ 60_000.; 1_000_000. ]
  in
  let spec =
    E.Spec.make ~name:"bench-sweep" ~seed:42 ~nfs
      ~nics:[ "netronome"; "soc"; "asic" ]
      ~opts:[ ("default", Map_.default_options) ]
      ~workloads ()
  in
  let cells = List.length spec.E.Spec.cells in
  let cores = Domain.recommended_domain_count () in
  Printf.printf "spec: 4 NFs x 3 NICs x 2 rates = %d cells, 2000 packets each\n" cells;
  Printf.printf "host: %d usable core%s%s\n\n" cores (if cores = 1 then "" else "s")
    (if cores < 2 then
       " — multi-domain wall-clock CANNOT beat 1 domain here (OCaml's \
        stop-the-world minor GC makes oversubscribed domains strictly slower); \
        run on a multicore host to see the parallel speedup"
     else "");
  let rec rm_rf path =
    match Sys.is_directory path with
    | true ->
        Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
        Sys.rmdir path
    | false -> Sys.remove path
    | exception Sys_error _ -> ()
  in
  let fresh_dir suffix =
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "clara-bench-sweep-%d-%s" (Unix.getpid ()) suffix)
    in
    rm_rf d;
    d
  in
  let dir1 = fresh_dir "1dom" and dir4 = fresh_dir "4dom" in
  let run ~domains ~dir =
    E.Sweep.run ~domains ~cache:(E.Cache.create ~dir) spec
  in
  let wall (r : E.Sweep.report) = float_of_int r.E.Sweep.stats.E.Sweep.wall_ns /. 1e9 in
  let r1 = run ~domains:1 ~dir:dir1 in
  Printf.printf "cold, 1 domain:   wall %6.2f s  (%d ok, %d failed)\n" (wall r1)
    (r1.E.Sweep.stats.E.Sweep.cells - r1.E.Sweep.stats.E.Sweep.failed)
    r1.E.Sweep.stats.E.Sweep.failed;
  let par = if cores >= 2 then min 4 cores else 4 in
  let r4 = run ~domains:par ~dir:dir4 in
  Printf.printf "cold, %d domains:  wall %6.2f s  utilization %3.0f%%  speedup %.2fx\n"
    par (wall r4)
    (100. *. r4.E.Sweep.stats.E.Sweep.utilization)
    (wall r1 /. wall r4);
  let rw = run ~domains:par ~dir:dir4 in
  Printf.printf "warm, %d domains:  wall %6.2f s  cache %d hit / %d miss (%.0f%% hits)\n" par
    (wall rw) rw.E.Sweep.stats.E.Sweep.cache_hits rw.E.Sweep.stats.E.Sweep.cache_misses
    (100.
    *. float_of_int rw.E.Sweep.stats.E.Sweep.cache_hits
    /. float_of_int rw.E.Sweep.stats.E.Sweep.cells);
  let j1 = Clara_util.Json.to_string (E.Sweep.to_json r1) in
  let j4 = Clara_util.Json.to_string (E.Sweep.to_json r4) in
  let jw = Clara_util.Json.to_string (E.Sweep.to_json rw) in
  Printf.printf "report determinism: 1-dom == %d-dom: %b, cold == warm: %b\n" par
    (String.equal j1 j4) (String.equal j4 jw);
  csv_out "sweep"
    [ "domains"; "wall_s"; "hits" ]
    [ [ 1.; wall r1; 0. ]; [ float_of_int par; wall r4; 0. ];
      [ float_of_int par; wall rw;
        float_of_int rw.E.Sweep.stats.E.Sweep.cache_hits ] ];
  rm_rf dir1;
  rm_rf dir4

(* ------------------------------------------------------------------ *)
(* Trace guard: tracing must not perturb simulation results            *)

let trace_guard () =
  header "Trace guard: sink off vs on must be byte-identical";
  Printf.printf
    "Runs the same NF + workload with the trace sink disabled and enabled;\n\
     any divergence in the latency summary means instrumentation leaked\n\
     into simulation semantics.  Also reports the tracing overhead.\n\n";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  List.iter
    (fun (name, prog, prof) ->
      let trace = W.Trace.synthesize ~seed:31L prof in
      (* Warm-up run so neither timed run pays one-time costs. *)
      ignore (Eng.run lnic prog trace);
      let r_off, t_off = time (fun () -> Eng.run lnic prog trace) in
      let sink = Clara_nicsim.Trace.create () in
      let r_on, t_on = time (fun () -> Eng.run lnic prog ~sink trace) in
      (* [compare] (not [=]) so NaN hit rates on cache-free NFs compare
         equal instead of poisoning the check. *)
      if compare r_off.Eng.summary r_on.Eng.summary <> 0 then
        failwith (name ^ ": latency summary differs with tracing on");
      if compare r_off.Eng.emem_hit_rate r_on.Eng.emem_hit_rate <> 0 then
        failwith (name ^ ": emem hit rate differs with tracing on");
      if compare r_off.Eng.flow_cache_hit_rate r_on.Eng.flow_cache_hit_rate <> 0
      then failwith (name ^ ": flow cache hit rate differs with tracing on");
      if Clara_nicsim.Trace.total sink = 0 then
        failwith (name ^ ": sink recorded no events");
      Printf.printf
        "%-14s identical results; %8d events   off %6.1f ms   on %6.1f ms   overhead %.2fx\n"
        name
        (Clara_nicsim.Trace.total sink)
        (1e3 *. t_off) (1e3 *. t_on)
        (t_on /. t_off))
    [ ("nat", Clara_nfs.Nat.ported ~checksum_engine:true (), profile ~packets:10_000 ());
      ("lpm-4k", Clara_nfs.Lpm.ported ~entries:4_000 ~use_flow_cache:true (), profile ~packets:10_000 ());
      ( "firewall-hot",
        Clara_nfs.Firewall.ported ~entries:8192 ~placement:Dev.P_imem (),
        profile ~packets:10_000 ~rate:1_500_000. () ) ]

(* ------------------------------------------------------------------ *)
(* Lint: the static-analysis suite over the whole corpus               *)

let lint_bench () =
  header "Lint: analysis suite over the corpus (budget: 100 ms per sweep)";
  Printf.printf
    "Runs all four passes (sharing, feasibility, paths, cost) on every\n\
     corpus NF against two targets; per-pass counters land in the lib/obs\n\
     registry (analysis.*).  A sweep over the mean budget fails the bench.\n\n";
  let targets = [ ("netronome", lnic); ("asic", L.Asic_nic.default) ] in
  let cirs =
    List.map
      (fun (e : Clara_nfs.Corpus.entry) ->
        ( e.Clara_nfs.Corpus.name,
          fst (Clara_cir.Patterns.run (Clara_cir.Lower.lower_source e.Clara_nfs.Corpus.source)) ))
      Clara_nfs.Corpus.all
  in
  let sweep () =
    List.fold_left
      (fun acc (_, ir) ->
        List.fold_left
          (fun acc (_, target) ->
            let r = Clara_analysis.Suite.run ~lnic:target ir in
            acc + List.length r.Clara_analysis.Suite.diagnostics)
          acc targets)
      0 cirs
  in
  ignore (sweep ());
  (* warm-up *)
  let iters = 20 in
  let t0 = Unix.gettimeofday () in
  let diags = ref 0 in
  for _ = 1 to iters do
    diags := sweep ()
  done;
  let per_sweep_ms = 1e3 *. (Unix.gettimeofday () -. t0) /. float_of_int iters in
  Printf.printf
    "%d NFs x %d targets: %d diagnostics per sweep, %.2f ms per sweep (%d runs)\n"
    (List.length cirs) (List.length targets) !diags per_sweep_ms iters;
  let budget_ms = 100. in
  if per_sweep_ms > budget_ms then
    failwith
      (Printf.sprintf "lint bench over budget: %.2f ms > %.0f ms per sweep"
         per_sweep_ms budget_ms);
  let reg = Clara_obs.Registry.default in
  List.iter
    (fun key ->
      Printf.printf "  %-28s %d\n" key (Clara_obs.Registry.counter_value reg key))
    [ "analysis.runs"; "analysis.errors"; "analysis.warnings"; "analysis.infos";
      "analysis.diags.sharing"; "analysis.diags.feasibility";
      "analysis.diags.paths"; "analysis.diags.cost" ]

(* ------------------------------------------------------------------ *)
(* bounds: static interval soundness gate + SLO-pruned sweep           *)

let bounds_bench () =
  header "Bounds: static latency intervals vs simulation (soundness gate)";
  Printf.printf
    "For every example NF on every target, the interval abstract\n\
     interpretation's per-type [lower, upper] cycle bounds must contain\n\
     the simulated per-type mean latency (2000 packets, 300 B payload,\n\
     60 kpps, seed 42).  Also enforces a %.0f ms per-NF analysis budget\n\
     and finite upper bounds for loop-free / derivable-trip NFs, and\n\
     demonstrates the bounds as a pre-simulation SLO pruning predicate\n\
     on the standard sweep grid.\n\n"
    100.;
  let module B = Clara_analysis.Bounds in
  let module I = Clara_analysis.Interval in
  let module Att = Clara_nicsim.Attribution in
  let example_nfs = [ "nat"; "lpm"; "firewall"; "dpi"; "syn-proxy" ] in
  let targets =
    [ ("netronome", L.Netronome.default);
      ("soc", L.Soc_nic.default);
      ("bluefield", L.Bluefield.default) ]
  in
  let budget_ms = 100. in
  List.iter
    (fun nf ->
      let entry =
        match Clara_nfs.Corpus.find nf with
        | Some e -> e
        | None -> failwith ("bounds: unknown corpus NF " ^ nf)
      in
      let ir =
        fst
          (Clara_cir.Patterns.run
             (Clara_cir.Lower.lower_source entry.Clara_nfs.Corpus.source))
      in
      List.iter
        (fun (nic_name, nic) ->
          let t0 = Unix.gettimeofday () in
          let b = B.analyze ~lnic:nic ir in
          let ms = 1e3 *. (Unix.gettimeofday () -. t0) in
          if ms > budget_ms then
            failwith
              (Printf.sprintf "bounds: %s@%s analysis took %.1f ms > %.0f ms"
                 nf nic_name ms budget_ms);
          (* Finite ceilings: these NFs have no loop without a derivable
             trip bound, so an infinite upper bound is an analysis bug. *)
          List.iter
            (fun (row : B.type_bounds) ->
              if not (I.is_finite row.B.tb_total) then
                failwith
                  (Printf.sprintf "bounds: %s@%s type %s has a non-finite bound"
                     nf nic_name row.B.tb_type))
            b.B.bt_per_type;
          (* Soundness: simulate and check every attributed per-type mean
             falls inside the static interval. *)
          let prof =
            W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:2_000
              ~flow_count:2_000 ~rate_pps:60_000. ~tcp_fraction:0.8 ()
          in
          let trace = W.Trace.synthesize ~seed:42L prof in
          let sink = Clara_nicsim.Trace.create ~limit:(2_000 * 64) () in
          let all = Option.get (B.find b "all") in
          match Eng.run ~sink nic entry.Clara_nfs.Corpus.ported trace with
          (* A ported device can require hardware a target lacks (e.g.
             lpm's flow cache on the soc): nothing to gate against. *)
          | exception Invalid_argument reason ->
              Printf.printf
                "%-10s %-10s %4.1f ms  sim n/a (%s)  all: [%.0f, %.0f] cycles\n"
                nf nic_name ms reason
                (I.lo all.B.tb_total) (I.hi all.B.tb_total)
          | _ ->
              let rep = Att.analyze sink in
              let checked = ref 0 in
              List.iter
                (fun (row : Att.row) ->
                  if row.Att.r_prog = 0 && row.Att.r_count > 0 then
                    match B.find b row.Att.r_type with
                    | None -> ()
                    | Some sb ->
                        incr checked;
                        let lo = I.lo sb.B.tb_total
                        and hi = I.hi sb.B.tb_total in
                        if row.Att.r_total < lo || row.Att.r_total > hi then
                          failwith
                            (Printf.sprintf
                               "bounds UNSOUND: %s@%s type %-7s sim mean %.0f \
                                outside static [%.0f, %.0f]"
                               nf nic_name row.Att.r_type row.Att.r_total lo hi))
                rep.Att.rows;
              if !checked = 0 then
                failwith
                  (Printf.sprintf
                     "bounds: %s@%s simulator attributed no packets" nf nic_name);
              Printf.printf
                "%-10s %-10s %4.1f ms  %d type rows inside  all: [%.0f, %.0f] cycles\n"
                nf nic_name ms !checked
                (I.lo all.B.tb_total) (I.hi all.B.tb_total))
        targets)
    example_nfs;
  (* SLO pruning on the standard sweep grid: cells whose static latency
     lower bound already exceeds the SLO are closed before simulation. *)
  let module E = Clara_explore in
  let nfs =
    List.filter_map
      (fun n ->
        Clara_nfs.Corpus.find n
        |> Option.map (fun e -> (n, e.Clara_nfs.Corpus.source)))
      [ "nat"; "lpm"; "firewall"; "heavy-hitter" ]
  in
  let workloads =
    List.map
      (fun rate ->
        ( Printf.sprintf "r%g" rate,
          W.Profile.make ~payload:(W.Dist.Fixed 300) ~packets:2_000
            ~flow_count:5_000 ~rate_pps:rate () ))
      [ 60_000.; 1_000_000. ]
  in
  let spec =
    E.Spec.make ~name:"bench-bounds-slo" ~seed:42 ~nfs
      ~nics:[ "netronome"; "soc"; "asic" ]
      ~opts:[ ("default", Map_.default_options) ]
      ~workloads ()
  in
  let slo = 1.0 in
  let r = E.Sweep.run ~domains:1 ?slo_p99_us:(Some slo) spec in
  let s = r.E.Sweep.stats in
  Printf.printf
    "\nsweep with --slo-p99-us %.1f: %d cells, %d pruned before simulation, \
     %d computed\n"
    slo s.E.Sweep.cells s.E.Sweep.pruned
    (s.E.Sweep.cells - s.E.Sweep.pruned - s.E.Sweep.failed);
  if s.E.Sweep.pruned < 1 then
    failwith "bounds: SLO pruning closed no cell on the standard grid";
  if s.E.Sweep.pruned >= s.E.Sweep.cells then
    failwith "bounds: SLO pruning closed every cell (predicate too eager)"

(* ------------------------------------------------------------------ *)
(* nicsim: steady-state fast path vs event path, sharded throughput    *)

(* Op-dense stateless NF: a payload scanner that walks the packet a
   4-byte word at a time, the granularity of a string-matching automaton.
   Hundreds of device calls per packet and no mutable state — the regime
   the fast path is built for, where replay collapses the whole walk into
   a handful of memoized segments. *)
let wordscan =
  { Dev.name = "wordscan";
    tables = [];
    handler =
      (fun ctx pkt ->
        Dev.parse_header ctx ~engine:true;
        let words = (pkt.W.Packet.payload_bytes + 3) / 4 in
        for _ = 1 to words do
          Dev.local_read ctx 1;
          Dev.hash_op ctx;
          Dev.alu ctx 4;
          Dev.branch ctx
        done;
        if Dev.scan_payload ctx ~bytes:pkt.W.Packet.payload_bytes then
          Dev.alu ctx 30;
        Dev.checksum ctx ~engine:true ~bytes:(W.Packet.total_bytes pkt);
        Dev.Emit) }

let nicsim_bench () =
  header "nicsim: steady-state fast path + domain-parallel throughput";
  Printf.printf
    "The fast path's contract is \"same numbers, less work\": under Auto a\n\
     confirmed steady-state packet replays its memoized cost profile instead\n\
     of re-executing the handler.  This section enforces byte-identity with\n\
     the event path on stateless NFs, full fallback on a stateful NF, and\n\
     1-domain == N-domain determinism for sharded runs, then snapshots\n\
     packets/sec.  CLARA_BENCH_ENFORCE=1 additionally fails the bench when\n\
     the op-dense NF's speedup drops below 10x or packets/sec regresses\n\
     more than 20%% against the committed BENCH_nicsim.json.\n\n";
  let enforce = Sys.getenv_opt "CLARA_BENCH_ENFORCE" = Some "1" in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let same name what a b =
    if compare a b <> 0 then
      failwith (name ^ ": " ^ what ^ " differs between event and fast path")
  in
  (* [compare] (not [=]) so NaN hit rates compare equal, as in the trace
     guard.  The [fast] counters are excluded: they are the one field
     that legitimately differs between the two paths. *)
  let identical name (a : Eng.result) (b : Eng.result) =
    same name "latency summary" a.Eng.summary b.Eng.summary;
    same name "emem hit rate" a.Eng.emem_hit_rate b.Eng.emem_hit_rate;
    same name "flow cache hit rate" a.Eng.flow_cache_hit_rate b.Eng.flow_cache_hit_rate;
    same name "frequency" a.Eng.freq_mhz b.Eng.freq_mhz
  in
  (* Few flows + many packets: the per-key confirmation cost (two full
     executions per flow key) amortizes quickly, as it would in a real
     steady-state run. *)
  let packets = 60_000 in
  let prof = profile ~packets ~flows:500 () in
  let warmup = 1_000 in
  (* Stateless NFs: byte-identity plus a measured speedup. *)
  let rows =
    List.map
      (fun (name, prog) ->
        let trace = W.Trace.synthesize ~seed:31L prof in
        ignore (Eng.run lnic prog trace);
        (* warm-up: one-time costs *)
        let r_ev, t_ev = time (fun () -> Eng.run lnic prog trace) in
        let r_fa, t_fa =
          time (fun () -> Eng.run lnic prog ~fast:(Eng.Auto { warmup }) trace)
        in
        identical name r_ev r_fa;
        let replayed = r_fa.Eng.fast.Clara_nicsim.Fastpath.replayed in
        if replayed = 0 then
          failwith (name ^ ": fast path never replayed a packet");
        let ev_pps = float_of_int packets /. t_ev in
        let fa_pps = float_of_int packets /. t_fa in
        Printf.printf
          "%-10s identical results; %6d/%d replayed   event %9.0f pps   fast %9.0f pps   %5.2fx\n"
          name replayed packets ev_pps fa_pps (fa_pps /. ev_pps);
        (name, ev_pps, fa_pps, replayed))
      [ ("wordscan", wordscan); ("dpi", Clara_nfs.Dpi.ported ()) ]
  in
  (let _, ev_pps, fa_pps, _ = List.hd rows in
   let speedup = fa_pps /. ev_pps in
   if speedup < 10. then begin
     let msg =
       Printf.sprintf "wordscan fast-path speedup %.2fx below the 10x floor" speedup
     in
     if enforce then failwith msg
     else Printf.printf "[warn] %s (CLARA_BENCH_ENFORCE=1 would fail)\n" msg
   end);
  (* Stateful NF: Auto must detect the state and change nothing. *)
  (let prog = Clara_nfs.Firewall.ported ~entries:8192 ~placement:Dev.P_emem () in
   let trace = W.Trace.synthesize ~seed:31L prof in
   let r_ev = Eng.run lnic prog trace in
   let r_fa = Eng.run lnic prog ~fast:(Eng.Auto { warmup }) trace in
   identical "firewall" r_ev r_fa;
   if r_fa.Eng.fast.Clara_nicsim.Fastpath.replayed <> 0 then
     failwith "firewall: fast path replayed packets of a stateful NF";
   Printf.printf
     "%-10s stateful fallback: 0 replayed, results identical to event path\n"
     "firewall");
  (* Sharded runs: for a fixed shard count, results must be
     byte-identical across domain counts, and stay identical under the
     fast path. *)
  let cores = Domain.recommended_domain_count () in
  let par = if cores >= 2 then min 4 cores else 4 in
  let shard_pps =
    let trace = W.Trace.synthesize ~seed:31L prof in
    let fast = Eng.Auto { warmup } in
    let r1 = Eng.run_sharded ~domains:1 ~shards:4 ~fast lnic wordscan trace in
    let rn, t_n =
      time (fun () -> Eng.run_sharded ~domains:par ~shards:4 ~fast lnic wordscan trace)
    in
    let j1 = Clara_util.Json.to_string (Eng.result_to_json r1) in
    let jn = Clara_util.Json.to_string (Eng.result_to_json rn) in
    if not (String.equal j1 jn) then
      failwith "sharded run: 1-domain and N-domain results differ";
    let pps = float_of_int packets /. t_n in
    Printf.printf
      "%-10s sharded determinism: 1-dom == %d-dom (shards 4); %9.0f pps on %d domains\n"
      "wordscan" par pps par;
    pps
  in
  (* --metrics guard: a telemetry collector on the event path must not
     perturb results (byte-identical result JSON) and must stay cheap
     (>2% throughput overhead warns; fails under enforce). *)
  (let prog = Clara_nfs.Nat.ported ~checksum_engine:true () in
   let trace = W.Trace.synthesize ~seed:31L prof in
   ignore (Eng.run lnic prog trace);
   (* warm-up *)
   let r_off, t_off = time (fun () -> Eng.run lnic prog trace) in
   let tel = Clara_nicsim.Telemetry.create () in
   let r_on, t_on = time (fun () -> Eng.run lnic prog ~metrics:tel trace) in
   let j_off = Clara_util.Json.to_string (Eng.result_to_json r_off) in
   let j_on = Clara_util.Json.to_string (Eng.result_to_json r_on) in
   if not (String.equal j_off j_on) then
     failwith "metrics: results differ with telemetry enabled";
   if Clara_nicsim.Telemetry.series tel = [] then
     failwith "metrics: collector recorded no series";
   let overhead = 100. *. (t_on -. t_off) /. t_off in
   Printf.printf
     "%-10s telemetry: identical results; off %6.1f ms   on %6.1f ms   overhead %+5.1f%%\n"
     "nat" (1e3 *. t_off) (1e3 *. t_on) overhead;
   if overhead > 2. then begin
     let msg =
       Printf.sprintf "telemetry overhead %.1f%% exceeds the 2%% budget" overhead
     in
     if enforce then failwith msg
     else Printf.printf "[warn] %s (CLARA_BENCH_ENFORCE=1 would fail)\n" msg
   end);
  (* Snapshot + regression gate.  The committed BENCH_nicsim.json is the
     baseline; CLARA_BENCH_JSON redirects the new snapshot (CI does this
     to keep the tree clean). *)
  (match load_baseline () with
  | None -> ()
  | Some j ->
      let old_pps name =
        match Clara_util.Json.member "nfs" j with
        | Some (Clara_util.Json.List nfs) ->
            List.find_map
              (fun nf ->
                match Clara_util.Json.member "name" nf with
                | Some (Clara_util.Json.String n) when String.equal n name ->
                    Option.bind
                      (Clara_util.Json.member "fast_pps" nf)
                      Clara_util.Json.to_float_opt
                | _ -> None)
              nfs
        | _ -> None
      in
      List.iter
        (fun (name, _, fa_pps, _) ->
          match old_pps name with
          | None -> ()
          | Some old_ when fa_pps < 0.8 *. old_ ->
              let msg =
                Printf.sprintf
                  "%s fast-path throughput regressed: %.0f pps vs baseline %.0f pps (>20%%)"
                  name fa_pps old_
              in
              if enforce then failwith msg
              else Printf.printf "[warn] %s (CLARA_BENCH_ENFORCE=1 would fail)\n" msg
          | Some _ -> ())
        rows);
  update_snapshot
    [ ("packets", Clara_util.Json.Int packets);
      ("warmup", Clara_util.Json.Int warmup);
      ( "nfs",
        Clara_util.Json.List
          (List.map
             (fun (name, ev_pps, fa_pps, replayed) ->
               Clara_util.Json.Obj
                 [ ("name", Clara_util.Json.String name);
                   ("event_pps", Clara_util.Json.Float ev_pps);
                   ("fast_pps", Clara_util.Json.Float fa_pps);
                   ("speedup", Clara_util.Json.Float (fa_pps /. ev_pps));
                   ("replayed", Clara_util.Json.Int replayed) ])
             rows) );
      ( "sharded",
        Clara_util.Json.Obj
          [ ("nf", Clara_util.Json.String "wordscan");
            ("shards", Clara_util.Json.Int 4);
            ("domains", Clara_util.Json.Int par);
            ("pps", Clara_util.Json.Float shard_pps) ] ) ];
  csv_out "nicsim"
    [ "event_pps"; "fast_pps"; "sharded_pps" ]
    (List.map (fun (_, ev, fa, _) -> [ ev; fa; shard_pps ]) rows)

(* ------------------------------------------------------------------ *)
(* Off-path DPU: the two-regime bluefield model                        *)

(* Three guards on the off-path backend: the pinned hit-ratio sweep must
   be deterministic and monotone with a 0-vs-1 gap of at least the
   upcall cost; predictor and simulator must agree on p50 latency within
   the bound the on-path targets meet; and the cross-architecture
   verdict must diverge (lookup-heavy lpm wins on the eSwitch, the
   payload-heavy dpi on the NPU part). *)
let offpath_bench () =
  header "Off-path: two-regime prediction on the bluefield target";
  let bf = L.Bluefield.default in
  let entries = 8_192 in
  let src = Clara_nfs.Lpm.source ~entries in
  let prof = profile ~packets:10_000 ~flows:500 () in
  let a =
    match Clara.analyze_for_profile bf ~source:src ~profile:prof with
    | Ok a -> a
    | Error e -> failwith ("offpath: analyze on bluefield: " ^ e)
  in
  let trace = W.Trace.synthesize ~seed:31L prof in
  let predict_at h =
    let config = { Lat.default_config with Lat.flow_cache_hit_ratio = Some h } in
    (Clara.predict ~config a trace).Lat.mean_cycles
  in
  (* 1. Hit-ratio sweep: deterministic, monotone, gap >= upcall. *)
  Printf.printf "%-10s %14s\n" "hit-ratio" "mean cycles";
  let sweep = [ 0.; 0.25; 0.5; 0.75; 1. ] in
  let means = List.map predict_at sweep in
  List.iter2 (fun h m -> Printf.printf "%-10.2f %14.0f\n" h m) sweep means;
  List.iter2
    (fun h m ->
      if predict_at h <> m then
        failwith "offpath: hit-ratio sweep is not deterministic")
    sweep means;
  let rec monotone = function
    | a :: (b :: _ as rest) -> a >= b && monotone rest
    | _ -> true
  in
  if not (monotone means) then
    failwith "offpath: prediction does not fall as the hit ratio rises";
  let gap = List.nth means 0 -. List.nth means (List.length means - 1) in
  let upcall = float_of_int (L.Graph.upcall_cycles bf) in
  if gap < upcall then
    failwith
      (Printf.sprintf
         "offpath: hit-ratio 0 vs 1 differ by %.0f cyc, less than the %.0f \
          cyc upcall"
         gap upcall);
  Printf.printf "hit-ratio 0 vs 1 gap: %.0f cyc (upcall %.0f cyc)\n" gap upcall;
  (* 2. Predictor vs simulator on the same target (LRU-tracked hits). *)
  let prog = Clara_nfs.Lpm.ported ~entries ~use_flow_cache:true () in
  let p = Clara.predict a trace in
  let r = Eng.run bf prog trace in
  let pred_p50 = p.Lat.p50_cycles in
  let sim_p50 = float_of_int r.Eng.summary.SStats.p50_cycles in
  let err = pct_err pred_p50 sim_p50 in
  Printf.printf "p50: predicted %.0f cyc, simulated %.0f cyc, err %+.1f%%\n"
    pred_p50 sim_p50 err;
  if Float.abs err > 15. then
    failwith
      (Printf.sprintf "offpath: predict-vs-sim p50 error %.1f%% exceeds 15%%"
         err);
  (* Regression gate against the committed baseline: the absolute
     predict-vs-sim gap may not grow more than 20% (plus a 0.5 pp noise
     floor) over the recorded one.  Warns by default; fails under
     CLARA_BENCH_ENFORCE=1, like the nicsim throughput gate. *)
  let enforce = Sys.getenv_opt "CLARA_BENCH_ENFORCE" = Some "1" in
  (match
     Option.bind (load_baseline ()) (fun j ->
         Option.bind (Clara_util.Json.member "offpath" j) (fun o ->
             Option.bind
               (Clara_util.Json.member "p50_err_pct" o)
               Clara_util.Json.to_float_opt))
   with
  | None -> ()
  | Some base_err when Float.abs err > (Float.abs base_err *. 1.2) +. 0.5 ->
      let msg =
        Printf.sprintf
          "offpath predict-vs-sim p50 gap regressed: %+.1f%% vs baseline %+.1f%% (>20%%)"
          err base_err
      in
      if enforce then failwith msg
      else Printf.printf "[warn] %s (CLARA_BENCH_ENFORCE=1 would fail)\n" msg
  | Some base_err ->
      Printf.printf "p50 gap vs baseline: %+.1f%% now, %+.1f%% recorded — ok\n" err
        base_err);
  update_snapshot
    [ ( "offpath",
        Clara_util.Json.Obj
          [ ("nf", Clara_util.Json.String "lpm");
            ("entries", Clara_util.Json.Int entries);
            ("p50_err_pct", Clara_util.Json.Float err) ] ) ];
  (* 3. Cross-architecture verdicts in wall time. *)
  let mean_us lnic' src' =
    match Clara.analyze_for_profile lnic' ~source:src' ~profile:prof with
    | Error e -> failwith ("offpath: " ^ e)
    | Ok a' ->
        let freq =
          match L.Graph.general_cores lnic' with
          | u :: _ -> float_of_int u.L.Unit_.freq_mhz
          | [] -> 1.
        in
        (Clara.predict a' trace).Lat.mean_cycles /. freq
  in
  let verdict name src' =
    let n_us = mean_us lnic src' and b_us = mean_us bf src' in
    Printf.printf "%-10s netronome %8.2f us   bluefield %8.2f us   -> %s\n"
      name n_us b_us
      (if b_us < n_us then "bluefield" else "netronome");
    b_us < n_us
  in
  let lpm_wins_bf = verdict "lpm" src in
  let dpi_wins_bf = verdict "dpi" Clara_nfs.Dpi.source in
  if not lpm_wins_bf then
    failwith "offpath: lookup-heavy lpm does not win on the eSwitch fast path";
  if dpi_wins_bf then
    failwith "offpath: payload-heavy dpi should stay on the on-path NPU"

(* ------------------------------------------------------------------ *)
(* N-tenant WRR co-residence                                           *)

let tenants_bench () =
  header "Tenants: N-way co-residence under two-stage WRR scheduling";
  Printf.printf
    "Three guards: repeated N-tenant runs must be byte-identical (the WRR\n\
     scheduler is deterministic), run_pair must equal run_tenants at N=2 with\n\
     equal weights (the pair path is the N=2 special case), and under skewed\n\
     weights the heavy tenant must see no worse p99 and no more drops than a\n\
     starved one.\n\n";
  let jsons rs = Array.map (fun r -> Clara_util.Json.to_string (Eng.result_to_json r)) rs in
  (* Determinism: three distinct tenants, two runs, byte-identical. *)
  let prof = profile ~packets:6_000 ~rate:300_000. () in
  let progs =
    [| Clara_nfs.Nat.ported ~checksum_engine:true ();
       Clara_nfs.Firewall.ported ~entries:65_536 ~placement:Dev.P_emem ();
       Clara_nfs.Dpi.ported () |]
  in
  let traces = [| W.Trace.synthesize ~seed:31L prof;
                  W.Trace.synthesize ~seed:57L prof;
                  W.Trace.synthesize ~seed:91L prof |] in
  let r1 = Eng.run_tenants lnic progs traces in
  let r2 = Eng.run_tenants lnic progs traces in
  if jsons r1 <> jsons r2 then failwith "tenants: repeated runs differ";
  Array.iteri
    (fun i (r : Eng.result) ->
      Printf.printf "%-10s p99 %7d cyc   mean %9.0f cyc   drops %5d\n"
        [| "nat"; "firewall"; "dpi" |].(i)
        r.Eng.summary.SStats.p99_cycles r.Eng.summary.SStats.mean_cycles
        r.Eng.summary.SStats.drops)
    r1;
  Printf.printf "%-10s deterministic: two N=3 runs byte-identical\n" "tenants";
  (* Pair parity: run_pair is the N=2 equal-weights case. *)
  let pa, pb = Eng.run_pair lnic progs.(0) progs.(1) traces.(0) traces.(1) in
  let ts = Eng.run_tenants lnic [| progs.(0); progs.(1) |] [| traces.(0); traces.(1) |] in
  if jsons [| pa; pb |] <> jsons ts then
    failwith "tenants: run_pair differs from run_tenants at N=2 equal weights";
  Printf.printf "%-10s pair parity: run_pair == run_tenants [|a;b|]\n" "tenants";
  (* Fairness under skewed weights: three copies of a heavy stateless NF
     (no table names to clash) at a rate the starved slices cannot
     sustain; the weight-8 tenant keeps its latency and drop profile. *)
  let heavy = profile ~packets:4_000 ~rate:400_000. () in
  let dpi () = Clara_nfs.Dpi.ported () in
  let hprogs = [| dpi (); dpi (); dpi () |] in
  let htraces = Array.init 3 (fun i ->
      W.Trace.synthesize ~seed:(Int64.of_int (31 + i)) heavy) in
  let hr = Eng.run_tenants ~weights:[| 8; 1; 1 |] lnic hprogs htraces in
  Array.iteri
    (fun i (r : Eng.result) ->
      Printf.printf "dpi[w=%d]    p99 %8d cyc   drops %5d\n"
        [| 8; 1; 1 |].(i) r.Eng.summary.SStats.p99_cycles r.Eng.summary.SStats.drops)
    hr;
  (* Percentiles cover admitted packets only, so a starved tenant that
     sheds its worst-wait packets can report a deceptively low p99 —
     goodput and drops are the honest fairness metrics. *)
  let admitted i = hr.(i).Eng.summary.SStats.packets in
  let drops i = hr.(i).Eng.summary.SStats.drops in
  if drops 0 > drops 2 then
    failwith "tenants: weight-8 tenant drops more than a weight-1 tenant";
  if admitted 0 < admitted 2 then
    failwith "tenants: weight-8 tenant admits fewer packets than a weight-1 tenant";
  if drops 2 <= drops 0 then
    failwith "tenants: starved tenant never shed load (guard not exercising contention)";
  Printf.printf "%-10s fairness: weight-8 tenant dominates weight-1 tenants\n" "tenants"

(* ------------------------------------------------------------------ *)

let sections =
  [ ("figure1", figure1);
    ("figure3a", figure3a);
    ("figure3b", figure3b);
    ("figure3c", figure3c);
    ("packet-types", packet_types);
    ("microbench", microbench);
    ("mapping", mapping_example);
    ("ablations", ablations);
    ("ilp", ilp_bench);
    ("interference", interference);
    ("nics", nic_selection);
    ("throughput", throughput_validation);
    ("load-latency", load_latency);
    ("chains", chains);
    ("energy", energy);
    ("partial", partial);
    ("zoo", zoo);
    ("sweep", sweep_bench);
    ("trace", trace_guard);
    ("nicsim", nicsim_bench);
    ("offpath", offpath_bench);
    ("tenants", tenants_bench);
    ("lint", lint_bench);
    ("bounds", bounds_bench);
    ("bechamel", bechamel) ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  let reg = Clara_obs.Registry.default in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> Clara_obs.Registry.span reg ("bench-" ^ name) f
      | None ->
          Printf.printf "unknown section %s; available: %s\n" name
            (String.concat " " (List.map fst sections)))
    requested;
  (* Per-stage breakdown of everything that just ran: bench sections at
     the top level, pipeline/ILP/nicsim spans nested under them, plus
     solver and simulator counters.  CLARA_STATS_JSON=FILE dumps the same
     registry as JSON so BENCH_* entries can carry stage breakdowns. *)
  header "Stage breakdown (lib/obs)";
  Format.printf "%a@." Clara_obs.Export.pp_table reg;
  match Sys.getenv_opt "CLARA_STATS_JSON" with
  | None -> ()
  | Some path ->
      Clara_obs.Export.write_json path reg;
      Printf.printf "[obs] wrote %s\n" path
