(* clara — performance clarity for SmartNIC offloading, from the CLI.

   Subcommands:
     analyze     full performance profile of an unported NF
     predict     workload-level latency prediction
     microbench  extract NIC parameters (§3.2) from the simulator
     nics        compare SmartNIC targets for one NF + workload
     paths       per-packet-type latency profiles (symbolic execution)
     partial     best NIC/host split for partial offloading
     energy      per-packet energy prediction
     chain       predict a service chain of several NF sources
     corpus      list/dump the bundled NF sources
     trace-gen   synthesize a pcap trace from an abstract profile
     sweep       parallel design-space exploration from a spec file
     interfere   slowdown of two NFs co-resident on one NIC *)

module W = Clara_workload
module L = Clara_lnic
open Cmdliner

(* ---- shared arguments -------------------------------------------- *)

let nic_arg =
  let doc = "Target: 'netronome' (default), 'soc', 'asic', or 'host'." in
  Arg.(value & opt string "netronome" & info [ "nic" ] ~docv:"NIC" ~doc)

let lnic_of_name = L.Targets.of_name

let source_arg =
  let doc = "NF DSL source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NF.clara" ~doc)

let no_flow_cache_arg =
  let doc = "Forbid the flow-cache accelerator (software match/action variant)." in
  Arg.(value & flag & info [ "no-flow-cache" ] ~doc)

let no_accels_arg =
  let doc = "Forbid every accelerator (cores-only port)." in
  Arg.(value & flag & info [ "no-accels" ] ~doc)

let payload_arg =
  let doc = "Mean payload size in bytes." in
  Arg.(value & opt int 300 & info [ "payload" ] ~docv:"BYTES" ~doc)

let packets_arg =
  let doc = "Trace length in packets." in
  Arg.(value & opt int 20_000 & info [ "packets" ] ~docv:"N" ~doc)

let flows_arg =
  let doc = "Concurrent flows." in
  Arg.(value & opt int 10_000 & info [ "flows" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Offered load in packets per second." in
  Arg.(value & opt float 60_000. & info [ "rate" ] ~docv:"PPS" ~doc)

let tcp_arg =
  let doc = "TCP fraction of the traffic mix (rest is UDP)." in
  Arg.(value & opt float 0.8 & info [ "tcp" ] ~docv:"FRAC" ~doc)

let pcap_arg =
  let doc = "Use packets from this pcap file instead of a synthetic trace." in
  Arg.(value & opt (some file) None & info [ "pcap" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "PRNG seed for trace synthesis." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let options_of ~no_flow_cache ~no_accels =
  let disallowed =
    if no_accels then [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto ]
    else if no_flow_cache then [ L.Unit_.Lookup ]
    else []
  in
  { Clara_mapping.Mapping.default_options with
    Clara_mapping.Mapping.disallowed_accels = disallowed }

let profile_of ~payload ~packets ~flows ~rate ~tcp =
  W.Profile.make ~payload:(W.Dist.Fixed payload) ~packets ~flow_count:flows
    ~rate_pps:rate ~tcp_fraction:tcp ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("clara: " ^ e);
      exit 1

let trace_of ~pcap ~profile ~seed =
  match pcap with
  | Some file -> W.Pcap.read_file file
  | None -> W.Trace.synthesize ~seed:(Int64.of_int seed) profile

(* ---- observability (lib/obs) -------------------------------------- *)

let stats_arg =
  let doc =
    "Print the observability registry (per-stage spans, ILP and simulator \
     counters) as a table after the command."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc = "Dump the observability registry as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let emit_stats ~stats ~stats_json =
  let reg = Clara_obs.Registry.default in
  if stats then begin
    Format.printf "@.---- stats (lib/obs) ----@.";
    Format.printf "%a@." Clara_obs.Export.pp_table reg
  end;
  Option.iter
    (fun file ->
      Clara_obs.Export.write_json file reg;
      Format.eprintf "clara: wrote stats to %s@." file)
    stats_json

(* ---- analyze ------------------------------------------------------ *)

let json_arg =
  let doc = "Emit the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let analyze_cmd =
  let run src nic no_flow_cache no_accels payload packets flows rate tcp pcap seed json
      stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let analysis = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let trace = trace_of ~pcap ~profile ~seed in
    let report = Clara.Report.build ~trace ~rate_pps:rate analysis in
    if json then
      print_endline (Clara_util.Json.to_string (Clara.Report.to_json report))
    else Format.printf "%a" Clara.Report.render report;
    emit_stats ~stats ~stats_json
  in
  let doc = "Analyze an unported NF and print its performance profile." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg $ pcap_arg
      $ seed_arg $ json_arg $ stats_arg $ stats_json_arg)

(* ---- predict ------------------------------------------------------ *)

let predict_cmd =
  let run src nic no_flow_cache no_accels payload packets flows rate tcp pcap seed stats
      stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let analysis = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let trace = trace_of ~pcap ~profile ~seed in
    let p = Clara.predict analysis trace in
    Format.printf "%a@." Clara_predict.Latency.pp_prediction p;
    let freq =
      match L.Graph.general_cores lnic with u :: _ -> u.L.Unit_.freq_mhz | [] -> 1
    in
    Format.printf "mean latency: %.2f us at %d MHz@."
      (p.Clara_predict.Latency.mean_cycles /. float_of_int freq)
      freq;
    (match
       Clara_predict.Throughput.latency_at_rate
         ~base_cycles:p.Clara_predict.Latency.mean_cycles ~rate_pps:rate lnic
         analysis.Clara.df analysis.Clara.mapping
     with
    | Some loaded when loaded > p.Clara_predict.Latency.mean_cycles +. 1. ->
        Format.printf "with queueing at %.0f pps: %.0f cycles@." rate loaded
    | Some _ -> ()
    | None ->
        Format.printf "warning: %.0f pps exceeds the predicted capacity@." rate);
    emit_stats ~stats ~stats_json
  in
  let doc = "Predict workload latency for an unported NF." in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg $ pcap_arg
      $ seed_arg $ stats_arg $ stats_json_arg)

(* ---- microbench ---------------------------------------------------- *)

let microbench_cmd =
  let run nic =
    let lnic = or_die (lnic_of_name nic) in
    let c = Clara.Microbench.calibrate lnic in
    Format.printf "%a" Clara.Microbench.pp_calibration c
  in
  let doc = "Run the §3.2 microbenchmarks and print extracted parameters." in
  Cmd.v (Cmd.info "microbench" ~doc) Term.(const run $ nic_arg)

(* ---- nics ---------------------------------------------------------- *)

let nics_cmd =
  let run src payload packets flows rate tcp =
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    List.iter
      (fun (name, lnic) ->
        match Clara.analyze_for_profile lnic ~source ~profile with
        | Error e -> Printf.printf "%-12s error: %s\n" name e
        | Ok a ->
            let p = Clara.predict_profile a profile in
            let tp = Clara_predict.Throughput.estimate lnic a.Clara.df a.Clara.mapping in
            let freq =
              match L.Graph.general_cores lnic with
              | u :: _ -> u.L.Unit_.freq_mhz
              | [] -> 1
            in
            Printf.printf "%-12s latency %9.0f cyc (%7.2f us)   max tput %10.0f pps\n"
              name p.Clara_predict.Latency.mean_cycles
              (p.Clara_predict.Latency.mean_cycles /. float_of_int freq)
              tp.Clara_predict.Throughput.max_pps)
      L.Targets.nics
  in
  let doc = "Compare SmartNIC targets for one NF and workload." in
  Cmd.v (Cmd.info "nics" ~doc)
    Term.(const run $ source_arg $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg)

(* ---- trace-gen ------------------------------------------------------ *)

let trace_gen_cmd =
  let out_arg =
    let doc = "Output pcap file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap" ~doc)
  in
  let run out payload packets flows rate tcp seed =
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let trace = W.Trace.synthesize ~seed:(Int64.of_int seed) profile in
    W.Pcap.write_file out trace;
    Format.printf "wrote %s: %a@." out W.Trace.pp_stats (W.Trace.stats trace)
  in
  let doc = "Synthesize a pcap trace from an abstract workload profile." in
  Cmd.v (Cmd.info "trace-gen" ~doc)
    Term.(
      const run $ out_arg $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg
      $ seed_arg)

(* ---- paths --------------------------------------------------------- *)

let paths_cmd =
  let run src nic no_flow_cache no_accels payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let a = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let paths = Clara_predict.Symexec.enumerate lnic a.Clara.df a.Clara.mapping in
    List.iter (fun p -> Format.printf "%a@." Clara_predict.Symexec.pp_path p) paths
  in
  let doc = "Enumerate per-packet-type latency profiles (symbolic execution)." in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg)

(* ---- partial ------------------------------------------------------- *)

let partial_cmd =
  let run src nic payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let a = or_die (Clara.analyze_for_profile lnic ~source ~profile) in
    let splits = Clara_predict.Partial.enumerate_splits lnic a.Clara.df a.Clara.mapping in
    List.iteri
      (fun i s ->
        if i < 8 then
          Format.printf "%s%a  %s@."
            (if i = 0 then "-> " else "   ")
            Clara_predict.Partial.pp s
            (Clara_predict.Partial.describe a.Clara.df s))
      splits
  in
  let doc = "Evaluate partial-offloading splits between the NIC and the host." in
  Cmd.v (Cmd.info "partial" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg)

(* ---- energy -------------------------------------------------------- *)

let energy_cmd =
  let run src nic payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let a = or_die (Clara.analyze_for_profile lnic ~source ~profile) in
    let e = Clara_predict.Energy.estimate ~rate_pps:rate lnic a.Clara.df a.Clara.mapping in
    Format.printf "%a@." Clara_predict.Energy.pp e;
    List.iter
      (fun (name, nj) -> Format.printf "  %-20s %10.1f nJ/pkt@." name nj)
      e.Clara_predict.Energy.breakdown
  in
  let doc = "Predict per-packet energy and power at the offered rate." in
  Cmd.v (Cmd.info "energy" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg)

(* ---- chain ---------------------------------------------------------- *)

let chain_cmd =
  let sources_arg =
    let doc = "NF DSL source files, in chain order." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"NF.clara..." ~doc)
  in
  let run srcs nic payload packets flows rate tcp seed stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let sources = List.map read_file srcs in
    let chain = or_die (Clara.Chain.analyze lnic ~sources ~profile) in
    let trace = W.Trace.synthesize ~seed:(Int64.of_int seed) profile in
    let p = Clara.Chain.predict chain trace in
    Format.printf "chain: %s@." (String.concat " -> " (Clara.Chain.stage_names chain));
    Format.printf "%a@." Clara_predict.Latency.pp_prediction p;
    emit_stats ~stats ~stats_json
  in
  let doc = "Predict end-to-end latency of a service chain." in
  Cmd.v (Cmd.info "chain" ~doc)
    Term.(
      const run $ sources_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg $ seed_arg $ stats_arg $ stats_json_arg)

(* ---- sweep ---------------------------------------------------------- *)

let sweep_cmd =
  let spec_arg =
    let doc = "Sweep specification file (JSON; see README for the schema)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SWEEP.json" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: the runtime's recommendation, capped at 8)." in
    Arg.(value & opt int 0 & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Result cache directory." in
    Arg.(value & opt string ".clara-cache/sweep" & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the result cache (recompute every cell)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let format_arg =
    let doc = "Output format: 'text', 'json', or 'csv'." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out_arg =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-cell budget in milliseconds; an over-budget cell is reported as \
       failed without aborting the sweep."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let run spec_file domains cache_dir no_cache format out timeout_ms stats stats_json =
    let spec = or_die (Clara_explore.Spec.load spec_file) in
    let domains =
      if domains > 0 then domains else min 8 (Domain.recommended_domain_count ())
    in
    let cache =
      if no_cache then None else Some (Clara_explore.Cache.create ~dir:cache_dir)
    in
    let report = Clara_explore.Sweep.run ~domains ?timeout_ms ?cache spec in
    let emit oc =
      match format with
      | `Text ->
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt "%a@?" Clara_explore.Sweep.render report
      | `Json ->
          Clara_util.Json.to_channel oc (Clara_explore.Sweep.to_json report);
          output_char oc '\n'
      | `Csv -> output_string oc (Clara_explore.Sweep.to_csv report)
    in
    (match out with
    | None -> emit stdout
    | Some file ->
        let oc = open_out file in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
        Format.eprintf "clara: wrote %s@." file);
    emit_stats ~stats ~stats_json;
    if Array.exists
         (fun (o : Clara_explore.Sweep.outcome) ->
           match o.Clara_explore.Sweep.status with
           | Clara_explore.Sweep.Failed _ -> true
           | _ -> false)
         report.Clara_explore.Sweep.outcomes
    then exit 3
  in
  let doc =
    "Evaluate a design-space sweep (NFs x NICs x options x workloads) in \
     parallel, with a content-addressed result cache."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ spec_arg $ domains_arg $ cache_arg $ no_cache_arg $ format_arg
      $ out_arg $ timeout_arg $ stats_arg $ stats_json_arg)

(* ---- interfere ------------------------------------------------------ *)

let interfere_cmd =
  let src_a_arg =
    let doc = "First NF DSL source file." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"A.clara" ~doc)
  in
  let src_b_arg =
    let doc = "Second NF DSL source file." in
    Arg.(required & pos 1 (some file) None & info [] ~docv:"B.clara" ~doc)
  in
  let run src_a src_b nic payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let source_a = read_file src_a and source_b = read_file src_b in
    let ra, rb =
      or_die (Clara_predict.Interference.analyze_pair lnic ~source_a ~source_b ~profile)
    in
    let show name (r : Clara_predict.Interference.report) =
      Printf.printf "%-24s solo %9.0f cyc   half-NIC %9.0f cyc   contended %9.0f cyc   slowdown %.2fx\n"
        name r.Clara_predict.Interference.solo_cycles
        r.Clara_predict.Interference.sliced_cycles
        r.Clara_predict.Interference.contended_cycles
        r.Clara_predict.Interference.slowdown
    in
    Printf.printf "co-residence on %s:\n" nic;
    show (Filename.basename src_a) ra;
    show (Filename.basename src_b) rb
  in
  let doc =
    "Predict the slowdown of two NFs sharing one NIC (sliced cores, shrunken \
     cache, accelerator contention)."
  in
  Cmd.v (Cmd.info "interfere" ~doc)
    Term.(
      const run $ src_a_arg $ src_b_arg $ nic_arg $ payload_arg $ packets_arg
      $ flows_arg $ rate_arg $ tcp_arg)

(* ---- corpus --------------------------------------------------------- *)

let corpus_cmd =
  let name_arg =
    let doc = "NF name; omit to list the corpus." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let run name =
    match name with
    | None ->
        List.iter
          (fun (e : Clara_nfs.Corpus.entry) ->
            Printf.printf "%-14s %s
" e.Clara_nfs.Corpus.name
              e.Clara_nfs.Corpus.description)
          Clara_nfs.Corpus.all
    | Some n -> (
        match Clara_nfs.Corpus.find n with
        | Some e -> print_string e.Clara_nfs.Corpus.source
        | None ->
            prerr_endline
              ("clara: unknown NF (try: " ^ String.concat " " Clara_nfs.Corpus.names ^ ")");
            exit 1)
  in
  let doc = "List the bundled NF corpus, or print one NF's DSL source." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const run $ name_arg)

(* -------------------------------------------------------------------- *)

let () =
  let doc = "performance clarity for SmartNIC offloading" in
  let info = Cmd.info "clara" ~version:"0.1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; predict_cmd; microbench_cmd; nics_cmd; trace_gen_cmd;
            paths_cmd; partial_cmd; energy_cmd; corpus_cmd; chain_cmd; sweep_cmd;
            interfere_cmd ]))
