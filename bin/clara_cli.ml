(* clara — performance clarity for SmartNIC offloading, from the CLI.

   Subcommands:
     analyze     full performance profile of an unported NF
     predict     workload-level latency prediction
     microbench  extract NIC parameters (§3.2) from the simulator
     nics        compare SmartNIC targets for one NF + workload
     paths       per-packet-type latency profiles (symbolic execution)
     partial     best NIC/host split for partial offloading
     energy      per-packet energy prediction
     chain       predict a service chain of several NF sources
     corpus      list/dump the bundled NF sources
     trace-gen   synthesize a pcap trace from an abstract profile
     sweep       parallel design-space exploration from a spec file
     interfere   slowdown of two NFs co-resident on one NIC
     tenants     N NFs co-resident under weighted-round-robin scheduling
     trace       simulate a ported NF with per-packet event tracing
     sim         simulate a ported NF fast: steady-state replay + domain sharding
     lint        static analysis: races, feasibility, dead paths, cost hazards
     json-check  validate that a file parses as JSON *)

module W = Clara_workload
module L = Clara_lnic
open Cmdliner

(* ---- shared arguments -------------------------------------------- *)

let nic_arg =
  let doc =
    "Target: 'netronome' (default), 'soc', 'bluefield', 'asic', or 'host'."
  in
  Arg.(value & opt string "netronome" & info [ "nic" ] ~docv:"NIC" ~doc)

let lnic_of_name = L.Targets.of_name

let source_arg =
  let doc = "NF DSL source file." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NF.clara" ~doc)

let no_flow_cache_arg =
  let doc = "Forbid the flow-cache accelerator (software match/action variant)." in
  Arg.(value & flag & info [ "no-flow-cache" ] ~doc)

let no_accels_arg =
  let doc = "Forbid every accelerator (cores-only port)." in
  Arg.(value & flag & info [ "no-accels" ] ~doc)

let payload_arg =
  let doc = "Mean payload size in bytes." in
  Arg.(value & opt int 300 & info [ "payload" ] ~docv:"BYTES" ~doc)

let packets_arg =
  let doc = "Trace length in packets." in
  Arg.(value & opt int 20_000 & info [ "packets" ] ~docv:"N" ~doc)

let flows_arg =
  let doc = "Concurrent flows." in
  Arg.(value & opt int 10_000 & info [ "flows" ] ~docv:"N" ~doc)

let rate_arg =
  let doc = "Offered load in packets per second." in
  Arg.(value & opt float 60_000. & info [ "rate" ] ~docv:"PPS" ~doc)

let tcp_arg =
  let doc = "TCP fraction of the traffic mix (rest is UDP)." in
  Arg.(value & opt float 0.8 & info [ "tcp" ] ~docv:"FRAC" ~doc)

let pcap_arg =
  let doc = "Use packets from this pcap file instead of a synthetic trace." in
  Arg.(value & opt (some file) None & info [ "pcap" ] ~docv:"FILE" ~doc)

let seed_arg =
  let doc = "PRNG seed for trace synthesis." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let options_of ~no_flow_cache ~no_accels =
  let disallowed =
    if no_accels then
      [ L.Unit_.Parse; L.Unit_.Checksum; L.Unit_.Lookup; L.Unit_.Crypto;
        L.Unit_.Eswitch ]
    else if no_flow_cache then [ L.Unit_.Lookup; L.Unit_.Eswitch ]
    else []
  in
  { Clara_mapping.Mapping.default_options with
    Clara_mapping.Mapping.disallowed_accels = disallowed }

let profile_of ~payload ~packets ~flows ~rate ~tcp =
  W.Profile.make ~payload:(W.Dist.Fixed payload) ~packets ~flow_count:flows
    ~rate_pps:rate ~tcp_fraction:tcp ()

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline ("clara: " ^ e);
      exit 1

let trace_of ~pcap ~profile ~seed =
  match pcap with
  | Some file -> W.Pcap.read_file file
  | None -> W.Trace.synthesize ~seed:(Int64.of_int seed) profile

(* ---- observability (lib/obs) -------------------------------------- *)

let stats_arg =
  let doc =
    "Print the observability registry (per-stage spans, ILP and simulator \
     counters) as a table after the command."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let stats_json_arg =
  let doc = "Dump the observability registry as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "stats-json" ] ~docv:"FILE" ~doc)

let emit_stats ~stats ~stats_json =
  let reg = Clara_obs.Registry.default in
  if stats then begin
    Format.printf "@.---- stats (lib/obs) ----@.";
    Format.printf "%a@." Clara_obs.Export.pp_table reg
  end;
  Option.iter
    (fun file ->
      Clara_obs.Export.write_json file reg;
      Format.eprintf "clara: wrote stats to %s@." file)
    stats_json

(* ---- analyze ------------------------------------------------------ *)

let json_arg =
  let doc = "Emit the report as JSON instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let analyze_cmd =
  let run src nic no_flow_cache no_accels payload packets flows rate tcp pcap seed json
      stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let analysis = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let trace = trace_of ~pcap ~profile ~seed in
    let report = Clara.Report.build ~trace ~rate_pps:rate analysis in
    if json then
      print_endline (Clara_util.Json.to_string (Clara.Report.to_json report))
    else Format.printf "%a" Clara.Report.render report;
    emit_stats ~stats ~stats_json
  in
  let doc = "Analyze an unported NF and print its performance profile." in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg $ pcap_arg
      $ seed_arg $ json_arg $ stats_arg $ stats_json_arg)

(* ---- predict ------------------------------------------------------ *)

let write_json_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Clara_util.Json.to_channel ~pretty:false oc j;
      output_char oc '\n')

let predict_cmd =
  let hit_ratio_arg =
    let doc =
      "Pin the off-path flow-cache hit ratio in [0,1] instead of tracking \
       per-flow hits (only affects off-path targets like 'bluefield')."
    in
    Arg.(value & opt (some float) None & info [ "hit-ratio" ] ~docv:"RATIO" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Write the predicted per-packet timeline as Chrome/Perfetto trace-event \
       JSON to $(docv) (load at ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run src nic no_flow_cache no_accels payload packets flows rate tcp pcap seed
      hit_ratio trace_out stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let analysis = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let trace = trace_of ~pcap ~profile ~seed in
    let config =
      { Clara_predict.Latency.default_config with
        Clara_predict.Latency.flow_cache_hit_ratio = hit_ratio }
    in
    let p = Clara.predict ~config analysis trace in
    Format.printf "%a@." Clara_predict.Latency.pp_prediction p;
    let freq =
      match L.Graph.general_cores lnic with u :: _ -> u.L.Unit_.freq_mhz | [] -> 1
    in
    Format.printf "mean latency: %.2f us at %d MHz@."
      (p.Clara_predict.Latency.mean_cycles /. float_of_int freq)
      freq;
    (* Where the predicted cycles go, per packet type. *)
    let predictor =
      Clara_predict.Latency.create ~config lnic analysis.Clara.df
        analysis.Clara.mapping
    in
    let att = Clara_predict.Latency.attribute_trace predictor trace in
    Format.printf "attribution (mean cycles per packet):@.%a"
      Clara_predict.Latency.pp_attribution att;
    (match
       Clara_predict.Throughput.latency_at_rate
         ~base_cycles:p.Clara_predict.Latency.mean_cycles ~rate_pps:rate lnic
         analysis.Clara.df analysis.Clara.mapping
     with
    | Some loaded when loaded > p.Clara_predict.Latency.mean_cycles +. 1. ->
        Format.printf "with queueing at %.0f pps: %.0f cycles@." rate loaded
    | Some _ -> ()
    | None ->
        Format.printf "warning: %.0f pps exceeds the predicted capacity@." rate);
    Option.iter
      (fun file ->
        write_json_file file (Clara_predict.Latency.perfetto_timeline predictor trace);
        Format.eprintf "clara: wrote predicted timeline to %s@." file)
      trace_out;
    emit_stats ~stats ~stats_json
  in
  let doc = "Predict workload latency for an unported NF." in
  Cmd.v (Cmd.info "predict" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg $ pcap_arg
      $ seed_arg $ hit_ratio_arg $ trace_out_arg $ stats_arg $ stats_json_arg)

(* ---- microbench ---------------------------------------------------- *)

let microbench_cmd =
  let run nic =
    let lnic = or_die (lnic_of_name nic) in
    let c = Clara.Microbench.calibrate lnic in
    Format.printf "%a" Clara.Microbench.pp_calibration c
  in
  let doc = "Run the §3.2 microbenchmarks and print extracted parameters." in
  Cmd.v (Cmd.info "microbench" ~doc) Term.(const run $ nic_arg)

(* ---- nics ---------------------------------------------------------- *)

let nics_cmd =
  let run src payload packets flows rate tcp =
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    List.iter
      (fun (name, lnic) ->
        match Clara.analyze_for_profile lnic ~source ~profile with
        | Error e ->
            Printf.printf "%-12s %-9s error: %s\n" name
              (L.Graph.arch_name lnic.L.Graph.arch)
              e
        | Ok a ->
            let p = Clara.predict_profile a profile in
            let tp = Clara_predict.Throughput.estimate lnic a.Clara.df a.Clara.mapping in
            let freq =
              match L.Graph.general_cores lnic with
              | u :: _ -> u.L.Unit_.freq_mhz
              | [] -> 1
            in
            Printf.printf
              "%-12s %-9s latency %9.0f cyc (%7.2f us)   max tput %10.0f pps\n"
              name
              (L.Graph.arch_name lnic.L.Graph.arch)
              p.Clara_predict.Latency.mean_cycles
              (p.Clara_predict.Latency.mean_cycles /. float_of_int freq)
              tp.Clara_predict.Throughput.max_pps)
      L.Targets.nics
  in
  let doc = "Compare SmartNIC targets for one NF and workload." in
  Cmd.v (Cmd.info "nics" ~doc)
    Term.(const run $ source_arg $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg)

(* ---- trace-gen ------------------------------------------------------ *)

let trace_gen_cmd =
  let out_arg =
    let doc = "Output pcap file." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT.pcap" ~doc)
  in
  let run out payload packets flows rate tcp seed =
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let trace = W.Trace.synthesize ~seed:(Int64.of_int seed) profile in
    W.Pcap.write_file out trace;
    Format.printf "wrote %s: %a@." out W.Trace.pp_stats (W.Trace.stats trace)
  in
  let doc = "Synthesize a pcap trace from an abstract workload profile." in
  Cmd.v (Cmd.info "trace-gen" ~doc)
    Term.(
      const run $ out_arg $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg
      $ seed_arg)

(* ---- paths --------------------------------------------------------- *)

let paths_cmd =
  let run src nic no_flow_cache no_accels payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let options = options_of ~no_flow_cache ~no_accels in
    let a = or_die (Clara.analyze_for_profile ~options lnic ~source ~profile) in
    let paths = Clara_predict.Symexec.enumerate lnic a.Clara.df a.Clara.mapping in
    List.iter (fun p -> Format.printf "%a@." Clara_predict.Symexec.pp_path p) paths
  in
  let doc = "Enumerate per-packet-type latency profiles (symbolic execution)." in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ no_flow_cache_arg $ no_accels_arg
      $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg)

(* ---- partial ------------------------------------------------------- *)

let partial_cmd =
  let run src nic payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let a = or_die (Clara.analyze_for_profile lnic ~source ~profile) in
    let splits = Clara_predict.Partial.enumerate_splits lnic a.Clara.df a.Clara.mapping in
    List.iteri
      (fun i s ->
        if i < 8 then
          Format.printf "%s%a  %s@."
            (if i = 0 then "-> " else "   ")
            Clara_predict.Partial.pp s
            (Clara_predict.Partial.describe a.Clara.df s))
      splits
  in
  let doc = "Evaluate partial-offloading splits between the NIC and the host." in
  Cmd.v (Cmd.info "partial" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg)

(* ---- energy -------------------------------------------------------- *)

let energy_cmd =
  let run src nic payload packets flows rate tcp =
    let lnic = or_die (lnic_of_name nic) in
    let source = read_file src in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let a = or_die (Clara.analyze_for_profile lnic ~source ~profile) in
    let e = Clara_predict.Energy.estimate ~rate_pps:rate lnic a.Clara.df a.Clara.mapping in
    Format.printf "%a@." Clara_predict.Energy.pp e;
    List.iter
      (fun (name, nj) -> Format.printf "  %-20s %10.1f nJ/pkt@." name nj)
      e.Clara_predict.Energy.breakdown
  in
  let doc = "Predict per-packet energy and power at the offered rate." in
  Cmd.v (Cmd.info "energy" ~doc)
    Term.(
      const run $ source_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg)

(* ---- chain ---------------------------------------------------------- *)

let chain_cmd =
  let sources_arg =
    let doc = "NF DSL source files, in chain order." in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"NF.clara..." ~doc)
  in
  let run srcs nic payload packets flows rate tcp seed stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let sources = List.map read_file srcs in
    let chain = or_die (Clara.Chain.analyze lnic ~sources ~profile) in
    let trace = W.Trace.synthesize ~seed:(Int64.of_int seed) profile in
    let p = Clara.Chain.predict chain trace in
    Format.printf "chain: %s@." (String.concat " -> " (Clara.Chain.stage_names chain));
    Format.printf "%a@." Clara_predict.Latency.pp_prediction p;
    emit_stats ~stats ~stats_json
  in
  let doc = "Predict end-to-end latency of a service chain." in
  Cmd.v (Cmd.info "chain" ~doc)
    Term.(
      const run $ sources_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg $ seed_arg $ stats_arg $ stats_json_arg)

(* ---- sweep ---------------------------------------------------------- *)

let sweep_cmd =
  let spec_arg =
    let doc = "Sweep specification file (JSON; see README for the schema)." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SWEEP.json" ~doc)
  in
  let domains_arg =
    let doc = "Worker domains (default: the runtime's recommendation, capped at 8)." in
    Arg.(value & opt int 0 & info [ "domains"; "j" ] ~docv:"N" ~doc)
  in
  let cache_arg =
    let doc = "Result cache directory." in
    Arg.(value & opt string ".clara-cache/sweep" & info [ "cache" ] ~docv:"DIR" ~doc)
  in
  let no_cache_arg =
    let doc = "Disable the result cache (recompute every cell)." in
    Arg.(value & flag & info [ "no-cache" ] ~doc)
  in
  let format_arg =
    let doc = "Output format: 'text', 'json', or 'csv'." in
    Arg.(
      value
      & opt (enum [ ("text", `Text); ("json", `Json); ("csv", `Csv) ]) `Text
      & info [ "format" ] ~docv:"FMT" ~doc)
  in
  let out_arg =
    let doc = "Write the report to $(docv) instead of stdout." in
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc)
  in
  let timeout_arg =
    let doc =
      "Per-cell budget in milliseconds; an over-budget cell is reported as \
       failed without aborting the sweep."
    in
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS" ~doc)
  in
  let sweep_slo_arg =
    let doc =
      "Prune cells whose static latency lower bound (see 'clara bounds') \
       already exceeds this p99 SLO in microseconds, skipping their \
       simulation entirely; pruned cells are reported with status 'pruned'."
    in
    Arg.(value & opt (some float) None & info [ "slo-p99-us" ] ~docv:"US" ~doc)
  in
  let run spec_file domains cache_dir no_cache format out timeout_ms slo stats
      stats_json =
    let spec = or_die (Clara_explore.Spec.load spec_file) in
    let domains =
      if domains > 0 then domains else min 8 (Domain.recommended_domain_count ())
    in
    let cache =
      if no_cache then None else Some (Clara_explore.Cache.create ~dir:cache_dir)
    in
    let report =
      Clara_explore.Sweep.run ~domains ?timeout_ms ?cache ?slo_p99_us:slo spec
    in
    let emit oc =
      match format with
      | `Text ->
          let fmt = Format.formatter_of_out_channel oc in
          Format.fprintf fmt "%a@?" Clara_explore.Sweep.render report
      | `Json ->
          Clara_util.Json.to_channel oc (Clara_explore.Sweep.to_json report);
          output_char oc '\n'
      | `Csv -> output_string oc (Clara_explore.Sweep.to_csv report)
    in
    (match out with
    | None -> emit stdout
    | Some file ->
        let oc = open_out file in
        Fun.protect ~finally:(fun () -> close_out oc) (fun () -> emit oc);
        Format.eprintf "clara: wrote %s@." file);
    emit_stats ~stats ~stats_json;
    if Array.exists
         (fun (o : Clara_explore.Sweep.outcome) ->
           match o.Clara_explore.Sweep.status with
           | Clara_explore.Sweep.Failed _ -> true
           | _ -> false)
         report.Clara_explore.Sweep.outcomes
    then exit 3
  in
  let doc =
    "Evaluate a design-space sweep (NFs x NICs x options x workloads) in \
     parallel, with a content-addressed result cache."
  in
  Cmd.v (Cmd.info "sweep" ~doc)
    Term.(
      const run $ spec_arg $ domains_arg $ cache_arg $ no_cache_arg $ format_arg
      $ out_arg $ timeout_arg $ sweep_slo_arg $ stats_arg $ stats_json_arg)

(* ---- trace ---------------------------------------------------------- *)

module Nsim = Clara_nicsim

let corpus_entry name =
  match Clara_nfs.Corpus.find name with
  | Some e -> e
  | None ->
      prerr_endline
        ("clara: unknown NF '" ^ name ^ "' (try: "
        ^ String.concat " " Clara_nfs.Corpus.names
        ^ ")");
      exit 1

(* A source argument is a file path if one exists, else a corpus name. *)
let resolve_nf arg =
  if Sys.file_exists arg then (Filename.basename arg, read_file arg)
  else (arg, (corpus_entry arg).Clara_nfs.Corpus.source)

(* ---- sim-time telemetry (--metrics) --------------------------------- *)

let metrics_arg =
  let doc =
    "Write sim-time telemetry series (per-tenant queue depth, goodput, drops, \
     latency, WRR deficit, cache hits/misses; sim-wide accel/DMA occupancy, \
     upcalls, fast-path outcomes) to $(docv).  A '.csv' extension selects CSV, \
     anything else JSON.  Off by default, with zero simulation cost when off."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_cadence_arg =
  let doc = "Telemetry window width in core cycles (downsamples as runs grow)." in
  Arg.(value & opt int 8192 & info [ "metrics-cadence" ] ~docv:"CYCLES" ~doc)

let metrics_of ~metrics ~cadence =
  match metrics with
  | None -> None
  | Some _ ->
      if cadence <= 0 then or_die (Error "--metrics-cadence must be positive");
      Some (Nsim.Telemetry.create ~cadence ())

let write_metrics tel path_opt =
  match (tel, path_opt) with
  | Some t, Some path ->
      if Filename.check_suffix path ".csv" then begin
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> output_string oc (Nsim.Telemetry.to_csv t))
      end
      else write_json_file path (Nsim.Telemetry.to_json t);
      Format.eprintf "clara: wrote metrics to %s@." path
  | _ -> ()

(* ---- lint ----------------------------------------------------------- *)

let lint_cmd =
  let nf_arg =
    let doc = "NF to lint: a DSL source file, or a corpus NF name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let target_arg =
    let doc =
      "Lint against this target: 'netronome' (default), 'soc', 'bluefield', 'asic', or \
       'host'."
    in
    Arg.(value & opt string "netronome" & info [ "target"; "nic" ] ~docv:"NIC" ~doc)
  in
  let run nf nic json stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let _name, source = resolve_nf nf in
    let ir =
      match Clara_cir.Lower.lower_source source with
      | exception Clara_cir.Lexer.Error (msg, pos) ->
          or_die
            (Error
               (Printf.sprintf "lex error at %d:%d: %s" pos.Clara_cir.Ast.line
                  pos.Clara_cir.Ast.col msg))
      | exception Clara_cir.Parser.Error (msg, pos) ->
          or_die
            (Error
               (Printf.sprintf "parse error at %d:%d: %s" pos.Clara_cir.Ast.line
                  pos.Clara_cir.Ast.col msg))
      | exception Failure msg -> or_die (Error msg)
      | exception Clara_cir.Ir.Unknown_state s ->
          or_die (Error (Printf.sprintf "NF references undeclared state '%s'" s))
      | ir -> fst (Clara_cir.Patterns.run ir)
    in
    let report = Clara_analysis.Suite.run ~lnic ir in
    if json then
      print_endline (Clara_util.Json.to_string (Clara_analysis.Suite.to_json report))
    else Format.printf "%a@." Clara_analysis.Suite.pp report;
    emit_stats ~stats ~stats_json;
    if Clara_analysis.Suite.has_errors report then exit 1
  in
  let doc =
    "Statically lint an NF: shared-state races, offload feasibility against a \
     target NIC, contradictory guards, and cost hazards.  Exits nonzero when \
     any error-severity diagnostic fires."
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ nf_arg $ target_arg $ json_arg $ stats_arg $ stats_json_arg)

(* ---- bounds --------------------------------------------------------- *)

let bounds_cmd =
  let nf_arg =
    let doc = "NF to bound: a DSL source file, or a corpus NF name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let target_arg =
    let doc =
      "Target NIC: 'netronome' (default), 'soc', 'bluefield', 'asic', or \
       'host'."
    in
    Arg.(value & opt string "netronome" & info [ "target"; "nic" ] ~docv:"NIC" ~doc)
  in
  let slo_arg =
    let doc =
      "p99 latency SLO in microseconds.  The verdict is three-way: \
       'provably-meets' (static upper bound under the SLO), \
       'provably-violates' (even the best case exceeds it — also a \
       CLARA403 error), or 'unclear' (the SLO falls inside the bounds)."
    in
    Arg.(value & opt (some float) None & info [ "slo-p99-us" ] ~docv:"US" ~doc)
  in
  let run nf nic slo json stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let _name, source = resolve_nf nf in
    let ir =
      match Clara_cir.Lower.lower_source source with
      | exception Failure msg -> or_die (Error msg)
      | exception Clara_cir.Ir.Unknown_state s ->
          or_die (Error (Printf.sprintf "NF references undeclared state '%s'" s))
      | ir -> fst (Clara_cir.Patterns.run ir)
    in
    let module B = Clara_analysis.Bounds in
    let b = B.analyze ~lnic ir in
    let diags = B.lint ~lnic ?slo_p99_us:slo ir in
    if json then begin
      let module J = Clara_util.Json in
      let fields =
        match (B.to_json b, slo) with
        | J.Obj fs, Some s ->
            J.Obj
              (fs
              @ [
                  ("slo_p99_us", J.Float s);
                  ( "verdict",
                    J.String (B.verdict_name (B.verdict b ~slo_p99_us:s)) );
                ])
        | j, _ -> j
      in
      print_endline (Clara_util.Json.to_string fields)
    end
    else begin
      Format.printf "%a@." B.pp b;
      List.iter
        (fun d -> Format.printf "%a@." Clara_analysis.Diag.pp d)
        diags;
      match slo with
      | None -> ()
      | Some s ->
          Format.printf "SLO p99 <= %.2f us (%.0f cycles): %s@." s
            (B.slo_cycles b ~slo_p99_us:s)
            (B.verdict_name (B.verdict b ~slo_p99_us:s))
    end;
    emit_stats ~stats ~stats_json;
    if
      List.exists
        (fun d -> d.Clara_analysis.Diag.severity = Clara_analysis.Diag.Error)
        diags
    then exit 1
  in
  let doc =
    "Static per-packet-type latency bounds via interval abstract \
     interpretation: loop trips inferred from guards and payload ranges, \
     per-axis cycle intervals (queue/compute/accel-wait/mem/wire) per \
     traffic class, and an optional provable SLO verdict.  Exits nonzero \
     on CLARA401 (statically unbounded loop) or CLARA403 (provable SLO \
     violation)."
  in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(
      const run $ nf_arg $ target_arg $ slo_arg $ json_arg $ stats_arg
      $ stats_json_arg)

let trace_cmd =
  let nf_arg =
    let doc = "Corpus NF to trace (see 'clara corpus')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let nf_b_arg =
    let doc = "Optional second corpus NF: trace both co-resident (run_pair)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"NF_B" ~doc)
  in
  let out_arg =
    let doc =
      "Write the trace as Chrome/Perfetto trace-event JSON to $(docv) (load at \
       ui.perfetto.dev)."
    in
    Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)
  in
  let limit_arg =
    let doc = "Trace ring capacity in events (oldest overwritten beyond this)." in
    Arg.(value & opt int 1_000_000 & info [ "trace-limit" ] ~docv:"N" ~doc)
  in
  let slowest_arg =
    let doc = "Print full event timelines for the $(docv) slowest packets." in
    Arg.(value & opt int 3 & info [ "slowest" ] ~docv:"N" ~doc)
  in
  let timeline_arg =
    let doc = "Print the compact text timeline of the recorded events." in
    Arg.(value & flag & info [ "timeline" ] ~doc)
  in
  let threads_arg =
    let doc = "Override the NIC's hardware thread count." in
    Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc)
  in
  let run nf nf_b nic payload packets flows rate tcp pcap seed out limit slowest timeline
      threads metrics metrics_cadence stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let sink = Nsim.Trace.create ~limit () in
    let tel = metrics_of ~metrics ~cadence:metrics_cadence in
    let ea = corpus_entry nf in
    let freq_mhz =
      match nf_b with
      | None ->
          let wtrace = trace_of ~pcap ~profile ~seed in
          let r =
            Nsim.Engine.run ?threads ~sink ?metrics:tel lnic ea.Clara_nfs.Corpus.ported
              wtrace
          in
          Format.printf "%s on %s: %a@." nf nic Nsim.Engine.pp_result r;
          r.Nsim.Engine.freq_mhz
      | Some nfb ->
          let eb = corpus_entry nfb in
          let ta = trace_of ~pcap ~profile ~seed in
          let tb = trace_of ~pcap:None ~profile ~seed:(seed + 1) in
          let ra, rb =
            match
              Nsim.Engine.run_tenants ?threads ~sink ?metrics:tel lnic
                [| ea.Clara_nfs.Corpus.ported; eb.Clara_nfs.Corpus.ported |]
                [| ta; tb |]
            with
            | [| a; b |] -> (a, b)
            | _ -> assert false
          in
          Format.printf "co-resident on %s:@." nic;
          Format.printf "  %-14s %a@." nf Nsim.Engine.pp_result ra;
          Format.printf "  %-14s %a@." nfb Nsim.Engine.pp_result rb;
          ra.Nsim.Engine.freq_mhz
    in
    Format.printf "trace: %d events recorded, %d retained, %d lost to ring wrap@."
      (Nsim.Trace.total sink)
      (Array.length (Nsim.Trace.events sink))
      (Nsim.Trace.dropped sink);
    let report = Nsim.Attribution.analyze sink in
    Format.printf "@.latency attribution (mean cycles per packet):@.%a"
      Nsim.Attribution.pp_report report;
    Format.printf "@.%a" Nsim.Attribution.pp_utilization (Nsim.Attribution.utilization sink);
    if slowest > 0 then
      Format.printf "@.slowest packets:@.%a" Nsim.Attribution.pp_slowest
        (Nsim.Attribution.slowest sink report ~n:slowest);
    if timeline then Format.printf "@.%a" (Nsim.Trace_export.pp_text ?limit:None) sink;
    Option.iter
      (fun path ->
        Nsim.Trace_export.write_perfetto sink ~freq_mhz ~path;
        Format.eprintf "clara: wrote Perfetto trace to %s@." path)
      out;
    write_metrics tel metrics;
    emit_stats ~stats ~stats_json
  in
  let doc =
    "Run a ported corpus NF in the simulator with per-packet event tracing: \
     bottleneck attribution, per-unit utilization, slowest-packet timelines, \
     and Chrome/Perfetto export."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ nf_arg $ nf_b_arg $ nic_arg $ payload_arg $ packets_arg $ flows_arg
      $ rate_arg $ tcp_arg $ pcap_arg $ seed_arg $ out_arg $ limit_arg $ slowest_arg
      $ timeline_arg $ threads_arg $ metrics_arg $ metrics_cadence_arg $ stats_arg
      $ stats_json_arg)

(* ---- sim ------------------------------------------------------------ *)

let sim_cmd =
  let nf_arg =
    let doc = "Corpus NF to simulate (see 'clara corpus')." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let fast_arg =
    let doc =
      "Steady-state fast path: 'auto' (default; enabled only when the NF's \
       static sharing analysis proves it stateless), 'on' (force-enable), or \
       'off' (full event simulation)."
    in
    Arg.(value & opt string "auto" & info [ "fast" ] ~docv:"MODE" ~doc)
  in
  let warmup_arg =
    let doc = "Packets simulated on the event path before replay may begin." in
    Arg.(value & opt int 1000 & info [ "warmup" ] ~docv:"N" ~doc)
  in
  let domains_arg =
    let doc = "Simulate flow shards in parallel on $(docv) OCaml domains." in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let shards_arg =
    let doc =
      "Number of independent NIC slices to shard flows onto (defaults to \
       --domains; results depend on the shard count, never the domain count)."
    in
    Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)
  in
  let threads_arg =
    let doc = "Override the NIC's hardware thread count." in
    Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc)
  in
  (* The fast path is provably safe only for NFs whose per-packet cost
     depends on nothing but the packet; the static sharing verdict on
     the NF's DSL source decides that, so 'auto' is trustworthy and
     'on' is the sharp knife. *)
  let stateless_verdict source =
    match Clara_cir.Lower.lower_source source with
    | exception _ -> false
    | ir -> Clara_analysis.Sharing.stateless ir
  in
  let run nf nic fast warmup domains shards threads payload packets flows rate tcp pcap
      seed metrics metrics_cadence json stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let entry = corpus_entry nf in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let wtrace = trace_of ~pcap ~profile ~seed in
    let tel = metrics_of ~metrics ~cadence:metrics_cadence in
    let fast_mode, why =
      match fast with
      | "off" -> (Nsim.Engine.Event_only, "forced off")
      | "on" -> (Nsim.Engine.Auto { warmup }, "forced on")
      | "auto" ->
          if stateless_verdict entry.Clara_nfs.Corpus.source then
            (Nsim.Engine.Auto { warmup }, "sharing verdict: stateless")
          else (Nsim.Engine.Event_only, "sharing verdict: stateful")
      | other -> or_die (Error ("unknown --fast mode '" ^ other ^ "' (auto|on|off)"))
    in
    let t0 = Unix.gettimeofday () in
    let r =
      if domains > 1 || shards <> None then
        Nsim.Engine.run_sharded ~domains ?shards ?threads ?metrics:tel ~fast:fast_mode
          lnic entry.Clara_nfs.Corpus.ported wtrace
      else
        Nsim.Engine.run ?threads ?metrics:tel ~fast:fast_mode lnic
          entry.Clara_nfs.Corpus.ported wtrace
    in
    let wall_s = Unix.gettimeofday () -. t0 in
    let total = r.Nsim.Engine.summary.Nsim.Stats.packets + r.Nsim.Engine.summary.Nsim.Stats.drops in
    let pps = if wall_s > 0. then float_of_int total /. wall_s else Float.nan in
    if json then
      print_endline
        (Clara_util.Json.to_string
           (Clara_util.Json.Obj
              [
                ("nf", Clara_util.Json.String nf);
                ("nic", Clara_util.Json.String nic);
                ("fast", Clara_util.Json.String why);
                ("result", Nsim.Engine.result_to_json r);
                ("wall_seconds", Clara_util.Json.Float wall_s);
                ("packets_per_second", Clara_util.Json.Float pps);
              ]))
    else begin
      Format.printf "%s on %s: %a@." nf nic Nsim.Engine.pp_result r;
      Format.printf "fast path: %s@." why;
      Format.printf "simulated %d packets in %.3fs — %.0f packets/sec@." total wall_s pps
    end;
    write_metrics tel metrics;
    emit_stats ~stats ~stats_json
  in
  let doc =
    "Simulate a ported corpus NF at full speed: steady-state fast path \
     (memoized per-packet-type cost replay, gated on the static sharing \
     verdict) plus optional domain-parallel flow sharding.  Reports simulator \
     throughput in packets/sec."
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      const run $ nf_arg $ nic_arg $ fast_arg $ warmup_arg $ domains_arg $ shards_arg
      $ threads_arg $ payload_arg $ packets_arg $ flows_arg $ rate_arg $ tcp_arg
      $ pcap_arg $ seed_arg $ metrics_arg $ metrics_cadence_arg $ json_arg $ stats_arg
      $ stats_json_arg)

(* ---- json-check ------------------------------------------------------ *)

let json_check_cmd =
  let file_arg =
    let doc = "JSON file to validate." in
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)
  in
  let lines_arg =
    let doc =
      "Treat the file as JSON Lines (one JSON value per non-empty line), e.g. a \
       calibration ledger."
    in
    Arg.(value & flag & info [ "lines" ] ~doc)
  in
  let run file lines =
    let s = read_file file in
    if lines then begin
      let n = ref 0 in
      String.split_on_char '\n' s
      |> List.iteri (fun i line ->
             if String.trim line <> "" then
               match Clara_util.Json.parse line with
               | Ok _ -> incr n
               | Error e ->
                   prerr_endline
                     (Printf.sprintf "clara: %s:%d: %s" file (i + 1) e);
                   exit 1);
      Printf.printf "%s: valid JSONL (%d records)\n" file !n
    end
    else
      match Clara_util.Json.parse s with
      | Ok _ -> Printf.printf "%s: valid JSON (%d bytes)\n" file (String.length s)
      | Error e ->
          prerr_endline ("clara: " ^ file ^ ": " ^ e);
          exit 1
  in
  let doc =
    "Validate that a file parses as JSON, or as JSON Lines with $(b,--lines) \
     (used by CI smoke tests)."
  in
  Cmd.v (Cmd.info "json-check" ~doc) Term.(const run $ file_arg $ lines_arg)

(* ---- calibrate / report --------------------------------------------- *)

module Calib = Clara_calib.Calib

let ledger_arg =
  let doc = "Calibration ledger file (JSON Lines, one record per case)." in
  Arg.(value & opt string "calibration.jsonl" & info [ "ledger" ] ~docv:"FILE" ~doc)

let calibrate_cmd =
  let nfs_arg =
    let doc =
      "NFs to calibrate: corpus names or DSL file paths (a path reduces to its \
       basename, so examples/nf_sources/*.clara works).  Default: the whole \
       corpus."
    in
    Arg.(value & pos_all string [] & info [] ~docv:"NF" ~doc)
  in
  let nics_arg =
    let doc = "Comma-separated targets to calibrate against." in
    Arg.(
      value
      & opt string "netronome,soc,bluefield"
      & info [ "nics" ] ~docv:"NIC,..." ~doc)
  in
  let packets_arg =
    let doc = "Trace length in packets per case." in
    Arg.(value & opt int 4000 & info [ "packets" ] ~docv:"N" ~doc)
  in
  let flows_arg =
    let doc = "Concurrent flows per case." in
    Arg.(value & opt int 2000 & info [ "flows" ] ~docv:"N" ~doc)
  in
  let run nfs nics ledger payload packets flows rate tcp seed json stats stats_json =
    let nfs = if nfs = [] then Clara_nfs.Corpus.names else nfs in
    let nics =
      String.split_on_char ',' nics |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    if nics = [] then or_die (Error "--nics is empty");
    let appended = ref [] in
    let failed = ref 0 in
    List.iter
      (fun nf ->
        List.iter
          (fun nic ->
            let case =
              {
                (Calib.default_case ~nf ~nic) with
                Calib.case_packets = packets;
                case_payload = payload;
                case_flows = flows;
                case_rate = rate;
                case_tcp = tcp;
                case_seed = seed;
              }
            in
            match Calib.run_case case with
            | Error e ->
                incr failed;
                Format.eprintf "clara: skipping %s@." e
            | Ok r ->
                Calib.append ~path:ledger r;
                appended := r :: !appended;
                if not json then
                  Printf.printf
                    "%-14s %-10s pred %8.0f cyc  sim %8.0f cyc  gap %+6.1f%%  p50 \
                     %+6.1f%%  p99 %+6.1f%%\n"
                    r.Calib.nf r.Calib.nic r.Calib.pred_mean r.Calib.sim_mean
                    r.Calib.gap_mean_pct r.Calib.gap_p50_pct r.Calib.gap_p99_pct)
          nics)
      nfs;
    let records = List.rev !appended in
    if json then
      print_endline
        (Clara_util.Json.to_string
           (Clara_util.Json.Obj
              [
                ("ledger", Clara_util.Json.String ledger);
                ("appended", Clara_util.Json.Int (List.length records));
                ("skipped", Clara_util.Json.Int !failed);
                ( "records",
                  Clara_util.Json.List (List.map Calib.record_to_json records) );
              ]))
    else
      Printf.printf "appended %d record%s to %s (%d case%s skipped)\n"
        (List.length records)
        (if List.length records = 1 then "" else "s")
        ledger !failed
        (if !failed = 1 then "" else "s");
    emit_stats ~stats ~stats_json;
    if records = [] then exit 1
  in
  let doc =
    "Run the static predictor and the event simulator over an NF x NIC x \
     workload corpus, decompose both latencies per component \
     (queue/compute/accel-wait/mem/wire), and append per-case calibration \
     records (signed component errors, p50/p99 gaps, provenance) to the \
     ledger.  Cases a target cannot host are skipped with a warning."
  in
  Cmd.v (Cmd.info "calibrate" ~doc)
    Term.(
      const run $ nfs_arg $ nics_arg $ ledger_arg $ payload_arg $ packets_arg
      $ flows_arg $ rate_arg $ tcp_arg $ seed_arg $ json_arg $ stats_arg
      $ stats_json_arg)

let report_cmd =
  let threshold_arg =
    let doc =
      "Drift threshold in percentage points: the latest entry of an (NF, NIC) \
       group drifts when its absolute gap exceeds the previous entry's by more \
       than this."
    in
    Arg.(value & opt float 5.0 & info [ "threshold" ] ~docv:"PP" ~doc)
  in
  let run ledger threshold json =
    let records = or_die (Calib.load ~path:ledger) in
    let rep = Calib.build_report ~drift_threshold:threshold records in
    if json then print_endline (Clara_util.Json.to_string (Calib.report_to_json rep))
    else Format.printf "%a" Calib.pp_report rep;
    if rep.Calib.drifts <> [] then begin
      if Sys.getenv_opt "CLARA_BENCH_ENFORCE" = Some "1" then begin
        prerr_endline "clara: accuracy drift detected and CLARA_BENCH_ENFORCE=1";
        exit 4
      end
      else prerr_endline "clara: warning: accuracy drift detected (not enforcing)"
    end
  in
  let doc =
    "Summarize a calibration ledger: per-NF / per-NIC error tables, \
     worst-component attribution, and drift detection against prior entries \
     (warns by default; exits 4 under CLARA_BENCH_ENFORCE=1)."
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ ledger_arg $ threshold_arg $ json_arg)

(* ---- interfere ------------------------------------------------------ *)

let interfere_cmd =
  let src_a_arg =
    let doc = "First NF: a DSL source file, or a corpus NF name." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"A" ~doc)
  in
  let src_b_arg =
    let doc = "Second NF: a DSL source file, or a corpus NF name." in
    Arg.(required & pos 1 (some string) None & info [] ~docv:"B" ~doc)
  in
  let trace_out_arg =
    let doc =
      "Also run the two NFs co-resident in the simulator with event tracing and \
       write the shared timeline as Perfetto JSON to $(docv); both NFs must be \
       corpus names (the simulator needs their ported handlers)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let run src_a src_b nic payload packets flows rate tcp trace_out =
    let lnic = or_die (lnic_of_name nic) in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let name_a, source_a = resolve_nf src_a and name_b, source_b = resolve_nf src_b in
    let ra, rb =
      or_die (Clara_predict.Interference.analyze_pair lnic ~source_a ~source_b ~profile)
    in
    let show name (r : Clara_predict.Interference.report) =
      Printf.printf "%-24s solo %9.0f cyc   half-NIC %9.0f cyc   contended %9.0f cyc   slowdown %.2fx\n"
        name r.Clara_predict.Interference.solo_cycles
        r.Clara_predict.Interference.sliced_cycles
        r.Clara_predict.Interference.contended_cycles
        r.Clara_predict.Interference.slowdown
    in
    Printf.printf "co-residence on %s:\n" nic;
    show name_a ra;
    show name_b rb;
    Option.iter
      (fun path ->
        match (Clara_nfs.Corpus.find src_a, Clara_nfs.Corpus.find src_b) with
        | Some ea, Some eb ->
            let sink = Nsim.Trace.create () in
            let ta = W.Trace.synthesize ~seed:42L profile in
            let tb = W.Trace.synthesize ~seed:43L profile in
            let sa, sb =
              Nsim.Engine.run_pair ~sink lnic ea.Clara_nfs.Corpus.ported
                eb.Clara_nfs.Corpus.ported ta tb
            in
            Printf.printf "simulated co-residence:\n";
            Format.printf "  %-14s %a@." src_a Nsim.Engine.pp_result sa;
            Format.printf "  %-14s %a@." src_b Nsim.Engine.pp_result sb;
            Format.printf "%a" Nsim.Attribution.pp_report (Nsim.Attribution.analyze sink);
            Nsim.Trace_export.write_perfetto sink ~freq_mhz:sa.Nsim.Engine.freq_mhz ~path;
            Format.eprintf "clara: wrote Perfetto trace to %s@." path
        | _ ->
            prerr_endline
              "clara: --trace needs corpus NF names (the simulator runs ported \
               handlers); see 'clara corpus'";
            exit 1)
      trace_out
  in
  let doc =
    "Predict the slowdown of two NFs sharing one NIC (sliced cores, shrunken \
     cache, accelerator contention)."
  in
  Cmd.v (Cmd.info "interfere" ~doc)
    Term.(
      const run $ src_a_arg $ src_b_arg $ nic_arg $ payload_arg $ packets_arg
      $ flows_arg $ rate_arg $ tcp_arg $ trace_out_arg)

(* ---- tenants -------------------------------------------------------- *)

let tenants_cmd =
  let nfs_arg =
    let doc = "Tenant NFs (two or more): DSL source files, or corpus NF names." in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"NF" ~doc)
  in
  let weights_arg =
    let doc =
      "Comma-separated positive integer scheduling weights, one per tenant \
       (default: equal).  Threads, queue slots and the WRR grant divide in \
       this proportion."
    in
    Arg.(value & opt (some string) None & info [ "weights" ] ~docv:"W1,W2,..." ~doc)
  in
  let slo_arg =
    let doc = "Per-tenant p99 latency SLO in microseconds." in
    Arg.(value & opt (some float) None & info [ "slo-p99-us" ] ~docv:"US" ~doc)
  in
  let threads_arg =
    let doc = "Override the NIC's hardware thread count before splitting." in
    Arg.(value & opt (some int) None & info [ "threads" ] ~docv:"N" ~doc)
  in
  let parse_weights n = function
    | None -> Array.make n 1
    | Some s ->
        let parts = String.split_on_char ',' s in
        let ws =
          List.map
            (fun p ->
              match int_of_string_opt (String.trim p) with
              | Some w when w > 0 -> w
              | _ -> or_die (Error ("bad weight '" ^ p ^ "' (positive integers only)")))
            parts
        in
        if List.length ws <> n then
          or_die
            (Error
               (Printf.sprintf "--weights has %d entries for %d tenants"
                  (List.length ws) n));
        Array.of_list ws
  in
  (* Jain's fairness index over weight-normalized service: 1.0 = perfectly
     proportional, below ~0.9 some tenant is being starved. *)
  let jain xs =
    let n = float_of_int (Array.length xs) in
    let s = Array.fold_left ( +. ) 0. xs in
    let s2 = Array.fold_left (fun a x -> a +. (x *. x)) 0. xs in
    if s2 <= 0. then 1. else s *. s /. (n *. s2)
  in
  let run nfs weights_s nic payload packets flows rate tcp seed slo threads metrics
      metrics_cadence json stats stats_json =
    let lnic = or_die (lnic_of_name nic) in
    let tel = metrics_of ~metrics ~cadence:metrics_cadence in
    let n = List.length nfs in
    if n < 2 then or_die (Error "tenants needs at least two NFs");
    let weights = parse_weights n weights_s in
    let profile = profile_of ~payload ~packets ~flows ~rate ~tcp in
    let resolved = List.map resolve_nf nfs in
    let names = Array.of_list (List.map fst resolved) in
    let sources = Array.of_list (List.map snd resolved) in
    let reports =
      or_die
        (Clara_predict.Interference.analyze_n ~weights lnic ~sources
           ~profiles:(Array.make n profile))
    in
    (* Simulation needs ported handlers: every argument must name a
       corpus NF (a file path counts when its basename matches one). *)
    let entry_of arg =
      let key =
        if Sys.file_exists arg then Filename.remove_extension (Filename.basename arg)
        else arg
      in
      Clara_nfs.Corpus.find key
    in
    let entries = List.map entry_of nfs in
    let sim =
      if List.for_all Option.is_some entries then begin
        let progs =
          Array.of_list
            (List.map (fun e -> (Option.get e).Clara_nfs.Corpus.ported) entries)
        in
        let traces =
          Array.init n (fun i ->
              W.Trace.synthesize ~seed:(Int64.of_int (seed + i)) profile)
        in
        match Nsim.Engine.run_tenants ?threads ~weights ?metrics:tel lnic progs traces with
        | rs -> Ok rs
        | exception Invalid_argument m -> Error ("simulation skipped: " ^ m)
      end
      else Error "simulation skipped: not every NF is a corpus name (see 'clara corpus')"
    in
    let freq_mhz =
      match L.Graph.general_cores lnic with
      | u :: _ -> float_of_int u.L.Unit_.freq_mhz
      | [] -> 1e3
    in
    let duration_s = float_of_int packets /. rate in
    let wsum = Array.fold_left ( + ) 0 weights in
    (* Per-tenant rows: predicted always; simulated when available. *)
    let sim_rows =
      match sim with
      | Error _ -> None
      | Ok rs ->
          Some
            (Array.mapi
               (fun i (r : Nsim.Engine.result) ->
                 let s = r.Nsim.Engine.summary in
                 let pred = reports.(i) in
                 let tput = float_of_int s.Nsim.Stats.packets /. duration_s in
                 let iso =
                   100.
                   *. (s.Nsim.Stats.mean_cycles
                       -. pred.Clara_predict.Interference.sliced_cycles)
                   /. pred.Clara_predict.Interference.sliced_cycles
                 in
                 (s, tput, iso))
               rs)
    in
    let p99_us_of i =
      match sim_rows with
      | Some rows ->
          let s, _, _ = rows.(i) in
          float_of_int s.Nsim.Stats.p99_cycles /. freq_mhz
      | None -> reports.(i).Clara_predict.Interference.contended_cycles /. freq_mhz
    in
    let fairness =
      match sim_rows with
      | Some rows ->
          jain
            (Array.mapi
               (fun i (_, tput, _) -> tput /. float_of_int weights.(i))
               rows)
      | None ->
          jain
            (Array.map
               (fun (r : Clara_predict.Interference.report) ->
                 1. /. Float.max 1e-9 r.Clara_predict.Interference.slowdown)
               reports)
    in
    let fair = fairness >= 0.9 in
    let slo_met =
      Option.map
        (fun limit ->
          Array.init n (fun i -> p99_us_of i <= limit))
        slo
    in
    let saturated =
      Array.exists (fun r -> r.Clara_predict.Interference.saturated) reports
    in
    if json then begin
      let tenant i =
        let r = reports.(i) in
        let base =
          [
            ("nf", Clara_util.Json.String names.(i));
            ("weight", Clara_util.Json.Int weights.(i));
            ("share", Clara_util.Json.Float (float_of_int weights.(i) /. float_of_int wsum));
            ("predicted_solo_cycles", Clara_util.Json.Float r.Clara_predict.Interference.solo_cycles);
            ("predicted_slice_cycles", Clara_util.Json.Float r.Clara_predict.Interference.sliced_cycles);
            ("predicted_contended_cycles", Clara_util.Json.Float r.Clara_predict.Interference.contended_cycles);
            ("slowdown", Clara_util.Json.Float r.Clara_predict.Interference.slowdown);
            ("accel_utilization", Clara_util.Json.Float r.Clara_predict.Interference.accel_utilization);
            ("saturated", Clara_util.Json.Bool r.Clara_predict.Interference.saturated);
          ]
        in
        let simj =
          match sim_rows with
          | None -> []
          | Some rows ->
              let s, tput, iso = rows.(i) in
              [
                ("sim_p99_cycles", Clara_util.Json.Int s.Nsim.Stats.p99_cycles);
                ("sim_p99_us", Clara_util.Json.Float (p99_us_of i));
                ("sim_mean_cycles", Clara_util.Json.Float s.Nsim.Stats.mean_cycles);
                ("sim_drops", Clara_util.Json.Int s.Nsim.Stats.drops);
                ("throughput_pps", Clara_util.Json.Float tput);
                ("isolation_error_pct", Clara_util.Json.Float iso);
              ]
        in
        let sloj =
          match slo_met with
          | None -> []
          | Some met -> [ ("slo_met", Clara_util.Json.Bool met.(i)) ]
        in
        Clara_util.Json.Obj (base @ simj @ sloj)
      in
      print_endline
        (Clara_util.Json.to_string
           (Clara_util.Json.Obj
              [
                ("nic", Clara_util.Json.String nic);
                ("tenants", Clara_util.Json.List (List.init n tenant));
                ("fairness_index", Clara_util.Json.Float fairness);
                ("fair", Clara_util.Json.Bool fair);
                ("saturated", Clara_util.Json.Bool saturated);
                ( "simulated",
                  Clara_util.Json.Bool (Option.is_some sim_rows) );
              ]))
    end
    else begin
      Printf.printf "%d tenants on %s (weights %s):\n" n nic
        (String.concat ","
           (Array.to_list (Array.map string_of_int weights)));
      (match sim with Error m -> Printf.printf "  [%s]\n" m | Ok _ -> ());
      Array.iteri
        (fun i (r : Clara_predict.Interference.report) ->
          Printf.printf
            "  %-16s w=%-3d slice %9.0f cyc   contended %9.0f cyc   slowdown %.2fx   accel-u %.2f%s\n"
            names.(i) weights.(i) r.Clara_predict.Interference.sliced_cycles
            r.Clara_predict.Interference.contended_cycles
            r.Clara_predict.Interference.slowdown
            r.Clara_predict.Interference.accel_utilization
            (if r.Clara_predict.Interference.saturated then "   SATURATED" else "");
          (match sim_rows with
          | None -> ()
          | Some rows ->
              let s, tput, iso = rows.(i) in
              Printf.printf
                "  %-16s      sim p99 %d cyc (%.1f us)   mean %.0f cyc   tput %.0f pps   drops %d   isolation err %+.1f%%\n"
                "" s.Nsim.Stats.p99_cycles (p99_us_of i) s.Nsim.Stats.mean_cycles
                tput s.Nsim.Stats.drops iso);
          match slo_met with
          | Some met when not met.(i) ->
              Printf.printf "  %-16s      p99 %.1f us VIOLATES SLO\n" "" (p99_us_of i)
          | _ -> ())
        reports;
      Printf.printf "fairness: Jain index %.3f -> %s\n" fairness
        (if fair then "FAIR" else "UNFAIR");
      (match slo_met with
      | None -> ()
      | Some met ->
          let ok = Array.fold_left (fun a b -> if b then a + 1 else a) 0 met in
          Printf.printf "SLO (p99 <= %.1f us): %s (%d/%d tenants)\n" (Option.get slo)
            (if ok = n then "MET" else "VIOLATED")
            ok n);
      if saturated then
        Printf.printf
          "warning: aggregate accelerator demand saturates the NIC; contended \
           predictions are lower bounds\n"
    end;
    write_metrics tel metrics;
    emit_stats ~stats ~stats_json
  in
  let doc =
    "Predict and simulate N NFs co-resident on one NIC under two-stage \
     weighted-round-robin scheduling: per-tenant p99/throughput/isolation \
     error plus a fairness/SLO verdict."
  in
  Cmd.v (Cmd.info "tenants" ~doc)
    Term.(
      const run $ nfs_arg $ weights_arg $ nic_arg $ payload_arg $ packets_arg
      $ flows_arg $ rate_arg $ tcp_arg $ seed_arg $ slo_arg $ threads_arg $ metrics_arg
      $ metrics_cadence_arg $ json_arg $ stats_arg $ stats_json_arg)

(* ---- corpus --------------------------------------------------------- *)

let corpus_cmd =
  let name_arg =
    let doc = "NF name; omit to list the corpus." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"NF" ~doc)
  in
  let run name =
    match name with
    | None ->
        List.iter
          (fun (e : Clara_nfs.Corpus.entry) ->
            Printf.printf "%-14s %s
" e.Clara_nfs.Corpus.name
              e.Clara_nfs.Corpus.description)
          Clara_nfs.Corpus.all
    | Some n -> (
        match Clara_nfs.Corpus.find n with
        | Some e -> print_string e.Clara_nfs.Corpus.source
        | None ->
            prerr_endline
              ("clara: unknown NF (try: " ^ String.concat " " Clara_nfs.Corpus.names ^ ")");
            exit 1)
  in
  let doc = "List the bundled NF corpus, or print one NF's DSL source." in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const run $ name_arg)

(* -------------------------------------------------------------------- *)

let () =
  let doc = "performance clarity for SmartNIC offloading" in
  let info = Cmd.info "clara" ~version:"0.1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ analyze_cmd; predict_cmd; microbench_cmd; nics_cmd; trace_gen_cmd;
            paths_cmd; partial_cmd; energy_cmd; corpus_cmd; chain_cmd; sweep_cmd;
            interfere_cmd; tenants_cmd; trace_cmd; sim_cmd; calibrate_cmd;
            report_cmd; lint_cmd; bounds_cmd; json_check_cmd ]))
