type t =
  | Fixed of int
  | Uniform of int * int
  | Bimodal of int * int * float
  | Zipf of int * float

let c_cdf_builds =
  Clara_obs.Registry.counter Clara_obs.Registry.default "workload.zipf.cdf_builds"

let make_zipf ~n ~alpha =
  if n <= 0 then invalid_arg "Dist.make_zipf: n must be positive";
  Clara_obs.Metrics.incr c_cdf_builds;
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) alpha);
    cdf.(k) <- !acc
  done;
  let total = !acc in
  fun g ->
    let u = Prng.float g *. total in
    (* Binary search for the first index with cdf >= u. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if cdf.(mid) >= u then hi := mid else lo := mid + 1
    done;
    !lo

(* [sample] used to rebuild the O(n) Zipf CDF on every draw; memoize the
   sampler per (n, alpha) so repeated draws are O(log n).  The cache is
   tiny in practice (profiles use a handful of shapes); reset it if it
   ever grows past a sane bound.  Guarded by a mutex: sweep workers
   (lib/explore) synthesize traces on several domains at once, and a
   shared Hashtbl must not be mutated concurrently.  The sampler itself
   closes over an immutable CDF array, so sharing samplers across
   domains is safe. *)
let zipf_cache : (int * float, Prng.t -> int) Hashtbl.t = Hashtbl.create 8
let zipf_mu = Mutex.create ()

let zipf_sampler ~n ~alpha =
  Mutex.lock zipf_mu;
  match Hashtbl.find_opt zipf_cache (n, alpha) with
  | Some f ->
      Mutex.unlock zipf_mu;
      f
  | None ->
      if Hashtbl.length zipf_cache >= 64 then Hashtbl.reset zipf_cache;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock zipf_mu)
        (fun () ->
          let f = make_zipf ~n ~alpha in
          Hashtbl.add zipf_cache (n, alpha) f;
          f)

let sample g = function
  | Fixed v -> v
  | Uniform (a, b) ->
      if b < a then invalid_arg "Dist.sample: empty uniform range";
      a + Prng.int g (b - a + 1)
  | Bimodal (a, b, p) -> if Prng.bool g p then a else b
  | Zipf (n, alpha) -> zipf_sampler ~n ~alpha g

let exponential g ~mean =
  if mean <= 0. then invalid_arg "Dist.exponential: mean must be positive";
  let u = 1. -. Prng.float g in
  -.mean *. Float.log u

let mean = function
  | Fixed v -> float_of_int v
  | Uniform (a, b) -> float_of_int (a + b) /. 2.
  | Bimodal (a, b, p) -> (p *. float_of_int a) +. ((1. -. p) *. float_of_int b)
  | Zipf (n, alpha) ->
      (* Mean rank of the Zipf distribution. *)
      let num = ref 0. and den = ref 0. in
      for k = 0 to n - 1 do
        let w = 1. /. Float.pow (float_of_int (k + 1)) alpha in
        num := !num +. (float_of_int k *. w);
        den := !den +. w
      done;
      !num /. !den
