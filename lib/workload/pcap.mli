(** Minimal libpcap (classic, microsecond) reader/writer.

    The paper's workload profile may be "a pcap trace" (§3.5); this module
    lets Clara ingest real captures and export synthetic ones.  Writing
    synthesizes Ethernet + IPv4 + TCP/UDP headers (payload zero-filled and
    truncated to the snap length); reading parses those headers back into
    {!Packet.t} and ignores non-IPv4 frames.  Reading accepts both byte
    orders (native 0xa1b2c3d4 and byte-swapped 0xd4c3b2a1 magics) and
    rejects records whose captured length exceeds the file's declared
    snap length rather than trusting a corrupt header. *)

val write_file : string -> Trace.t -> unit
(** @raise Sys_error on IO failure. *)

val read_file : string -> Trace.t
(** @raise Failure on malformed files (bad magic, truncated records). *)

val snaplen : int
(** Capture length used by the writer (262144, tcpdump's default). *)
