(** Samplers for the distributions workload profiles use: flow popularity
    (Zipf), packet sizes (uniform / fixed / bimodal), inter-arrival times
    (exponential). *)

type t =
  | Fixed of int
  | Uniform of int * int          (** Inclusive bounds. *)
  | Bimodal of int * int * float  (** [Bimodal (a, b, p)]: [a] w.p. [p]. *)
  | Zipf of int * float           (** [Zipf (n, alpha)] over [[0, n)]. *)

val sample : Prng.t -> t -> int
(** Draw one value.  [Zipf] samplers are memoized per [(n, alpha)], so
    repeated draws cost O(log n) each; only the first draw of a given
    shape pays the O(n) CDF build (counted by the
    ["workload.zipf.cdf_builds"] Obs counter). *)

val exponential : Prng.t -> mean:float -> float
(** Exponential variate (inter-arrival times for a Poisson process). *)

val make_zipf : n:int -> alpha:float -> Prng.t -> int
(** [make_zipf ~n ~alpha] precomputes the CDF and returns a sampler for
    rank-frequency Zipf over [[0, n)]: P(k) ∝ 1/(k+1)^alpha.
    [alpha = 0] degenerates to uniform. *)

val mean : t -> float
(** Expected value of the distribution. *)
