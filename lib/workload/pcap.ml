(* Classic pcap, microsecond timestamps, LINKTYPE_ETHERNET.  The writer
   emits little-endian; the reader accepts both byte orders (magic
   0xa1b2c3d4 native or 0xd4c3b2a1 byte-swapped). *)

let magic = 0xa1b2c3d4
let magic_swapped = 0xd4c3b2a1
let snaplen = 262144

(* -- little-endian byte IO on Buffer / Bytes ----------------------- *)

let w16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xff));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))

let w32 buf v =
  w16 buf (v land 0xffff);
  w16 buf ((v lsr 16) land 0xffff)

(* Network byte order (big-endian) for packet contents. *)
let wbe16 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr (v land 0xff))

let wbe32 buf (v : int32) =
  let v = Int32.to_int v land 0xffffffff in
  wbe16 buf ((v lsr 16) land 0xffff);
  wbe16 buf (v land 0xffff)

let r16 b off = Char.code (Bytes.get b off) lor (Char.code (Bytes.get b (off + 1)) lsl 8)
let r32 b off = r16 b off lor (r16 b (off + 2) lsl 16)
let rbe16 b off = (Char.code (Bytes.get b off) lsl 8) lor Char.code (Bytes.get b (off + 1))
let rbe32i b off = (rbe16 b off lsl 16) lor rbe16 b (off + 2)

let rbe32 b off =
  Int32.logor
    (Int32.shift_left (Int32.of_int (rbe16 b off)) 16)
    (Int32.of_int (rbe16 b (off + 2)))

(* -- frame synthesis ------------------------------------------------ *)

let frame_of_packet (p : Packet.t) =
  let buf = Buffer.create 128 in
  (* Ethernet: zero MACs, ethertype IPv4. *)
  for _ = 1 to 12 do Buffer.add_char buf '\000' done;
  wbe16 buf 0x0800;
  let l4_len =
    match p.Packet.proto with Packet.Tcp -> 20 | Packet.Udp -> 8 | Packet.Other _ -> 0
  in
  let ip_total = 20 + l4_len + p.Packet.payload_bytes in
  (* IPv4 header, no options. *)
  Buffer.add_char buf '\x45';
  Buffer.add_char buf '\000';
  wbe16 buf ip_total;
  wbe16 buf 0; (* id *)
  wbe16 buf 0x4000; (* don't fragment *)
  Buffer.add_char buf '\x40'; (* ttl *)
  Buffer.add_char buf (Char.chr (Packet.proto_number p.Packet.proto));
  wbe16 buf 0; (* checksum: left zero; readers we care about don't verify *)
  wbe32 buf p.Packet.src_ip;
  wbe32 buf p.Packet.dst_ip;
  (match p.Packet.proto with
  | Packet.Tcp ->
      wbe16 buf p.Packet.src_port;
      wbe16 buf p.Packet.dst_port;
      wbe32 buf 0l; (* seq *)
      wbe32 buf 0l; (* ack *)
      Buffer.add_char buf '\x50'; (* data offset 5 *)
      Buffer.add_char buf (Char.chr (p.Packet.flags land 0xff));
      wbe16 buf 65535; (* window *)
      wbe16 buf 0; (* checksum *)
      wbe16 buf 0 (* urgent *)
  | Packet.Udp ->
      wbe16 buf p.Packet.src_port;
      wbe16 buf p.Packet.dst_port;
      wbe16 buf (8 + p.Packet.payload_bytes);
      wbe16 buf 0
  | Packet.Other _ -> ());
  let payload = min p.Packet.payload_bytes (snaplen - Buffer.length buf) in
  for _ = 1 to payload do Buffer.add_char buf '\000' done;
  Buffer.contents buf

let write_file path (t : Trace.t) =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let hdr = Buffer.create 24 in
      w32 hdr magic;
      w16 hdr 2; (* major *)
      w16 hdr 4; (* minor *)
      w32 hdr 0; (* thiszone *)
      w32 hdr 0; (* sigfigs *)
      w32 hdr snaplen;
      w32 hdr 1; (* LINKTYPE_ETHERNET *)
      output_string oc (Buffer.contents hdr);
      Array.iter
        (fun (p : Packet.t) ->
          let frame = frame_of_packet p in
          let rec_hdr = Buffer.create 16 in
          let ts_us = Int64.div p.Packet.arrival_ns 1000L in
          w32 rec_hdr (Int64.to_int (Int64.div ts_us 1_000_000L));
          w32 rec_hdr (Int64.to_int (Int64.rem ts_us 1_000_000L));
          w32 rec_hdr (String.length frame);
          w32 rec_hdr (String.length frame);
          output_string oc (Buffer.contents rec_hdr);
          output_string oc frame)
        t.Trace.packets)

let parse_frame bytes ~ts_ns =
  let len = Bytes.length bytes in
  if len < 34 then None
  else if rbe16 bytes 12 <> 0x0800 then None (* not IPv4 *)
  else begin
    let ihl = Char.code (Bytes.get bytes 14) land 0xf in
    let ip_off = 14 in
    let l4_off = ip_off + (ihl * 4) in
    let total = rbe16 bytes (ip_off + 2) in
    let proto_n = Char.code (Bytes.get bytes (ip_off + 9)) in
    let src_ip = rbe32 bytes (ip_off + 12) in
    let dst_ip = rbe32 bytes (ip_off + 16) in
    let proto = Packet.proto_of_number proto_n in
    let get16 off = if off + 1 < len then rbe16 bytes off else 0 in
    let src_port, dst_port, flags, l4_len =
      match proto with
      | Packet.Tcp ->
          let data_off = if l4_off + 12 < len then (Char.code (Bytes.get bytes (l4_off + 12)) lsr 4) * 4 else 20 in
          ( get16 l4_off,
            get16 (l4_off + 2),
            (if l4_off + 13 < len then Char.code (Bytes.get bytes (l4_off + 13)) else 0),
            data_off )
      | Packet.Udp -> (get16 l4_off, get16 (l4_off + 2), 0, 8)
      | Packet.Other _ -> (0, 0, 0, 0)
    in
    let payload_bytes = max 0 (total - (ihl * 4) - l4_len) in
    Some
      {
        Packet.src_ip;
        dst_ip;
        src_port;
        dst_port;
        proto;
        flags;
        payload_bytes;
        arrival_ns = ts_ns;
      }
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ghdr = Bytes.create 24 in
      really_input ic ghdr 0 24;
      let file_magic = r32 ghdr 0 in
      let swapped = file_magic = magic_swapped in
      if file_magic <> magic && not swapped then
        failwith
          (Printf.sprintf "Pcap.read_file: bad magic 0x%08x (expected 0x%08x or 0x%08x)"
             file_magic magic magic_swapped);
      (* Header fields are in the writer's byte order: little-endian for
         the native magic, big-endian for the swapped one. *)
      let ru32 b off = if swapped then rbe32i b off else r32 b off in
      let declared_snaplen =
        let s = ru32 ghdr 16 in
        if s > 0 then s else snaplen
      in
      let packets = ref [] in
      (try
         while true do
           let rhdr = Bytes.create 16 in
           really_input ic rhdr 0 16;
           let ts_sec = ru32 rhdr 0 and ts_us = ru32 rhdr 4 in
           let incl = ru32 rhdr 8 in
           (* Never trust incl: a corrupt record would otherwise drive a
              multi-GB Bytes.create or an Invalid_argument. *)
           if incl > declared_snaplen then
             failwith
               (Printf.sprintf
                  "Pcap.read_file: record claims %d captured bytes, above the file's \
                   snaplen %d (corrupt or truncated capture)"
                  incl declared_snaplen);
           let frame = Bytes.create incl in
           really_input ic frame 0 incl;
           let ts_ns =
             Int64.add
               (Int64.mul (Int64.of_int ts_sec) 1_000_000_000L)
               (Int64.mul (Int64.of_int ts_us) 1000L)
           in
           match parse_frame frame ~ts_ns with
           | Some p -> packets := p :: !packets
           | None -> ()
         done
       with End_of_file -> ());
      Trace.of_packets (Array.of_list (List.rev !packets)))
