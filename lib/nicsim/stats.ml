module W = Clara_workload

type t = {
  mutable lat : int array;
  mutable n : int;
  mutable drops : int;
  mutable tcp_sum : float;
  mutable tcp_n : int;
  mutable udp_sum : float;
  mutable udp_n : int;
  mutable syn_sum : float;
  mutable syn_n : int;
}

let create () =
  { lat = Array.make 1024 0; n = 0; drops = 0; tcp_sum = 0.; tcp_n = 0;
    udp_sum = 0.; udp_n = 0; syn_sum = 0.; syn_n = 0 }

let record t ~proto ~syn ~latency_cycles =
  if t.n = Array.length t.lat then begin
    let bigger = Array.make (2 * t.n) 0 in
    Array.blit t.lat 0 bigger 0 t.n;
    t.lat <- bigger
  end;
  t.lat.(t.n) <- latency_cycles;
  t.n <- t.n + 1;
  let c = float_of_int latency_cycles in
  (match proto with
  | W.Packet.Tcp ->
      t.tcp_sum <- t.tcp_sum +. c;
      t.tcp_n <- t.tcp_n + 1
  | W.Packet.Udp ->
      t.udp_sum <- t.udp_sum +. c;
      t.udp_n <- t.udp_n + 1
  | W.Packet.Other _ -> ());
  if syn then begin
    t.syn_sum <- t.syn_sum +. c;
    t.syn_n <- t.syn_n + 1
  end

let record_drop t = t.drops <- t.drops + 1

(* Concatenate raw samples (in list order, so merged results are
   deterministic) and sum the per-class accumulators; used to combine
   per-shard stats from a domain-parallel run before summarizing. *)
let merge ts =
  let n = List.fold_left (fun a t -> a + t.n) 0 ts in
  let lat = Array.make (max 1 n) 0 in
  let off = ref 0 in
  List.iter
    (fun t ->
      Array.blit t.lat 0 lat !off t.n;
      off := !off + t.n)
    ts;
  let sum f = List.fold_left (fun a t -> a +. f t) 0. ts in
  let sumi f = List.fold_left (fun a t -> a + f t) 0 ts in
  {
    lat;
    n;
    drops = sumi (fun t -> t.drops);
    tcp_sum = sum (fun t -> t.tcp_sum);
    tcp_n = sumi (fun t -> t.tcp_n);
    udp_sum = sum (fun t -> t.udp_sum);
    udp_n = sumi (fun t -> t.udp_n);
    syn_sum = sum (fun t -> t.syn_sum);
    syn_n = sumi (fun t -> t.syn_n);
  }

type summary = {
  packets : int;
  drops : int;
  mean_cycles : float;
  p50_cycles : int;
  p99_cycles : int;
  max_cycles : int;
  tcp_mean : float;
  udp_mean : float;
  syn_mean : float;
}

let summarize t =
  if t.n = 0 then
    { packets = 0; drops = t.drops; mean_cycles = 0.; p50_cycles = 0; p99_cycles = 0;
      max_cycles = 0; tcp_mean = Float.nan; udp_mean = Float.nan; syn_mean = Float.nan }
  else begin
    let sorted = Array.sub t.lat 0 t.n in
    Array.sort compare sorted;
    (* Nearest-rank percentile: the ceil(p*n)-th smallest value,
       0-indexed — so p50 of [1;2;3;4] is 2, not 3. *)
    let pct p =
      sorted.(max 0 (min (t.n - 1) (int_of_float (Float.ceil (float_of_int t.n *. p)) - 1)))
    in
    let total = Array.fold_left (fun a c -> a +. float_of_int c) 0. sorted in
    let div_or_nan s n = if n = 0 then Float.nan else s /. float_of_int n in
    {
      packets = t.n;
      drops = t.drops;
      mean_cycles = total /. float_of_int t.n;
      p50_cycles = pct 0.5;
      p99_cycles = pct 0.99;
      max_cycles = sorted.(t.n - 1);
      tcp_mean = div_or_nan t.tcp_sum t.tcp_n;
      udp_mean = div_or_nan t.udp_sum t.udp_n;
      syn_mean = div_or_nan t.syn_sum t.syn_n;
    }
  end

let mean_ns s ~freq_mhz = s.mean_cycles *. 1000. /. float_of_int freq_mhz

(* Per-class means are NaN when the class is empty; print "n/a" rather
   than "nan". *)
let pp_mean fmt v =
  if Float.is_nan v then Format.pp_print_string fmt "n/a"
  else Format.fprintf fmt "%.0f" v

let pp_summary fmt s =
  Format.fprintf fmt
    "%d pkts (%d drops), mean %.0f cyc, p50 %d, p99 %d, max %d, tcp %a, udp %a, syn %a"
    s.packets s.drops s.mean_cycles s.p50_cycles s.p99_cycles s.max_cycles pp_mean
    s.tcp_mean pp_mean s.udp_mean pp_mean s.syn_mean
