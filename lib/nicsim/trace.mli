(** Per-packet event tracing for the simulator.

    A sink records timestamped lifecycle events for every packet the
    engine processes: arrival, ingress-queue wait, thread bind, per-
    semantic-unit compute spans, accelerator request/grant/complete,
    memory-tier accesses with hit/miss outcomes, DMA serialization, hub
    costs, and retirement.  Events land in a preallocated ring buffer
    bounded by [limit]; once full, the oldest events are overwritten
    (the drop count is reported), so a trace of any length runs in
    bounded memory.

    The invariant the engine and device maintain is {e tiling}: for each
    retired packet, the span events (queue wait, compute, accelerator
    wait/use, memory, DMA/hub) cover the interval from arrival to
    retirement exactly, with no gaps and no overlap — so summing span
    durations per component reproduces the packet's recorded latency
    cycle-for-cycle ({!Attribution} relies on this).

    When no sink is installed the per-packet hot loop performs no trace
    work beyond a [match] on an option — no allocation, no stores — so
    simulation results are byte-identical with tracing compiled in but
    disabled ([bench trace] guards this). *)

type kind =
  | Arrival      (** Instant: packet hits the ingress queue; [arg] = queue depth. *)
  | Queue_wait   (** Span: arrival → thread bind (possibly zero-length). *)
  | Thread_bind  (** Instant: bound to a hardware thread; [arg] = thread index. *)
  | Compute      (** Span: a semantic unit on a general core; [label] names it. *)
  | Accel_wait   (** Span: accelerator request → grant (serialization). *)
  | Accel_use    (** Span: accelerator grant → complete. *)
  | Mem_access   (** Span: one memory-tier access burst; [label] = region,
                     [arg] = 1 hit / 0 miss / -1 uncached. *)
  | Dma_wait     (** Span: waiting for a free DMA lane ([label] = "rx"/"tx"). *)
  | Dma_xfer     (** Span: DMA transfer on the granted lane. *)
  | Hub          (** Span: ingress/egress hub per-packet cost. *)
  | Retire       (** Instant: packet done; [arg] encodes proto*2 + syn. *)
  | Dropped      (** Instant: rejected at a full ingress queue; [arg] = depth. *)

val kind_name : kind -> string
(** Stable lower-case name ("arrival", "queue-wait", …) for exports. *)

type event = {
  seq : int;      (** Packet sequence number within the run (-1: system). *)
  prog : int;     (** Owning program index (0 for solo runs; 0/1 in pairs). *)
  thread : int;   (** Bound hardware thread, -1 before binding. *)
  kind : kind;
  label : string; (** Kind-specific: semantic unit, accel/region name, … *)
  t0 : int;       (** Start, core cycles since run start. *)
  t1 : int;       (** End; equals [t0] for instants. *)
  arg : int;      (** Kind-specific payload (see {!kind}). *)
}

type t

val create : ?limit:int -> unit -> t
(** Ring capacity in events (default 1_000_000).
    @raise Invalid_argument when [limit < 1]. *)

val limit : t -> int

val record :
  t ->
  seq:int ->
  prog:int ->
  thread:int ->
  kind:kind ->
  label:string ->
  t0:int ->
  t1:int ->
  arg:int ->
  unit

val events : t -> event array
(** Retained events, oldest first (record order). *)

val total : t -> int
(** Events ever recorded, including overwritten ones. *)

val dropped : t -> int
(** [total - retained]: events lost to ring wrap-around. *)

val set_progs : t -> string array -> unit
(** Names of the co-resident programs, by [prog] index. *)

val progs : t -> string array
(** [[| "prog" |]]-style names; [[| |]] until {!set_progs}. *)

val clear : t -> unit
(** Forget all events (capacity and program names survive). *)
