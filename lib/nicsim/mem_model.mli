(** Dynamic memory-hierarchy model for the simulator.

    Unlike the predictor's static hit-ratio estimate, this tracks the
    EMEM cache line-by-line (64-byte lines in an LRU), so hit rates
    emerge from the actual access pattern — Zipf-skewed flows really do
    hit more often than uniform ones. *)

type region = Local | Ctm | Imem | Emem

type t

val create : Clara_lnic.Graph.t -> t
(** Latencies and the EMEM cache geometry are read off the LNIC's memory
    regions; regions absent from the graph fall back to the next slower
    present level. *)

val access :
  t -> region -> mode:[ `Read | `Write | `Atomic ] -> addr:int -> int
(** Cycles for one access.  [addr] identifies the cached line for [Emem]
    accesses; other regions are flat-latency. *)

type outcome = Hit | Miss | Uncached
(** Cache outcome of one access: [Hit]/[Miss] for cache-backed EMEM,
    [Uncached] for flat-latency regions (or an EMEM without a cache). *)

val access' :
  t -> region -> mode:[ `Read | `Write | `Atomic ] -> addr:int -> int * outcome
(** Like {!access}, also reporting the cache outcome — the trace layer
    records it per event. *)

val region_name : region -> string
(** Stable lower-case name ("local", "ctm", "imem", "emem"). *)

val emem_hits : t -> int
val emem_misses : t -> int
val reset_stats : t -> unit
