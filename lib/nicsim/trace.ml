type kind =
  | Arrival
  | Queue_wait
  | Thread_bind
  | Compute
  | Accel_wait
  | Accel_use
  | Mem_access
  | Dma_wait
  | Dma_xfer
  | Hub
  | Retire
  | Dropped

let kind_name = function
  | Arrival -> "arrival"
  | Queue_wait -> "queue-wait"
  | Thread_bind -> "thread-bind"
  | Compute -> "compute"
  | Accel_wait -> "accel-wait"
  | Accel_use -> "accel-use"
  | Mem_access -> "mem"
  | Dma_wait -> "dma-wait"
  | Dma_xfer -> "dma-xfer"
  | Hub -> "hub"
  | Retire -> "retire"
  | Dropped -> "dropped"

type event = {
  seq : int;
  prog : int;
  thread : int;
  kind : kind;
  label : string;
  t0 : int;
  t1 : int;
  arg : int;
}

let dummy =
  { seq = -1; prog = 0; thread = -1; kind = Arrival; label = ""; t0 = 0; t1 = 0; arg = 0 }

type t = {
  ring : event array;
  lim : int;
  mutable next : int;   (* next write slot *)
  mutable count : int;  (* total ever recorded *)
  mutable names : string array;
}

let create ?(limit = 1_000_000) () =
  if limit < 1 then invalid_arg "Trace.create: limit must be >= 1";
  { ring = Array.make limit dummy; lim = limit; next = 0; count = 0; names = [||] }

let limit t = t.lim

let record t ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg =
  t.ring.(t.next) <- { seq; prog; thread; kind; label; t0; t1; arg };
  t.next <- (if t.next + 1 = t.lim then 0 else t.next + 1);
  t.count <- t.count + 1

let total t = t.count
let dropped t = max 0 (t.count - t.lim)

let events t =
  if t.count <= t.lim then Array.sub t.ring 0 t.count
  else
    (* Full ring: oldest surviving event sits at [next]. *)
    Array.init t.lim (fun i -> t.ring.((t.next + i) mod t.lim))

let set_progs t names = t.names <- Array.copy names
let progs t = Array.copy t.names

let clear t =
  Array.fill t.ring 0 t.lim dummy;
  t.next <- 0;
  t.count <- 0
