type 'a t = {
  queues : 'a Queue.t array;
  weights : int array;
  credit : int array;
  mutable cursor : int;     (* tenant currently holding the grant *)
  mutable occupancy : int;  (* total queued items *)
}

let check_weights ~who weights =
  if Array.length weights = 0 then invalid_arg (who ^ ": no tenants");
  Array.iteri
    (fun i w ->
      if w <= 0 then
        invalid_arg (Printf.sprintf "%s: tenant %d has non-positive weight %d" who i w))
    weights

let create ~weights =
  check_weights ~who:"Scheduler.create" weights;
  {
    queues = Array.init (Array.length weights) (fun _ -> Queue.create ());
    weights = Array.copy weights;
    credit = Array.copy weights;
    cursor = 0;
    occupancy = 0;
  }

let tenants t = Array.length t.queues
let length t = t.occupancy
let queue_length t i = Queue.length t.queues.(i)
let credit t i = t.credit.(i)
let is_empty t = t.occupancy = 0

let enqueue t ~tenant x =
  Queue.push x t.queues.(tenant);
  t.occupancy <- t.occupancy + 1

(* Stage 1: keep the grant on [cursor] while it has credit and backlog;
   otherwise advance round-robin.  When a full pass finds backlog but no
   credit anywhere, the round is over: replenish every credit to its
   weight.  Terminates in at most 2n probes because occupancy > 0
   guarantees a backlogged tenant with fresh credit after replenish. *)
let next t =
  if t.occupancy = 0 then None
  else begin
    let n = Array.length t.queues in
    let rec grant scanned =
      if scanned >= n then begin
        Array.blit t.weights 0 t.credit 0 n;
        grant 0
      end
      else begin
        let i = t.cursor in
        if t.credit.(i) > 0 && not (Queue.is_empty t.queues.(i)) then i
        else begin
          t.cursor <- (i + 1) mod n;
          grant (scanned + 1)
        end
      end
    in
    let i = grant 0 in
    (* Stage 2: serve the granted tenant's queue head. *)
    let x = Queue.pop t.queues.(i) in
    t.occupancy <- t.occupancy - 1;
    t.credit.(i) <- t.credit.(i) - 1;
    if t.credit.(i) = 0 || Queue.is_empty t.queues.(i) then
      t.cursor <- (i + 1) mod n;
    Some (i, x)
  end

let drain t f =
  let rec go () =
    match next t with
    | None -> ()
    | Some (i, x) ->
        f i x;
        go ()
  in
  go ()

let split ~total ~weights =
  check_weights ~who:"Scheduler.split" weights;
  let n = Array.length weights in
  let total = max 0 total in
  let wsum = Array.fold_left ( + ) 0 weights in
  let parts = Array.map (fun w -> total * w / wsum) weights in
  (* Floor division loses up to n-1 units; hand the remainder out one
     each to the lowest-indexed tenants so the parts sum to [total]. *)
  let rem = ref (total - Array.fold_left ( + ) 0 parts) in
  Array.iteri
    (fun i p ->
      if !rem > 0 then begin
        parts.(i) <- p + 1;
        decr rem
      end)
    parts;
  (* Every tenant must stay runnable.  When total >= n a zero part
     implies some other part >= 2 (pigeonhole), so take the unit from
     the currently largest allocation and conservation holds; when
     total < n conservation is impossible and the clamp wins. *)
  let largest () =
    let j = ref 0 in
    Array.iteri (fun i p -> if p > parts.(!j) then j := i) parts;
    !j
  in
  Array.iteri
    (fun i p ->
      if p = 0 then begin
        if total >= n then begin
          let j = largest () in
          parts.(j) <- parts.(j) - 1
        end;
        parts.(i) <- 1
      end)
    parts;
  if total >= n then assert (Array.fold_left ( + ) 0 parts = total);
  parts
