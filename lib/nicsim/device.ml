module Lru = Clara_util.Lru
module L = Clara_lnic
module P = Clara_lnic.Params
module W = Clara_workload

type placement = P_ctm | P_imem | P_emem | P_flow_cache

type table_decl = {
  t_name : string;
  t_entries : int;
  t_entry_bytes : int;
  t_placement : placement;
}

type verdict = Emit | Drop

type table_state = {
  decl : table_decl;
  contents : Lru.t;  (* inserted keys, capacity-bounded *)
  base_addr : int;
}

type sim = {
  lnic : L.Graph.t;
  params : P.t;
  memm : Mem_model.t;
  flow_cache : Lru.t option;        (* LRU over flow keys *)
  (* Which accelerator fronts the flow cache (the eSwitch on off-path
     DPUs, the lookup engine on NPU-style parts), and what a miss pays
     to be upcalled to software on an off-path target (0 on-path). *)
  fc_kind : L.Unit_.accel_kind;
  upcall_cycles : int;
  tables : (string, table_state) Hashtbl.t;
  accel_free : (L.Unit_.accel_kind, int ref) Hashtbl.t;
  (* Store-and-forward DMA lanes between the wire and packet memory;
     serialization here is what makes latency rate-dependent. *)
  dma_rx_free : int array;
  dma_tx_free : int array;
  islands : int;       (* general-core islands, for CTM NUMA *)
  ctm_remote_penalty : int;
  has_fpu : bool;
  mutable fc_hits : int;
  mutable fc_misses : int;
  (* Cumulative occupancy: total cycles any accelerator / DMA lane spent
     busy, and how many flow-cache misses were upcalled.  Plain adds on
     paths that already mutate the sim, so they cost nothing measurable;
     telemetry samples them by delta. *)
  mutable accel_busy : int;
  mutable dma_busy : int;
  mutable upcall_count : int;
  (* Per-program cache accounting, indexed by [prog_id].  run_pair's
     per-side hit rates come from here; the shared totals above stay for
     single-program callers. *)
  fc_hits_by : int array;
  fc_misses_by : int array;
  emem_hits_by : int array;
  emem_misses_by : int array;
}

(* A packet's resolved cost profile, for the engine's steady-state fast
   path.  Segments preserve execution order; [Seg_pure] is thread-local
   time (flat compute + uncached memory), the others contend for shared
   resources and must be replayed against live occupancy state. *)
type segment =
  | Seg_pure of int
  | Seg_accel of L.Unit_.accel_kind * int
  | Seg_dma_rx of int
  | Seg_dma_tx of int

type profile = { segs : segment list }

(* Pure-gap recording: rather than instrumenting every [spend], the
   recorder marks the clock at each non-pure boundary (accelerator, DMA)
   and the gap between marks becomes one [Seg_pure].  A recording is
   tainted — and yields no profile — the moment the handler touches
   mutable simulator state (tables, flow cache, EMEM cache), because a
   replayed packet skips execution and so must not have been mutating
   anything. *)
type recorder = {
  mutable mark : int;
  mutable rev_segs : segment list;
  mutable tainted : bool;
}

type t = {
  sim : sim;
  mutable clock : int;
  pkt : W.Packet.t;
  seq : int;       (* packet sequence number within the run, for tracing *)
  prog_id : int;   (* owning program index (run_pair tags events with it) *)
  thread : int;    (* bound hardware thread, -1 outside the engine *)
  trace : Trace.t option;
  recorder : recorder option;
}

type handler = t -> W.Packet.t -> verdict

type prog = { name : string; tables : table_decl list; handler : handler }

let fresh_recorder () = { mark = 0; rev_segs = []; tainted = false }

let[@inline] taint ctx =
  match ctx.recorder with None -> () | Some r -> r.tainted <- true

(* Close the pure gap [r.mark, clock) before a shared-resource segment. *)
let[@inline] rec_gap r clock =
  let gap = clock - r.mark in
  if gap > 0 then r.rev_segs <- Seg_pure gap :: r.rev_segs

let[@inline] rec_seg ctx seg done_ =
  match ctx.recorder with
  | Some r when not r.tainted ->
      r.rev_segs <- seg :: r.rev_segs;
      r.mark <- done_
  | _ -> ()

let recorded ctx =
  match ctx.recorder with
  | None -> None
  | Some r ->
      if r.tainted then None
      else begin
        rec_gap r ctx.clock;
        r.mark <- ctx.clock;
        Some { segs = List.rev r.rev_segs }
      end

let profile_equal (p : profile) (q : profile) = p.segs = q.segs

(* Replay mirrors the execution-side occupancy arithmetic exactly
   (max-with-free for accelerators, earliest-free lane for DMA), so a
   replayed packet advances shared state byte-identically to running the
   handler — which is what lets fast- and slow-path packets mix in one
   run. *)
let replay_dma lanes clock cycles =
  let li = ref 0 in
  for i = 1 to Array.length lanes - 1 do
    if lanes.(i) < lanes.(!li) then li := i
  done;
  let start = max clock lanes.(!li) in
  let done_ = start + cycles in
  lanes.(!li) <- done_;
  done_

let replay sim ~start (p : profile) =
  let clock = ref start in
  List.iter
    (fun seg ->
      match seg with
      | Seg_pure c -> clock := !clock + c
      | Seg_accel (kind, c) -> (
          match Hashtbl.find_opt sim.accel_free kind with
          | None -> clock := !clock + c
          | Some free ->
              let s = max !clock !free in
              let done_ = s + c in
              free := done_;
              sim.accel_busy <- sim.accel_busy + c;
              clock := done_)
      | Seg_dma_rx c ->
          sim.dma_busy <- sim.dma_busy + c;
          clock := replay_dma sim.dma_rx_free !clock c
      | Seg_dma_tx c ->
          sim.dma_busy <- sim.dma_busy + c;
          clock := replay_dma sim.dma_tx_free !clock c)
    p.segs;
  !clock

let region_of_placement = function
  | P_ctm -> Mem_model.Ctm
  | P_imem -> Mem_model.Imem
  | P_emem -> Mem_model.Emem
  | P_flow_cache -> invalid_arg "Device: flow-cache tables have no memory region"

let create_sim_shared lnic progs =
  let params = lnic.L.Graph.params in
  (* The eSwitch wins when both are present: it is the wire-fronting
     match-action engine, the lookup unit a core-driven sidekick. *)
  let fc_accel =
    match L.Graph.find_accelerator lnic L.Unit_.Eswitch with
    | Some _ -> Some L.Unit_.Eswitch
    | None -> (
        match L.Graph.find_accelerator lnic L.Unit_.Lookup with
        | Some _ -> Some L.Unit_.Lookup
        | None -> None)
  in
  let tables = Hashtbl.create 8 in
  let next_base = ref 0x1000_0000 in
  List.iter
    (fun decl ->
      if Hashtbl.mem tables decl.t_name then
        invalid_arg (Printf.sprintf "Device: duplicate table '%s'" decl.t_name);
      if decl.t_placement = P_flow_cache && fc_accel = None then
        invalid_arg
          (Printf.sprintf "Device: table '%s' wants a flow cache this NIC lacks"
             decl.t_name);
      Hashtbl.add tables decl.t_name
        { decl;
          contents = Lru.create ~capacity:(max 1 decl.t_entries);
          base_addr = !next_base };
      (* Slide bases apart so tables never share cache lines. *)
      next_base := !next_base + (decl.t_entries * decl.t_entry_bytes) + 0x10_0000)
    (List.concat_map (fun p -> p.tables) progs);
  let flow_cache =
    match fc_accel with
    | None -> None
    | Some kind ->
        let sram = P.accel_sram params kind in
        (* Flow-cache entries are ~32B each. *)
        Some (Lru.create ~capacity:(max 1 (sram / 32)))
  in
  let accel_free = Hashtbl.create 4 in
  List.iter
    (fun u ->
      match u.L.Unit_.kind with
      | L.Unit_.Accelerator k -> Hashtbl.replace accel_free k (ref 0)
      | L.Unit_.General_core _ -> ())
    (Array.to_list lnic.L.Graph.units);
  let has_fpu =
    match L.Graph.general_cores lnic with
    | { L.Unit_.kind = L.Unit_.General_core { has_fpu; _ }; _ } :: _ -> has_fpu
    | _ -> false
  in
  let islands =
    L.Graph.general_cores lnic
    |> List.filter_map (fun u -> u.L.Unit_.island)
    |> List.sort_uniq compare |> List.length |> max 1
  in
  (* Remote-island CTM penalty, read off an actual cross-island bus when
     the topology has one. *)
  let ctm_remote_penalty =
    List.fold_left
      (fun acc l ->
        match l.L.Link.kind with
        | L.Link.Access (_, _) -> max acc l.L.Link.weight_cycles
        | _ -> acc)
      0 lnic.L.Graph.links
  in
  let nprogs = max 1 (List.length progs) in
  {
    lnic;
    params;
    memm = Mem_model.create lnic;
    flow_cache;
    fc_kind = Option.value ~default:L.Unit_.Lookup fc_accel;
    upcall_cycles = L.Graph.upcall_cycles lnic;
    tables;
    accel_free;
    dma_rx_free = Array.make 4 0;
    dma_tx_free = Array.make 4 0;
    islands;
    ctm_remote_penalty;
    has_fpu;
    fc_hits = 0;
    fc_misses = 0;
    accel_busy = 0;
    dma_busy = 0;
    upcall_count = 0;
    fc_hits_by = Array.make nprogs 0;
    fc_misses_by = Array.make nprogs 0;
    emem_hits_by = Array.make nprogs 0;
    emem_misses_by = Array.make nprogs 0;
  }

let create_sim lnic prog = create_sim_shared lnic [ prog ]

let make_ctx ?(seq = -1) ?(prog = 0) ?(thread = -1) ?trace ?recorder sim ~now pkt =
  (* Rearm a (possibly reused) recorder for this packet. *)
  (match recorder with
  | None -> ()
  | Some r ->
      r.mark <- now;
      r.rev_segs <- [];
      r.tainted <- false);
  { sim; clock = now; pkt; seq; prog_id = prog; thread; trace; recorder }

let now ctx = ctx.clock
let sim_of ctx = ctx.sim

let spend ctx cycles = ctx.clock <- ctx.clock + max 0 cycles

(* Trace emission.  Every helper is a plain [match] on the optional sink:
   with tracing off the hot loop does no allocation and no extra stores
   (kind constructors are constant, labels are literals, timestamps are
   immediate ints). *)

let[@inline] emit ctx ~kind ~label ~t0 ~arg =
  match ctx.trace with
  | None -> ()
  | Some s ->
      Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread ~kind ~label ~t0
        ~t1:ctx.clock ~arg

let[@inline] emit_compute ctx ~label ~t0 ~arg =
  emit ctx ~kind:Trace.Compute ~label ~t0 ~arg

let[@inline] emit_mem ctx ~region ~outcome ~t0 =
  match ctx.trace with
  | None -> ()
  | Some s ->
      let arg =
        match (outcome : Mem_model.outcome) with
        | Mem_model.Hit -> 1
        | Mem_model.Miss -> 0
        | Mem_model.Uncached -> -1
      in
      Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread
        ~kind:Trace.Mem_access
        ~label:(Mem_model.region_name region)
        ~t0 ~t1:ctx.clock ~arg

let op_cost ctx cls n =
  spend ctx
    (int_of_float
       (Float.round (float_of_int n *. P.op_cost ctx.sim.params cls ~has_fpu:ctx.sim.has_fpu)))

(* Serialize on an accelerator: wait for it, occupy it for [cycles]. *)
let use_accel ctx kind cycles =
  match Hashtbl.find_opt ctx.sim.accel_free kind with
  | None -> invalid_arg "Device.use_accel: no such accelerator on this NIC"
  | Some free ->
      let req = ctx.clock in
      (match ctx.recorder with
      | Some r when not r.tainted -> rec_gap r req
      | _ -> ());
      let start = max ctx.clock !free in
      let done_ = start + cycles in
      free := done_;
      ctx.sim.accel_busy <- ctx.sim.accel_busy + cycles;
      ctx.clock <- done_;
      rec_seg ctx (Seg_accel (kind, cycles)) done_;
      (match ctx.trace with
      | None -> ()
      | Some s ->
          let label = L.Unit_.accel_name kind in
          if start > req then
            Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread
              ~kind:Trace.Accel_wait ~label ~t0:req ~t1:start ~arg:0;
          Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread
            ~kind:Trace.Accel_use ~label ~t0:start ~t1:done_ ~arg:cycles)

let core_vcall_cost ctx vc n =
  match P.core_vcall_cost ctx.sim.params vc with
  | Some f -> L.Cost_fn.eval_int f n
  | None -> invalid_arg "Device: core cannot run this operation"

let accel_vcall_cost ctx kind vc n =
  match P.accel_vcall_cost ctx.sim.params kind vc with
  | Some f -> L.Cost_fn.eval_int f n
  | None -> invalid_arg "Device: accelerator cannot run this operation"

let table ctx name =
  match Hashtbl.find_opt ctx.sim.tables name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Device: unknown table '%s'" name)

(* The island this packet's thread runs on (packets spread across
   islands; the spread is keyed on the flow so it is deterministic). *)
let packet_island ctx =
  if ctx.sim.islands <= 1 then 0
  else W.Packet.flow_key ctx.pkt mod ctx.sim.islands

(* EMEM cache outcomes feed the per-program hit-rate accounting, and any
   cached access taints the recorder: the LRU line cache is mutable
   shared state, so a packet that touched it cannot be replayed. *)
let[@inline] note_mem_outcome ctx (outcome : Mem_model.outcome) =
  match outcome with
  | Mem_model.Uncached -> ()
  | Mem_model.Hit ->
      let s = ctx.sim in
      if ctx.prog_id >= 0 && ctx.prog_id < Array.length s.emem_hits_by then
        s.emem_hits_by.(ctx.prog_id) <- s.emem_hits_by.(ctx.prog_id) + 1;
      taint ctx
  | Mem_model.Miss ->
      let s = ctx.sim in
      if ctx.prog_id >= 0 && ctx.prog_id < Array.length s.emem_misses_by then
        s.emem_misses_by.(ctx.prog_id) <- s.emem_misses_by.(ctx.prog_id) + 1;
      taint ctx

let table_access ctx (ts : table_state) ~mode ~key =
  let region = region_of_placement ts.decl.t_placement in
  let slot = (key land max_int) mod ts.decl.t_entries in
  let addr = ts.base_addr + (slot * ts.decl.t_entry_bytes) in
  let t0 = ctx.clock in
  let cycles, outcome = Mem_model.access' ctx.sim.memm region ~mode ~addr in
  spend ctx cycles;
  note_mem_outcome ctx outcome;
  (* CTM is per-island: a CTM-resident table lives on island 0, and
     threads elsewhere pay the cross-island bus (NUMA, §3.1) — an effect
     the static predictor does not model.  The penalty is part of the
     access's memory-stall span. *)
  if region = Mem_model.Ctm && packet_island ctx <> 0 then
    spend ctx ctx.sim.ctm_remote_penalty;
  emit_mem ctx ~region ~outcome ~t0

(* ------------------------------------------------------------------ *)
(* Handler operations                                                  *)

let parse_header ctx ~engine =
  (* The dedicated parser when the NIC has one; off-path parts parse in
     the eSwitch match-action pipeline instead.  A NIC with neither
     (e.g. a plain ARM SoC) parses on the cores even when the program
     asked for the engine — that's what the hardware would do. *)
  let engine_kind =
    if not engine then None
    else
      let kind =
        match L.Graph.find_accelerator ctx.sim.lnic L.Unit_.Parse with
        | Some _ -> L.Unit_.Parse
        | None -> ctx.sim.fc_kind
      in
      match
        ( Hashtbl.find_opt ctx.sim.accel_free kind,
          P.accel_vcall_cost ctx.sim.params kind P.V_parse_header )
      with
      | Some _, Some _ -> Some kind
      | _ -> None
  in
  match engine_kind with
  | Some kind ->
      use_accel ctx kind
        (accel_vcall_cost ctx kind P.V_parse_header (W.Packet.header_bytes ctx.pkt))
  | None -> begin
    let t0 = ctx.clock in
    spend ctx (core_vcall_cost ctx P.V_parse_header (W.Packet.header_bytes ctx.pkt));
    emit_compute ctx ~label:"parse" ~t0 ~arg:(W.Packet.header_bytes ctx.pkt)
  end

let alu ctx n =
  let t0 = ctx.clock in
  op_cost ctx P.Alu n;
  emit_compute ctx ~label:"alu" ~t0 ~arg:n

let mul ctx n =
  let t0 = ctx.clock in
  op_cost ctx P.Mul n;
  emit_compute ctx ~label:"mul" ~t0 ~arg:n

let hash_op ctx =
  let t0 = ctx.clock in
  op_cost ctx P.Hash 1;
  emit_compute ctx ~label:"hash" ~t0 ~arg:1

let move ctx n =
  let t0 = ctx.clock in
  op_cost ctx P.Move n;
  emit_compute ctx ~label:"move" ~t0 ~arg:n

let branch ctx =
  let t0 = ctx.clock in
  op_cost ctx P.Branch 1;
  emit_compute ctx ~label:"branch" ~t0 ~arg:1

let fp_op ctx n =
  let t0 = ctx.clock in
  op_cost ctx P.Fp n;
  emit_compute ctx ~label:"fp" ~t0 ~arg:n

let local_read ctx n =
  let t0 = ctx.clock in
  for _ = 1 to n do
    spend ctx (Mem_model.access ctx.sim.memm Mem_model.Local ~mode:`Read ~addr:0)
  done;
  emit_mem ctx ~region:Mem_model.Local ~outcome:Mem_model.Uncached ~t0

let local_write ctx n =
  let t0 = ctx.clock in
  for _ = 1 to n do
    spend ctx (Mem_model.access ctx.sim.memm Mem_model.Local ~mode:`Write ~addr:0)
  done;
  emit_mem ctx ~region:Mem_model.Local ~outcome:Mem_model.Uncached ~t0

let packet_region ctx =
  if W.Packet.total_bytes ctx.pkt <= ctx.sim.params.P.packet_ctm_threshold then
    Mem_model.Ctm
  else Mem_model.Emem

let packet_read ctx n =
  let region = packet_region ctx in
  let base = 0x7000_0000 + (W.Packet.flow_key ctx.pkt land 0xffff) * 2048 in
  for i = 0 to n - 1 do
    let t0 = ctx.clock in
    let cycles, outcome =
      Mem_model.access' ctx.sim.memm region ~mode:`Read ~addr:(base + (i * 64))
    in
    spend ctx cycles;
    note_mem_outcome ctx outcome;
    emit_mem ctx ~region ~outcome ~t0
  done

let table_lookup ctx name ~key =
  taint ctx;
  let ts = table ctx name in
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_table_lookup ts.decl.t_entries);
  emit_compute ctx ~label:"table-lookup" ~t0 ~arg:ts.decl.t_entries;
  (* Two probe reads: bucket head + entry. *)
  table_access ctx ts ~mode:`Read ~key;
  table_access ctx ts ~mode:`Read ~key;
  Lru.mem ts.contents key

let table_insert ctx name ~key =
  taint ctx;
  let ts = table ctx name in
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_table_update ts.decl.t_entries);
  emit_compute ctx ~label:"table-update" ~t0 ~arg:ts.decl.t_entries;
  table_access ctx ts ~mode:`Read ~key;
  table_access ctx ts ~mode:`Write ~key;
  ignore (Lru.touch ts.contents key)

(* Software match/action walk: per-entry compute plus one memory burst
   per 8 entries (entries are small relative to a 64B line/burst). *)
let lpm_walk ctx (ts : table_state) ~key =
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_lpm_lookup ts.decl.t_entries);
  emit_compute ctx ~label:"lpm-walk" ~t0 ~arg:ts.decl.t_entries;
  let region = region_of_placement ts.decl.t_placement in
  let bursts = max 1 (ts.decl.t_entries / 8) in
  for i = 0 to bursts - 1 do
    let t0 = ctx.clock in
    let cycles, outcome =
      Mem_model.access' ctx.sim.memm region ~mode:`Read
        ~addr:(ts.base_addr + (i * 8 * ts.decl.t_entry_bytes))
    in
    spend ctx cycles;
    note_mem_outcome ctx outcome;
    emit_mem ctx ~region ~outcome ~t0
  done;
  ignore key

let[@inline] bump arr i =
  if i >= 0 && i < Array.length arr then arr.(i) <- arr.(i) + 1

let lpm_lookup ctx name ~key =
  taint ctx;
  let ts = table ctx name in
  match ts.decl.t_placement with
  | P_flow_cache -> (
      match ctx.sim.flow_cache with
      | None -> invalid_arg "Device.lpm_lookup: no flow cache"
      | Some fc ->
          let kind = ctx.sim.fc_kind in
          let cost = accel_vcall_cost ctx kind P.V_lpm_lookup ts.decl.t_entries in
          if Lru.touch fc key then begin
            ctx.sim.fc_hits <- ctx.sim.fc_hits + 1;
            bump ctx.sim.fc_hits_by ctx.prog_id;
            use_accel ctx kind cost;
            true
          end
          else begin
            (* Miss: consult the rule set in memory, result gets cached. *)
            ctx.sim.fc_misses <- ctx.sim.fc_misses + 1;
            bump ctx.sim.fc_misses_by ctx.prog_id;
            use_accel ctx kind cost;
            (* Off-path: the miss is upcalled across the internal fabric
               before software can walk the rules (the path is already
               tainted, so the recorder never replays this). *)
            if ctx.sim.upcall_cycles > 0 then begin
              let t0 = ctx.clock in
              ctx.sim.upcall_count <- ctx.sim.upcall_count + 1;
              spend ctx ctx.sim.upcall_cycles;
              emit ctx ~kind:Trace.Hub ~label:"upcall" ~t0 ~arg:0
            end;
            (* The walk happens in EMEM regardless of the declared
               placement for flow-cache tables. *)
            lpm_walk ctx
              { ts with decl = { ts.decl with t_placement = P_emem } }
              ~key;
            true
          end)
  | P_ctm | P_imem | P_emem ->
      lpm_walk ctx ts ~key;
      true

let checksum ctx ~engine ~bytes =
  if engine then
    use_accel ctx L.Unit_.Checksum (accel_vcall_cost ctx L.Unit_.Checksum P.V_checksum bytes)
  else begin
    let t0 = ctx.clock in
    spend ctx (core_vcall_cost ctx P.V_checksum bytes);
    emit_compute ctx ~label:"checksum" ~t0 ~arg:bytes
  end

let crypto ctx ~engine ~bytes =
  if engine then
    use_accel ctx L.Unit_.Crypto (accel_vcall_cost ctx L.Unit_.Crypto P.V_crypto bytes)
  else begin
    let t0 = ctx.clock in
    spend ctx (core_vcall_cost ctx P.V_crypto bytes);
    emit_compute ctx ~label:"crypto" ~t0 ~arg:bytes
  end

let scan_payload ctx ~bytes =
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_payload_scan bytes);
  emit_compute ctx ~label:"payload-scan" ~t0 ~arg:bytes;
  (* Deterministic ~10% match rate keyed on the packet. *)
  W.Packet.flow_key ctx.pkt mod 10 = 0

let meter ctx =
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_meter 1);
  emit_compute ctx ~label:"meter" ~t0 ~arg:1

let count ctx name ~key =
  taint ctx;
  let ts = table ctx name in
  let t0 = ctx.clock in
  spend ctx (core_vcall_cost ctx P.V_flow_stats 1);
  emit_compute ctx ~label:"flow-stats" ~t0 ~arg:1;
  table_access ctx ts ~mode:`Atomic ~key

(* Occupy the earliest-free DMA lane for [cycles]; the packet waits when
   all lanes are busy (rate-dependent queueing). *)
let use_dma ctx dir cycles =
  let lanes, label =
    match dir with
    | `Rx -> (ctx.sim.dma_rx_free, "rx")
    | `Tx -> (ctx.sim.dma_tx_free, "tx")
  in
  let li = ref 0 in
  for i = 1 to Array.length lanes - 1 do
    if lanes.(i) < lanes.(!li) then li := i
  done;
  let req = ctx.clock in
  (match ctx.recorder with
  | Some r when not r.tainted -> rec_gap r req
  | _ -> ());
  let start = max ctx.clock lanes.(!li) in
  let done_ = start + cycles in
  lanes.(!li) <- done_;
  ctx.sim.dma_busy <- ctx.sim.dma_busy + cycles;
  ctx.clock <- done_;
  rec_seg ctx
    (match dir with `Rx -> Seg_dma_rx cycles | `Tx -> Seg_dma_tx cycles)
    done_;
  match ctx.trace with
  | None -> ()
  | Some s ->
      if start > req then
        Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread
          ~kind:Trace.Dma_wait ~label ~t0:req ~t1:start ~arg:!li;
      Trace.record s ~seq:ctx.seq ~prog:ctx.prog_id ~thread:ctx.thread
        ~kind:Trace.Dma_xfer ~label ~t0:start ~t1:done_ ~arg:!li

let wire_rx ctx =
  let bytes = W.Packet.total_bytes ctx.pkt in
  use_dma ctx `Rx (L.Cost_fn.eval_int ctx.sim.params.P.wire_ingress bytes);
  match Array.to_list ctx.sim.lnic.L.Graph.hubs with
  | hubs -> (
      match List.find_opt (fun h -> h.L.Hub.kind = `Ingress) hubs with
      | Some h ->
          let t0 = ctx.clock in
          spend ctx h.L.Hub.per_packet_cycles;
          emit ctx ~kind:Trace.Hub ~label:"ingress" ~t0 ~arg:0
      | None -> ())

let wire_tx ctx =
  let bytes = W.Packet.total_bytes ctx.pkt in
  use_dma ctx `Tx (L.Cost_fn.eval_int ctx.sim.params.P.wire_egress bytes);
  match
    List.find_opt (fun h -> h.L.Hub.kind = `Egress) (Array.to_list ctx.sim.lnic.L.Graph.hubs)
  with
  | Some h ->
      let t0 = ctx.clock in
      spend ctx h.L.Hub.per_packet_cycles;
      emit ctx ~kind:Trace.Hub ~label:"egress" ~t0 ~arg:0
  | None -> ()

let flow_cache_hits sim = sim.fc_hits
let flow_cache_misses sim = sim.fc_misses
let accel_busy_cycles sim = sim.accel_busy
let dma_busy_cycles sim = sim.dma_busy
let upcalls sim = sim.upcall_count
let mem sim = sim.memm

let[@inline] cell arr i = if i >= 0 && i < Array.length arr then arr.(i) else 0
let flow_cache_hits_of sim i = cell sim.fc_hits_by i
let flow_cache_misses_of sim i = cell sim.fc_misses_by i
let emem_hits_of sim i = cell sim.emem_hits_by i
let emem_misses_of sim i = cell sim.emem_misses_by i
