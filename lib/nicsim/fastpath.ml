(* Steady-state fast path: a memo table from exact packet contents to a
   resolved cost profile (Device.profile).

   Soundness rests on three rules:

   - Keys are the packet's *raw* fields (addresses, ports, proto, flags,
     payload size) — never the FNV flow_key, whose collisions would let
     one packet replay another's profile.  Two packets with equal keys
     are indistinguishable to a handler: every Device operation's cost
     derives from those fields (arrival time only shifts the start
     clock, which replay handles).

   - A profile is only ever captured for a packet whose execution never
     touched mutable simulator state (Device taints the recording
     otherwise), so skipping execution on replay cannot desynchronize
     tables, the flow cache, or the EMEM cache.

   - A key must be *confirmed* — two sightings with identical profiles —
     before it may replay, which catches handlers that are stateful
     outside the simulator (e.g. an OCaml closure over a ref) without
     touching Device state.  Any taint or profile mismatch poisons the
     key permanently.

   A kill switch disables the table for the rest of the run when it has
   only ever poisoned (stateful NF, e.g. per-flow tables): stop paying
   the recording overhead once it is clear no packet will ever replay. *)

module W = Clara_workload

type key = { ka : int; kb : int; kc : int }

(* Pack the seven identity fields into three ints, each field in its own
   bit range (no hashing, no aliasing): ka = src ip:port, kb = dst
   ip:port + proto, kc = flags + payload size. *)
let key_of (p : W.Packet.t) =
  {
    ka =
      ((Int32.to_int p.W.Packet.src_ip land 0xffffffff) lsl 16)
      lor (p.W.Packet.src_port land 0xffff);
    kb =
      ((W.Packet.proto_number p.W.Packet.proto land 0xff) lsl 48)
      lor ((Int32.to_int p.W.Packet.dst_ip land 0xffffffff) lsl 16)
      lor (p.W.Packet.dst_port land 0xffff);
    kc = (p.W.Packet.payload_bytes lsl 8) lor (p.W.Packet.flags land 0xff);
  }

type entry =
  | Recorded of Device.profile
  | Confirmed of Device.profile
  | Poisoned

type t = {
  tbl : (key, entry) Hashtbl.t;
  warmup : int;
  mutable replayed : int;
  mutable executed : int;
  mutable confirmed : int;
  mutable poisoned : int;
  mutable disabled : bool;
}

(* Poison budget before the kill switch fires with nothing confirmed. *)
let kill_after = 32

let create ~warmup =
  {
    tbl = Hashtbl.create 256;
    warmup = max 0 warmup;
    replayed = 0;
    executed = 0;
    confirmed = 0;
    poisoned = 0;
    disabled = false;
  }

type decision =
  | Replay of Device.profile  (* confirmed, past warm-up: skip execution *)
  | Record                    (* execute with a recorder armed *)
  | Plain                     (* execute, no recording *)

let decide t ~seq pkt =
  if t.disabled then Plain
  else
    match Hashtbl.find_opt t.tbl (key_of pkt) with
    | Some (Confirmed p) when seq >= t.warmup -> Replay p
    | Some Poisoned -> Plain
    | Some (Confirmed _) | Some (Recorded _) | None -> Record

let poison t key =
  (match Hashtbl.find_opt t.tbl key with
  | Some Poisoned -> ()
  | Some (Confirmed _) ->
      t.confirmed <- t.confirmed - 1;
      t.poisoned <- t.poisoned + 1
  | Some (Recorded _) | None -> t.poisoned <- t.poisoned + 1);
  Hashtbl.replace t.tbl key Poisoned;
  if t.poisoned > kill_after && t.confirmed = 0 then t.disabled <- true

(* Record what an executed packet's profile turned out to be ([None] =
   the recording was tainted by mutable state). *)
let note t pkt profile =
  if not t.disabled then begin
    let key = key_of pkt in
    match profile with
    | None -> poison t key
    | Some p -> (
        match Hashtbl.find_opt t.tbl key with
        | None -> Hashtbl.replace t.tbl key (Recorded p)
        | Some (Recorded q) ->
            if Device.profile_equal p q then begin
              Hashtbl.replace t.tbl key (Confirmed p);
              t.confirmed <- t.confirmed + 1
            end
            else poison t key
        | Some (Confirmed q) ->
            if not (Device.profile_equal p q) then poison t key
        | Some Poisoned -> ())
  end

type stats = {
  replayed : int;   (* packets completed analytically *)
  executed : int;   (* packets that ran the handler *)
  confirmed : int;  (* distinct keys eligible for replay *)
  poisoned : int;   (* distinct keys ruled out *)
  enabled : bool;   (* false once the kill switch fired *)
}

let stats (t : t) =
  {
    replayed = t.replayed;
    executed = t.executed;
    confirmed = t.confirmed;
    poisoned = t.poisoned;
    enabled = not t.disabled;
  }

let count_replay (t : t) = t.replayed <- t.replayed + 1
let count_execute (t : t) = t.executed <- t.executed + 1
