module Lru = Clara_util.Lru
module L = Clara_lnic

type region = Local | Ctm | Imem | Emem

type lat = { read : int; write : int; atomic : int }

type t = {
  local : lat;
  ctm : lat;
  imem : lat;
  emem : lat;
  emem_cache : Lru.t option;
  emem_hit_cycles : int;
  mutable hits : int;
  mutable misses : int;
}

let line_bytes = 64

let find_level (g : L.Graph.t) level =
  Array.to_list g.L.Graph.memories
  |> List.find_opt (fun m -> m.L.Memory.level = level)

let lat_of (m : L.Memory.t) =
  { read = m.L.Memory.read_cycles;
    write = m.L.Memory.write_cycles;
    atomic = m.L.Memory.atomic_cycles }

let create (g : L.Graph.t) =
  (* Missing levels fall back to the next slower one present. *)
  let ext = find_level g L.Memory.External in
  let int_ = find_level g L.Memory.Internal in
  let clu = find_level g L.Memory.Cluster in
  let loc = find_level g L.Memory.Local in
  let pick opts fallback =
    match List.find_opt Option.is_some opts with
    | Some (Some m) -> lat_of m
    | _ -> fallback
  in
  let emem_m = pick [ ext; int_; clu; loc ] { read = 500; write = 500; atomic = 550 } in
  let imem_m = pick [ int_; ext; clu; loc ] emem_m in
  let ctm_m = pick [ clu; int_ ] imem_m in
  let local_m = pick [ loc ] { read = 2; write = 2; atomic = 3 } in
  let cache, hit_cycles =
    match ext with
    | Some { L.Memory.cache = Some c; _ } ->
        ( Some (Lru.create ~capacity:(max 1 (c.L.Memory.cache_bytes / line_bytes))),
          c.L.Memory.hit_cycles )
    | _ -> (None, 0)
  in
  {
    local = local_m;
    ctm = ctm_m;
    imem = imem_m;
    emem = emem_m;
    emem_cache = cache;
    emem_hit_cycles = hit_cycles;
    hits = 0;
    misses = 0;
  }

let flat lat mode =
  match mode with `Read -> lat.read | `Write -> lat.write | `Atomic -> lat.atomic

type outcome = Hit | Miss | Uncached

let region_name = function
  | Local -> "local"
  | Ctm -> "ctm"
  | Imem -> "imem"
  | Emem -> "emem"

let access' t region ~mode ~addr =
  match region with
  | Local -> (flat t.local mode, Uncached)
  | Ctm -> (flat t.ctm mode, Uncached)
  | Imem -> (flat t.imem mode, Uncached)
  | Emem -> (
      match t.emem_cache with
      | None -> (flat t.emem mode, Uncached)
      | Some cache ->
          let line = addr / line_bytes in
          if Lru.touch cache line then begin
            t.hits <- t.hits + 1;
            match mode with
            | `Read | `Write -> (t.emem_hit_cycles, Hit)
            | `Atomic -> (flat t.emem mode, Hit)
          end
          else begin
            t.misses <- t.misses + 1;
            (flat t.emem mode, Miss)
          end)

let access t region ~mode ~addr = fst (access' t region ~mode ~addr)

let emem_hits t = t.hits
let emem_misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
