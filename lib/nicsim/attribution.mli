(** Bottleneck attribution over a recorded {!Trace}.

    Decomposes each completed packet's latency into five components —
    ingress queueing, compute, accelerator wait, memory stall, and wire
    (DMA + hub) — by summing the trace's span events per kind.  Because
    the engine's spans tile the [arrival, retire] interval exactly, the
    components of every packet sum to its recorded latency
    cycle-for-cycle; the same holds for the per-type means.

    Component mapping: [Queue_wait] → queue; [Compute] and [Accel_use] →
    compute (time the packet spends being worked on, wherever that
    happens); [Accel_wait] → accel-wait (pure serialization); [Mem_access]
    → mem; [Dma_wait], [Dma_xfer] and [Hub] → wire.

    Only packets whose [Arrival] {e and} [Retire] events both survived
    the ring are attributed: the ring drops oldest-first, so a surviving
    [Arrival] guarantees every later event of that packet survived too —
    partial timelines cannot occur. *)

type components = {
  queue : int;       (** Waiting in the ingress queue for a thread. *)
  compute : int;     (** Core compute spans + accelerator service time. *)
  accel_wait : int;  (** Blocked on a busy accelerator. *)
  mem : int;         (** Memory-tier accesses (incl. NUMA penalties). *)
  wire : int;        (** DMA wait + transfer and hub per-packet costs. *)
}

val ctotal : components -> int

type packet = {
  p_seq : int;
  p_prog : int;
  p_thread : int;
  p_type : string;   (** "tcp-syn", "tcp", "udp" or "other" (disjoint). *)
  p_arrival : int;
  p_retire : int;
  p_comp : components;  (** Sums to [p_retire - p_arrival] exactly. *)
}

type row = {
  r_prog : int;
  r_type : string;   (** A packet-type label, or "all" for the per-program total row. *)
  r_count : int;
  r_queue : float;
  r_compute : float;
  r_accel_wait : float;
  r_mem : float;
  r_wire : float;
  r_total : float;   (** Mean latency; equals the sum of the five means. *)
  r_dominant : string;
      (** Largest mean component: "queueing", "compute", "accel-wait",
          "memory" or "wire". *)
}

type report = {
  packets : packet array;  (** Completed packets, in sequence order. *)
  rows : row list;         (** Sorted by (program, type); per-program
                               "all" rows last within each program. *)
  progs : string array;    (** From {!Trace.progs}. *)
  incomplete : int;        (** Packets skipped for ring-truncated timelines. *)
}

val analyze : Trace.t -> report

val slowest : Trace.t -> report -> n:int -> (packet * Trace.event array) list
(** The [n] highest-latency packets, each with its full event timeline
    (events in record order), slowest first. *)

type util = {
  u_name : string;  (** "nat/threads(x240)", "checksum", "dma-rx[1]", "mem-emem", … *)
  u_busy : int;     (** Total busy cycles (across all lanes of a pool). *)
  u_util : float;   (** Busy fraction of the trace's time span. *)
  u_series : float array;  (** Busy fraction per fixed interval. *)
}

val utilization : ?interval:int -> Trace.t -> int * util list
(** Per-unit busy time: hardware threads (bind → retire, aggregated into
    one pool per program and normalized by the distinct threads seen),
    accelerators ([Accel_use]), DMA lanes ([Dma_xfer]) and memory tiers
    ([Mem_access]).  Memory tiers serve threads concurrently, so their
    occupancy can exceed 1.0 — a value of 26 means 26 accesses in flight
    on average, which is exactly the contention signal attribution is
    after.  Returns [(interval_cycles, units)]; [interval] defaults to
    1/64th of the trace's time span.  Units sorted by name. *)

val queue_depth : ?interval:int -> Trace.t -> int * (string * int array) list
(** Max ingress-queue depth per fixed interval, one series per program
    (sampled at [Arrival] events).  Returns [(interval_cycles, series)]. *)

val pp_report : Format.formatter -> report -> unit
(** The per-type attribution table with dominant-bottleneck verdicts. *)

val pp_slowest : Format.formatter -> (packet * Trace.event array) list -> unit
(** Compact text timelines for {!slowest} output. *)

val pp_utilization : Format.formatter -> int * util list -> unit
