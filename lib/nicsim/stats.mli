(** Latency and throughput aggregates from a simulator run. *)

type t

val create : unit -> t

val record :
  t -> proto:Clara_workload.Packet.proto -> syn:bool -> latency_cycles:int -> unit

val record_drop : t -> unit

val merge : t list -> t
(** Combine raw samples and accumulators from several runs (e.g. the
    shards of a domain-parallel simulation); deterministic in list
    order. *)

type summary = {
  packets : int;
  drops : int;
  mean_cycles : float;
  p50_cycles : int;
  p99_cycles : int;
  max_cycles : int;
  tcp_mean : float;    (** NaN when no TCP packets. *)
  udp_mean : float;
  syn_mean : float;
}

val summarize : t -> summary

val mean_ns : summary -> freq_mhz:int -> float
(** Mean latency converted to nanoseconds at a core clock. *)

val pp_summary : Format.formatter -> summary -> unit
