(** Steady-state fast-path memo table for the engine.

    Maps exact packet contents (raw fields, never the hashed flow key)
    to a resolved {!Device.profile}.  A key becomes eligible for
    analytic replay only after two sightings with byte-identical,
    untainted profiles (catching handler-side statefulness the Device
    layer cannot see); any taint or mismatch poisons it permanently.  A
    kill switch disables the whole table when [> 32] keys poisoned with
    none confirmed — a stateful NF — so recording overhead stops. *)

type t

val create : warmup:int -> t
(** Replay is additionally gated on packet sequence number [>= warmup],
    so early packets always exercise the event path (cold caches). *)

type decision =
  | Replay of Device.profile  (** confirmed, past warm-up: skip execution *)
  | Record                    (** execute with a recorder armed *)
  | Plain                     (** execute, no recording *)

val decide : t -> seq:int -> Clara_workload.Packet.t -> decision

val note : t -> Clara_workload.Packet.t -> Device.profile option -> unit
(** Report an executed packet's captured profile ([None] = tainted). *)

type stats = {
  replayed : int;
  executed : int;
  confirmed : int;
  poisoned : int;
  enabled : bool;
}

val stats : t -> stats
val count_replay : t -> unit
val count_execute : t -> unit
