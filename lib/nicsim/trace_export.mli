(** Trace export: Chrome/Perfetto [trace_event] JSON and a compact text
    timeline.

    The Perfetto layout puts each program in its own process (pid 1 for
    the first program, 2 for the second, …) with one track per hardware
    thread, and all shared hardware — accelerators, DMA lanes, memory
    tiers — in process 0, so contention between co-resident programs is
    visible on a single shared timeline (events on shared-unit tracks
    carry the owning program's name).  Timestamps are microseconds
    (cycles / frequency); load the file at ui.perfetto.dev or
    chrome://tracing. *)

val perfetto : Trace.t -> freq_mhz:int -> Clara_util.Json.t
(** The full [{"traceEvents": [...]}] document: ["X"] complete events
    for spans, ["i"] instants for arrival/retire/drop, ["M"] metadata
    naming processes and threads, and ["C"] counters for ingress queue
    depth. *)

val write_perfetto : Trace.t -> freq_mhz:int -> path:string -> unit

val pp_text : ?limit:int -> Format.formatter -> Trace.t -> unit
(** Compact per-event text timeline (at most [limit] events, default
    200), oldest first. *)
