module L = Clara_lnic
module W = Clara_workload
module Heap = Clara_util.Heap
module J = Clara_util.Json

(* Per-run packet/drop counters and an ingress queue-depth histogram,
   hoisted so the per-packet path only bumps preallocated cells. *)
let obs = Clara_obs.Registry.default
let c_packets = Clara_obs.Registry.counter obs "nicsim.packets"
let c_drops = Clara_obs.Registry.counter obs "nicsim.drops"
let c_runs = Clara_obs.Registry.counter obs "nicsim.runs"
let h_qdepth = Clara_obs.Registry.histogram obs "nicsim.queue_depth"

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;
  flow_cache_hit_rate : float;
  freq_mhz : int;
}

(* Retire [arg] packs the packet type so attribution can bucket by it
   without keeping packets around. *)
let retire_arg pkt =
  (W.Packet.proto_number pkt.W.Packet.proto * 2) + if W.Packet.is_syn pkt then 1 else 0

let[@inline] ev sink ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg =
  match sink with
  | None -> ()
  | Some s -> Trace.record s ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg

let run ?threads ?sink lnic (prog : Device.prog) (trace : W.Trace.t) =
  Clara_obs.Registry.span obs "nicsim" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let sim = Device.create_sim lnic prog in
  let freq_mhz =
    match L.Graph.general_cores lnic with
    | u :: _ -> u.L.Unit_.freq_mhz
    | [] -> invalid_arg "Engine.run: NIC has no general cores"
  in
  let nthreads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let queue_capacity =
    match
      List.find_opt (fun h -> h.L.Hub.kind = `Ingress) (Array.to_list lnic.L.Graph.hubs)
    with
    | Some h -> h.L.Hub.queue_capacity
    | None -> 512
  in
  (match sink with None -> () | Some s -> Trace.set_progs s [| prog.Device.name |]);
  (* ns -> cycles at the core clock. *)
  let cycles_of_ns ns = Int64.to_int (Int64.div (Int64.mul ns (Int64.of_int freq_mhz)) 1000L) in
  let thread_free = Array.make nthreads 0 in
  let stats = Stats.create () in
  (* Completion times of accepted-but-unfinished packets, for queue-depth
     accounting.  A min-heap, not a FIFO: with multiple threads the
     completion times are not monotone in arrival order, and retiring in
     FIFO order would leave early finishers stuck behind a slow packet,
     overstating the queue depth and firing spurious drops. *)
  let inflight = Heap.create () in
  let seq = ref (-1) in
  W.Trace.iter
    (fun pkt ->
      incr seq;
      let seq = !seq in
      let arrival = cycles_of_ns pkt.W.Packet.arrival_ns in
      (* Retire completed packets from the in-flight window. *)
      while (not (Heap.is_empty inflight)) && Heap.min_elt inflight <= arrival do
        ignore (Heap.pop inflight)
      done;
      let depth = Heap.length inflight in
      Clara_obs.Metrics.observe h_qdepth depth;
      ev sink ~seq ~prog:0 ~thread:(-1) ~kind:Trace.Arrival ~label:"" ~t0:arrival
        ~t1:arrival ~arg:depth;
      if depth >= queue_capacity + nthreads then begin
        (* Ingress queue full: drop. *)
        Clara_obs.Metrics.incr c_drops;
        Stats.record_drop stats;
        ev sink ~seq ~prog:0 ~thread:(-1) ~kind:Trace.Dropped ~label:"" ~t0:arrival
          ~t1:arrival ~arg:depth
      end
      else begin
        (* Earliest-free thread. *)
        let ti = ref 0 in
        for i = 1 to nthreads - 1 do
          if thread_free.(i) < thread_free.(!ti) then ti := i
        done;
        let start = max arrival thread_free.(!ti) in
        if start > arrival then
          ev sink ~seq ~prog:0 ~thread:!ti ~kind:Trace.Queue_wait ~label:"" ~t0:arrival
            ~t1:start ~arg:depth;
        ev sink ~seq ~prog:0 ~thread:!ti ~kind:Trace.Thread_bind ~label:"" ~t0:start
          ~t1:start ~arg:!ti;
        let ctx = Device.make_ctx ~seq ~prog:0 ~thread:!ti ?trace:sink sim ~now:start pkt in
        Device.wire_rx ctx;
        let verdict = prog.Device.handler ctx pkt in
        (match verdict with
        | Device.Emit -> Device.wire_tx ctx
        | Device.Drop -> ());
        let done_ = Device.now ctx in
        thread_free.(!ti) <- done_;
        Heap.push inflight done_;
        Clara_obs.Metrics.incr c_packets;
        ev sink ~seq ~prog:0 ~thread:!ti ~kind:Trace.Retire ~label:"" ~t0:done_ ~t1:done_
          ~arg:(retire_arg pkt);
        Stats.record stats ~proto:pkt.W.Packet.proto ~syn:(W.Packet.is_syn pkt)
          ~latency_cycles:(done_ - arrival)
      end)
    trace;
  let memm = Device.mem sim in
  let ratio h m =
    let t = h + m in
    if t = 0 then Float.nan else float_of_int h /. float_of_int t
  in
  {
    summary = Stats.summarize stats;
    emem_hit_rate = ratio (Mem_model.emem_hits memm) (Mem_model.emem_misses memm);
    flow_cache_hit_rate =
      ratio (Device.flow_cache_hits sim) (Device.flow_cache_misses sim);
    freq_mhz;
  }

let mean_latency_cycles r = r.summary.Stats.mean_cycles

let pp_hit_rate fmt r =
  (* A rate can legitimately be NaN (feature never exercised); say so
     instead of printing "nan%". *)
  if Float.is_nan r then Format.pp_print_string fmt "n/a"
  else Format.fprintf fmt "%.0f%%" (100. *. r)

let pp_result fmt r =
  Format.fprintf fmt "%a | emem hit %a | fc hit %a" Stats.pp_summary r.summary pp_hit_rate
    r.emem_hit_rate pp_hit_rate r.flow_cache_hit_rate

let result_to_json r =
  let num v = J.Float v (* NaN/inf serialize as null *) in
  J.Obj
    [
      ("packets", J.Int r.summary.Stats.packets);
      ("drops", J.Int r.summary.Stats.drops);
      ("mean_cycles", num r.summary.Stats.mean_cycles);
      ("p50_cycles", J.Int r.summary.Stats.p50_cycles);
      ("p99_cycles", J.Int r.summary.Stats.p99_cycles);
      ("max_cycles", J.Int r.summary.Stats.max_cycles);
      ("tcp_mean_cycles", num r.summary.Stats.tcp_mean);
      ("udp_mean_cycles", num r.summary.Stats.udp_mean);
      ("syn_mean_cycles", num r.summary.Stats.syn_mean);
      ("emem_hit_rate", num r.emem_hit_rate);
      ("flow_cache_hit_rate", num r.flow_cache_hit_rate);
      ("freq_mhz", J.Int r.freq_mhz);
    ]

let run_pair ?threads ?sink lnic (prog_a : Device.prog) (prog_b : Device.prog)
    (trace_a : W.Trace.t) (trace_b : W.Trace.t) =
  Clara_obs.Registry.span obs "nicsim-pair" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let sim = Device.create_sim_shared lnic [ prog_a; prog_b ] in
  let freq_mhz =
    match L.Graph.general_cores lnic with
    | u :: _ -> u.L.Unit_.freq_mhz
    | [] -> invalid_arg "Engine.run_pair: NIC has no general cores"
  in
  let total_threads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let half_threads = max 1 (total_threads / 2) in
  (* Halving the ingress queue must never round a small hub down to
     zero capacity, which would drop every queued packet. *)
  let queue_capacity =
    max 1
      ((match
          List.find_opt
            (fun h -> h.L.Hub.kind = `Ingress)
            (Array.to_list lnic.L.Graph.hubs)
        with
       | Some h -> h.L.Hub.queue_capacity
       | None -> 512)
      / 2)
  in
  (match sink with
  | None -> ()
  | Some s -> Trace.set_progs s [| prog_a.Device.name; prog_b.Device.name |]);
  let cycles_of_ns ns =
    Int64.to_int (Int64.div (Int64.mul ns (Int64.of_int freq_mhz)) 1000L)
  in
  (* Merge the two arrival streams. *)
  let tagged =
    Array.append
      (Array.map (fun p -> (p, `A)) trace_a.W.Trace.packets)
      (Array.map (fun p -> (p, `B)) trace_b.W.Trace.packets)
  in
  Array.sort (fun (p, _) (q, _) -> compare p.W.Packet.arrival_ns q.W.Packet.arrival_ns) tagged;
  let mk_side prog =
    (prog, Array.make half_threads 0, Stats.create (), Heap.create ())
  in
  let side_a = mk_side prog_a and side_b = mk_side prog_b in
  let seq = ref (-1) in
  Array.iter
    (fun (pkt, tag) ->
      incr seq;
      let seq = !seq in
      let (prog : Device.prog), thread_free, stats, inflight =
        match tag with `A -> side_a | `B -> side_b
      in
      let pid = match tag with `A -> 0 | `B -> 1 in
      let arrival = cycles_of_ns pkt.W.Packet.arrival_ns in
      while (not (Heap.is_empty inflight)) && Heap.min_elt inflight <= arrival do
        ignore (Heap.pop inflight)
      done;
      let depth = Heap.length inflight in
      Clara_obs.Metrics.observe h_qdepth depth;
      ev sink ~seq ~prog:pid ~thread:(-1) ~kind:Trace.Arrival ~label:"" ~t0:arrival
        ~t1:arrival ~arg:depth;
      if depth >= queue_capacity + half_threads then begin
        Clara_obs.Metrics.incr c_drops;
        Stats.record_drop stats;
        ev sink ~seq ~prog:pid ~thread:(-1) ~kind:Trace.Dropped ~label:"" ~t0:arrival
          ~t1:arrival ~arg:depth
      end
      else begin
        let ti = ref 0 in
        for i = 1 to half_threads - 1 do
          if thread_free.(i) < thread_free.(!ti) then ti := i
        done;
        let start = max arrival thread_free.(!ti) in
        if start > arrival then
          ev sink ~seq ~prog:pid ~thread:!ti ~kind:Trace.Queue_wait ~label:"" ~t0:arrival
            ~t1:start ~arg:depth;
        ev sink ~seq ~prog:pid ~thread:!ti ~kind:Trace.Thread_bind ~label:"" ~t0:start
          ~t1:start ~arg:!ti;
        let ctx =
          Device.make_ctx ~seq ~prog:pid ~thread:!ti ?trace:sink sim ~now:start pkt
        in
        Device.wire_rx ctx;
        let verdict = prog.Device.handler ctx pkt in
        (match verdict with
        | Device.Emit -> Device.wire_tx ctx
        | Device.Drop -> ());
        let done_ = Device.now ctx in
        thread_free.(!ti) <- done_;
        Heap.push inflight done_;
        Clara_obs.Metrics.incr c_packets;
        ev sink ~seq ~prog:pid ~thread:!ti ~kind:Trace.Retire ~label:"" ~t0:done_
          ~t1:done_ ~arg:(retire_arg pkt);
        Stats.record stats ~proto:pkt.W.Packet.proto ~syn:(W.Packet.is_syn pkt)
          ~latency_cycles:(done_ - arrival)
      end)
    tagged;
  let memm = Device.mem sim in
  let ratio h m =
    let t = h + m in
    if t = 0 then Float.nan else float_of_int h /. float_of_int t
  in
  let finish (_, _, stats, _) =
    {
      summary = Stats.summarize stats;
      emem_hit_rate = ratio (Mem_model.emem_hits memm) (Mem_model.emem_misses memm);
      flow_cache_hit_rate = ratio (Device.flow_cache_hits sim) (Device.flow_cache_misses sim);
      freq_mhz;
    }
  in
  (finish side_a, finish side_b)
