module L = Clara_lnic
module W = Clara_workload
module Heap = Clara_util.Heap
module Pool = Clara_util.Pool
module J = Clara_util.Json

(* Per-run packet/drop counters and an ingress queue-depth histogram,
   hoisted so the per-packet path only bumps preallocated cells. *)
let obs = Clara_obs.Registry.default
let c_packets = Clara_obs.Registry.counter obs "nicsim.packets"
let c_drops = Clara_obs.Registry.counter obs "nicsim.drops"
let c_runs = Clara_obs.Registry.counter obs "nicsim.runs"
let h_qdepth = Clara_obs.Registry.histogram obs "nicsim.queue_depth"

type fast_mode = Event_only | Auto of { warmup : int }

let no_fast : Fastpath.stats =
  { Fastpath.replayed = 0; executed = 0; confirmed = 0; poisoned = 0; enabled = false }

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;
  flow_cache_hit_rate : float;
  freq_mhz : int;
  fast : Fastpath.stats;
}

let ratio h m =
  let t = h + m in
  if t = 0 then Float.nan else float_of_int h /. float_of_int t

(* Retire [arg] packs the packet type so attribution can bucket by it
   without keeping packets around. *)
let retire_arg pkt =
  (W.Packet.proto_number pkt.W.Packet.proto * 2) + if W.Packet.is_syn pkt then 1 else 0

let[@inline] ev sink ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg =
  match sink with
  | None -> ()
  | Some s -> Trace.record s ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg

let freq_of ~who lnic =
  match L.Graph.general_cores lnic with
  | u :: _ -> u.L.Unit_.freq_mhz
  | [] -> invalid_arg (who ^ ": NIC has no general cores")

let default_queue_capacity lnic =
  match
    List.find_opt (fun h -> h.L.Hub.kind = `Ingress) (Array.to_list lnic.L.Graph.hubs)
  with
  | Some h -> h.L.Hub.queue_capacity
  | None -> 512

(* Earliest-free thread selection.  A lexicographic (free_cycle, index)
   binary heap picks exactly the thread the naive scan would — earliest
   free, lowest index on ties — in O(log n) instead of O(n).  Dispatch
   always takes the root and re-inserts it with a later free time, so
   the heap never changes size: update the root in place and sift down.
   With the fast path replaying a packet in well under a microsecond, a
   480-thread NIC's linear scan would otherwise dominate the cost. *)
module Tpool = struct
  type t = { free : int array; idx : int array; n : int }

  (* free = 0, idx ascending satisfies the heap invariant. *)
  let create n = { free = Array.make n 0; idx = Array.init n (fun i -> i); n }

  let[@inline] less t a b =
    t.free.(a) < t.free.(b) || (t.free.(a) = t.free.(b) && t.idx.(a) < t.idx.(b))

  let[@inline] min_index t = t.idx.(0)
  let[@inline] min_free t = t.free.(0)

  let set_min_free t f =
    t.free.(0) <- f;
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.n && less t l !s then s := l;
      if r < t.n && less t r !s then s := r;
      if !s = !i then stop := true
      else begin
        let tf = t.free.(!i) in
        t.free.(!i) <- t.free.(!s);
        t.free.(!s) <- tf;
        let ti = t.idx.(!i) in
        t.idx.(!i) <- t.idx.(!s);
        t.idx.(!s) <- ti;
        i := !s
      end
    done
end

(* ------------------------------------------------------------------ *)
(* The one dispatch core.  [run], [run_pair] and [run_sharded] all feed
   packets through here: a side is one program's slice of the NIC (its
   threads, its share of the ingress queue, its stats/in-flight window,
   and optionally its fast-path memo table).  The fast path and every
   trace event therefore exist exactly once. *)

type side = {
  prog : Device.prog;
  pid : int;
  threads : Tpool.t;
  stats : Stats.t;
  inflight : Heap.t;
  capacity : int;
  fp : Fastpath.t option;
  recorder : Device.recorder;  (* reused across packets; make_ctx rearms *)
}

let make_side ~pid ~nthreads ~capacity ~fp prog =
  {
    prog;
    pid;
    threads = Tpool.create nthreads;
    stats = Stats.create ();
    inflight = Heap.create ();
    capacity;
    fp;
    recorder = Device.fresh_recorder ();
  }

(* [obs_on] gates the process-global metrics: sharded workers run on
   other domains, where the registry's plain mutable cells must not be
   touched concurrently. *)
let dispatch ~sim ~sink ~obs_on ~cycles_of_ns side ~seq (pkt : W.Packet.t) =
  let arrival = cycles_of_ns pkt.W.Packet.arrival_ns in
  let inflight = side.inflight in
  (* Retire completed packets from the in-flight window. *)
  while (not (Heap.is_empty inflight)) && Heap.min_elt inflight <= arrival do
    ignore (Heap.pop inflight)
  done;
  let depth = Heap.length inflight in
  if obs_on then Clara_obs.Metrics.observe h_qdepth depth;
  ev sink ~seq ~prog:side.pid ~thread:(-1) ~kind:Trace.Arrival ~label:"" ~t0:arrival
    ~t1:arrival ~arg:depth;
  let nthreads = side.threads.Tpool.n in
  if depth >= side.capacity + nthreads then begin
    (* Ingress queue full: drop. *)
    if obs_on then Clara_obs.Metrics.incr c_drops;
    Stats.record_drop side.stats;
    ev sink ~seq ~prog:side.pid ~thread:(-1) ~kind:Trace.Dropped ~label:"" ~t0:arrival
      ~t1:arrival ~arg:depth
  end
  else begin
    (* Earliest-free thread (lowest index on ties). *)
    let ti = Tpool.min_index side.threads in
    let start = max arrival (Tpool.min_free side.threads) in
    if start > arrival then
      ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Queue_wait ~label:"" ~t0:arrival
        ~t1:start ~arg:depth;
    ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Thread_bind ~label:"" ~t0:start
      ~t1:start ~arg:ti;
    let execute ?recorder () =
      let ctx =
        Device.make_ctx ~seq ~prog:side.pid ~thread:ti ?trace:sink ?recorder sim
          ~now:start pkt
      in
      Device.wire_rx ctx;
      (match side.prog.Device.handler ctx pkt with
      | Device.Emit -> Device.wire_tx ctx
      | Device.Drop -> ());
      ctx
    in
    let done_ =
      match side.fp with
      | None -> Device.now (execute ())
      | Some fp -> (
          match Fastpath.decide fp ~seq pkt with
          | Fastpath.Replay p ->
              Fastpath.count_replay fp;
              Device.replay sim ~start p
          | Fastpath.Record ->
              Fastpath.count_execute fp;
              let ctx = execute ~recorder:side.recorder () in
              Fastpath.note fp pkt (Device.recorded ctx);
              Device.now ctx
          | Fastpath.Plain ->
              Fastpath.count_execute fp;
              Device.now (execute ()))
    in
    Tpool.set_min_free side.threads done_;
    Heap.push inflight done_;
    if obs_on then Clara_obs.Metrics.incr c_packets;
    ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Retire ~label:"" ~t0:done_
      ~t1:done_ ~arg:(retire_arg pkt);
    Stats.record side.stats ~proto:pkt.W.Packet.proto ~syn:(W.Packet.is_syn pkt)
      ~latency_cycles:(done_ - arrival)
  end

let[@inline] cycles_of_ns_at freq_mhz ns =
  Int64.to_int (Int64.div (Int64.mul ns (Int64.of_int freq_mhz)) 1000L)

(* Tracing replays nothing: a replayed packet would emit no events, so
   any sink forces the event path (keeping traced and untraced results
   byte-identical, which the bench trace guard checks). *)
let fastpath_of fast sink =
  match (fast, sink) with
  | Auto { warmup }, None -> Some (Fastpath.create ~warmup)
  | _ -> None

let finish sim ~freq_mhz side =
  {
    summary = Stats.summarize side.stats;
    emem_hit_rate =
      ratio (Device.emem_hits_of sim side.pid) (Device.emem_misses_of sim side.pid);
    flow_cache_hit_rate =
      ratio
        (Device.flow_cache_hits_of sim side.pid)
        (Device.flow_cache_misses_of sim side.pid);
    freq_mhz;
    fast = (match side.fp with Some fp -> Fastpath.stats fp | None -> no_fast);
  }

(* Single-program run against one sim; shared by [run] (full NIC,
   metrics on) and [run_sharded]'s workers (a 1/shards slice, metrics
   off).  Returns the side so sharding can merge raw stats. *)
let run_core ?threads ?queue_capacity ?sink ~fast ~obs_on lnic (prog : Device.prog)
    (trace : W.Trace.t) =
  let sim = Device.create_sim lnic prog in
  let freq_mhz = freq_of ~who:"Engine.run" lnic in
  let nthreads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let capacity =
    match queue_capacity with Some c -> max 1 c | None -> default_queue_capacity lnic
  in
  (match sink with None -> () | Some s -> Trace.set_progs s [| prog.Device.name |]);
  let side =
    make_side ~pid:0 ~nthreads ~capacity ~fp:(fastpath_of fast sink) prog
  in
  let cycles_of_ns = cycles_of_ns_at freq_mhz in
  let seq = ref (-1) in
  W.Trace.iter
    (fun pkt ->
      incr seq;
      dispatch ~sim ~sink ~obs_on ~cycles_of_ns side ~seq:!seq pkt)
    trace;
  (side, sim, freq_mhz)

let run ?threads ?sink ?(fast = Event_only) lnic prog trace =
  Clara_obs.Registry.span obs "nicsim" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let side, sim, freq_mhz = run_core ?threads ?sink ~fast ~obs_on:true lnic prog trace in
  finish sim ~freq_mhz side

let mean_latency_cycles r = r.summary.Stats.mean_cycles

let pp_hit_rate fmt r =
  (* A rate can legitimately be NaN (feature never exercised); say so
     instead of printing "nan%". *)
  if Float.is_nan r then Format.pp_print_string fmt "n/a"
  else Format.fprintf fmt "%.0f%%" (100. *. r)

let pp_result fmt r =
  Format.fprintf fmt "%a | emem hit %a | fc hit %a" Stats.pp_summary r.summary pp_hit_rate
    r.emem_hit_rate pp_hit_rate r.flow_cache_hit_rate;
  if r.fast.Fastpath.replayed > 0 then
    Format.fprintf fmt " | fast %d/%d replayed" r.fast.Fastpath.replayed
      (r.fast.Fastpath.replayed + r.fast.Fastpath.executed)

let result_to_json r =
  let num v = J.Float v (* NaN/inf serialize as null *) in
  J.Obj
    [
      ("packets", J.Int r.summary.Stats.packets);
      ("drops", J.Int r.summary.Stats.drops);
      ("mean_cycles", num r.summary.Stats.mean_cycles);
      ("p50_cycles", J.Int r.summary.Stats.p50_cycles);
      ("p99_cycles", J.Int r.summary.Stats.p99_cycles);
      ("max_cycles", J.Int r.summary.Stats.max_cycles);
      ("tcp_mean_cycles", num r.summary.Stats.tcp_mean);
      ("udp_mean_cycles", num r.summary.Stats.udp_mean);
      ("syn_mean_cycles", num r.summary.Stats.syn_mean);
      ("emem_hit_rate", num r.emem_hit_rate);
      ("flow_cache_hit_rate", num r.flow_cache_hit_rate);
      ("freq_mhz", J.Int r.freq_mhz);
      ("fast_replayed", J.Int r.fast.Fastpath.replayed);
      ("fast_executed", J.Int r.fast.Fastpath.executed);
      ("fast_confirmed", J.Int r.fast.Fastpath.confirmed);
      ("fast_poisoned", J.Int r.fast.Fastpath.poisoned);
      ("fast_enabled", J.Bool r.fast.Fastpath.enabled);
    ]

let run_pair ?threads ?sink ?(fast = Event_only) lnic (prog_a : Device.prog)
    (prog_b : Device.prog) (trace_a : W.Trace.t) (trace_b : W.Trace.t) =
  Clara_obs.Registry.span obs "nicsim-pair" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let sim = Device.create_sim_shared lnic [ prog_a; prog_b ] in
  let freq_mhz = freq_of ~who:"Engine.run_pair" lnic in
  let total_threads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let half_threads = max 1 (total_threads / 2) in
  (* Halving the ingress queue must never round a small hub down to
     zero capacity, which would drop every queued packet. *)
  let capacity = max 1 (default_queue_capacity lnic / 2) in
  (match sink with
  | None -> ()
  | Some s -> Trace.set_progs s [| prog_a.Device.name; prog_b.Device.name |]);
  (* Merge the two arrival streams.  The comparator must totally order
     every pair: with ties broken on (arrival, side, source index) the
     merge is deterministic even when A and B packets share a timestamp
     — a bare arrival comparison under an unstable sort interleaved
     equal-time packets unpredictably. *)
  let tagged =
    Array.append
      (Array.mapi (fun i p -> (p, 0, i)) trace_a.W.Trace.packets)
      (Array.mapi (fun i p -> (p, 1, i)) trace_b.W.Trace.packets)
  in
  Array.sort
    (fun (p, ta, ia) (q, tb, ib) ->
      let c = compare p.W.Packet.arrival_ns q.W.Packet.arrival_ns in
      if c <> 0 then c
      else
        let c = compare ta tb in
        if c <> 0 then c else compare ia ib)
    tagged;
  let mk pid prog =
    make_side ~pid ~nthreads:half_threads ~capacity ~fp:(fastpath_of fast sink) prog
  in
  let sides = [| mk 0 prog_a; mk 1 prog_b |] in
  let cycles_of_ns = cycles_of_ns_at freq_mhz in
  let seq = ref (-1) in
  Array.iter
    (fun (pkt, pid, _) ->
      incr seq;
      dispatch ~sim ~sink ~obs_on:true ~cycles_of_ns sides.(pid) ~seq:!seq pkt)
    tagged;
  (finish sim ~freq_mhz sides.(0), finish sim ~freq_mhz sides.(1))

(* ------------------------------------------------------------------ *)
(* Domain-parallel simulation: flows are sharded onto independent NIC
   slices (1/shards of the threads and ingress queue each, like
   [run_pair]'s halving), the slices simulate concurrently on the shared
   worker pool, and raw stats merge in shard order — so the merged
   result depends on the shard count, never on the domain count. *)

let add_fast (a : Fastpath.stats) (b : Fastpath.stats) =
  {
    Fastpath.replayed = a.Fastpath.replayed + b.Fastpath.replayed;
    executed = a.Fastpath.executed + b.Fastpath.executed;
    confirmed = a.Fastpath.confirmed + b.Fastpath.confirmed;
    poisoned = a.Fastpath.poisoned + b.Fastpath.poisoned;
    enabled = a.Fastpath.enabled || b.Fastpath.enabled;
  }

let run_sharded ?(domains = 1) ?shards ?threads ?(fast = Event_only) lnic
    (prog : Device.prog) (trace : W.Trace.t) =
  Clara_obs.Registry.span obs "nicsim-sharded" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let shards = match shards with Some s -> max 1 s | None -> max 1 domains in
  let freq_mhz = freq_of ~who:"Engine.run_sharded" lnic in
  let total_threads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let per_threads = max 1 (total_threads / shards) in
  let per_capacity = max 1 (default_queue_capacity lnic / shards) in
  (* Partition by flow so no flow spans two slices; arrival order is
     preserved within each shard. *)
  let parts = Array.make shards [] in
  let packets = trace.W.Trace.packets in
  for i = Array.length packets - 1 downto 0 do
    let p = packets.(i) in
    let s = W.Packet.flow_key p mod shards in
    parts.(s) <- p :: parts.(s)
  done;
  let sub = Array.map (fun l -> W.Trace.of_packets (Array.of_list l)) parts in
  let outcomes, _pool_stats =
    Pool.map ~domains
      (fun i ->
        run_core ~threads:per_threads ~queue_capacity:per_capacity ~fast ~obs_on:false
          lnic prog sub.(i))
      shards
  in
  let done_ =
    Array.map
      (function
        | Pool.Done r -> r
        | Pool.Failed m -> failwith ("Engine.run_sharded: shard failed: " ^ m))
      outcomes
  in
  (* The workers could not touch the global metrics; account the merged
     totals once, from the coordinating domain. *)
  let stats_all = Array.to_list (Array.map (fun (side, _, _) -> side.stats) done_) in
  let merged = Stats.merge stats_all in
  let summary = Stats.summarize merged in
  Clara_obs.Metrics.add c_packets summary.Stats.packets;
  Clara_obs.Metrics.add c_drops summary.Stats.drops;
  let sum f = Array.fold_left (fun a (side, sim, _) -> a + f sim side.pid) 0 done_ in
  {
    summary;
    emem_hit_rate = ratio (sum Device.emem_hits_of) (sum Device.emem_misses_of);
    flow_cache_hit_rate =
      ratio (sum Device.flow_cache_hits_of) (sum Device.flow_cache_misses_of);
    freq_mhz;
    fast =
      Array.fold_left
        (fun acc (side, _, _) ->
          match side.fp with Some fp -> add_fast acc (Fastpath.stats fp) | None -> acc)
        no_fast done_;
  }
