module L = Clara_lnic
module W = Clara_workload
module Heap = Clara_util.Heap
module Pool = Clara_util.Pool
module J = Clara_util.Json

(* Per-run packet/drop counters and an ingress queue-depth histogram,
   hoisted so the per-packet path only bumps preallocated cells. *)
let obs = Clara_obs.Registry.default
let c_packets = Clara_obs.Registry.counter obs "nicsim.packets"
let c_drops = Clara_obs.Registry.counter obs "nicsim.drops"
let c_runs = Clara_obs.Registry.counter obs "nicsim.runs"
let h_qdepth = Clara_obs.Registry.histogram obs "nicsim.queue_depth"

type fast_mode = Event_only | Auto of { warmup : int }

let no_fast : Fastpath.stats =
  { Fastpath.replayed = 0; executed = 0; confirmed = 0; poisoned = 0; enabled = false }

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;
  flow_cache_hit_rate : float;
  freq_mhz : int;
  fast : Fastpath.stats;
}

let ratio h m =
  let t = h + m in
  if t = 0 then Float.nan else float_of_int h /. float_of_int t

(* Retire [arg] packs the packet type so attribution can bucket by it
   without keeping packets around. *)
let retire_arg pkt =
  (W.Packet.proto_number pkt.W.Packet.proto * 2) + if W.Packet.is_syn pkt then 1 else 0

let[@inline] ev sink ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg =
  match sink with
  | None -> ()
  | Some s -> Trace.record s ~seq ~prog ~thread ~kind ~label ~t0 ~t1 ~arg

let freq_of ~who lnic =
  match L.Graph.general_cores lnic with
  | u :: _ -> u.L.Unit_.freq_mhz
  | [] -> invalid_arg (who ^ ": NIC has no general cores")

let default_queue_capacity lnic =
  match
    List.find_opt (fun h -> h.L.Hub.kind = `Ingress) (Array.to_list lnic.L.Graph.hubs)
  with
  | Some h -> h.L.Hub.queue_capacity
  | None -> 512

(* Earliest-free thread selection.  A lexicographic (free_cycle, index)
   binary heap picks exactly the thread the naive scan would — earliest
   free, lowest index on ties — in O(log n) instead of O(n).  Dispatch
   always takes the root and re-inserts it with a later free time, so
   the heap never changes size: update the root in place and sift down.
   With the fast path replaying a packet in well under a microsecond, a
   480-thread NIC's linear scan would otherwise dominate the cost. *)
module Tpool = struct
  type t = { free : int array; idx : int array; n : int }

  (* free = 0, idx ascending satisfies the heap invariant. *)
  let create n = { free = Array.make n 0; idx = Array.init n (fun i -> i); n }

  let[@inline] less t a b =
    t.free.(a) < t.free.(b) || (t.free.(a) = t.free.(b) && t.idx.(a) < t.idx.(b))

  let[@inline] min_index t = t.idx.(0)
  let[@inline] min_free t = t.free.(0)

  let set_min_free t f =
    t.free.(0) <- f;
    let i = ref 0 in
    let stop = ref false in
    while not !stop do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let s = ref !i in
      if l < t.n && less t l !s then s := l;
      if r < t.n && less t r !s then s := r;
      if !s = !i then stop := true
      else begin
        let tf = t.free.(!i) in
        t.free.(!i) <- t.free.(!s);
        t.free.(!s) <- tf;
        let ti = t.idx.(!i) in
        t.idx.(!i) <- t.idx.(!s);
        t.idx.(!s) <- ti;
        i := !s
      end
    done
end

(* ------------------------------------------------------------------ *)
(* The one dispatch core.  [run], [run_pair] and [run_sharded] all feed
   packets through here: a side is one program's slice of the NIC (its
   threads, its share of the ingress queue, its stats/in-flight window,
   and optionally its fast-path memo table).  The fast path and every
   trace event therefore exist exactly once. *)

type side = {
  prog : Device.prog;
  pid : int;
  threads : Tpool.t;
  stats : Stats.t;
  inflight : Heap.t;
  capacity : int;
  fp : Fastpath.t option;
  recorder : Device.recorder;  (* reused across packets; make_ctx rearms *)
}

let make_side ~pid ~nthreads ~capacity ~fp prog =
  {
    prog;
    pid;
    threads = Tpool.create nthreads;
    stats = Stats.create ();
    inflight = Heap.create ();
    capacity;
    fp;
    recorder = Device.fresh_recorder ();
  }

(* [obs_on] gates the process-global metrics: sharded workers run on
   other domains, where the registry's plain mutable cells must not be
   touched concurrently.  [tel] is the optional sim-time telemetry
   collector: like [sink], every hook is one [match], so runs without
   [--metrics] do no telemetry work at all. *)
let dispatch ~sim ~sink ~obs_on ~tel ~cycles_of_ns side ~seq (pkt : W.Packet.t) =
  let arrival = cycles_of_ns pkt.W.Packet.arrival_ns in
  let inflight = side.inflight in
  (* Retire completed packets from the in-flight window. *)
  while (not (Heap.is_empty inflight)) && Heap.min_elt inflight <= arrival do
    ignore (Heap.pop inflight)
  done;
  let depth = Heap.length inflight in
  if obs_on then Clara_obs.Metrics.observe h_qdepth depth;
  (match tel with
  | None -> ()
  | Some t -> Telemetry.on_arrival t ~tenant:side.pid ~now:arrival ~depth);
  ev sink ~seq ~prog:side.pid ~thread:(-1) ~kind:Trace.Arrival ~label:"" ~t0:arrival
    ~t1:arrival ~arg:depth;
  let nthreads = side.threads.Tpool.n in
  if depth >= side.capacity + nthreads then begin
    (* Ingress queue full: drop. *)
    if obs_on then Clara_obs.Metrics.incr c_drops;
    Stats.record_drop side.stats;
    (match tel with
    | None -> ()
    | Some t -> Telemetry.on_drop t ~tenant:side.pid ~now:arrival);
    ev sink ~seq ~prog:side.pid ~thread:(-1) ~kind:Trace.Dropped ~label:"" ~t0:arrival
      ~t1:arrival ~arg:depth
  end
  else begin
    (* Earliest-free thread (lowest index on ties). *)
    let ti = Tpool.min_index side.threads in
    let start = max arrival (Tpool.min_free side.threads) in
    if start > arrival then
      ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Queue_wait ~label:"" ~t0:arrival
        ~t1:start ~arg:depth;
    ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Thread_bind ~label:"" ~t0:start
      ~t1:start ~arg:ti;
    let execute ?recorder () =
      let ctx =
        Device.make_ctx ~seq ~prog:side.pid ~thread:ti ?trace:sink ?recorder sim
          ~now:start pkt
      in
      Device.wire_rx ctx;
      (match side.prog.Device.handler ctx pkt with
      | Device.Emit -> Device.wire_tx ctx
      | Device.Drop -> ());
      ctx
    in
    let[@inline] tel_fast replayed =
      match tel with
      | None -> ()
      | Some t -> Telemetry.on_fast t ~now:arrival ~replayed
    in
    let done_ =
      match side.fp with
      | None ->
          tel_fast false;
          Device.now (execute ())
      | Some fp -> (
          match Fastpath.decide fp ~seq pkt with
          | Fastpath.Replay p ->
              Fastpath.count_replay fp;
              tel_fast true;
              Device.replay sim ~start p
          | Fastpath.Record ->
              Fastpath.count_execute fp;
              tel_fast false;
              let ctx = execute ~recorder:side.recorder () in
              Fastpath.note fp pkt (Device.recorded ctx);
              Device.now ctx
          | Fastpath.Plain ->
              Fastpath.count_execute fp;
              tel_fast false;
              Device.now (execute ()))
    in
    Tpool.set_min_free side.threads done_;
    Heap.push inflight done_;
    if obs_on then Clara_obs.Metrics.incr c_packets;
    (match tel with
    | None -> ()
    | Some t ->
        Telemetry.on_retire t ~sim ~tenant:side.pid ~now:arrival
          ~latency:(done_ - arrival) ~service:(done_ - start));
    ev sink ~seq ~prog:side.pid ~thread:ti ~kind:Trace.Retire ~label:"" ~t0:done_
      ~t1:done_ ~arg:(retire_arg pkt);
    Stats.record side.stats ~proto:pkt.W.Packet.proto ~syn:(W.Packet.is_syn pkt)
      ~latency_cycles:(done_ - arrival)
  end

let[@inline] cycles_of_ns_at freq_mhz ns =
  Int64.to_int (Int64.div (Int64.mul ns (Int64.of_int freq_mhz)) 1000L)

(* Tracing replays nothing: a replayed packet would emit no events, so
   any sink forces the event path (keeping traced and untraced results
   byte-identical, which the bench trace guard checks). *)
let fastpath_of fast sink =
  match (fast, sink) with
  | Auto { warmup }, None -> Some (Fastpath.create ~warmup)
  | _ -> None

let finish sim ~freq_mhz side =
  {
    summary = Stats.summarize side.stats;
    emem_hit_rate =
      ratio (Device.emem_hits_of sim side.pid) (Device.emem_misses_of sim side.pid);
    flow_cache_hit_rate =
      ratio
        (Device.flow_cache_hits_of sim side.pid)
        (Device.flow_cache_misses_of sim side.pid);
    freq_mhz;
    fast = (match side.fp with Some fp -> Fastpath.stats fp | None -> no_fast);
  }

(* Single-program run against one sim; shared by [run] (full NIC,
   metrics on) and [run_sharded]'s workers (a 1/shards slice, metrics
   off).  Returns the side so sharding can merge raw stats. *)
let run_core ?threads ?queue_capacity ?sink ?tel ~fast ~obs_on lnic (prog : Device.prog)
    (trace : W.Trace.t) =
  let sim = Device.create_sim lnic prog in
  let freq_mhz = freq_of ~who:"Engine.run" lnic in
  let nthreads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let capacity =
    match queue_capacity with Some c -> max 1 c | None -> default_queue_capacity lnic
  in
  (match sink with None -> () | Some s -> Trace.set_progs s [| prog.Device.name |]);
  let side =
    make_side ~pid:0 ~nthreads ~capacity ~fp:(fastpath_of fast sink) prog
  in
  let cycles_of_ns = cycles_of_ns_at freq_mhz in
  let seq = ref (-1) in
  W.Trace.iter
    (fun pkt ->
      incr seq;
      dispatch ~sim ~sink ~obs_on ~tel ~cycles_of_ns side ~seq:!seq pkt)
    trace;
  (side, sim, freq_mhz)

let run ?threads ?queue_capacity ?sink ?metrics ?(fast = Event_only) lnic prog trace =
  Clara_obs.Registry.span obs "nicsim" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  (match metrics with
  | None -> ()
  | Some t -> Telemetry.set_tenants t [| prog.Device.name |]);
  let side, sim, freq_mhz =
    run_core ?threads ?queue_capacity ?sink ?tel:metrics ~fast ~obs_on:true lnic prog
      trace
  in
  finish sim ~freq_mhz side

let mean_latency_cycles r = r.summary.Stats.mean_cycles

let pp_hit_rate fmt r =
  (* A rate can legitimately be NaN (feature never exercised); say so
     instead of printing "nan%". *)
  if Float.is_nan r then Format.pp_print_string fmt "n/a"
  else Format.fprintf fmt "%.0f%%" (100. *. r)

let pp_result fmt r =
  Format.fprintf fmt "%a | emem hit %a | fc hit %a" Stats.pp_summary r.summary pp_hit_rate
    r.emem_hit_rate pp_hit_rate r.flow_cache_hit_rate;
  if r.fast.Fastpath.replayed > 0 then
    Format.fprintf fmt " | fast %d/%d replayed" r.fast.Fastpath.replayed
      (r.fast.Fastpath.replayed + r.fast.Fastpath.executed)

let result_to_json r =
  let num v = J.Float v (* NaN/inf serialize as null *) in
  J.Obj
    [
      ("packets", J.Int r.summary.Stats.packets);
      ("drops", J.Int r.summary.Stats.drops);
      ("mean_cycles", num r.summary.Stats.mean_cycles);
      ("p50_cycles", J.Int r.summary.Stats.p50_cycles);
      ("p99_cycles", J.Int r.summary.Stats.p99_cycles);
      ("max_cycles", J.Int r.summary.Stats.max_cycles);
      ("tcp_mean_cycles", num r.summary.Stats.tcp_mean);
      ("udp_mean_cycles", num r.summary.Stats.udp_mean);
      ("syn_mean_cycles", num r.summary.Stats.syn_mean);
      ("emem_hit_rate", num r.emem_hit_rate);
      ("flow_cache_hit_rate", num r.flow_cache_hit_rate);
      ("freq_mhz", J.Int r.freq_mhz);
      ("fast_replayed", J.Int r.fast.Fastpath.replayed);
      ("fast_executed", J.Int r.fast.Fastpath.executed);
      ("fast_confirmed", J.Int r.fast.Fastpath.confirmed);
      ("fast_poisoned", J.Int r.fast.Fastpath.poisoned);
      ("fast_enabled", J.Bool r.fast.Fastpath.enabled);
    ]

(* ------------------------------------------------------------------ *)
(* N-tenant co-residence: every tenant's programs share one simulator
   (accelerators, memory tiers, DMA lanes, caches all contend for real)
   while hardware threads and ingress-queue slots are divided by weight
   via {!Scheduler.split}.  Service order within each arrival tick is
   the two-stage WRR of {!Scheduler}, so a heavy tenant cannot starve a
   light one of dispatch slots. *)

let run_tenants ?threads ?queue_capacity ?weights ?sink ?metrics ?(fast = Event_only)
    lnic (progs : Device.prog array) (traces : W.Trace.t array) =
  let n = Array.length progs in
  if n = 0 then invalid_arg "Engine.run_tenants: no tenants";
  if Array.length traces <> n then
    invalid_arg "Engine.run_tenants: progs and traces disagree on tenant count";
  let weights =
    match weights with
    | None -> Array.make n 1
    | Some w ->
        if Array.length w <> n then
          invalid_arg "Engine.run_tenants: weights and tenant count disagree";
        Array.iter
          (fun x -> if x <= 0 then invalid_arg "Engine.run_tenants: weights must be positive")
          w;
        w
  in
  Clara_obs.Registry.span obs "nicsim-tenants" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let sim = Device.create_sim_shared lnic (Array.to_list progs) in
  let freq_mhz = freq_of ~who:"Engine.run_tenants" lnic in
  let total_threads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let total_capacity =
    match queue_capacity with Some c -> max 1 c | None -> default_queue_capacity lnic
  in
  (* Weight-proportional division; the split distributes remainder units
     to low indices, so (unlike the old floor division) the thread and
     queue pools are conserved whenever they are large enough to cover
     every tenant. *)
  let nthreads = Scheduler.split ~total:total_threads ~weights in
  let caps = Scheduler.split ~total:total_capacity ~weights in
  if total_threads >= n then
    assert (Array.fold_left ( + ) 0 nthreads = total_threads);
  if total_capacity >= n then assert (Array.fold_left ( + ) 0 caps = total_capacity);
  (match sink with
  | None -> ()
  | Some s -> Trace.set_progs s (Array.map (fun p -> p.Device.name) progs));
  (match metrics with
  | None -> ()
  | Some t -> Telemetry.set_tenants t (Array.map (fun p -> p.Device.name) progs));
  let sides =
    Array.init n (fun i ->
        make_side ~pid:i ~nthreads:nthreads.(i) ~capacity:caps.(i)
          ~fp:(fastpath_of fast sink) progs.(i))
  in
  (* Merge all arrival streams under a total order — ties broken on
     (arrival, tenant, source index) so the merge is deterministic even
     with colliding timestamps. *)
  let tagged =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun tid tr -> Array.mapi (fun i p -> (p, tid, i)) tr.W.Trace.packets)
            traces))
  in
  Array.sort
    (fun ((p : W.Packet.t), ta, ia) ((q : W.Packet.t), tb, ib) ->
      let c = compare p.W.Packet.arrival_ns q.W.Packet.arrival_ns in
      if c <> 0 then c
      else
        let c = compare ta tb in
        if c <> 0 then c else compare ia ib)
    tagged;
  (* Packets sharing an arrival tick land in their tenants' VF queues
     and are dispatched in WRR grant order; credit/cursor state persists
     across ticks, so service stays weight-proportional over any busy
     period.  With strictly increasing timestamps this degenerates to
     plain arrival order. *)
  let sched : W.Packet.t Scheduler.t = Scheduler.create ~weights in
  let cycles_of_ns = cycles_of_ns_at freq_mhz in
  let seq = ref (-1) in
  let m = Array.length tagged in
  let i = ref 0 in
  while !i < m do
    let (p0 : W.Packet.t), _, _ = tagged.(!i) in
    let t0 = p0.W.Packet.arrival_ns in
    let continue = ref true in
    while !continue && !i < m do
      let (p : W.Packet.t), tid, _ = tagged.(!i) in
      if Int64.equal p.W.Packet.arrival_ns t0 then begin
        Scheduler.enqueue sched ~tenant:tid p;
        incr i
      end
      else continue := false
    done;
    Scheduler.drain sched (fun tid pkt ->
        incr seq;
        (match metrics with
        | None -> ()
        | Some t ->
            let now = cycles_of_ns pkt.W.Packet.arrival_ns in
            Telemetry.on_deficit t ~tenant:tid ~now ~credit:(Scheduler.credit sched tid));
        dispatch ~sim ~sink ~obs_on:true ~tel:metrics ~cycles_of_ns sides.(tid)
          ~seq:!seq pkt)
  done;
  Array.map (fun side -> finish sim ~freq_mhz side) sides

(* Pairwise co-residence is now just the N = 2, equal-weights case. *)
let run_pair ?threads ?queue_capacity ?sink ?fast lnic (prog_a : Device.prog)
    (prog_b : Device.prog) (trace_a : W.Trace.t) (trace_b : W.Trace.t) =
  match
    run_tenants ?threads ?queue_capacity ?sink ?fast lnic [| prog_a; prog_b |]
      [| trace_a; trace_b |]
  with
  | [| a; b |] -> (a, b)
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* Domain-parallel simulation: flows are sharded onto independent NIC
   slices (1/shards of the threads and ingress queue each, like
   [run_pair]'s halving), the slices simulate concurrently on the shared
   worker pool, and raw stats merge in shard order — so the merged
   result depends on the shard count, never on the domain count. *)

let add_fast (a : Fastpath.stats) (b : Fastpath.stats) =
  {
    Fastpath.replayed = a.Fastpath.replayed + b.Fastpath.replayed;
    executed = a.Fastpath.executed + b.Fastpath.executed;
    confirmed = a.Fastpath.confirmed + b.Fastpath.confirmed;
    poisoned = a.Fastpath.poisoned + b.Fastpath.poisoned;
    enabled = a.Fastpath.enabled || b.Fastpath.enabled;
  }

let run_sharded ?(domains = 1) ?shards ?threads ?queue_capacity ?metrics
    ?(fast = Event_only) lnic (prog : Device.prog) (trace : W.Trace.t) =
  Clara_obs.Registry.span obs "nicsim-sharded" @@ fun () ->
  Clara_obs.Metrics.incr c_runs;
  let shards = match shards with Some s -> max 1 s | None -> max 1 domains in
  (match metrics with
  | None -> ()
  | Some t -> Telemetry.set_tenants t [| prog.Device.name |]);
  let freq_mhz = freq_of ~who:"Engine.run_sharded" lnic in
  let total_threads =
    match threads with Some n -> max 1 n | None -> max 1 (L.Graph.total_threads lnic)
  in
  let total_capacity =
    match queue_capacity with Some c -> max 1 c | None -> default_queue_capacity lnic
  in
  (* Equal-weight split with deterministic remainder distribution —
     480 threads / 7 shards used to silently drop 4 threads on the
     floor (and likewise queue slots). *)
  let unit_weights = Array.make shards 1 in
  let per_threads = Scheduler.split ~total:total_threads ~weights:unit_weights in
  let per_capacity = Scheduler.split ~total:total_capacity ~weights:unit_weights in
  if total_threads >= shards then
    assert (Array.fold_left ( + ) 0 per_threads = total_threads);
  if total_capacity >= shards then
    assert (Array.fold_left ( + ) 0 per_capacity = total_capacity);
  (* Partition by flow so no flow spans two slices; arrival order is
     preserved within each shard. *)
  let parts = Array.make shards [] in
  let packets = trace.W.Trace.packets in
  for i = Array.length packets - 1 downto 0 do
    let p = packets.(i) in
    let s = W.Packet.flow_key p mod shards in
    parts.(s) <- p :: parts.(s)
  done;
  let sub = Array.map (fun l -> W.Trace.of_packets (Array.of_list l)) parts in
  let outcomes, _pool_stats =
    Pool.map ~domains
      (fun i ->
        (* Each worker records into its own collector (the coordinator's
           cells must not be touched from other domains); the per-shard
           series merge below in shard order, so the merged telemetry —
           like the merged stats — depends on the shard count only. *)
        let tel = Option.map Telemetry.fresh_like metrics in
        let side, sim, freq =
          run_core ~threads:per_threads.(i) ~queue_capacity:per_capacity.(i) ?tel ~fast
            ~obs_on:false lnic prog sub.(i)
        in
        (side, sim, freq, tel))
      shards
  in
  let done_ =
    Array.map
      (function
        | Pool.Done r -> r
        | Pool.Failed m -> failwith ("Engine.run_sharded: shard failed: " ^ m))
      outcomes
  in
  (match metrics with
  | None -> ()
  | Some t ->
      Telemetry.absorb t
        (Array.to_list done_ |> List.filter_map (fun (_, _, _, tel) -> tel)));
  (* The workers could not touch the global metrics; account the merged
     totals once, from the coordinating domain. *)
  let stats_all = Array.to_list (Array.map (fun (side, _, _, _) -> side.stats) done_) in
  let merged = Stats.merge stats_all in
  let summary = Stats.summarize merged in
  Clara_obs.Metrics.add c_packets summary.Stats.packets;
  Clara_obs.Metrics.add c_drops summary.Stats.drops;
  let sum f = Array.fold_left (fun a (side, sim, _, _) -> a + f sim side.pid) 0 done_ in
  {
    summary;
    emem_hit_rate = ratio (sum Device.emem_hits_of) (sum Device.emem_misses_of);
    flow_cache_hit_rate =
      ratio (sum Device.flow_cache_hits_of) (sum Device.flow_cache_misses_of);
    freq_mhz;
    fast =
      Array.fold_left
        (fun acc (side, _, _, _) ->
          match side.fp with Some fp -> add_fast acc (Fastpath.stats fp) | None -> acc)
        no_fast done_;
  }
