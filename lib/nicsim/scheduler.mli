(** Two-stage weighted-round-robin over per-tenant ingress queues.

    Models an SR-IOV-style NIC scheduler (OS4C's design): each tenant
    owns a VF ingress queue; stage 1 grants a tenant according to its
    weight, stage 2 drains packets from the granted tenant's queue until
    its per-round credit is spent or its queue empties.  Credits
    replenish to the configured weights only when every backlogged
    tenant has exhausted its credit, so over any busy period tenant [i]
    receives service in proportion to [weights.(i)].

    The scheduler is purely deterministic: the same enqueue sequence
    always drains in the same order. *)

type 'a t

val create : weights:int array -> 'a t
(** One queue per weight entry.  Raises [Invalid_argument] on an empty
    array or a non-positive weight. *)

val tenants : _ t -> int
val length : _ t -> int
(** Total queued items across all tenants. *)

val queue_length : _ t -> int -> int

val credit : _ t -> int -> int
(** The tenant's remaining per-round credit — its current WRR deficit
    counter.  Replenishes to the weight when every backlogged tenant has
    spent its credit.  Telemetry samples this to show fairness
    transients. *)

val is_empty : _ t -> bool

val enqueue : 'a t -> tenant:int -> 'a -> unit

val next : 'a t -> (int * 'a) option
(** Pop the next item in WRR order, with the owning tenant's index.
    [None] iff every queue is empty.  Credit and cursor state persist
    across calls, so interleaving [enqueue] and [next] behaves like a
    live scheduler. *)

val drain : 'a t -> (int -> 'a -> unit) -> unit
(** [drain t f] calls [f tenant item] for every queued item in WRR order
    until the scheduler is empty. *)

val split : total:int -> weights:int array -> int array
(** Deterministic proportional division of [total] indivisible units
    (threads, queue slots) among tenants.  Each tenant gets the floor of
    its exact weighted share; leftover units go one each to the
    lowest-indexed tenants; finally every tenant is raised to at least
    one unit (taking from the currently largest allocation when
    [total >= n], so the parts still sum to [total]).  When
    [total < n] the minimum-one clamp makes the sum exceed [total] —
    the caller keeps every tenant runnable, matching the old
    [max 1 (total / n)] behaviour.  Raises [Invalid_argument] on an
    empty or non-positive weight array. *)
