module J = Clara_util.Json

let prog_name progs i =
  if i >= 0 && i < Array.length progs then progs.(i) else Printf.sprintf "p%d" i

(* tid of the per-process pseudo-track for pre-bind events. *)
let ingress_tid = 10_000

let span_name (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Compute -> e.Trace.label
  | Trace.Accel_use -> e.Trace.label
  | Trace.Accel_wait -> "wait:" ^ e.Trace.label
  | Trace.Mem_access -> "mem:" ^ e.Trace.label
  | Trace.Dma_wait -> "dma-wait:" ^ e.Trace.label
  | Trace.Dma_xfer -> "dma:" ^ e.Trace.label
  | Trace.Hub -> "hub:" ^ e.Trace.label
  | Trace.Queue_wait -> "queue-wait"
  | Trace.Arrival -> "arrival"
  | Trace.Thread_bind -> "bind"
  | Trace.Retire -> "retire"
  | Trace.Dropped -> "dropped"

(* The shared-hardware (pid 0) track a span occupies, if any. *)
let shared_track (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Accel_use -> Some e.Trace.label
  | Trace.Dma_xfer -> Some (Printf.sprintf "dma-%s[%d]" e.Trace.label e.Trace.arg)
  | Trace.Mem_access -> Some ("mem-" ^ e.Trace.label)
  | _ -> None

let perfetto t ~freq_mhz =
  let evs = Trace.events t in
  let progs = Trace.progs t in
  let us cycles = float_of_int cycles /. float_of_int freq_mhz in
  let out = ref [] in
  let push j = out := j :: !out in
  (* Track registries so we emit one metadata record per track. *)
  let prog_threads : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let shared_tids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let next_shared = ref 0 in
  let shared_tid name =
    match Hashtbl.find_opt shared_tids name with
    | Some tid -> tid
    | None ->
        incr next_shared;
        Hashtbl.add shared_tids name !next_shared;
        !next_shared
  in
  let seen_prog : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  Array.iter
    (fun (e : Trace.event) ->
      let pid = 1 + e.Trace.prog in
      Hashtbl.replace seen_prog e.Trace.prog ();
      let tid = if e.Trace.thread < 0 then ingress_tid else e.Trace.thread in
      if e.Trace.thread >= 0 then Hashtbl.replace prog_threads (e.Trace.prog, e.Trace.thread) ();
      let args extra =
        ("args", J.Obj (("seq", J.Int e.Trace.seq) :: extra))
      in
      if e.Trace.t1 > e.Trace.t0 then begin
        (* Span on the owning program's thread track. *)
        let extra =
          match e.Trace.kind with
          | Trace.Mem_access ->
              [ ( "outcome",
                  J.String
                    (match e.Trace.arg with
                    | 1 -> "hit"
                    | 0 -> "miss"
                    | _ -> "uncached") ) ]
          | _ -> [ ("arg", J.Int e.Trace.arg) ]
        in
        push
          (J.Obj
             [
               ("name", J.String (span_name e));
               ("cat", J.String (Trace.kind_name e.Trace.kind));
               ("ph", J.String "X");
               ("ts", J.Float (us e.Trace.t0));
               ("dur", J.Float (us (e.Trace.t1 - e.Trace.t0)));
               ("pid", J.Int pid);
               ("tid", J.Int tid);
               args extra;
             ]);
        (* Occupancy of shared hardware, labelled by owner, in pid 0. *)
        match shared_track e with
        | None -> ()
        | Some track ->
            push
              (J.Obj
                 [
                   ( "name",
                     J.String (Printf.sprintf "%s #%d" (prog_name progs e.Trace.prog) e.Trace.seq)
                   );
                   ("cat", J.String (Trace.kind_name e.Trace.kind));
                   ("ph", J.String "X");
                   ("ts", J.Float (us e.Trace.t0));
                   ("dur", J.Float (us (e.Trace.t1 - e.Trace.t0)));
                   ("pid", J.Int 0);
                   ("tid", J.Int (shared_tid track));
                   args [];
                 ])
      end
      else begin
        (match e.Trace.kind with
        | Trace.Arrival ->
            (* Queue-depth counter per program. *)
            push
              (J.Obj
                 [
                   ("name", J.String "queue-depth");
                   ("ph", J.String "C");
                   ("ts", J.Float (us e.Trace.t0));
                   ("pid", J.Int pid);
                   ("args", J.Obj [ ("depth", J.Int e.Trace.arg) ]);
                 ])
        | _ -> ());
        push
          (J.Obj
             [
               ("name", J.String (span_name e));
               ("cat", J.String (Trace.kind_name e.Trace.kind));
               ("ph", J.String "i");
               ("s", J.String "t");
               ("ts", J.Float (us e.Trace.t0));
               ("pid", J.Int pid);
               ("tid", J.Int tid);
               args [ ("arg", J.Int e.Trace.arg) ];
             ])
      end)
    evs;
  (* Metadata: name every process and track. *)
  let meta =
    ref
      [
        J.Obj
          [
            ("name", J.String "process_name");
            ("ph", J.String "M");
            ("pid", J.Int 0);
            ("args", J.Obj [ ("name", J.String "shared hw") ]);
          ];
      ]
  in
  Hashtbl.iter
    (fun p () ->
      meta :=
        J.Obj
          [
            ("name", J.String "process_name");
            ("ph", J.String "M");
            ("pid", J.Int (1 + p));
            ("args", J.Obj [ ("name", J.String (prog_name progs p)) ]);
          ]
        :: J.Obj
             [
               ("name", J.String "thread_name");
               ("ph", J.String "M");
               ("pid", J.Int (1 + p));
               ("tid", J.Int ingress_tid);
               ("args", J.Obj [ ("name", J.String "ingress") ]);
             ]
        :: !meta)
    seen_prog;
  Hashtbl.iter
    (fun (p, th) () ->
      meta :=
        J.Obj
          [
            ("name", J.String "thread_name");
            ("ph", J.String "M");
            ("pid", J.Int (1 + p));
            ("tid", J.Int th);
            ("args", J.Obj [ ("name", J.String (Printf.sprintf "thr %d" th)) ]);
          ]
        :: !meta)
    prog_threads;
  Hashtbl.iter
    (fun name tid ->
      meta :=
        J.Obj
          [
            ("name", J.String "thread_name");
            ("ph", J.String "M");
            ("pid", J.Int 0);
            ("tid", J.Int tid);
            ("args", J.Obj [ ("name", J.String name) ]);
          ]
        :: !meta)
    shared_tids;
  J.Obj
    [
      ("traceEvents", J.List (!meta @ List.rev !out));
      ("displayTimeUnit", J.String "ns");
      ( "otherData",
        J.Obj
          [
            ("tool", J.String "clara trace");
            ("freq_mhz", J.Int freq_mhz);
            ("events_recorded", J.Int (Trace.total t));
            ("events_dropped", J.Int (Trace.dropped t));
          ] );
    ]

let write_perfetto t ~freq_mhz ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> J.to_channel ~pretty:false oc (perfetto t ~freq_mhz))

let pp_text ?(limit = 200) fmt t =
  let evs = Trace.events t in
  let n = Array.length evs in
  let shown = min n limit in
  Format.fprintf fmt "@[<v>trace: %d events recorded, %d retained, %d lost to ring wrap@,"
    (Trace.total t) n (Trace.dropped t);
  for i = 0 to shown - 1 do
    let e = evs.(i) in
    Format.fprintf fmt "%10d %s pkt#%-6d prog%d thr%-3d %-11s %-12s arg=%d@," e.Trace.t0
      (if e.Trace.t1 > e.Trace.t0 then Printf.sprintf "..%-10d" e.Trace.t1
       else String.make 12 ' ')
      e.Trace.seq e.Trace.prog e.Trace.thread
      (Trace.kind_name e.Trace.kind)
      e.Trace.label e.Trace.arg
  done;
  if shown < n then Format.fprintf fmt "... (%d more)@," (n - shown);
  Format.fprintf fmt "@]"
