(** Execution context for ported NFs on the simulated SmartNIC.

    A "port" of an NF is a handler written against this API — the
    simulator's stand-in for the vendor toolchain.  Each operation
    advances the calling packet's cycle clock according to the simulated
    hardware: flat memory latencies, a line-accurate EMEM cache, a real
    LRU flow cache (misses fall back to the software match/action walk
    and then populate the cache), and serialized accelerators (head-of-
    line blocking emerges when threads contend). *)

type placement = P_ctm | P_imem | P_emem | P_flow_cache

type table_decl = {
  t_name : string;
  t_entries : int;
  t_entry_bytes : int;
  t_placement : placement;
}

type verdict = Emit | Drop

(** Shared simulator state (one per run). *)
type sim

(** Per-packet execution context. *)
type t

type handler = t -> Clara_workload.Packet.t -> verdict

type prog = { name : string; tables : table_decl list; handler : handler }

val create_sim : Clara_lnic.Graph.t -> prog -> sim
(** @raise Invalid_argument on duplicate table names or a [P_flow_cache]
    table on a NIC with neither an eSwitch nor a lookup accelerator.
    When both are present the eSwitch fronts the flow cache, and on
    off-path targets every miss additionally pays the fabric upcall
    ({!Clara_lnic.Graph.upcall_cycles}) before the software walk. *)

val create_sim_shared : Clara_lnic.Graph.t -> prog list -> sim
(** One simulator hosting several co-resident programs: caches, flow
    cache, accelerators and DMA lanes are shared (that is the point —
    §3.5 interference).  Table names must be globally distinct.
    @raise Invalid_argument on clashes. *)

(** {2 Steady-state fast path support}

    The engine can memoize a packet's resolved cost profile and later
    replay it without re-executing the handler.  A profile is a sequence
    of segments: thread-local ("pure") cycle spans interleaved with
    shared-resource occupations (accelerator, RX/TX DMA).  Replay
    reproduces the execution-side occupancy arithmetic exactly, so
    replayed and executed packets can mix in one run with byte-identical
    results.  A recording is abandoned ([recorded] returns [None]) the
    moment the handler touches mutable simulator state — tables, the
    flow cache, or the EMEM line cache — because a replayed packet skips
    execution and therefore must not have been mutating anything. *)

type recorder
type profile

val fresh_recorder : unit -> recorder
(** One recorder can be reused across packets: {!make_ctx} rearms it. *)

val recorded : t -> profile option
(** The profile captured since {!make_ctx}, or [None] if the handler
    touched mutable state.  Call after the handler (and [wire_tx]). *)

val profile_equal : profile -> profile -> bool

val replay : sim -> start:int -> profile -> int
(** [replay sim ~start p] advances accelerator and DMA occupancy as the
    recorded packet would and returns its completion cycle. *)

val make_ctx :
  ?seq:int ->
  ?prog:int ->
  ?thread:int ->
  ?trace:Trace.t ->
  ?recorder:recorder ->
  sim ->
  now:int ->
  Clara_workload.Packet.t ->
  t
(** [seq]/[prog]/[thread] identify the packet in trace events (defaults
    [-1]/[0]/[-1]); when [trace] is absent, operations record nothing and
    allocate nothing beyond the untraced baseline.  [recorder] arms
    fast-path profile capture for this packet ({!recorded}). *)

val now : t -> int
val sim_of : t -> sim

(** {2 Operations a ported handler may use} *)

val parse_header : t -> engine:bool -> unit
val alu : t -> int -> unit
val mul : t -> int -> unit
val hash_op : t -> unit
val move : t -> int -> unit
val branch : t -> unit
val local_read : t -> int -> unit
val local_write : t -> int -> unit
val packet_read : t -> int -> unit
(** [packet_read ctx n]: [n] reads of packet payload; lands in the CTM or
    EMEM depending on packet size vs the CTM threshold (§3.2). *)

val table_lookup : t -> string -> key:int -> bool
(** Hit iff the key was previously inserted (true stateful behaviour —
    the first packet of a flow misses). *)

val table_insert : t -> string -> key:int -> unit
val lpm_lookup : t -> string -> key:int -> bool
(** Flow-cache tables: LRU hit is near-constant; a miss walks the rule
    set in memory and then caches the key.  Memory tables: full software
    match/action walk every time (the Figure 3a regime). *)

val checksum : t -> engine:bool -> bytes:int -> unit
val crypto : t -> engine:bool -> bytes:int -> unit
val scan_payload : t -> bytes:int -> bool
(** Returns whether the scan "matched" (deterministic hash of the packet,
    ~10% of packets). *)

val meter : t -> unit
val count : t -> string -> key:int -> unit
(** Atomic counter increment in the table's region. *)

val fp_op : t -> int -> unit

(** {2 Run-level accounting} *)

val wire_rx : t -> unit
(** Ingress DMA + hub cost for the context's packet; the engine calls
    this before the handler. *)

val wire_tx : t -> unit

val flow_cache_hits : sim -> int
val flow_cache_misses : sim -> int

val accel_busy_cycles : sim -> int
(** Cumulative cycles any accelerator spent servicing requests (execute
    and fast-path replay alike).  Telemetry samples this by delta to
    chart accelerator occupancy over sim time. *)

val dma_busy_cycles : sim -> int
(** Cumulative busy cycles across all RX+TX DMA lanes. *)

val upcalls : sim -> int
(** Flow-cache misses that paid the off-path fabric upcall (always 0 on
    on-path targets). *)

val mem : sim -> Mem_model.t

(** Per-program cache accounting (indexed by the [prog] passed to
    {!make_ctx}; out-of-range indices read as 0).  [run_pair] reports
    each side's own hit rates from these rather than the shared totals
    above. *)

val flow_cache_hits_of : sim -> int -> int
val flow_cache_misses_of : sim -> int -> int
val emem_hits_of : sim -> int -> int
val emem_misses_of : sim -> int -> int
