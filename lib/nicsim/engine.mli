(** The simulator's run loop.

    Packets arrive at trace timestamps (converted to core cycles), queue
    at the ingress hub, bind to a free hardware thread (run-to-completion,
    §3.2), execute the ported handler, and leave through the egress path.
    Per-packet latency = completion − arrival, so queueing delay at high
    load and accelerator contention show up in the numbers, just as they
    would on hardware.

    Two performance levers sit on top of the event loop, both off by
    default and both result-preserving:

    - {b Steady-state fast path} ([fast = Auto _]): after a warm-up
      window, packets whose cost profile has been memoized and confirmed
      replay analytically — thread/queue/accelerator/DMA occupancy is
      advanced arithmetically instead of re-executing the handler.
      Packets that touch mutable simulator state are detected and
      permanently excluded, so stateful NFs automatically fall back to
      full event simulation and replay is byte-identical to the event
      path.  Handler-side OCaml state (a closure over a ref) is caught
      heuristically — a key must produce identical profiles twice before
      it may replay, and any divergence poisons it — but a closure that
      is consistent twice and diverges later evades this; callers should
      enable [Auto] only for programs the static sharing analysis calls
      stateless ([Clara_analysis.Sharing.stateless]), which is what the
      CLI does.  Tracing always forces the event path.
    - {b Domain-parallel simulation} ({!run_sharded}): flows shard onto
      independent NIC slices simulated concurrently on the shared
      {!Clara_util.Pool}; merged results depend on the shard count,
      never the domain count. *)

type fast_mode =
  | Event_only          (** always execute the handler (the default) *)
  | Auto of { warmup : int }
      (** memoize + replay confirmed steady-state packets once the
          packet sequence number reaches [warmup] *)

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;       (** NaN when the NIC has no EMEM cache. *)
  flow_cache_hit_rate : float; (** NaN when the program never used it. *)
  freq_mhz : int;
  fast : Fastpath.stats;
      (** All zeros / [enabled = false] under [Event_only]. *)
}

val run :
  ?threads:int ->
  ?sink:Trace.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Clara_workload.Trace.t ->
  result
(** [threads] defaults to the NIC's total hardware threads.  [sink]
    installs a per-packet event trace ({!Trace}); without it the run
    does no trace work and results are byte-identical to a traced run's
    (the [bench trace] section guards this).  [fast] defaults to
    {!Event_only}; [Auto] is ignored when [sink] is set. *)

val run_sharded :
  ?domains:int ->
  ?shards:int ->
  ?threads:int ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Clara_workload.Trace.t ->
  result
(** Domain-parallel run: flows are partitioned onto [shards] independent
    NIC slices (each gets 1/shards of the threads and ingress queue,
    clamped to at least 1 — the same slicing rule as {!run_pair}), the
    slices simulate concurrently on up to [domains] domains, and raw
    stats merge deterministically in shard order.  [shards] defaults to
    [domains]; for a fixed shard count the result is byte-identical
    across any domain count.  Not a bit-exact model of one shared NIC:
    cross-flow contention on accelerators and EMEM is confined to each
    slice.  Tracing is unsupported here (use {!run}). *)

val mean_latency_cycles : result -> float

val pp_result : Format.formatter -> result -> unit
(** Hit rates that are NaN (feature never exercised) print as "n/a". *)

val result_to_json : result -> Clara_util.Json.t
(** NaN hit rates serialize as [null]. *)

val run_pair :
  ?threads:int ->
  ?sink:Trace.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Device.prog ->
  Clara_workload.Trace.t ->
  Clara_workload.Trace.t ->
  result * result
(** Co-resident execution (§3.5): both programs share one simulator —
    EMEM cache, flow cache, accelerators and DMA lanes contend for real —
    while each gets half the hardware threads and half the ingress queue
    (the paper's "half of the NIC" slicing, each half clamped to at
    least 1).  Traces are merged by arrival time with deterministic
    tie-breaking on (arrival, side, source index), so co-run results are
    stable across repeated runs even with colliding timestamps.  Results
    are reported per program, each side's cache hit rates from its own
    per-program counters.  [threads] overrides the NIC's total hardware
    thread count before halving, like {!run}'s.  With [sink], events
    carry the owning program's index ([prog] 0/1) and {!Trace.progs}
    reports both names, so a shared timeline shows who stole the
    accelerator. *)
