(** The simulator's run loop.

    Packets arrive at trace timestamps (converted to core cycles), queue
    at the ingress hub, bind to a free hardware thread (run-to-completion,
    §3.2), execute the ported handler, and leave through the egress path.
    Per-packet latency = completion − arrival, so queueing delay at high
    load and accelerator contention show up in the numbers, just as they
    would on hardware. *)

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;       (** NaN when the NIC has no EMEM cache. *)
  flow_cache_hit_rate : float; (** NaN when the program never used it. *)
  freq_mhz : int;
}

val run :
  ?threads:int ->
  ?sink:Trace.t ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Clara_workload.Trace.t ->
  result
(** [threads] defaults to the NIC's total hardware threads.  [sink]
    installs a per-packet event trace ({!Trace}); without it the run
    does no trace work and results are byte-identical to a traced run's
    (the [bench trace] section guards this). *)

val mean_latency_cycles : result -> float

val pp_result : Format.formatter -> result -> unit
(** Hit rates that are NaN (feature never exercised) print as "n/a". *)

val result_to_json : result -> Clara_util.Json.t
(** NaN hit rates serialize as [null]. *)

val run_pair :
  ?threads:int ->
  ?sink:Trace.t ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Device.prog ->
  Clara_workload.Trace.t ->
  Clara_workload.Trace.t ->
  result * result
(** Co-resident execution (§3.5): both programs share one simulator —
    EMEM cache, flow cache, accelerators and DMA lanes contend for real —
    while each gets half the hardware threads and half the ingress queue
    (the paper's "half of the NIC" slicing, each half clamped to at
    least 1).  Traces are merged by arrival time; results are reported
    per program.  [threads] overrides the NIC's total hardware thread
    count before halving, like {!run}'s.  With [sink], events carry the
    owning program's index ([prog] 0/1) and {!Trace.progs} reports both
    names, so a shared timeline shows who stole the accelerator. *)
