(** The simulator's run loop.

    Packets arrive at trace timestamps (converted to core cycles), queue
    at the ingress hub, bind to a free hardware thread (run-to-completion,
    §3.2), execute the ported handler, and leave through the egress path.
    Per-packet latency = completion − arrival, so queueing delay at high
    load and accelerator contention show up in the numbers, just as they
    would on hardware.

    Two performance levers sit on top of the event loop, both off by
    default and both result-preserving:

    - {b Steady-state fast path} ([fast = Auto _]): after a warm-up
      window, packets whose cost profile has been memoized and confirmed
      replay analytically — thread/queue/accelerator/DMA occupancy is
      advanced arithmetically instead of re-executing the handler.
      Packets that touch mutable simulator state are detected and
      permanently excluded, so stateful NFs automatically fall back to
      full event simulation and replay is byte-identical to the event
      path.  Handler-side OCaml state (a closure over a ref) is caught
      heuristically — a key must produce identical profiles twice before
      it may replay, and any divergence poisons it — but a closure that
      is consistent twice and diverges later evades this; callers should
      enable [Auto] only for programs the static sharing analysis calls
      stateless ([Clara_analysis.Sharing.stateless]), which is what the
      CLI does.  Tracing always forces the event path.
    - {b Domain-parallel simulation} ({!run_sharded}): flows shard onto
      independent NIC slices simulated concurrently on the shared
      {!Clara_util.Pool}; merged results depend on the shard count,
      never the domain count. *)

type fast_mode =
  | Event_only          (** always execute the handler (the default) *)
  | Auto of { warmup : int }
      (** memoize + replay confirmed steady-state packets once the
          packet sequence number reaches [warmup] *)

type result = {
  summary : Stats.summary;
  emem_hit_rate : float;       (** NaN when the NIC has no EMEM cache. *)
  flow_cache_hit_rate : float; (** NaN when the program never used it. *)
  freq_mhz : int;
  fast : Fastpath.stats;
      (** All zeros / [enabled = false] under [Event_only]. *)
}

val run :
  ?threads:int ->
  ?queue_capacity:int ->
  ?sink:Trace.t ->
  ?metrics:Telemetry.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Clara_workload.Trace.t ->
  result
(** [threads] defaults to the NIC's total hardware threads and
    [queue_capacity] to the ingress hub's, so solo, pair, tenant and
    sharded runs are comparable at a pinned capacity.  [sink] installs a
    per-packet event trace ({!Trace}); without it the run does no trace
    work and results are byte-identical to a traced run's (the
    [bench trace] section guards this).  [metrics] installs a sim-time
    telemetry collector ({!Telemetry}) under the same discipline:
    without it no telemetry work happens and results are byte-identical
    to an instrumented run's.  [fast] defaults to {!Event_only}; [Auto]
    is ignored when [sink] is set. *)

val run_sharded :
  ?domains:int ->
  ?shards:int ->
  ?threads:int ->
  ?queue_capacity:int ->
  ?metrics:Telemetry.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Clara_workload.Trace.t ->
  result
(** Domain-parallel run: flows are partitioned onto [shards] independent
    NIC slices, the slices simulate concurrently on up to [domains]
    domains, and raw stats merge deterministically in shard order.
    Threads and ingress-queue slots divide by {!Scheduler.split}: equal
    shares with remainder units to the lowest-indexed shards, each shard
    clamped to at least 1, and the per-shard sums equal the totals
    whenever total >= shards (floor division used to lose up to
    shards-1 threads).  [shards] defaults to [domains]; for a fixed
    shard count the result is byte-identical across any domain count.
    Not a bit-exact model of one shared NIC: cross-flow contention on
    accelerators and EMEM is confined to each slice.  Tracing is
    unsupported here (use {!run}).  [metrics] gives each shard worker a
    fresh collector and merges them in shard order, so the telemetry —
    like the stats — is deterministic in the shard count. *)

val mean_latency_cycles : result -> float

val pp_result : Format.formatter -> result -> unit
(** Hit rates that are NaN (feature never exercised) print as "n/a". *)

val result_to_json : result -> Clara_util.Json.t
(** NaN hit rates serialize as [null]. *)

val run_tenants :
  ?threads:int ->
  ?queue_capacity:int ->
  ?weights:int array ->
  ?sink:Trace.t ->
  ?metrics:Telemetry.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog array ->
  Clara_workload.Trace.t array ->
  result array
(** N-tenant co-residence: all programs share one simulator — EMEM
    cache, flow cache, accelerators and DMA lanes contend for real —
    while hardware threads and ingress-queue slots divide by [weights]
    (default: equal) via {!Scheduler.split}, remainder units to the
    lowest-indexed tenants and the per-tenant sums conserved whenever
    the pool covers every tenant.  Packets from all traces merge under
    the total order (arrival, tenant, source index); packets sharing an
    arrival tick are queued per tenant and dispatched in the two-stage
    weighted-round-robin order of {!Scheduler}, whose credit state
    persists across ticks — so the whole run is deterministic and a
    heavy tenant cannot starve a light one of dispatch slots.  Results
    are reported per tenant, in input order, each with its own
    per-program cache counters.  With [sink], events carry the owning
    tenant's index and {!Trace.progs} lists every name.  Raises
    [Invalid_argument] when [progs], [traces] and [weights] disagree on
    the tenant count, on an empty tenant list, or on a non-positive
    weight. *)

val run_pair :
  ?threads:int ->
  ?queue_capacity:int ->
  ?sink:Trace.t ->
  ?fast:fast_mode ->
  Clara_lnic.Graph.t ->
  Device.prog ->
  Device.prog ->
  Clara_workload.Trace.t ->
  Clara_workload.Trace.t ->
  result * result
(** Co-resident execution (§3.5): exactly {!run_tenants} with two
    tenants and equal weights (the paper's "half of the NIC" slicing,
    each half clamped to at least 1, the odd thread to tenant 0).
    Results are the pair's, in order. *)
