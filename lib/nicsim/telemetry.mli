(** Sim-time telemetry for engine runs.

    A collector holds one {!Clara_obs.Timeseries} per metric, sampled on
    the simulated clock (core cycles) as the engine dispatches packets —
    so the series show how the run behaved over time (queue growth, WRR
    fairness transients, flow-cache warm-up), not just run totals.

    Per tenant (a solo run is tenant 0):
    - [queue_depth] (gauge): ingress in-flight depth at each arrival.
    - [goodput] / [drops] (rate): packets retired / dropped per window.
    - [latency] (gauge): per-packet latency cycles at retirement.
    - [busy_cycles] (rate): thread service time — divide by
      threads×cadence for utilization.
    - [wrr_deficit] (gauge): the scheduler credit at each dispatch
      (tenant runs only; constant for solo runs).
    - [fc_hits] / [fc_misses], [emem_hits] / [emem_misses] (rate):
      per-program cache outcomes, sampled by delta at each retirement.

    Sim-wide: [accel_busy] / [dma_busy] (rate, occupancy cycles),
    [upcalls] (rate, off-path fabric crossings), [fast_replay] /
    [fast_execute] (rate, fast-path outcome per packet).

    Same zero-cost-off discipline as tracing: the engine takes a
    [Telemetry.t option] and every hook is one [match] on it.  A
    collector is single-domain; sharded runs give each worker a
    {!fresh_like} collector and {!absorb} them in shard order, which is
    deterministic in the shard count because series merge by exact
    window sums. *)

type t

val create : ?max_windows:int -> ?cadence:int -> unit -> t
(** [cadence] is the window width in core cycles (default 8192; must be
    positive), [max_windows] as in {!Clara_obs.Timeseries.create}.
    Starts with a single tenant named ["prog"]; {!set_tenants}
    reshapes. *)

val cadence : t -> int
val tenant_names : t -> string array

val set_tenants : t -> string array -> unit
(** Reallocate per-tenant series for this tenant list (the engine calls
    it with the program names before dispatching; any previously
    recorded samples are discarded). *)

val fresh_like : t -> t
(** An empty collector with the same cadence, window budget and tenant
    shape — what each sharded worker records into. *)

(** {2 Engine hooks} — [now] is always the packet's arrival cycle, so a
    window aggregates the packets that {e arrived} in it. *)

val on_arrival : t -> tenant:int -> now:int -> depth:int -> unit
val on_drop : t -> tenant:int -> now:int -> unit
val on_fast : t -> now:int -> replayed:bool -> unit
val on_deficit : t -> tenant:int -> now:int -> credit:int -> unit

val on_retire :
  t -> sim:Device.sim -> tenant:int -> now:int -> latency:int -> service:int -> unit
(** Also samples the sim's cumulative counters (cache outcomes, accel /
    DMA busy cycles, upcalls) by delta against the previous call, so
    window sums equal the true per-window totals. *)

val absorb : t -> t list -> unit
(** Merge the series of [srcs] (same tenant shape, same base cadence)
    into the collector, element-wise per series.  Deterministic in list
    order; inputs are not mutated. *)

val series : t -> Clara_obs.Timeseries.t list
(** Every series in a fixed order: per-tenant blocks first, then the
    sim-wide series. *)

val to_json : t -> Clara_util.Json.t
(** {v { "schema": 1, "cadence", "tenants": [names],
       "series": [Timeseries.to_json...] } v} *)

val to_csv : t -> string
(** {!Clara_obs.Timeseries.csv_header} plus one row per non-empty
    window of every series. *)
