module W = Clara_workload

type components = {
  queue : int;
  compute : int;
  accel_wait : int;
  mem : int;
  wire : int;
}

let ctotal c = c.queue + c.compute + c.accel_wait + c.mem + c.wire

type packet = {
  p_seq : int;
  p_prog : int;
  p_thread : int;
  p_type : string;
  p_arrival : int;
  p_retire : int;
  p_comp : components;
}

type row = {
  r_prog : int;
  r_type : string;
  r_count : int;
  r_queue : float;
  r_compute : float;
  r_accel_wait : float;
  r_mem : float;
  r_wire : float;
  r_total : float;
  r_dominant : string;
}

type report = {
  packets : packet array;
  rows : row list;
  progs : string array;
  incomplete : int;
}

let type_label ~retire_arg =
  match W.Packet.proto_of_number (retire_arg / 2) with
  | W.Packet.Tcp -> if retire_arg land 1 = 1 then "tcp-syn" else "tcp"
  | W.Packet.Udp -> "udp"
  | W.Packet.Other _ -> "other"

(* Mutable per-packet accumulator while scanning the event stream. *)
type acc = {
  mutable a_prog : int;
  mutable a_thread : int;
  mutable a_arrival : int;
  mutable a_retire : int;
  mutable a_retire_arg : int;
  mutable has_arrival : bool;
  mutable has_retire : bool;
  mutable q : int;
  mutable c : int;
  mutable aw : int;
  mutable m : int;
  mutable w : int;
}

let analyze t =
  let evs = Trace.events t in
  let by_seq : (int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let get seq =
    match Hashtbl.find_opt by_seq seq with
    | Some a -> a
    | None ->
        let a =
          { a_prog = 0; a_thread = -1; a_arrival = 0; a_retire = 0; a_retire_arg = 0;
            has_arrival = false; has_retire = false; q = 0; c = 0; aw = 0; m = 0; w = 0 }
        in
        Hashtbl.add by_seq seq a;
        a
  in
  Array.iter
    (fun (e : Trace.event) ->
      if e.Trace.seq >= 0 then begin
        let a = get e.Trace.seq in
        let d = e.Trace.t1 - e.Trace.t0 in
        match e.Trace.kind with
        | Trace.Arrival ->
            a.has_arrival <- true;
            a.a_arrival <- e.Trace.t0;
            a.a_prog <- e.Trace.prog
        | Trace.Queue_wait -> a.q <- a.q + d
        | Trace.Thread_bind -> a.a_thread <- e.Trace.arg
        | Trace.Compute | Trace.Accel_use -> a.c <- a.c + d
        | Trace.Accel_wait -> a.aw <- a.aw + d
        | Trace.Mem_access -> a.m <- a.m + d
        | Trace.Dma_wait | Trace.Dma_xfer | Trace.Hub -> a.w <- a.w + d
        | Trace.Retire ->
            a.has_retire <- true;
            a.a_retire <- e.Trace.t0;
            a.a_retire_arg <- e.Trace.arg
        | Trace.Dropped -> ()
      end)
    evs;
  let complete = ref [] and incomplete = ref 0 in
  Hashtbl.iter
    (fun seq a ->
      if a.has_arrival && a.has_retire then
        complete :=
          {
            p_seq = seq;
            p_prog = a.a_prog;
            p_thread = a.a_thread;
            p_type = type_label ~retire_arg:a.a_retire_arg;
            p_arrival = a.a_arrival;
            p_retire = a.a_retire;
            p_comp = { queue = a.q; compute = a.c; accel_wait = a.aw; mem = a.m; wire = a.w };
          }
          :: !complete
      else if a.has_retire then
        (* Retired, but the arrival (and possibly early spans) fell off
           the ring: attribution would under-count, so skip it. *)
        incr incomplete)
    by_seq;
  let packets = Array.of_list !complete in
  Array.sort (fun a b -> compare a.p_seq b.p_seq) packets;
  (* Group into (prog, type) rows plus an "all" row per program. *)
  let sums : (int * string, int ref * components ref) Hashtbl.t = Hashtbl.create 16 in
  let add key comp =
    let n, s =
      match Hashtbl.find_opt sums key with
      | Some v -> v
      | None ->
          let v = (ref 0, ref { queue = 0; compute = 0; accel_wait = 0; mem = 0; wire = 0 }) in
          Hashtbl.add sums key v;
          v
    in
    incr n;
    s :=
      {
        queue = !s.queue + comp.queue;
        compute = !s.compute + comp.compute;
        accel_wait = !s.accel_wait + comp.accel_wait;
        mem = !s.mem + comp.mem;
        wire = !s.wire + comp.wire;
      }
  in
  Array.iter
    (fun p ->
      add (p.p_prog, p.p_type) p.p_comp;
      add (p.p_prog, "all") p.p_comp)
    packets;
  let dominant ~queue ~compute ~accel_wait ~mem ~wire =
    let cands =
      [ ("queueing", queue); ("compute", compute); ("accel-wait", accel_wait);
        ("memory", mem); ("wire", wire) ]
    in
    fst (List.fold_left (fun (bn, bv) (n, v) -> if v > bv then (n, v) else (bn, bv))
           (List.hd cands) (List.tl cands))
  in
  let rows =
    Hashtbl.fold
      (fun (prog, ty) (n, s) acc ->
        let fn = float_of_int !n in
        let f v = float_of_int v /. fn in
        let r_queue = f !s.queue and r_compute = f !s.compute in
        let r_accel_wait = f !s.accel_wait and r_mem = f !s.mem and r_wire = f !s.wire in
        {
          r_prog = prog;
          r_type = ty;
          r_count = !n;
          r_queue;
          r_compute;
          r_accel_wait;
          r_mem;
          r_wire;
          r_total = r_queue +. r_compute +. r_accel_wait +. r_mem +. r_wire;
          r_dominant =
            dominant ~queue:r_queue ~compute:r_compute ~accel_wait:r_accel_wait ~mem:r_mem
              ~wire:r_wire;
        }
        :: acc)
      sums []
    |> List.sort (fun a b ->
           match compare a.r_prog b.r_prog with
           | 0 -> (
               (* "all" sorts after the concrete types. *)
               match (a.r_type = "all", b.r_type = "all") with
               | true, false -> 1
               | false, true -> -1
               | _ -> compare a.r_type b.r_type)
           | c -> c)
  in
  { packets; rows; progs = Trace.progs t; incomplete = !incomplete }

let slowest t report ~n =
  let by_lat = Array.copy report.packets in
  Array.sort
    (fun a b -> compare (b.p_retire - b.p_arrival) (a.p_retire - a.p_arrival))
    by_lat;
  let picked = Array.sub by_lat 0 (min n (Array.length by_lat)) in
  let want = Hashtbl.create 16 in
  Array.iteri (fun i p -> Hashtbl.replace want p.p_seq i) picked;
  let buckets = Array.make (Array.length picked) [] in
  Array.iter
    (fun (e : Trace.event) ->
      match Hashtbl.find_opt want e.Trace.seq with
      | Some i -> buckets.(i) <- e :: buckets.(i)
      | None -> ())
    (Trace.events t);
  Array.to_list
    (Array.mapi (fun i p -> (p, Array.of_list (List.rev buckets.(i)))) picked)

(* ------------------------------------------------------------------ *)
(* Utilization and queue-depth time series                             *)

let span_of_trace evs =
  Array.fold_left
    (fun (lo, hi) (e : Trace.event) -> (min lo e.Trace.t0, max hi e.Trace.t1))
    (max_int, min_int) evs

let prog_name progs i =
  if i >= 0 && i < Array.length progs then progs.(i) else Printf.sprintf "p%d" i

type util = { u_name : string; u_busy : int; u_util : float; u_series : float array }

let utilization ?interval t =
  let evs = Trace.events t in
  if Array.length evs = 0 then ((match interval with Some i -> max 1 i | None -> 1), [])
  else begin
    let t_lo, t_hi = span_of_trace evs in
    let span = max 1 (t_hi - t_lo) in
    let iv = match interval with Some i -> max 1 i | None -> max 1 (span / 64) in
    let nbuckets = ((span - 1) / iv) + 1 in
    let progs = Trace.progs t in
    let units : (string, int ref * int array) Hashtbl.t = Hashtbl.create 16 in
    let busy name a b =
      if b > a then begin
        let total, series =
          match Hashtbl.find_opt units name with
          | Some v -> v
          | None ->
              let v = (ref 0, Array.make nbuckets 0) in
              Hashtbl.add units name v;
              v
        in
        total := !total + (b - a);
        let k0 = (a - t_lo) / iv and k1 = (b - 1 - t_lo) / iv in
        for k = max 0 k0 to min (nbuckets - 1) k1 do
          let blo = t_lo + (k * iv) and bhi = t_lo + ((k + 1) * iv) in
          series.(k) <- series.(k) + (min b bhi - max a blo)
        done
      end
    in
    (* Threads: reconstruct bind -> retire occupancy per packet.  One
       aggregated unit per program (a NIC can have hundreds of threads);
       the busy total is normalized by the distinct threads seen. *)
    let report = analyze t in
    let thread_pool : (string, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
    Array.iter
      (fun p ->
        if p.p_thread >= 0 then begin
          let name = prog_name progs p.p_prog ^ "/threads" in
          let pool =
            match Hashtbl.find_opt thread_pool name with
            | Some s -> s
            | None ->
                let s = Hashtbl.create 64 in
                Hashtbl.add thread_pool name s;
                s
          in
          Hashtbl.replace pool p.p_thread ();
          busy name (p.p_arrival + p.p_comp.queue) p.p_retire
        end)
      report.packets;
    (* Shared units straight from the spans. *)
    Array.iter
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Accel_use -> busy e.Trace.label e.Trace.t0 e.Trace.t1
        | Trace.Dma_xfer ->
            busy (Printf.sprintf "dma-%s[%d]" e.Trace.label e.Trace.arg) e.Trace.t0 e.Trace.t1
        | Trace.Mem_access -> busy ("mem-" ^ e.Trace.label) e.Trace.t0 e.Trace.t1
        | _ -> ())
      evs;
    let out =
      Hashtbl.fold
        (fun name (total, series) acc ->
          let lanes =
            match Hashtbl.find_opt thread_pool name with
            | Some pool -> max 1 (Hashtbl.length pool)
            | None -> 1
          in
          let fl = float_of_int lanes in
          {
            u_name = (if lanes > 1 then Printf.sprintf "%s(x%d)" name lanes else name);
            u_busy = !total;
            u_util = float_of_int !total /. (float_of_int span *. fl);
            u_series =
              Array.mapi
                (fun k b ->
                  let w = min (t_lo + ((k + 1) * iv)) t_hi - (t_lo + (k * iv)) in
                  if w <= 0 then 0. else float_of_int b /. (float_of_int w *. fl))
                series;
          }
          :: acc)
        units []
      |> List.sort (fun a b -> compare a.u_name b.u_name)
    in
    (iv, out)
  end

let queue_depth ?interval t =
  let evs = Trace.events t in
  if Array.length evs = 0 then ((match interval with Some i -> max 1 i | None -> 1), [])
  else begin
    let t_lo, t_hi = span_of_trace evs in
    let span = max 1 (t_hi - t_lo) in
    let iv = match interval with Some i -> max 1 i | None -> max 1 (span / 64) in
    let nbuckets = ((span - 1) / iv) + 1 in
    let progs = Trace.progs t in
    let series : (string, int array) Hashtbl.t = Hashtbl.create 4 in
    Array.iter
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Arrival ->
            let name = prog_name progs e.Trace.prog in
            let s =
              match Hashtbl.find_opt series name with
              | Some s -> s
              | None ->
                  let s = Array.make nbuckets 0 in
                  Hashtbl.add series name s;
                  s
            in
            let k = min (nbuckets - 1) ((e.Trace.t0 - t_lo) / iv) in
            s.(k) <- max s.(k) e.Trace.arg
        | _ -> ())
      evs;
    ( iv,
      Hashtbl.fold (fun name s acc -> (name, s) :: acc) series []
      |> List.sort (fun (a, _) (b, _) -> compare a b) )
  end

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let pp_report fmt r =
  Format.fprintf fmt "@[<v>";
  Format.fprintf fmt "%-12s %-8s %7s %9s %9s %10s %9s %9s %9s  %s@,"
    "program" "type" "pkts" "queue" "compute" "accel-wait" "mem" "wire" "total" "verdict";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-12s %-8s %7d %9.1f %9.1f %10.1f %9.1f %9.1f %9.1f  %s@,"
        (prog_name r.progs row.r_prog)
        row.r_type row.r_count row.r_queue row.r_compute row.r_accel_wait row.r_mem
        row.r_wire row.r_total row.r_dominant)
    r.rows;
  if r.incomplete > 0 then
    Format.fprintf fmt "(%d packets skipped: timelines truncated by the trace ring)@,"
      r.incomplete;
  Format.fprintf fmt "@]"

let pp_slowest fmt picked =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun (p, evs) ->
      Format.fprintf fmt "packet #%d (%s, prog %d, thr %d): %d cycles@,"
        p.p_seq p.p_type p.p_prog p.p_thread (p.p_retire - p.p_arrival);
      Array.iter
        (fun (e : Trace.event) ->
          if e.Trace.t1 > e.Trace.t0 then
            Format.fprintf fmt "  %8d..%-8d %-11s %s@," e.Trace.t0 e.Trace.t1
              (Trace.kind_name e.Trace.kind) e.Trace.label
          else
            Format.fprintf fmt "  %8d          %-11s %s@," e.Trace.t0
              (Trace.kind_name e.Trace.kind) e.Trace.label)
        evs)
    picked;
  Format.fprintf fmt "@]"

let pp_utilization fmt (iv, units) =
  Format.fprintf fmt "@[<v>unit utilization (interval %d cycles):@," iv;
  List.iter
    (fun u ->
      let spark =
        String.concat ""
          (Array.to_list
             (Array.map
                (fun v ->
                  let ramp = [| " "; "."; ":"; "-"; "="; "#" |] in
                  ramp.(min 5 (int_of_float (v *. 5.99))))
                u.u_series))
      in
      Format.fprintf fmt "  %-16s %5.1f%% |%s|@," u.u_name (100. *. u.u_util) spark)
    units;
  Format.fprintf fmt "@]"
