module Ts = Clara_obs.Timeseries
module J = Clara_util.Json

(* Per-tenant series, indexed by the t_* constants below. *)
let t_queue = 0
let t_goodput = 1
let t_drops = 2
let t_latency = 3
let t_busy = 4
let t_deficit = 5
let t_fc_hits = 6
let t_fc_misses = 7
let t_emem_hits = 8
let t_emem_misses = 9

let tenant_metrics =
  [|
    ("queue_depth", Ts.Gauge);
    ("goodput", Ts.Rate);
    ("drops", Ts.Rate);
    ("latency", Ts.Gauge);
    ("busy_cycles", Ts.Rate);
    ("wrr_deficit", Ts.Gauge);
    ("fc_hits", Ts.Rate);
    ("fc_misses", Ts.Rate);
    ("emem_hits", Ts.Rate);
    ("emem_misses", Ts.Rate);
  |]

(* Sim-wide series. *)
let g_accel_busy = 0
let g_dma_busy = 1
let g_upcalls = 2
let g_fast_replay = 3
let g_fast_execute = 4

let global_metrics =
  [|
    ("accel_busy", Ts.Rate);
    ("dma_busy", Ts.Rate);
    ("upcalls", Ts.Rate);
    ("fast_replay", Ts.Rate);
    ("fast_execute", Ts.Rate);
  |]

(* Scalar accumulators for the window in flight.  The per-packet hooks
   touch only these (a few adds and one division each); the series get
   one [observe_agg] per window advance, in [flush].  Window sums are
   identical to per-event observes — every pending event shares the
   window of [acc_now], the timestamp the flush is attributed to. *)
type tacc = {
  mutable q_sum : float;
  mutable q_n : int;
  mutable good : int;
  mutable drop : int;
  mutable lat_sum : float;
  mutable busy_sum : float;
  mutable def_sum : float;
  mutable def_n : int;
}

let fresh_tacc () =
  { q_sum = 0.; q_n = 0; good = 0; drop = 0; lat_sum = 0.; busy_sum = 0.;
    def_sum = 0.; def_n = 0 }

type t = {
  cad : int;
  max_w : int;
  mutable names : string array;
  mutable tenants : Ts.t array array; (* indexed [tenant][t_ constant] *)
  mutable globals : Ts.t array;       (* indexed [g_ constant] *)
  mutable accs : tacc array;
  mutable g_replay : int;
  mutable g_execute : int;
  (* Delta cursors for the sim's cumulative counters, sampled at flush. *)
  mutable cur_fc_h : int array;
  mutable cur_fc_m : int array;
  mutable cur_em_h : int array;
  mutable cur_em_m : int array;
  mutable cur_accel : int;
  mutable cur_dma : int;
  mutable cur_up : int;
  mutable simh : Device.sim option;
  (* Window tracking: [win_cadence] mirrors the series' downsampling
     schedule (same max-window budget, same doubling), [cur_win] is
     [acc_now / win_cadence], [acc_now] the last accumulated timestamp
     (-1 when nothing is pending). *)
  mutable win_cadence : int;
  mutable cur_win : int;
  mutable acc_now : int;
}

let mk_tenant ~max_w ~cad i =
  Array.map
    (fun (metric, kind) ->
      Ts.create ~max_windows:max_w
        ~name:(Printf.sprintf "tenant%d.%s" i metric)
        ~kind ~cadence:cad ())
    tenant_metrics

let mk_globals ~max_w ~cad =
  Array.map
    (fun (metric, kind) -> Ts.create ~max_windows:max_w ~name:metric ~kind ~cadence:cad ())
    global_metrics

let reset_shape t names =
  let n = Array.length names in
  t.names <- Array.copy names;
  t.tenants <- Array.init n (fun i -> mk_tenant ~max_w:t.max_w ~cad:t.cad i);
  t.globals <- mk_globals ~max_w:t.max_w ~cad:t.cad;
  t.accs <- Array.init n (fun _ -> fresh_tacc ());
  t.g_replay <- 0;
  t.g_execute <- 0;
  t.cur_fc_h <- Array.make n 0;
  t.cur_fc_m <- Array.make n 0;
  t.cur_em_h <- Array.make n 0;
  t.cur_em_m <- Array.make n 0;
  t.cur_accel <- 0;
  t.cur_dma <- 0;
  t.cur_up <- 0;
  t.simh <- None;
  t.win_cadence <- t.cad;
  t.cur_win <- -1;
  t.acc_now <- -1

let create ?(max_windows = 256) ?(cadence = 8192) () =
  if cadence <= 0 then invalid_arg "Telemetry.create: cadence must be positive";
  let t =
    {
      cad = cadence;
      max_w = max 8 max_windows;
      names = [||];
      tenants = [||];
      globals = [||];
      accs = [||];
      g_replay = 0;
      g_execute = 0;
      cur_fc_h = [||];
      cur_fc_m = [||];
      cur_em_h = [||];
      cur_em_m = [||];
      cur_accel = 0;
      cur_dma = 0;
      cur_up = 0;
      simh = None;
      win_cadence = cadence;
      cur_win = -1;
      acc_now = -1;
    }
  in
  reset_shape t [| "prog" |];
  t

let cadence t = t.cad
let tenant_names t = Array.copy t.names
let set_tenants t names = reset_shape t names

let fresh_like t =
  let f = create ~max_windows:t.max_w ~cadence:t.cad () in
  reset_shape f t.names;
  f

let[@inline] delta_agg series ~now cursor fresh =
  let d = fresh - cursor in
  if d > 0 then Ts.observe_agg series ~now ~sum:(float_of_int d) ~count:1;
  fresh

let flush t =
  if t.acc_now >= 0 then begin
    let now = t.acc_now in
    Array.iteri
      (fun i a ->
        let row = t.tenants.(i) in
        Ts.observe_agg row.(t_queue) ~now ~sum:a.q_sum ~count:a.q_n;
        Ts.observe_agg row.(t_goodput) ~now ~sum:(float_of_int a.good) ~count:a.good;
        Ts.observe_agg row.(t_drops) ~now ~sum:(float_of_int a.drop) ~count:a.drop;
        Ts.observe_agg row.(t_latency) ~now ~sum:a.lat_sum ~count:a.good;
        Ts.observe_agg row.(t_busy) ~now ~sum:a.busy_sum ~count:a.good;
        Ts.observe_agg row.(t_deficit) ~now ~sum:a.def_sum ~count:a.def_n;
        a.q_sum <- 0.; a.q_n <- 0; a.good <- 0; a.drop <- 0;
        a.lat_sum <- 0.; a.busy_sum <- 0.; a.def_sum <- 0.; a.def_n <- 0)
      t.accs;
    Ts.observe_agg t.globals.(g_fast_replay) ~now
      ~sum:(float_of_int t.g_replay) ~count:t.g_replay;
    Ts.observe_agg t.globals.(g_fast_execute) ~now
      ~sum:(float_of_int t.g_execute) ~count:t.g_execute;
    t.g_replay <- 0;
    t.g_execute <- 0;
    (match t.simh with
    | None -> ()
    | Some sim ->
        Array.iteri
          (fun i row ->
            t.cur_fc_h.(i) <-
              delta_agg row.(t_fc_hits) ~now t.cur_fc_h.(i)
                (Device.flow_cache_hits_of sim i);
            t.cur_fc_m.(i) <-
              delta_agg row.(t_fc_misses) ~now t.cur_fc_m.(i)
                (Device.flow_cache_misses_of sim i);
            t.cur_em_h.(i) <-
              delta_agg row.(t_emem_hits) ~now t.cur_em_h.(i)
                (Device.emem_hits_of sim i);
            t.cur_em_m.(i) <-
              delta_agg row.(t_emem_misses) ~now t.cur_em_m.(i)
                (Device.emem_misses_of sim i))
          t.tenants;
        t.cur_accel <-
          delta_agg t.globals.(g_accel_busy) ~now t.cur_accel
            (Device.accel_busy_cycles sim);
        t.cur_dma <-
          delta_agg t.globals.(g_dma_busy) ~now t.cur_dma
            (Device.dma_busy_cycles sim);
        t.cur_up <- delta_agg t.globals.(g_upcalls) ~now t.cur_up (Device.upcalls sim))
  end

(* Advance the window clock to [now], flushing if it left the current
   window.  [win_cadence] follows the same doubling schedule as the
   series themselves (same max-window budget), so flushes happen once
   per *current* window width, not once per base window. *)
let[@inline] tick t now =
  let now = if now < 0 then 0 else now in
  while now / t.win_cadence >= t.max_w do
    t.win_cadence <- t.win_cadence * 2;
    t.cur_win <- -1
  done;
  let w = now / t.win_cadence in
  if w <> t.cur_win then begin
    flush t;
    t.cur_win <- w
  end;
  t.acc_now <- now

let on_arrival t ~tenant ~now ~depth =
  tick t now;
  let a = t.accs.(tenant) in
  a.q_sum <- a.q_sum +. float_of_int depth;
  a.q_n <- a.q_n + 1

let on_drop t ~tenant ~now =
  tick t now;
  let a = t.accs.(tenant) in
  a.drop <- a.drop + 1

let on_fast t ~now ~replayed =
  tick t now;
  if replayed then t.g_replay <- t.g_replay + 1
  else t.g_execute <- t.g_execute + 1

let on_deficit t ~tenant ~now ~credit =
  tick t now;
  let a = t.accs.(tenant) in
  a.def_sum <- a.def_sum +. float_of_int credit;
  a.def_n <- a.def_n + 1

let on_retire t ~sim ~tenant ~now ~latency ~service =
  tick t now;
  (match t.simh with None -> t.simh <- Some sim | Some _ -> ());
  let a = t.accs.(tenant) in
  a.good <- a.good + 1;
  a.lat_sum <- a.lat_sum +. float_of_int latency;
  a.busy_sum <- a.busy_sum +. float_of_int service

let absorb t srcs =
  flush t;
  List.iter
    (fun s ->
      flush s;
      if Array.length s.tenants <> Array.length t.tenants then
        invalid_arg "Telemetry.absorb: tenant counts disagree")
    srcs;
  let merge_cell own pick = Ts.merge (own :: List.map pick srcs) in
  t.tenants <-
    Array.mapi
      (fun i row -> Array.mapi (fun k s -> merge_cell s (fun src -> src.tenants.(i).(k))) row)
      t.tenants;
  t.globals <-
    Array.mapi (fun k s -> merge_cell s (fun src -> src.globals.(k))) t.globals

let series t =
  flush t;
  List.concat_map Array.to_list (Array.to_list t.tenants) @ Array.to_list t.globals

let to_json t =
  J.Obj
    [
      ("schema", J.Int 1);
      ("cadence", J.Int t.cad);
      ("tenants", J.List (List.map (fun n -> J.String n) (Array.to_list t.names)));
      ("series", J.List (List.map Ts.to_json (series t)));
    ]

let to_csv t =
  let b = Buffer.create 1024 in
  Buffer.add_string b Ts.csv_header;
  Buffer.add_char b '\n';
  List.iter
    (fun s ->
      List.iter
        (fun row ->
          Buffer.add_string b row;
          Buffer.add_char b '\n')
        (Ts.to_csv_rows s))
    (series t);
  Buffer.contents b
