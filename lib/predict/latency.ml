module Lru = Clara_util.Lru
module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module W = Clara_workload
module M = Clara_mapping.Mapping
module P = Clara_lnic.Params

type config = {
  scan_match_fraction : float;
  exceed_fraction : float;
  opaque_fraction : float;
  seed : int64;
  include_wire : bool;
  flow_cache_hit_ratio : float option;
}

let default_config =
  { scan_match_fraction = 0.1; exceed_fraction = 0.05; opaque_fraction = 0.5;
    seed = 7L; include_wire = true; flow_cache_hit_ratio = None }

type t = {
  lnic : L.Graph.t;
  df : D.Graph.t;
  mapping : M.t;
  config : config;
  (* Abstract state: which keys each table has seen (bounded). *)
  flow_seen : (string, Lru.t) Hashtbl.t;
  (* LPM/route tables are provisioned configuration, not learned state:
     matches against them succeed. *)
  provisioned : (string, unit) Hashtbl.t;
  (* Off-path only: the eSwitch flow cache, sized by its SRAM.  A vcall
     on cached flows runs at the hardware hit price; a miss pays the
     upcall plus the software cost of the same node (two-regime). *)
  eswitch_cache : Lru.t option;
  upcall_cycles : float;
  mutable rng : W.Prng.t;
  nodes_by_block : (int, D.Node.t list) Hashtbl.t;
}

let create ?(config = default_config) lnic df mapping =
  let nodes_by_block = Hashtbl.create 32 in
  Array.iter
    (fun (n : D.Node.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt nodes_by_block n.D.Node.block) in
      Hashtbl.replace nodes_by_block n.D.Node.block (cur @ [ n ]))
    df.D.Graph.nodes;
  let flow_seen = Hashtbl.create 8 in
  let provisioned = Hashtbl.create 4 in
  List.iter
    (fun (s : Ir.state_obj) ->
      Hashtbl.replace flow_seen s.Ir.st_name
        (Lru.create ~capacity:(max 1 s.Ir.st_entries));
      if s.Ir.st_kind = Clara_cir.Ast.S_lpm then
        Hashtbl.replace provisioned s.Ir.st_name ())
    (D.Graph.states df);
  let eswitch_cache =
    if lnic.L.Graph.arch = L.Graph.Off_path
       && L.Graph.find_accelerator lnic L.Unit_.Eswitch <> None
    then
      let sram = P.accel_sram lnic.L.Graph.params L.Unit_.Eswitch in
      (* ~32 B per match-action entry, as in the simulator's flow cache. *)
      if sram > 0 then Some (Lru.create ~capacity:(max 1 (sram / 32))) else None
    else None
  in
  { lnic; df; mapping; config; flow_seen; provisioned; eswitch_cache;
    upcall_cycles = float_of_int (L.Graph.upcall_cycles lnic);
    rng = W.Prng.create ~seed:config.seed; nodes_by_block }

let reset_state t =
  Hashtbl.iter (fun _ l -> Lru.clear l) t.flow_seen;
  Option.iter Lru.clear t.eswitch_cache;
  t.rng <- W.Prng.create ~seed:t.config.seed

type per_packet = { cycles : float; emitted : bool }

let sizes_of_packet (pkt : W.Packet.t) (states : Ir.state_obj list) =
  {
    D.Cost.payload_bytes = float_of_int pkt.W.Packet.payload_bytes;
    packet_bytes = float_of_int (W.Packet.total_bytes pkt);
    header_bytes = float_of_int (W.Packet.header_bytes pkt);
    state_entries =
      (fun s ->
        match List.find_opt (fun o -> o.Ir.st_name = s) states with
        | Some o -> float_of_int o.Ir.st_entries
        | None -> 0.);
    opaque_trip = 1.;
  }

let state_region_of_mapping t s =
  match M.placement_of_state t.mapping s with
  | Some (M.In_memory m) -> m
  | Some (M.In_accel _) | None ->
      (* Accel-hosted state is costed inside the accelerator vcall; if a
         stray instruction still asks, charge external memory. *)
      (match
         Array.to_list t.lnic.L.Graph.memories
         |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
       with
      | Some m -> m.L.Memory.id
      | None -> 0)

let node_cost t (pkt : W.Packet.t) (n : D.Node.t) =
  let unit_ = L.Graph.unit_ t.lnic t.mapping.M.node_unit.(n.D.Node.id) in
  let sizes = sizes_of_packet pkt (D.Graph.states t.df) in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) (D.Graph.states t.df) with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let ctx =
    {
      D.Cost.lnic = t.lnic;
      exec_unit = unit_;
      state_region = state_region_of_mapping t;
      state_footprint = footprint;
      packet_region =
        Clara_mapping.Encode.packet_region_for t.lnic unit_
          ~packet_bytes:sizes.D.Cost.packet_bytes;
      sizes;
    }
  in
  match D.Cost.node_cycles ctx n with
  | Some c -> c
  | None ->
      (* The mapping guaranteed executability; a None here is a bug. *)
      failwith
        (Printf.sprintf "Latency: node n%d unexecutable on its mapped unit" n.D.Node.id)

(* What [n] would cost run in software on a general core — the price a
   flow-cache miss pays after the upcall, regardless of where the mapping
   placed the node.  Accel-hosted state is charged at external memory
   here (see [state_region_of_mapping]): the slow path walks the full
   table in DRAM, not the cached entries. *)
let software_node_cost t (pkt : W.Packet.t) (n : D.Node.t) =
  match L.Graph.general_cores t.lnic with
  | [] -> 0.
  | core :: _ ->
      let sizes = sizes_of_packet pkt (D.Graph.states t.df) in
      let footprint s =
        match List.find_opt (fun o -> o.Ir.st_name = s) (D.Graph.states t.df) with
        | Some o -> Ir.state_bytes o
        | None -> 0
      in
      let ctx =
        {
          D.Cost.lnic = t.lnic;
          exec_unit = core;
          state_region = state_region_of_mapping t;
          state_footprint = footprint;
          packet_region =
            Clara_mapping.Encode.packet_region_for t.lnic core
              ~packet_bytes:sizes.D.Cost.packet_bytes;
          sizes;
        }
      in
      Option.value ~default:0. (D.Cost.node_cycles ctx n)

(* The two-regime off-path charge.  [node_cost] prices an
   eSwitch-mapped vcall at its fast-path hit cost; this adds what the
   miss regime costs on top: the upcall over the fabric plus the
   software replay of the node on the Arm cores.  The hit/miss decision
   tracks a per-flow LRU sized by the eSwitch SRAM, or blends
   analytically when [flow_cache_hit_ratio] pins the ratio.  Zero on
   every on-path target ([Graph.upcall_cycles] is 0 there), and only
   stateful vcalls blend — the flow cache caches flows, so stateless
   eSwitch work (parsing, header rewrites) is hit-priced pipeline
   hardware.  Must be called exactly once per charged node so the LRU
   state advances identically in every walk. *)
let eswitch_node_extra t (pkt : W.Packet.t) (n : D.Node.t) =
  if t.upcall_cycles = 0. then 0.
  else
    let unit_ = L.Graph.unit_ t.lnic t.mapping.M.node_unit.(n.D.Node.id) in
    match (unit_.L.Unit_.kind, n.D.Node.kind) with
    | L.Unit_.Accelerator L.Unit_.Eswitch, D.Node.N_vcall v
      when v.Ir.state <> None ->
        let miss =
          match t.config.flow_cache_hit_ratio with
          | Some h -> 1. -. Float.max 0. (Float.min 1. h)
          | None -> (
              match t.eswitch_cache with
              | Some c -> if Lru.touch c (W.Packet.flow_key pkt) then 0. else 1.
              | None -> 0.)
        in
        if miss = 0. then 0.
        else miss *. (t.upcall_cycles +. software_node_cost t pkt n)
    | _ -> 0.

(* Resolve a guard against the packet and tracked state.  Table-hit
   guards are pure queries; state only becomes "seen" when the walk
   actually executes an insertion (V_table_update) for that table —
   mirroring the NF's real semantics (e.g. a firewall admits state only
   on SYN). *)
let rec resolve_guard t (pkt : W.Packet.t) (g : Ir.guard) =
  match g with
  | Ir.G_proto k -> W.Packet.proto_number pkt.W.Packet.proto = k
  | Ir.G_flag k -> pkt.W.Packet.flags land k <> 0
  | Ir.G_table_hit s ->
      Hashtbl.mem t.provisioned s
      || (match Hashtbl.find_opt t.flow_seen s with
         | None -> false
         | Some seen -> Lru.mem seen (W.Packet.flow_key pkt))
  | Ir.G_scan_match -> W.Prng.bool t.rng t.config.scan_match_fraction
  | Ir.G_count_exceeds -> W.Prng.bool t.rng t.config.exceed_fraction
  | Ir.G_opaque -> W.Prng.bool t.rng t.config.opaque_fraction
  | Ir.G_not g' -> not (resolve_guard t pkt g')
  | Ir.G_or (a, b) -> resolve_guard t pkt a || resolve_guard t pkt b

let wire_cycles lnic (pkt : W.Packet.t) ~emitted =
  let params = lnic.L.Graph.params in
  let bytes = W.Packet.total_bytes pkt in
  let hub kind =
    match
      List.find_opt (fun h -> h.L.Hub.kind = kind) (Array.to_list lnic.L.Graph.hubs)
    with
    | Some h -> float_of_int h.L.Hub.per_packet_cycles
    | None -> 0.
  in
  let rx = L.Cost_fn.eval params.P.wire_ingress (float_of_int bytes) +. hub `Ingress in
  let tx =
    if emitted then L.Cost_fn.eval params.P.wire_egress (float_of_int bytes) +. hub `Egress
    else 0.
  in
  rx +. tx

let wire_costs t pkt ~emitted =
  if t.config.include_wire then wire_cycles t.lnic pkt ~emitted else 0.

exception Walk_limit

let packet_latency t (pkt : W.Packet.t) =
  let cir = t.df.D.Graph.cir in
  let cost = ref 0. in
  let emitted = ref false in
  let steps = ref 0 in
  let charge_block bid =
    List.iter
      (fun (n : D.Node.t) ->
        cost := !cost +. node_cost t pkt n +. eswitch_node_extra t pkt n;
        match n.D.Node.kind with
        | D.Node.N_vcall v when v.Ir.vc = P.V_emit -> emitted := true
        | D.Node.N_vcall v when v.Ir.vc = P.V_table_update -> (
            (* Executed insertion: the flow is now table-resident. *)
            match v.Ir.state with
            | Some s -> (
                match Hashtbl.find_opt t.flow_seen s with
                | Some seen -> ignore (Lru.touch seen (W.Packet.flow_key pkt))
                | None -> ())
            | None -> ())
        | _ -> ())
      (Option.value ~default:[] (Hashtbl.find_opt t.nodes_by_block bid))
  in
  (* Walk the structured CFG.  [stop] is the loop header whose back edge
     ends the current iteration walk (None at top level). *)
  let rec walk bid ~stop =
    incr steps;
    if !steps > 10_000 then raise Walk_limit;
    charge_block bid;
    match (Ir.block cir bid).Ir.term with
    | Ir.Ret -> ()
    | Ir.Jump d ->
        if Some d = stop then () (* end of one loop iteration *)
        else walk d ~stop
    | Ir.Cond { guard; then_; else_ } ->
        if resolve_guard t pkt guard then walk then_ ~stop
        else walk else_ ~stop
    | Ir.Loop { body; exit; trip = _ } ->
        (* Body nodes carry the trip multiplier; walk the body once for
           guard resolution, then continue at the exit. *)
        walk body ~stop:(Some bid);
        walk exit ~stop
  in
  walk cir.Ir.entry ~stop:None;
  let total = !cost +. wire_costs t pkt ~emitted:!emitted in
  { cycles = total; emitted = !emitted }

type prediction = {
  mean_cycles : float;
  p50_cycles : float;
  p99_cycles : float;
  tcp_mean : float;
  udp_mean : float;
  syn_mean : float;
  emitted_fraction : float;
}

let predict_trace t (trace : W.Trace.t) =
  reset_state t;
  let n = Array.length trace.W.Trace.packets in
  if n = 0 then
    { mean_cycles = 0.; p50_cycles = 0.; p99_cycles = 0.; tcp_mean = Float.nan;
      udp_mean = Float.nan; syn_mean = Float.nan; emitted_fraction = 0. }
  else begin
    let lats = Array.make n 0. in
    let tcp = ref 0. and tcp_n = ref 0 in
    let udp = ref 0. and udp_n = ref 0 in
    let syn = ref 0. and syn_n = ref 0 in
    let emits = ref 0 in
    Array.iteri
      (fun i pkt ->
        let r = packet_latency t pkt in
        lats.(i) <- r.cycles;
        if r.emitted then incr emits;
        (match pkt.W.Packet.proto with
        | W.Packet.Tcp ->
            tcp := !tcp +. r.cycles;
            incr tcp_n
        | W.Packet.Udp ->
            udp := !udp +. r.cycles;
            incr udp_n
        | W.Packet.Other _ -> ());
        if W.Packet.is_syn pkt then begin
          syn := !syn +. r.cycles;
          incr syn_n
        end)
      trace.W.Trace.packets;
    let sorted = Array.copy lats in
    Array.sort compare sorted;
    (* Nearest-rank percentile: the ceil(p*n)-th smallest, 0-indexed. *)
    let pct p =
      sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (float_of_int n *. p)) - 1)))
    in
    let div_or_nan s k = if k = 0 then Float.nan else s /. float_of_int k in
    {
      mean_cycles = Array.fold_left ( +. ) 0. lats /. float_of_int n;
      p50_cycles = pct 0.5;
      p99_cycles = pct 0.99;
      tcp_mean = div_or_nan !tcp !tcp_n;
      udp_mean = div_or_nan !udp !udp_n;
      syn_mean = div_or_nan !syn !syn_n;
      emitted_fraction = float_of_int !emits /. float_of_int n;
    }
  end

let pp_opt_mean fmt v =
  if Float.is_nan v then Format.pp_print_string fmt "n/a"
  else Format.fprintf fmt "%.0f" v

let pp_prediction fmt p =
  Format.fprintf fmt
    "mean %.0f cyc, p50 %.0f, p99 %.0f, tcp %a, udp %a, syn %a, emit %.0f%%"
    p.mean_cycles p.p50_cycles p.p99_cycles pp_opt_mean p.tcp_mean pp_opt_mean p.udp_mean
    pp_opt_mean p.syn_mean
    (100. *. p.emitted_fraction)

(* ------------------------------------------------------------------ *)
(* Latency attribution (where does the predicted latency go?)          *)

type pkt_components = {
  pc_total : float;    (** Equals {!packet_latency}'s cycles exactly. *)
  pc_compute : float;
  pc_mem : float;
  pc_accel : float;
  pc_wire : float;
  pc_emitted : bool;
}

(* Same walk as [packet_latency] — the total is accumulated in the same
   order with the same per-node values, and guards consume the RNG
   identically, so [pc_total] is bit-identical to what [packet_latency]
   would have returned for this packet at this state.  Compute is the
   residual of the node total after memory and accelerator charges, so
   the four components sum to [pc_total] exactly. *)
let packet_components t (pkt : W.Packet.t) =
  let cir = t.df.D.Graph.cir in
  let cost = ref 0. in
  let mem = ref 0. and accel = ref 0. in
  let emitted = ref false in
  let steps = ref 0 in
  let node_split (n : D.Node.t) =
    let unit_ = L.Graph.unit_ t.lnic t.mapping.M.node_unit.(n.D.Node.id) in
    let sizes = sizes_of_packet pkt (D.Graph.states t.df) in
    let footprint s =
      match List.find_opt (fun o -> o.Ir.st_name = s) (D.Graph.states t.df) with
      | Some o -> Ir.state_bytes o
      | None -> 0
    in
    let ctx =
      {
        D.Cost.lnic = t.lnic;
        exec_unit = unit_;
        state_region = state_region_of_mapping t;
        state_footprint = footprint;
        packet_region =
          Clara_mapping.Encode.packet_region_for t.lnic unit_
            ~packet_bytes:sizes.D.Cost.packet_bytes;
        sizes;
      }
    in
    match D.Cost.node_breakdown ctx n with
    | Some b -> b
    | None -> D.Cost.{ b_compute = 0.; b_mem = 0.; b_accel = 0. }
  in
  let charge_block bid =
    List.iter
      (fun (n : D.Node.t) ->
        (* The miss-regime extra is charged as compute: it lands in the
           residual, keeping the component sums exact. *)
        cost := !cost +. node_cost t pkt n +. eswitch_node_extra t pkt n;
        let b = node_split n in
        mem := !mem +. b.D.Cost.b_mem;
        accel := !accel +. b.D.Cost.b_accel;
        (match n.D.Node.kind with
        | D.Node.N_vcall v when v.Ir.vc = P.V_emit -> emitted := true
        | D.Node.N_vcall v when v.Ir.vc = P.V_table_update -> (
            match v.Ir.state with
            | Some s -> (
                match Hashtbl.find_opt t.flow_seen s with
                | Some seen -> ignore (Lru.touch seen (W.Packet.flow_key pkt))
                | None -> ())
            | None -> ())
        | _ -> ()))
      (Option.value ~default:[] (Hashtbl.find_opt t.nodes_by_block bid))
  in
  let rec walk bid ~stop =
    incr steps;
    if !steps > 10_000 then raise Walk_limit;
    charge_block bid;
    match (Ir.block cir bid).Ir.term with
    | Ir.Ret -> ()
    | Ir.Jump d -> if Some d = stop then () else walk d ~stop
    | Ir.Cond { guard; then_; else_ } ->
        if resolve_guard t pkt guard then walk then_ ~stop else walk else_ ~stop
    | Ir.Loop { body; exit; trip = _ } ->
        walk body ~stop:(Some bid);
        walk exit ~stop
  in
  walk cir.Ir.entry ~stop:None;
  let wire = wire_costs t pkt ~emitted:!emitted in
  let total = !cost +. wire in
  {
    pc_total = total;
    pc_compute = !cost -. !mem -. !accel;
    pc_mem = !mem;
    pc_accel = !accel;
    pc_wire = wire;
    pc_emitted = !emitted;
  }

type att_row = {
  at_type : string;   (** "tcp-syn", "tcp", "udp", "other" or "all". *)
  at_count : int;
  at_compute : float;
  at_mem : float;
  at_accel : float;
  at_wire : float;
  at_total : float;
  at_dominant : string;
}

type attribution = { att_rows : att_row list; att_mean : float }

let type_label (pkt : W.Packet.t) =
  match pkt.W.Packet.proto with
  | W.Packet.Tcp -> if W.Packet.is_syn pkt then "tcp-syn" else "tcp"
  | W.Packet.Udp -> "udp"
  | W.Packet.Other _ -> "other"

let attribute_trace t (trace : W.Trace.t) =
  reset_state t;
  let n = Array.length trace.W.Trace.packets in
  if n = 0 then { att_rows = []; att_mean = 0. }
  else begin
    let lats = Array.make n 0. in
    let sums : (string, int ref * float ref * float ref * float ref * float ref) Hashtbl.t =
      Hashtbl.create 8
    in
    let add ty c =
      let cnt, co, me, ac, wi =
        match Hashtbl.find_opt sums ty with
        | Some v -> v
        | None ->
            let v = (ref 0, ref 0., ref 0., ref 0., ref 0.) in
            Hashtbl.add sums ty v;
            v
      in
      incr cnt;
      co := !co +. c.pc_compute;
      me := !me +. c.pc_mem;
      ac := !ac +. c.pc_accel;
      wi := !wi +. c.pc_wire
    in
    Array.iteri
      (fun i pkt ->
        let c = packet_components t pkt in
        lats.(i) <- c.pc_total;
        add (type_label pkt) c;
        add "all" c)
      trace.W.Trace.packets;
    let rows =
      Hashtbl.fold
        (fun ty (cnt, co, me, ac, wi) acc ->
          let fn = float_of_int !cnt in
          let compute = !co /. fn and mem = !me /. fn in
          let accel = !ac /. fn and wire = !wi /. fn in
          let dominant =
            fst
              (List.fold_left
                 (fun (bn, bv) (nm, v) -> if v > bv then (nm, v) else (bn, bv))
                 ("compute", compute)
                 [ ("memory", mem); ("accel", accel); ("wire", wire) ])
          in
          {
            at_type = ty;
            at_count = !cnt;
            at_compute = compute;
            at_mem = mem;
            at_accel = accel;
            at_wire = wire;
            at_total = compute +. mem +. accel +. wire;
            at_dominant = dominant;
          }
          :: acc)
        sums []
      |> List.sort (fun a b ->
             match (a.at_type = "all", b.at_type = "all") with
             | true, false -> 1
             | false, true -> -1
             | _ -> compare a.at_type b.at_type)
    in
    { att_rows = rows; att_mean = Array.fold_left ( +. ) 0. lats /. float_of_int n }
  end

let pp_attribution fmt a =
  Format.fprintf fmt "@[<v>%-8s %7s %9s %9s %9s %9s %9s  %s@," "type" "pkts" "compute"
    "mem" "accel" "wire" "total" "verdict";
  List.iter
    (fun r ->
      Format.fprintf fmt "%-8s %7d %9.1f %9.1f %9.1f %9.1f %9.1f  %s@," r.at_type
        r.at_count r.at_compute r.at_mem r.at_accel r.at_wire r.at_total r.at_dominant)
    a.att_rows;
  Format.fprintf fmt "@]"

(* ------------------------------------------------------------------ *)
(* Predicted per-packet timeline as Chrome/Perfetto trace-event JSON.
   The predictor runs no engine, so this is the analytic timeline: the
   packets laid end-to-end on one synthetic track, each with wire-rx,
   per-node and wire-tx spans.  Useful to eyeball where a prediction
   says the cycles go; load at ui.perfetto.dev like a [clara trace]. *)

let node_name (n : D.Node.t) =
  match n.D.Node.kind with
  | D.Node.N_vcall v -> P.vcall_name v.Ir.vc
  | D.Node.N_compute _ -> "compute"

let perfetto_timeline t (trace : W.Trace.t) =
  let module J = Clara_util.Json in
  reset_state t;
  let freq_mhz =
    match L.Graph.general_cores t.lnic with
    | u :: _ -> u.L.Unit_.freq_mhz
    | [] -> 1
  in
  let us cycles = cycles /. float_of_int freq_mhz in
  let out = ref [] in
  let clock = ref 0. in
  let span name dur ~seq =
    if dur > 0. then
      out :=
        J.Obj
          [
            ("name", J.String name);
            ("ph", J.String "X");
            ("ts", J.Float (us !clock));
            ("dur", J.Float (us dur));
            ("pid", J.Int 1);
            ("tid", J.Int 0);
            ("args", J.Obj [ ("seq", J.Int seq) ]);
          ]
        :: !out;
    clock := !clock +. dur
  in
  let cir = t.df.D.Graph.cir in
  Array.iteri
    (fun seq pkt ->
      (* Pre-resolve the emitted flag on a copy of the walk?  No — walk
         once, emitting node spans as we charge them; the wire-rx span
         goes first with the packet's ingress share, wire-tx last. *)
      let params = t.lnic.L.Graph.params in
      let bytes = float_of_int (W.Packet.total_bytes pkt) in
      let hub kind =
        match
          List.find_opt (fun h -> h.L.Hub.kind = kind) (Array.to_list t.lnic.L.Graph.hubs)
        with
        | Some h -> float_of_int h.L.Hub.per_packet_cycles
        | None -> 0.
      in
      if t.config.include_wire then
        span "wire-rx" (L.Cost_fn.eval params.P.wire_ingress bytes +. hub `Ingress) ~seq;
      let emitted = ref false in
      let steps = ref 0 in
      let charge_block bid =
        List.iter
          (fun (n : D.Node.t) ->
            span (node_name n) (node_cost t pkt n +. eswitch_node_extra t pkt n) ~seq;
            match n.D.Node.kind with
            | D.Node.N_vcall v when v.Ir.vc = P.V_emit -> emitted := true
            | D.Node.N_vcall v when v.Ir.vc = P.V_table_update -> (
                match v.Ir.state with
                | Some s -> (
                    match Hashtbl.find_opt t.flow_seen s with
                    | Some seen -> ignore (Lru.touch seen (W.Packet.flow_key pkt))
                    | None -> ())
                | None -> ())
            | _ -> ())
          (Option.value ~default:[] (Hashtbl.find_opt t.nodes_by_block bid))
      in
      let rec walk bid ~stop =
        incr steps;
        if !steps > 10_000 then raise Walk_limit;
        charge_block bid;
        match (Ir.block cir bid).Ir.term with
        | Ir.Ret -> ()
        | Ir.Jump d -> if Some d = stop then () else walk d ~stop
        | Ir.Cond { guard; then_; else_ } ->
            if resolve_guard t pkt guard then walk then_ ~stop else walk else_ ~stop
        | Ir.Loop { body; exit; trip = _ } ->
            walk body ~stop:(Some bid);
            walk exit ~stop
      in
      walk cir.Ir.entry ~stop:None;
      if t.config.include_wire && !emitted then
        span "wire-tx" (L.Cost_fn.eval params.P.wire_egress bytes +. hub `Egress) ~seq)
    trace.W.Trace.packets;
  J.Obj
    [
      ( "traceEvents",
        J.List
          (J.Obj
             [
               ("name", J.String "process_name");
               ("ph", J.String "M");
               ("pid", J.Int 1);
               ("args", J.Obj [ ("name", J.String "clara predict (analytic)") ]);
             ]
          :: List.rev !out) );
      ("displayTimeUnit", J.String "ns");
      ( "otherData",
        J.Obj [ ("tool", J.String "clara predict --trace"); ("freq_mhz", J.Int freq_mhz) ]
      );
    ]
