module Lru = Clara_util.Lru
module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module W = Clara_workload
module M = Clara_mapping.Mapping
module P = Clara_lnic.Params

type config = {
  scan_match_fraction : float;
  exceed_fraction : float;
  opaque_fraction : float;
  seed : int64;
  include_wire : bool;
}

let default_config =
  { scan_match_fraction = 0.1; exceed_fraction = 0.05; opaque_fraction = 0.5;
    seed = 7L; include_wire = true }

type t = {
  lnic : L.Graph.t;
  df : D.Graph.t;
  mapping : M.t;
  config : config;
  (* Abstract state: which keys each table has seen (bounded). *)
  flow_seen : (string, Lru.t) Hashtbl.t;
  (* LPM/route tables are provisioned configuration, not learned state:
     matches against them succeed. *)
  provisioned : (string, unit) Hashtbl.t;
  mutable rng : W.Prng.t;
  nodes_by_block : (int, D.Node.t list) Hashtbl.t;
}

let create ?(config = default_config) lnic df mapping =
  let nodes_by_block = Hashtbl.create 32 in
  Array.iter
    (fun (n : D.Node.t) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt nodes_by_block n.D.Node.block) in
      Hashtbl.replace nodes_by_block n.D.Node.block (cur @ [ n ]))
    df.D.Graph.nodes;
  let flow_seen = Hashtbl.create 8 in
  let provisioned = Hashtbl.create 4 in
  List.iter
    (fun (s : Ir.state_obj) ->
      Hashtbl.replace flow_seen s.Ir.st_name
        (Lru.create ~capacity:(max 1 s.Ir.st_entries));
      if s.Ir.st_kind = Clara_cir.Ast.S_lpm then
        Hashtbl.replace provisioned s.Ir.st_name ())
    (D.Graph.states df);
  { lnic; df; mapping; config; flow_seen; provisioned;
    rng = W.Prng.create ~seed:config.seed; nodes_by_block }

let reset_state t =
  Hashtbl.iter (fun _ l -> Lru.clear l) t.flow_seen;
  t.rng <- W.Prng.create ~seed:t.config.seed

type per_packet = { cycles : float; emitted : bool }

let sizes_of_packet (pkt : W.Packet.t) (states : Ir.state_obj list) =
  {
    D.Cost.payload_bytes = float_of_int pkt.W.Packet.payload_bytes;
    packet_bytes = float_of_int (W.Packet.total_bytes pkt);
    header_bytes = float_of_int (W.Packet.header_bytes pkt);
    state_entries =
      (fun s ->
        match List.find_opt (fun o -> o.Ir.st_name = s) states with
        | Some o -> float_of_int o.Ir.st_entries
        | None -> 0.);
    opaque_trip = 1.;
  }

let state_region_of_mapping t s =
  match M.placement_of_state t.mapping s with
  | Some (M.In_memory m) -> m
  | Some (M.In_accel _) | None ->
      (* Accel-hosted state is costed inside the accelerator vcall; if a
         stray instruction still asks, charge external memory. *)
      (match
         Array.to_list t.lnic.L.Graph.memories
         |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
       with
      | Some m -> m.L.Memory.id
      | None -> 0)

let node_cost t (pkt : W.Packet.t) (n : D.Node.t) =
  let unit_ = L.Graph.unit_ t.lnic t.mapping.M.node_unit.(n.D.Node.id) in
  let sizes = sizes_of_packet pkt (D.Graph.states t.df) in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) (D.Graph.states t.df) with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let ctx =
    {
      D.Cost.lnic = t.lnic;
      exec_unit = unit_;
      state_region = state_region_of_mapping t;
      state_footprint = footprint;
      packet_region =
        Clara_mapping.Encode.packet_region_for t.lnic unit_
          ~packet_bytes:sizes.D.Cost.packet_bytes;
      sizes;
    }
  in
  match D.Cost.node_cycles ctx n with
  | Some c -> c
  | None ->
      (* The mapping guaranteed executability; a None here is a bug. *)
      failwith
        (Printf.sprintf "Latency: node n%d unexecutable on its mapped unit" n.D.Node.id)

(* Resolve a guard against the packet and tracked state.  Table-hit
   guards are pure queries; state only becomes "seen" when the walk
   actually executes an insertion (V_table_update) for that table —
   mirroring the NF's real semantics (e.g. a firewall admits state only
   on SYN). *)
let rec resolve_guard t (pkt : W.Packet.t) (g : Ir.guard) =
  match g with
  | Ir.G_proto k -> W.Packet.proto_number pkt.W.Packet.proto = k
  | Ir.G_flag k -> pkt.W.Packet.flags land k <> 0
  | Ir.G_table_hit s ->
      Hashtbl.mem t.provisioned s
      || (match Hashtbl.find_opt t.flow_seen s with
         | None -> false
         | Some seen -> Lru.mem seen (W.Packet.flow_key pkt))
  | Ir.G_scan_match -> W.Prng.bool t.rng t.config.scan_match_fraction
  | Ir.G_count_exceeds -> W.Prng.bool t.rng t.config.exceed_fraction
  | Ir.G_opaque -> W.Prng.bool t.rng t.config.opaque_fraction
  | Ir.G_not g' -> not (resolve_guard t pkt g')
  | Ir.G_or (a, b) -> resolve_guard t pkt a || resolve_guard t pkt b

let wire_cycles lnic (pkt : W.Packet.t) ~emitted =
  let params = lnic.L.Graph.params in
  let bytes = W.Packet.total_bytes pkt in
  let hub kind =
    match
      List.find_opt (fun h -> h.L.Hub.kind = kind) (Array.to_list lnic.L.Graph.hubs)
    with
    | Some h -> float_of_int h.L.Hub.per_packet_cycles
    | None -> 0.
  in
  let rx = L.Cost_fn.eval params.P.wire_ingress (float_of_int bytes) +. hub `Ingress in
  let tx =
    if emitted then L.Cost_fn.eval params.P.wire_egress (float_of_int bytes) +. hub `Egress
    else 0.
  in
  rx +. tx

let wire_costs t pkt ~emitted =
  if t.config.include_wire then wire_cycles t.lnic pkt ~emitted else 0.

exception Walk_limit

let packet_latency t (pkt : W.Packet.t) =
  let cir = t.df.D.Graph.cir in
  let cost = ref 0. in
  let emitted = ref false in
  let steps = ref 0 in
  let charge_block bid =
    List.iter
      (fun (n : D.Node.t) ->
        cost := !cost +. node_cost t pkt n;
        match n.D.Node.kind with
        | D.Node.N_vcall v when v.Ir.vc = P.V_emit -> emitted := true
        | D.Node.N_vcall v when v.Ir.vc = P.V_table_update -> (
            (* Executed insertion: the flow is now table-resident. *)
            match v.Ir.state with
            | Some s -> (
                match Hashtbl.find_opt t.flow_seen s with
                | Some seen -> ignore (Lru.touch seen (W.Packet.flow_key pkt))
                | None -> ())
            | None -> ())
        | _ -> ())
      (Option.value ~default:[] (Hashtbl.find_opt t.nodes_by_block bid))
  in
  (* Walk the structured CFG.  [stop] is the loop header whose back edge
     ends the current iteration walk (None at top level). *)
  let rec walk bid ~stop =
    incr steps;
    if !steps > 10_000 then raise Walk_limit;
    charge_block bid;
    match (Ir.block cir bid).Ir.term with
    | Ir.Ret -> ()
    | Ir.Jump d ->
        if Some d = stop then () (* end of one loop iteration *)
        else walk d ~stop
    | Ir.Cond { guard; then_; else_ } ->
        if resolve_guard t pkt guard then walk then_ ~stop
        else walk else_ ~stop
    | Ir.Loop { body; exit; trip = _ } ->
        (* Body nodes carry the trip multiplier; walk the body once for
           guard resolution, then continue at the exit. *)
        walk body ~stop:(Some bid);
        walk exit ~stop
  in
  walk cir.Ir.entry ~stop:None;
  let total = !cost +. wire_costs t pkt ~emitted:!emitted in
  { cycles = total; emitted = !emitted }

type prediction = {
  mean_cycles : float;
  p50_cycles : float;
  p99_cycles : float;
  tcp_mean : float;
  udp_mean : float;
  syn_mean : float;
  emitted_fraction : float;
}

let predict_trace t (trace : W.Trace.t) =
  reset_state t;
  let n = Array.length trace.W.Trace.packets in
  if n = 0 then
    { mean_cycles = 0.; p50_cycles = 0.; p99_cycles = 0.; tcp_mean = Float.nan;
      udp_mean = Float.nan; syn_mean = Float.nan; emitted_fraction = 0. }
  else begin
    let lats = Array.make n 0. in
    let tcp = ref 0. and tcp_n = ref 0 in
    let udp = ref 0. and udp_n = ref 0 in
    let syn = ref 0. and syn_n = ref 0 in
    let emits = ref 0 in
    Array.iteri
      (fun i pkt ->
        let r = packet_latency t pkt in
        lats.(i) <- r.cycles;
        if r.emitted then incr emits;
        (match pkt.W.Packet.proto with
        | W.Packet.Tcp ->
            tcp := !tcp +. r.cycles;
            incr tcp_n
        | W.Packet.Udp ->
            udp := !udp +. r.cycles;
            incr udp_n
        | W.Packet.Other _ -> ());
        if W.Packet.is_syn pkt then begin
          syn := !syn +. r.cycles;
          incr syn_n
        end)
      trace.W.Trace.packets;
    let sorted = Array.copy lats in
    Array.sort compare sorted;
    (* Nearest-rank percentile: the ceil(p*n)-th smallest, 0-indexed. *)
    let pct p =
      sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (float_of_int n *. p)) - 1)))
    in
    let div_or_nan s k = if k = 0 then Float.nan else s /. float_of_int k in
    {
      mean_cycles = Array.fold_left ( +. ) 0. lats /. float_of_int n;
      p50_cycles = pct 0.5;
      p99_cycles = pct 0.99;
      tcp_mean = div_or_nan !tcp !tcp_n;
      udp_mean = div_or_nan !udp !udp_n;
      syn_mean = div_or_nan !syn !syn_n;
      emitted_fraction = float_of_int !emits /. float_of_int n;
    }
  end

let pp_prediction fmt p =
  Format.fprintf fmt
    "mean %.0f cyc, p50 %.0f, p99 %.0f, tcp %.0f, udp %.0f, syn %.0f, emit %.0f%%"
    p.mean_cycles p.p50_cycles p.p99_cycles p.tcp_mean p.udp_mean p.syn_mean
    (100. *. p.emitted_fraction)
