module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module W = Clara_workload

type report = {
  solo_cycles : float;
  sliced_cycles : float;
  contended_cycles : float;
  slowdown : float;
  accel_utilization : float;
  saturated : bool;
}

let shrink_emem_cache (g : L.Graph.t) ~by_bytes =
  let memories =
    Array.map
      (fun (m : L.Memory.t) ->
        match (m.L.Memory.level, m.L.Memory.cache) with
        | L.Memory.External, Some c ->
            let remaining = max (64 * 1024) (c.L.Memory.cache_bytes - by_bytes) in
            { m with L.Memory.cache = Some { c with L.Memory.cache_bytes = remaining } }
        | _ -> m)
      g.L.Graph.memories
  in
  { g with L.Graph.memories }

let pipeline ?options lnic ~source ~sizes ~prob =
  match Clara_cir.Lower.lower_source source with
  | exception Failure m -> Error m
  | exception Clara_cir.Parser.Error (m, _) -> Error m
  | exception Clara_cir.Lexer.Error (m, _) -> Error m
  | ir -> (
      let ir, _ = Clara_cir.Patterns.run ir in
      let df = D.Build.of_ir ir in
      match Clara_mapping.Encode.map_nf ?options lnic df ~sizes ~prob with
      | Error e -> Error e
      | Ok m -> Ok (df, m))

let state_footprint_of df =
  List.fold_left (fun acc s -> acc + Ir.state_bytes s) 0 (D.Graph.states df)

(* Cycles per packet spent on genuine accelerator units under a mapping.
   Classification is by the LNIC unit class, not by bottleneck-row shape:
   a single general core also shows parallelism = 1, and counting its
   compute as accelerator time overstated head-of-line contention on
   thread-poor slices. *)
let accel_cycles_per_packet lnic df mapping ~sizes ~prob =
  let is_accel name =
    Array.exists
      (fun (u : L.Unit_.t) ->
        String.equal u.L.Unit_.name name && not (L.Unit_.is_general u))
      lnic.L.Graph.units
  in
  let tp = Throughput.estimate ~sizes ~prob lnic df mapping in
  List.fold_left
    (fun acc (r : Throughput.bottleneck) ->
      if is_accel r.Throughput.resource then acc +. r.Throughput.cycles_per_packet
      else acc)
    0. tp.Throughput.resources

let sizes_of profile =
  {
    D.Cost.payload_bytes = W.Profile.mean_payload profile;
    packet_bytes = W.Profile.mean_packet_bytes profile;
    header_bytes = 50.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let freq_hz_of lnic =
  match L.Graph.general_cores lnic with
  | u :: _ -> float_of_int u.L.Unit_.freq_mhz *. 1e6
  | [] -> 1e9

(* N-tenant interference: tenant [i] runs on a [weights.(i)]/sum slice
   of the NIC, its EMEM cache shrunk by the summed state footprint of
   its co-residents, and its accelerator operations inflated by the
   aggregate utilization the co-residents put on the shared
   accelerators.  Utilization is traffic-aware (each tenant's own
   profile rate) and computed against the slice that tenant actually
   runs on — the full-NIC pipeline maps onto more general threads and a
   differently-scaled memory system, which understated per-packet
   accelerator demand roughly in proportion to the slice. *)
let analyze_n ?options ?weights lnic ~sources ~profiles =
  let n = Array.length sources in
  if n = 0 then Error "analyze_n: no tenants"
  else if Array.length profiles <> n then
    Error "analyze_n: sources and profiles disagree on tenant count"
  else begin
    let weights = match weights with None -> Array.make n 1 | Some w -> w in
    if Array.length weights <> n then
      Error "analyze_n: weights and tenant count disagree"
    else if Array.exists (fun w -> w <= 0) weights then
      Error "analyze_n: weights must be positive"
    else begin
      let wsum = Array.fold_left ( + ) 0 weights in
      let prob = D.Flow.default_probability in
      let ( let* ) r f = match r with Error e -> Error e | Ok v -> f v in
      let rec map_e f = function
        | [] -> Ok []
        | x :: tl ->
            let* y = f x in
            let* ys = map_e f tl in
            Ok (y :: ys)
      in
      let idxs = List.init n Fun.id in
      (* Per-tenant precompute on its own slice: footprint, per-packet
         accelerator cycles, induced utilization. *)
      let* pre =
        map_e
          (fun i ->
            let sizes = sizes_of profiles.(i) in
            let slice = L.Graph.slice lnic ~keep_num:weights.(i) ~keep_den:wsum in
            let* df, m = pipeline ?options slice ~source:sources.(i) ~sizes ~prob in
            let fp = state_footprint_of df in
            let accel_cyc = accel_cycles_per_packet slice df m ~sizes ~prob in
            let u = profiles.(i).W.Profile.rate_pps *. accel_cyc /. freq_hz_of slice in
            Ok (slice, fp, u))
          idxs
      in
      let pre = Array.of_list pre in
      let total_u = Array.fold_left (fun a (_, _, u) -> a +. u) 0. pre in
      let* reports =
        map_e
          (fun i ->
            let sizes = sizes_of profiles.(i) in
            let source = sources.(i) in
            let slice, _, own_u = pre.(i) in
            let* df_full, m_full = pipeline ?options lnic ~source ~sizes ~prob in
            let trace = W.Trace.synthesize ~seed:17L profiles.(i) in
            let predict lnic' df mapping =
              let p = Latency.create lnic' df mapping in
              (Latency.predict_trace p trace).Latency.mean_cycles
            in
            let solo = predict lnic df_full m_full in
            let* df_s, m_s = pipeline ?options slice ~source ~sizes ~prob in
            let sliced = predict slice df_s m_s in
            let others_fp =
              Array.to_list pre
              |> List.mapi (fun j (_, fp, _) -> if j = i then 0 else fp)
              |> List.fold_left ( + ) 0
            in
            let shrunk = shrink_emem_cache slice ~by_bytes:others_fp in
            let* df_c, m_c = pipeline ?options shrunk ~source ~sizes ~prob in
            let base = predict shrunk df_c m_c in
            (* Head-of-line blocking on shared accelerators: inflate
               this tenant's accelerator time by the aggregate
               co-resident utilization (M/M/1-style).  The queueing term
               needs u < 1 to stay finite, so it is capped — but
               saturation is no longer silent: [saturated] flags any mix
               whose total demand (co-residents plus self) reaches the
               accelerators' capacity, meaning the contended number is a
               lower bound. *)
            let others_u = total_u -. own_u in
            let u = Float.min 0.9 others_u in
            let own_accel = accel_cycles_per_packet shrunk df_c m_c ~sizes ~prob in
            let contended = base +. (own_accel *. (u /. (1. -. u))) in
            Ok
              {
                solo_cycles = solo;
                sliced_cycles = sliced;
                contended_cycles = contended;
                slowdown = contended /. solo;
                accel_utilization = own_u;
                saturated = total_u >= 1.;
              })
          idxs
      in
      Ok (Array.of_list reports)
    end
  end

let analyze_pair ?options lnic ~source_a ~source_b ~profile =
  match
    analyze_n ?options lnic
      ~sources:[| source_a; source_b |]
      ~profiles:[| profile; profile |]
  with
  | Error e -> Error e
  | Ok [| a; b |] -> Ok (a, b)
  | Ok _ -> assert false
