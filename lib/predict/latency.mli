(** Per-packet latency prediction (§3.5).

    Given the mapped NF, Clara simulates how each workload packet
    traverses the parameterized LNIC: guards resolve against the packet
    (protocol, flags) and against tracked abstract state (a flow-table
    membership set, so the first packet of a flow really takes the miss
    path); node costs are priced by {!Clara_dataflow.Cost} with the
    packet's own sizes; wire/hub constants bracket the path.  Averaging
    over a trace yields the Figure 3 "Predicted" series. *)

type config = {
  scan_match_fraction : float;  (** DPI match probability. *)
  exceed_fraction : float;      (** Counter-threshold crossing probability. *)
  opaque_fraction : float;      (** Unrecognized guards. *)
  seed : int64;                 (** For probabilistic guard resolution. *)
  include_wire : bool;
      (** Charge wire DMA + hub constants per packet (on by default);
          chains turn this off per stage and charge the wire once. *)
  flow_cache_hit_ratio : float option;
      (** Off-path targets only: pin the eSwitch flow-cache hit ratio
          (clamped to [0,1]) instead of tracking per-flow hits with an
          LRU sized by the eSwitch SRAM ([None], the default).  A miss
          pays the fabric upcall plus the software cost of the node on
          the Arm cores; a hit pays only the hardware fast-path price.
          Ignored on on-path / host targets. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  t

type per_packet = { cycles : float; emitted : bool }

val packet_latency : t -> Clara_workload.Packet.t -> per_packet
(** Stateful: table-hit guards depend on the packets seen so far. *)

val reset_state : t -> unit
(** Forget tracked flow state (fresh run). *)

type prediction = {
  mean_cycles : float;
  p50_cycles : float;
  p99_cycles : float;
  tcp_mean : float;
  udp_mean : float;
  syn_mean : float;
  emitted_fraction : float;
}

val predict_trace : t -> Clara_workload.Trace.t -> prediction
(** Resets state, then walks every packet. *)

val pp_prediction : Format.formatter -> prediction -> unit

val wire_cycles :
  Clara_lnic.Graph.t -> Clara_workload.Packet.t -> emitted:bool -> float
(** Wire DMA + hub constants for one packet on a target. *)

(** {2 Latency attribution} — the prediction decomposed into where the
    cycles go (compute / memory / accelerator / wire).  The predictor
    models no queueing, so unlike the simulator's attribution there is
    no queue component. *)

type pkt_components = {
  pc_total : float;
      (** Bit-identical to {!packet_latency}'s [cycles] at the same
          state: the walk, guard RNG draws and summation order match. *)
  pc_compute : float;
      (** Residual [total - mem - accel - wire], so the components sum
          to [pc_total] exactly. *)
  pc_mem : float;
  pc_accel : float;
  pc_wire : float;
  pc_emitted : bool;
}

val packet_components : t -> Clara_workload.Packet.t -> pkt_components
(** Stateful, like {!packet_latency}. *)

type att_row = {
  at_type : string;   (** "tcp-syn", "tcp", "udp", "other" or "all". *)
  at_count : int;
  at_compute : float;  (** Mean cycles per packet of this type. *)
  at_mem : float;
  at_accel : float;
  at_wire : float;
  at_total : float;    (** Sum of the four component means. *)
  at_dominant : string;
      (** Largest component: "compute", "memory", "accel" or "wire". *)
}

type attribution = {
  att_rows : att_row list;  (** Per-type rows, then the "all" row. *)
  att_mean : float;
      (** Equals {!predict_trace}'s [mean_cycles] for the same trace. *)
}

val attribute_trace : t -> Clara_workload.Trace.t -> attribution
(** Resets state and re-walks the trace with the same RNG seed, so the
    totals match {!predict_trace} exactly. *)

val pp_attribution : Format.formatter -> attribution -> unit

val perfetto_timeline : t -> Clara_workload.Trace.t -> Clara_util.Json.t
(** The analytic per-packet timeline (packets end-to-end on one track,
    wire + per-node spans) as Chrome/Perfetto trace-event JSON — the
    predictor-side counterpart of [clara trace]'s export. *)
