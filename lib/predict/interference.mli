(** Co-resident NF interference (§3.5), generalized to N tenants.

    The paper's starting point: slice the LNIC so each NF sees its
    share of the NIC, then account for footprints the co-residents
    leave in shared resources.  Two cross-terms sit on top of the
    sliced prediction:
    - {e cache contention}: each NF's effective EMEM cache shrinks by
      the summed state footprint of its co-residents (misses rise);
    - {e accelerator head-of-line blocking}: shared accelerators serve
      every tenant; each NF's accelerator operations are inflated by
      the aggregate utilization the co-residents induce, weighted by
      each tenant's own traffic rate. *)

type report = {
  solo_cycles : float;     (** NF alone on the full NIC. *)
  sliced_cycles : float;   (** NF alone on its weight-proportional slice. *)
  contended_cycles : float;  (** Slice + cross-terms. *)
  slowdown : float;        (** contended / solo. *)
  accel_utilization : float;
      (** Accelerator utilization this tenant itself induces on its
          slice ([rate_pps] x accelerator cycles/packet / core Hz). *)
  saturated : bool;
      (** The tenant mix's aggregate accelerator utilization (self
          included) reaches 1: the queueing term is capped and
          [contended_cycles] is a lower bound. *)
}

val analyze_n :
  ?options:Clara_mapping.Mapping.options ->
  ?weights:int array ->
  Clara_lnic.Graph.t ->
  sources:string array ->
  profiles:Clara_workload.Profile.t array ->
  (report array, string) result
(** Per-tenant interference reports for N NFs sharing the NIC.  Tenant
    [i] runs on a [weights.(i)] / (sum weights) slice (default: equal
    weights), sees the cache-shrink from every co-resident's state, and
    queues behind their aggregate accelerator utilization — computed
    against the slice each tenant actually runs on, with each tenant's
    own [profile.rate_pps] as the traffic weighting.  Reports are in
    input order.  Errors on tenant-count mismatches, non-positive
    weights, or any per-tenant pipeline failure. *)

val analyze_pair :
  ?options:Clara_mapping.Mapping.options ->
  Clara_lnic.Graph.t ->
  source_a:string ->
  source_b:string ->
  profile:Clara_workload.Profile.t ->
  ((report * report), string) result
(** {!analyze_n} with two tenants, equal weights, and the same traffic
    profile each: the paper's half-and-half slicing. *)

val accel_cycles_per_packet :
  Clara_lnic.Graph.t ->
  Clara_dataflow.Graph.t ->
  Clara_mapping.Mapping.t ->
  sizes:Clara_dataflow.Cost.sizes ->
  prob:(Clara_cir.Ir.guard -> float) ->
  float
(** Cycles per packet the mapping spends on genuine accelerator units
    (classified by the LNIC unit class — general-core rows never count,
    even when the slice leaves a single thread). *)
