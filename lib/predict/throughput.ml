module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module M = Clara_mapping.Mapping
module P = Clara_lnic.Params

type bottleneck = {
  resource : string;
  cycles_per_packet : float;
  parallelism : int;
  max_pps : float;
}

type t = {
  max_pps : float;
  gbps_at_mean_packet : float;
  bottleneck : bottleneck;
  resources : bottleneck list;
}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let estimate ?(sizes = default_sizes) ?(prob = D.Flow.default_probability) lnic
    (df : D.Graph.t) (mapping : M.t) =
  let states = D.Graph.states df in
  let sizes =
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          match List.find_opt (fun o -> o.Ir.st_name = s) states with
          | Some o -> float_of_int o.Ir.st_entries
          | None -> 0.) }
  in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let state_region s =
    match M.placement_of_state mapping s with
    | Some (M.In_memory m) -> m
    | _ -> (
        match
          Array.to_list lnic.L.Graph.memories
          |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
        with
        | Some m -> m.L.Memory.id
        | None -> 0)
  in
  let weights = D.Flow.node_weights df ~prob in
  (* Expected demand per unit: weighted node costs, grouped by the class
     the node was mapped to.  Units of one placement class pool their
     threads. *)
  let demand = Hashtbl.create 8 (* rep unit id -> cycles *) in
  Array.iter
    (fun (n : D.Node.t) ->
      let uid = mapping.M.node_unit.(n.D.Node.id) in
      let unit_ = L.Graph.unit_ lnic uid in
      let ctx =
        {
          D.Cost.lnic;
          exec_unit = unit_;
          state_region;
          state_footprint = footprint;
          packet_region =
            Clara_mapping.Encode.packet_region_for lnic unit_
              ~packet_bytes:sizes.D.Cost.packet_bytes;
          sizes;
        }
      in
      match D.Cost.node_cycles ctx n with
      | None -> ()
      | Some c ->
          let cur = Option.value ~default:0. (Hashtbl.find_opt demand uid) in
          Hashtbl.replace demand uid (cur +. (weights.(n.D.Node.id) *. c)))
    df.D.Graph.nodes;
  (* Shared zero/negative-cost convention: a non-positive service time
     means the resource imposes no throughput bound.  Sub-cycle costs are
     honored as-is rather than being rounded up to a full cycle. *)
  let pps_of ~hz ~parallelism cycles =
    if cycles <= 0. then Float.infinity else hz *. float_of_int parallelism /. cycles
  in
  let resource_of uid cycles =
    let unit_ = L.Graph.unit_ lnic uid in
    (* Run-to-completion NFs replicate across every general core; the
       mapping's class choice matters for latency (NUMA), not for the
       thread pool.  Accelerators are single servers. *)
    let parallelism =
      if Clara_lnic.Unit_.is_general unit_ then L.Graph.total_threads lnic else 1
    in
    let hz = float_of_int unit_.L.Unit_.freq_mhz *. 1e6 in
    {
      resource = unit_.L.Unit_.name;
      cycles_per_packet = cycles;
      parallelism;
      max_pps = pps_of ~hz ~parallelism cycles;
    }
  in
  let wire_resource =
    (* The DMA path handles every packet serially per direction. *)
    let params = lnic.L.Graph.params in
    let cycles =
      L.Cost_fn.eval params.P.wire_ingress sizes.D.Cost.packet_bytes
      +. L.Cost_fn.eval params.P.wire_egress sizes.D.Cost.packet_bytes
    in
    let freq =
      match L.Graph.general_cores lnic with
      | u :: _ -> float_of_int u.L.Unit_.freq_mhz *. 1e6
      | [] -> 1e9
    in
    (* Several DMA lanes in practice; model 8. *)
    { resource = "wire-dma"; cycles_per_packet = cycles; parallelism = 8;
      max_pps = pps_of ~hz:freq ~parallelism:8 cycles }
  in
  let resources =
    wire_resource
    :: Hashtbl.fold (fun uid c acc -> resource_of uid c :: acc) demand []
  in
  let resources =
    List.sort
      (fun (a : bottleneck) (b : bottleneck) -> compare a.max_pps b.max_pps)
      resources
  in
  let bottleneck = List.hd resources in
  let bits = 8. *. sizes.D.Cost.packet_bytes in
  {
    max_pps = bottleneck.max_pps;
    gbps_at_mean_packet = bottleneck.max_pps *. bits /. 1e9;
    bottleneck;
    resources;
  }

let pp fmt t =
  Format.fprintf fmt "max %.0f pps (%.2f Gbps), bottleneck %s (%.0f cyc/pkt, %dx)"
    t.max_pps t.gbps_at_mean_packet t.bottleneck.resource
    t.bottleneck.cycles_per_packet t.bottleneck.parallelism

(* Sakasegawa's M/M/k mean-queue-wait approximation:
   Wq ≈ (rho^(sqrt(2(k+1)) - 1) / (k (1 - rho))) * service. *)
let mmk_wait ~service ~k ~rho =
  if rho >= 1. then None
  else begin
    let kf = float_of_int k in
    let expo = Float.sqrt (2. *. (kf +. 1.)) -. 1. in
    Some (Float.pow rho expo /. (kf *. (1. -. rho)) *. service)
  end

let latency_at_rate ?sizes ?prob ~base_cycles ~rate_pps lnic df mapping =
  let t = estimate ?sizes ?prob lnic df mapping in
  let rec add acc = function
    | [] -> Some acc
    | (r : bottleneck) :: rest ->
        if r.cycles_per_packet <= 0. then add acc rest
        else begin
          let rho = rate_pps /. r.max_pps in
          match mmk_wait ~service:r.cycles_per_packet ~k:r.parallelism ~rho with
          | None -> None
          | Some wq -> add (acc +. wq) rest
        end
  in
  add base_cycles t.resources
