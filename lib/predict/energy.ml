module L = Clara_lnic
module D = Clara_dataflow
module Ir = Clara_cir.Ir
module M = Clara_mapping.Mapping
module P = Clara_lnic.Params

type power_table = {
  general_core_w : float;
  accel_w : Clara_lnic.Unit_.accel_kind -> float;
  idle_w : float;
  dma_w_per_gbps : float;
}

let default_powers (g : L.Graph.t) =
  let clock =
    match L.Graph.general_cores g with u :: _ -> u.L.Unit_.freq_mhz | [] -> 800
  in
  (* NPU-class (<1 GHz) vs ARM-class (1-2.5 GHz) vs Xeon-class. *)
  let general_core_w =
    if clock < 1000 then 0.35 else if clock <= 2500 then 1.8 else 9.0
  in
  let idle_w = if clock < 1000 then 18. else if clock <= 2500 then 22. else 60. in
  {
    general_core_w;
    accel_w =
      (function
      | L.Unit_.Checksum -> 0.2
      | L.Unit_.Parse -> 0.25
      | L.Unit_.Lookup -> 0.5
      | L.Unit_.Crypto -> 0.6
      | L.Unit_.Eswitch -> 0.8);
    idle_w;
    dma_w_per_gbps = 0.35;
  }

type t = {
  nj_per_packet : float;
  watts_at_rate : float;
  nj_per_packet_total : float;
  breakdown : (string * float) list;
}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 354.;
    header_bytes = 54.;
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let estimate ?powers ?(sizes = default_sizes) ?(prob = D.Flow.default_probability)
    ~rate_pps lnic (df : D.Graph.t) (mapping : M.t) =
  let powers = match powers with Some p -> p | None -> default_powers lnic in
  let states = D.Graph.states df in
  let sizes =
    { sizes with
      D.Cost.state_entries =
        (fun s ->
          match List.find_opt (fun o -> o.Ir.st_name = s) states with
          | Some o -> float_of_int o.Ir.st_entries
          | None -> 0.) }
  in
  let footprint s =
    match List.find_opt (fun o -> o.Ir.st_name = s) states with
    | Some o -> Ir.state_bytes o
    | None -> 0
  in
  let state_region s =
    match M.placement_of_state mapping s with
    | Some (M.In_memory m) -> m
    | _ -> (
        match
          Array.to_list lnic.L.Graph.memories
          |> List.find_opt (fun m -> m.L.Memory.level = L.Memory.External)
        with
        | Some m -> m.L.Memory.id
        | None -> 0)
  in
  let weights = D.Flow.node_weights df ~prob in
  (* nJ on a unit = cycles × (power W / clock Hz) × 1e9. *)
  let nj_of unit_ cycles =
    let w =
      match unit_.L.Unit_.kind with
      | L.Unit_.General_core _ -> powers.general_core_w
      | L.Unit_.Accelerator k -> powers.accel_w k
    in
    cycles /. (float_of_int unit_.L.Unit_.freq_mhz *. 1e6) *. w *. 1e9
  in
  let breakdown = Hashtbl.create 8 in
  let add name nj =
    Hashtbl.replace breakdown name (nj +. Option.value ~default:0. (Hashtbl.find_opt breakdown name))
  in
  Array.iter
    (fun (n : D.Node.t) ->
      let uid = mapping.M.node_unit.(n.D.Node.id) in
      let unit_ = L.Graph.unit_ lnic uid in
      let ctx =
        {
          D.Cost.lnic;
          exec_unit = unit_;
          state_region;
          state_footprint = footprint;
          packet_region =
            Clara_mapping.Encode.packet_region_for lnic unit_
              ~packet_bytes:sizes.D.Cost.packet_bytes;
          sizes;
        }
      in
      match D.Cost.node_cycles ctx n with
      | None -> ()
      | Some c -> add unit_.L.Unit_.name (nj_of unit_ (weights.(n.D.Node.id) *. c)))
    df.D.Graph.nodes;
  (* DMA energy for moving the packet in and out: W per Gbps is J per
     Gbit, so nJ per packet = W/Gbps × bits moved. *)
  let bits_moved = 2. *. 8. *. sizes.D.Cost.packet_bytes in
  add "wire-dma" (powers.dma_w_per_gbps *. bits_moved);
  let dynamic_nj = Hashtbl.fold (fun _ v acc -> acc +. v) breakdown 0. in
  let watts_at_rate = powers.idle_w +. (dynamic_nj *. 1e-9 *. rate_pps) in
  let idle_share_nj = if rate_pps > 0. then powers.idle_w /. rate_pps *. 1e9 else 0. in
  {
    nj_per_packet = dynamic_nj;
    watts_at_rate;
    nj_per_packet_total = dynamic_nj +. idle_share_nj;
    breakdown =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) breakdown []
      |> List.sort (fun (_, a) (_, b) -> compare b a);
  }

let pp fmt t =
  Format.fprintf fmt "%.0f nJ/pkt dynamic (%.0f nJ incl. idle), %.1f W at rate"
    t.nj_per_packet t.nj_per_packet_total t.watts_at_rate
