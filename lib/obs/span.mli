(** Named wall-clock spans.

    A span aggregates the durations of every execution of a named code
    region (count, total, min, max) — think of it as a timer histogram
    without the buckets.  Nesting and path construction ("a/b/c") are
    handled by {!Registry.span}; this module only holds the per-name
    accumulator and the clock. *)

type stats

val make : string -> stats
val name : stats -> string

val now_ns : unit -> int
(** Wall clock in integer nanoseconds (62-bit int: good for ~146 years). *)

val record : stats -> int -> unit
(** Record one duration in nanoseconds; negative durations (clock went
    backwards) clamp to 0. *)

val count : stats -> int
val total_ns : stats -> int
val min_ns : stats -> int
(** 0 when no executions were recorded. *)

val max_ns : stats -> int
(** 0 when no executions were recorded. *)

val mean_ns : stats -> float
(** [nan] when no executions were recorded. *)

val reset : stats -> unit
