(** Allocation-light counters and fixed-bucket latency histograms.

    These are the primitive instruments behind {!Registry}.  They are
    designed to stay on by default on hot paths: a counter bump is one
    mutable-int store, a histogram observation is a handful of integer
    ops against a preallocated bucket array — no closures, no boxing,
    no allocation after construction. *)

(** {1 Counters} *)

type counter
(** A monotonic integer counter. *)

val make_counter : string -> counter
val counter_name : counter -> string

val incr : counter -> unit
val add : counter -> int -> unit
(** [add c n] bumps by [n]; negative deltas are rejected with
    [Invalid_argument] — counters are monotonic by contract. *)

val value : counter -> int
val reset_counter : counter -> unit

(** {1 Histograms} *)

type histogram
(** A histogram over non-negative integer observations (cycles,
    nanoseconds, queue depths, ...) with fixed log2 buckets: bucket 0
    holds values [<= 1]; bucket [i] holds values in [(2^(i-1), 2^i]].
    The bucket array is preallocated at construction. *)

val nbuckets : int
(** Number of buckets (covers the full 62-bit positive int range). *)

val make_histogram : string -> histogram
val histogram_name : histogram -> string

val observe : histogram -> int -> unit
(** Record one observation.  Negative values clamp to 0. *)

val hist_count : histogram -> int
val hist_sum : histogram -> int
val hist_min : histogram -> int
(** 0 when empty. *)

val hist_max : histogram -> int
(** 0 when empty. *)

val hist_mean : histogram -> float
(** [nan] when empty. *)

val quantile : histogram -> float -> int
(** [quantile h q] — nearest-rank quantile resolved to the upper bound
    of the containing bucket (so an upper estimate with log2 error).
    0 when empty; [q] clamps to [0, 1]. *)

val bucket_upper_bound : int -> int
(** Inclusive upper bound of bucket [i]. *)

val bucket_lower_bound : int -> int
(** Exclusive lower bound of bucket [i] (0 for bucket 0, whose
    effective range is [[0, 1]] since observations clamp to 0). *)

val nonzero_buckets : histogram -> (int * int) list
(** [(upper_bound, count)] for each populated bucket, ascending. *)

val nonzero_bucket_bounds : histogram -> (int * int * int) list
(** [(lower_bound, upper_bound, count)] for each populated bucket,
    ascending — the explicit-range form JSON exports use. *)

val reset_histogram : histogram -> unit
