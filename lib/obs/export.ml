module J = Clara_util.Json

let json_of_histogram h =
  J.Obj
    [ ("count", J.Int (Metrics.hist_count h));
      ("sum", J.Int (Metrics.hist_sum h));
      ("min", J.Int (Metrics.hist_min h));
      ("max", J.Int (Metrics.hist_max h));
      ("mean", J.Float (Metrics.hist_mean h));
      ("p50", J.Int (Metrics.quantile h 0.5));
      ("p99", J.Int (Metrics.quantile h 0.99));
      (* Explicit per-bucket ranges: (lo, hi] with counts, so consumers
         need not know the log2 bucketing scheme. *)
      ("buckets",
       J.List
         (List.map
            (fun (lo, hi, n) ->
              J.Obj [ ("lo", J.Int lo); ("hi", J.Int hi); ("count", J.Int n) ])
            (Metrics.nonzero_bucket_bounds h))) ]

let json_of_span s =
  J.Obj
    [ ("count", J.Int (Span.count s));
      ("total_ns", J.Int (Span.total_ns s));
      ("mean_ns", J.Float (Span.mean_ns s));
      ("min_ns", J.Int (Span.min_ns s));
      ("max_ns", J.Int (Span.max_ns s)) ]

let to_json reg =
  let counters = ref [] and histograms = ref [] and spans = ref [] in
  List.iter
    (fun (name, m) ->
      match (m : Registry.metric) with
      | Registry.Counter c -> counters := (name, J.Int (Metrics.value c)) :: !counters
      | Registry.Histogram h -> histograms := (name, json_of_histogram h) :: !histograms
      | Registry.Span s -> spans := (name, json_of_span s) :: !spans)
    (Registry.to_list reg);
  J.Obj
    [ ("counters", J.Obj (List.rev !counters));
      ("histograms", J.Obj (List.rev !histograms));
      ("spans", J.Obj (List.rev !spans)) ]

let write_json path reg =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      J.to_channel oc (to_json reg);
      output_char oc '\n')

let pp_table fmt reg =
  let items = Registry.to_list reg in
  let spans =
    List.filter_map
      (function (n, Registry.Span s) when Span.count s > 0 -> Some (n, s) | _ -> None)
      items
  in
  let counters =
    List.filter_map
      (function
        | (n, Registry.Counter c) when Metrics.value c > 0 -> Some (n, c) | _ -> None)
      items
  in
  let hists =
    List.filter_map
      (function
        | (n, Registry.Histogram h) when Metrics.hist_count h > 0 -> Some (n, h)
        | _ -> None)
      items
  in
  if spans <> [] then begin
    Format.fprintf fmt "%-40s %8s %12s %12s@." "span" "count" "total ms" "mean us";
    (* Sort by path so nested spans read as a tree. *)
    List.iter
      (fun (name, s) ->
        Format.fprintf fmt "%-40s %8d %12.3f %12.1f@." name (Span.count s)
          (float_of_int (Span.total_ns s) /. 1e6)
          (Span.mean_ns s /. 1e3))
      (List.sort (fun (a, _) (b, _) -> compare a b) spans)
  end;
  if counters <> [] then begin
    if spans <> [] then Format.pp_print_newline fmt ();
    Format.fprintf fmt "%-40s %12s@." "counter" "value";
    List.iter
      (fun (name, c) -> Format.fprintf fmt "%-40s %12d@." name (Metrics.value c))
      counters
  end;
  if hists <> [] then begin
    if spans <> [] || counters <> [] then Format.pp_print_newline fmt ();
    Format.fprintf fmt "%-40s %8s %10s %8s %8s %10s@." "histogram" "count" "mean" "p50"
      "p99" "max";
    List.iter
      (fun (name, h) ->
        Format.fprintf fmt "%-40s %8d %10.1f %8d %8d %10d@." name (Metrics.hist_count h)
          (Metrics.hist_mean h) (Metrics.quantile h 0.5) (Metrics.quantile h 0.99)
          (Metrics.hist_max h))
      hists
  end
