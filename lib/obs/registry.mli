(** The metric registry: a named collection of counters, histograms and
    spans, with find-or-create accessors and span nesting.

    Call sites hoist the find-or-create lookup out of their hot loop:

    {[
      let obs = Clara_obs.Registry.default
      let c_pivots = Clara_obs.Registry.counter obs "ilp.simplex.pivots"
      (* ... per event: *)
      Clara_obs.Metrics.incr c_pivots
    ]}

    Spans nest: running [span r "b" f] while [span r "a"] is active
    records under the path ["a/b"], so one registry dump shows where
    wall-clock time goes across the whole pipeline.  Registries are not
    thread-safe (neither is the rest of Clara). *)

type metric =
  | Counter of Metrics.counter
  | Histogram of Metrics.histogram
  | Span of Span.stats

type t

val create : unit -> t

val default : t
(** The process-wide registry every built-in instrument registers in. *)

val counter : t -> string -> Metrics.counter
(** Find or create.  @raise Invalid_argument if the name is already
    registered as a different metric kind. *)

val histogram : t -> string -> Metrics.histogram
val span_stats : t -> string -> Span.stats

val span : t -> string -> (unit -> 'a) -> 'a
(** [span r name f] times [f ()] and records the duration under [name],
    prefixed by the currently-active span path ("outer/name").
    Exception-safe: the span closes (and the nesting stack pops) even if
    [f] raises. *)

val current_path : t -> string option
(** The active span path, if any ([None] outside any span). *)

val find : t -> string -> metric option
val mem : t -> string -> bool

val to_list : t -> (string * metric) list
(** All metrics in registration order. *)

val counter_value : t -> string -> int
(** 0 when absent; convenience for tests and reporting. *)

val reset : t -> unit
(** Zero every metric (names stay registered) and clear the span stack. *)
