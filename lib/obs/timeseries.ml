module J = Clara_util.Json

type kind = Gauge | Rate

type t = {
  name : string;
  kind : kind;
  base_cadence : int;
  max_windows : int;
  mutable cadence : int;
  sums : float array;
  counts : int array;
  mutable hi : int;          (* number of windows in use: indices [0, hi) *)
  mutable n_obs : int;
  mutable sum_obs : float;
}

let create ?(max_windows = 256) ~name ~kind ~cadence () =
  if cadence <= 0 then invalid_arg "Timeseries.create: cadence must be positive";
  let max_windows = max 8 max_windows in
  {
    name;
    kind;
    base_cadence = cadence;
    max_windows;
    cadence;
    sums = Array.make max_windows 0.;
    counts = Array.make max_windows 0;
    hi = 0;
    n_obs = 0;
    sum_obs = 0.;
  }

let name t = t.name
let kind t = t.kind
let cadence t = t.cadence
let base_cadence t = t.base_cadence
let max_windows t = t.max_windows
let count t = t.n_obs
let total t = t.sum_obs

(* Pairwise-merge adjacent windows in place; the cadence doubles and the
   occupied prefix halves.  Window i of the new scale is exactly windows
   2i and 2i+1 of the old, so repeated halving keeps sums and counts
   exact — no observation is ever approximated, only bucketed coarser. *)
let downsample t =
  let m = (t.hi + 1) / 2 in
  for i = 0 to m - 1 do
    let a = 2 * i and b = (2 * i) + 1 in
    let s = t.sums.(a) +. (if b < t.hi then t.sums.(b) else 0.) in
    let c = t.counts.(a) + if b < t.hi then t.counts.(b) else 0 in
    t.sums.(i) <- s;
    t.counts.(i) <- c
  done;
  for i = m to t.hi - 1 do
    t.sums.(i) <- 0.;
    t.counts.(i) <- 0
  done;
  t.hi <- m;
  t.cadence <- t.cadence * 2

let observe_agg t ~now ~sum ~count =
  if count > 0 then begin
    let now = max 0 now in
    while now / t.cadence >= t.max_windows do
      downsample t
    done;
    let i = now / t.cadence in
    t.sums.(i) <- t.sums.(i) +. sum;
    t.counts.(i) <- t.counts.(i) + count;
    if i >= t.hi then t.hi <- i + 1;
    t.n_obs <- t.n_obs + count;
    t.sum_obs <- t.sum_obs +. sum
  end

let observe t ~now v = observe_agg t ~now ~sum:v ~count:1

type window = { w_start : int; w_sum : float; w_count : int }

let windows t =
  let acc = ref [] in
  for i = t.hi - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := { w_start = i * t.cadence; w_sum = t.sums.(i); w_count = t.counts.(i) }
             :: !acc
  done;
  !acc

let value kind w =
  match kind with
  | Gauge -> if w.w_count = 0 then Float.nan else w.w_sum /. float_of_int w.w_count
  | Rate -> w.w_sum

let copy t =
  {
    t with
    sums = Array.copy t.sums;
    counts = Array.copy t.counts;
  }

let merge = function
  | [] -> invalid_arg "Timeseries.merge: empty list"
  | first :: rest as all ->
      List.iter
        (fun s ->
          if
            s.name <> first.name || s.kind <> first.kind
            || s.base_cadence <> first.base_cadence
          then
            invalid_arg
              (Printf.sprintf
                 "Timeseries.merge: series '%s' disagrees with '%s' on \
                  name/kind/cadence"
                 s.name first.name))
        rest;
      let target_cadence = List.fold_left (fun a s -> max a s.cadence) 0 all in
      let max_w = List.fold_left (fun a s -> max a s.max_windows) 0 all in
      let out =
        create ~max_windows:max_w ~name:first.name ~kind:first.kind
          ~cadence:first.base_cadence ()
      in
      out.cadence <- target_cadence;
      List.iter
        (fun s ->
          let s = if s.cadence < target_cadence then copy s else s in
          while s.cadence < target_cadence do
            downsample s
          done;
          (* A coarser input than requested cannot happen: target is the max. *)
          for i = 0 to s.hi - 1 do
            if s.counts.(i) > 0 then begin
              (* The target may itself need to coarsen if an input used a
                 larger max_windows budget than [out]. *)
              while i * s.cadence / out.cadence >= out.max_windows do
                downsample out
              done;
              let j = i * s.cadence / out.cadence in
              out.sums.(j) <- out.sums.(j) +. s.sums.(i);
              out.counts.(j) <- out.counts.(j) + s.counts.(i);
              if j >= out.hi then out.hi <- j + 1
            end
          done;
          out.n_obs <- out.n_obs + s.n_obs;
          out.sum_obs <- out.sum_obs +. s.sum_obs)
        all;
      out

let kind_name = function Gauge -> "gauge" | Rate -> "rate"

let to_json t =
  J.Obj
    [
      ("name", J.String t.name);
      ("kind", J.String (kind_name t.kind));
      ("cadence", J.Int t.cadence);
      ("base_cadence", J.Int t.base_cadence);
      ("count", J.Int t.n_obs);
      ("total", J.Float t.sum_obs);
      ( "windows",
        J.List
          (List.map
             (fun w ->
               J.Obj
                 [
                   ("t", J.Int w.w_start);
                   ("sum", J.Float w.w_sum);
                   ("count", J.Int w.w_count);
                   ("value", J.Float (value t.kind w));
                 ])
             (windows t)) );
    ]

let csv_header = "series,kind,cadence,window_start,sum,count,value"

(* %.17g round-trips doubles losslessly; integral values print short. *)
let f17 v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let to_csv_rows t =
  List.map
    (fun w ->
      Printf.sprintf "%s,%s,%d,%d,%s,%d,%s" t.name (kind_name t.kind) t.cadence
        w.w_start (f17 w.w_sum) w.w_count
        (f17 (value t.kind w)))
    (windows t)
