(** Rendering a registry: JSON (via [Clara_util.Json]) and a human table.

    The JSON shape is stable:

    {v
    { "counters":   { "<name>": <int>, ... },
      "histograms": { "<name>": { "count", "sum", "min", "max", "mean",
                                  "p50", "p99",
                                  "buckets": [[upper_bound, count], ...] } },
      "spans":      { "<name>": { "count", "total_ns", "mean_ns",
                                  "min_ns", "max_ns" } } }
    v} *)

val to_json : Registry.t -> Clara_util.Json.t

val write_json : string -> Registry.t -> unit
(** Write [to_json] (pretty-printed) to a file. *)

val pp_table : Format.formatter -> Registry.t -> unit
(** Human-readable table, spans first (they answer "where did the time
    go"), then counters, then histograms.  Metrics that never fired are
    omitted. *)
