type metric =
  | Counter of Metrics.counter
  | Histogram of Metrics.histogram
  | Span of Span.stats

type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable order_rev : string list; (* registration order, newest first *)
  mutable stack : string list;     (* active span paths, innermost first *)
}

let create () = { metrics = Hashtbl.create 64; order_rev = []; stack = [] }
let default = create ()

let register t name m =
  Hashtbl.add t.metrics name m;
  t.order_rev <- name :: t.order_rev

let kind_name = function
  | Counter _ -> "counter"
  | Histogram _ -> "histogram"
  | Span _ -> "span"

let wrong_kind name ~want m =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %S already registered as a %s (wanted %s)" name
       (kind_name m) want)

let counter t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> c
  | Some m -> wrong_kind name ~want:"counter" m
  | None ->
      let c = Metrics.make_counter name in
      register t name (Counter c);
      c

let histogram t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Histogram h) -> h
  | Some m -> wrong_kind name ~want:"histogram" m
  | None ->
      let h = Metrics.make_histogram name in
      register t name (Histogram h);
      h

let span_stats t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Span s) -> s
  | Some m -> wrong_kind name ~want:"span" m
  | None ->
      let s = Span.make name in
      register t name (Span s);
      s

let current_path t = match t.stack with [] -> None | p :: _ -> Some p

let span t name f =
  let path = match t.stack with [] -> name | p :: _ -> p ^ "/" ^ name in
  let st = span_stats t path in
  t.stack <- path :: t.stack;
  let t0 = Span.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Span.record st (Span.now_ns () - t0);
      match t.stack with [] -> () | _ :: rest -> t.stack <- rest)
    f

let find t name = Hashtbl.find_opt t.metrics name
let mem t name = Hashtbl.mem t.metrics name

let to_list t =
  List.rev_map (fun name -> (name, Hashtbl.find t.metrics name)) t.order_rev

let counter_value t name =
  match Hashtbl.find_opt t.metrics name with
  | Some (Counter c) -> Metrics.value c
  | _ -> 0

let reset t =
  Hashtbl.iter
    (fun _ -> function
      | Counter c -> Metrics.reset_counter c
      | Histogram h -> Metrics.reset_histogram h
      | Span s -> Span.reset s)
    t.metrics;
  t.stack <- []
