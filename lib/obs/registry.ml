type metric =
  | Counter of Metrics.counter
  | Histogram of Metrics.histogram
  | Span of Span.stats

(* The registry is shared process-wide and, since lib/explore runs the
   pipeline on several domains at once, it must tolerate concurrent
   find-or-create and span entry/exit.  Structural mutation (the metrics
   hashtable, registration order, span stacks) is guarded by [mu];
   already-created counters and histogram buckets stay lock-free mutable
   ints — a racy [incr] can at worst lose an update, never corrupt
   memory.  Span nesting paths are tracked per domain so two workers
   inside "pipeline/lower" at once do not splice each other's stacks. *)
type t = {
  metrics : (string, metric) Hashtbl.t;
  mutable order_rev : string list; (* registration order, newest first *)
  stacks : (int, string list) Hashtbl.t; (* domain id -> active span paths *)
  mu : Mutex.t;
}

let create () =
  { metrics = Hashtbl.create 64; order_rev = []; stacks = Hashtbl.create 8;
    mu = Mutex.create () }

let default = create ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let register_unlocked t name m =
  Hashtbl.add t.metrics name m;
  t.order_rev <- name :: t.order_rev

let kind_name = function
  | Counter _ -> "counter"
  | Histogram _ -> "histogram"
  | Span _ -> "span"

let wrong_kind name ~want m =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %S already registered as a %s (wanted %s)" name
       (kind_name m) want)

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.metrics name with
      | Some (Counter c) -> c
      | Some m -> wrong_kind name ~want:"counter" m
      | None ->
          let c = Metrics.make_counter name in
          register_unlocked t name (Counter c);
          c)

let histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.metrics name with
      | Some (Histogram h) -> h
      | Some m -> wrong_kind name ~want:"histogram" m
      | None ->
          let h = Metrics.make_histogram name in
          register_unlocked t name (Histogram h);
          h)

let span_stats t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.metrics name with
      | Some (Span s) -> s
      | Some m -> wrong_kind name ~want:"span" m
      | None ->
          let s = Span.make name in
          register_unlocked t name (Span s);
          s)

let domain_id () = (Domain.self () :> int)

let stack_of t =
  match Hashtbl.find_opt t.stacks (domain_id ()) with
  | Some s -> s
  | None -> []

let current_path t =
  locked t (fun () -> match stack_of t with [] -> None | p :: _ -> Some p)

let span t name f =
  let did = domain_id () in
  let path =
    locked t (fun () ->
        let path =
          match stack_of t with [] -> name | p :: _ -> p ^ "/" ^ name
        in
        Hashtbl.replace t.stacks did (path :: stack_of t);
        path)
  in
  let st = span_stats t path in
  let t0 = Span.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Span.now_ns () - t0 in
      locked t (fun () ->
          Span.record st dt;
          match Hashtbl.find_opt t.stacks did with
          | Some (_ :: rest) -> Hashtbl.replace t.stacks did rest
          | Some [] | None -> ()))
    f

let find t name = locked t (fun () -> Hashtbl.find_opt t.metrics name)
let mem t name = locked t (fun () -> Hashtbl.mem t.metrics name)

let to_list t =
  locked t (fun () ->
      List.rev_map (fun name -> (name, Hashtbl.find t.metrics name)) t.order_rev)

let counter_value t name =
  match find t name with Some (Counter c) -> Metrics.value c | _ -> 0

let reset t =
  locked t (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | Counter c -> Metrics.reset_counter c
          | Histogram h -> Metrics.reset_histogram h
          | Span s -> Span.reset s)
        t.metrics;
      Hashtbl.reset t.stacks)
