(* Counters are a single mutable int; histograms keep a preallocated
   log2 bucket array plus integer running aggregates, so observing is
   allocation-free (no float fields: a mutable float in a mixed record
   would box on every store). *)

type counter = { c_name : string; mutable c_value : int }

let make_counter name = { c_name = name; c_value = 0 }
let counter_name c = c.c_name
let incr c = c.c_value <- c.c_value + 1

let add c n =
  if n < 0 then invalid_arg "Metrics.add: counters are monotonic";
  c.c_value <- c.c_value + n

let value c = c.c_value
let reset_counter c = c.c_value <- 0

let nbuckets = 63

type histogram = {
  h_name : string;
  buckets : int array; (* length [nbuckets] *)
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let make_histogram name =
  { h_name = name; buckets = Array.make nbuckets 0; count = 0; sum = 0;
    min_v = max_int; max_v = min_int }

let histogram_name h = h.h_name

(* Bucket i covers (2^(i-1), 2^i]; bucket 0 covers (-inf, 1]. *)
let bucket_index v =
  if v <= 1 then 0
  else begin
    let i = ref 1 and b = ref 2 in
    while !b < v && !i < nbuckets - 1 do
      b := !b lsl 1;
      Stdlib.incr i
    done;
    !i
  end

let bucket_upper_bound i = if i <= 0 then 1 else 1 lsl i

(* Exclusive lower bound of bucket i; observations clamp to >= 0, so
   bucket 0's effective range is [0, 1]. *)
let bucket_lower_bound i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  let v = if v < 0 then 0 else v in
  h.count <- h.count + 1;
  h.sum <- h.sum + v;
  if v < h.min_v then h.min_v <- v;
  if v > h.max_v then h.max_v <- v;
  let i = bucket_index v in
  h.buckets.(i) <- h.buckets.(i) + 1

let hist_count h = h.count
let hist_sum h = h.sum
let hist_min h = if h.count = 0 then 0 else h.min_v
let hist_max h = if h.count = 0 then 0 else h.max_v
let hist_mean h = if h.count = 0 then Float.nan else float_of_int h.sum /. float_of_int h.count

let quantile h q =
  if h.count = 0 then 0
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    (* Nearest-rank: the ceil(q*n)-th smallest observation (1-based). *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int h.count))) in
    let acc = ref 0 and i = ref 0 and found = ref (nbuckets - 1) in
    (try
       while !i < nbuckets do
         acc := !acc + h.buckets.(!i);
         if !acc >= rank then begin
           found := !i;
           raise Exit
         end;
         Stdlib.incr i
       done
     with Exit -> ());
    (* Tighten with the exact extremes when the quantile lands there. *)
    if !found = 0 then min h.max_v (bucket_upper_bound 0)
    else min h.max_v (bucket_upper_bound !found)
  end

let nonzero_buckets h =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then out := (bucket_upper_bound i, h.buckets.(i)) :: !out
  done;
  !out

let nonzero_bucket_bounds h =
  let out = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then
      out := (bucket_lower_bound i, bucket_upper_bound i, h.buckets.(i)) :: !out
  done;
  !out

let reset_histogram h =
  Array.fill h.buckets 0 nbuckets 0;
  h.count <- 0;
  h.sum <- 0;
  h.min_v <- max_int;
  h.max_v <- min_int
