(** Fixed-cadence windowed time series with bounded memory.

    A series buckets observations into windows of [cadence] time units
    (simulator cycles, nanoseconds — the unit is the caller's).  Each
    window keeps only a sum and a count, so memory is bounded by
    [max_windows] regardless of run length: when an observation lands
    past the last window, adjacent windows are pairwise merged and the
    cadence doubles (classic streaming downsampling).  Because a window
    is a (sum, count) pair, merging is exact and associative — the merge
    of per-shard series does not depend on how observations were
    partitioned, which is what makes sharded-run telemetry deterministic
    in the shard count.

    Two kinds:
    - {b Gauge}: a sampled level (queue depth, deficit, latency).  A
      window's value is the mean of the samples that landed in it.
    - {b Rate}: an event count or amount (packets, drops, busy cycles).
      A window's value is the sum; divide by [cadence] for a rate.

    Series are not thread-safe (same discipline as the rest of
    [lib/obs]); sharded runs keep one series per shard and merge. *)

type kind = Gauge | Rate

type t

val create : ?max_windows:int -> name:string -> kind:kind -> cadence:int -> unit -> t
(** [max_windows] defaults to 256 and is clamped to at least 8;
    [cadence] must be positive (raises [Invalid_argument] otherwise).
    Allocation happens here, never in {!observe}. *)

val name : t -> string
val kind : t -> kind

val cadence : t -> int
(** The {e current} window width: the construction cadence times a
    power of two ([2^k] after [k] downsamplings). *)

val base_cadence : t -> int
val max_windows : t -> int

val observe : t -> now:int -> float -> unit
(** Record one observation at time [now] (clamped to 0).  O(1) amortized;
    downsampling when [now] overruns the window range is O(max_windows)
    and halves future work. *)

val observe_agg : t -> now:int -> sum:float -> count:int -> unit
(** Record [count] observations totalling [sum] in one shot — exactly
    equivalent to [count] {!observe} calls landing in the same window.
    No-op when [count] is zero.  This is what lets hot paths accumulate
    per-window scalars and flush once per window boundary. *)

val count : t -> int
(** Total observations recorded. *)

val total : t -> float
(** Sum of every observed value (exact for integral values). *)

type window = {
  w_start : int;   (** Window start time, inclusive. *)
  w_sum : float;
  w_count : int;
}

val windows : t -> window list
(** Non-empty windows in time order. *)

val value : kind -> window -> float
(** Gauge: mean ([sum/count]); Rate: sum. *)

val merge : t list -> t
(** Combine series of the same name, kind and base cadence (raises
    [Invalid_argument] on a mismatch or an empty list).  Every input is
    first brought to the coarsest cadence among them, then windows add
    element-wise.  Inputs are not mutated.  The result is independent of
    list order and of how observations were partitioned across the
    inputs, whenever window sums are exact (integral values). *)

val to_json : t -> Clara_util.Json.t
(** {v
    { "name", "kind", "cadence", "base_cadence", "count", "total",
      "windows": [ { "t", "sum", "count", "value" }, ... ] }
    v} *)

val csv_header : string
(** ["series,kind,cadence,window_start,sum,count,value"] *)

val to_csv_rows : t -> string list
(** One CSV row per non-empty window, matching {!csv_header}. *)
