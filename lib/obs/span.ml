type stats = {
  s_name : string;
  mutable count : int;
  mutable total_ns : int;
  mutable min_ns : int;
  mutable max_ns : int;
}

let make name = { s_name = name; count = 0; total_ns = 0; min_ns = max_int; max_ns = 0 }
let name s = s.s_name

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let record s d =
  let d = if d < 0 then 0 else d in
  s.count <- s.count + 1;
  s.total_ns <- s.total_ns + d;
  if d < s.min_ns then s.min_ns <- d;
  if d > s.max_ns then s.max_ns <- d

let count s = s.count
let total_ns s = s.total_ns
let min_ns s = if s.count = 0 then 0 else s.min_ns
let max_ns s = s.max_ns
let mean_ns s = if s.count = 0 then Float.nan else float_of_int s.total_ns /. float_of_int s.count

let reset s =
  s.count <- 0;
  s.total_ns <- 0;
  s.min_ns <- max_int;
  s.max_ns <- 0
