module W = Clara_workload
module L = Clara_lnic
module Lat = Clara_predict.Latency

type t = { stages : Pipeline.analysis list; lnic : Clara_lnic.Graph.t }

let obs = Clara_obs.Registry.default

let analyze ?options lnic ~sources ~profile =
  Clara_obs.Registry.span obs "chain" @@ fun () ->
  let rec go acc i = function
    | [] -> Ok { stages = List.rev acc; lnic }
    | src :: rest -> (
        match Pipeline.analyze_for_profile ?options lnic ~source:src ~profile with
        | Ok a -> go (a :: acc) (i + 1) rest
        | Error e -> Error (Printf.sprintf "stage %d: %s" i e))
  in
  if sources = [] then Error "empty chain" else go [] 0 sources

let fabric_hop_cycles (lnic : L.Graph.t) =
  match
    List.find_opt (fun h -> h.L.Hub.kind = `Fabric) (Array.to_list lnic.L.Graph.hubs)
  with
  | Some h -> float_of_int h.L.Hub.per_packet_cycles
  | None -> 0.

let predict ?(config = Lat.default_config) t (trace : W.Trace.t) =
  Clara_obs.Registry.span obs "chain-predict" @@ fun () ->
  (* Per-stage predictors without wire costs; the chain charges the wire
     once and a fabric hop between stages. *)
  let stage_config = { config with Lat.include_wire = false } in
  let predictors =
    List.map (fun (a : Pipeline.analysis) ->
        Lat.create ~config:stage_config a.Pipeline.lnic a.Pipeline.df a.Pipeline.mapping)
      t.stages
  in
  List.iter Lat.reset_state predictors;
  let hop = fabric_hop_cycles t.lnic in
  let n = Array.length trace.W.Trace.packets in
  if n = 0 then
    { Lat.mean_cycles = 0.; p50_cycles = 0.; p99_cycles = 0.; tcp_mean = Float.nan;
      udp_mean = Float.nan; syn_mean = Float.nan; emitted_fraction = 0. }
  else begin
    let lats = Array.make n 0. in
    let tcp = ref 0. and tcp_n = ref 0 in
    let udp = ref 0. and udp_n = ref 0 in
    let syn = ref 0. and syn_n = ref 0 in
    let emits = ref 0 in
    Array.iteri
      (fun i pkt ->
        let rec run cost hops = function
          | [] -> (cost, hops, true)
          | p :: rest ->
              let r = Lat.packet_latency p pkt in
              let cost = cost +. r.Lat.cycles in
              if r.Lat.emitted then
                match rest with
                | [] -> (cost, hops, true)
                | _ -> run cost (hops + 1) rest
              else (cost, hops, false)
        in
        let compute, hops, emitted = run 0. 0 predictors in
        let total =
          compute
          +. (float_of_int hops *. hop)
          +. Lat.wire_cycles t.lnic pkt ~emitted
        in
        lats.(i) <- total;
        if emitted then incr emits;
        (match pkt.W.Packet.proto with
        | W.Packet.Tcp ->
            tcp := !tcp +. total;
            incr tcp_n
        | W.Packet.Udp ->
            udp := !udp +. total;
            incr udp_n
        | W.Packet.Other _ -> ());
        if W.Packet.is_syn pkt then begin
          syn := !syn +. total;
          incr syn_n
        end)
      trace.W.Trace.packets;
    let sorted = Array.copy lats in
    Array.sort compare sorted;
    (* Nearest-rank percentile: the ceil(p*n)-th smallest, 0-indexed. *)
    let pct p =
      sorted.(max 0 (min (n - 1) (int_of_float (Float.ceil (float_of_int n *. p)) - 1)))
    in
    let div_or_nan s k = if k = 0 then Float.nan else s /. float_of_int k in
    {
      Lat.mean_cycles = Array.fold_left ( +. ) 0. lats /. float_of_int n;
      p50_cycles = pct 0.5;
      p99_cycles = pct 0.99;
      tcp_mean = div_or_nan !tcp !tcp_n;
      udp_mean = div_or_nan !udp !udp_n;
      syn_mean = div_or_nan !syn !syn_n;
      emitted_fraction = float_of_int !emits /. float_of_int n;
    }
  end

let stage_names t =
  List.map
    (fun (a : Pipeline.analysis) ->
      a.Pipeline.df.Clara_dataflow.Graph.cir.Clara_cir.Ir.prog_name)
    t.stages
