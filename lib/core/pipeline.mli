(** Clara: performance clarity for SmartNIC offloading.

    The end-to-end pipeline of the paper (§2.3, Figure 2): an unported NF
    in the DSL is lowered to CIR, coarsened by pattern matching, turned
    into a dataflow graph, mapped onto a parameterized logical NIC by the
    ILP, and finally walked against a workload to predict latency —
    without the NF ever being ported.

    {[
      let lnic = Clara_lnic.Netronome.default in
      let a = Clara.analyze lnic ~source |> Result.get_ok in
      let trace = Clara_workload.Trace.synthesize profile in
      let p = Clara.predict a trace in
      Format.printf "predicted mean: %.0f cycles@." p.mean_cycles
    ]} *)

type analysis = {
  lnic : Clara_lnic.Graph.t;
  df : Clara_dataflow.Graph.t;
  mapping : Clara_mapping.Mapping.t;
  pattern_report : Clara_cir.Patterns.report;
  options : Clara_mapping.Mapping.options;
      (** As actually used by mapping — including sharing verdicts the
          lint pass injected when the caller left them empty. *)
  lint : Clara_analysis.Suite.report;
      (** Static-analysis report over the coarsened CIR.  Diagnostics
          never fail [analyze] (use [clara lint] for a gate); the
          sharing verdicts feed the encoder so racy state is priced as
          if properly synchronized. *)
}

val analyze :
  ?options:Clara_mapping.Mapping.options ->
  ?sizes:Clara_dataflow.Cost.sizes ->
  ?prob:(Clara_cir.Ir.guard -> float) ->
  Clara_lnic.Graph.t ->
  source:string ->
  (analysis, string) result
(** Parse → typecheck → lower → coarsen → dataflow → map.  [sizes]
    defaults to a 300-byte-payload average; [prob] to
    {!Clara_dataflow.Flow.default_probability}; both only steer the
    mapping objective, not correctness.  Errors cover syntax, type and
    mapping infeasibility. *)

val sizes_of_profile : Clara_workload.Profile.t -> Clara_dataflow.Cost.sizes
val prob_of_profile :
  Clara_workload.Profile.t -> Clara_cir.Ir.guard -> float

val analyze_for_profile :
  ?options:Clara_mapping.Mapping.options ->
  Clara_lnic.Graph.t ->
  source:string ->
  profile:Clara_workload.Profile.t ->
  (analysis, string) result
(** [analyze] with sizes and probabilities derived from a workload
    profile — the paper's intended workflow (§3.5). *)

val predict :
  ?config:Clara_predict.Latency.config ->
  analysis ->
  Clara_workload.Trace.t ->
  Clara_predict.Latency.prediction

val predict_profile :
  ?config:Clara_predict.Latency.config ->
  ?seed:int64 ->
  analysis ->
  Clara_workload.Profile.t ->
  Clara_predict.Latency.prediction
(** Synthesizes a trace from the profile, then predicts. *)

val predict_profile_at_rate :
  ?config:Clara_predict.Latency.config ->
  ?seed:int64 ->
  analysis ->
  Clara_workload.Profile.t ->
  Clara_predict.Latency.prediction * float option
(** Like {!predict_profile}, additionally returning the queueing-adjusted
    mean latency at the profile's offered rate (M/M/k per resource,
    {!Clara_predict.Throughput.latency_at_rate}); [None] when the rate
    exceeds the predicted capacity. *)

val device_placement_of_state :
  analysis -> string -> Clara_nicsim.Device.placement option
(** Translate the mapping's Γ decision for a state object into the
    simulator's placement vocabulary — used when a port "follows Clara's
    hints", the workflow the paper proposes (§6: offloading hints). *)
