module D = Clara_dataflow
module W = Clara_workload

(* Every phase runs inside an Obs span so `clara --stats` (and the bench
   harness) can attribute wall-clock to parse/lower, coarsening, dataflow
   construction, ILP mapping and prediction. *)
let obs = Clara_obs.Registry.default

type analysis = {
  lnic : Clara_lnic.Graph.t;
  df : Clara_dataflow.Graph.t;
  mapping : Clara_mapping.Mapping.t;
  pattern_report : Clara_cir.Patterns.report;
  options : Clara_mapping.Mapping.options;
  lint : Clara_analysis.Suite.report;
}

let default_sizes =
  {
    D.Cost.payload_bytes = 300.;
    packet_bytes = 352.;
    header_bytes = 52.;
    state_entries = (fun _ -> 0.); (* resolved from the program by Encode *)
    opaque_trip = 1.;
  }

let sizes_of_profile (p : W.Profile.t) =
  let payload = W.Profile.mean_payload p in
  {
    D.Cost.payload_bytes = payload;
    packet_bytes = W.Profile.mean_packet_bytes p;
    header_bytes = (p.W.Profile.tcp_fraction *. 54.) +. ((1. -. p.W.Profile.tcp_fraction) *. 42.);
    state_entries = (fun _ -> 0.);
    opaque_trip = 1.;
  }

let prob_of_profile (p : W.Profile.t) =
  (* Table-hit fraction: each packet of a flow after the first hits, so
     hit ~= 1 - flows/packets. *)
  let hit =
    Float.max 0.5
      (1. -. (float_of_int p.W.Profile.flow_count /. float_of_int p.W.Profile.packets))
  in
  let syn =
    if p.W.Profile.new_flow_syn then
      Float.min 1.
        (float_of_int p.W.Profile.flow_count /. float_of_int p.W.Profile.packets)
    else 0.
  in
  D.Flow.guard_probability ~tcp_fraction:p.W.Profile.tcp_fraction ~syn_fraction:syn
    ~hit_fraction:hit ~match_fraction:0.1 ~exceed_fraction:0.05

let analyze ?(options = Clara_mapping.Mapping.default_options) ?(sizes = default_sizes)
    ?(prob = D.Flow.default_probability) lnic ~source =
  Clara_obs.Registry.span obs "pipeline" @@ fun () ->
  match Clara_obs.Registry.span obs "lower" (fun () -> Clara_cir.Lower.lower_source source) with
  | exception Clara_cir.Lexer.Error (msg, pos) ->
      Error (Printf.sprintf "lex error at %d:%d: %s" pos.Clara_cir.Ast.line pos.Clara_cir.Ast.col msg)
  | exception Clara_cir.Parser.Error (msg, pos) ->
      Error (Printf.sprintf "parse error at %d:%d: %s" pos.Clara_cir.Ast.line pos.Clara_cir.Ast.col msg)
  | exception Failure msg -> Error msg
  | ir -> (
      let ir, pattern_report =
        Clara_obs.Registry.span obs "coarsen" (fun () -> Clara_cir.Patterns.run ir)
      in
      (* Lint before mapping: diagnostics never fail the pipeline (that
         is `clara lint`'s job), but the sharing verdicts feed the
         encoder unless the caller supplied its own. *)
      let lint =
        Clara_obs.Registry.span obs "lint" (fun () ->
            Clara_analysis.Suite.run ~lnic ir)
      in
      let options =
        if options.Clara_mapping.Mapping.sharing = [] then
          { options with
            Clara_mapping.Mapping.sharing = lint.Clara_analysis.Suite.sharing }
        else options
      in
      let df = Clara_obs.Registry.span obs "dataflow" (fun () -> D.Build.of_ir ir) in
      match
        Clara_obs.Registry.span obs "mapping" (fun () ->
            Clara_mapping.Encode.map_nf ~options lnic df ~sizes ~prob)
      with
      | Error e -> Error ("mapping: " ^ e)
      | Ok mapping -> Ok { lnic; df; mapping; pattern_report; options; lint })

let analyze_for_profile ?options lnic ~source ~profile =
  analyze ?options ~sizes:(sizes_of_profile profile) ~prob:(prob_of_profile profile) lnic
    ~source

let predict ?config a trace =
  Clara_obs.Registry.span obs "predict" @@ fun () ->
  let p = Clara_predict.Latency.create ?config a.lnic a.df a.mapping in
  Clara_predict.Latency.predict_trace p trace

let predict_profile ?config ?(seed = 42L) a profile =
  predict ?config a (W.Trace.synthesize ~seed profile)

let predict_profile_at_rate ?config ?seed a profile =
  let p = predict_profile ?config ?seed a profile in
  let loaded =
    Clara_predict.Throughput.latency_at_rate
      ~sizes:(sizes_of_profile profile)
      ~prob:(prob_of_profile profile)
      ~base_cycles:p.Clara_predict.Latency.mean_cycles
      ~rate_pps:profile.W.Profile.rate_pps a.lnic a.df a.mapping
  in
  (p, loaded)

let device_placement_of_state a s =
  match Clara_mapping.Mapping.placement_of_state a.mapping s with
  | None -> None
  | Some (Clara_mapping.Mapping.In_accel _) -> Some Clara_nicsim.Device.P_flow_cache
  | Some (Clara_mapping.Mapping.In_memory m) -> (
      match (Clara_lnic.Graph.memory a.lnic m).Clara_lnic.Memory.level with
      | Clara_lnic.Memory.Cluster -> Some Clara_nicsim.Device.P_ctm
      | Clara_lnic.Memory.Internal -> Some Clara_nicsim.Device.P_imem
      | Clara_lnic.Memory.External | Clara_lnic.Memory.Local ->
          Some Clara_nicsim.Device.P_emem)
