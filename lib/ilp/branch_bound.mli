(** Exact branch-and-bound over the {!Lp} relaxation.

    Because the relaxation is solved in exact rational arithmetic, the
    integrality test ([Rat.is_integer]) is never confused by round-off,
    and an [Optimal] outcome is a true optimum of the mixed-integer
    model.

    The search is warm-started: a child node copies its parent's final
    simplex tableau, tightens one variable's bounds, and re-optimizes
    with dual-simplex pivots ({!Lp.rebound}).  Subtrees are additionally
    closed by best-bound pruning against the incumbent, and each node
    runs a few {!Presolve} propagation passes on its branched bounds. *)

type status =
  | Optimal
  | Infeasible
  | Unbounded
  | Node_limit
      (** The node budget ran out.  Not an error: the outcome still
          carries the best incumbent found (see [incumbent]/[gap]). *)

type outcome = {
  status : status;
  objective : Rat.t;
  values : Rat.t array;
  nodes : int;          (** Number of branch-and-bound nodes visited. *)
  incumbent : bool;
      (** Whether [objective]/[values] hold a feasible integer point.
          [true] for [Optimal]; for [Node_limit] it distinguishes a
          degraded-but-usable answer from no answer at all. *)
  gap : Rat.t option;
      (** For [Node_limit] with an incumbent: absolute distance between
          the incumbent objective and the most promising open subtree's
          relaxation bound (zero when no open subtree can improve).
          [None] otherwise. *)
}

val solve : ?node_limit:int -> ?initial_bound:Rat.t -> Model.t -> outcome
(** Runs {!Presolve} first (tightened bounds shrink the tree; proven
    infeasibility skips the search entirely), then depth-first branch
    and bound on the LP relaxation, exploring the branch nearest each
    fractional relaxation value first.  [node_limit] defaults to
    200_000; exceeding it returns a [Node_limit] outcome instead of
    raising.

    [initial_bound] is an {e inclusive} bound on the optimum known
    before the search (for Clara, the static cost interval's ceiling):
    subtrees whose relaxation bound is strictly worse are closed
    immediately (counter [ilp.bb.cutoff_prunes]) even before the first
    incumbent exists.  A bound that does not actually admit an optimal
    point makes the search report [Infeasible] — soundness of the bound
    is the caller's contract. *)
