(* Two-phase primal tableau simplex with Bland's anti-cycling rule.

   The tableau stores one row per constraint (all equalities after slack /
   surplus variables are added) plus an objective row.  Everything is exact
   rational arithmetic, so "zero" means zero and the phase-1 feasibility
   verdict is decisive. *)

(* Hoisted counters: bumping is one int store, nothing allocated on the
   pivot path. *)
let c_solves = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.solves"
let c_pivots = Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.pivots"

let c_iterations =
  Clara_obs.Registry.counter Clara_obs.Registry.default "ilp.simplex.iterations"

type row = { coeffs : Rat.t array; sense : Model.sense; rhs : Rat.t }
type status = Optimal | Infeasible | Unbounded

type result = { status : status; objective : Rat.t; solution : Rat.t array }

type tableau = {
  a : Rat.t array array; (* m rows x n cols *)
  b : Rat.t array;       (* m, invariant: >= 0 *)
  mutable obj : Rat.t array; (* n, reduced costs of the current phase *)
  mutable obj_const : Rat.t; (* objective value = obj_const when basic *)
  basis : int array;     (* m, column basic in each row *)
  m : int;
  n : int;
}

(* Pivot on (row r, col c): scale row r so a.(r).(c) = 1, eliminate column c
   from every other row and from the objective. *)
let pivot t r c =
  Clara_obs.Metrics.incr c_pivots;
  let arc = t.a.(r).(c) in
  assert (not (Rat.is_zero arc));
  let inv = Rat.inv arc in
  for j = 0 to t.n - 1 do
    t.a.(r).(j) <- Rat.mul t.a.(r).(j) inv
  done;
  t.b.(r) <- Rat.mul t.b.(r) inv;
  for i = 0 to t.m - 1 do
    if i <> r && not (Rat.is_zero t.a.(i).(c)) then begin
      let f = t.a.(i).(c) in
      for j = 0 to t.n - 1 do
        t.a.(i).(j) <- Rat.sub t.a.(i).(j) (Rat.mul f t.a.(r).(j))
      done;
      t.b.(i) <- Rat.sub t.b.(i) (Rat.mul f t.b.(r))
    end
  done;
  if not (Rat.is_zero t.obj.(c)) then begin
    let f = t.obj.(c) in
    for j = 0 to t.n - 1 do
      t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul f t.a.(r).(j))
    done;
    t.obj_const <- Rat.sub t.obj_const (Rat.mul f t.b.(r))
  end;
  t.basis.(r) <- c

(* Run simplex iterations until optimal or unbounded.
   [allowed c] restricts entering columns (used to freeze artificials in
   phase 2). *)
let iterate t ~allowed =
  let rec loop () =
    Clara_obs.Metrics.incr c_iterations;
    (* Bland: entering column = smallest index with negative reduced cost. *)
    let entering = ref (-1) in
    (try
       for j = 0 to t.n - 1 do
         if allowed j && Rat.sign t.obj.(j) < 0 then begin
           entering := j;
           raise Exit
         end
       done
     with Exit -> ());
    if !entering < 0 then `Optimal
    else begin
      let c = !entering in
      (* Ratio test; Bland tie-break on smallest basis column. *)
      let best = ref (-1) in
      let best_ratio = ref Rat.zero in
      for i = 0 to t.m - 1 do
        if Rat.sign t.a.(i).(c) > 0 then begin
          let ratio = Rat.div t.b.(i) t.a.(i).(c) in
          let better =
            !best < 0
            || Rat.( < ) ratio !best_ratio
            || (Rat.( = ) ratio !best_ratio && t.basis.(i) < t.basis.(!best))
          in
          if better then begin
            best := i;
            best_ratio := ratio
          end
        end
      done;
      if !best < 0 then `Unbounded
      else begin
        pivot t !best c;
        loop ()
      end
    end
  in
  loop ()

let solve ~c ~rows =
  Clara_obs.Metrics.incr c_solves;
  let nstruct = Array.length c in
  List.iter
    (fun r ->
      if Array.length r.coeffs <> nstruct then
        invalid_arg "Simplex.solve: row arity mismatch")
    rows;
  let rows = Array.of_list rows in
  let m = Array.length rows in
  let rows =
    Array.map
      (fun r ->
        if Rat.sign r.rhs < 0 then
          { coeffs = Array.map Rat.neg r.coeffs;
            sense =
              (match r.sense with
              | Model.Le -> Model.Ge
              | Model.Ge -> Model.Le
              | Model.Eq -> Model.Eq);
            rhs = Rat.neg r.rhs }
        else r)
      rows
  in
  let needs_artificial r =
    match r.sense with Model.Le -> false | Model.Ge | Model.Eq -> true
  in
  let n_slack =
    Array.fold_left
      (fun acc r ->
        match r.sense with Model.Eq -> acc | Model.Le | Model.Ge -> acc + 1)
      0 rows
  in
  let n_art =
    Array.fold_left (fun acc r -> if needs_artificial r then acc + 1 else acc) 0 rows
  in
  let n = nstruct + n_slack + n_art in
  let a = Array.init m (fun _ -> Array.make n Rat.zero) in
  let b = Array.make m Rat.zero in
  let basis = Array.make m (-1) in
  let slack_col = ref nstruct in
  let art_col = ref (nstruct + n_slack) in
  Array.iteri
    (fun i r ->
      Array.blit r.coeffs 0 a.(i) 0 nstruct;
      b.(i) <- r.rhs;
      (match r.sense with
      | Model.Le ->
          a.(i).(!slack_col) <- Rat.one;
          basis.(i) <- !slack_col;
          incr slack_col
      | Model.Ge ->
          a.(i).(!slack_col) <- Rat.minus_one;
          incr slack_col
      | Model.Eq -> ());
      if needs_artificial r then begin
        a.(i).(!art_col) <- Rat.one;
        basis.(i) <- !art_col;
        incr art_col
      end)
    rows;
  let t = { a; b; obj = Array.make n Rat.zero; obj_const = Rat.zero; basis; m; n } in
  let art_start = nstruct + n_slack in
  let extract_solution () =
    let x = Array.make nstruct Rat.zero in
    for i = 0 to m - 1 do
      if basis.(i) < nstruct then x.(basis.(i)) <- t.b.(i)
    done;
    x
  in
  let phase1_feasible =
    if n_art = 0 then true
    else begin
      (* Minimize sum of artificials; initialize reduced costs so that the
         basic artificial columns read zero. *)
      for j = art_start to n - 1 do
        t.obj.(j) <- Rat.one
      done;
      for i = 0 to m - 1 do
        if basis.(i) >= art_start then begin
          for j = 0 to n - 1 do
            t.obj.(j) <- Rat.sub t.obj.(j) t.a.(i).(j)
          done;
          t.obj_const <- Rat.sub t.obj_const t.b.(i)
        end
      done;
      (match iterate t ~allowed:(fun _ -> true) with
      | `Unbounded -> assert false (* phase-1 objective bounded below by 0 *)
      | `Optimal -> ());
      (* Current phase-1 value = -obj_const. *)
      if Rat.sign t.obj_const < 0 then false
      else begin
        (* Drive any artificial still basic (at zero level) out of the
           basis, or drop its row if it is all zeros. *)
        for i = 0 to m - 1 do
          if basis.(i) >= art_start then begin
            let piv = ref (-1) in
            for j = 0 to art_start - 1 do
              if !piv < 0 && not (Rat.is_zero t.a.(i).(j)) then piv := j
            done;
            if !piv >= 0 then pivot t i !piv
            (* else: redundant row; harmless to leave the zero-level
               artificial basic, it never re-enters because phase 2 freezes
               artificial columns. *)
          end
        done;
        true
      end
    end
  in
  if not phase1_feasible then
    { status = Infeasible; objective = Rat.zero; solution = Array.make nstruct Rat.zero }
  else begin
    (* Phase 2: install the real objective, reduced w.r.t. the basis. *)
    let obj = Array.make n Rat.zero in
    Array.blit c 0 obj 0 nstruct;
    t.obj <- obj;
    t.obj_const <- Rat.zero;
    for i = 0 to m - 1 do
      let bc = basis.(i) in
      if not (Rat.is_zero t.obj.(bc)) then begin
        let f = t.obj.(bc) in
        for j = 0 to n - 1 do
          t.obj.(j) <- Rat.sub t.obj.(j) (Rat.mul f t.a.(i).(j))
        done;
        t.obj_const <- Rat.sub t.obj_const (Rat.mul f t.b.(i))
      end
    done;
    match iterate t ~allowed:(fun j -> j < art_start) with
    | `Unbounded ->
        { status = Unbounded; objective = Rat.zero; solution = extract_solution () }
    | `Optimal ->
        let x = extract_solution () in
        let value =
          Array.to_list x
          |> List.mapi (fun i xi -> Rat.mul c.(i) xi)
          |> List.fold_left Rat.add Rat.zero
        in
        { status = Optimal; objective = value; solution = x }
  end
